# Local developer workflow, mirroring .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test race lint lint-hotpath bench bench-alloc bench-parallel bench-obs bench-chaos bench-slo bench-scale bench-obs-scale bench-obs-scale-quick bench-serve bench-serve-quick serve-smoke telemetry-smoke trace-diff trace-diff-chaos trace-diff-slo trace-diff-scale trace-diff-stream fmt-check ci

all: build

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full test suite
test:
	$(GO) test ./...

## race: run the short test suite under the race detector (the CI lane)
race:
	$(GO) test -race -short ./...

## lint: gofmt, go vet, and the repository's own static-analysis suite
lint: fmt-check
	$(GO) vet ./...
	$(GO) run ./cmd/quasar-lint ./...

## lint-hotpath: the hot-path static-analysis suite alone, machine-readable
lint-hotpath:
	$(GO) run ./cmd/quasar-lint -json ./...

## bench: run the repository benchmarks
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

## bench-alloc: measure allocs/op on the hot roots, refresh BENCH_alloc.json,
## and fail on any count over its committed budget
bench-alloc:
	$(GO) run ./cmd/quasar-bench -allocbench-out BENCH_alloc.json allocbench

## bench-parallel: time sequential vs parallel fan-out, refresh BENCH_parallel.json
bench-parallel:
	$(GO) run ./cmd/quasar-bench -parbench-out BENCH_parallel.json parbench

## bench-obs: time a scenario with the tracer off vs on, refresh BENCH_obs.json
bench-obs:
	$(GO) run ./cmd/quasar-bench -obsbench-out BENCH_obs.json obsbench

## bench-chaos: time a scenario with the detector off vs on vs under the fault storm, refresh BENCH_chaos.json
bench-chaos:
	$(GO) run ./cmd/quasar-bench -chaosbench-out BENCH_chaos.json chaosbench

## bench-slo: time a scenario with the SLO engine off vs on, refresh BENCH_slo.json
bench-slo:
	$(GO) run ./cmd/quasar-bench -slobench-out BENCH_slo.json slobench

## bench-scale: sweep cluster sizes (100 -> 10k servers), time indexed vs
## full-scan scheduling and calendar vs heap event cores, refresh
## BENCH_scale.json, and fail below the scaling contract
bench-scale:
	$(GO) run ./cmd/quasar-bench -scalebench-out BENCH_scale.json scalebench

## bench-obs-scale: time the at-scale scenario untraced vs streaming-traced
## (1k and 10k servers), refresh BENCH_obs_scale.json, and fail over the 10%
## trace-overhead budget or on unbounded tracer memory
bench-obs-scale:
	$(GO) run ./cmd/quasar-bench -obsscale-out BENCH_obs_scale.json obsscale

## bench-obs-scale-quick: the CI smoke variant (one small point, no baseline refresh)
bench-obs-scale-quick:
	$(GO) run ./cmd/quasar-bench -quick -obsscale-out /tmp/quasar-obs-scale-quick.json obsscale

## serve-smoke: end-to-end serve-mode self-test — live daemon + warm standby
## tailing its journal, scripted HTTP client with wall-clock jitter, graceful
## shutdown, then byte-identity and snapshot-verification checks
serve-smoke:
	$(GO) run ./cmd/quasar-serve -selftest

## telemetry-smoke: serve-mode telemetry end to end — live daemon, /metrics
## scrape (RED series + operational gauges), live /v1/trace/stream tail, and
## request-ID correlation between the admission API, /debug/requests, and the
## streamed serve.apply events
telemetry-smoke:
	$(GO) run ./cmd/quasar-serve -telemetry-smoke

## bench-serve: drive a live daemon with closed-loop clients, measure the warm
## failover gap, refresh BENCH_serve.json, and fail below the 10k req/s floor
## (in-process transport: the committed baseline isolates admission cost from
## kernel TCP on the 1-CPU baseline host)
bench-serve:
	$(GO) run ./cmd/quasar-load -bench -inprocess -out BENCH_serve.json

## bench-serve-quick: the CI smoke variant (short phases, rate gate waived)
bench-serve-quick:
	$(GO) run ./cmd/quasar-load -bench -quick -inprocess

## trace-diff: assert the trace is byte-identical across worker counts
trace-diff:
	$(GO) run ./cmd/quasar-sim -horizon 4000 -workers 1 -trace /tmp/quasar-trace-w1.jsonl >/dev/null
	$(GO) run ./cmd/quasar-sim -horizon 4000 -workers 4 -trace /tmp/quasar-trace-w4.jsonl >/dev/null
	cmp /tmp/quasar-trace-w1.jsonl /tmp/quasar-trace-w4.jsonl
	$(GO) run ./cmd/quasar-trace /tmp/quasar-trace-w1.jsonl

## trace-diff-chaos: same contract under an injected fault storm
trace-diff-chaos:
	$(GO) run ./cmd/quasar-sim -horizon 6000 -workers 1 -faults internal/chaos/testdata/storm.json -trace /tmp/quasar-chaos-w1.jsonl >/dev/null
	$(GO) run ./cmd/quasar-sim -horizon 6000 -workers 4 -faults internal/chaos/testdata/storm.json -trace /tmp/quasar-chaos-w4.jsonl >/dev/null
	cmp /tmp/quasar-chaos-w1.jsonl /tmp/quasar-chaos-w4.jsonl
	$(GO) run ./cmd/quasar-trace /tmp/quasar-chaos-w1.jsonl

## trace-diff-slo: same contract with SLO monitoring and burn-rate alerting on
trace-diff-slo:
	$(GO) run ./cmd/quasar-sim -horizon 6000 -workers 1 -slo -faults internal/chaos/testdata/storm.json -trace /tmp/quasar-slo-w1.jsonl >/dev/null
	$(GO) run ./cmd/quasar-sim -horizon 6000 -workers 4 -slo -faults internal/chaos/testdata/storm.json -trace /tmp/quasar-slo-w4.jsonl >/dev/null
	cmp /tmp/quasar-slo-w1.jsonl /tmp/quasar-slo-w4.jsonl
	$(GO) run ./cmd/quasar-trace -alerts /tmp/quasar-slo-w1.jsonl

## trace-diff-scale: same contract at scale (1k servers, 10k workloads)
trace-diff-scale:
	$(GO) run ./cmd/quasar-sim -servers 1000 -gap 0.02 -horizon 260 -hadoop 0 -spark 0 -storm 0 \
		-services 20 -single 480 -besteffort 9500 -workers 1 -trace /tmp/quasar-scale-w1.jsonl >/dev/null
	$(GO) run ./cmd/quasar-sim -servers 1000 -gap 0.02 -horizon 260 -hadoop 0 -spark 0 -storm 0 \
		-services 20 -single 480 -besteffort 9500 -workers 4 -trace /tmp/quasar-scale-w4.jsonl >/dev/null
	cmp /tmp/quasar-scale-w1.jsonl /tmp/quasar-scale-w4.jsonl
	$(GO) run ./cmd/quasar-trace /tmp/quasar-scale-w1.jsonl

## trace-diff-stream: assert the streaming sink's file is byte-identical to
## the buffered exporter's, and worker-invariant, on the same scenario
trace-diff-stream:
	$(GO) run ./cmd/quasar-sim -horizon 6000 -workers 1 -trace /tmp/quasar-stream-w1.jsonl >/dev/null
	$(GO) run ./cmd/quasar-sim -horizon 6000 -workers 1 -trace-buffer -trace /tmp/quasar-stream-buf.jsonl >/dev/null
	$(GO) run ./cmd/quasar-sim -horizon 6000 -workers 4 -trace /tmp/quasar-stream-w4.jsonl >/dev/null
	cmp /tmp/quasar-stream-w1.jsonl /tmp/quasar-stream-buf.jsonl
	cmp /tmp/quasar-stream-w1.jsonl /tmp/quasar-stream-w4.jsonl
	$(GO) run ./cmd/quasar-trace /tmp/quasar-stream-w1.jsonl

## fmt-check: fail if any file needs gofmt
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

## ci: everything the CI pipeline runs
ci: fmt-check build lint race
