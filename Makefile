# Local developer workflow, mirroring .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test race lint bench bench-parallel fmt-check ci

all: build

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full test suite
test:
	$(GO) test ./...

## race: run the short test suite under the race detector (the CI lane)
race:
	$(GO) test -race -short ./...

## lint: gofmt, go vet, and the repository's own static-analysis suite
lint: fmt-check
	$(GO) vet ./...
	$(GO) run ./cmd/quasar-lint ./...

## bench: run the repository benchmarks
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

## bench-parallel: time sequential vs parallel fan-out, refresh BENCH_parallel.json
bench-parallel:
	$(GO) run ./cmd/quasar-bench -parbench-out BENCH_parallel.json parbench

## fmt-check: fail if any file needs gofmt
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

## ci: everything the CI pipeline runs
ci: fmt-check build lint race
