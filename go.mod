module quasar

go 1.22
