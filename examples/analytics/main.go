// Analytics cluster: a shared 40-server cluster runs a mix of Hadoop,
// Spark, and Storm jobs under Quasar and then under the frameworks' own
// schedulers (reservation + least-loaded placement), comparing completion
// times against the jobs' execution-time targets — the §6.2 scenario in
// miniature.
package main

import (
	"fmt"
	"log"

	"quasar"
)

// runMix executes the job mix under one manager and returns per-job times.
func runMix(useQuasar bool, seed int64) (map[string]float64, map[string]float64) {
	cl, err := quasar.NewLocalCluster()
	if err != nil {
		log.Fatal(err)
	}
	rt := quasar.NewRuntime(cl, quasar.RuntimeOptions{TickSecs: 5, Seed: seed})
	u := quasar.NewUniverse(cl.Platforms, seed, 3)

	// Draw the library in both runs so the universes stay in lockstep and
	// job IDs (and genomes) match across managers.
	lib := quasar.Library(u, 3)
	if useQuasar {
		mgr := quasar.NewManager(rt, quasar.DefaultManagerOptions())
		mgr.SeedLibrary(lib)
		rt.SetManager(mgr)
	} else {
		opts := quasar.DefaultBaselineOptions()
		opts.Misestimate = false // the framework sizes its own jobs
		rt.SetManager(quasar.NewBaseline(rt, opts))
	}

	specs := []quasar.Spec{}
	for i := 0; i < 6; i++ {
		specs = append(specs, quasar.Spec{Type: quasar.Hadoop, Family: i % 3, MaxNodes: 3,
			TargetSlack: 1.2, Dataset: quasar.Dataset{Name: "mix", SizeGB: 25, WorkMult: 1.5, MemMult: 1}})
	}
	for i := 0; i < 2; i++ {
		specs = append(specs, quasar.Spec{Type: quasar.Spark, Family: i, MaxNodes: 3,
			TargetSlack: 1.2, Dataset: quasar.Dataset{Name: "mix", SizeGB: 25, WorkMult: 5, MemMult: 1}})
		specs = append(specs, quasar.Spec{Type: quasar.Storm, Family: i, MaxNodes: 3,
			TargetSlack: 1.2, Dataset: quasar.Dataset{Name: "mix", SizeGB: 25, WorkMult: 7, MemMult: 1}})
	}

	times := map[string]float64{}
	targets := map[string]float64{}
	tasks := map[string]*quasar.Task{}
	for i, spec := range specs {
		w := u.New(spec)
		tasks[w.ID] = rt.Submit(w, float64(i)*5, nil)
		targets[w.ID] = w.Target.CompletionSecs
	}
	rt.Run(30000)
	rt.Stop()
	for id, t := range tasks {
		if t.Status == quasar.StatusCompleted {
			times[id] = t.DoneAt - t.SubmitAt
		} else {
			frac := rt.ProgressFraction(t)
			if frac < 1e-6 {
				frac = 1e-6
			}
			times[id] = (30000 - t.SubmitAt) / frac
		}
	}
	return times, targets
}

func main() {
	qTimes, targets := runMix(true, 11)
	bTimes, _ := runMix(false, 11)

	fmt.Printf("%-14s %10s %10s %11s %9s\n", "job", "target(s)", "quasar(s)", "framework(s)", "speedup%")
	sumSpeed, n := 0.0, 0
	for id, q := range qTimes {
		b := bTimes[id]
		speed := 100 * (b - q) / b
		fmt.Printf("%-14s %10.0f %10.0f %11.0f %9.1f\n", id, targets[id], q, b, speed)
		sumSpeed += speed
		n++
	}
	fmt.Printf("mean speedup under Quasar: %.1f%%\n", sumSpeed/float64(n))
}
