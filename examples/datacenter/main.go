// Datacenter: the §6.5 cloud-provider scenario in miniature — a mixed
// stream of batch jobs, latency-critical services, and single-node
// workloads on the 200-server EC2 cluster, with per-class outcome
// statistics and the allocated-vs-used gap that reservations create.
package main

import (
	"fmt"
	"log"

	"quasar"
)

func main() {
	cl, err := quasar.NewEC2Cluster()
	if err != nil {
		log.Fatal(err)
	}
	rt := quasar.NewRuntime(cl, quasar.RuntimeOptions{TickSecs: 10, SampleSecs: 120, Seed: 42})
	u := quasar.NewUniverse(cl.Platforms, 42, 3)
	mgr := quasar.NewManager(rt, quasar.DefaultManagerOptions())
	mgr.SeedLibrary(quasar.Library(u, 3))
	rt.SetManager(mgr)

	// 200 workloads, 1 s inter-arrival, all with equal priority.
	var tasks []*quasar.Task
	for i := 0; i < 200; i++ {
		var spec quasar.Spec
		switch {
		case i%10 < 5:
			spec = quasar.Spec{Type: quasar.SingleNode, Family: -1, TargetSlack: 1.3}
		case i%10 < 8:
			spec = quasar.Spec{Type: quasar.Hadoop, Family: i % 3, MaxNodes: 2, TargetSlack: 1.4,
				Dataset: quasar.Dataset{Name: "dc", SizeGB: 15, WorkMult: 0.5, MemMult: 1}}
		default:
			spec = quasar.Spec{Type: quasar.Webserver, Family: -1, MaxNodes: 2}
		}
		w := u.New(spec)
		var load quasar.LoadPattern
		if w.Type == quasar.Webserver {
			load = quasar.FluctuatingLoad{Min: 0.4 * w.Target.QPS, Max: 0.9 * w.Target.QPS, Period: 5000}
		}
		tasks = append(tasks, rt.Submit(w, float64(i), load))
	}

	rt.Run(12000)
	rt.Stop()

	type stats struct {
		n, done int
		perf    float64
	}
	byType := map[string]*stats{}
	for _, t := range tasks {
		st := byType[t.W.Type.String()]
		if st == nil {
			st = &stats{}
			byType[t.W.Type.String()] = st
		}
		st.n++
		if t.Status == quasar.StatusCompleted {
			st.done++
		}
		// Normalized performance: >= 1 means the target was met.
		switch {
		case t.W.Type == quasar.Webserver:
			st.perf += t.QoSFrac.MeanBetween(600, 12000)
		case t.Status == quasar.StatusCompleted:
			v := t.W.Target.CompletionSecs / (t.DoneAt - t.SubmitAt)
			if t.W.Type == quasar.SingleNode {
				v = (t.Progress / (t.DoneAt - t.StartAt)) / t.W.Target.IPS
			}
			if v > 1 {
				v = 1
			}
			st.perf += v
		}
	}
	fmt.Printf("%-12s %5s %5s %16s\n", "type", "n", "done", "mean %% of target")
	for _, name := range []string{"single-node", "hadoop", "webserver"} {
		st := byType[name]
		if st == nil {
			continue
		}
		fmt.Printf("%-12s %5d %5d %15.1f%%\n", name, st.n, st.done, 100*st.perf/float64(st.n))
	}
	fmt.Printf("mean CPU utilization: %.1f%%\n", 100*rt.CPUHeat.MeanOverall())
}
