// Latency service: run a memcached-like service with a QPS + tail-latency
// target under fluctuating traffic, alongside a stream of best-effort batch
// fillers. Quasar scales the service with the load (up at growth, reclaim
// when idle) while keeping the fillers from interfering with it.
package main

import (
	"fmt"
	"log"

	"quasar"
)

func main() {
	cl, err := quasar.NewLocalCluster()
	if err != nil {
		log.Fatal(err)
	}
	rt := quasar.NewRuntime(cl, quasar.RuntimeOptions{TickSecs: 5, SampleSecs: 60, Seed: 7})
	u := quasar.NewUniverse(cl.Platforms, 7, 3)
	mgr := quasar.NewManager(rt, quasar.DefaultManagerOptions())
	mgr.SeedLibrary(quasar.Library(u, 3))
	rt.SetManager(mgr)

	// A memcached-like service. The generator derives a feasible QPS
	// target and a tail-latency bound near the latency curve's knee.
	svc := u.New(quasar.Spec{Type: quasar.Memcached, Family: 0, MaxNodes: 8})
	fmt.Printf("service %s: target %.0f kQPS at p99 <= %.0fus\n",
		svc.ID, svc.Target.QPS/1000, svc.Target.LatencyUS)

	// Offered load swings between 30%% and 100%% of the target over a
	// 2-hour period.
	load := quasar.FluctuatingLoad{
		Min: 0.3 * svc.Target.QPS, Max: svc.Target.QPS, Period: 7200,
	}
	task := rt.Submit(svc, 0, load)

	// Best-effort single-node fillers arrive every 60 s and soak up
	// whatever the service leaves idle.
	for i := 0; i < 200; i++ {
		be := u.New(quasar.Spec{Type: quasar.SingleNode, Family: -1, BestEffort: true})
		rt.Submit(be, float64(i)*60, nil)
	}

	const horizon = 4 * 3600
	for t := 1800.0; t <= horizon; t += 1800 {
		rt.Run(t)
		fmt.Printf("t=%5.0fm offered=%6.0f kQPS achieved=%6.0f kQPS p99=%5.0fus nodes=%d cores=%d\n",
			t/60, task.LastOfferedQPS/1000, task.LastAchievedQPS/1000,
			task.LastP99US, task.NumNodes(), task.TotalCores())
	}
	rt.Stop()

	qos := task.QoSFrac.MeanBetween(600, horizon)
	fmt.Printf("QoS met for %.1f%% of the run (latency bound %.0fus)\n", 100*qos, svc.Target.LatencyUS)
	fmt.Printf("mean cluster CPU utilization: %.1f%%\n", 100*rt.CPUHeat.MeanOverall())
}
