// Quickstart: submit one Hadoop-style analytics job with an execution-time
// target to a Quasar-managed 40-server cluster and watch Quasar size,
// place, and adapt its allocation.
package main

import (
	"fmt"
	"log"

	"quasar"
)

func main() {
	// The paper's local testbed: 40 servers over platforms A-J.
	cl, err := quasar.NewLocalCluster()
	if err != nil {
		log.Fatal(err)
	}
	rt := quasar.NewRuntime(cl, quasar.RuntimeOptions{TickSecs: 5, SampleSecs: 60, Seed: 1})

	// Deterministic workload generator over the cluster's platforms.
	u := quasar.NewUniverse(cl.Platforms, 1, 3)

	// The Quasar manager, seeded with an offline-profiled library so its
	// collaborative-filtering classifier has something to relate new
	// workloads to.
	mgr := quasar.NewManager(rt, quasar.DefaultManagerOptions())
	mgr.SeedLibrary(quasar.Library(u, 3))
	rt.SetManager(mgr)

	// A Hadoop job over a 20 GB dataset. The target is derived from an
	// oracle parameter sweep (the best achievable on up to 4 nodes),
	// relaxed by 20% — the user expresses *performance*, never resources.
	job := u.New(quasar.Spec{
		Type:        quasar.Hadoop,
		Family:      0,
		Dataset:     quasar.Dataset{Name: "demo", SizeGB: 20, WorkMult: 2, MemMult: 1},
		MaxNodes:    4,
		TargetSlack: 1.2,
	})
	fmt.Printf("submitting %s: execution-time target %.0fs\n",
		job.ID, job.Target.CompletionSecs)

	task := rt.Submit(job, 0, nil)

	// Run simulated time until the job completes (or give up after 6 h).
	for t := 300.0; t < 6*3600; t += 300 {
		rt.Run(t)
		if task.Status == quasar.StatusCompleted {
			break
		}
		fmt.Printf("t=%5.0fs status=%-10s nodes=%d cores=%d progress=%4.0f%%\n",
			t, task.Status, task.NumNodes(), task.TotalCores(),
			100*rt.ProgressFraction(task))
	}
	rt.Stop()

	if task.Status != quasar.StatusCompleted {
		log.Fatalf("job did not complete: %v", task.Status)
	}
	elapsed := task.DoneAt - task.SubmitAt
	fmt.Printf("completed in %.0fs (target %.0fs, %.1f%% %s)\n",
		elapsed, job.Target.CompletionSecs,
		100*abs(elapsed-job.Target.CompletionSecs)/job.Target.CompletionSecs,
		map[bool]string{true: "early", false: "late"}[elapsed <= job.Target.CompletionSecs])
	fmt.Printf("tuned framework config: %d mappers/node, %.2f GB heap, %s compression\n",
		job.Config.MappersPerNode, job.Config.HeapsizeGB, job.Config.Compression)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
