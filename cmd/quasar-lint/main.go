// Command quasar-lint runs the repository's static-analysis suite
// (internal/analysis): project-specific determinism, float-comparison,
// snapshot-drift, error-discard, hot-path allocation, lock-hygiene, and
// concurrent-capture checks built purely on the standard library's go/ast
// and go/types.
//
// Usage:
//
//	quasar-lint [-json] [-list] [-analyzers a,b] [-hotroots file] [-hotpath] [patterns ...]
//
// Patterns default to "./...". Relative patterns resolve against the
// working directory, as with the go tool. A pattern ending in /... walks
// the tree beneath it (skipping testdata and vendor); analyzers then
// apply only within their configured package scopes. A plain directory pattern, e.g.
// internal/analysis/testdata/src/determinism_bad, names the package
// explicitly and runs every analyzer on it regardless of scope — which is
// how the known-bad fixtures are exercised.
//
// The hot-path analyzers read their roots from hotpath.json at the module
// root (override with -hotroots; pass -hotroots "" to run without declared
// roots). -hotpath prints the reachability report — every hot function
// with its finding count — instead of plain diagnostics.
//
// Diagnostics print as "file:line:col: [analyzer] message", or as a JSON
// array with -json. The exit status is 1 when any diagnostic is reported,
// 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"quasar/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics (or the -hotpath report) as JSON")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	analyzerNames := flag.String("analyzers", "", "comma-separated analyzer subset to run (default: all)")
	hotroots := flag.String("hotroots", "hotpath.json", "hot-root declaration file, relative to the module root; \"\" disables declared roots")
	hotpathReport := flag.Bool("hotpath", false, "print the hot-path reachability report instead of diagnostics")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*analyzerNames)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// go-tool convention: relative patterns resolve against the working
	// directory, so "./..." from a subdirectory covers that subtree only.
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	for i, pat := range patterns {
		dir, recursive := strings.CutSuffix(pat, "/...")
		if dir == "" || filepath.IsAbs(dir) {
			continue
		}
		dir = filepath.Join(cwd, dir)
		if recursive {
			dir += "/..."
		}
		patterns[i] = dir
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	var cfg *analysis.Config
	if *hotroots != "" {
		path := *hotroots
		if !filepath.IsAbs(path) {
			path = filepath.Join(root, path)
		}
		cfg, err = analysis.LoadHotPathConfig(path)
		if err != nil {
			// The default hotpath.json is best-effort: a module without one
			// simply runs rootless. An explicitly named file must exist.
			if !os.IsNotExist(err) || !isDefaultFlag("hotroots") {
				fatal(err)
			}
		}
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	diags, hot, err := analysis.RunConfigured(loader.Fset, pkgs, analyzers, cfg)
	if err != nil {
		fatal(err)
	}
	for _, key := range hot.Unresolved {
		_, _ = fmt.Fprintf(os.Stderr,
			"quasar-lint: warning: hot-path key %q resolves to nothing in the loaded packages (stale entry, or a partial pattern?)\n", key)
	}

	if *hotpathReport {
		printHotPathReport(root, hot, diags, *jsonOut)
		if len(diags) > 0 {
			os.Exit(1)
		}
		return
	}

	if *jsonOut {
		printJSONDiags(root, diags)
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: [%s] %s\n",
				relPath(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -analyzers flag against the registry.
func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("quasar-lint: unknown analyzer %q (see -list)", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("quasar-lint: -analyzers selected nothing")
	}
	return out, nil
}

// isDefaultFlag reports whether the named flag was left at its default.
func isDefaultFlag(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return !set
}

// jsonDiag is the -json wire form of one diagnostic.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printJSONDiags(root string, diags []analysis.Diagnostic) {
	out := []jsonDiag{}
	for _, d := range diags {
		out = append(out, jsonDiag{
			File: relPath(root, d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

// printHotPathReport lists every hot-reachable function with its file span
// and the number of diagnostics landing inside it.
func printHotPathReport(root string, hot *analysis.HotSet, diags []analysis.Diagnostic, asJSON bool) {
	funcs := hot.Funcs()
	type reportEntry struct {
		Key      string `json:"key"`
		Root     bool   `json:"root,omitempty"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Findings int    `json:"findings"`
	}
	entries := make([]reportEntry, 0, len(funcs))
	total := 0
	for _, hf := range funcs {
		n := 0
		for _, d := range diags {
			if d.Pos.Filename == hf.Pos.Filename && d.Pos.Line >= hf.Pos.Line && d.Pos.Line <= hf.End.Line {
				n++
			}
		}
		total += n
		entries = append(entries, reportEntry{
			Key:  hf.Key,
			Root: hf.Root,
			File: relPath(root, hf.Pos.Filename), Line: hf.Pos.Line,
			Findings: n,
		})
	}
	if asJSON {
		report := struct {
			HotFunctions []reportEntry `json:"hot_functions"`
			Total        int           `json:"total_findings"`
		}{entries, len(diags)}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("hot-path reachability: %d functions\n", len(entries))
	for _, e := range entries {
		marker := " "
		if e.Root {
			marker = "*"
		}
		fmt.Printf("%s %-72s %s:%d findings=%d\n", marker, e.Key, e.File, e.Line, e.Findings)
	}
	if len(diags) != total {
		fmt.Printf("(%d further findings outside hot functions)\n", len(diags)-total)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("quasar-lint: no go.mod found above working directory")
		}
		dir = parent
	}
}

// relPath shortens filenames under the module root for stable, readable
// output.
func relPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) &&
		rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return rel
	}
	return file
}

func fatal(err error) {
	_, _ = fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
