// Command quasar-lint runs the repository's static-analysis suite
// (internal/analysis): project-specific determinism, float-comparison,
// snapshot-drift, and error-discard checks built purely on the standard
// library's go/ast and go/types.
//
// Usage:
//
//	quasar-lint [-json] [-list] [patterns ...]
//
// Patterns default to "./...". Relative patterns resolve against the
// working directory, as with the go tool. A pattern ending in /... walks
// the tree beneath it (skipping testdata and vendor); analyzers then
// apply only within their configured package scopes. A plain directory pattern, e.g.
// internal/analysis/testdata/src/determinism_bad, names the package
// explicitly and runs every analyzer on it regardless of scope — which is
// how the known-bad fixtures are exercised.
//
// Diagnostics print as "file:line:col: [analyzer] message", or as a JSON
// array with -json. The exit status is 1 when any diagnostic is reported,
// 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"quasar/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// go-tool convention: relative patterns resolve against the working
	// directory, so "./..." from a subdirectory covers that subtree only.
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	for i, pat := range patterns {
		dir, recursive := strings.CutSuffix(pat, "/...")
		if dir == "" || filepath.IsAbs(dir) {
			continue
		}
		dir = filepath.Join(cwd, dir)
		if recursive {
			dir += "/..."
		}
		patterns[i] = dir
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	diags := analysis.Run(loader.Fset, pkgs, analysis.All())

	if *jsonOut {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := []jsonDiag{}
		for _, d := range diags {
			out = append(out, jsonDiag{
				File: relPath(root, d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: [%s] %s\n",
				relPath(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("quasar-lint: no go.mod found above working directory")
		}
		dir = parent
	}
}

// relPath shortens filenames under the module root for stable, readable
// output.
func relPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) &&
		rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return rel
	}
	return file
}

func fatal(err error) {
	_, _ = fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
