// Command quasar-sim runs an ad-hoc cluster-management scenario: it builds
// a cluster, submits a workload mix, and reports per-workload performance
// against targets plus cluster utilization under the selected manager.
//
// Example:
//
//	quasar-sim -manager quasar -cluster local40 -hadoop 6 -services 4 \
//	           -single 40 -besteffort 60 -horizon 20000 -seed 7
//
// At-scale runs override the testbed preset with a uniform cluster and pack
// submissions tighter; stream the trace and sample workloads to keep both
// memory and trace size bounded:
//
//	quasar-sim -servers 1000 -gap 0.02 -horizon 260 -hadoop 0 -spark 0 \
//	           -storm 0 -services 20 -single 480 -besteffort 9500 \
//	           -trace run.jsonl -trace-sample 0.1 -trace-topk 8
//
// JSONL traces stream to disk while the run executes (the in-memory footprint
// stays bounded regardless of trace size) and finalize via temp-file + rename,
// so a failed run still leaves a valid partial trace. -trace-buffer opts back
// into full in-memory buffering; chrome and prom formats imply it, since they
// render from the whole trace.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"quasar/internal/chaos"
	"quasar/internal/core"
	"quasar/internal/experiments"
	"quasar/internal/loadgen"
	"quasar/internal/obs"
	"quasar/internal/obs/prof"
	"quasar/internal/par"
	"quasar/internal/perfmodel"
	"quasar/internal/workload"
)

func main() {
	if err := run(); err != nil {
		_, _ = fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		managerName = flag.String("manager", "quasar", "quasar | reservation-ll | reservation-paragon | framework | autoscale | mesos-drf")
		clusterName = flag.String("cluster", "local40", "local40 | ec2x200")
		servers     = flag.Int("servers", 0, "override -cluster with a uniform spread of the local platforms at this size")
		gap         = flag.Float64("gap", 5, "simulated seconds between submissions")
		hadoop      = flag.Int("hadoop", 4, "Hadoop jobs to submit")
		spark       = flag.Int("spark", 2, "Spark jobs")
		storm       = flag.Int("storm", 2, "Storm jobs")
		services    = flag.Int("services", 3, "latency-critical services")
		single      = flag.Int("single", 20, "single-node batch jobs")
		bestEffort  = flag.Int("besteffort", 40, "best-effort fillers")
		horizon     = flag.Float64("horizon", 20000, "simulated seconds to run")
		seed        = flag.Int64("seed", 1, "deterministic seed")
		workers     = flag.Int("workers", 0, "worker goroutines for parallel fan-outs (0 = GOMAXPROCS); never changes results")
		verbose     = flag.Bool("v", false, "per-workload detail")
		tracePath   = flag.String("trace", "", "write a deterministic trace of the run to this file")
		traceFormat = flag.String("trace-format", "jsonl", "trace format: jsonl | chrome | prom")
		traceBuffer = flag.Bool("trace-buffer", false, "buffer the whole trace in memory instead of streaming to disk (implied by chrome/prom formats)")
		traceLevel  = flag.String("trace-level", "", "default trace level: off | lifecycle | decision | debug (empty records everything)")
		traceCats   = flag.String("trace-cats", "", "per-category level overrides, e.g. 'runtime=lifecycle,chaos=off'")
		traceSample = flag.Float64("trace-sample", 0, "keep this fraction of workloads in the trace (hash-based and deterministic; 0 or 1 keeps all)")
		traceTopK   = flag.Int("trace-topk", 0, "truncate schedule-decision candidate rankings to the K best (0 keeps the full ranking)")
		profFlag    = flag.Bool("prof", false, "print an engine self-profile (wall-clock time per subsystem) after the run")
		faultsPath  = flag.String("faults", "", "inject faults from this chaos plan JSON (e.g. internal/chaos/testdata/storm.json)")
		sloFlag     = flag.Bool("slo", false, "monitor every non-best-effort workload against its SLO and report error budgets, burn-rate alerts, and cluster health")
	)
	flag.Parse()
	par.SetDefaultWorkers(*workers)

	kind := map[string]experiments.ManagerKind{
		"quasar":              experiments.KindQuasar,
		"reservation-ll":      experiments.KindReservationLL,
		"reservation-paragon": experiments.KindReservationParagon,
		"framework":           experiments.KindFrameworkSelf,
		"autoscale":           experiments.KindAutoscale,
		"mesos-drf":           experiments.KindMesosDRF,
	}[*managerName]
	cl := experiments.Local40
	if *clusterName == "ec2x200" {
		cl = experiments.EC2x200
	}

	controls, err := parseControls(*traceLevel, *traceCats, *traceSample, *traceTopK)
	if err != nil {
		return err
	}
	// JSONL traces stream straight to disk unless buffering is asked for;
	// chrome/prom render from the whole trace and need the buffer.
	var stream *obs.StreamSink
	var sinks []obs.Sink
	if *tracePath != "" && *traceFormat == "jsonl" && !*traceBuffer {
		stream, err = obs.NewStreamSink(*tracePath)
		if err != nil {
			return err
		}
		sinks = append(sinks, stream)
	}

	s, err := experiments.NewScenario(experiments.ScenarioConfig{
		Cluster: cl, Servers: *servers, Manager: kind, Seed: *seed, MaxNodes: 4,
		SeedLib: 3, Misestimate: true,
		Trace: *tracePath != "", SLO: *sloFlag,
		TraceSinks: sinks, TraceControls: controls,
	})
	if err != nil {
		if stream != nil {
			stream.Discard()
		}
		return err
	}
	// Finalize the trace no matter how the run ends: the streaming sink
	// renames its temp file into place on Close, so even an error below
	// leaves a valid partial trace instead of nothing.
	defer func() {
		if s.Tracer != nil {
			_ = s.Tracer.Close()
		}
	}()

	var inj *chaos.Injector
	if *faultsPath != "" {
		plan, err := chaos.Load(*faultsPath)
		if err != nil {
			return err
		}
		// Armed before any submission, like the availability experiment:
		// the injector's RNG stream derivation order is part of the
		// deterministic identity of the run.
		inj, err = s.AttachFaults(plan, core.DefaultDetectorOptions())
		if err != nil {
			return err
		}
	}

	var p *prof.Profiler
	if *profFlag {
		p = prof.New()
		if s.Q != nil {
			s.Q.SetProfiler(p)
		} else {
			s.RT.SetProfiler(p)
		}
		if s.SLO != nil {
			s.SLO.Prof = p
		}
		if inj != nil {
			inj.Prof = p
		}
		if stream != nil {
			stream.Prof = p
		}
	}

	var tasks []*core.Task
	at := 0.0
	submit := func(spec workload.Spec, load loadgen.Pattern) {
		w := s.U.New(spec)
		if load == nil && w.Type.Class() == perfmodel.LatencyCritical {
			load = loadgen.Fluctuating{Min: 0.4 * w.Target.QPS, Max: 0.9 * w.Target.QPS, Period: 6000}
		}
		tasks = append(tasks, s.RT.Submit(w, at, load))
		at += *gap
	}
	for i := 0; i < *hadoop; i++ {
		submit(workload.Spec{Type: workload.Hadoop, Family: i % 3, MaxNodes: 3, TargetSlack: 1.2,
			Dataset: workload.Dataset{Name: "sim", SizeGB: 20, WorkMult: 1.5, MemMult: 1}}, nil)
	}
	for i := 0; i < *spark; i++ {
		submit(workload.Spec{Type: workload.Spark, Family: i % 3, MaxNodes: 3, TargetSlack: 1.2,
			Dataset: workload.Dataset{Name: "sim", SizeGB: 20, WorkMult: 4, MemMult: 1}}, nil)
	}
	for i := 0; i < *storm; i++ {
		submit(workload.Spec{Type: workload.Storm, Family: i % 3, MaxNodes: 3, TargetSlack: 1.2,
			Dataset: workload.Dataset{Name: "sim", SizeGB: 20, WorkMult: 6, MemMult: 1}}, nil)
	}
	svcTypes := []workload.Type{workload.Webserver, workload.Memcached, workload.Cassandra}
	for i := 0; i < *services; i++ {
		submit(workload.Spec{Type: svcTypes[i%3], Family: -1, MaxNodes: 3}, nil)
	}
	for i := 0; i < *single; i++ {
		submit(workload.Spec{Type: workload.SingleNode, Family: -1, TargetSlack: 1.3}, nil)
	}
	for i := 0; i < *bestEffort; i++ {
		submit(workload.Spec{Type: workload.SingleNode, Family: -1, BestEffort: true}, nil)
	}

	s.RT.Run(*horizon)
	s.RT.Stop()

	if *tracePath != "" {
		if stream != nil {
			if err := s.Tracer.Close(); err != nil {
				return err
			}
			fmt.Printf("trace: %d events -> %s (jsonl, streamed, %d bytes)\n",
				s.Tracer.Len(), *tracePath, stream.BytesWritten())
		} else {
			if err := writeTrace(*tracePath, *traceFormat, s.Tracer); err != nil {
				return err
			}
			fmt.Printf("trace: %d events -> %s (%s)\n", s.Tracer.Len(), *tracePath, *traceFormat)
		}
		if d := s.Tracer.Dropped(); d > 0 {
			fmt.Printf("trace controls dropped %d events (recorded in the trace header)\n", d)
		}
	}

	clusterLabel := *clusterName
	if *servers > 0 {
		clusterLabel = fmt.Sprintf("uniform%d", *servers)
	}
	fmt.Printf("manager=%s cluster=%s horizon=%.0fs workloads=%d\n",
		s.Mgr.Name(), clusterLabel, *horizon, len(tasks))
	byStatus := map[core.Status]int{}
	sum, n := 0.0, 0
	for _, t := range tasks {
		byStatus[t.Status]++
		if t.W.BestEffort {
			continue
		}
		v := experiments.PerfNormalizedToTarget(s.RT, t)
		if math.IsNaN(v) {
			continue
		}
		if *verbose {
			fmt.Printf("  %-20s %-12s %-10s perf=%.2f nodes=%d\n",
				t.W.ID, t.W.Type, t.Status, v, t.NumNodes())
		}
		if v > 1 {
			v = 1
		}
		sum += v
		n++
	}
	fmt.Printf("statuses: ")
	for st := core.StatusQueued; st <= core.StatusRejected; st++ {
		if byStatus[st] > 0 {
			fmt.Printf("%s=%d ", st, byStatus[st])
		}
	}
	fmt.Println()
	if n > 0 {
		fmt.Printf("mean %% of target achieved: %.1f%%\n", 100*sum/float64(n))
	}
	fmt.Printf("mean CPU utilization: %.1f%%\n", 100*s.RT.CPUHeat.MeanOverall())

	if s.SLO != nil {
		s.SLO.Report(os.Stdout)
	}

	if inj != nil {
		st := inj.Stats()
		fmt.Printf("faults: %d crashes, %d slowdowns, %d partitions (%d restarts, %d heals, %d skipped); live servers %d/%d\n",
			st.Crashes, st.Slowdowns, st.Partitions, st.Restarts, st.Heals, st.Skipped,
			s.RT.Cl.NumLive(), len(s.RT.Cl.Servers))
		if s.Q != nil {
			rec := s.Q.Recovery()
			fmt.Printf("recovery: %d displaced (%d LC), %d re-admitted (%d without re-profiling), MTTR %.0fs\n",
				rec.Displaced, rec.DisplacedLC, rec.Readmitted, rec.ReadmittedNoReprofile, rec.MTTR())
		}
	}

	if p != nil {
		if err := p.WriteReport(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// parseControls builds trace controls from the -trace-* flags, nil when every
// flag is at its record-everything default.
func parseControls(level, cats string, sample float64, topK int) (*obs.Controls, error) {
	c := obs.Controls{SampleWorkloads: sample, TopK: topK}
	if level != "" {
		l, ok := obs.ParseLevel(level)
		if !ok {
			return nil, fmt.Errorf("unknown -trace-level %q (want off, lifecycle, decision, or debug)", level)
		}
		c.Default = l
	}
	if cats != "" {
		c.Category = map[string]obs.Level{}
		for _, pair := range strings.Split(cats, ",") {
			cat, lvl, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				return nil, fmt.Errorf("bad -trace-cats entry %q (want category=level)", pair)
			}
			l, okL := obs.ParseLevel(lvl)
			if !okL {
				return nil, fmt.Errorf("unknown level %q in -trace-cats entry %q", lvl, pair)
			}
			c.Category[cat] = l
		}
	}
	if c.Default == obs.LevelUnset && len(c.Category) == 0 && sample == 0 && topK == 0 { //lint:allow(floatcmp) zero means "flag not set"
		return nil, nil
	}
	return &c, nil
}

// writeTrace renders the collected trace in the requested format.
func writeTrace(path, format string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch format {
	case "jsonl":
		err = obs.WriteJSONL(f, tr)
	case "chrome":
		err = obs.WriteChromeTrace(f, tr)
	case "prom":
		err = obs.WritePromSnapshot(f, tr)
	default:
		err = fmt.Errorf("unknown -trace-format %q (want jsonl, chrome, or prom)", format)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
