// Command quasar-bench regenerates every table and figure of the paper's
// evaluation as text rows/series. Run it with no arguments for the full
// suite, or name the artifacts to regenerate:
//
//	quasar-bench fig1 fig2 table1 table2 fig3 fig5 table3 fig6 fig7 \
//	             fig8 fig9 fig10 fig11 stragglers phases overheads ablations
//
// The "parbench" artifact (not part of the default suite) times the
// classification sweeps sequentially vs on the worker pool and writes the
// comparison to -parbench-out (default BENCH_parallel.json).
//
// The "obsbench" artifact (also not in the default suite) times a full
// scenario with the tracer off vs on and writes the overhead record to
// -obsbench-out (default BENCH_obs.json).
//
// The "availability" artifact runs the canned fault storm and reports
// QoS-met %, MTTR, and the displaced-work half-life. The "chaosbench"
// artifact (not in the default suite) times a scenario with the failure
// detector off vs on vs under the storm and writes the overhead record to
// -chaosbench-out (default BENCH_chaos.json).
//
// The "slodetect" artifact scores the burn-rate alert stream against a
// scripted crash storm (precision, recall, detection latency vs the
// heartbeat detector). The "slobench" artifact (not in the default suite)
// times a scenario with the SLO engine off vs on and writes the overhead
// record to -slobench-out (default BENCH_slo.json).
//
// The "allocbench" artifact (not in the default suite) measures heap
// allocations per operation on the hot roots declared in hotpath.json and
// writes the record to -allocbench-out (default BENCH_alloc.json); counts
// over the committed budgets exit non-zero.
//
// The "scalebench" artifact (not in the default suite) sweeps cluster sizes
// (100 → 10k servers), timing indexed vs full-scan scheduling and the
// calendar-queue vs heap event cores, and writes the record to
// -scalebench-out (default BENCH_scale.json); speedups below the scaling
// contract exit non-zero.
//
// The "obsscale" artifact (not in the default suite) times the at-scale
// scenario untraced vs traced through the streaming sink at 1k and 10k
// servers and writes events/sec, overhead fraction, and the tracer's
// high-water memory to -obsscale-out (default BENCH_obs_scale.json);
// overhead past the budget exits non-zero.
//
// The -quick flag shrinks every scenario (fewer workloads, shorter
// horizons) for a fast smoke pass. -cpuprofile and -memprofile capture
// pprof profiles of whatever artifacts run, for drilling into where the
// engine itself spends time.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"quasar/internal/experiments"
	"quasar/internal/par"
	"quasar/internal/trace"
)

func main() {
	quick := flag.Bool("quick", false, "shrink scenarios for a fast pass")
	workers := flag.Int("workers", 0, "worker goroutines for parallel fan-outs (0 = GOMAXPROCS); never changes results")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	parbenchOut := flag.String("parbench-out", "BENCH_parallel.json", "output path for the parbench artifact")
	obsbenchOut := flag.String("obsbench-out", "BENCH_obs.json", "output path for the obsbench artifact")
	chaosbenchOut := flag.String("chaosbench-out", "BENCH_chaos.json", "output path for the chaosbench artifact")
	slobenchOut := flag.String("slobench-out", "BENCH_slo.json", "output path for the slobench artifact")
	allocbenchOut := flag.String("allocbench-out", "BENCH_alloc.json", "output path for the allocbench artifact")
	scalebenchOut := flag.String("scalebench-out", "BENCH_scale.json", "output path for the scalebench artifact")
	obsscaleOut := flag.String("obsscale-out", "BENCH_obs_scale.json", "output path for the obsscale artifact")
	flag.Parse()
	par.SetDefaultWorkers(*workers)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		die(err)
		die(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			die(err)
			runtime.GC() // settle the heap so the profile shows retained memory
			die(pprof.WriteHeapProfile(f))
			_ = f.Close()
		}()
	}

	artifacts := flag.Args()
	if len(artifacts) == 0 {
		artifacts = []string{"fig1", "fig2", "table1", "table2", "fig3", "fig5",
			"table3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
			"stragglers", "phases", "overheads", "ablations", "availability",
			"slodetect"}
	}

	var fig5res *experiments.Fig5Result // shared by fig5 and table3
	var fig6res *experiments.Fig6Result // shared by fig6 and fig7
	var fig9res *experiments.Fig9Result // shared by fig9 and fig10

	for _, name := range artifacts {
		start := time.Now()
		switch name {
		case "fig1":
			cfg := trace.DefaultConfig()
			if *quick {
				cfg.Servers, cfg.Workloads, cfg.Days = 200, 800, 14
			}
			experiments.Fig1(cfg).Print(os.Stdout)
		case "fig2":
			experiments.Fig2(3).Print(os.Stdout)
		case "table1":
			experiments.Table1().Print(os.Stdout)
		case "table2":
			cfg := experiments.DefaultTable2Config()
			if *quick {
				cfg.Hadoop, cfg.Memcached, cfg.Webserver, cfg.SingleNode = 4, 4, 4, 40
			}
			experiments.Table2(cfg).Print(os.Stdout)
		case "fig3":
			cfg := experiments.DefaultFig3Config()
			if *quick {
				cfg.EntriesGrid = []int{1, 2, 4, 8}
				cfg.PerClass = 3
			}
			experiments.Fig3(cfg).Print(os.Stdout)
		case "fig5", "table3":
			if fig5res == nil {
				cfg := experiments.DefaultFig5Config()
				if *quick {
					cfg.Jobs = 4
				}
				var err error
				fig5res, err = experiments.Fig5(cfg)
				die(err)
			}
			if name == "fig5" {
				fig5res.Print(os.Stdout)
			} else {
				fig5res.Table3(os.Stdout)
			}
		case "fig6", "fig7":
			if fig6res == nil {
				cfg := experiments.DefaultFig6Config()
				if *quick {
					cfg.Hadoop, cfg.Storm, cfg.Spark, cfg.BestEffort = 4, 2, 2, 40
					cfg.HorizonSecs = 10000
				}
				var err error
				fig6res, err = experiments.Fig6(cfg)
				die(err)
			}
			if name == "fig6" {
				fig6res.Print(os.Stdout)
			}
			// fig7 is printed as part of fig6's output.
		case "fig8":
			cfg := experiments.DefaultFig8Config()
			if *quick {
				cfg.HorizonSecs = 8000
				cfg.BestEffort = 150
			}
			res, err := experiments.Fig8(cfg)
			die(err)
			res.Print(os.Stdout)
		case "fig9", "fig10":
			if fig9res == nil {
				cfg := experiments.DefaultFig9Config()
				if *quick {
					cfg.HorizonSecs = 6 * 3600
					cfg.BestEffort = 300
				}
				var err error
				fig9res, err = experiments.Fig9(cfg)
				die(err)
			}
			if name == "fig9" {
				fig9res.Print(os.Stdout)
			}
			// fig10 is printed as part of fig9's output.
		case "fig11":
			cfg := experiments.DefaultFig11Config()
			if *quick {
				cfg.Workloads = 200
				cfg.HorizonSecs = 9000
			}
			res, err := experiments.Fig11(cfg)
			die(err)
			res.Print(os.Stdout)
		case "stragglers":
			experiments.Stragglers(7, 1).Print(os.Stdout)
		case "phases":
			n := 25
			if *quick {
				n = 10
			}
			res, err := experiments.Phases(n, 2)
			die(err)
			res.Print(os.Stdout)
		case "overheads":
			n := 12
			if *quick {
				n = 6
			}
			res, err := experiments.Overheads(n, 3)
			die(err)
			res.Print(os.Stdout)
		case "ablations":
			res, err := experiments.Ablations(5)
			die(err)
			res.Print(os.Stdout)
		case "parbench":
			cfg := experiments.DefaultParBenchConfig()
			cfg.Workers = *workers
			if *quick {
				cfg.Table2.Hadoop, cfg.Table2.Memcached, cfg.Table2.Webserver, cfg.Table2.SingleNode = 3, 3, 3, 12
				cfg.Fig3.EntriesGrid = []int{1, 4}
				cfg.Fig3.PerClass = 2
			}
			res := experiments.ParBench(cfg)
			res.Print(os.Stdout)
			die(res.WriteJSON(*parbenchOut))
		case "availability":
			cfg := experiments.DefaultAvailabilityConfig()
			if *quick {
				cfg.Hadoop, cfg.Spark, cfg.Services = 2, 1, 3
				cfg.SingleNode, cfg.BestEffort = 5, 8
				cfg.HorizonSecs = 8000
			}
			res, err := experiments.Availability(cfg)
			die(err)
			res.Print(os.Stdout)
		case "chaosbench":
			cfg := experiments.DefaultChaosBenchConfig()
			if *quick {
				cfg.Avail.Hadoop, cfg.Avail.Spark, cfg.Avail.Services = 2, 1, 3
				cfg.Avail.SingleNode, cfg.Avail.BestEffort = 5, 8
				cfg.Avail.HorizonSecs = 8000
				cfg.Repeats = 2
			}
			res, err := experiments.ChaosBench(cfg)
			die(err)
			res.Print(os.Stdout)
			die(res.WriteJSON(*chaosbenchOut))
		case "slodetect":
			cfg := experiments.DefaultSLODetectConfig()
			if *quick {
				cfg.SingleNode = 20
				cfg.Crashes = 2
				cfg.HorizonSecs = 7000
			}
			res, err := experiments.SLODetect(cfg)
			die(err)
			res.Print(os.Stdout)
		case "slobench":
			cfg := experiments.DefaultSLOBenchConfig()
			if *quick {
				cfg.Mix.Hadoop, cfg.Mix.Spark, cfg.Mix.Storm, cfg.Mix.Services = 2, 1, 1, 2
				cfg.Mix.SingleNode, cfg.Mix.BestEffort = 6, 8
				cfg.Mix.HorizonSecs = 4000
				cfg.Mix.Repeats = 2
			}
			res, err := experiments.SLOBench(cfg)
			die(err)
			res.Print(os.Stdout)
			die(res.WriteJSON(*slobenchOut))
		case "allocbench":
			cfg := experiments.DefaultAllocBenchConfig()
			if *quick {
				cfg.Runs = 50
				cfg.WarmTicks = 100
			}
			res, err := experiments.AllocBench(cfg)
			die(err)
			res.Print(os.Stdout)
			die(res.WriteJSON(*allocbenchOut))
			die(res.Check())
		case "scalebench":
			cfg := experiments.DefaultScaleBenchConfig()
			if *quick {
				cfg = experiments.QuickScaleBenchConfig()
			}
			res, err := experiments.ScaleBench(cfg)
			die(err)
			res.Print(os.Stdout)
			die(res.WriteJSON(*scalebenchOut))
			die(res.Check())
		case "obsscale":
			cfg := experiments.DefaultObsScaleConfig()
			if *quick {
				cfg = experiments.QuickObsScaleConfig()
			}
			res, err := experiments.ObsScale(cfg)
			die(err)
			res.Print(os.Stdout)
			die(res.WriteJSON(*obsscaleOut))
			die(res.Check())
		case "obsbench":
			cfg := experiments.DefaultObsBenchConfig()
			if *quick {
				cfg.Hadoop, cfg.Spark, cfg.Storm, cfg.Services = 2, 1, 1, 2
				cfg.SingleNode, cfg.BestEffort = 6, 8
				cfg.HorizonSecs = 4000
				cfg.Repeats = 2
			}
			res, err := experiments.ObsBench(cfg)
			die(err)
			res.Print(os.Stdout)
			die(res.WriteJSON(*obsbenchOut))
		default:
			_, _ = fmt.Fprintf(os.Stderr, "unknown artifact %q\n", name)
			os.Exit(2)
		}
		fmt.Printf("[%s done in %.1fs]\n\n", name, time.Since(start).Seconds())
	}
}

func die(err error) {
	if err != nil {
		_, _ = fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
