// Command quasar-load is the closed-loop load generator for quasar-serve.
//
// Benchmark mode spins up its own daemon, drives the admission API with
// concurrent closed-loop clients, then measures the warm-failover gap with a
// journal-tailing standby, and writes the committed baseline:
//
//	quasar-load -bench -out BENCH_serve.json
//	quasar-load -bench -quick          # CI smoke profile (rate gate waived)
//
// Client mode drives an already-running daemon:
//
//	quasar-load -addr 127.0.0.1:7717 -clients 8 -duration 10s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"quasar/internal/serve"
)

func main() {
	if err := run(); err != nil {
		_, _ = fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		bench     = flag.Bool("bench", false, "run the self-contained serve benchmark (rate + failover phases)")
		quick     = flag.Bool("quick", false, "with -bench: short CI profile; throughput gate is waived")
		inproc    = flag.Bool("inprocess", false, "with -bench: dispatch requests in-process instead of over loopback TCP")
		out       = flag.String("out", "", "with -bench: write the JSON result here (e.g. BENCH_serve.json)")
		wall      = flag.Float64("wall", 0, "with -bench: rate-phase duration in seconds (0 = profile default)")
		benchSeed = flag.Int64("seed", 0, "with -bench: world seed (0 = default)")
		addr      = flag.String("addr", "", "client mode: drive the daemon at this address")
		clients   = flag.Int("clients", 0, "concurrent closed-loop clients (0 = profile default; client mode default 8)")
		duration  = flag.Duration("duration", 10*time.Second, "client mode: how long to drive")
	)
	flag.Parse()

	if *bench {
		res, err := serve.ServeBench(serve.BenchConfig{
			Quick: *quick, InProcess: *inproc,
			Clients: *clients, WallSecs: *wall, Seed: *benchSeed,
		})
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		if err := res.Check(); err != nil {
			return err
		}
		if *out != "" {
			if err := res.WriteJSON(*out); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *out)
		}
		return nil
	}

	if *addr == "" {
		return fmt.Errorf("either -bench or -addr is required")
	}
	if *clients <= 0 {
		*clients = 8
	}
	st, err := serve.Drive(*addr, *clients, *duration)
	if err != nil {
		return err
	}
	fmt.Printf("drove %s: %d requests in %.1fs (%.0f req/s, %d submits, %d errors)\n",
		*addr, st.Requests, st.WallSecs, float64(st.Requests)/st.WallSecs, st.Submits, st.Errors)
	fmt.Printf("admission latency: p50 %.0fus  p99 %.0fus\n", st.AdmitP50US, st.AdmitP99US)
	return nil
}
