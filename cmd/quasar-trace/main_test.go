package main

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quasar/internal/obs"
)

// writeServeTrace streams a synthetic serve-flavored trace to a file the way
// quasar-serve does (StreamSink), with events at known sim times: one
// serve.apply per admission at t = 10, 20, ..., 10*n, and apply errors with
// the given reasons at t = 5.
func writeServeTrace(t *testing.T, path string, applies int, errorReasons []string) {
	t.Helper()
	sink, err := obs.NewStreamSink(path)
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	tr := obs.NewWithSinks(func() float64 { return now }, sink)
	for i, reason := range errorReasons {
		now = 5
		tr.Instant("serve", "serve", "serve.apply-error",
			obs.Arg{Key: "seq", Val: i + 1}, obs.Arg{Key: "kind", Val: "target"},
			obs.Arg{Key: "error", Val: reason})
	}
	for i := 1; i <= applies; i++ {
		now = float64(10 * i)
		tr.Instant("serve", "serve", "serve.apply",
			obs.Arg{Key: "seq", Val: i}, obs.Arg{Key: "kind", Val: "submit"},
			obs.Arg{Key: "workload", Val: fmt.Sprintf("single-node-%04d", i)},
			obs.Arg{Key: "req", Val: fmt.Sprintf("r-%d", i)})
		tr.Instant("workload/w"+fmt.Sprint(i), "runtime", "submit")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSummarizeWindowFilter drives summarize the way the -since/-until flags
// do, against a StreamSink-written trace: the unwindowed summary sees every
// event, and a clipped window drops exactly the events outside it.
func TestSummarizeWindowFilter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	writeServeTrace(t, path, 5, nil)

	run := func(since, until float64) string {
		t.Helper()
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = f.Close() }()
		var out bytes.Buffer
		if err := summarize(f, since, until, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}

	full := run(neg(), pos())
	if !strings.Contains(full, "events: 10  span: 10s..50s") {
		t.Fatalf("full summary wrong:\n%s", full)
	}
	if !strings.Contains(full, "serve admissions: 5 applied, 0 apply errors") {
		t.Fatalf("full summary missing serve admissions:\n%s", full)
	}

	windowed := run(20, 40)
	if !strings.Contains(windowed, "events: 6  span: 20s..40s") {
		t.Fatalf("windowed summary kept the wrong events:\n%s", windowed)
	}
	if !strings.Contains(windowed, "serve admissions: 3 applied, 0 apply errors") {
		t.Fatalf("windowed summary counted the wrong admissions:\n%s", windowed)
	}

	empty := run(1000, 2000)
	if !strings.Contains(empty, "empty trace") {
		t.Fatalf("out-of-range window should summarize as empty:\n%s", empty)
	}
}

// TestSummarizeApplyErrorReasons pins the serve.apply-error rollup: the
// summary counts errors and ranks the top reasons by occurrence, ties
// alphabetical.
func TestSummarizeApplyErrorReasons(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	writeServeTrace(t, path, 2, []string{
		"unknown workload x-1", "unknown workload x-1", "unknown workload x-1",
		"not best-effort", "not best-effort",
		"already removed",
	})

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	var out bytes.Buffer
	if err := summarize(f, neg(), pos(), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "serve admissions: 2 applied, 6 apply errors") {
		t.Fatalf("summary missing error totals:\n%s", got)
	}
	i1 := strings.Index(got, "apply error 3x: unknown workload x-1")
	i2 := strings.Index(got, "apply error 2x: not best-effort")
	i3 := strings.Index(got, "apply error 1x: already removed")
	if i1 < 0 || i2 < 0 || i3 < 0 || !(i1 < i2 && i2 < i3) {
		t.Fatalf("top reasons missing or misordered (%d, %d, %d):\n%s", i1, i2, i3, got)
	}
}

// TestTopReasons pins the ranking helper directly: count descending, ties
// alphabetical, truncated to k.
func TestTopReasons(t *testing.T) {
	m := map[string]int{"b": 2, "a": 2, "c": 5, "d": 1}
	got := topReasons(m, 3)
	want := []reasonCount{{"c", 5}, {"a", 2}, {"b", 2}}
	if len(got) != len(want) {
		t.Fatalf("topReasons returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topReasons[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// neg/pos are the flag defaults for an unwindowed run.
func neg() float64 { return math.Inf(-1) }
func pos() float64 { return math.Inf(1) }
