// Command quasar-trace summarizes a JSONL trace written by quasar-sim
// -trace. It reconstructs scheduling decisions and task lifecycles from the
// log alone and answers the questions an operator asks of a run:
//
//	quasar-trace run.jsonl                     # run summary
//	quasar-trace -task hadoop-0007 run.jsonl   # task timeline
//	quasar-trace -task hadoop-0007 -server 12 run.jsonl
//	                                           # why did it land on server 12?
//	quasar-trace -task memcached-0003 -qos run.jsonl
//	                                           # why did it miss its QoS target?
//	quasar-trace -alerts run.jsonl             # SLO alert timeline + why each fired
//	quasar-trace -since 3000 -until 4000 run.jsonl
//	                                           # restrict any view to a sim-time window
//	quasar-trace -follow 127.0.0.1:7717        # tail a live daemon's trace stream
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"

	"quasar/internal/obs"
)

func main() {
	var (
		task    = flag.String("task", "", "focus on one workload ID")
		server  = flag.Int("server", -1, "with -task: explain the placement on this server")
		qos     = flag.Bool("qos", false, "with -task: explain QoS misses")
		alerts  = flag.Bool("alerts", false, "SLO alert timeline with the burn math behind each fire")
		since   = flag.Float64("since", math.Inf(-1), "drop events before this sim time (seconds)")
		until   = flag.Float64("until", math.Inf(1), "drop events after this sim time (seconds)")
		follow  = flag.Bool("follow", false, "treat the argument as a live daemon address and tail GET /v1/trace/stream")
		followN = flag.Int("n", 0, "with -follow: stop after this many events (0 streams until the daemon ends the run)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		_, _ = fmt.Fprintln(os.Stderr, "usage: quasar-trace [-task ID [-server N | -qos]] [-alerts] [-since T] [-until T] trace.jsonl")
		_, _ = fmt.Fprintln(os.Stderr, "       quasar-trace -follow [-n N] daemon-addr")
		os.Exit(2)
	}
	if *follow {
		if err := followStream(flag.Arg(0), *followN, os.Stdout); err != nil {
			_, _ = fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		_, _ = fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	defer func() { _ = f.Close() }()

	if *task == "" && !*alerts {
		if err := summarize(f, *since, *until, os.Stdout); err != nil {
			_, _ = fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	var evs []obs.RawEvent
	var droppedAtRecord float64
	hdr, err := obs.ScanJSONL(f, func(ev *obs.RawEvent) error {
		evs = append(evs, *ev)
		return nil
	}, func(m *obs.RawMetric) error {
		if m.Name == "tracer_events_dropped_total" {
			_ = json.Unmarshal(m.Value, &droppedAtRecord)
		}
		return nil
	})
	if err != nil {
		_, _ = fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	reportControls(os.Stdout, hdr, droppedAtRecord)
	evs = clipWindow(evs, *since, *until)

	switch {
	case *alerts:
		alertTimeline(evs, *task)
	case *task != "" && *server >= 0:
		explainPlacement(evs, *task, *server)
	case *task != "" && *qos:
		explainQoS(evs, *task)
	default:
		timeline(evs, *task)
	}
}

// summarize runs the summary view: it aggregates incrementally over
// ScanJSONL, holding one line at a time — a multi-gigabyte streamed trace
// summarizes in constant memory. Split from main so window-filter tests can
// drive it against a file and capture the output.
func summarize(r io.Reader, since, until float64, w io.Writer) error {
	var sum summary
	hdr, err := obs.ScanJSONL(r, func(ev *obs.RawEvent) error {
		if ev.T < since || ev.T > until {
			return nil
		}
		sum.add(ev)
		return nil
	}, sum.metric)
	if err != nil {
		return err
	}
	reportControls(w, hdr, sum.droppedAtRecord)
	sum.report(w)
	return nil
}

// reportControls tells the reader what the recording run chose to drop, from
// the trace header and the tracer's own drop counter — so "no events for
// workload X" can mean "sampled out at record time", not "never happened".
func reportControls(w io.Writer, h *obs.Header, dropped float64) {
	if h == nil {
		return
	}
	var parts []string
	if h.Level != "" {
		parts = append(parts, "level="+h.Level)
	}
	for _, cl := range h.Levels {
		parts = append(parts, cl.Cat+"="+cl.Level)
	}
	if h.Sampled {
		parts = append(parts, fmt.Sprintf("workload sample=%.3g", h.Sample))
	}
	if h.TopK > 0 {
		parts = append(parts, fmt.Sprintf("top-k candidates=%d", h.TopK))
	}
	if len(parts) == 0 {
		return
	}
	_, _ = fmt.Fprintf(w, "recorded with trace controls: %s", strings.Join(parts, ", "))
	if dropped > 0 {
		_, _ = fmt.Fprintf(w, " (%.0f events dropped at record time)", dropped)
	}
	_, _ = fmt.Fprintln(w)
}

// clipWindow keeps the events inside [since, until]. Events are time-ordered
// in the log, so the result stays contiguous.
func clipWindow(evs []obs.RawEvent, since, until float64) []obs.RawEvent {
	lo := sort.Search(len(evs), func(i int) bool { return evs[i].T >= since })
	hi := sort.Search(len(evs), func(i int) bool { return evs[i].T > until })
	return evs[lo:hi]
}

// decisionOf decodes the ScheduleDecision payload of a sched decision event.
func decisionOf(ev *obs.RawEvent) (*obs.ScheduleDecision, bool) {
	if ev.Cat != "sched" || ev.Name != "decision" {
		return nil, false
	}
	var w struct {
		Decision obs.ScheduleDecision `json:"decision"`
	}
	if err := json.Unmarshal(ev.Args, &w); err != nil {
		return nil, false
	}
	return &w.Decision, true
}

func argsOf(ev *obs.RawEvent) map[string]any {
	m := map[string]any{}
	_ = json.Unmarshal(ev.Args, &m)
	return m
}

// touches reports whether an event belongs to a workload: on its own track,
// a placement span named after it, or a decision about it.
func touches(ev *obs.RawEvent, task string) bool {
	if ev.Track == "workload/"+task {
		return true
	}
	if strings.HasPrefix(ev.Track, "server/") && ev.Name == task {
		return true
	}
	if d, ok := decisionOf(ev); ok {
		return d.Workload == task
	}
	if a := argsOf(ev); a["workload"] == task {
		return true
	}
	return false
}

// summary accumulates the run-summary aggregates one event at a time, so the
// streaming path never holds the trace in memory.
type summary struct {
	count              int
	minT, maxT         float64
	byName             map[string]int
	workloads, servers map[string]bool
	decisions, placed  int
	chaosCount, detect map[string]int
	readmits, reused   int
	deferred           int
	delaySum           float64
	droppedAtRecord    float64
	serveApplied       int
	serveErrors        int
	serveReasons       map[string]int
}

func (s *summary) add(ev *obs.RawEvent) {
	if s.byName == nil {
		s.byName = map[string]int{}
		s.workloads, s.servers = map[string]bool{}, map[string]bool{}
		s.chaosCount, s.detect = map[string]int{}, map[string]int{}
		s.serveReasons = map[string]int{}
		s.minT = ev.T
	}
	s.count++
	s.maxT = ev.T
	s.byName[ev.Name]++
	if strings.HasPrefix(ev.Track, "workload/") {
		s.workloads[strings.TrimPrefix(ev.Track, "workload/")] = true
	}
	if strings.HasPrefix(ev.Track, "server/") {
		s.servers[ev.Track] = true
	}
	if d, ok := decisionOf(ev); ok {
		s.decisions++
		if d.Outcome == obs.OutcomePlaced {
			s.placed++
		}
	}
	switch ev.Cat {
	case "serve":
		switch ev.Name {
		case "serve.apply":
			s.serveApplied++
		case "serve.apply-error":
			s.serveErrors++
			if r, ok := argsOf(ev)["error"].(string); ok && r != "" {
				s.serveReasons[r]++
			}
		}
	case "chaos":
		s.chaosCount[ev.Name]++
	case "detect":
		s.detect[ev.Name]++
	case "recover":
		switch ev.Name {
		case "re-admit":
			s.readmits++
			a := argsOf(ev)
			if d, ok := a["delay_secs"].(float64); ok {
				s.delaySum += d
			}
			if r, ok := a["reused_signature"].(bool); ok && r {
				s.reused++
			}
		case "readmit-defer":
			s.deferred++
		}
	}
}

// metric harvests the trailing metric lines the summary reports on.
func (s *summary) metric(m *obs.RawMetric) error {
	if m.Name == "tracer_events_dropped_total" {
		_ = json.Unmarshal(m.Value, &s.droppedAtRecord)
	}
	return nil
}

func (s *summary) report(w io.Writer) {
	if s.count == 0 {
		_, _ = fmt.Fprintln(w, "empty trace")
		return
	}
	_, _ = fmt.Fprintf(w, "events: %d  span: %.0fs..%.0fs\n", s.count, s.minT, s.maxT)
	_, _ = fmt.Fprintf(w, "workloads: %d  servers touched: %d\n", len(s.workloads), len(s.servers))
	_, _ = fmt.Fprintf(w, "schedule decisions: %d (%d placed, %d rejected)\n", s.decisions, s.placed, s.decisions-s.placed)
	if s.serveApplied > 0 || s.serveErrors > 0 {
		_, _ = fmt.Fprintf(w, "serve admissions: %d applied, %d apply errors\n", s.serveApplied, s.serveErrors)
		for _, rc := range topReasons(s.serveReasons, 5) {
			_, _ = fmt.Fprintf(w, "  apply error %dx: %s\n", rc.n, rc.reason)
		}
	}
	if len(s.chaosCount) > 0 || len(s.detect) > 0 || s.readmits > 0 || s.deferred > 0 {
		_, _ = fmt.Fprintf(w, "faults injected: %d crashes, %d slowdowns, %d partitions (%d restarts, %d heals)\n",
			s.chaosCount["fault-crash"], s.chaosCount["fault-slowdown"], s.chaosCount["fault-partition"],
			s.chaosCount["fault-restart"], s.chaosCount["fault-heal"])
		_, _ = fmt.Fprintf(w, "detector: %d suspected, %d declared dead, %d restored; %d workload displacements\n",
			s.detect["hb-suspect"], s.detect["hb-dead"], s.detect["hb-restored"], s.detect["displaced"])
		_, _ = fmt.Fprintf(w, "recovery: %d re-admissions (%d reusing the cached signature), %d deferred",
			s.readmits, s.reused, s.deferred)
		if s.readmits > 0 {
			_, _ = fmt.Fprintf(w, "; MTTR %.0fs", s.delaySum/float64(s.readmits))
		}
		_, _ = fmt.Fprintln(w)
	}
	names := make([]string, 0, len(s.byName))
	for n := range s.byName {
		// Placement spans are named after workloads; fold them into one row.
		if s.workloads[n] {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	_, _ = fmt.Fprintln(w, "event counts:")
	for _, n := range names {
		_, _ = fmt.Fprintf(w, "  %-18s %d\n", n, s.byName[n])
	}
}

// reasonCount is one apply-error reason with its occurrence count.
type reasonCount struct {
	reason string
	n      int
}

// topReasons ranks reasons by count (ties alphabetical) and keeps the top k.
func topReasons(m map[string]int, k int) []reasonCount {
	out := make([]reasonCount, 0, len(m))
	for r, n := range m {
		out = append(out, reasonCount{reason: r, n: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].n != out[j].n {
			return out[i].n > out[j].n
		}
		return out[i].reason < out[j].reason
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func timeline(evs []obs.RawEvent, task string) {
	found := false
	for i := range evs {
		ev := &evs[i]
		if !touches(ev, task) {
			continue
		}
		found = true
		switch {
		case ev.Name == task && ev.Ph == "b":
			a := argsOf(ev)
			fmt.Printf("%9.1fs  placed on %s  %v cores / %v GB (%v)\n",
				ev.T, strings.TrimPrefix(ev.Track, "server/"), a["cores"], a["mem_gb"], a["platform"])
		case ev.Name == task && ev.Ph == "e":
			fmt.Printf("%9.1fs  removed from %s\n", ev.T, strings.TrimPrefix(ev.Track, "server/"))
		case ev.Cat == "detect" && ev.Name == "displaced":
			a := argsOf(ev)
			fmt.Printf("%9.1fs  displaced from server %v (%v, %v nodes left)\n",
				ev.T, a["server"], a["reason"], a["remaining_nodes"])
		case ev.Cat == "recover" && ev.Name == "re-admit":
			a := argsOf(ev)
			sig := "fresh classification"
			if r, ok := a["reused_signature"].(bool); ok && r {
				sig = "cached signature, no re-profiling"
			}
			fmt.Printf("%9.1fs  re-admitted via %v after %vs (%s, %v nodes)\n",
				ev.T, a["how"], a["delay_secs"], sig, a["nodes"])
		case ev.Cat == "recover" && ev.Name == "readmit-defer":
			a := argsOf(ev)
			fmt.Printf("%9.1fs  re-admission deferred: cluster degraded (%v live servers, %v free cores)\n",
				ev.T, a["live_servers"], a["live_free_cores"])
		default:
			if d, ok := decisionOf(ev); ok {
				fmt.Printf("%9.1fs  schedule: %s (need %.3g, %d candidates, picked %v)\n",
					ev.T, d.Outcome, d.NeedPerf, len(d.Candidates), d.PickedServers())
				continue
			}
			fmt.Printf("%9.1fs  %s", ev.T, ev.Name)
			if a := argsOf(ev); len(a) > 0 && ev.Name != "submit" {
				b, _ := json.Marshal(a)
				fmt.Printf("  %s", b)
			}
			fmt.Println()
		}
	}
	if !found {
		fmt.Printf("no events for workload %q\n", task)
	}
}

// alertTimeline lists every SLO alert transition in the (possibly clipped)
// trace, replaying the burn arithmetic the engine recorded at fire time so an
// operator can verify why each alert fired without re-running the simulation.
// With task set, only that workload's alerts are shown.
func alertTimeline(evs []obs.RawEvent, task string) {
	wl := func(ev *obs.RawEvent) string { return strings.TrimPrefix(ev.Track, "workload/") }
	shown, fires, resolves := 0, 0, 0
	for i := range evs {
		ev := &evs[i]
		if ev.Cat != "slo" {
			continue
		}
		if task != "" && wl(ev) != task {
			continue
		}
		a := argsOf(ev)
		switch ev.Name {
		case "alert_fire":
			fires++
			shown++
			fmt.Printf("%9.1fs  FIRE    %-6v %-18s goal=%.2f budget=%.3g\n",
				ev.T, a["rule"], wl(ev), num(a["goal"]), num(a["budget"]))
			fmt.Printf("            why: long window %vs had %vs bad -> burn %.1fx >= %vx threshold\n",
				a["window_long_secs"], a["bad_secs_long"], num(a["burn_long"]), a["threshold"])
			fmt.Printf("                 short window %vs had %vs bad -> burn %.1fx >= %vx threshold\n",
				a["window_short_secs"], a["bad_secs_short"], num(a["burn_short"]), a["threshold"])
		case "alert_resolve":
			resolves++
			shown++
			reason := ""
			if r, ok := a["reason"]; ok {
				reason = fmt.Sprintf(" (%v)", r)
			}
			fmt.Printf("%9.1fs  RESOLVE %-6v %-18s after %.0fs, peak burn %.1fx%s\n",
				ev.T, a["rule"], wl(ev), num(a["duration_secs"]), num(a["peak_burn"]), reason)
		}
	}
	if shown == 0 {
		if task != "" {
			fmt.Printf("no SLO alerts for workload %q in this window\n", task)
		} else {
			fmt.Println("no SLO alerts in this window")
		}
		return
	}
	fmt.Printf("%d fires, %d resolves", fires, resolves)
	if open := fires - resolves; open > 0 {
		fmt.Printf(" (%d still active at window end)", open)
	}
	fmt.Println()
}

// num coerces a decoded JSON arg to float64 for formatted output.
func num(v any) float64 {
	f, _ := v.(float64)
	return f
}

func explainPlacement(evs []obs.RawEvent, task string, server int) {
	var last *obs.ScheduleDecision
	var at float64
	for i := range evs {
		ev := &evs[i]
		d, ok := decisionOf(ev)
		if !ok || d.Workload != task {
			continue
		}
		for _, p := range d.Picks {
			if p.Server == server {
				last, at = d, ev.T
			}
		}
	}
	if last == nil {
		fmt.Printf("no decision placed %s on server %d\n", task, server)
		return
	}
	fmt.Printf("at %.1fs, %s needed perf %.3g (%.3g with margin); server %d was picked.\n",
		at, task, last.NeedPerf, last.Want, server)
	fmt.Printf("candidate ranking (quality = platform affinity x interference):\n")
	fmt.Printf("  %-7s %-10s %10s %6s %8s %6s %6s %s\n",
		"server", "platform", "quality", "cores", "mem", "evict", "press", "")
	for i, c := range last.Candidates {
		mark := ""
		if c.Picked {
			mark = "<- picked"
		}
		if !c.Compatible {
			mark += " (incompatible: quality penalized 20x)"
		}
		fmt.Printf("  %-7d %-10s %10.4g %6d %8.1f %6d %6.2f %s\n",
			c.Server, c.Platform, c.Quality, c.FreeCores, c.FreeMemGB, c.Evictable, c.Pressure, mark)
		if i >= 14 && !c.Picked {
			fmt.Printf("  ... (%d more candidates)\n", len(last.Candidates)-i-1)
			break
		}
	}
	if c, ok := last.CandidateFor(server); ok {
		rank := 1
		for _, o := range last.Candidates {
			if o.Quality > c.Quality {
				rank++
			}
		}
		fmt.Printf("server %d ranked #%d of %d by estimated quality %.4g for this workload.\n",
			server, rank, len(last.Candidates), c.Quality)
	}
	if len(last.Evictions) > 0 {
		fmt.Printf("required evicting best-effort residents: %v\n", last.Evictions)
	}
}

// followStream tails a live serve daemon's GET /v1/trace/stream, printing
// each deterministic trace event as its epoch seals. Control lines the stream
// layer injects ({"seq":0,"stream_dropped":N}) become loud notices: the
// subscriber buffer is bounded, so a slow terminal loses whole epochs, never
// silently. n > 0 asks the server to end the stream after n events.
func followStream(addr string, n int, w io.Writer) error {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	url := addr + "/v1/trace/stream"
	if n > 0 {
		url += fmt.Sprintf("?n=%d", n)
	}
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stream returned %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(strings.TrimSpace(string(line))) == 0 {
			continue
		}
		var probe struct {
			Trace         string  `json:"trace"`
			Metric        string  `json:"metric"`
			StreamDropped *int64  `json:"stream_dropped"`
			Name          string  `json:"name"`
			T             float64 `json:"t"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return fmt.Errorf("corrupt stream line: %w", err)
		}
		switch {
		case probe.Trace != "":
			var h obs.Header
			_ = json.Unmarshal(line, &h)
			_, _ = fmt.Fprintf(w, "attached to %s\n", addr)
			reportControls(w, &h, 0)
		case probe.StreamDropped != nil:
			_, _ = fmt.Fprintf(w, "!! stream fell behind: %d events dropped so far (bounded subscriber buffer)\n", *probe.StreamDropped)
		case probe.Metric != "":
			var m obs.RawMetric
			if err := json.Unmarshal(line, &m); err == nil {
				_, _ = fmt.Fprintf(w, "metric %s = %s\n", m.Name, m.Value)
			}
		default:
			var ev obs.RawEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				return fmt.Errorf("corrupt stream event: %w", err)
			}
			printStreamEvent(w, &ev)
		}
	}
	return sc.Err()
}

// printStreamEvent renders one live event in the timeline style.
func printStreamEvent(w io.Writer, ev *obs.RawEvent) {
	_, _ = fmt.Fprintf(w, "%10.1fs  %-8s %s", ev.T, ev.Cat, ev.Name)
	if len(ev.Args) > 0 && string(ev.Args) != "null" && string(ev.Args) != "{}" {
		_, _ = fmt.Fprintf(w, "  %s", ev.Args)
	}
	_, _ = fmt.Fprintln(w)
}

func explainQoS(evs []obs.RawEvent, task string) {
	misses := 0
	for i := range evs {
		ev := &evs[i]
		if ev.Track != "workload/"+task || ev.Name != "qos-miss" {
			continue
		}
		misses++
		a := argsOf(ev)
		fmt.Printf("%9.1fs  QoS miss: offered %v QPS vs capacity %v QPS, p99 %v us\n",
			ev.T, a["offered_qps"], a["capacity_qps"], a["p99_us"])
		// The manager's reaction: the next scale/reschedule action for this
		// task after the miss.
		for j := i + 1; j < len(evs); j++ {
			nx := &evs[j]
			if nx.Cat != "quasar" || (nx.Name != "scale" && nx.Name != "reschedule") {
				continue
			}
			na := argsOf(nx)
			dec, hasDec := na["decision"].(map[string]any)
			if (hasDec && dec["workload"] == task) || na["workload"] == task {
				if hasDec {
					fmt.Printf("%9.1fs    -> manager %s: %v\n", nx.T, nx.Name, dec["actions"])
				} else {
					fmt.Printf("%9.1fs    -> manager %s\n", nx.T, nx.Name)
				}
				break
			}
		}
	}
	if misses == 0 {
		fmt.Printf("%s never transitioned to a QoS miss in this trace\n", task)
	} else {
		fmt.Printf("%d miss transition(s) for %s\n", misses, task)
	}
}
