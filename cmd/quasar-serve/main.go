// Command quasar-serve runs the cluster manager as a long-lived daemon: the
// deterministic engine free-runs (or tracks wall clock at a -warp ratio)
// while an HTTP API admits submissions, target updates, and evictions. Every
// admission is journaled and applied at the next epoch boundary of the sim
// clock, so the same journal and seed reproduce a byte-identical trace no
// matter how request arrivals jittered against the pacer.
//
// Run a daemon:
//
//	quasar-serve -addr 127.0.0.1:7717 -servers 40 -warp 60 \
//	             -journal run.journal -trace run.jsonl \
//	             -snapshot run.snapshot.json -snapshot-every 600
//
// Tail the journal as a warm standby (byte-identical trace, ready to take
// over from the latest snapshot):
//
//	quasar-serve -replay run.journal -follow -trace standby.jsonl
//
// Verify a warm-failover snapshot against an offline replay:
//
//	quasar-serve -replay run.journal -verify-snapshot run.snapshot.json
//
// SIGINT/SIGTERM trigger the graceful path: in-flight admissions drain, the
// journal gets its end marker, the final warm snapshot lands, and the trace
// finalizes via temp-file rename.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"quasar/internal/chaos"
	"quasar/internal/obs"
	"quasar/internal/par"
	"quasar/internal/serve"
)

func main() {
	if err := run(); err != nil {
		_, _ = fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "127.0.0.1:7717", "HTTP listen address (\":0\" picks a free port)")
		servers      = flag.Int("servers", 40, "cluster size (uniform spread of the local platforms)")
		seed         = flag.Int64("seed", 1, "deterministic seed")
		tick         = flag.Float64("tick", 5, "runtime tick interval, sim seconds")
		sample       = flag.Float64("sample", 60, "utilization sampling interval, sim seconds")
		epoch        = flag.Float64("epoch", 1, "admission epoch, sim seconds (must be binary-exact, e.g. 1, 0.5, 0.25)")
		warp         = flag.Float64("warp", 0, "sim seconds per wall second (0 free-runs as fast as possible)")
		horizon      = flag.Float64("horizon", 0, "stop at this sim time (0 runs until shutdown)")
		journal      = flag.String("journal", "", "admission journal path (required for daemon mode)")
		trace        = flag.String("trace", "", "stream the deterministic JSONL trace to this file")
		snapshot     = flag.String("snapshot", "", "write warm-failover snapshots to this file (atomic rename)")
		snapEvery    = flag.Float64("snapshot-every", 600, "snapshot cadence, sim seconds")
		sloFlag      = flag.Bool("slo", false, "monitor SLOs and back /healthz with cluster health")
		detector     = flag.Bool("detector", false, "enable the failure detector")
		faultsPath   = flag.String("faults", "", "inject faults from this chaos plan JSON")
		flight       = flag.Int("flight", 4096, "flight recorder capacity (events retained for /debug/flightrecorder)")
		maxNodes     = flag.Int("maxnodes", 4, "default per-job node cap")
		seedLib      = flag.Int("seedlib", 1, "classification library seeds per workload type")
		workers      = flag.Int("workers", 0, "worker goroutines for parallel fan-outs (0 = GOMAXPROCS); never changes results")
		selftest     = flag.Bool("selftest", false, "run the end-to-end serve self-test and exit")
		telSmoke     = flag.Bool("telemetry-smoke", false, "run the telemetry smoke check (metrics scrape, live stream tail, request correlation) and exit")
		replayPath   = flag.String("replay", "", "replay this journal instead of serving")
		follow       = flag.Bool("follow", false, "with -replay: tail a journal that is still being written (warm standby)")
		verifySnap   = flag.String("verify-snapshot", "", "with -replay: verify this snapshot file against the replayed state")
		replayEvents = flag.Bool("replay-stats", true, "with -replay: print the replay summary")
	)
	flag.Parse()
	par.SetDefaultWorkers(*workers)

	if *selftest {
		return serve.SelfTest(os.Stdout)
	}
	if *telSmoke {
		return serve.TelemetrySmoke(os.Stdout)
	}

	cfg := serve.Config{
		Servers: *servers, Seed: *seed,
		TickSecs: *tick, SampleSecs: *sample, EpochSecs: *epoch,
		MaxNodes: *maxNodes, SeedLib: *seedLib,
		SLO: *sloFlag, Detector: *detector, FlightRecorder: *flight,
	}
	if *faultsPath != "" {
		plan, err := chaos.Load(*faultsPath)
		if err != nil {
			return err
		}
		cfg.Faults = plan
	}

	if *replayPath != "" {
		return runReplay(*replayPath, *trace, *follow, *verifySnap, *replayEvents)
	}

	if *journal == "" {
		return fmt.Errorf("daemon mode requires -journal (or use -selftest / -replay)")
	}
	srv, err := serve.New(serve.Options{
		Addr: *addr, Config: cfg,
		JournalPath: *journal, TracePath: *trace,
		SnapshotPath: *snapshot, SnapshotEverySecs: *snapEvery,
		Warp: *warp, HorizonSecs: *horizon,
	})
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		_, _ = fmt.Fprintln(os.Stderr, "quasar-serve: shutting down")
		srv.Shutdown()
	}()
	fmt.Printf("quasar-serve: listening on %s (warp %g, epoch %gs, journal %s)\n",
		srv.Addr(), *warp, *epoch, *journal)
	if err := srv.Serve(); err != nil {
		return err
	}
	fmt.Printf("quasar-serve: stopped at t=%g with %d admissions applied\n",
		srv.EndBoundary(), srv.Applied())
	return nil
}

// runReplay rebuilds a run from its journal, optionally tailing a live one
// or verifying a warm-failover snapshot against the rebuilt state.
func runReplay(journalPath, tracePath string, follow bool, verifySnap string, stats bool) error {
	opts := serve.ReplayOptions{Follow: follow}
	if tracePath != "" {
		sink, err := obs.NewStreamSink(tracePath)
		if err != nil {
			return err
		}
		opts.Sinks = []obs.Sink{sink}
	}
	if verifySnap != "" {
		snap, err := serve.LoadSnapshot(verifySnap)
		if err != nil {
			return err
		}
		opts.Snapshot = snap
	}
	res, err := serve.Replay(journalPath, opts)
	if err != nil {
		return err
	}
	if stats {
		fmt.Printf("replay: %d entries applied to t=%g (seed %d, %d servers)\n",
			res.Applied, res.EndAt, res.Config.Seed, res.Config.Servers)
		if res.Truncated {
			fmt.Println("replay: journal has no end marker (killed run); applied everything on disk")
		}
		if opts.Snapshot != nil {
			fmt.Printf("replay: snapshot at t=%g verified against replayed state\n", opts.Snapshot.SimTime)
		}
	}
	return nil
}
