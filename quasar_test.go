package quasar_test

import (
	"testing"

	"quasar"
)

// TestPublicAPIEndToEnd drives the whole system through the public facade:
// build a cluster, seed the manager, submit a batch job, a latency service,
// and best-effort fillers, and verify the outcomes.
func TestPublicAPIEndToEnd(t *testing.T) {
	cl, err := quasar.NewLocalCluster()
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Servers) != 40 {
		t.Fatalf("%d servers", len(cl.Servers))
	}
	rt := quasar.NewRuntime(cl, quasar.RuntimeOptions{TickSecs: 5, SampleSecs: 60, Seed: 3})
	u := quasar.NewUniverse(cl.Platforms, 3, 3)
	mgr := quasar.NewManager(rt, quasar.DefaultManagerOptions())
	mgr.SeedLibrary(quasar.Library(u, 2))
	rt.SetManager(mgr)

	job := u.New(quasar.Spec{Type: quasar.Hadoop, Family: 0, MaxNodes: 4, TargetSlack: 1.3,
		Dataset: quasar.Dataset{Name: "api", SizeGB: 10, WorkMult: 1, MemMult: 1}})
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
	jobTask := rt.Submit(job, 0, nil)

	svc := u.New(quasar.Spec{Type: quasar.Webserver, Family: 0, MaxNodes: 4})
	svcTask := rt.Submit(svc, 10, quasar.FlatLoad{QPS: 0.6 * svc.Target.QPS})

	for i := 0; i < 10; i++ {
		be := u.New(quasar.Spec{Type: quasar.SingleNode, Family: -1, BestEffort: true})
		rt.Submit(be, float64(20+i*5), nil)
	}

	rt.Run(job.Target.CompletionSecs*2 + 1200)
	rt.Stop()

	if jobTask.Status != quasar.StatusCompleted {
		t.Fatalf("batch job status %v", jobTask.Status)
	}
	elapsed := jobTask.DoneAt - jobTask.SubmitAt
	if elapsed > 1.6*job.Target.CompletionSecs {
		t.Fatalf("job took %.0fs vs target %.0fs", elapsed, job.Target.CompletionSecs)
	}
	if svcTask.Status != quasar.StatusRunning {
		t.Fatalf("service status %v", svcTask.Status)
	}
	if qos := svcTask.QoSFrac.MeanBetween(600, 1e18); qos < 0.8 {
		t.Fatalf("service QoS %.2f", qos)
	}
	if rt.CPUHeat.MeanOverall() <= 0 {
		t.Fatal("no utilization recorded")
	}
}

// TestPublicAPIBaseline exercises a baseline manager through the facade.
func TestPublicAPIBaseline(t *testing.T) {
	cl, err := quasar.NewEC2Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Servers) != 200 {
		t.Fatalf("%d servers", len(cl.Servers))
	}
	rt := quasar.NewRuntime(cl, quasar.RuntimeOptions{TickSecs: 10, Seed: 5})
	u := quasar.NewUniverse(cl.Platforms, 5, 2)
	opts := quasar.DefaultBaselineOptions()
	opts.Misestimate = false
	rt.SetManager(quasar.NewBaseline(rt, opts))

	w := u.New(quasar.Spec{Type: quasar.Hadoop, Family: 0, MaxNodes: 3, TargetSlack: 1.5,
		Dataset: quasar.Dataset{Name: "api", SizeGB: 10, WorkMult: 0.5, MemMult: 1}})
	task := rt.Submit(w, 0, nil)
	rt.Run(30000)
	rt.Stop()
	if task.Status != quasar.StatusCompleted {
		t.Fatalf("status %v", task.Status)
	}
}

// TestDeterminism: two identical runs through the public API produce
// identical outcomes.
func TestDeterminism(t *testing.T) {
	run := func() (float64, int) {
		cl, _ := quasar.NewLocalCluster()
		rt := quasar.NewRuntime(cl, quasar.RuntimeOptions{TickSecs: 5, Seed: 9})
		u := quasar.NewUniverse(cl.Platforms, 9, 2)
		mgr := quasar.NewManager(rt, quasar.DefaultManagerOptions())
		mgr.SeedLibrary(quasar.Library(u, 2))
		rt.SetManager(mgr)
		w := u.New(quasar.Spec{Type: quasar.Spark, Family: 0, MaxNodes: 3, TargetSlack: 1.3,
			Dataset: quasar.Dataset{Name: "det", SizeGB: 10, WorkMult: 2, MemMult: 1}})
		task := rt.Submit(w, 0, nil)
		rt.Run(20000)
		rt.Stop()
		return task.DoneAt, task.PeakCores
	}
	d1, c1 := run()
	d2, c2 := run()
	if d1 != d2 || c1 != c2 {
		t.Fatalf("runs diverged: (%v,%v) vs (%v,%v)", d1, c1, d2, c2)
	}
}
