// Package quasar is a Go implementation of Quasar, the resource-efficient
// and QoS-aware cluster manager of Delimitrou & Kozyrakis (ASPLOS 2014),
// together with the simulated datacenter substrate its evaluation needs.
//
// The package is a thin facade over the internal packages; it exposes
// everything a downstream user needs to assemble a cluster, generate
// workloads with performance targets, run a manager (Quasar or one of the
// paper's baselines) against simulated time, and measure the outcome.
//
// # Quickstart
//
//	cl, _ := quasar.NewLocalCluster()
//	rt := quasar.NewRuntime(cl, quasar.RuntimeOptions{Seed: 1})
//	mgr := quasar.NewManager(rt, quasar.DefaultManagerOptions())
//	mgr.SeedLibrary(quasar.Library(u, 3))
//	rt.SetManager(mgr)
//
//	u := quasar.NewUniverse(cl.Platforms, 1, 3)
//	job := u.New(quasar.Spec{Type: quasar.Hadoop, Family: -1, MaxNodes: 4})
//	task := rt.Submit(job, 0, nil)
//	rt.Run(24 * 3600)
//
// See examples/ for complete programs and cmd/quasar-bench for the
// reproduction of every table and figure in the paper.
package quasar

import (
	"quasar/internal/baselines"
	"quasar/internal/classify"
	"quasar/internal/cluster"
	"quasar/internal/core"
	"quasar/internal/loadgen"
	"quasar/internal/perfmodel"
	"quasar/internal/sim"
	"quasar/internal/workload"
)

// Core cluster types.
type (
	// Cluster is a set of heterogeneous servers.
	Cluster = cluster.Cluster
	// Platform describes one server configuration (Table 1).
	Platform = cluster.Platform
	// Server is one machine with its placement bookkeeping.
	Server = cluster.Server
	// Alloc is a per-server resource share (cores + memory).
	Alloc = cluster.Alloc
	// ResVec holds one value per shared interference resource.
	ResVec = cluster.ResVec
)

// Workload types.
type (
	// Instance is one submitted workload with its hidden ground-truth
	// genome and its performance target.
	Instance = workload.Instance
	// Spec configures workload generation.
	Spec = workload.Spec
	// Target is a performance constraint (execution time, QPS+latency, or
	// IPS, per workload class).
	Target = workload.Target
	// Dataset describes a workload's input data.
	Dataset = workload.Dataset
	// Universe generates workload instances over a platform set.
	Universe = workload.Universe
	// FrameworkConfig holds Hadoop-style framework knobs (Table 3).
	FrameworkConfig = workload.FrameworkConfig
	// WorkloadType enumerates the supported workload kinds.
	WorkloadType = workload.Type
)

// Workload kinds (the paper's evaluation mix).
const (
	Hadoop     = workload.Hadoop
	Spark      = workload.Spark
	Storm      = workload.Storm
	Memcached  = workload.Memcached
	Cassandra  = workload.Cassandra
	Webserver  = workload.Webserver
	SingleNode = workload.SingleNode
)

// Runtime types.
type (
	// Runtime is the simulated cluster world: it executes workloads
	// against the ground-truth performance model under virtual time.
	Runtime = core.Runtime
	// RuntimeOptions configures the runtime.
	RuntimeOptions = core.Options
	// Task is a submitted workload plus its runtime state.
	Task = core.Task
	// Manager is the decision-maker interface (Quasar or a baseline).
	Manager = core.Manager
	// QuasarManager is the paper's cluster manager.
	QuasarManager = core.Quasar
	// ManagerOptions tunes the Quasar manager.
	ManagerOptions = core.QuasarOptions
	// BaselineManager is a reservation/auto-scaling comparison manager.
	BaselineManager = baselines.Baseline
	// BaselineOptions configures a baseline manager.
	BaselineOptions = baselines.Options
	// LoadPattern maps virtual time to offered QPS.
	LoadPattern = loadgen.Pattern
	// RNG is the deterministic random source used throughout.
	RNG = sim.RNG
	// Estimates is a workload's classification output.
	Estimates = classify.Estimates
	// Genome is a workload's hidden ground-truth parameter vector.
	Genome = perfmodel.Genome
)

// Task statuses.
const (
	StatusQueued    = core.StatusQueued
	StatusProfiling = core.StatusProfiling
	StatusRunning   = core.StatusRunning
	StatusCompleted = core.StatusCompleted
)

// NewLocalCluster builds the paper's 40-server local cluster: four servers
// of each of the ten platforms A-J of Table 1.
func NewLocalCluster() (*Cluster, error) {
	return cluster.New(cluster.LocalPlatforms(), []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4})
}

// NewEC2Cluster builds the paper's 200-server dedicated EC2 cluster over 14
// instance types.
func NewEC2Cluster() (*Cluster, error) {
	return cluster.NewUniform(cluster.EC2Platforms(), 200)
}

// NewCluster builds a custom cluster with counts[i] servers of
// platforms[i].
func NewCluster(platforms []Platform, counts []int) (*Cluster, error) {
	return cluster.New(platforms, counts)
}

// LocalPlatforms returns the Table 1 platform definitions.
func LocalPlatforms() []Platform { return cluster.LocalPlatforms() }

// EC2Platforms returns the EC2 platform definitions.
func EC2Platforms() []Platform { return cluster.EC2Platforms() }

// NewRuntime builds a simulated runtime over a cluster.
func NewRuntime(cl *Cluster, opts RuntimeOptions) *Runtime { return core.NewRuntime(cl, opts) }

// NewUniverse builds a deterministic workload generator for the platform
// set, with the given number of families per workload archetype.
func NewUniverse(platforms []Platform, seed int64, familiesPerArchetype int) *Universe {
	return workload.NewUniverse(platforms, seed, familiesPerArchetype)
}

// NewManager builds the Quasar manager over a runtime. Call SeedLibrary
// with an offline-profiled workload set, then install it with
// rt.SetManager.
func NewManager(rt *Runtime, opts ManagerOptions) *QuasarManager { return core.NewQuasar(rt, opts) }

// DefaultManagerOptions returns the paper's Quasar settings.
func DefaultManagerOptions() ManagerOptions { return core.DefaultQuasarOptions() }

// NewBaseline builds one of the paper's comparison managers.
func NewBaseline(rt *Runtime, opts BaselineOptions) *BaselineManager { return baselines.New(rt, opts) }

// NewDRF builds a Mesos-style dominant-resource-fairness manager.
func NewDRF(rt *Runtime, misestimate bool, maxNodes int) *baselines.DRF {
	return baselines.NewDRF(rt, misestimate, maxNodes)
}

// DefaultBaselineOptions returns the reservation + least-loaded baseline
// configuration.
func DefaultBaselineOptions() BaselineOptions { return baselines.DefaultOptions() }

// Library generates an offline-profiled workload library: n workloads of
// every type, for seeding the classification engine.
func Library(u *Universe, nPerType int) []*Instance {
	var lib []*Instance
	for _, tp := range []WorkloadType{Hadoop, Spark, Storm, Memcached, Cassandra, Webserver, SingleNode} {
		for i := 0; i < nPerType; i++ {
			lib = append(lib, u.New(Spec{Type: tp, Family: -1, MaxNodes: 4}))
		}
	}
	return lib
}

// Load patterns (for latency-critical services).
type (
	// FlatLoad is constant offered load.
	FlatLoad = loadgen.Flat
	// FluctuatingLoad is a sinusoidal day pattern.
	FluctuatingLoad = loadgen.Fluctuating
	// SpikeLoad is base load with a sharp plateau.
	SpikeLoad = loadgen.Spike
	// DiurnalLoad is a 24-hour day/night cycle.
	DiurnalLoad = loadgen.Diurnal
	// NoisyLoad wraps a pattern with multiplicative noise.
	NoisyLoad = loadgen.Noisy
)
