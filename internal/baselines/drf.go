package baselines

import (
	"math"
	"sort"

	"quasar/internal/cluster"
	"quasar/internal/core"
	"quasar/internal/perfmodel"
	"quasar/internal/sim"
)

// DRF is a Mesos-style Dominant Resource Fairness allocator (Ghodsi et al.,
// the paper's [27]): workloads declare per-node demands, and the manager
// repeatedly grants one node-slice to the workload with the smallest
// dominant share (its largest resource share of the cluster) until demand
// or capacity is exhausted. Like every reservation-family baseline it
// neither right-sizes against performance targets nor considers
// heterogeneity or interference — it is *fair*, not QoS-aware, which is
// exactly the contrast the paper draws with Mesos-managed clusters.
type DRF struct {
	rt  *core.Runtime
	rng *sim.RNG

	// Misestimate applies the Fig. 1d demand-error distribution.
	Misestimate bool
	// MaxNodes bounds any workload's node count.
	MaxNodes int

	state map[string]*drfState
}

type drfState struct {
	task      *core.Task
	demand    cluster.Alloc // per node
	wantNodes int
}

// NewDRF builds the fair-share manager.
func NewDRF(rt *core.Runtime, misestimate bool, maxNodes int) *DRF {
	if maxNodes <= 0 {
		maxNodes = 8
	}
	return &DRF{
		rt: rt, rng: rt.RNG.Stream("drf"),
		Misestimate: misestimate, MaxNodes: maxNodes,
		state: make(map[string]*drfState),
	}
}

// Name implements core.Manager.
func (d *DRF) Name() string { return "mesos-drf" }

// demandOf derives the workload's declared per-node demand and node count,
// reusing the reservation heuristics (frameworks/users declare demands the
// same way they declare reservations).
func (d *DRF) demandOf(t *core.Task) (cluster.Alloc, int) {
	w := t.W
	ps := d.rt.Cl.Platforms
	med := ps[len(ps)/2]
	perNode := cluster.Alloc{Cores: minInt(med.Cores, 8), MemoryGB: math.Min(med.MemoryGB, 16)}
	nodes := 1
	if w.Type.Distributed() {
		switch w.Type.Class() {
		case perfmodel.Analytics:
			nodes = 2 + int(w.Genome.Work/1e5)
		default:
			nodes = 2
		}
	}
	if d.Misestimate {
		f := d.rng.Stream("mis/"+w.ID).Uniform(0.5, 3)
		nodes = int(math.Ceil(float64(nodes) * f))
	}
	if nodes > d.MaxNodes {
		nodes = d.MaxNodes
	}
	if nodes < 1 {
		nodes = 1
	}
	return perNode, nodes
}

// OnSubmit implements core.Manager.
func (d *DRF) OnSubmit(t *core.Task) {
	if t.W.BestEffort {
		// DRF treats everyone as a first-class tenant; best-effort tasks
		// simply declare a minimal demand.
		d.state[t.W.ID] = &drfState{task: t, demand: cluster.Alloc{Cores: 1, MemoryGB: 2}, wantNodes: 1}
	} else {
		demand, nodes := d.demandOf(t)
		d.state[t.W.ID] = &drfState{task: t, demand: demand, wantNodes: nodes}
	}
	d.allocateRound()
}

// OnComplete implements core.Manager.
func (d *DRF) OnComplete(t *core.Task) {
	delete(d.state, t.W.ID)
	d.allocateRound()
}

// OnEvicted implements core.Manager.
func (d *DRF) OnEvicted(t *core.Task) { d.allocateRound() }

// OnTick implements core.Manager.
func (d *DRF) OnTick(now float64) { d.allocateRound() }

// dominantShare returns the workload's current dominant share of cluster
// resources.
func (d *DRF) dominantShare(st *drfState) float64 {
	totalCores := float64(d.rt.Cl.TotalCores())
	totalMem := d.rt.Cl.TotalMemGB()
	cores, mem := 0.0, 0.0
	for _, id := range st.task.Servers() {
		srv := d.rt.Cl.Servers[id]
		pl := srv.Placement(st.task.W.ID)
		cores += float64(pl.Alloc.Cores)
		mem += pl.Alloc.MemoryGB
	}
	return math.Max(cores/totalCores, mem/totalMem)
}

// allocateRound grants node-slices to the lowest-dominant-share workloads
// until nothing more fits or every demand is satisfied.
func (d *DRF) allocateRound() {
	// Deterministic candidate ordering.
	ids := make([]string, 0, len(d.state))
	for id := range d.state {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	for granted := true; granted; {
		granted = false
		// Pick the unsatisfied workload with the smallest dominant share.
		bestID := ""
		bestShare := math.Inf(1)
		for _, id := range ids {
			st := d.state[id]
			if st.task.Status == core.StatusCompleted || st.task.NumNodes() >= st.wantNodes {
				continue
			}
			if s := d.dominantShare(st); s < bestShare {
				bestShare, bestID = s, id
			}
		}
		if bestID == "" {
			return
		}
		st := d.state[bestID]
		if srv := d.leastLoadedFitting(st); srv != nil {
			alloc := cluster.Alloc{
				Cores:    minInt(st.demand.Cores, srv.FreeCores()),
				MemoryGB: math.Min(st.demand.MemoryGB, srv.FreeMemGB()),
			}
			if d.rt.Place(st.task, srv, alloc) == nil {
				granted = true
				continue
			}
		}
		// Nothing fits for the lowest-share workload: DRF blocks rather
		// than skipping ahead (progressive filling).
		return
	}
}

// leastLoadedFitting finds the emptiest server that can host one slice of
// the demand and does not already host the workload.
func (d *DRF) leastLoadedFitting(st *drfState) *cluster.Server {
	var best *cluster.Server
	for _, srv := range d.rt.Cl.Servers {
		if !srv.Schedulable() || srv.Placement(st.task.W.ID) != nil {
			continue
		}
		if srv.FreeCores() < 1 || srv.FreeMemGB() < 1 {
			continue
		}
		if best == nil || srv.FreeCores() > best.FreeCores() {
			best = srv
		}
	}
	return best
}

var _ core.Manager = (*DRF)(nil)
