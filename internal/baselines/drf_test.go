package baselines

import (
	"math"
	"testing"

	"quasar/internal/cluster"
	"quasar/internal/core"
	"quasar/internal/workload"
)

func drfFixture(t testing.TB, seed int64) (*core.Runtime, *DRF, *workload.Universe) {
	t.Helper()
	platforms := cluster.LocalPlatforms()
	cl, err := cluster.New(platforms, []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime(cl, core.Options{TickSecs: 5, Seed: seed})
	u := workload.NewUniverse(platforms, seed+1, 3)
	d := NewDRF(rt, false, 8)
	rt.SetManager(d)
	return rt, d, u
}

func TestDRFPlacesWorkloads(t *testing.T) {
	rt, _, u := drfFixture(t, 3)
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4, TargetSlack: 1.3})
	task := rt.Submit(w, 0, nil)
	rt.Run(60)
	rt.Stop()
	if task.Status != core.StatusRunning && task.Status != core.StatusCompleted {
		t.Fatalf("status %v", task.Status)
	}
	if task.NumNodes() < 1 {
		t.Fatal("no nodes")
	}
}

func TestDRFSharesFairly(t *testing.T) {
	// Two identical heavy demanders should end with near-equal dominant
	// shares.
	rt, d, u := drfFixture(t, 5)
	w1 := u.New(workload.Spec{Type: workload.Hadoop, Family: 0, MaxNodes: 8, TargetSlack: 1.3})
	w2 := u.New(workload.Spec{Type: workload.Hadoop, Family: 0, MaxNodes: 8, TargetSlack: 1.3})
	w1.Genome.Work = 1e9
	w2.Genome.Work = 1e9
	rt.Submit(w1, 0, nil)
	rt.Submit(w2, 1, nil)
	rt.Run(300)
	rt.Stop()
	s1 := d.dominantShare(d.state[w1.ID])
	s2 := d.dominantShare(d.state[w2.ID])
	if s1 == 0 || s2 == 0 {
		t.Fatalf("shares zero: %v %v", s1, s2)
	}
	if math.Abs(s1-s2)/math.Max(s1, s2) > 0.5 {
		t.Fatalf("shares unfair: %.3f vs %.3f", s1, s2)
	}
}

func TestDRFDoesNotOvercommit(t *testing.T) {
	rt, _, u := drfFixture(t, 7)
	for i := 0; i < 60; i++ {
		w := u.New(workload.Spec{Type: workload.SingleNode, Family: -1, TargetSlack: 1.3})
		w.Genome.Work = 1e9
		rt.Submit(w, float64(i), nil)
	}
	rt.Run(300)
	rt.Stop()
	for _, srv := range rt.Cl.Servers {
		if srv.UsedCores() > srv.Platform.Cores {
			t.Fatalf("server %d overcommitted", srv.ID)
		}
	}
}

func TestDRFFavorsLowShare(t *testing.T) {
	// A workload holding a lot should yield the next grant to a newcomer.
	rt, d, u := drfFixture(t, 9)
	big := u.New(workload.Spec{Type: workload.Hadoop, Family: 0, MaxNodes: 8, TargetSlack: 1.3})
	big.Genome.Work = 1e9
	rt.Submit(big, 0, nil)
	rt.Run(100)
	newcomer := u.New(workload.Spec{Type: workload.Hadoop, Family: 1, MaxNodes: 8, TargetSlack: 1.3})
	newcomer.Genome.Work = 1e9
	task := rt.Submit(newcomer, 110, nil)
	rt.Run(200)
	rt.Stop()
	if task.NumNodes() == 0 {
		t.Fatal("newcomer starved despite DRF")
	}
	sBig := d.dominantShare(d.state[big.ID])
	sNew := d.dominantShare(d.state[newcomer.ID])
	// The newcomer should have caught up to within a slice.
	if sNew < sBig*0.3 {
		t.Fatalf("newcomer share %.3f far below incumbent %.3f", sNew, sBig)
	}
}
