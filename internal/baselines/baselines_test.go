package baselines

import (
	"testing"

	"quasar/internal/classify"
	"quasar/internal/cluster"
	"quasar/internal/core"
	"quasar/internal/loadgen"
	"quasar/internal/sim"
	"quasar/internal/workload"
)

func fixture(t testing.TB, opts Options, seed int64) (*core.Runtime, *Baseline, *workload.Universe) {
	t.Helper()
	platforms := cluster.LocalPlatforms()
	cl, err := cluster.New(platforms, []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime(cl, core.Options{TickSecs: 5, SampleSecs: 60, Seed: seed})
	u := workload.NewUniverse(platforms, seed+1, 3)
	b := New(rt, opts)
	if b.Engine() != nil {
		for _, tp := range []workload.Type{workload.Hadoop, workload.Memcached, workload.SingleNode} {
			for i := 0; i < 3; i++ {
				w := u.New(workload.Spec{Type: tp, Family: -1, MaxNodes: 4})
				p := classify.NewGroundTruthProber(w, platforms, sim.NewRNG(int64(100+i)))
				b.Engine().SeedOffline(w, p)
			}
		}
	}
	rt.SetManager(b)
	return rt, b, u
}

func TestReservationLLPlacesWorkloads(t *testing.T) {
	rt, b, u := fixture(t, DefaultOptions(), 3)
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 8, TargetSlack: 1.3})
	task := rt.Submit(w, 0, nil)
	rt.Run(60)
	if task.Status != core.StatusRunning {
		t.Fatalf("status %v", task.Status)
	}
	if task.NumNodes() < 1 {
		t.Fatal("no nodes placed")
	}
	rt.Stop()
	_ = b
}

func TestMisestimationDistribution(t *testing.T) {
	_, b, _ := fixture(t, DefaultOptions(), 5)
	over, under := 0, 0
	n := 2000
	for i := 0; i < n; i++ {
		f := b.misestimationFactor(string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('A'+i/260)))
		switch {
		case f > 1.05:
			over++
		case f < 0.95:
			under++
		}
	}
	if fo := float64(over) / float64(n); fo < 0.6 || fo > 0.8 {
		t.Fatalf("over-reservation fraction %.2f, want ~0.7", fo)
	}
	if fu := float64(under) / float64(n); fu < 0.12 || fu > 0.28 {
		t.Fatalf("under-reservation fraction %.2f, want ~0.2", fu)
	}
}

func TestNoMisestimationWhenDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.Misestimate = false
	_, b, _ := fixture(t, opts, 7)
	for i := 0; i < 10; i++ {
		if b.misestimationFactor("x") != 1 {
			t.Fatal("misestimation applied despite being disabled")
		}
	}
}

func TestAutoscaleGrowsOnLoad(t *testing.T) {
	opts := DefaultOptions()
	opts.AutoscaleServices = true
	opts.Misestimate = false
	rt, _, u := fixture(t, opts, 9)
	w := u.New(workload.Spec{Type: workload.Webserver, Family: -1, MaxNodes: 8})
	task := rt.Submit(w, 0, loadgen.Flat{QPS: w.Target.QPS})
	rt.Run(1800)
	rt.Stop()
	if task.NumNodes() <= 1 {
		t.Fatalf("auto-scaler never grew: %d instances", task.NumNodes())
	}
}

func TestAutoscaleShrinksWhenIdle(t *testing.T) {
	opts := DefaultOptions()
	opts.AutoscaleServices = true
	opts.Misestimate = false
	rt, _, u := fixture(t, opts, 11)
	w := u.New(workload.Spec{Type: workload.Webserver, Family: -1, MaxNodes: 8})
	pattern := loadgen.Spike{Base: 0.05 * w.Target.QPS, Peak: w.Target.QPS, Start: 300, Duration: 900, RampSecs: 60}
	task := rt.Submit(w, 0, pattern)
	rt.Run(1300)
	peakNodes := task.NumNodes()
	rt.Run(5000)
	rt.Stop()
	if task.NumNodes() >= peakNodes && peakNodes > 1 {
		t.Fatalf("auto-scaler never shrank: %d -> %d", peakNodes, task.NumNodes())
	}
}

func TestParagonAssignmentPrefersGoodServers(t *testing.T) {
	opts := DefaultOptions()
	opts.Assign = AssignParagon
	opts.Misestimate = false
	rt, b, u := fixture(t, opts, 13)
	if b.Name() != "reservation+paragon" {
		t.Fatalf("name %q", b.Name())
	}
	w := u.New(workload.Spec{Type: workload.SingleNode, Family: -1})
	task := rt.Submit(w, 0, nil)
	rt.Run(120)
	rt.Stop()
	if task.Status != core.StatusRunning && task.Status != core.StatusCompleted {
		t.Fatalf("status %v", task.Status)
	}
	if task.NumNodes() > 0 {
		srv := rt.Cl.Servers[task.Servers()[0]]
		if srv.Platform.Name == "A" {
			t.Fatal("Paragon picked the weakest platform on an idle cluster")
		}
	}
}

func TestBaselineDoesNotAdaptBatch(t *testing.T) {
	opts := DefaultOptions()
	opts.Misestimate = false
	rt, _, u := fixture(t, opts, 15)
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 8, TargetSlack: 1.3})
	task := rt.Submit(w, 0, nil)
	rt.Run(60)
	n0 := task.NumNodes()
	rt.Run(600)
	rt.Stop()
	if task.Status == core.StatusRunning && task.NumNodes() != n0 {
		t.Fatalf("reservation-based manager adapted the allocation: %d -> %d", n0, task.NumNodes())
	}
}

func TestBestEffortAndQueue(t *testing.T) {
	opts := DefaultOptions()
	opts.Misestimate = false
	rt, b, u := fixture(t, opts, 17)
	for i := 0; i < 5; i++ {
		be := u.New(workload.Spec{Type: workload.SingleNode, Family: -1, BestEffort: true})
		rt.Submit(be, float64(i), nil)
	}
	rt.Run(60)
	rt.Stop()
	running := 0
	for _, task := range rt.Tasks() {
		if task.Status == core.StatusRunning {
			running++
		}
	}
	if running < 4 {
		t.Fatalf("only %d best-effort fillers running", running)
	}
	_ = b.QueueLen()
}
