// Package baselines implements the comparison cluster managers of the
// paper's evaluation (§5): reservation-based allocation with least-loaded
// assignment, reservation-based allocation with Paragon (heterogeneity- and
// interference-aware) assignment, auto-scaling for latency services, and
// framework self-scheduling for analytics jobs. None of them right-size
// allocations against performance targets — that is Quasar's contribution.
package baselines

import (
	"math"
	"sort"

	"quasar/internal/classify"
	"quasar/internal/cluster"
	"quasar/internal/core"
	"quasar/internal/perfmodel"
	"quasar/internal/sim"
)

// AssignKind selects the resource-assignment policy.
type AssignKind int

const (
	// AssignLeastLoaded picks the server with the most free cores,
	// ignoring heterogeneity and interference.
	AssignLeastLoaded AssignKind = iota
	// AssignParagon ranks servers with Paragon-style classification:
	// heterogeneity and interference aware, but the *allocation* (how
	// much) still comes from reservations.
	AssignParagon
)

// Options configures a baseline manager.
type Options struct {
	Assign AssignKind

	// Misestimate applies the Fig. 1d reservation-error distribution: 70%
	// of workloads over-reserve by up to 10x, 20% under-reserve by up to
	// 5x, 10% reserve correctly.
	Misestimate bool

	// AutoscaleServices manages latency services with a load-triggered
	// auto-scaler (add an instance above ScaleUpLoad, drop one below
	// ScaleDownLoad) instead of a static reservation.
	AutoscaleServices bool
	ScaleUpLoad       float64 // default 0.7 (the 70% trigger of §5)
	ScaleDownLoad     float64 // default 0.25
	MaxInstances      int     // default 8 (the 1-8 servers of §5)

	// MaxNodes bounds analytics reservations.
	MaxNodes int
}

// DefaultOptions returns the reservation+least-loaded configuration.
func DefaultOptions() Options {
	return Options{
		Assign:        AssignLeastLoaded,
		Misestimate:   true,
		ScaleUpLoad:   0.7,
		ScaleDownLoad: 0.25,
		MaxInstances:  8,
		MaxNodes:      16,
	}
}

type resState struct {
	nodes     int
	alloc     cluster.Alloc
	est       *classify.Estimates // Paragon assignment only
	instances int                 // autoscaled services
	lastScale float64
}

// Baseline is a reservation/auto-scaling manager.
type Baseline struct {
	rt   *core.Runtime
	opts Options
	rng  *sim.RNG

	engine *classify.Engine // Paragon assignment
	state  map[string]*resState
	queue  []*core.Task
	name   string
}

// New builds a baseline manager over the runtime.
func New(rt *core.Runtime, opts Options) *Baseline {
	if opts.ScaleUpLoad <= 0 {
		opts.ScaleUpLoad = 0.7
	}
	if opts.ScaleDownLoad <= 0 {
		opts.ScaleDownLoad = 0.25
	}
	if opts.MaxInstances <= 0 {
		opts.MaxInstances = 8
	}
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 16
	}
	name := "reservation+LL"
	if opts.Assign == AssignParagon {
		name = "reservation+paragon"
	}
	b := &Baseline{
		rt:    rt,
		opts:  opts,
		rng:   rt.RNG.Stream("baseline"),
		state: make(map[string]*resState),
		name:  name,
	}
	if opts.Assign == AssignParagon {
		cOpts := classify.DefaultOptions()
		cOpts.MaxNodes = opts.MaxNodes
		b.engine = classify.NewEngine(rt.Cl.Platforms, cOpts, rt.RNG.Stream("paragon"))
	}
	return b
}

// Engine exposes the Paragon classification engine for offline seeding.
func (b *Baseline) Engine() *classify.Engine { return b.engine }

// Name implements core.Manager.
func (b *Baseline) Name() string { return b.name }

// misestimationFactor draws a reservation error per Fig. 1d.
func (b *Baseline) misestimationFactor(id string) float64 {
	if !b.opts.Misestimate {
		return 1
	}
	rng := b.rng.Stream("mis/" + id)
	r := rng.Float64()
	switch {
	case r < 0.70:
		return rng.Uniform(1, 10) // over-sized
	case r < 0.90:
		return rng.Uniform(0.2, 1) // under-sized
	default:
		return rng.Uniform(0.95, 1.05)
	}
}

// medianPlatform returns a middle-of-the-road platform the user/framework
// implicitly assumes when estimating needs.
func (b *Baseline) medianPlatform() *cluster.Platform {
	ps := b.rt.Cl.Platforms
	idx := make([]int, len(ps))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, c int) bool {
		return float64(ps[idx[a]].Cores)*ps[idx[a]].CorePerf < float64(ps[idx[c]].Cores)*ps[idx[c]].CorePerf
	})
	return &ps[idx[len(idx)/2]]
}

// reservation computes what the user/framework asks for: node count and a
// fixed per-node allocation. It reflects how reservations are actually
// made — from historical guesses about a "typical" machine, without
// heterogeneity or interference awareness, distorted by misestimation.
func (b *Baseline) reservation(t *core.Task) (nodes int, alloc cluster.Alloc) {
	w := t.W
	med := b.medianPlatform()
	wholeMed := cluster.Alloc{Cores: med.Cores, MemoryGB: med.MemoryGB}
	guessRng := b.rng.Stream("guess/" + w.ID)

	switch w.Type.Class() {
	case perfmodel.Analytics:
		// The framework's own sizing: assumed per-node rate from history
		// (+/-25%), default configuration.
		assumed := w.NodeRate(med, wholeMed, cluster.ResVec{})
		assumed = guessRng.Jitter(assumed, 0.25)
		workGuess := guessRng.Jitter(w.Genome.Work, 0.10)
		need := workGuess / math.Max(w.Target.CompletionSecs, 60) / math.Max(assumed, 1e-9)
		n := int(math.Ceil(need * b.misestimationFactor(w.ID)))
		if n < 1 {
			n = 1
		}
		if n > b.opts.MaxNodes {
			n = b.opts.MaxNodes
		}
		return n, wholeMed
	case perfmodel.LatencyCritical:
		perInstance := w.CapacityQPS([]perfmodel.NodeAlloc{{Platform: med, Alloc: wholeMed}})
		perInstance = guessRng.Jitter(perInstance, 0.30)
		n := int(math.Ceil(w.Target.QPS / math.Max(perInstance, 1) * b.misestimationFactor(w.ID)))
		if n < 1 {
			n = 1
		}
		if n > b.opts.MaxInstances {
			n = b.opts.MaxInstances
		}
		return n, wholeMed
	default:
		// Single-node users typically grab a whole machine.
		cores := int(math.Ceil(float64(med.Cores) / 2 * b.misestimationFactor(w.ID)))
		if cores < 1 {
			cores = 1
		}
		if cores > med.Cores {
			cores = med.Cores
		}
		return 1, cluster.Alloc{Cores: cores, MemoryGB: med.MemoryGB * float64(cores) / float64(med.Cores)}
	}
}

// rankServers orders candidate servers per the assignment policy.
func (b *Baseline) rankServers(t *core.Task, st *resState, alloc cluster.Alloc) []*cluster.Server {
	var servers []*cluster.Server
	for _, s := range b.rt.Cl.Servers {
		if !s.Schedulable() || s.Placement(t.W.ID) != nil {
			continue
		}
		fit := cluster.Alloc{
			Cores:    minInt(alloc.Cores, s.Platform.Cores),
			MemoryGB: math.Min(alloc.MemoryGB, s.Platform.MemoryGB),
		}
		if !s.Fits(fit) {
			continue
		}
		servers = append(servers, s)
	}
	switch {
	case b.opts.Assign == AssignParagon && st.est != nil:
		sort.Slice(servers, func(i, j int) bool {
			qi := b.paragonQuality(t, st, servers[i])
			qj := b.paragonQuality(t, st, servers[j])
			if qi != qj { //lint:allow(floatcmp) sort tie-break: any consistent order is fine
				return qi > qj
			}
			return servers[i].ID < servers[j].ID
		})
	default:
		sort.Slice(servers, func(i, j int) bool {
			if servers[i].FreeCores() != servers[j].FreeCores() {
				return servers[i].FreeCores() > servers[j].FreeCores()
			}
			return servers[i].ID < servers[j].ID
		})
	}
	return servers
}

// paragonQuality scores a server with heterogeneity + interference
// estimates, like Paragon's greedy server selection.
func (b *Baseline) paragonQuality(t *core.Task, st *resState, s *cluster.Server) float64 {
	pidx := b.rt.Cl.PlatformIndex(s.Platform.Name)
	whole := cluster.Alloc{Cores: s.Platform.Cores, MemoryGB: s.Platform.MemoryGB}
	return st.est.NodePerf(pidx, whole, s.PressureOn(t.W.ID))
}

// OnSubmit implements core.Manager.
func (b *Baseline) OnSubmit(t *core.Task) {
	if t.W.BestEffort {
		if !b.placeBestEffort(t) {
			b.queue = append(b.queue, t)
		}
		return
	}
	st := &resState{}
	if b.engine != nil {
		// Paragon profiles the workload briefly (about a minute) before
		// assignment.
		prober := classify.NewGroundTruthProber(t.W, b.rt.Cl.Platforms, b.rng.Stream("probe/"+t.W.ID))
		st.est = b.engine.Classify(t.W, prober)
	}
	nodes, alloc := b.reservation(t)
	st.nodes, st.alloc = nodes, alloc
	if b.opts.AutoscaleServices && t.W.Type.Class() == perfmodel.LatencyCritical {
		st.nodes = 1 // auto-scaler starts at one instance
	}
	b.state[t.W.ID] = st
	if !b.tryPlace(t, st) {
		b.queue = append(b.queue, t)
	}
}

// tryPlace assigns the reserved nodes.
func (b *Baseline) tryPlace(t *core.Task, st *resState) bool {
	placed := t.NumNodes()
	want := st.nodes
	if placed >= want {
		return true
	}
	servers := b.rankServers(t, st, st.alloc)
	wholeNode := t.W.Type.Class() == perfmodel.Analytics
	for _, s := range servers {
		if placed >= want {
			break
		}
		alloc := cluster.Alloc{
			Cores:    minInt(st.alloc.Cores, s.FreeCores()),
			MemoryGB: math.Min(st.alloc.MemoryGB, s.FreeMemGB()),
		}
		if wholeNode {
			// Framework workers own their machines (one TaskTracker per
			// node): the reservation grabs the server's full capacity,
			// whether or not the configured task slots can use it.
			alloc = cluster.Alloc{Cores: s.FreeCores(), MemoryGB: s.FreeMemGB()}
		}
		if alloc.Cores < 1 || alloc.MemoryGB <= 0 {
			continue
		}
		if err := b.rt.Place(t, s, alloc); err == nil {
			placed++
		}
	}
	st.instances = placed
	return placed > 0
}

// placeBestEffort gives filler tasks a small least-loaded slice.
func (b *Baseline) placeBestEffort(t *core.Task) bool {
	var best *cluster.Server
	for _, s := range b.rt.Cl.Servers {
		if s.Schedulable() && s.FreeCores() >= 1 && s.FreeMemGB() >= 1 {
			if best == nil || s.FreeCores() > best.FreeCores() {
				best = s
			}
		}
	}
	if best == nil {
		return false
	}
	alloc := cluster.Alloc{Cores: minInt(4, best.FreeCores()), MemoryGB: math.Min(6, best.FreeMemGB())}
	return b.rt.Place(t, best, alloc) == nil
}

// OnComplete implements core.Manager.
func (b *Baseline) OnComplete(t *core.Task) {
	delete(b.state, t.W.ID)
	b.drainQueue()
}

// OnEvicted implements core.Manager.
func (b *Baseline) OnEvicted(t *core.Task) { b.queue = append(b.queue, t) }

func (b *Baseline) drainQueue() {
	var still []*core.Task
	for _, t := range b.queue {
		if t.Status == core.StatusCompleted {
			continue
		}
		ok := false
		if t.W.BestEffort {
			ok = b.placeBestEffort(t)
		} else if st, has := b.state[t.W.ID]; has {
			ok = b.tryPlace(t, st)
		}
		if !ok {
			still = append(still, t)
		}
	}
	b.queue = still
}

// OnTick implements core.Manager: only the auto-scaler reacts to load; the
// reservations themselves never adapt.
func (b *Baseline) OnTick(now float64) {
	if b.opts.AutoscaleServices {
		for _, t := range b.rt.Tasks() {
			if t.Status != core.StatusRunning || t.W.BestEffort ||
				t.W.Type.Class() != perfmodel.LatencyCritical {
				continue
			}
			st := b.state[t.W.ID]
			if st == nil {
				continue
			}
			b.autoscale(t, st, now)
		}
	}
	b.drainQueue()
}

// autoscale adds an instance when observed utilization exceeds the trigger
// and removes one when it falls below the low-water mark. It observes load
// (offered/capacity), not latency — which is exactly why it misses QoS on
// spikes and under interference.
func (b *Baseline) autoscale(t *core.Task, st *resState, now float64) {
	if now-st.lastScale < 60 {
		return // scaling cools down; instances take time to start
	}
	capQPS := b.rt.TrueCapacityQPS(t)
	offered := b.rt.OfferedLoad(t)
	if capQPS <= 0 {
		return
	}
	load := offered / capQPS
	switch {
	case load > b.opts.ScaleUpLoad && t.NumNodes() < b.opts.MaxInstances:
		st.nodes = t.NumNodes() + 1
		st.lastScale = now
		b.tryPlace(t, st)
	case load < b.opts.ScaleDownLoad && t.NumNodes() > 1:
		ids := t.Servers()
		_ = b.rt.RemoveNode(t, ids[len(ids)-1])
		st.nodes = t.NumNodes()
		st.lastScale = now
	}
}

// QueueLen reports the wait-queue length.
func (b *Baseline) QueueLen() int { return len(b.queue) }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var _ core.Manager = (*Baseline)(nil)
