package cf

import (
	"math"
	"sort"
)

// SVD holds a (possibly truncated) singular value decomposition
// A ≈ U · diag(S) · Vᵀ with U (m×k), S (k), V (n×k).
type SVD struct {
	U *Dense
	S []float64
	V *Dense
}

// ComputeSVD decomposes the dense matrix A (m×n) with one-sided Jacobi
// rotations. The method orthogonalizes the columns of a working copy of A;
// at convergence the column norms are the singular values, the normalized
// columns form U, and the accumulated rotations form V. It is exact (up to
// tolerance), numerically robust, and well suited to the small dense
// matrices of the classification engine (hundreds of rows, tens to ~100
// columns).
func ComputeSVD(a *Dense) *SVD {
	m, n := a.R, a.C
	// Column-major working copies for cache-friendly column ops.
	w := make([][]float64, n) // w[j] is column j of A
	v := make([][]float64, n) // v[j] is column j of V
	for j := 0; j < n; j++ {
		w[j] = make([]float64, m)
		for i := 0; i < m; i++ {
			w[j][i] = a.At(i, j)
		}
		v[j] = make([]float64, n)
		v[j][j] = 1
	}

	const (
		tol       = 1e-10
		maxSweeps = 60
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				alpha, beta, gamma := 0.0, 0.0, 0.0
				for i := 0; i < m; i++ {
					alpha += w[p][i] * w[p][i]
					beta += w[q][i] * w[q][i]
					gamma += w[p][i] * w[q][i]
				}
				if alpha == 0 || beta == 0 { //lint:allow(floatcmp) exactly-zero column norms: rotation undefined
					continue
				}
				if math.Abs(gamma) <= tol*math.Sqrt(alpha*beta) {
					continue
				}
				off += gamma * gamma / (alpha * beta)
				// Jacobi rotation zeroing the (p,q) inner product.
				zeta := (beta - alpha) / (2 * gamma)
				t := sign(zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					wp := w[p][i]
					w[p][i] = c*wp - s*w[q][i]
					w[q][i] = s*wp + c*w[q][i]
				}
				for i := 0; i < n; i++ {
					vp := v[p][i]
					v[p][i] = c*vp - s*v[q][i]
					v[q][i] = s*vp + c*v[q][i]
				}
			}
		}
		if off < tol {
			break
		}
	}

	// Column norms are singular values; sort descending.
	type col struct {
		sigma float64
		idx   int
	}
	cols := make([]col, n)
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < m; i++ {
			s += w[j][i] * w[j][i]
		}
		cols[j] = col{math.Sqrt(s), j}
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i].sigma > cols[j].sigma })

	out := &SVD{U: NewDense(m, n), S: make([]float64, n), V: NewDense(n, n)}
	for r, cinfo := range cols {
		out.S[r] = cinfo.sigma
		if cinfo.sigma > 0 {
			inv := 1 / cinfo.sigma
			for i := 0; i < m; i++ {
				out.U.Set(i, r, w[cinfo.idx][i]*inv)
			}
		}
		for i := 0; i < n; i++ {
			out.V.Set(i, r, v[cinfo.idx][i])
		}
	}
	return out
}

// Truncate keeps only the top-k singular triplets.
func (d *SVD) Truncate(k int) *SVD {
	if k >= len(d.S) {
		return d
	}
	u := NewDense(d.U.R, k)
	v := NewDense(d.V.R, k)
	for i := 0; i < d.U.R; i++ {
		for j := 0; j < k; j++ {
			u.Set(i, j, d.U.At(i, j))
		}
	}
	for i := 0; i < d.V.R; i++ {
		for j := 0; j < k; j++ {
			v.Set(i, j, d.V.At(i, j))
		}
	}
	return &SVD{U: u, S: append([]float64(nil), d.S[:k]...), V: v}
}

// Reconstruct returns U · diag(S) · Vᵀ.
func (d *SVD) Reconstruct() *Dense {
	m, n, k := d.U.R, d.V.R, len(d.S)
	out := NewDense(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for r := 0; r < k; r++ {
				s += d.U.At(i, r) * d.S[r] * d.V.At(j, r)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// Rank returns the number of singular values above eps relative to the
// largest.
func (d *SVD) Rank(eps float64) int {
	if len(d.S) == 0 || d.S[0] == 0 { //lint:allow(floatcmp) exact-zero guard before relative threshold
		return 0
	}
	r := 0
	for _, s := range d.S {
		if s > eps*d.S[0] {
			r++
		}
	}
	return r
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}
