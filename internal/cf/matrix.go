// Package cf implements the collaborative-filtering machinery of Quasar's
// classification engine (paper §3.2): singular value decomposition and
// PQ-reconstruction with stochastic gradient descent over sparse
// workload-by-configuration matrices, plus fast fold-in of a new sparse row
// against an already-trained model.
package cf

import (
	"fmt"
	"sort"
)

// Dense is a row-major dense matrix.
type Dense struct {
	R, C int
	Data []float64
}

// NewDense returns an r-by-c zero matrix.
func NewDense(r, c int) *Dense {
	return &Dense{R: r, C: c, Data: make([]float64, r*c)}
}

// At returns element (i,j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns element (i,j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	d := NewDense(m.R, m.C)
	copy(d.Data, m.Data)
	return d
}

// MulT returns m * other^T interpreted as (R×C) * (C×K) when other is K×C —
// used to reconstruct R = Q * P^T.
func MatMulT(q, p *Dense) *Dense {
	if q.C != p.C {
		panic(fmt.Sprintf("cf: MatMulT dims %dx%d vs %dx%d", q.R, q.C, p.R, p.C))
	}
	out := NewDense(q.R, p.R)
	for i := 0; i < q.R; i++ {
		for j := 0; j < p.R; j++ {
			s := 0.0
			for k := 0; k < q.C; k++ {
				s += q.At(i, k) * p.At(j, k)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// Sparse is a sparse matrix of observed entries, the input to
// PQ-reconstruction. Rows are workloads, columns configurations.
type Sparse struct {
	Rows, Cols int
	// entries[i] maps column -> value for row i.
	entries []map[int]float64
	n       int
}

// NewSparse returns an empty rows-by-cols sparse matrix.
func NewSparse(rows, cols int) *Sparse {
	e := make([]map[int]float64, rows)
	for i := range e {
		e[i] = make(map[int]float64)
	}
	return &Sparse{Rows: rows, Cols: cols, entries: e}
}

// Set records an observation; re-setting a cell overwrites it.
func (s *Sparse) Set(i, j int, v float64) {
	if i < 0 || i >= s.Rows || j < 0 || j >= s.Cols {
		panic(fmt.Sprintf("cf: Set(%d,%d) outside %dx%d", i, j, s.Rows, s.Cols))
	}
	if _, ok := s.entries[i][j]; !ok {
		s.n++
	}
	s.entries[i][j] = v
}

// Get returns the observation at (i,j), if any.
func (s *Sparse) Get(i, j int) (float64, bool) {
	v, ok := s.entries[i][j]
	return v, ok
}

// Row returns the observed entries of row i (the live map; callers must not
// mutate it).
func (s *Sparse) Row(i int) map[int]float64 { return s.entries[i] }

// NNZ returns the number of observed entries.
func (s *Sparse) NNZ() int { return s.n }

// Density returns NNZ / (Rows*Cols).
func (s *Sparse) Density() float64 {
	if s.Rows*s.Cols == 0 {
		return 0
	}
	return float64(s.n) / float64(s.Rows*s.Cols)
}

// AppendRow grows the matrix by one row containing the given observations
// and returns its index.
func (s *Sparse) AppendRow(obs map[int]float64) int {
	row := make(map[int]float64, len(obs))
	for j, v := range obs {
		if j < 0 || j >= s.Cols {
			panic(fmt.Sprintf("cf: AppendRow col %d outside %d", j, s.Cols))
		}
		row[j] = v
		s.n++
	}
	s.entries = append(s.entries, row)
	s.Rows++
	return s.Rows - 1
}

// Mean returns the mean of all observed entries (the µ term of the paper's
// latent-factor model), or 0 for an empty matrix. Entries are summed in
// deterministic (row, column) order so results are bit-reproducible.
func (s *Sparse) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	sum := 0.0
	cols := make([]int, 0, 16)
	for _, row := range s.entries {
		cols = cols[:0]
		for j := range row {
			cols = append(cols, j)
		}
		sort.Ints(cols)
		for _, j := range cols {
			sum += row[j]
		}
	}
	return sum / float64(s.n)
}
