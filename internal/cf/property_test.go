package cf

import (
	"math"
	"math/rand"
	"testing"
)

// randomDense fills an m×n matrix with values in [-scale, scale].
func uniformDense(rng *rand.Rand, m, n int, scale float64) *Dense {
	d := NewDense(m, n)
	for i := range d.Data {
		d.Data[i] = scale * (2*rng.Float64() - 1)
	}
	return d
}

// TestSVDReconstructionBound: the full (untruncated) SVD of random matrices
// must reproduce the input to numerical tolerance, across shapes (tall,
// wide, square) and seeds.
func TestSVDReconstructionBound(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	shapes := []struct{ m, n int }{{12, 5}, {5, 12}, {9, 9}, {30, 8}, {1, 6}, {6, 1}}
	for _, sh := range shapes {
		for trial := 0; trial < 4; trial++ {
			a := uniformDense(rng, sh.m, sh.n, 10)
			d := ComputeSVD(a)
			if err := maxAbsDiff(a, d.Reconstruct()); err > 1e-8 {
				t.Fatalf("%dx%d trial %d: reconstruction error %g", sh.m, sh.n, trial, err)
			}
			for k, s := range d.S {
				if s < 0 {
					t.Fatalf("%dx%d: negative singular value S[%d]=%g", sh.m, sh.n, k, s)
				}
				if k > 0 && s > d.S[k-1]+1e-12 {
					t.Fatalf("%dx%d: singular values not sorted: S[%d]=%g > S[%d]=%g",
						sh.m, sh.n, k, s, k-1, d.S[k-1])
				}
			}
		}
	}
}

// columnDots returns the worst off-diagonal |u_i · u_j| and the worst
// deviation of |u_i| from 1 over the columns of a factor matrix.
func columnDots(u *Dense) (offDiag, normErr float64) {
	for i := 0; i < u.C; i++ {
		ni := 0.0
		for r := 0; r < u.R; r++ {
			ni += u.At(r, i) * u.At(r, i)
		}
		if d := math.Abs(math.Sqrt(ni) - 1); d > normErr {
			normErr = d
		}
		for j := i + 1; j < u.C; j++ {
			dot := 0.0
			for r := 0; r < u.R; r++ {
				dot += u.At(r, i) * u.At(r, j)
			}
			if d := math.Abs(dot); d > offDiag {
				offDiag = d
			}
		}
	}
	return offDiag, normErr
}

// TestSVDFactorOrthogonality: U and V columns associated with non-negligible
// singular values must be orthonormal on random matrices.
func TestSVDFactorOrthogonality(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		a := uniformDense(rng, 14, 7, 5)
		d := ComputeSVD(a)
		// Random dense matrices are full-rank with probability 1, so every
		// singular column participates.
		if r := d.Rank(1e-9); r != 7 {
			t.Fatalf("trial %d: random 14x7 matrix rank %d", trial, r)
		}
		for name, f := range map[string]*Dense{"U": d.U, "V": d.V} {
			off, norm := columnDots(f)
			if off > 1e-8 || norm > 1e-8 {
				t.Fatalf("trial %d: %s not orthonormal: offdiag %g, norm err %g", trial, name, off, norm)
			}
		}
	}
}

// TestSVDTruncationError: truncating to k factors must leave a residual no
// larger than the discarded singular mass, and error must shrink as k grows.
func TestSVDTruncationError(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	a := uniformDense(rng, 16, 10, 3)
	d := ComputeSVD(a)
	prev := math.Inf(1)
	for _, k := range []int{2, 4, 6, 8, 10} {
		rec := d.Truncate(k).Reconstruct()
		frob := 0.0
		for i := range a.Data {
			diff := a.Data[i] - rec.Data[i]
			frob += diff * diff
		}
		frob = math.Sqrt(frob)
		discarded := 0.0
		for _, s := range d.S[k:] {
			discarded += s * s
		}
		bound := math.Sqrt(discarded)
		if frob > bound+1e-8 {
			t.Fatalf("k=%d: residual %g exceeds discarded singular mass %g", k, frob, bound)
		}
		if frob > prev+1e-8 {
			t.Fatalf("k=%d: residual %g grew from %g", k, frob, prev)
		}
		prev = frob
	}
}
