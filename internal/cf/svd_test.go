package cf

import (
	"math"
	"math/rand"
	"testing"
)

func randomDense(r, c int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// lowRank builds an r×c matrix of rank k.
func lowRank(r, c, k int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	a := NewDense(r, k)
	b := NewDense(k, c)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	out := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			s := 0.0
			for f := 0; f < k; f++ {
				s += a.At(i, f) * b.At(f, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func maxAbsDiff(a, b *Dense) float64 {
	d := 0.0
	for i := range a.Data {
		if x := math.Abs(a.Data[i] - b.Data[i]); x > d {
			d = x
		}
	}
	return d
}

func TestSVDReconstructsExactly(t *testing.T) {
	for _, dims := range [][2]int{{5, 3}, {10, 10}, {30, 8}, {8, 20}} {
		a := randomDense(dims[0], dims[1], 42)
		svd := ComputeSVD(a)
		if d := maxAbsDiff(a, svd.Reconstruct()); d > 1e-8 {
			t.Fatalf("%v: reconstruction error %v", dims, d)
		}
	}
}

func TestSVDSingularValuesSorted(t *testing.T) {
	svd := ComputeSVD(randomDense(20, 12, 7))
	for i := 1; i < len(svd.S); i++ {
		if svd.S[i] > svd.S[i-1]+1e-12 {
			t.Fatalf("singular values not sorted: %v", svd.S)
		}
		if svd.S[i] < 0 {
			t.Fatalf("negative singular value: %v", svd.S)
		}
	}
}

func TestSVDOrthonormalFactors(t *testing.T) {
	svd := ComputeSVD(randomDense(25, 10, 3))
	// U columns orthonormal.
	for a := 0; a < 10; a++ {
		for b := a; b < 10; b++ {
			dot := 0.0
			for i := 0; i < 25; i++ {
				dot += svd.U.At(i, a) * svd.U.At(i, b)
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Fatalf("UᵀU[%d,%d] = %v, want %v", a, b, dot, want)
			}
		}
	}
	// V columns orthonormal.
	for a := 0; a < 10; a++ {
		for b := a; b < 10; b++ {
			dot := 0.0
			for i := 0; i < 10; i++ {
				dot += svd.V.At(i, a) * svd.V.At(i, b)
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Fatalf("VᵀV[%d,%d] = %v, want %v", a, b, dot, want)
			}
		}
	}
}

func TestSVDKnownMatrix(t *testing.T) {
	// diag(3,2) has singular values 3,2.
	a := NewDense(2, 2)
	a.Set(0, 0, 3)
	a.Set(1, 1, 2)
	svd := ComputeSVD(a)
	if math.Abs(svd.S[0]-3) > 1e-10 || math.Abs(svd.S[1]-2) > 1e-10 {
		t.Fatalf("singular values %v, want [3 2]", svd.S)
	}
}

func TestSVDRankDetection(t *testing.T) {
	a := lowRank(20, 15, 3, 5)
	svd := ComputeSVD(a)
	if r := svd.Rank(1e-9); r != 3 {
		t.Fatalf("rank = %d, want 3; S=%v", r, svd.S[:6])
	}
}

func TestSVDTruncateCapturesLowRank(t *testing.T) {
	a := lowRank(20, 15, 3, 9)
	svd := ComputeSVD(a).Truncate(3)
	if len(svd.S) != 3 {
		t.Fatalf("truncated to %d values", len(svd.S))
	}
	if d := maxAbsDiff(a, svd.Reconstruct()); d > 1e-8 {
		t.Fatalf("rank-3 truncation of a rank-3 matrix lost %v", d)
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	svd := ComputeSVD(NewDense(4, 3))
	for _, s := range svd.S {
		if s != 0 {
			t.Fatalf("zero matrix has singular value %v", s)
		}
	}
	if svd.Rank(1e-9) != 0 {
		t.Fatal("zero matrix has nonzero rank")
	}
}

func TestMatMulT(t *testing.T) {
	q := NewDense(2, 3)
	p := NewDense(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			q.Set(i, j, float64(i*3+j+1))
			p.Set(i, j, float64(i+j))
		}
	}
	out := MatMulT(q, p)
	// out[0][1] = row0(q)·row1(p) = 1*1+2*2+3*3 = 14
	if out.At(0, 1) != 14 {
		t.Fatalf("MatMulT wrong: %v", out.At(0, 1))
	}
}
