package cf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// makeLowRankSparse builds a sparse observation of an underlying low-rank
// matrix, observing each cell with probability density. Returns the sparse
// matrix and the full ground truth.
func makeLowRankSparse(rows, cols, rank int, density float64, seed int64) (*Sparse, *Dense) {
	truth := lowRank(rows, cols, rank, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	s := NewSparse(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				s.Set(i, j, truth.At(i, j))
			}
		}
	}
	// Guarantee at least two observations per row so every row is
	// learnable.
	for i := 0; i < rows; i++ {
		for len(s.Row(i)) < 2 {
			s.Set(i, rng.Intn(cols), truth.At(i, rng.Intn(cols)))
		}
	}
	return s, truth
}

func TestSparseBasics(t *testing.T) {
	s := NewSparse(3, 4)
	if s.NNZ() != 0 || s.Density() != 0 {
		t.Fatal("fresh sparse not empty")
	}
	s.Set(0, 1, 5)
	s.Set(0, 1, 6) // overwrite
	s.Set(2, 3, 1)
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", s.NNZ())
	}
	if v, ok := s.Get(0, 1); !ok || v != 6 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	if _, ok := s.Get(1, 1); ok {
		t.Fatal("Get of unset cell returned ok")
	}
	if math.Abs(s.Mean()-3.5) > 1e-12 {
		t.Fatalf("Mean = %v, want 3.5", s.Mean())
	}
	if math.Abs(s.Density()-2.0/12) > 1e-12 {
		t.Fatalf("Density = %v", s.Density())
	}
	idx := s.AppendRow(map[int]float64{0: 2})
	if idx != 3 || s.Rows != 4 || s.NNZ() != 3 {
		t.Fatalf("AppendRow: idx=%d rows=%d nnz=%d", idx, s.Rows, s.NNZ())
	}
}

func TestSparseBoundsPanic(t *testing.T) {
	s := NewSparse(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Set did not panic")
		}
	}()
	s.Set(5, 0, 1)
}

func TestTrainFitsObserved(t *testing.T) {
	s, _ := makeLowRankSparse(30, 20, 3, 0.5, 11)
	m := Train(s, DefaultOptions())
	if rmse := m.RMSE(s); rmse > 0.1 {
		t.Fatalf("training RMSE %v too high", rmse)
	}
}

func TestTrainGeneralizes(t *testing.T) {
	// With 50% density and true rank 3 <= K, held-out error should be
	// small relative to the value scale (~rank^0.5).
	s, truth := makeLowRankSparse(40, 25, 3, 0.5, 13)
	m := Train(s, DefaultOptions())
	sse, n := 0.0, 0
	for i := 0; i < 40; i++ {
		for j := 0; j < 25; j++ {
			if _, ok := s.Get(i, j); ok {
				continue
			}
			d := truth.At(i, j) - m.Predict(i, j)
			sse += d * d
			n++
		}
	}
	rmse := math.Sqrt(sse / float64(n))
	if rmse > 0.6 {
		t.Fatalf("held-out RMSE %v too high", rmse)
	}
}

func TestPredictRowLength(t *testing.T) {
	s, _ := makeLowRankSparse(10, 7, 2, 0.6, 17)
	m := Train(s, DefaultOptions())
	if got := len(m.PredictRow(0)); got != 7 {
		t.Fatalf("PredictRow length %d, want 7", got)
	}
}

func TestFoldInRecoversRow(t *testing.T) {
	// Train on 39 rows; fold in the 40th from 4 observations.
	s, truth := makeLowRankSparse(40, 25, 3, 0.6, 19)
	train := NewSparse(39, 25)
	for i := 0; i < 39; i++ {
		for j, v := range s.Row(i) {
			train.Set(i, j, v)
		}
	}
	m := Train(train, DefaultOptions())
	obs := map[int]float64{}
	for j := 0; j < 25 && len(obs) < 4; j += 6 {
		obs[j] = truth.At(39, j)
	}
	pred := m.FoldIn(obs)
	sse, n := 0.0, 0
	scale := 0.0
	for j := 0; j < 25; j++ {
		d := pred[j] - truth.At(39, j)
		sse += d * d
		scale += truth.At(39, j) * truth.At(39, j)
		n++
	}
	relErr := math.Sqrt(sse) / math.Sqrt(scale)
	if relErr > 0.5 {
		t.Fatalf("fold-in relative error %v too high", relErr)
	}
}

func TestFoldInEmptyObsFallsBackToBias(t *testing.T) {
	s, _ := makeLowRankSparse(20, 10, 2, 0.6, 23)
	m := Train(s, DefaultOptions())
	pred := m.FoldIn(nil)
	for j, v := range pred {
		want := m.Mu + m.BI[j]
		if math.Abs(v-want) > 1e-6 {
			t.Fatalf("empty fold-in pred[%d] = %v, want bias %v", j, v, want)
		}
	}
}

func TestFoldInIgnoresOutOfRangeColumns(t *testing.T) {
	s, _ := makeLowRankSparse(20, 10, 2, 0.6, 29)
	m := Train(s, DefaultOptions())
	a := m.FoldIn(map[int]float64{0: 1, 99: 5, -3: 2})
	b := m.FoldIn(map[int]float64{0: 1})
	for j := range a {
		if math.Abs(a[j]-b[j]) > 1e-9 {
			t.Fatal("out-of-range observations affected fold-in")
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	s, _ := makeLowRankSparse(15, 10, 2, 0.5, 31)
	m1 := Train(s, DefaultOptions())
	m2 := Train(s, DefaultOptions())
	for i := 0; i < 15; i++ {
		for j := 0; j < 10; j++ {
			if m1.Predict(i, j) != m2.Predict(i, j) {
				t.Fatal("training not deterministic")
			}
		}
	}
}

func TestTrainEmptyMatrix(t *testing.T) {
	s := NewSparse(5, 5)
	m := Train(s, DefaultOptions())
	if v := m.Predict(0, 0); v != 0 {
		t.Fatalf("empty-matrix prediction %v, want 0", v)
	}
}

func TestTrainSingleColumn(t *testing.T) {
	s := NewSparse(5, 1)
	for i := 0; i < 5; i++ {
		s.Set(i, 0, float64(i))
	}
	m := Train(s, DefaultOptions())
	for i := 0; i < 5; i++ {
		if math.Abs(m.Predict(i, 0)-float64(i)) > 0.5 {
			t.Fatalf("single-column fit off at %d: %v", i, m.Predict(i, 0))
		}
	}
}

func TestSolveLinearSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x := solve(a, b)
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("solve = %v, want [1 3]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Leading zero forces a pivot swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x := solve(a, b)
	if math.Abs(x[0]-3) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Fatalf("solve = %v, want [3 2]", x)
	}
}

// Property: fold-in of a row that was IN the training set approximates that
// row's trained predictions.
func TestFoldInConsistentWithTraining(t *testing.T) {
	s, _ := makeLowRankSparse(30, 15, 3, 0.7, 37)
	m := Train(s, DefaultOptions())
	f := func(rowRaw uint8) bool {
		u := int(rowRaw) % 30
		pred := m.FoldIn(s.Row(u))
		// Compare on observed columns: both should be near the observed
		// values.
		for j, v := range s.Row(u) {
			if math.Abs(pred[j]-v) > 1.0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
