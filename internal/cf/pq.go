package cf

import (
	"math"
	"math/rand"
	"sort"
)

// Options configures PQ-reconstruction. The defaults follow the paper: a
// simple latent-factor model r̂_ui = µ + b_u + q_i·p_u trained by SGD with
// learning rate η and regularization λ, initialized from the SVD of the
// mean-imputed matrix (Pᵀ ← ΣVᵀ, Q ← U), iterating until the L2 norm of the
// prediction error becomes marginal.
type Options struct {
	K       int     // number of latent factors
	Eta     float64 // SGD learning rate
	Lambda  float64 // regularization factor
	Epochs  int     // maximum SGD epochs
	Tol     float64 // stop when relative RMSE improvement falls below Tol
	Seed    int64   // RNG seed for entry-order shuffling
	ItemBia bool    // also learn per-column (item) bias b_i
}

// DefaultOptions returns the options used by the classification engine.
func DefaultOptions() Options {
	return Options{K: 4, Eta: 0.05, Lambda: 0.02, Epochs: 500, Tol: 1e-6, Seed: 1, ItemBia: true}
}

// Model is a trained latent-factor model over a sparse matrix.
type Model struct {
	K      int
	Mu     float64
	BU     []float64 // row (user) biases
	BI     []float64 // column (item) biases
	P      *Dense    // row factors, Rows×K
	Q      *Dense    // column factors, Cols×K
	Lambda float64
}

// Train fits a latent-factor model to the observed entries of s.
func Train(s *Sparse, opts Options) *Model {
	k := opts.K
	if k <= 0 {
		k = DefaultOptions().K
	}
	if k > s.Cols {
		k = s.Cols
	}
	if k > s.Rows {
		k = s.Rows
	}
	if k < 1 {
		k = 1
	}
	m := &Model{
		K:      k,
		Mu:     s.Mean(),
		BU:     make([]float64, s.Rows),
		BI:     make([]float64, s.Cols),
		P:      NewDense(s.Rows, k),
		Q:      NewDense(s.Cols, k),
		Lambda: opts.Lambda,
	}
	m.initFromSVD(s)

	var entries []obsEntry
	for u := 0; u < s.Rows; u++ {
		for i, v := range s.Row(u) {
			entries = append(entries, obsEntry{u, i, v})
		}
	}
	if len(entries) == 0 {
		return m
	}
	// Deterministic entry order before shuffling.
	sortObs(entries)
	rng := rand.New(rand.NewSource(opts.Seed))

	prevRMSE := math.Inf(1)
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		rng.Shuffle(len(entries), func(a, b int) { entries[a], entries[b] = entries[b], entries[a] })
		sse := 0.0
		for _, e := range entries {
			pred := m.Predict(e.u, e.i)
			err := e.v - pred
			sse += err * err
			m.BU[e.u] += opts.Eta * (err - opts.Lambda*m.BU[e.u])
			if opts.ItemBia {
				m.BI[e.i] += opts.Eta * (err - opts.Lambda*m.BI[e.i])
			}
			for f := 0; f < k; f++ {
				pu := m.P.At(e.u, f)
				qi := m.Q.At(e.i, f)
				m.P.Set(e.u, f, pu+opts.Eta*(err*qi-opts.Lambda*pu))
				m.Q.Set(e.i, f, qi+opts.Eta*(err*pu-opts.Lambda*qi))
			}
		}
		rmse := math.Sqrt(sse / float64(len(entries)))
		if prevRMSE-rmse < opts.Tol*prevRMSE {
			break
		}
		prevRMSE = rmse
	}
	return m
}

type obsEntry struct {
	u, i int
	v    float64
}

// sortObs orders entries deterministically (row-major) so training is
// reproducible regardless of map iteration order.
func sortObs(entries []obsEntry) {
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].u != entries[b].u {
			return entries[a].u < entries[b].u
		}
		return entries[a].i < entries[b].i
	})
}

// initFromSVD seeds P and Q from the SVD of the mean-imputed dense matrix,
// per the paper: missing entries are filled with µ (+biases), SVD is
// computed, and Q ← U·sqrt(Σ), Pᵀ ← sqrt(Σ)·Vᵀ so that Q·Pᵀ reproduces the
// imputed matrix's low-rank structure. (The paper assigns Q ← U, Pᵀ ← ΣVᵀ;
// splitting Σ symmetrically conditions SGD better and is equivalent up to a
// diagonal rescaling.)
func (m *Model) initFromSVD(s *Sparse) {
	if s.Rows == 0 || s.Cols == 0 {
		return
	}
	dense := NewDense(s.Rows, s.Cols)
	for u := 0; u < s.Rows; u++ {
		for i := 0; i < s.Cols; i++ {
			if v, ok := s.Get(u, i); ok {
				dense.Set(u, i, v-m.Mu)
			}
		}
	}
	svd := ComputeSVD(dense).Truncate(m.K)
	for u := 0; u < s.Rows; u++ {
		for f := 0; f < m.K && f < len(svd.S); f++ {
			m.P.Set(u, f, svd.U.At(u, f)*math.Sqrt(svd.S[f]))
		}
	}
	for i := 0; i < s.Cols; i++ {
		for f := 0; f < m.K && f < len(svd.S); f++ {
			m.Q.Set(i, f, svd.V.At(i, f)*math.Sqrt(svd.S[f]))
		}
	}
}

// Predict returns r̂_ui = µ + b_u + b_i + q_i·p_u.
func (m *Model) Predict(u, i int) float64 {
	s := m.Mu + m.BU[u] + m.BI[i]
	for f := 0; f < m.K; f++ {
		s += m.P.At(u, f) * m.Q.At(i, f)
	}
	return s
}

// PredictRow returns the full reconstructed row u.
func (m *Model) PredictRow(u int) []float64 {
	out := make([]float64, m.Q.R)
	for i := range out {
		out[i] = m.Predict(u, i)
	}
	return out
}

// RMSE returns the root-mean-square error over the observed entries of s.
func (m *Model) RMSE(s *Sparse) float64 {
	sse, n := 0.0, 0
	for u := 0; u < s.Rows && u < m.P.R; u++ {
		for i, v := range s.Row(u) {
			d := v - m.Predict(u, i)
			sse += d * d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sse / float64(n))
}

// FoldIn estimates the full row of a workload not present at training time
// from its few observed entries, holding the trained column factors fixed.
// It solves the ridge regression
//
//	min_{p,b} Σ_obs (v_i − µ − b − b_i − q_i·p)² + λ(‖p‖² + b²)
//
// which is the standard fold-in for latent-factor models and is what makes
// per-arrival classification cost milliseconds instead of a full retrain.
func (m *Model) FoldIn(obs map[int]float64) []float64 {
	k := m.K
	valid := 0
	for i := range obs {
		if i >= 0 && i < m.Q.R {
			valid++
		}
	}
	// Unknowns: [b, p_1..p_k].
	dim := k + 1
	a := make([][]float64, dim) // normal equations matrix
	for i := range a {
		a[i] = make([]float64, dim)
		a[i][i] = m.Lambda * float64(max(1, valid))
	}
	b := make([]float64, dim)
	// Deterministic iteration: float accumulation order must not depend on
	// map order.
	keys := make([]int, 0, len(obs))
	for i := range obs {
		keys = append(keys, i)
	}
	sort.Ints(keys)
	for _, i := range keys {
		v := obs[i]
		if i < 0 || i >= m.Q.R {
			continue
		}
		// Feature vector x = [1, q_i].
		x := make([]float64, dim)
		x[0] = 1
		for f := 0; f < k; f++ {
			x[f+1] = m.Q.At(i, f)
		}
		y := v - m.Mu - m.BI[i]
		for r := 0; r < dim; r++ {
			for c := 0; c < dim; c++ {
				a[r][c] += x[r] * x[c]
			}
			b[r] += x[r] * y
		}
	}
	sol := solve(a, b)
	bu, p := sol[0], sol[1:]
	out := make([]float64, m.Q.R)
	for i := range out {
		s := m.Mu + bu + m.BI[i]
		for f := 0; f < k; f++ {
			s += p[f] * m.Q.At(i, f)
		}
		out[i] = s
	}
	return out
}

// solve performs Gaussian elimination with partial pivoting on a·x = b.
// The ridge term guarantees a is positive definite, so this never fails.
func solve(a [][]float64, b []float64) []float64 {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		d := a[col][col]
		if d == 0 { //lint:allow(floatcmp) exact-zero pivot guard before division
			continue
		}
		for r := col + 1; r < n; r++ {
			f := a[r][col] / d
			if f == 0 { //lint:allow(floatcmp) exactly-zero factor: row already eliminated
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		if a[r][r] != 0 { //lint:allow(floatcmp) exact-zero guard before division
			x[r] = s / a[r][r]
		}
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
