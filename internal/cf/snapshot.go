package cf

// Snapshot support: a Sparse matrix can be exported to plain maps (JSON-
// friendly) and rebuilt, so a hot-standby cluster manager can mirror the
// classification state (§4.4 fault tolerance).

// Export returns the observed entries row by row. The maps are copies.
func (s *Sparse) Export() []map[int]float64 {
	out := make([]map[int]float64, s.Rows)
	for i, row := range s.entries {
		cp := make(map[int]float64, len(row))
		for j, v := range row {
			cp[j] = v
		}
		out[i] = cp
	}
	return out
}

// NewSparseFrom rebuilds a sparse matrix from exported rows.
func NewSparseFrom(cols int, rows []map[int]float64) *Sparse {
	s := NewSparse(0, cols)
	for _, row := range rows {
		s.AppendRow(row)
	}
	return s
}
