package trace

import (
	"sort"
	"testing"
)

func smallConfig() Config {
	c := DefaultConfig()
	c.Servers = 200
	c.Workloads = 800
	c.Days = 14
	return c
}

func TestTraceShapeMatchesFig1(t *testing.T) {
	tr := Generate(smallConfig())
	// Fig. 1a: aggregate CPU usage consistently below 20%, reservations
	// near 80%.
	if used := tr.MeanCPUUsedPct(); used > 25 || used < 5 {
		t.Fatalf("mean CPU used %.1f%%, want <25%% (paper: <20%%)", used)
	}
	if resv := tr.MeanCPUResvPct(); resv < 60 || resv > 95 {
		t.Fatalf("mean CPU reserved %.1f%%, want ~80%%", resv)
	}
	// Fig. 1b: memory usage around 40-50%... definitely above CPU usage.
	if tr.MeanMemUsedPct() <= tr.MeanCPUUsedPct() {
		t.Fatalf("memory usage %.1f%% should exceed CPU usage %.1f%%",
			tr.MeanMemUsedPct(), tr.MeanCPUUsedPct())
	}
	// The gap between reservation and usage is the paper's headline.
	if tr.MeanCPUResvPct() < 2.5*tr.MeanCPUUsedPct() {
		t.Fatalf("reservation/usage gap too small: %.1f%% vs %.1f%%",
			tr.MeanCPUResvPct(), tr.MeanCPUUsedPct())
	}
}

func TestTraceSeriesLengths(t *testing.T) {
	cfg := smallConfig()
	tr := Generate(cfg)
	wantHours := cfg.Days * 24
	if len(tr.Hours) != wantHours || len(tr.CPUUsedPct) != wantHours ||
		len(tr.MemResvPct) != wantHours {
		t.Fatalf("series length %d, want %d", len(tr.Hours), wantHours)
	}
	if len(tr.WeeklyServerCPU) != 2 {
		t.Fatalf("%d weeks, want 2 for 14 days", len(tr.WeeklyServerCPU))
	}
	for _, week := range tr.WeeklyServerCPU {
		if len(week) != cfg.Servers {
			t.Fatalf("week has %d servers", len(week))
		}
	}
	if len(tr.ReservedToUsed) != cfg.Workloads {
		t.Fatalf("%d ratio entries", len(tr.ReservedToUsed))
	}
}

func TestServerCDFMostBelow50(t *testing.T) {
	tr := Generate(smallConfig())
	// Fig. 1c: the majority of servers do not exceed 50% utilization in
	// any week.
	for wi, week := range tr.WeeklyServerCPU {
		below := 0
		for _, u := range week {
			if u < 50 {
				below++
			}
		}
		if frac := float64(below) / float64(len(week)); frac < 0.6 {
			t.Fatalf("week %d: only %.0f%% of servers below 50%% util", wi, frac*100)
		}
	}
}

func TestReservedToUsedDistribution(t *testing.T) {
	tr := Generate(smallConfig())
	rs := append([]float64(nil), tr.ReservedToUsed...)
	sort.Float64s(rs)
	over, under := 0, 0
	for _, r := range rs {
		if r > 1.2 {
			over++
		}
		if r < 0.95 {
			under++
		}
	}
	n := float64(len(rs))
	if fo := float64(over) / n; fo < 0.6 || fo > 0.8 {
		t.Fatalf("over-reserved fraction %.2f, want ~0.7", fo)
	}
	if fu := float64(under) / n; fu < 0.12 || fu > 0.28 {
		t.Fatalf("under-reserved fraction %.2f, want ~0.2", fu)
	}
	if rs[len(rs)-1] > 10.01 {
		t.Fatalf("max ratio %.1f exceeds the 10x bound", rs[len(rs)-1])
	}
	if rs[0] < 0.19 {
		t.Fatalf("min ratio %.2f below the 0.2 bound", rs[0])
	}
}

func TestTraceDeterministic(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	for i := range a.CPUUsedPct {
		if a.CPUUsedPct[i] != b.CPUUsedPct[i] {
			t.Fatal("trace not deterministic")
		}
	}
}

func TestDiurnalVariation(t *testing.T) {
	tr := Generate(smallConfig())
	// Usage must swing within each day.
	lo, hi := 1e9, 0.0
	for h := 24; h < 48; h++ {
		if tr.CPUUsedPct[h] < lo {
			lo = tr.CPUUsedPct[h]
		}
		if tr.CPUUsedPct[h] > hi {
			hi = tr.CPUUsedPct[h]
		}
	}
	if hi-lo < 0.5 {
		t.Fatalf("no diurnal variation: %.2f..%.2f", lo, hi)
	}
}
