// Package trace synthesizes the 30-day production-cluster trace behind
// Figure 1 of the paper: a large reservation-managed cluster (Twitter,
// Mesos) whose aggregate CPU utilization stays far below its reservations.
// The generator reproduces the published shape: reservations around 80% of
// capacity with usage under 20%, memory usage of 40-50%, the per-server
// weekly utilization CDF, and the reserved/used ratio distribution in which
// ~70% of workloads over-reserve by up to 10x and ~20% under-reserve by up
// to 5x.
package trace

import (
	"math"

	"quasar/internal/sim"
)

// Config sizes the synthetic cluster trace.
type Config struct {
	Servers      int     // servers in the cluster
	CoresPerNode int     // homogeneous for the aggregate view
	MemPerNodeGB float64 //
	Days         int     // trace length
	Workloads    int     // long-running workloads hosted
	Seed         int64
}

// DefaultConfig matches the scale of the paper's figure (thousands of
// servers, 30 days).
func DefaultConfig() Config {
	return Config{
		Servers:      1000,
		CoresPerNode: 16,
		MemPerNodeGB: 48,
		Days:         30,
		Workloads:    4000,
		Seed:         1,
	}
}

// Trace is the generated dataset.
type Trace struct {
	Cfg Config

	// Hour-granularity aggregate series, as a percentage of cluster
	// capacity (Fig. 1a-b).
	Hours      []float64
	CPUUsedPct []float64
	CPUResvPct []float64
	MemUsedPct []float64
	MemResvPct []float64

	// WeeklyServerCPU[w] is the distribution of per-server mean CPU
	// utilization (%) during week w (Fig. 1c).
	WeeklyServerCPU [][]float64

	// ReservedToUsed is the per-workload reserved/used CPU ratio, one
	// entry per workload (Fig. 1d).
	ReservedToUsed []float64
}

type traceWorkload struct {
	cpuResv float64 // cores reserved
	memResv float64
	ratio   float64 // reserved/used
	phase   float64 // diurnal phase
	swing   float64 // diurnal swing of usage
	server  int
	start   float64 // hour
	end     float64
}

// Generate builds the synthetic trace.
func Generate(cfg Config) *Trace {
	rng := sim.NewRNG(cfg.Seed)
	totalCores := float64(cfg.Servers * cfg.CoresPerNode)
	totalMem := float64(cfg.Servers) * cfg.MemPerNodeGB
	hours := cfg.Days * 24

	// Target aggregate reservation: ~80% of CPU capacity, ~60% of memory.
	// Per-workload reservations are sized so the sum lands there.
	meanCPUResv := totalCores * 0.80 / float64(cfg.Workloads)
	meanMemResv := totalMem * 0.60 / float64(cfg.Workloads)

	wls := make([]*traceWorkload, cfg.Workloads)
	for i := range wls {
		w := &traceWorkload{
			cpuResv: rng.Pareto(1.5, meanCPUResv*0.3, meanCPUResv*8),
			memResv: rng.Pareto(1.5, meanMemResv*0.3, meanMemResv*8),
			phase:   rng.Uniform(0, 24),
			swing:   rng.Uniform(0.1, 0.5),
		}
		// Fig. 1d reserved/used ratio: 70% over-reserve (1-10x), 20%
		// under-reserve (0.2-1x), 10% right-sized.
		r := rng.Float64()
		switch {
		case r < 0.70:
			w.ratio = rng.Uniform(1.5, 10)
		case r < 0.90:
			w.ratio = rng.Uniform(0.2, 0.95)
		default:
			w.ratio = rng.Uniform(0.95, 1.2)
		}
		// Under- and right-sized reservations are small workloads; the
		// bulk of reserved capacity belongs to over-provisioned services
		// (this is what makes the aggregate usage/reservation gap of
		// Fig. 1a possible given the Fig. 1d ratio distribution).
		if w.ratio < 1.5 {
			w.cpuResv *= 0.12
			w.memResv *= 0.25
		}
		// Most services run the whole month; some churn.
		if rng.Bool(0.8) {
			w.start, w.end = 0, float64(hours)
		} else {
			w.start = rng.Uniform(0, float64(hours)/2)
			w.end = w.start + rng.Uniform(24, float64(hours)/2)
		}
		wls[i] = w
	}
	// Rescale reservations so the aggregate lands at the target shares.
	sumCPU, sumMem := 0.0, 0.0
	for _, w := range wls {
		life := (w.end - w.start) / float64(hours)
		sumCPU += w.cpuResv * life
		sumMem += w.memResv * life
	}
	cpuScale := totalCores * 0.80 / sumCPU
	memScale := totalMem * 0.60 / sumMem
	serverLoad := make([]float64, cfg.Servers) // reserved cores per server
	for _, w := range wls {
		w.cpuResv *= cpuScale
		w.memResv *= memScale
		// Least-loaded placement by reserved cores.
		best := 0
		for s := 1; s < cfg.Servers; s++ {
			if serverLoad[s] < serverLoad[best] {
				best = s
			}
		}
		w.server = best
		serverLoad[best] += w.cpuResv
	}

	tr := &Trace{Cfg: cfg, WeeklyServerCPU: make([][]float64, 0, (cfg.Days+6)/7)}
	serverBusy := make([]float64, cfg.Servers) // accumulated core-hours this week
	weekHours := 0

	for h := 0; h < hours; h++ {
		t := float64(h)
		cpuUsed, cpuResv, memUsed, memResv := 0.0, 0.0, 0.0, 0.0
		for _, w := range wls {
			if t < w.start || t >= w.end {
				continue
			}
			cpuResv += w.cpuResv
			memResv += w.memResv
			// Diurnal usage around the mean implied by the ratio.
			day := 1 + w.swing*math.Cos(2*math.Pi*(math.Mod(t, 24)-w.phase)/24)
			used := w.cpuResv / w.ratio * day
			if used > w.cpuResv {
				used = w.cpuResv // cgroups throttle usage at the reservation
			}
			cpuUsed += used
			// Memory usage is steadier and higher relative to
			// reservations (Fig. 1b).
			memUsed += math.Min(w.memResv, w.memResv/math.Max(w.ratio*0.55, 1))
			serverBusy[w.server] += used
		}
		tr.Hours = append(tr.Hours, t)
		tr.CPUUsedPct = append(tr.CPUUsedPct, 100*cpuUsed/totalCores)
		tr.CPUResvPct = append(tr.CPUResvPct, 100*math.Min(cpuResv, totalCores)/totalCores)
		tr.MemUsedPct = append(tr.MemUsedPct, 100*memUsed/totalMem)
		tr.MemResvPct = append(tr.MemResvPct, 100*math.Min(memResv, totalMem)/totalMem)

		weekHours++
		if weekHours == 7*24 || h == hours-1 {
			week := make([]float64, cfg.Servers)
			for s := range week {
				week[s] = 100 * serverBusy[s] / (float64(weekHours) * float64(cfg.CoresPerNode))
				serverBusy[s] = 0
			}
			tr.WeeklyServerCPU = append(tr.WeeklyServerCPU, week)
			weekHours = 0
		}
	}

	for _, w := range wls {
		tr.ReservedToUsed = append(tr.ReservedToUsed, w.ratio)
	}
	return tr
}

// MeanCPUUsedPct returns the trace-average aggregate CPU utilization.
func (tr *Trace) MeanCPUUsedPct() float64 { return mean(tr.CPUUsedPct) }

// MeanCPUResvPct returns the trace-average aggregate CPU reservation.
func (tr *Trace) MeanCPUResvPct() float64 { return mean(tr.CPUResvPct) }

// MeanMemUsedPct returns the trace-average aggregate memory utilization.
func (tr *Trace) MeanMemUsedPct() float64 { return mean(tr.MemUsedPct) }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
