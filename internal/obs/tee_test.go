package obs

import (
	"bytes"
	"testing"
)

// collectTee drains a subscriber channel into one byte stream, returning the
// concatenation and the last cumulative drop count observed.
func collectTee(header []byte, ch <-chan TeeBatch) ([]byte, int64) {
	var out bytes.Buffer
	out.Write(header)
	var dropped int64
	for batch := range ch {
		out.Write(batch.Data)
		dropped = batch.Dropped
	}
	return out.Bytes(), dropped
}

// TestTeeSinkByteIdentity is the tee's core contract: a subscriber attached
// before the first event receives — across the header line and every
// delivered batch — exactly the bytes a StreamSink writes for the same
// trace, including the trailing registry metric lines flushed at Close.
func TestTeeSinkByteIdentity(t *testing.T) {
	var want bytes.Buffer
	tee := NewTeeSink()
	tr := NewWithSinks(nil, NewStreamSinkWriter(&want), tee)
	_, _, ch := tee.Subscribe(64)

	driveTrace(tr)
	tee.Publish() // mid-run epoch seal: the remainder rides the Close batch
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// Subscribe returned before Start ran, so fetch the header afterwards via
	// a fresh throwaway subscriber to prove it is retained.
	_, header, lateCh := tee.Subscribe(1)
	if _, ok := <-lateCh; ok {
		t.Fatal("subscriber attached after Close received a batch")
	}
	got, dropped := collectTee(header, ch)
	if dropped != 0 {
		t.Fatalf("undersized? subscriber dropped %d events", dropped)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("tee stream differs from StreamSink output:\n--- tee ---\n%s--- stream ---\n%s", got, want.String())
	}
}

// TestTeeSinkDropsWhenSubscriberStalls pins the backpressure contract: a full
// subscriber channel loses whole batches, never blocks Publish, and the loss
// is visible both on the sink-wide counter and on the next delivered batch.
func TestTeeSinkDropsWhenSubscriberStalls(t *testing.T) {
	tee := NewTeeSink()
	tr := NewWithSinks(nil, tee)
	id, _, ch := tee.Subscribe(1)

	emit := func(name string) {
		tr.Instant("manager", "sched", name)
		tee.Publish()
	}
	emit("e1") // fills the depth-1 channel
	emit("e2") // dropped
	emit("e3") // dropped
	if got := tee.DroppedTotal(); got != 2 {
		t.Fatalf("DroppedTotal = %d, want 2", got)
	}
	first := <-ch
	if first.Dropped != 0 || first.Events != 1 {
		t.Fatalf("first batch = %+v, want 1 event, 0 dropped at delivery time", first)
	}
	emit("e4")
	second := <-ch
	if second.Dropped != 2 {
		t.Fatalf("post-stall batch carries Dropped=%d, want the cumulative 2", second.Dropped)
	}
	if !bytes.Contains(second.Data, []byte(`"e4"`)) {
		t.Fatalf("post-stall batch missing the fresh event: %s", second.Data)
	}

	tee.Unsubscribe(id)
	tee.Unsubscribe(id) // idempotent
	if _, ok := <-ch; ok {
		t.Fatal("unsubscribed channel still open")
	}
	if got := tee.Subscribers(); got != 0 {
		t.Fatalf("Subscribers = %d after unsubscribe, want 0", got)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTeeSinkIdleFastPath pins the zero-subscriber cost model: after the
// first Publish, events emitted with nobody attached are not retained.
func TestTeeSinkIdleFastPath(t *testing.T) {
	tee := NewTeeSink()
	tr := NewWithSinks(nil, tee)
	tr.Instant("manager", "sched", "prologue")
	tee.Publish() // arms the fast path; prologue batch evaporates (no subs)
	tr.Instant("manager", "sched", "unheard")
	if cur, _ := tee.RetainedBytes(); cur != 0 {
		t.Fatalf("idle tee retained %d bytes after the first Publish", cur)
	}

	// A late subscriber still gets the header and everything from here on.
	_, header, ch := tee.Subscribe(8)
	if !bytes.Contains(header, []byte(`"trace"`)) {
		t.Fatalf("late subscriber header = %q, want the trace header line", header)
	}
	tr.Instant("manager", "sched", "heard")
	tee.Publish()
	batch := <-ch
	if !bytes.Contains(batch.Data, []byte(`"heard"`)) || bytes.Contains(batch.Data, []byte(`"unheard"`)) {
		t.Fatalf("late subscriber batch = %s, want only post-attach events", batch.Data)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}
