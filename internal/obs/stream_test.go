package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// driveTrace emits a fixed event sequence plus registry entries into tr.
// Every sink configuration in these tests replays the same sequence, so any
// byte difference between their outputs is a pipeline bug, not input skew.
func driveTrace(tr *Tracer) {
	now := 0.0
	tr.clock = func() float64 { return now }
	tr.Instant("manager", "sched", "admit", Arg{Key: "workload", Val: "w0"})
	tr.BeginAsync("w0@2", "server/2", "place", "w0",
		Arg{Key: "cores", Val: 4}, Arg{Key: "quality", Val: 0.75})
	now = 10
	tr.Begin("manager", "sched", "decision")
	now = 12.5
	tr.End("manager", "sched", "decision")
	tr.EndAsync("w0@2", "server/2", "place", "w0")
	tr.Counter("cluster", "util", "servers_busy", Arg{Key: "busy", Val: 3})
	tr.Instant("workload/w0", "qos", "met")

	reg := tr.Registry()
	reg.Counter("decisions_total", "scheduler decisions").Add(2)
	reg.Gauge("queue_len", "queue length", func() float64 { return 1 })
}

func TestStreamSinkByteIdentity(t *testing.T) {
	buffered := New(nil)
	driveTrace(buffered)
	var want bytes.Buffer
	if err := WriteJSONL(&want, buffered); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	streamed := NewWithSinks(nil, NewStreamSinkWriter(&got))
	driveTrace(streamed)
	if err := streamed.Close(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("streamed JSONL differs from buffered WriteJSONL:\n--- streamed ---\n%s--- buffered ---\n%s",
			got.String(), want.String())
	}
}

func TestStreamSinkFileFinalize(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "trace.jsonl")
	sink, err := NewStreamSink(dst)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewWithSinks(nil, sink)
	driveTrace(tr)

	// Mid-run the bytes live in a temp file; the destination must not exist
	// until Close renames it into place, so a crashed run never leaves a
	// half-written trace under the advertised name.
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatalf("destination %s exists before Close (err=%v)", dst, err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	buffered := New(nil)
	driveTrace(buffered)
	var want bytes.Buffer
	if err := WriteJSONL(&want, buffered); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("finalized file differs from buffered WriteJSONL")
	}
	if sink.BytesWritten() != int64(len(got)) {
		t.Fatalf("BytesWritten = %d, file has %d bytes", sink.BytesWritten(), len(got))
	}
	// The temp file is gone after the rename.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind after finalize", e.Name())
		}
	}
	// Close is idempotent.
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamSinkDiscard(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "trace.jsonl")
	sink, err := NewStreamSink(dst)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewWithSinks(nil, sink)
	driveTrace(tr)
	sink.Discard()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("Discard left %d files in %s", len(entries), dir)
	}
}

func TestStreamSinkEmptyTrace(t *testing.T) {
	// A trace with no events still finalizes to a valid file: header line
	// plus registry metric lines, so readers can tell "ran and recorded
	// nothing" from "never ran".
	var buf bytes.Buffer
	tr := NewWithSinks(nil, NewStreamSinkWriter(&buf))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	h, err := ReadHeader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h == nil || h.Trace != headerMagic || h.Version != 2 {
		t.Fatalf("empty trace header = %+v", h)
	}
	evs, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 {
		t.Fatalf("empty trace decoded %d events", len(evs))
	}
}

func TestStreamSinkBoundedMemory(t *testing.T) {
	var buf bytes.Buffer
	sink := NewStreamSinkWriter(&buf)
	tr := NewWithSinks(nil, sink)
	for i := 0; i < 5000; i++ {
		tr.Instant("manager", "runtime", "tick", Arg{Key: "i", Val: i})
	}
	cur, high := sink.RetainedBytes()
	if cur > streamBufBytes || high > streamBufBytes {
		t.Fatalf("stream sink retains cur=%d high=%d, want <= buffer size %d", cur, high, streamBufBytes)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no bytes written")
	}
}

func TestRingSinkBound(t *testing.T) {
	const capacity = 8
	ring := NewRingSink(capacity)
	tr := NewWithSinks(nil, ring)
	var plateau int
	for i := 0; i < 100; i++ {
		tr.Instant("manager", "runtime", "tick", Arg{Key: "note", Val: "x"})
		if i == 2*capacity {
			plateau, _ = ring.RetainedBytes()
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if ring.Emitted() != 100 {
		t.Fatalf("Emitted = %d, want 100", ring.Emitted())
	}
	evs := ring.Events()
	if len(evs) != capacity {
		t.Fatalf("ring holds %d events, want %d", len(evs), capacity)
	}
	// Oldest-first: the survivors are the last `capacity` emissions.
	for i, ev := range evs {
		want := uint64(100 - capacity + i + 1)
		if ev.Seq != want {
			t.Fatalf("ring event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
	// Identical-size events: retained bytes plateau once the ring is full
	// instead of growing with the emission count.
	cur, high := ring.RetainedBytes()
	if cur != plateau || high != plateau {
		t.Fatalf("ring retained cur=%d high=%d, want plateau %d", cur, high, plateau)
	}
}
