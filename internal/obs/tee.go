package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
)

// TeeSink is the live-subscription sink: it encodes accepted events with the
// same per-line encoder as the JSONL exporters and distributes them to
// attached subscribers in epoch-sized batches. The serve daemon attaches one
// next to its StreamSink and calls Publish after each sealed epoch, which is
// what GET /v1/trace/stream serves from.
//
// Determinism: the sink only observes the already-sequenced event stream and
// never feeds anything back into it, so attaching it (or any number of
// subscribers) cannot perturb the trace. It reads no wall clock — pacing is
// the caller's Publish cadence.
//
// Backpressure: each subscriber owns a bounded channel of batches. A
// subscriber that falls behind loses whole batches — Publish never blocks the
// engine — and the loss is explicit: the subscriber's next delivered batch
// carries its cumulative dropped-event count, and DroppedTotal exposes the
// sink-wide counter for metrics.
//
// Cost: until the first Publish, events buffer unconditionally (so a
// subscriber attached before the daemon starts pacing sees the world-build
// prologue and therefore the byte-identical full stream). After that, Emit
// returns immediately when no subscriber is attached.
type TeeSink struct {
	subCount  atomic.Int64 // fast-path guard read outside mu
	published atomic.Bool  // first Publish happened; empty-subscriber fast path armed
	dropped   atomic.Int64 // events dropped across all subscribers, ever

	mu      sync.Mutex
	header  []byte
	buf     bytes.Buffer // encoded lines since the last Publish
	enc     *json.Encoder
	pending int // events currently encoded in buf
	subs    map[int]*teeSub
	nextID  int
	closed  bool
	high    int
}

// TeeBatch is one delivery to a subscriber: a byte slice of complete NDJSON
// lines (owned by the receiver), the number of events it carries, and the
// subscriber's cumulative dropped-event count at delivery time.
type TeeBatch struct {
	Data    []byte
	Events  int
	Dropped int64
}

// teeSub is one subscriber's state (owned by TeeSink.mu).
type teeSub struct {
	ch      chan TeeBatch
	dropped int64
}

// NewTeeSink returns an empty tee with no subscribers.
func NewTeeSink() *TeeSink {
	t := &TeeSink{subs: make(map[int]*teeSub)}
	t.enc = json.NewEncoder(&t.buf)
	return t
}

// Start implements Sink: the header line is retained so every subscriber's
// stream can begin with it, exactly as a trace file does.
func (t *TeeSink) Start(h *Header) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var hb bytes.Buffer
	if err := json.NewEncoder(&hb).Encode(h); err != nil {
		return err
	}
	t.header = hb.Bytes()
	return nil
}

// Emit implements Sink: encode the event into the pending batch. Skipped
// entirely when nobody is subscribed (after the first Publish), so an idle
// tee costs two atomic loads per event.
func (t *TeeSink) Emit(ev *Event, _ int) error {
	if t.published.Load() && t.subCount.Load() == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	if err := encodeEventLine(t.enc, ev); err != nil {
		return err
	}
	t.pending++
	if t.buf.Len() > t.high {
		t.high = t.buf.Len()
	}
	return nil
}

// Publish seals the pending batch and hands it to every subscriber without
// blocking: a full subscriber channel drops the whole batch for that
// subscriber and advances its drop counter. Called by the serve pacer after
// each epoch seal.
func (t *TeeSink) Publish() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.published.Store(true)
	t.publishLocked()
}

// publishLocked distributes and resets the pending batch (mu held).
func (t *TeeSink) publishLocked() {
	if t.pending == 0 {
		return
	}
	data := append([]byte(nil), t.buf.Bytes()...)
	events := t.pending
	t.buf.Reset()
	t.pending = 0
	for _, sub := range t.subs {
		select {
		case sub.ch <- TeeBatch{Data: data, Events: events, Dropped: sub.dropped}:
		default:
			sub.dropped += int64(events)
			t.dropped.Add(int64(events))
		}
	}
}

// Subscribe attaches a subscriber with a batch channel of depth bufBatches
// (minimum 1) and returns its id, the header line bytes (nil if the stream
// has not started), and the receive channel. The channel closes when the sink
// closes; cancel with Unsubscribe.
func (t *TeeSink) Subscribe(bufBatches int) (id int, header []byte, ch <-chan TeeBatch) {
	if bufBatches < 1 {
		bufBatches = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sub := &teeSub{ch: make(chan TeeBatch, bufBatches)}
	id = t.nextID
	t.nextID++
	t.subs[id] = sub
	t.subCount.Store(int64(len(t.subs)))
	if t.closed {
		close(sub.ch)
	}
	return id, t.header, sub.ch
}

// Unsubscribe detaches a subscriber and closes its channel. Idempotent.
func (t *TeeSink) Unsubscribe(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sub, ok := t.subs[id]
	if !ok {
		return
	}
	delete(t.subs, id)
	t.subCount.Store(int64(len(t.subs)))
	close(sub.ch)
}

// Close implements Sink: flush the remaining events, append the registry's
// trailing metric lines (so a subscriber that stays to the end receives the
// same complete stream a trace file holds), then close every subscriber
// channel. Idempotent.
func (t *TeeSink) Close(reg *Registry) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	if len(t.subs) > 0 {
		before := t.buf.Len()
		if err := writeRegistryLines(t.enc, reg); err != nil {
			return err
		}
		if t.buf.Len() > t.high {
			t.high = t.buf.Len()
		}
		if t.buf.Len() > before {
			t.pending++ // the metric tail rides the final batch
		}
		t.publishLocked()
	}
	t.closed = true
	for id, sub := range t.subs {
		delete(t.subs, id)
		close(sub.ch)
	}
	t.subCount.Store(0)
	return nil
}

// RetainedBytes implements Sink: the pending batch is the only retained
// state.
func (t *TeeSink) RetainedBytes() (cur, high int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.buf.Len(), t.high
}

// Subscribers returns the current subscriber count.
func (t *TeeSink) Subscribers() int64 { return t.subCount.Load() }

// DroppedTotal returns the cumulative number of events dropped across all
// subscribers.
func (t *TeeSink) DroppedTotal() int64 { return t.dropped.Load() }
