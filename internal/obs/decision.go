package obs

// This file defines the decision-explainability payloads: structured records
// of why the scheduler and the Quasar manager acted as they did, attached to
// trace events as Args. They are plain structs with json tags (struct fields
// marshal in declaration order, which keeps the exporters byte-stable) and
// are decoded back by cmd/quasar-trace when reconstructing a run.

// Candidate is one ranked server considered by a scheduling decision, with
// the ranking inputs the greedy scheduler composed: platform affinity and
// interference folded into Quality, free-after-eviction capacity, the
// interference-compatibility verdict, and the live pressure on the server.
type Candidate struct {
	Server   int     `json:"server"`
	Platform string  `json:"platform"`
	Quality  float64 `json:"quality"`
	// FreeCores and FreeMemGB count best-effort residents as removable
	// (free-after-eviction capacity).
	FreeCores int     `json:"free_cores"`
	FreeMemGB float64 `json:"free_mem_gb"`
	// Evictable is the number of best-effort placements counted above.
	Evictable int `json:"evictable"`
	// Compatible reports the interference check: false means placing here
	// would push a classified resident past its tolerance, and Quality was
	// penalized 20x.
	Compatible bool `json:"compatible"`
	// Pressure is the max-resource interference pressure the workload would
	// see on this server.
	Pressure float64 `json:"pressure"`
	// Picked marks servers chosen by the decision.
	Picked bool `json:"picked"`
}

// NodePick is one chosen node of an assignment.
type NodePick struct {
	Server  int     `json:"server"`
	Cores   int     `json:"cores"`
	MemGB   float64 `json:"mem_gb"`
	EstPerf float64 `json:"est_perf"`
}

// Schedule-decision outcomes.
const (
	OutcomePlaced       = "placed"
	OutcomeNoCapacity   = "no-capacity"
	OutcomeBelowMinFill = "below-min-fill"
	OutcomeBadRequest   = "bad-request"
)

// ScheduleDecision records one sched.Scheduler.Schedule call end to end: the
// requirement, every candidate with its ranking inputs, the chosen nodes, and
// the outcome. From this alone a reader can answer "why did task X land on
// server Y" — Y's quality rank against its rivals — or why it was rejected.
type ScheduleDecision struct {
	Workload string  `json:"workload"`
	NeedPerf float64 `json:"need_perf"`
	// Want is NeedPerf with the scheduler's margin applied.
	Want          float64     `json:"want"`
	MaxNodes      int         `json:"max_nodes"`
	AcceptPartial bool        `json:"accept_partial,omitempty"`
	MaxCost       float64     `json:"max_cost_per_hour,omitempty"`
	Candidates    []Candidate `json:"candidates"`
	// CandidatesDropped counts ranking entries removed by top-K trace
	// truncation (0 when the full ranking is recorded).
	CandidatesDropped int        `json:"candidates_dropped,omitempty"`
	Picks             []NodePick `json:"picks,omitempty"`
	EstPerf           float64    `json:"est_perf"`
	CostPerHour       float64    `json:"cost_per_hour,omitempty"`
	Evictions         []string   `json:"evictions,omitempty"`
	Outcome           string     `json:"outcome"`
}

// PickedServers returns the chosen server IDs.
func (d *ScheduleDecision) PickedServers() []int {
	out := make([]int, 0, len(d.Picks))
	for _, p := range d.Picks {
		out = append(out, p.Server)
	}
	return out
}

// CandidateFor returns the candidate entry for a server, if present.
func (d *ScheduleDecision) CandidateFor(server int) (Candidate, bool) {
	for _, c := range d.Candidates {
		if c.Server == server {
			return c, true
		}
	}
	return Candidate{}, false
}

// AdmitDecision records the classification outcome at admission: the
// estimates the scheduler will act on.
type AdmitDecision struct {
	Workload string  `json:"workload"`
	Class    string  `json:"class"`
	RefPerf  float64 `json:"ref_perf"`
	Beta     float64 `json:"beta"`
	// Tol and Caused are the interference rows (one value per resource).
	Tol      []float64 `json:"tol"`
	Caused   []float64 `json:"caused"`
	WorkEst  float64   `json:"work_est,omitempty"`
	Deadline float64   `json:"deadline,omitempty"`
}

// AdjustDecision records one monitoring adjustment (scale-up/out or reclaim):
// the measured-vs-needed deviation that triggered it and the actions taken.
type AdjustDecision struct {
	Workload string  `json:"workload"`
	Need     float64 `json:"need"`
	Measured float64 `json:"measured"`
	// Actions lists what was done, e.g. "resize server 3 -> 8c/16g",
	// "scale-out +2 nodes", "drop server 9", "none: at cost cap".
	Actions []string `json:"actions"`
}
