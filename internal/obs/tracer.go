// Package obs is the observability subsystem: a deterministic, zero-wall-clock
// structured event tracer plus a counters/gauges registry, with exporters for
// JSONL event logs, Chrome trace_event JSON, and Prometheus-style text
// snapshots.
//
// Determinism contract. Events are timestamped on the simulation clock (an
// injected func() float64, normally sim.Engine.Now) and carry a sequence
// number assigned at emission. All emission happens either on the simulation
// goroutine — the discrete-event engine fires events one at a time, so calls
// arrive in a fixed order — or through Shards, the fan-out discipline that
// buffers per-task events and merges them in input order (mirroring
// internal/par and sim.RNG.Substreams). Under those two rules the event
// stream, and therefore every exporter's output, is byte-identical for any
// -workers count.
//
// Cost contract. A nil *Tracer is the off state: every method is nil-safe and
// returns immediately, so instrumented code pays one pointer test per site and
// allocates nothing. Call sites that assemble argument payloads must guard
// them with Enabled().
package obs

import "sort"

// Arg is one key/value pair of an event payload. Payloads are ordered slices,
// never maps, so serialization order is part of the emission site, not of Go's
// randomized map iteration.
type Arg struct {
	Key string
	Val any
}

// Event phases, mirroring the Chrome trace_event vocabulary: sync spans must
// nest within a track, async spans (placements that overlap arbitrarily on a
// server) are paired by ID, instants and counters stand alone.
const (
	PhaseInstant    = 'i'
	PhaseBegin      = 'B'
	PhaseEnd        = 'E'
	PhaseAsyncBegin = 'b'
	PhaseAsyncEnd   = 'e'
	PhaseCounter    = 'C'
)

// Event is one trace record.
type Event struct {
	// Seq is the stable, contiguous emission sequence number (from 1).
	Seq uint64
	// Time is the simulation clock reading at emission, in seconds.
	Time float64
	// Phase is one of the Phase constants.
	Phase byte
	// ID pairs async begin/end events; empty otherwise.
	ID string
	// Cat groups related event names (e.g. "sched", "runtime", "classify").
	Cat string
	// Name identifies the event type (e.g. "sched.schedule").
	Name string
	// Track is the timeline the event belongs to: "server/3", "workload/x",
	// or a singleton like "manager".
	Track string
	// Args is the ordered payload.
	Args []Arg
}

// Tracer accumulates events against an injected simulation clock. The zero
// value is not usable; use New. A nil Tracer is the disabled state.
type Tracer struct {
	clock  func() float64
	events []Event
	seq    uint64
	reg    *Registry
}

// New returns a tracer reading timestamps from clock. A nil clock pins every
// event to t=0 (useful for tests and offline studies that pass explicit
// times).
func New(clock func() float64) *Tracer {
	return &Tracer{clock: clock, reg: NewRegistry()}
}

// Enabled reports whether the tracer records events. It is the guard for
// building argument payloads at instrumentation sites.
func (t *Tracer) Enabled() bool { return t != nil }

// Registry returns the tracer's counters/gauges registry (nil for a nil
// tracer; Registry methods are nil-safe in turn).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// now reads the clock.
func (t *Tracer) now() float64 {
	if t.clock == nil {
		return 0
	}
	return t.clock()
}

// emit appends one event with the next sequence number.
func (t *Tracer) emit(tm float64, phase byte, id, track, cat, name string, args []Arg) {
	t.seq++
	t.events = append(t.events, Event{
		Seq: t.seq, Time: tm, Phase: phase, ID: id,
		Cat: cat, Name: name, Track: track, Args: args,
	})
}

// Instant records a standalone event at the current sim time.
func (t *Tracer) Instant(track, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(t.now(), PhaseInstant, "", track, cat, name, args)
}

// InstantAt records a standalone event at an explicit time, for studies that
// run their own local clock (e.g. the straggler study's fixed-step grid).
func (t *Tracer) InstantAt(tm float64, track, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(tm, PhaseInstant, "", track, cat, name, args)
}

// Begin opens a synchronous span on a track. Sync spans must strictly nest
// per track; use BeginAsync for overlapping intervals.
func (t *Tracer) Begin(track, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(t.now(), PhaseBegin, "", track, cat, name, args)
}

// End closes the innermost open synchronous span with this name on the track.
func (t *Tracer) End(track, cat, name string) {
	if t == nil {
		return
	}
	t.emit(t.now(), PhaseEnd, "", track, cat, name, nil)
}

// BeginAsync opens an async span; id pairs it with its EndAsync. Async spans
// may overlap freely on a track (a server hosting several placements).
func (t *Tracer) BeginAsync(id, track, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(t.now(), PhaseAsyncBegin, id, track, cat, name, args)
}

// EndAsync closes the async span opened under id.
func (t *Tracer) EndAsync(id, track, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(t.now(), PhaseAsyncEnd, id, track, cat, name, args)
}

// Counter records sampled numeric values on a track; Chrome renders counter
// events as stacked area charts.
func (t *Tracer) Counter(track, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(t.now(), PhaseCounter, "", track, cat, name, args)
}

// Len returns the number of recorded events (0 for a nil tracer).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the recorded events in emission order. The slice is the
// tracer's backing store; callers must not mutate it.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Tracks returns every track name in order of first appearance. Servers and
// workloads each get their own track, which is what gives the Chrome export
// one row per server and one per workload.
func (t *Tracer) Tracks() []string {
	if t == nil {
		return nil
	}
	seen := make(map[string]bool, 16)
	var out []string
	for i := range t.events {
		tr := t.events[i].Track
		if !seen[tr] {
			seen[tr] = true
			out = append(out, tr)
		}
	}
	return out
}

// EventCountsByName returns (name, count) pairs sorted by name, for summary
// reporting.
func (t *Tracer) EventCountsByName() (names []string, counts []int) {
	if t == nil {
		return nil, nil
	}
	m := make(map[string]int, 32)
	for i := range t.events {
		m[t.events[i].Name]++
	}
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	counts = make([]int, len(names))
	for i, name := range names {
		counts[i] = m[name]
	}
	return names, counts
}
