// Package obs is the observability subsystem: a deterministic, zero-wall-clock
// structured event tracer feeding a pipeline of sinks (in-memory buffer,
// streaming JSONL spill, fixed-capacity flight recorder), plus a
// counters/gauges registry, with exporters for JSONL event logs, Chrome
// trace_event JSON, and Prometheus-style text snapshots.
//
// Determinism contract. Events are timestamped on the simulation clock (an
// injected func() float64, normally sim.Engine.Now) and carry a sequence
// number assigned at emission. All emission happens either on the simulation
// goroutine — the discrete-event engine fires events one at a time, so calls
// arrive in a fixed order — or through Shards, the fan-out discipline that
// buffers per-task events and merges them in input order (mirroring
// internal/par and sim.RNG.Substreams). Trace controls (level filters,
// hash-based workload sampling, top-K truncation) are pure functions of the
// event fields and run before sequence assignment, so a filtered stream still
// has contiguous seqs. Under those rules the event stream, and therefore
// every sink's and exporter's output, is byte-identical for any -workers
// count.
//
// Cost contract. A nil *Tracer is the off state: every method is nil-safe and
// returns immediately, so instrumented code pays one pointer test per site and
// allocates nothing. Call sites that assemble argument payloads must guard
// them with Enabled(). Memory is owned by the sinks: the default BufferSink
// retains everything (what the Chrome/Prometheus exporters need), while
// StreamSink and RingSink keep the tracer's footprint bounded at any scale.
package obs

import "sort"

// Arg is one key/value pair of an event payload. Payloads are ordered slices,
// never maps, so serialization order is part of the emission site, not of Go's
// randomized map iteration.
type Arg struct {
	Key string
	Val any
}

// Event phases, mirroring the Chrome trace_event vocabulary: sync spans must
// nest within a track, async spans (placements that overlap arbitrarily on a
// server) are paired by ID, instants and counters stand alone.
const (
	PhaseInstant    = 'i'
	PhaseBegin      = 'B'
	PhaseEnd        = 'E'
	PhaseAsyncBegin = 'b'
	PhaseAsyncEnd   = 'e'
	PhaseCounter    = 'C'
)

// Event is one trace record.
type Event struct {
	// Seq is the stable, contiguous emission sequence number (from 1).
	Seq uint64
	// Time is the simulation clock reading at emission, in seconds.
	Time float64
	// Phase is one of the Phase constants.
	Phase byte
	// ID pairs async begin/end events; empty otherwise.
	ID string
	// Cat groups related event names (e.g. "sched", "runtime", "classify").
	Cat string
	// Name identifies the event type (e.g. "sched.schedule").
	Name string
	// Track is the timeline the event belongs to: "server/3", "workload/x",
	// or a singleton like "manager".
	Track string
	// Args is the ordered payload.
	Args []Arg
}

// Tracer filters, sequences, and fans events out to its sinks against an
// injected simulation clock. The zero value is not usable; use New or
// NewWithSinks. A nil Tracer is the disabled state.
type Tracer struct {
	clock    func() float64
	seq      uint64
	reg      *Registry
	controls Controls
	// ctlActive caches controls.active() at SetControls time so the per-event
	// path never walks the category map.
	ctlActive bool
	sinks     []Sink
	buffer    *BufferSink // first buffer sink, for the whole-trace exporters
	scratch   Event       // reused per emission so dispatch allocates nothing itself
	started   bool
	closed    bool
	err       error
	accepted  uint64
	bytesEst  int64
	dropped   *Counter
}

// New returns a tracer with a single in-memory BufferSink — the classic
// record-everything tracer the exporters and tests build on. A nil clock pins
// every event to t=0 (useful for tests and offline studies that pass explicit
// times).
func New(clock func() float64) *Tracer { return NewWithSinks(clock, NewBufferSink()) }

// NewWithSinks returns a tracer fanning accepted events out to the given
// sinks in order. Pass a BufferSink to keep the whole-trace exporters
// (Chrome, Prometheus, buffered JSONL) available; a StreamSink and/or
// RingSink alone keeps memory bounded at any scale.
func NewWithSinks(clock func() float64, sinks ...Sink) *Tracer {
	t := &Tracer{clock: clock, reg: NewRegistry(), sinks: sinks}
	for _, s := range sinks {
		if b, ok := s.(*BufferSink); ok && t.buffer == nil {
			t.buffer = b
		}
	}
	// The tracer meters itself: accepted events and their deterministic size
	// estimate are pure functions of the event stream, so these lines are
	// byte-identical across sinks and worker counts, unlike per-sink retained
	// memory (see Sink.RetainedBytes, which feeds the benchmarks instead).
	t.reg.Gauge("tracer_events", "Events accepted into the trace stream.", func() float64 { return float64(t.accepted) })
	t.reg.Gauge("tracer_bytes", "Deterministic size estimate of all accepted trace events, bytes.", func() float64 { return float64(t.bytesEst) })
	t.dropped = t.reg.Counter("tracer_events_dropped_total", "Events dropped by trace controls (level filters, workload sampling).")
	return t
}

// SetControls installs deterministic trace controls. Call before the first
// event: the controls are written into the trace header when the stream
// starts, and changing them mid-run would break the header's promise.
func (t *Tracer) SetControls(c Controls) {
	if t == nil {
		return
	}
	t.controls = c
	t.ctlActive = c.active()
}

// Controls returns the installed controls (zero value for nil).
func (t *Tracer) Controls() Controls {
	if t == nil {
		return Controls{}
	}
	return t.controls
}

// Header returns the trace header the stream carries (the default header for
// a nil tracer).
func (t *Tracer) Header() Header {
	if t == nil {
		return *defaultHeader()
	}
	return t.controls.header()
}

// Enabled reports whether the tracer records events. It is the guard for
// building argument payloads at instrumentation sites.
func (t *Tracer) Enabled() bool { return t != nil }

// Registry returns the tracer's counters/gauges registry (nil for a nil
// tracer; Registry methods are nil-safe in turn).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// now reads the clock.
func (t *Tracer) now() float64 {
	if t.clock == nil {
		return 0
	}
	return t.clock()
}

// start delivers the header to every sink, once, before the first event.
func (t *Tracer) start() {
	if t.started {
		return
	}
	t.started = true
	h := t.controls.header()
	for _, s := range t.sinks {
		if err := s.Start(&h); err != nil {
			t.fail(err)
		}
	}
}

// fail records the first sink error; later events still reach healthy sinks.
func (t *Tracer) fail(err error) {
	if t.err == nil {
		t.err = err
	}
}

// Err returns the first sink error encountered, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	return t.err
}

// emit runs one prospective event through the pipeline: controls decide
// keep/drop and truncation, then the event gets the next sequence number and
// fans out to every sink. The scratch event is reused across emissions, so
// the pipeline itself allocates nothing; sinks copy what they retain and the
// pointer is valid only for the duration of the Emit call.
func (t *Tracer) emit(tm float64, phase byte, id, track, cat, name string, args []Arg) {
	if t.ctlActive {
		if !t.controls.keep(phase, id, track, cat, args) {
			t.dropped.Inc()
			return
		}
		args = t.controls.truncate(args)
	}
	t.start()
	t.seq++
	t.scratch = Event{
		Seq: t.seq, Time: tm, Phase: phase, ID: id,
		Cat: cat, Name: name, Track: track, Args: args,
	}
	sz := eventSize(&t.scratch)
	t.accepted++
	t.bytesEst += int64(sz)
	for _, s := range t.sinks {
		if err := s.Emit(&t.scratch, sz); err != nil {
			t.fail(err)
		}
	}
}

// Close finalizes every sink (streaming sinks append the registry's metric
// lines, flush, and atomically rename into place). Idempotent; returns the
// first error any sink reported over the tracer's lifetime. Callers that
// stream should defer Close so a failed run still lands its trace.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	if !t.closed {
		t.closed = true
		t.start() // an empty trace still gets header + metric lines
		for _, s := range t.sinks {
			if err := s.Close(t.reg); err != nil {
				t.fail(err)
			}
		}
	}
	return t.err
}

// RetainedBytes sums the sinks' current and high-water retained-memory
// estimates — the benchmark-facing view of trace memory (per-sink and
// therefore NOT part of the deterministic stream; see tracer_bytes for the
// stream-stable cumulative estimate).
func (t *Tracer) RetainedBytes() (cur, high int) {
	if t == nil {
		return 0, 0
	}
	for _, s := range t.sinks {
		c, h := s.RetainedBytes()
		cur += c
		high += h
	}
	return cur, high
}

// BytesEstimate returns the deterministic cumulative size estimate of all
// accepted events — the same number the tracer_bytes gauge exposes. Unlike
// RetainedBytes it is a function of the event stream alone, so it is stable
// across sinks and worker counts.
func (t *Tracer) BytesEstimate() int64 {
	if t == nil {
		return 0
	}
	return t.bytesEst
}

// Dropped returns the number of events removed by trace controls.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	return int(t.dropped.Value())
}

// Instant records a standalone event at the current sim time.
func (t *Tracer) Instant(track, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(t.now(), PhaseInstant, "", track, cat, name, args)
}

// InstantAt records a standalone event at an explicit time, for studies that
// run their own local clock (e.g. the straggler study's fixed-step grid).
func (t *Tracer) InstantAt(tm float64, track, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(tm, PhaseInstant, "", track, cat, name, args)
}

// Begin opens a synchronous span on a track. Sync spans must strictly nest
// per track; use BeginAsync for overlapping intervals.
func (t *Tracer) Begin(track, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(t.now(), PhaseBegin, "", track, cat, name, args)
}

// End closes the innermost open synchronous span with this name on the track.
func (t *Tracer) End(track, cat, name string) {
	if t == nil {
		return
	}
	t.emit(t.now(), PhaseEnd, "", track, cat, name, nil)
}

// BeginAsync opens an async span; id pairs it with its EndAsync. Async spans
// may overlap freely on a track (a server hosting several placements).
func (t *Tracer) BeginAsync(id, track, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(t.now(), PhaseAsyncBegin, id, track, cat, name, args)
}

// EndAsync closes the async span opened under id.
func (t *Tracer) EndAsync(id, track, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(t.now(), PhaseAsyncEnd, id, track, cat, name, args)
}

// Counter records sampled numeric values on a track; Chrome renders counter
// events as stacked area charts.
func (t *Tracer) Counter(track, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(t.now(), PhaseCounter, "", track, cat, name, args)
}

// Len returns the number of accepted events (0 for a nil tracer). Identical
// across sink configurations: what the stream carried, not what a sink
// retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return int(t.accepted)
}

// Events returns the recorded events in emission order, when a BufferSink is
// attached (nil otherwise — a stream-only tracer retains nothing to return).
// The slice is the sink's backing store; callers must not mutate it.
func (t *Tracer) Events() []Event {
	if t == nil || t.buffer == nil {
		return nil
	}
	return t.buffer.Events()
}

// Tracks returns every track name in order of first appearance (BufferSink
// required). Servers and workloads each get their own track, which is what
// gives the Chrome export one row per server and one per workload.
func (t *Tracer) Tracks() []string {
	events := t.Events()
	if events == nil {
		return nil
	}
	seen := make(map[string]bool, 16)
	var out []string
	for i := range events {
		tr := events[i].Track
		if !seen[tr] {
			seen[tr] = true
			out = append(out, tr)
		}
	}
	return out
}

// EventCountsByName returns (name, count) pairs sorted by name, for summary
// reporting (BufferSink required).
func (t *Tracer) EventCountsByName() (names []string, counts []int) {
	events := t.Events()
	if events == nil {
		return nil, nil
	}
	m := make(map[string]int, 32)
	for i := range events {
		m[events[i].Name]++
	}
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	counts = make([]int, len(names))
	for i, name := range names {
		counts[i] = m[name]
	}
	return names, counts
}

// eventSize is the deterministic per-event size estimate: a pure function of
// the event fields (string lengths, payload shapes), never of allocator or
// encoder state, so cumulative totals are byte-identical across runs, worker
// counts, and sink configurations. It approximates in-memory retained cost;
// encoded JSONL is the same order of magnitude.
func eventSize(ev *Event) int {
	n := 64 + len(ev.ID) + len(ev.Cat) + len(ev.Name) + len(ev.Track)
	for i := range ev.Args {
		n += 16 + len(ev.Args[i].Key) + argSize(ev.Args[i].Val)
	}
	return n
}

// argSize estimates one payload value deterministically; unknown scalar
// types cost their interface word.
func argSize(v any) int {
	switch x := v.(type) {
	case string:
		return 16 + len(x)
	case []string:
		n := 24
		for _, s := range x {
			n += 16 + len(s)
		}
		return n
	case ScheduleDecision:
		return schedDecisionSize(&x)
	case *ScheduleDecision:
		return schedDecisionSize(x)
	case AdmitDecision:
		return admitDecisionSize(&x)
	case *AdmitDecision:
		return admitDecisionSize(x)
	case AdjustDecision:
		return adjustDecisionSize(&x)
	case *AdjustDecision:
		return adjustDecisionSize(x)
	default:
		return 16
	}
}

func schedDecisionSize(d *ScheduleDecision) int {
	n := 96 + len(d.Workload) + len(d.Outcome)
	for i := range d.Candidates {
		n += 96 + len(d.Candidates[i].Platform)
	}
	n += 48 * len(d.Picks)
	for _, e := range d.Evictions {
		n += 16 + len(e)
	}
	return n
}

func admitDecisionSize(d *AdmitDecision) int {
	return 80 + len(d.Workload) + len(d.Class) + 8*(len(d.Tol)+len(d.Caused))
}

func adjustDecisionSize(d *AdjustDecision) int {
	n := 48 + len(d.Workload)
	for _, a := range d.Actions {
		n += 16 + len(a)
	}
	return n
}
