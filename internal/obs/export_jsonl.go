package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// The JSONL export is the canonical machine-readable log: one JSON object per
// line — a header line first (the format version and the trace controls the
// run recorded under), then events in sequence order, then one line per
// registered metrics container. Field order is fixed by DTO struct
// declaration order and Args marshal as an object in emission order, so the
// file is byte-identical across runs and worker counts. The buffered
// WriteJSONL and the incremental StreamSink share the per-line encoders
// below, which is what makes a streamed file byte-identical to a buffered
// export of the same run. cmd/quasar-trace reconstructs runs from this format
// alone.

// argsObject marshals an ordered Arg slice as a JSON object, preserving the
// emission-site key order.
type argsObject []Arg

// MarshalJSON implements json.Marshaler.
func (a argsObject) MarshalJSON() ([]byte, error) {
	if len(a) == 0 {
		return []byte("{}"), nil
	}
	out := []byte{'{'}
	for i, kv := range a {
		if i > 0 {
			out = append(out, ',')
		}
		k, err := json.Marshal(kv.Key)
		if err != nil {
			return nil, err
		}
		val := kv.Val
		// JSON has no literal for non-finite floats; a crashed server's
		// infinite p99 still has to export, so render them as strings.
		if f, ok := val.(float64); ok && (math.IsInf(f, 0) || math.IsNaN(f)) {
			val = fmt.Sprintf("%g", f)
		}
		v, err := json.Marshal(val)
		if err != nil {
			return nil, fmt.Errorf("obs: arg %q: %w", kv.Key, err)
		}
		out = append(out, k...)
		out = append(out, ':')
		out = append(out, v...)
	}
	return append(out, '}'), nil
}

// jsonlEvent is the wire shape of one event line.
type jsonlEvent struct {
	Seq   uint64     `json:"seq"`
	T     float64    `json:"t"`
	Ph    string     `json:"ph"`
	ID    string     `json:"id,omitempty"`
	Cat   string     `json:"cat"`
	Name  string     `json:"name"`
	Track string     `json:"track"`
	Args  argsObject `json:"args"`
}

// jsonlMetric is the wire shape of one trailing metric line.
type jsonlMetric struct {
	Metric string `json:"metric"`
	Kind   string `json:"kind"`
	Help   string `json:"help,omitempty"`
	Value  any    `json:"value"`
}

// encodeEventLine writes one event line; the single encoder both WriteJSONL
// and StreamSink use, so their bytes cannot diverge.
func encodeEventLine(enc *json.Encoder, ev *Event) error {
	return enc.Encode(jsonlEvent{
		Seq: ev.Seq, T: ev.Time, Ph: string(ev.Phase), ID: ev.ID,
		Cat: ev.Cat, Name: ev.Name, Track: ev.Track, Args: argsObject(ev.Args),
	})
}

// writeRegistryLines appends the registry's metric lines in registration
// order (shared by WriteJSONL and StreamSink.Close).
func writeRegistryLines(enc *json.Encoder, reg *Registry) error {
	if reg == nil {
		return nil
	}
	for i := range reg.entries {
		e := &reg.entries[i]
		// Labeled entries carry the label set in the metric name; unlabeled
		// ones keep the bare name, so pre-label traces are byte-unchanged.
		m := jsonlMetric{Metric: e.key(), Help: e.help}
		switch e.kind {
		case kindCounter:
			m.Kind, m.Value = "counter", e.counter.Value()
		case kindGauge:
			m.Kind, m.Value = "gauge", e.gauge()
		case kindSeries:
			m.Kind, m.Value = "series", e.series
		case kindDistribution:
			m.Kind, m.Value = "distribution", e.dist
		case kindHistogram:
			m.Kind, m.Value = "histogram", e.hist
		case kindHeatmap:
			m.Kind, m.Value = "heatmap", e.heat
		}
		if err := enc.Encode(m); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL writes the full trace — header, events, then registry metrics —
// to w from a buffered tracer. Byte-identical to what a StreamSink produced
// incrementally for the same run.
func WriteJSONL(w io.Writer, t *Tracer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	h := t.Header()
	if err := enc.Encode(&h); err != nil {
		return err
	}
	events := t.Events()
	for i := range events {
		if err := encodeEventLine(enc, &events[i]); err != nil {
			return err
		}
	}
	if err := writeRegistryLines(enc, t.Registry()); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteEventsJSONL writes an explicit event window as JSONL — the optional
// header line first, then one line per event with the events' original
// sequence numbers — using the same per-line encoder as the full exporters.
// This is the flight-recorder dump format: a RingSink's retained window
// serialized mid-run, without the trailing registry lines a finalized trace
// carries.
func WriteEventsJSONL(w io.Writer, h *Header, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if h != nil {
		if err := enc.Encode(h); err != nil {
			return err
		}
	}
	for i := range events {
		if err := encodeEventLine(enc, &events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// RawEvent is the decoded form of one JSONL event line, with the payload left
// raw for callers to project into typed decision structs.
type RawEvent struct {
	Seq   uint64          `json:"seq"`
	T     float64         `json:"t"`
	Ph    string          `json:"ph"`
	ID    string          `json:"id"`
	Cat   string          `json:"cat"`
	Name  string          `json:"name"`
	Track string          `json:"track"`
	Args  json.RawMessage `json:"args"`
}

// RawMetric is the decoded form of one trailing metric line, with the value
// left raw for callers to project into the container shape Kind names.
type RawMetric struct {
	Name  string          `json:"metric"`
	Kind  string          `json:"kind"`
	Help  string          `json:"help"`
	Value json.RawMessage `json:"value"`
}

// StreamJSONL scans a JSONL trace incrementally, invoking fn for each event
// line without ever holding more than one line in memory — how quasar-trace
// summarizes multi-gigabyte traces. The returned header is the parsed first
// line when present (headerless pre-v2 traces return nil). Metric lines are
// skipped. fn returning an error aborts the scan with that error.
func StreamJSONL(r io.Reader, fn func(ev *RawEvent) error) (*Header, error) {
	return ScanJSONL(r, fn, nil)
}

// ScanJSONL is StreamJSONL with the trailing metric lines also delivered,
// to onMetric (skipped when nil). Either callback returning an error aborts
// the scan with that error.
func ScanJSONL(r io.Reader, onEvent func(ev *RawEvent) error, onMetric func(m *RawMetric) error) (*Header, error) {
	var header *Header
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line, seen := 0, 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		seen++
		var ev RawEvent
		if err := json.Unmarshal(b, &ev); err != nil {
			return header, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		if ev.Seq == 0 {
			if seen == 1 {
				var h Header
				if json.Unmarshal(b, &h) == nil && h.Trace == headerMagic {
					header = &h
					continue
				}
			}
			if onMetric != nil {
				var m RawMetric
				if err := json.Unmarshal(b, &m); err != nil {
					return header, fmt.Errorf("obs: jsonl line %d: %w", line, err)
				}
				if m.Name != "" {
					if err := onMetric(&m); err != nil {
						return header, err
					}
				}
			}
			continue // header or metric line
		}
		if err := onEvent(&ev); err != nil {
			return header, err
		}
	}
	if err := sc.Err(); err != nil {
		return header, err
	}
	return header, nil
}

// ReadHeader parses just the leading header line of a JSONL trace (nil for a
// headerless trace).
func ReadHeader(r io.Reader) (*Header, error) {
	h, err := StreamJSONL(io.LimitReader(r, 1<<20), func(*RawEvent) error { return errStopScan })
	if err == errStopScan {
		err = nil
	}
	return h, err
}

// errStopScan is ReadHeader's internal early-exit sentinel.
var errStopScan = fmt.Errorf("obs: stop scan")

// ReadJSONL parses a whole JSONL trace into memory, returning events and
// skipping the header and trailing metric lines (lines without a "seq"
// field). Use StreamJSONL when the trace may not fit.
func ReadJSONL(r io.Reader) ([]RawEvent, error) {
	var out []RawEvent
	_, err := StreamJSONL(r, func(ev *RawEvent) error {
		out = append(out, *ev)
		return nil
	})
	return out, err
}
