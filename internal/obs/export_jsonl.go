package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// The JSONL export is the canonical machine-readable log: one JSON object per
// line, events first (in sequence order), then one line per registered
// metrics container. Field order is fixed by DTO struct declaration order and
// Args marshal as an object in emission order, so the file is byte-identical
// across runs and worker counts. cmd/quasar-trace reconstructs runs from this
// format alone.

// argsObject marshals an ordered Arg slice as a JSON object, preserving the
// emission-site key order.
type argsObject []Arg

// MarshalJSON implements json.Marshaler.
func (a argsObject) MarshalJSON() ([]byte, error) {
	if len(a) == 0 {
		return []byte("{}"), nil
	}
	out := []byte{'{'}
	for i, kv := range a {
		if i > 0 {
			out = append(out, ',')
		}
		k, err := json.Marshal(kv.Key)
		if err != nil {
			return nil, err
		}
		val := kv.Val
		// JSON has no literal for non-finite floats; a crashed server's
		// infinite p99 still has to export, so render them as strings.
		if f, ok := val.(float64); ok && (math.IsInf(f, 0) || math.IsNaN(f)) {
			val = fmt.Sprintf("%g", f)
		}
		v, err := json.Marshal(val)
		if err != nil {
			return nil, fmt.Errorf("obs: arg %q: %w", kv.Key, err)
		}
		out = append(out, k...)
		out = append(out, ':')
		out = append(out, v...)
	}
	return append(out, '}'), nil
}

// jsonlEvent is the wire shape of one event line.
type jsonlEvent struct {
	Seq   uint64     `json:"seq"`
	T     float64    `json:"t"`
	Ph    string     `json:"ph"`
	ID    string     `json:"id,omitempty"`
	Cat   string     `json:"cat"`
	Name  string     `json:"name"`
	Track string     `json:"track"`
	Args  argsObject `json:"args"`
}

// jsonlMetric is the wire shape of one trailing metric line.
type jsonlMetric struct {
	Metric string `json:"metric"`
	Kind   string `json:"kind"`
	Help   string `json:"help,omitempty"`
	Value  any    `json:"value"`
}

// WriteJSONL writes the full trace — events, then registry metrics — to w.
func WriteJSONL(w io.Writer, t *Tracer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range t.Events() {
		ev := &t.Events()[i]
		if err := enc.Encode(jsonlEvent{
			Seq: ev.Seq, T: ev.Time, Ph: string(ev.Phase), ID: ev.ID,
			Cat: ev.Cat, Name: ev.Name, Track: ev.Track, Args: argsObject(ev.Args),
		}); err != nil {
			return err
		}
	}
	if reg := t.Registry(); reg != nil {
		for i := range reg.entries {
			e := &reg.entries[i]
			m := jsonlMetric{Metric: e.name, Help: e.help}
			switch e.kind {
			case kindCounter:
				m.Kind, m.Value = "counter", e.counter.Value()
			case kindGauge:
				m.Kind, m.Value = "gauge", e.gauge()
			case kindSeries:
				m.Kind, m.Value = "series", e.series
			case kindDistribution:
				m.Kind, m.Value = "distribution", e.dist
			case kindHistogram:
				m.Kind, m.Value = "histogram", e.hist
			case kindHeatmap:
				m.Kind, m.Value = "heatmap", e.heat
			}
			if err := enc.Encode(m); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// RawEvent is the decoded form of one JSONL event line, with the payload left
// raw for callers to project into typed decision structs.
type RawEvent struct {
	Seq   uint64          `json:"seq"`
	T     float64         `json:"t"`
	Ph    string          `json:"ph"`
	ID    string          `json:"id"`
	Cat   string          `json:"cat"`
	Name  string          `json:"name"`
	Track string          `json:"track"`
	Args  json.RawMessage `json:"args"`
}

// ReadJSONL parses a JSONL trace, returning events and skipping the trailing
// metric lines (lines without a "seq" field).
func ReadJSONL(r io.Reader) ([]RawEvent, error) {
	var out []RawEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev RawEvent
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		if ev.Seq == 0 {
			continue // metric line
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
