package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"quasar/internal/metrics"
)

// buildSampleTrace assembles a small trace exercising every event phase and
// every registry kind.
func buildSampleTrace() *Tracer {
	now := 0.0
	tr := New(func() float64 { return now })
	tr.Instant("manager", "sched", "admit", Arg{Key: "workload", Val: "w0"})
	tr.BeginAsync("w0@2", "server/2", "place", "w0",
		Arg{Key: "cores", Val: 4}, Arg{Key: "quality", Val: 0.75})
	now = 10
	tr.Begin("manager", "sched", "decision")
	now = 12.5
	tr.End("manager", "sched", "decision")
	tr.EndAsync("w0@2", "server/2", "place", "w0")
	tr.Counter("cluster", "util", "servers_busy", Arg{Key: "busy", Val: 3})
	tr.Instant("workload/w0", "qos", "met")

	reg := tr.Registry()
	reg.Counter("decisions_total", "scheduler decisions").Add(2)
	reg.Gauge("queue_len", "queue length", func() float64 { return 1 })
	s := &metrics.Series{Name: "util"}
	s.Add(0, 0.5)
	s.Add(10, 0.7)
	reg.Series("cluster_util", "cluster utilization", s)
	d := &metrics.Distribution{}
	d.Add(1)
	d.Add(2)
	d.Add(3)
	reg.Distribution("latency", "placement latency", d)
	h := metrics.NewHeatmap(2)
	h.Sample(0, []float64{0.1, 0.2})
	reg.Heatmap("cpu_heat", "per-server cpu", h)
	return tr
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := buildSampleTrace()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != tr.Len() {
		t.Fatalf("read %d events, wrote %d", len(evs), tr.Len())
	}
	for i, ev := range evs {
		want := tr.Events()[i]
		if ev.Seq != want.Seq || ev.Name != want.Name || ev.Track != want.Track ||
			ev.Ph != string(want.Phase) || ev.T != want.Time { //lint:allow(floatcmp) exact round-trip
			t.Fatalf("event %d mismatch: %+v vs %+v", i, ev, want)
		}
	}
	// Args decode with preserved values.
	var args map[string]any
	if err := json.Unmarshal(evs[1].Args, &args); err != nil {
		t.Fatal(err)
	}
	if args["cores"].(float64) != 4 || args["quality"].(float64) != 0.75 { //lint:allow(floatcmp) exact round-trip
		t.Fatalf("async place args %v", args)
	}
	// Metric lines decode back into their containers.
	var gotSeries *metrics.Series
	for _, ln := range strings.Split(buf.String(), "\n") {
		if !strings.Contains(ln, `"metric":"cluster_util"`) {
			continue
		}
		var m struct {
			Value metrics.Series `json:"value"`
		}
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatal(err)
		}
		gotSeries = &m.Value
	}
	if gotSeries == nil || gotSeries.Len() != 2 || gotSeries.Vals[1] != 0.7 { //lint:allow(floatcmp) exact round-trip
		t.Fatalf("series metric line did not round-trip: %+v", gotSeries)
	}
}

func TestChromeTraceIsValidAndOrdered(t *testing.T) {
	tr := buildSampleTrace()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			ID   string         `json:"id"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	// Metadata first: process_name, then thread_name/thread_sort_index pairs
	// for each track in display order.
	if doc.TraceEvents[0].Name != "process_name" {
		t.Fatalf("first record %q", doc.TraceEvents[0].Name)
	}
	var threadNames []string
	sawAsync := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "thread_name" {
			threadNames = append(threadNames, ev.Args["name"].(string))
		}
		if ev.Ph == "b" {
			sawAsync = true
			if ev.ID == "" {
				t.Fatal("async begin without id")
			}
			if ev.Ts != 0 {
				t.Fatalf("async begin ts %v", ev.Ts)
			}
		}
	}
	if !sawAsync {
		t.Fatal("no async placement span in chrome trace")
	}
	want := []string{"cluster", "manager", "server/2", "workload/w0"}
	if len(threadNames) != len(want) {
		t.Fatalf("tracks %v", threadNames)
	}
	for i := range want {
		if threadNames[i] != want[i] {
			t.Fatalf("track order %v, want %v", threadNames, want)
		}
	}
}

func TestTrackOrderNumericServers(t *testing.T) {
	got := trackOrder([]string{"server/10", "workload/b", "server/2", "cluster", "manager", "workload/a"})
	want := []string{"cluster", "manager", "server/2", "server/10", "workload/a", "workload/b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestPromSnapshotFormat(t *testing.T) {
	tr := buildSampleTrace()
	var buf bytes.Buffer
	if err := WritePromSnapshot(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE obs_events_total counter",
		"obs_events_total 7",
		"# TYPE decisions_total counter",
		"decisions_total 2",
		"# TYPE queue_len gauge",
		"queue_len 1",
		"cluster_util_last 0.7",
		"cluster_util_points 2",
		"# TYPE latency summary",
		`latency{quantile="0.50"}`,
		"latency_count 3",
		"cpu_heat_rows 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom snapshot missing %q:\n%s", want, out)
		}
	}
}

func TestExportersAreByteStable(t *testing.T) {
	render := func() (string, string, string) {
		tr := buildSampleTrace()
		var a, b, c bytes.Buffer
		if err := WriteJSONL(&a, tr); err != nil {
			t.Fatal(err)
		}
		if err := WriteChromeTrace(&b, tr); err != nil {
			t.Fatal(err)
		}
		if err := WritePromSnapshot(&c, tr); err != nil {
			t.Fatal(err)
		}
		return a.String(), b.String(), c.String()
	}
	j1, c1, p1 := render()
	for i := 0; i < 3; i++ {
		j2, c2, p2 := render()
		if j1 != j2 || c1 != c2 || p1 != p2 {
			t.Fatal("exporter output varies across identical runs")
		}
	}
}
