package obs

import (
	"sort"
)

// Trace controls are the deterministic volume knobs of the pipeline: what a
// run records is a pure function of the event fields and the configured
// controls, never of wall-clock time, RNG draws, or worker count. A filtered
// run therefore still satisfies the byte-identity contract — any two runs of
// the same scenario with the same controls produce the same bytes — and the
// controls themselves are recorded in the trace header so a reader knows
// exactly what was dropped and why.

// Level orders event verbosity. The zero value (LevelUnset) means "no
// filtering configured" and records everything, so a zero Controls behaves
// exactly like the pre-pipeline tracer.
type Level int

const (
	// LevelUnset is the zero value: treated as LevelDebug (record all).
	LevelUnset Level = iota
	// LevelOff drops every event of the category.
	LevelOff
	// LevelLifecycle keeps spans and plain instants (submits, placements,
	// QoS edges) but drops decision payloads and counters.
	LevelLifecycle
	// LevelDecision additionally keeps full decision-explainability payloads
	// (candidate rankings, admit/adjust records).
	LevelDecision
	// LevelDebug keeps everything, counters included.
	LevelDebug
)

// levelNames maps levels to their header spelling.
var levelNames = map[Level]string{
	LevelUnset: "debug", LevelOff: "off", LevelLifecycle: "lifecycle",
	LevelDecision: "decision", LevelDebug: "debug",
}

// ParseLevel resolves a header/flag spelling to a Level.
func ParseLevel(s string) (Level, bool) {
	switch s {
	case "off":
		return LevelOff, true
	case "lifecycle":
		return LevelLifecycle, true
	case "decision":
		return LevelDecision, true
	case "debug", "":
		return LevelDebug, true
	}
	return LevelUnset, false
}

func (l Level) String() string { return levelNames[l] }

// Controls configures deterministic trace reduction. The zero value records
// everything.
type Controls struct {
	// Default is the level applied to categories without an explicit entry
	// in Category. LevelUnset records everything.
	Default Level
	// Category overrides the level per event category ("sched", "runtime",
	// "slo", ...).
	Category map[string]Level
	// SampleWorkloads keeps this fraction of workloads; 0 or >= 1 keeps all.
	// Selection is by FNV-1a hash of the workload ID — RNG-free, so the kept
	// subset is identical for every run, seed, and worker count. Events that
	// carry no workload identity (cluster counters, server fault events) are
	// always kept.
	SampleWorkloads float64
	// TopK truncates ScheduleDecision candidate rankings to the K best
	// (picked servers are always retained); 0 keeps the full ranking. The
	// dropped count is recorded on the decision payload.
	TopK int
}

// active reports whether any control deviates from record-everything.
func (c *Controls) active() bool {
	if c.Default != LevelUnset && c.Default != LevelDebug {
		return true
	}
	for _, l := range c.Category {
		if l != LevelUnset && l != LevelDebug {
			return true
		}
	}
	return (c.SampleWorkloads > 0 && c.SampleWorkloads < 1) || c.TopK > 0
}

// levelFor resolves the effective level of a category.
func (c *Controls) levelFor(cat string) Level {
	if l, ok := c.Category[cat]; ok && l != LevelUnset {
		return l
	}
	if c.Default != LevelUnset {
		return c.Default
	}
	return LevelDebug
}

// eventLevel assigns the intrinsic verbosity of an event: counters are debug
// detail, instants carrying a structured decision payload are decision
// detail, everything else is lifecycle.
func eventLevel(phase byte, args []Arg) Level {
	if phase == PhaseCounter {
		return LevelDebug
	}
	for i := range args {
		switch args[i].Val.(type) {
		case ScheduleDecision, AdmitDecision, AdjustDecision,
			*ScheduleDecision, *AdmitDecision, *AdjustDecision:
			return LevelDecision
		}
	}
	return LevelLifecycle
}

// eventWorkload extracts the workload identity an event is about, or "" when
// it has none: the workload track suffix, the async placement-span pair ID
// ("workload@server"), or the subject of a decision payload.
func eventWorkload(phase byte, id, track string, args []Arg) string {
	const wprefix = "workload/"
	if len(track) > len(wprefix) && track[:len(wprefix)] == wprefix {
		return track[len(wprefix):]
	}
	if (phase == PhaseAsyncBegin || phase == PhaseAsyncEnd) && id != "" {
		for i := 0; i < len(id); i++ {
			if id[i] == '@' {
				return id[:i]
			}
		}
	}
	for i := range args {
		switch d := args[i].Val.(type) {
		case ScheduleDecision:
			return d.Workload
		case AdmitDecision:
			return d.Workload
		case AdjustDecision:
			return d.Workload
		}
	}
	return ""
}

// SampleKeep reports whether hash-based sampling keeps a workload at the
// given fraction. It is exported so tests and readers can reproduce the kept
// subset from the header alone.
func SampleKeep(workloadID string, frac float64) bool {
	if frac <= 0 || frac >= 1 {
		return true
	}
	// FNV-1a, mapped to [0,1) with 53-bit precision: pure integer hashing,
	// so the verdict is identical across platforms and runs.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(workloadID); i++ {
		h ^= uint64(workloadID[i])
		h *= prime64
	}
	return float64(h>>11)/float64(1<<53) < frac
}

// keep applies level filtering and workload sampling to one prospective
// event.
func (c *Controls) keep(phase byte, id, track, cat string, args []Arg) bool {
	lvl := c.levelFor(cat)
	if lvl == LevelOff || eventLevel(phase, args) > lvl {
		return false
	}
	if c.SampleWorkloads > 0 && c.SampleWorkloads < 1 {
		if w := eventWorkload(phase, id, track, args); w != "" && !SampleKeep(w, c.SampleWorkloads) {
			return false
		}
	}
	return true
}

// truncate applies TopK candidate truncation, returning args unchanged when
// nothing applies. Picked candidates beyond the cut survive so placement
// explanations still resolve every chosen server.
//
//quasar:cold runs only for decision-level events when TopK is configured
func (c *Controls) truncate(args []Arg) []Arg {
	if c.TopK <= 0 {
		return args
	}
	for i := range args {
		d, ok := args[i].Val.(ScheduleDecision)
		if !ok || len(d.Candidates) <= c.TopK {
			continue
		}
		kept := make([]Candidate, 0, c.TopK+len(d.Picks))
		kept = append(kept, d.Candidates[:c.TopK]...)
		for _, cand := range d.Candidates[c.TopK:] {
			if cand.Picked {
				kept = append(kept, cand)
			}
		}
		// Accumulate rather than assign: an emitter that pre-trimmed against
		// the same TopK (sched.emitDecision) has already recorded its drops.
		d.CandidatesDropped += len(d.Candidates) - len(kept)
		d.Candidates = kept
		out := make([]Arg, len(args))
		copy(out, args)
		out[i] = Arg{Key: args[i].Key, Val: d}
		return out
	}
	return args
}

// categoryLevel is one per-category entry of the trace header, emitted in
// sorted-category order so the header is byte-stable.
type categoryLevel struct {
	Cat   string `json:"cat"`
	Level string `json:"level"`
}

// headerMagic identifies a Quasar trace header line.
const headerMagic = "quasar-obs"

// Header is the first line of a JSONL trace: the format version and the
// controls the run recorded under, so a reader can report what was dropped.
// It carries no "seq" field, which is how pre-header readers (and the metric
// line skip in ReadJSONL) pass over it.
type Header struct {
	Trace   string          `json:"trace"`
	Version int             `json:"version"`
	Level   string          `json:"level,omitempty"`
	Levels  []categoryLevel `json:"levels,omitempty"`
	Sample  float64         `json:"sample_workloads,omitempty"`
	TopK    int             `json:"top_k,omitempty"`
	Sampled bool            `json:"sampled,omitempty"`
}

// defaultHeader is the record-everything header a standalone sink writes when
// it finalizes without ever having seen a tracer's Start.
func defaultHeader() *Header {
	h := (&Controls{}).header()
	return &h
}

// header renders the controls into their wire form.
func (c *Controls) header() Header {
	h := Header{Trace: headerMagic, Version: 2}
	if c.Default != LevelUnset && c.Default != LevelDebug {
		h.Level = c.Default.String()
	}
	cats := make([]string, 0, len(c.Category))
	for cat, l := range c.Category {
		if l != LevelUnset {
			cats = append(cats, cat)
		}
	}
	sort.Strings(cats)
	for _, cat := range cats {
		h.Levels = append(h.Levels, categoryLevel{Cat: cat, Level: c.Category[cat].String()})
	}
	if c.SampleWorkloads > 0 && c.SampleWorkloads < 1 {
		h.Sample = c.SampleWorkloads
		h.Sampled = true
	}
	h.TopK = c.TopK
	return h
}
