package obs

import (
	"bytes"
	"runtime"
	"strconv"
	"testing"

	"quasar/internal/par"
)

func TestNilTracerIsSafeAndFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Instant("a", "b", "c", Arg{Key: "k", Val: 1})
	tr.Begin("a", "b", "c")
	tr.End("a", "b", "c")
	tr.BeginAsync("id", "a", "b", "c")
	tr.EndAsync("id", "a", "b", "c")
	tr.Counter("a", "b", "c")
	tr.InstantAt(5, "a", "b", "c")
	tr.Merge(tr.Shards(4))
	if tr.Len() != 0 || tr.Events() != nil || tr.Tracks() != nil {
		t.Fatal("nil tracer accumulated state")
	}
	if reg := tr.Registry(); reg != nil {
		t.Fatal("nil tracer returned a registry")
	}
	// Nil registry and counter are no-ops too.
	var reg *Registry
	c := reg.Counter("x", "")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	reg.Gauge("g", "", func() float64 { return 1 })
	if reg.Len() != 0 {
		t.Fatal("nil registry accumulated")
	}
}

func TestSequenceAndClock(t *testing.T) {
	now := 0.0
	tr := New(func() float64 { return now })
	tr.Instant("manager", "test", "first")
	now = 2.5
	tr.Begin("manager", "test", "span")
	now = 4.0
	tr.End("manager", "test", "span")
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if evs[0].Time != 0 || evs[1].Time != 2.5 || evs[2].Time != 4.0 { //lint:allow(floatcmp) exact injected times
		t.Fatalf("times %v %v %v", evs[0].Time, evs[1].Time, evs[2].Time)
	}
	if got := tr.Tracks(); len(got) != 1 || got[0] != "manager" {
		t.Fatalf("tracks %v", got)
	}
}

// TestShardMergeDeterministic runs a fan-out that traces through shards for
// several worker counts and requires byte-identical JSONL output.
func TestShardMergeDeterministic(t *testing.T) {
	run := func(workers int) []byte {
		tr := New(nil)
		const n = 40
		shards := tr.Shards(n)
		par.ParFor(workers, n, func(i int) {
			sh := shards[i]
			sh.Instant("workload/w"+strconv.Itoa(i), "test", "probe",
				Arg{Key: "i", Val: i})
			if i%3 == 0 {
				sh.Instant("workload/w"+strconv.Itoa(i), "test", "extra")
			}
		})
		tr.Merge(shards)
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := run(1)
	for _, w := range []int{2, 4, runtime.NumCPU()} {
		if got := run(w); !bytes.Equal(want, got) {
			t.Fatalf("workers=%d diverged:\n%.400s\nvs\n%.400s", w, want, got)
		}
	}
}

func TestRegistryOrderAndRedefinition(t *testing.T) {
	tr := New(nil)
	reg := tr.Registry()
	base := reg.Len() // the tracer self-meters (tracer_events/bytes/dropped)
	c := reg.Counter("decisions_total", "scheduling decisions")
	reg.Gauge("queue_len", "admission queue length", func() float64 { return 7 })
	c.Inc()
	c.Inc()
	if got := reg.Counter("decisions_total", "dup"); got != c {
		t.Fatal("re-registering a counter must return the original")
	}
	if c.Value() != 2 {
		t.Fatalf("counter value %v", c.Value())
	}
	// Re-registering a gauge replaces in place without reordering.
	reg.Gauge("queue_len", "replaced", func() float64 { return 9 })
	if reg.Len() != base+2 {
		t.Fatalf("registry len %d, want %d", reg.Len(), base+2)
	}
	var buf bytes.Buffer
	if err := WritePromSnapshot(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	di := bytes.Index(buf.Bytes(), []byte("decisions_total"))
	qi := bytes.Index(buf.Bytes(), []byte("queue_len"))
	if di < 0 || qi < 0 || di > qi {
		t.Fatalf("registration order not preserved in snapshot:\n%s", out)
	}
}
