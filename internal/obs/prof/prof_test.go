package prof

import (
	"strings"
	"testing"
	"time"
)

func TestNilProfilerIsSafe(t *testing.T) {
	var p *Profiler
	if p.Enabled() {
		t.Fatal("nil profiler reports enabled")
	}
	t0 := p.Begin()
	p.End(SubSched, t0) // must not panic
	if s := p.Snapshot(); s.WallSeconds != 0 || len(s.Subsystems) != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	if p.Seconds(SubSched) != 0 {
		t.Fatal("nil Seconds != 0")
	}
}

func TestExclusiveAttribution(t *testing.T) {
	p := New()
	outer := p.Begin()
	time.Sleep(2 * time.Millisecond)
	inner := p.Begin()
	time.Sleep(4 * time.Millisecond)
	p.End(SubSched, inner)
	time.Sleep(1 * time.Millisecond)
	p.End(SubRuntime, outer)

	sched := p.Seconds(SubSched)
	rt := p.Seconds(SubRuntime)
	if sched < 0.003 {
		t.Fatalf("inner section credited %.4fs, slept 4ms", sched)
	}
	// The outer section is charged only its self time: ~3ms of sleep, never
	// the nested 4ms. A generous ceiling still catches double-counting.
	if rt <= 0 || rt >= sched+0.003 {
		t.Fatalf("outer self time %.4fs vs inner %.4fs: nested span leaked into parent", rt, sched)
	}

	snap := p.Snapshot()
	var attributed float64
	for _, row := range snap.Subsystems {
		attributed += row.Seconds
	}
	if attributed > snap.WallSeconds {
		t.Fatalf("attributed %.4fs exceeds wall %.4fs", attributed, snap.WallSeconds)
	}
}

func TestMismatchedEndDropped(t *testing.T) {
	p := New()
	t0 := p.Begin()
	p.End(SubSLO, t0-1) // wrong token: dropped, no attribution
	if p.Seconds(SubSLO) != 0 {
		t.Fatalf("mismatched End attributed %.9fs", p.Seconds(SubSLO))
	}
	// The frame was popped; a stray End on the now-empty stack is a no-op.
	p.End(SubSLO, t0)
	if p.Seconds(SubSLO) != 0 {
		t.Fatal("End on empty stack attributed time")
	}
}

func TestSnapshotOrderingAndCalls(t *testing.T) {
	p := New()
	for i := 0; i < 3; i++ {
		t0 := p.Begin()
		time.Sleep(time.Millisecond)
		p.End(SubChaos, t0)
	}
	t0 := p.Begin()
	time.Sleep(5 * time.Millisecond)
	p.End(SubClassify, t0)

	snap := p.Snapshot()
	if len(snap.Subsystems) != 2 {
		t.Fatalf("snapshot has %d rows, want 2 (zero rows omitted)", len(snap.Subsystems))
	}
	if snap.Subsystems[0].Name != "classify" {
		t.Fatalf("rows not sorted by time: first is %q", snap.Subsystems[0].Name)
	}
	for _, row := range snap.Subsystems {
		if row.Name == "chaos" && row.Calls != 3 {
			t.Fatalf("chaos calls = %d, want 3", row.Calls)
		}
		if row.Frac < 0 || row.Frac > 1 {
			t.Fatalf("row %q frac %.3f out of [0,1]", row.Name, row.Frac)
		}
	}
}

func TestWriteReport(t *testing.T) {
	p := New()
	t0 := p.Begin()
	time.Sleep(time.Millisecond)
	p.End(SubSimStep, t0)
	var b strings.Builder
	if err := p.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "engine self-profile") || !strings.Contains(out, "sim_step") {
		t.Fatalf("report missing expected rows:\n%s", out)
	}
}

func TestSubsystemString(t *testing.T) {
	if SubTrace.String() != "trace_export" {
		t.Fatalf("SubTrace = %q", SubTrace)
	}
	if got := Subsystem(99).String(); got != "subsystem(99)" {
		t.Fatalf("out-of-range subsystem = %q", got)
	}
}
