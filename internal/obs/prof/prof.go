// Package prof is the engine self-profiler: wall-clock time attribution per
// subsystem (sim step, scheduling, classification, SLO tick, chaos injection,
// trace export), for answering "where does a run actually spend its time" at
// scale.
//
// It is deliberately OUTSIDE the determinism boundary. Everything the engine
// records — traces, metrics, decisions — is a pure function of scenario +
// seed, so wall-clock reads are banned there (the quasar-lint determinism
// analyzer enforces it). Profiling is the one legitimate consumer of real
// time, and it must never leak back in: a Profiler only accumulates durations
// into its own state and reports them through its own Snapshot/WriteReport
// paths, which no simulation output embeds. wallNow below is the package's
// single wall-clock read and is allowlisted by name in the analyzer; adding a
// second time.Now call anywhere under internal/obs fails lint.
//
// Cost contract. A nil *Profiler is the off state: Begin returns 0 and End
// returns immediately, so instrumented subsystems pay one pointer test when
// profiling is off. When on, the cost per section is two monotonic clock
// reads and two integer adds — cheap enough to leave in the tick loop.
package prof

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// wallNow is the profiler's only wall-clock read (monotonic nanoseconds).
// It is allowlisted in the determinism analyzer; route every time measurement
// through it.
func wallNow() int64 { return time.Since(base).Nanoseconds() }

// base anchors the monotonic clock; time.Since uses the monotonic reading,
// immune to wall-clock steps from NTP.
var base = time.Now()

// Subsystem identifies one attributed section of engine work.
type Subsystem int

const (
	// SubSimStep is the discrete-event core: pop, clock advance, event
	// recycling — the queue machinery around callback dispatch.
	SubSimStep Subsystem = iota
	// SubRuntime is the cluster runtime's per-tick sweep: task progress,
	// utilization sampling, heartbeat bookkeeping.
	SubRuntime
	// SubSched is sched.Scheduler.Schedule: candidate ranking and placement.
	SubSched
	// SubClassify is the classification engine: collaborative filtering and
	// signature lookups at admission and reclassification.
	SubClassify
	// SubSLO is the SLO engine tick: SLI evaluation, burn-rate windows,
	// health scoring.
	SubSLO
	// SubChaos is fault-plan injection.
	SubChaos
	// SubTrace is trace export: sink encoding and spill I/O.
	SubTrace
	numSubsystems
)

// subsystemNames are the report/JSON spellings, indexed by Subsystem.
var subsystemNames = [numSubsystems]string{
	"sim_step", "runtime_tick", "sched", "classify", "slo", "chaos", "trace_export",
}

// String returns the report spelling.
func (s Subsystem) String() string {
	if s < 0 || s >= numSubsystems {
		return fmt.Sprintf("subsystem(%d)", int(s))
	}
	return subsystemNames[s]
}

// frame is one open section on the attribution stack.
type frame struct {
	t0    int64 // wallNow at Begin
	child int64 // nanoseconds consumed by nested sections
}

// Profiler accumulates wall-clock self time per subsystem: sections nest
// (runtime tick → schedule → trace export), and each level is charged only
// for time not covered by an inner section, so the report's fractions sum to
// at most the wall time. Single-goroutine, like the engine it measures;
// parallel fan-outs attribute their parent's wall-clock span, which is what
// a capacity planner wants anyway.
type Profiler struct {
	start int64
	nanos [numSubsystems]int64
	calls [numSubsystems]int64
	stack []frame
}

// New returns a running profiler.
func New() *Profiler { return &Profiler{start: wallNow(), stack: make([]frame, 0, 16)} }

// Enabled reports whether the profiler records (false for nil).
func (p *Profiler) Enabled() bool { return p != nil }

// Begin opens a section, returning the token End needs. Nil-safe: a nil
// profiler returns 0 and its End discards it. Every Begin must be paired
// with exactly one End (use defer on multi-return paths).
func (p *Profiler) Begin() int64 {
	if p == nil {
		return 0
	}
	t0 := wallNow()
	p.stack = append(p.stack, frame{t0: t0})
	return t0
}

// End closes the innermost open section, attributing its self time (elapsed
// minus nested sections) to the subsystem and rolling the full span up into
// the parent's child time.
func (p *Profiler) End(s Subsystem, t0 int64) {
	if p == nil || len(p.stack) == 0 {
		return
	}
	top := p.stack[len(p.stack)-1]
	p.stack = p.stack[:len(p.stack)-1]
	if top.t0 != t0 { // mismatched Begin/End pair: drop rather than corrupt
		return
	}
	elapsed := wallNow() - t0
	p.nanos[s] += elapsed - top.child
	p.calls[s]++
	if n := len(p.stack); n > 0 {
		p.stack[n-1].child += elapsed
	}
}

// SubsystemStat is one row of a profiler snapshot.
type SubsystemStat struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Calls   int64   `json:"calls"`
	// Frac is Seconds over the profiler's total wall time.
	Frac float64 `json:"frac"`
}

// Snapshot is the JSON-exportable profiler state.
type Snapshot struct {
	WallSeconds float64 `json:"wall_seconds"`
	// Subsystems holds the attributed rows, descending by time, zero-time
	// rows omitted.
	Subsystems []SubsystemStat `json:"subsystems"`
	// OtherSeconds is wall time not attributed to any subsystem (setup,
	// report generation, uninstrumented work).
	OtherSeconds float64 `json:"other_seconds"`
}

// Snapshot captures the current attribution (zero value for nil).
func (p *Profiler) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	wall := float64(wallNow()-p.start) / 1e9
	snap := Snapshot{WallSeconds: wall}
	var attributed float64
	for s := Subsystem(0); s < numSubsystems; s++ {
		if p.calls[s] == 0 {
			continue
		}
		sec := float64(p.nanos[s]) / 1e9
		attributed += sec
		row := SubsystemStat{Name: s.String(), Seconds: sec, Calls: p.calls[s]}
		if wall > 0 {
			row.Frac = sec / wall
		}
		snap.Subsystems = append(snap.Subsystems, row)
	}
	sort.SliceStable(snap.Subsystems, func(i, j int) bool {
		return snap.Subsystems[i].Seconds > snap.Subsystems[j].Seconds
	})
	if other := wall - attributed; other > 0 {
		snap.OtherSeconds = other
	}
	return snap
}

// Seconds returns the attributed time of one subsystem (0 for nil).
func (p *Profiler) Seconds(s Subsystem) float64 {
	if p == nil {
		return 0
	}
	return float64(p.nanos[s]) / 1e9
}

// WriteReport renders the snapshot as an aligned text table.
func (p *Profiler) WriteReport(w io.Writer) error {
	snap := p.Snapshot()
	if _, err := fmt.Fprintf(w, "engine self-profile (wall %.3fs)\n", snap.WallSeconds); err != nil {
		return err
	}
	for _, row := range snap.Subsystems {
		if _, err := fmt.Fprintf(w, "  %-14s %10.3fs  %5.1f%%  %9d calls\n",
			row.Name, row.Seconds, row.Frac*100, row.Calls); err != nil {
			return err
		}
	}
	if snap.OtherSeconds > 0 {
		frac := 0.0
		if snap.WallSeconds > 0 {
			frac = snap.OtherSeconds / snap.WallSeconds
		}
		if _, err := fmt.Fprintf(w, "  %-14s %10.3fs  %5.1f%%\n", "(other)", snap.OtherSeconds, frac*100); err != nil {
			return err
		}
	}
	return nil
}
