package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The Prometheus export is a point-in-time text snapshot of the registry in
// the exposition format: # HELP / # TYPE headers followed by samples, walked
// in registration order. Series export their last value, mean, and point
// count; distributions export summary quantiles; heatmaps their overall
// mean. Wall-clock scrape loops do not exist in the simulation — the snapshot
// is taken once, at the sim time the caller chooses (normally end of run).

// promFloat renders a value the way Prometheus expects (NaN for empty
// distributions stays literal "NaN").
func promFloat(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promHelp escapes HELP text per the exposition format: backslash and
// newline must be escaped (a raw newline would terminate the comment line
// and corrupt the scrape).
func promHelp(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			_, _ = b.WriteString(`\\`)
		case '\n':
			_, _ = b.WriteString(`\n`)
		default:
			_, _ = b.WriteRune(r)
		}
	}
	return b.String()
}

// promLabelValue escapes a label value per the exposition format: backslash,
// double quote, and newline.
func promLabelValue(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			_, _ = b.WriteString(`\\`)
		case '"':
			_, _ = b.WriteString(`\"`)
		case '\n':
			_, _ = b.WriteString(`\n`)
		default:
			_, _ = b.WriteRune(r)
		}
	}
	return b.String()
}

// promLabel renders one {name="value"} label set with the value escaped.
func promLabel(name, value string) string {
	return fmt.Sprintf(`{%s="%s"}`, promName(name), promLabelValue(value))
}

// promName sanitizes a metric name to the [a-zA-Z_:][a-zA-Z0-9_:]* charset.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			_, _ = b.WriteRune(r)
		} else {
			_ = b.WriteByte('_')
		}
	}
	return b.String()
}

// promWriter renders registry entries in the exposition format, emitting one
// HELP/TYPE header per metric name so labeled entries sharing a name form a
// single sample group.
type promWriter struct {
	bw     *bufio.Writer
	headed map[string]bool
}

func newPromWriter(w io.Writer) *promWriter {
	return &promWriter{bw: bufio.NewWriter(w), headed: make(map[string]bool)}
}

func (p *promWriter) head(name, help, typ string) {
	if p.headed[name] {
		return
	}
	p.headed[name] = true
	if help != "" {
		_, _ = fmt.Fprintf(p.bw, "# HELP %s %s\n", name, promHelp(help))
	}
	_, _ = fmt.Fprintf(p.bw, "# TYPE %s %s\n", name, typ)
}

func (p *promWriter) sample(name, labels string, v float64) {
	_, _ = fmt.Fprintf(p.bw, "%s%s %s\n", name, labels, promFloat(v))
}

// labels composes the sample's label braces from the entry's label set and an
// optional extra pair (the quantile label of summary samples).
func (p *promWriter) labels(e *entry, extra string) string {
	switch {
	case e.label == "" && extra == "":
		return ""
	case e.label == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + e.label + "}"
	default:
		return "{" + e.label + "," + extra + "}"
	}
}

// entry renders one registry entry.
func (p *promWriter) entry(e *entry) {
	name := promName(e.name)
	switch e.kind {
	case kindCounter:
		p.head(name, e.help, "counter")
		p.sample(name, p.labels(e, ""), e.counter.Value())
	case kindGauge:
		p.head(name, e.help, "gauge")
		p.sample(name, p.labels(e, ""), e.gauge())
	case kindSeries:
		p.head(name, e.help, "gauge")
		last := 0.0
		if n := e.series.Len(); n > 0 {
			last = e.series.Vals[n-1]
		}
		p.sample(name+"_last", p.labels(e, ""), last)
		p.sample(name+"_mean", p.labels(e, ""), e.series.Mean())
		p.sample(name+"_points", p.labels(e, ""), float64(e.series.Len()))
	case kindDistribution:
		p.head(name, e.help, "summary")
		for _, q := range []float64{50, 90, 99} {
			p.sample(name, p.labels(e, quantileLabel(q)), e.dist.Percentile(q))
		}
		p.sample(name+"_count", p.labels(e, ""), float64(e.dist.N()))
	case kindHistogram:
		p.head(name, e.help, "summary")
		for _, q := range []float64{50, 90, 99} {
			p.sample(name, p.labels(e, quantileLabel(q)), e.hist.Percentile(q))
		}
		p.sample(name+"_count", p.labels(e, ""), float64(e.hist.N()))
		p.sample(name+"_buckets", p.labels(e, ""), float64(e.hist.Buckets()))
	case kindHeatmap:
		p.head(name, e.help, "gauge")
		p.sample(name+"_mean", p.labels(e, ""), e.heat.MeanOverall())
		p.sample(name+"_rows", p.labels(e, ""), float64(e.heat.Rows))
		p.sample(name+"_samples", p.labels(e, ""), float64(len(e.heat.Times)))
	}
}

// quantileLabel renders the inner quantile pair of a summary sample.
func quantileLabel(q float64) string {
	return fmt.Sprintf(`quantile="0.%d"`, int(q))
}

// WritePromSnapshot writes the tracer's registry snapshot, plus the tracer's
// own event totals, to w.
func WritePromSnapshot(w io.Writer, t *Tracer) error {
	p := newPromWriter(w)
	p.head("obs_events_total", "trace events recorded", "counter")
	p.sample("obs_events_total", "", float64(t.Len()))
	if reg := t.Registry(); reg != nil {
		for i := range reg.entries {
			p.entry(&reg.entries[i])
		}
	}
	return p.bw.Flush()
}

// WritePromRegistry writes a bare registry snapshot to w in the exposition
// format — the renderer behind a wall-clock telemetry registry that lives
// outside any tracer (serve mode's RED metrics). Callers own synchronization
// of the registered containers.
func WritePromRegistry(w io.Writer, reg *Registry) error {
	p := newPromWriter(w)
	if reg != nil {
		for i := range reg.entries {
			p.entry(&reg.entries[i])
		}
	}
	return p.bw.Flush()
}
