package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The Prometheus export is a point-in-time text snapshot of the registry in
// the exposition format: # HELP / # TYPE headers followed by samples, walked
// in registration order. Series export their last value, mean, and point
// count; distributions export summary quantiles; heatmaps their overall
// mean. Wall-clock scrape loops do not exist in the simulation — the snapshot
// is taken once, at the sim time the caller chooses (normally end of run).

// promFloat renders a value the way Prometheus expects (NaN for empty
// distributions stays literal "NaN").
func promFloat(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promHelp escapes HELP text per the exposition format: backslash and
// newline must be escaped (a raw newline would terminate the comment line
// and corrupt the scrape).
func promHelp(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			_, _ = b.WriteString(`\\`)
		case '\n':
			_, _ = b.WriteString(`\n`)
		default:
			_, _ = b.WriteRune(r)
		}
	}
	return b.String()
}

// promLabelValue escapes a label value per the exposition format: backslash,
// double quote, and newline.
func promLabelValue(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			_, _ = b.WriteString(`\\`)
		case '"':
			_, _ = b.WriteString(`\"`)
		case '\n':
			_, _ = b.WriteString(`\n`)
		default:
			_, _ = b.WriteRune(r)
		}
	}
	return b.String()
}

// promLabel renders one {name="value"} label set with the value escaped.
func promLabel(name, value string) string {
	return fmt.Sprintf(`{%s="%s"}`, promName(name), promLabelValue(value))
}

// promName sanitizes a metric name to the [a-zA-Z_:][a-zA-Z0-9_:]* charset.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			_, _ = b.WriteRune(r)
		} else {
			_ = b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePromSnapshot writes the registry snapshot, plus the tracer's own
// event totals, to w.
func WritePromSnapshot(w io.Writer, t *Tracer) error {
	bw := bufio.NewWriter(w)
	head := func(name, help, typ string) {
		if help != "" {
			_, _ = fmt.Fprintf(bw, "# HELP %s %s\n", name, promHelp(help))
		}
		_, _ = fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
	}
	sample := func(name, labels string, v float64) {
		_, _ = fmt.Fprintf(bw, "%s%s %s\n", name, labels, promFloat(v))
	}

	head("obs_events_total", "trace events recorded", "counter")
	sample("obs_events_total", "", float64(t.Len()))

	if reg := t.Registry(); reg != nil {
		for i := range reg.entries {
			e := &reg.entries[i]
			name := promName(e.name)
			switch e.kind {
			case kindCounter:
				head(name, e.help, "counter")
				sample(name, "", e.counter.Value())
			case kindGauge:
				head(name, e.help, "gauge")
				sample(name, "", e.gauge())
			case kindSeries:
				head(name, e.help, "gauge")
				last := 0.0
				if n := e.series.Len(); n > 0 {
					last = e.series.Vals[n-1]
				}
				sample(name+"_last", "", last)
				sample(name+"_mean", "", e.series.Mean())
				sample(name+"_points", "", float64(e.series.Len()))
			case kindDistribution:
				head(name, e.help, "summary")
				for _, q := range []float64{50, 90, 99} {
					sample(name, promLabel("quantile", fmt.Sprintf("0.%d", int(q))), e.dist.Percentile(q))
				}
				sample(name+"_count", "", float64(e.dist.N()))
			case kindHistogram:
				head(name, e.help, "summary")
				for _, q := range []float64{50, 90, 99} {
					sample(name, promLabel("quantile", fmt.Sprintf("0.%d", int(q))), e.hist.Percentile(q))
				}
				sample(name+"_count", "", float64(e.hist.N()))
				sample(name+"_buckets", "", float64(e.hist.Buckets()))
			case kindHeatmap:
				head(name, e.help, "gauge")
				sample(name+"_mean", "", e.heat.MeanOverall())
				sample(name+"_rows", "", float64(e.heat.Rows))
				sample(name+"_samples", "", float64(len(e.heat.Times)))
			}
		}
	}
	return bw.Flush()
}
