package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strings"
)

// The Chrome export renders the trace in the trace_event JSON format loadable
// by Perfetto and chrome://tracing: one process, one named thread (track) per
// server and per workload, sync spans as B/E, placements as overlapping async
// b/e pairs, counters as C. Timestamps convert from sim seconds to the
// format's microseconds.

// chromeEvent is one trace_event record. Field order fixes the output bytes.
type chromeEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat,omitempty"`
	Ph   string     `json:"ph"`
	Ts   float64    `json:"ts"`
	Pid  int        `json:"pid"`
	Tid  int        `json:"tid"`
	ID   string     `json:"id,omitempty"`
	Args argsObject `json:"args,omitempty"`
}

// trackOrder sorts tracks into stable display order: the manager and cluster
// singletons first, then servers by ID, then workloads, then the rest —
// alphabetical within each group. (Server IDs are zero-padded nowhere, so the
// numeric-aware comparison below keeps server/2 before server/10.)
func trackOrder(tracks []string) []string {
	out := append([]string(nil), tracks...)
	group := func(tr string) int {
		switch {
		case !strings.Contains(tr, "/"):
			return 0
		case strings.HasPrefix(tr, "server/"):
			return 1
		case strings.HasPrefix(tr, "workload/"):
			return 2
		}
		return 3
	}
	sort.Slice(out, func(i, j int) bool {
		gi, gj := group(out[i]), group(out[j])
		if gi != gj {
			return gi < gj
		}
		a, b := out[i], out[j]
		if gi == 1 { // numeric server IDs
			if la, lb := len(a), len(b); la != lb {
				return la < lb
			}
		}
		return a < b
	})
	return out
}

// WriteChromeTrace writes the trace_event JSON document to w.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	write := func(ev chromeEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	const pid = 1
	if err := write(chromeEvent{Name: "process_name", Ph: "M", Pid: pid,
		Args: argsObject{{Key: "name", Val: "quasar"}}}); err != nil {
		return err
	}
	tids := make(map[string]int)
	for i, tr := range trackOrder(t.Tracks()) {
		tids[tr] = i
		if err := write(chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: i,
			Args: argsObject{{Key: "name", Val: tr}}}); err != nil {
			return err
		}
		if err := write(chromeEvent{Name: "thread_sort_index", Ph: "M", Pid: pid, Tid: i,
			Args: argsObject{{Key: "sort_index", Val: i}}}); err != nil {
			return err
		}
	}
	for i := range t.Events() {
		ev := &t.Events()[i]
		if err := write(chromeEvent{
			Name: ev.Name, Cat: ev.Cat, Ph: string(ev.Phase),
			Ts: ev.Time * 1e6, Pid: pid, Tid: tids[ev.Track],
			ID: ev.ID, Args: argsObject(ev.Args),
		}); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
