package obs

// A Sink receives the tracer's accepted events one at a time, in sequence
// order, on the simulation goroutine. Sinks decide what to retain: the
// BufferSink keeps everything in memory (the classic tracer), the StreamSink
// encodes and spills incrementally to disk, and the RingSink keeps only the
// last N events as an always-on flight recorder.
//
// The pipeline preserves the determinism contract by construction: filtering
// and sequence assignment happen in the Tracer before the sink sees anything,
// so for a given scenario + controls every sink observes the identical event
// stream, and the StreamSink's file is byte-identical to the buffered
// exporter's output.
type Sink interface {
	// Start is called once, before the first event (or at Close for an empty
	// trace), with the trace header derived from the tracer's controls.
	Start(h *Header) error
	// Emit receives one accepted event and its deterministic size estimate.
	// The event's Args slices are retained-by-reference; sinks must not
	// mutate them.
	Emit(ev *Event, sizeEst int) error
	// Close finalizes the sink; reg carries the registry whose metric lines
	// trail the event stream in serialized formats. Close must be
	// idempotent.
	Close(reg *Registry) error
	// RetainedBytes reports the sink's current and high-water retained
	// memory estimate, for the observability-at-scale benchmarks.
	RetainedBytes() (cur, high int)
}

// BufferSink retains every event in memory: the original tracer behavior,
// and what the Chrome/Prometheus exporters (which need the whole stream or
// the track list up front) require.
type BufferSink struct {
	events   []Event
	retained int
	high     int
}

// NewBufferSink returns an empty buffer sink.
func NewBufferSink() *BufferSink { return &BufferSink{} }

// Start implements Sink; the header is re-derived at export time.
func (b *BufferSink) Start(*Header) error { return nil }

// Emit implements Sink.
func (b *BufferSink) Emit(ev *Event, sizeEst int) error {
	b.events = append(b.events, *ev)
	b.retained += sizeEst
	if b.retained > b.high {
		b.high = b.retained
	}
	return nil
}

// Close implements Sink (no finalization: the buffer is exported by the
// caller through WriteJSONL / WriteChromeTrace / WritePromSnapshot).
func (b *BufferSink) Close(*Registry) error { return nil }

// RetainedBytes implements Sink.
func (b *BufferSink) RetainedBytes() (cur, high int) { return b.retained, b.high }

// Events returns the retained events in emission order. The slice is the
// sink's backing store; callers must not mutate it.
func (b *BufferSink) Events() []Event { return b.events }

// RingSink is a fixed-capacity flight recorder: it keeps the most recent
// events and overwrites the oldest, so an always-on tracer costs a bounded,
// configuration-chosen amount of memory no matter how long the run is. The
// retained window is exported with Events (oldest first), preserving the
// original sequence numbers so a post-mortem reader sees exactly where the
// window starts.
type RingSink struct {
	buf      []Event
	sizes    []int
	next     int // next slot to write
	emitted  int // total events observed
	retained int
	high     int
}

// NewRingSink returns a flight recorder holding the last capacity events
// (minimum 1).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{buf: make([]Event, capacity), sizes: make([]int, capacity)}
}

// Start implements Sink.
func (r *RingSink) Start(*Header) error { return nil }

// Emit implements Sink: overwrite the oldest slot.
func (r *RingSink) Emit(ev *Event, sizeEst int) error {
	r.retained += sizeEst - r.sizes[r.next]
	if r.retained > r.high {
		r.high = r.retained
	}
	r.buf[r.next] = *ev
	r.sizes[r.next] = sizeEst
	r.next = (r.next + 1) % len(r.buf)
	r.emitted++
	return nil
}

// Close implements Sink.
func (r *RingSink) Close(*Registry) error { return nil }

// RetainedBytes implements Sink.
func (r *RingSink) RetainedBytes() (cur, high int) { return r.retained, r.high }

// Capacity returns the fixed slot count.
func (r *RingSink) Capacity() int { return len(r.buf) }

// Emitted returns the total number of events the sink has observed
// (including overwritten ones).
func (r *RingSink) Emitted() int { return r.emitted }

// Events returns a copy of the retained window, oldest first.
func (r *RingSink) Events() []Event {
	n := r.emitted
	if n > len(r.buf) {
		n = len(r.buf)
	}
	out := make([]Event, 0, n)
	start := 0
	if r.emitted > len(r.buf) {
		start = r.next // buffer is full: next slot holds the oldest event
	}
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}
