package obs

import (
	"quasar/internal/metrics"
)

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindSeries
	kindDistribution
	kindHistogram
	kindHeatmap
)

// Counter is a monotonically increasing value. A nil Counter (from a nil
// registry) is a no-op, so instrumented code never branches on tracing state.
type Counter struct {
	v float64
}

// Add increases the counter.
func (c *Counter) Add(d float64) {
	if c == nil {
		return
	}
	c.v += d
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current value (0 for nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// entry is one registered metric.
type entry struct {
	name string
	// label is the rendered inner label set (e.g. `endpoint="submit"`),
	// empty for unlabeled metrics. Entries sharing a name but differing in
	// label are distinct registrations; the Prometheus renderer groups them
	// under one HELP/TYPE header.
	label   string
	help    string
	kind    metricKind
	counter *Counter
	gauge   func() float64
	series  *metrics.Series
	dist    *metrics.Distribution
	hist    *metrics.Histogram
	heat    *metrics.Heatmap
}

// key is the registry identity: name alone, or name plus label set.
func (e *entry) key() string {
	if e.label == "" {
		return e.name
	}
	return e.name + "{" + e.label + "}"
}

// Registry holds counters, gauges, and references to internal/metrics
// containers, in registration order — the deterministic order every exporter
// walks. It unifies the tracer's own counters with the time series the
// runtime already maintains, so one snapshot covers both.
type Registry struct {
	entries []entry
	byName  map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// add registers an entry, replacing an existing one with the same name and
// label set (the registration order of the first occurrence is kept, so
// re-wiring a metric does not reorder snapshots).
func (r *Registry) add(e entry) {
	k := e.key()
	if i, ok := r.byName[k]; ok {
		r.entries[i] = e
		return
	}
	r.byName[k] = len(r.entries)
	r.entries = append(r.entries, e)
}

// Counter registers (or returns the existing) named counter. Nil-safe: a nil
// registry returns a nil Counter whose methods are no-ops.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	if i, ok := r.byName[name]; ok && r.entries[i].kind == kindCounter {
		return r.entries[i].counter
	}
	c := &Counter{} //lint:allow(hotalloc) first registration of a name only; steady-state lookups return the cached counter above
	r.add(entry{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// LabeledCounter registers (or returns the existing) counter under a
// name + label-set pair. The label is the rendered inner pair list of the
// Prometheus sample (e.g. `endpoint="submit"`); entries sharing a name are
// grouped under one HELP/TYPE header by the snapshot renderer. Nil-safe.
func (r *Registry) LabeledCounter(name, label, help string) *Counter {
	if r == nil {
		return nil
	}
	k := name + "{" + label + "}"
	if i, ok := r.byName[k]; ok && r.entries[i].kind == kindCounter {
		return r.entries[i].counter
	}
	c := &Counter{}
	r.add(entry{name: name, label: label, help: help, kind: kindCounter, counter: c})
	return c
}

// Gauge registers a gauge read through fn at snapshot time.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.add(entry{name: name, help: help, kind: kindGauge, gauge: fn})
}

// Series registers a metrics.Series; snapshots export its last value and
// point count, and the JSONL exporter embeds the full series.
func (r *Registry) Series(name, help string, s *metrics.Series) {
	if r == nil || s == nil {
		return
	}
	r.add(entry{name: name, help: help, kind: kindSeries, series: s})
}

// Distribution registers a metrics.Distribution; snapshots export count and
// p50/p90/p99 quantiles.
func (r *Registry) Distribution(name, help string, d *metrics.Distribution) {
	if r == nil || d == nil {
		return
	}
	r.add(entry{name: name, help: help, kind: kindDistribution, dist: d})
}

// Histogram registers a metrics.Histogram (the bounded-memory streaming
// percentile tracker); snapshots export count and p50/p90/p99 quantiles,
// and the JSONL exporter embeds the full bucket state.
func (r *Registry) Histogram(name, help string, h *metrics.Histogram) {
	if r == nil || h == nil {
		return
	}
	r.add(entry{name: name, help: help, kind: kindHistogram, hist: h})
}

// LabeledHistogram registers a metrics.Histogram under a name + label-set
// pair (see LabeledCounter for the label contract).
func (r *Registry) LabeledHistogram(name, label, help string, h *metrics.Histogram) {
	if r == nil || h == nil {
		return
	}
	r.add(entry{name: name, label: label, help: help, kind: kindHistogram, hist: h})
}

// Heatmap registers a metrics.Heatmap; snapshots export its overall mean.
func (r *Registry) Heatmap(name, help string, h *metrics.Heatmap) {
	if r == nil || h == nil {
		return
	}
	r.add(entry{name: name, help: help, kind: kindHeatmap, heat: h})
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.entries)
}
