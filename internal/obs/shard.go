package obs

// Shard is a task-confined event buffer for deterministic tracing inside
// parallel fan-outs. The pattern mirrors sim.RNG.Substreams: derive one shard
// per task sequentially before the fan-out, hand shard i to task i (a shard
// must never be shared across tasks), and Merge the slice afterwards — the
// buffered events land in the parent stream in input order with final
// sequence numbers, so output is byte-identical for any worker count.
//
// Shard timestamps are pinned to the simulation time at derivation: a fan-out
// happens at one simulated instant, whatever the wall clock does.
type Shard struct {
	time   float64
	events []Event
}

// Shards derives n task buffers at the current sim time. For a nil tracer it
// returns n nil shards, whose methods are no-ops, so fan-out code needs no
// enabled-check of its own.
func (t *Tracer) Shards(n int) []*Shard {
	shards := make([]*Shard, n) //lint:allow(hotalloc) one slice per fan-out, amortized over its n tasks
	if t == nil {
		return shards
	}
	tm := t.now()
	for i := range shards {
		shards[i] = &Shard{time: tm} //lint:allow(hotalloc) per-fan-out task buffer; shards are handed to concurrent tasks, so pooling would race
	}
	return shards
}

// Enabled reports whether the shard records events.
func (s *Shard) Enabled() bool { return s != nil }

// Instant buffers a standalone event at the shard's derivation time.
func (s *Shard) Instant(track, cat, name string, args ...Arg) {
	if s == nil {
		return
	}
	s.events = append(s.events, Event{
		Time: s.time, Phase: PhaseInstant,
		Cat: cat, Name: name, Track: track, Args: args,
	})
}

// Merge routes the shards' buffered events into the parent pipeline in input
// order: each passes through the tracer's controls, gets a final sequence
// number, and fans out to the sinks, exactly as a direct emission would.
// Call it after the fan-out has fully drained (par.ParFor returns only then).
// Nil shards and a nil tracer are tolerated.
func (t *Tracer) Merge(shards []*Shard) {
	if t == nil {
		return
	}
	for _, s := range shards {
		if s == nil {
			continue
		}
		for i := range s.events {
			ev := &s.events[i]
			t.emit(ev.Time, ev.Phase, ev.ID, ev.Track, ev.Cat, ev.Name, ev.Args)
		}
		s.events = nil
	}
}
