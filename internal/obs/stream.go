package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"quasar/internal/obs/prof"
)

// StreamSink encodes each accepted event to JSONL as it is emitted and spills
// it to an io.Writer, so trace memory stays bounded by one bufio buffer no
// matter how many events the run produces. File-backed sinks write to a
// temporary file in the destination directory and finalize with an atomic
// rename at Close, so a trace survives a failed or crashed scenario: whatever
// was emitted before the failure is on disk the moment the deferred Close
// runs, and readers never observe a half-written destination path.
//
// The encoding is the same code path the buffered exporter uses, line for
// line — header, events in sequence order, then the registry's metric lines —
// so the streamed file is byte-identical to WriteJSONL output for the same
// run. The worker-matrix identity tests pin that equality at 1k servers.
type StreamSink struct {
	// Prof, when non-nil, attributes encode+write time to the trace-export
	// subsystem. Set it before the first event.
	Prof *prof.Profiler

	w       *bufio.Writer
	enc     *json.Encoder
	file    *os.File // nil for writer-backed sinks
	tmpPath string
	dstPath string
	started bool
	closed  bool
	bytes   counting
	high    int
}

// counting wraps the underlying writer to count bytes written.
type counting struct {
	w io.Writer
	n int64
}

func (c *counting) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// NewStreamSink creates a file-backed streaming sink for path. The temporary
// file is created immediately (in path's directory, so the final rename
// cannot cross filesystems); call Close to finalize or Discard to abandon it.
func NewStreamSink(path string) (*StreamSink, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return nil, err
	}
	s := newStreamSink(f)
	s.file, s.tmpPath, s.dstPath = f, f.Name(), path
	return s, nil
}

// NewStreamSinkWriter creates a streaming sink over an arbitrary writer (a
// network connection, a pipe, a test buffer). Close flushes but performs no
// rename.
func NewStreamSinkWriter(w io.Writer) *StreamSink { return newStreamSink(w) }

func newStreamSink(w io.Writer) *StreamSink {
	s := &StreamSink{}
	s.bytes.w = w
	s.w = bufio.NewWriterSize(&s.bytes, streamBufBytes)
	s.enc = json.NewEncoder(s.w)
	s.high = streamBufBytes
	return s
}

// streamBufBytes is the sink's only event-proportional-free memory: one
// encode buffer, regardless of trace length.
const streamBufBytes = 1 << 16

// Start implements Sink: the header is the first line of the file.
func (s *StreamSink) Start(h *Header) error {
	if s.started {
		return nil
	}
	s.started = true
	return s.enc.Encode(h)
}

// Emit implements Sink.
func (s *StreamSink) Emit(ev *Event, _ int) error {
	t0 := s.Prof.Begin()
	err := encodeEventLine(s.enc, ev)
	s.Prof.End(prof.SubTrace, t0)
	return err
}

// Close implements Sink: append the registry's metric lines, flush, and (for
// file-backed sinks) atomically rename the temporary file over the
// destination. Idempotent; safe to defer alongside an explicit call.
func (s *StreamSink) Close(reg *Registry) error {
	if s.closed {
		return nil
	}
	s.closed = true
	t0 := s.Prof.Begin()
	defer s.Prof.End(prof.SubTrace, t0)
	if !s.started { // empty trace: still header + metrics
		s.started = true
		if err := s.enc.Encode(defaultHeader()); err != nil {
			return s.abandon(err)
		}
	}
	if err := writeRegistryLines(s.enc, reg); err != nil {
		return s.abandon(err)
	}
	if err := s.w.Flush(); err != nil {
		return s.abandon(err)
	}
	if s.file == nil {
		return nil
	}
	if err := s.file.Close(); err != nil {
		return s.abandon(err)
	}
	if err := os.Rename(s.tmpPath, s.dstPath); err != nil {
		_ = os.Remove(s.tmpPath)
		return err
	}
	return nil
}

// abandon tears down the temporary file after a write failure so no orphan
// remains, and returns the original error.
func (s *StreamSink) abandon(err error) error {
	if s.file != nil {
		_ = s.file.Close()
		_ = os.Remove(s.tmpPath)
		s.file = nil
	}
	return err
}

// Discard abandons the sink without finalizing: the temporary file is
// removed and the destination path is left untouched. A no-op after Close.
func (s *StreamSink) Discard() {
	if s.closed {
		return
	}
	s.closed = true
	_ = s.abandon(nil)
}

// RetainedBytes implements Sink: the encode buffer is the whole footprint.
func (s *StreamSink) RetainedBytes() (cur, high int) {
	return s.w.Buffered(), s.high
}

// BytesWritten returns the number of encoded bytes pushed to the underlying
// writer so far (buffered bytes not yet flushed are excluded).
func (s *StreamSink) BytesWritten() int64 { return s.bytes.n }

// Path returns the destination path of a file-backed sink ("" otherwise).
func (s *StreamSink) Path() string { return s.dstPath }

// String identifies the sink in errors.
func (s *StreamSink) String() string {
	if s.dstPath != "" {
		return fmt.Sprintf("stream(%s)", s.dstPath)
	}
	return "stream(writer)"
}
