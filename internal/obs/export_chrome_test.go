package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// chromeDoc decodes a trace_event document far enough for structural
// assertions.
type chromeDoc struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Tid  int     `json:"tid"`
		ID   string  `json:"id"`
	} `json:"traceEvents"`
}

func exportChrome(t *testing.T, tr *Tracer) chromeDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	return doc
}

// phases returns the non-metadata events matching name, in order.
func (d chromeDoc) phases(name string) []string {
	var out []string
	for _, ev := range d.TraceEvents {
		if ev.Name == name {
			out = append(out, ev.Ph)
		}
	}
	return out
}

func TestChromeUnbalancedSyncSpans(t *testing.T) {
	// A crashed run can leave a Begin without its End, and a malformed
	// instrumentation site can emit an End with no opener. The exporter's job
	// is faithful transcription: both records survive into valid JSON for the
	// viewer to flag, rather than panicking or silently repairing the stream.
	now := 0.0
	tr := New(func() float64 { return now })
	tr.Begin("manager", "sched", "outer")
	now = 1
	tr.Begin("manager", "sched", "never-closed")
	now = 2
	tr.End("manager", "sched", "outer") // closes out of order; never-closed dangles
	tr.End("manager", "sched", "orphan-end")

	doc := exportChrome(t, tr)
	if got := doc.phases("never-closed"); len(got) != 1 || got[0] != "B" {
		t.Fatalf("dangling Begin rendered as %v, want [B]", got)
	}
	if got := doc.phases("orphan-end"); len(got) != 1 || got[0] != "E" {
		t.Fatalf("orphan End rendered as %v, want [E]", got)
	}
	if got := doc.phases("outer"); len(got) != 2 || got[0] != "B" || got[1] != "E" {
		t.Fatalf("balanced span rendered as %v, want [B E]", got)
	}
}

func TestChromeDanglingAsyncSpans(t *testing.T) {
	now := 0.0
	tr := New(func() float64 { return now })
	tr.BeginAsync("w0@1", "server/1", "place", "w0")
	now = 5
	tr.EndAsync("w9@1", "server/1", "place", "w9") // end with no begin
	// w0@1 never ends: the placement was live when the trace stopped.

	doc := exportChrome(t, tr)
	var begins, ends int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "b" && ev.ID == "w0@1":
			begins++
		case ev.Ph == "e" && ev.ID == "w9@1":
			ends++
		}
	}
	if begins != 1 || ends != 1 {
		t.Fatalf("dangling async pair lost: begins=%d ends=%d, want 1 and 1", begins, ends)
	}
	// Both events share the server track; its thread metadata must exist
	// even though no balanced span ever completed on it.
	foundTrack := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "thread_name" {
			foundTrack = true
		}
	}
	if !foundTrack {
		t.Fatal("no thread_name metadata emitted")
	}
}
