package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quasar/internal/metrics"
)

var updateProm = flag.Bool("update-prom", false, "rewrite the adversarial prom golden file")

// buildAdversarialTrace registers metrics whose names and help strings carry
// every character the exposition format requires escaping: backslashes,
// double quotes, and literal newlines, plus charset-hostile metric names.
func buildAdversarialTrace() *Tracer {
	now := 0.0
	tr := New(func() float64 { return now })
	reg := tr.Registry()

	reg.Counter("evil-name.total", "help with \"quotes\" and a \\backslash\\").Inc()
	reg.Gauge("multi\nline", "first line\nsecond line\ttabbed", func() float64 { return 2 })
	s := &metrics.Series{Name: "s"}
	s.Add(0, 1)
	s.Add(5, 3)
	reg.Series("série_utf8", "utf-8 name gets sanitized, help café stays", s)
	d := &metrics.Distribution{}
	d.Add(10)
	d.Add(20)
	reg.Distribution("dist", "trailing backslash \\", d)
	h := metrics.NewHistogram(0.01)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	reg.Histogram("lat_hist", "histogram with\nnewline and \"quote\"", h)
	return tr
}

func TestPromEscapingGolden(t *testing.T) {
	tr := buildAdversarialTrace()
	var buf bytes.Buffer
	if err := WritePromSnapshot(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	// Structural invariants independent of the golden: no raw newline may
	// survive inside a HELP comment, and every line must be a comment or a
	// name{labels} value sample.
	for i, ln := range strings.Split(strings.TrimRight(got, "\n"), "\n") {
		if ln == "" {
			t.Fatalf("blank line %d in prom output", i+1)
		}
		if strings.HasPrefix(ln, "# HELP ") && strings.Contains(ln, "\t") {
			// tabs are legal in help; just ensure the escape didn't eat them
			continue
		}
	}
	for _, want := range []string{
		`# HELP evil_name_total help with "quotes" and a \\backslash\\`,
		`# HELP multi_line first line\nsecond line`,
		`multi_line 2`,
		`# HELP dist trailing backslash \\`,
		`# TYPE lat_hist summary`,
		`# HELP lat_hist histogram with\nnewline and "quote"`,
		`lat_hist{quantile="0.50"}`,
		`lat_hist_count 100`,
		`lat_hist_buckets`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("prom snapshot missing %q:\n%s", want, got)
		}
	}

	goldenPath := filepath.Join("testdata", "prom_adversarial.golden")
	if *updateProm {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-prom to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("prom output differs from %s\n--- got ---\n%s--- want ---\n%s",
			goldenPath, got, want)
	}
}

func TestPromLabelValueEscaping(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `plain`},
		{`back\slash`, `back\\slash`},
		{`"quoted"`, `\"quoted\"`},
		{"new\nline", `new\nline`},
		{"all\\three\"\n", `all\\three\"\n`},
	}
	for _, c := range cases {
		if got := promLabelValue(c.in); got != c.want {
			t.Errorf("promLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := promHelp("a\\b\nc\"d"); got != `a\\b\nc"d` {
		t.Errorf("promHelp = %q", got)
	}
}

// TestPromLabeledMetricsGrouping pins the labeled-registry contract the RED
// exporter builds on: entries sharing a name render under a single HELP/TYPE
// header with their label sets inlined per sample, and labeled summary
// quantiles merge the endpoint label with the quantile pair.
func TestPromLabeledMetricsGrouping(t *testing.T) {
	reg := NewRegistry()
	reg.LabeledCounter("http_requests_total", `endpoint="submit"`, "requests by endpoint").Add(3)
	reg.LabeledCounter("http_requests_total", `endpoint="evict"`, "requests by endpoint").Inc()
	h := metrics.NewHistogram(0.01)
	for i := 1; i <= 50; i++ {
		h.Add(float64(i))
	}
	reg.LabeledHistogram("http_request_us", `endpoint="submit"`, "latency by endpoint", h)

	// Same name + label returns the existing counter, not a new registration.
	reg.LabeledCounter("http_requests_total", `endpoint="submit"`, "requests by endpoint").Inc()
	if reg.Len() != 3 {
		t.Fatalf("registry has %d entries, want 3", reg.Len())
	}

	var buf bytes.Buffer
	if err := WritePromRegistry(&buf, reg); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if n := strings.Count(got, "# HELP http_requests_total"); n != 1 {
		t.Fatalf("HELP header rendered %d times, want 1:\n%s", n, got)
	}
	if n := strings.Count(got, "# TYPE http_requests_total"); n != 1 {
		t.Fatalf("TYPE header rendered %d times, want 1:\n%s", n, got)
	}
	for _, want := range []string{
		`http_requests_total{endpoint="submit"} 4`,
		`http_requests_total{endpoint="evict"} 1`,
		`http_request_us{endpoint="submit",quantile="0.50"}`,
		`http_request_us_count{endpoint="submit"} 50`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("labeled prom output missing %q:\n%s", want, got)
		}
	}
}

func TestJSONLHistogramRoundTrip(t *testing.T) {
	tr := buildAdversarialTrace()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var line string
	for _, ln := range strings.Split(buf.String(), "\n") {
		if strings.Contains(ln, `"metric":"lat_hist"`) {
			line = ln
		}
	}
	if line == "" {
		t.Fatalf("no histogram metric line in JSONL:\n%s", buf.String())
	}
	var m struct {
		Kind  string             `json:"kind"`
		Value *metrics.Histogram `json:"value"`
	}
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatal(err)
	}
	if m.Kind != "histogram" {
		t.Fatalf("kind %q", m.Kind)
	}
	if m.Value.N() != 100 {
		t.Fatalf("round-tripped histogram count %d", m.Value.N())
	}
	p99 := m.Value.Percentile(99)
	if p99 < 95 || p99 > 101 {
		t.Fatalf("round-tripped p99 %v", p99)
	}
}
