package obs

import (
	"bytes"
	"fmt"
	"testing"
)

func TestSampleKeepDeterministic(t *testing.T) {
	// The verdict is a pure function of the ID and fraction.
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("w%d", i)
		first := SampleKeep(id, 0.3)
		for rep := 0; rep < 3; rep++ {
			if SampleKeep(id, 0.3) != first {
				t.Fatalf("SampleKeep(%q, 0.3) changed between calls", id)
			}
		}
	}
	// Degenerate fractions keep everything.
	for _, frac := range []float64{0, -1, 1, 2} {
		if !SampleKeep("anything", frac) {
			t.Fatalf("SampleKeep(_, %v) = false, want true", frac)
		}
	}
	// The kept subset is monotone in the fraction: raising the sampling rate
	// only adds workloads, never swaps them (the hash threshold just moves).
	kept := 0
	for i := 0; i < 2000; i++ {
		id := fmt.Sprintf("workload-%d", i)
		lo, hi := SampleKeep(id, 0.2), SampleKeep(id, 0.6)
		if lo && !hi {
			t.Fatalf("%q kept at 0.2 but dropped at 0.6", id)
		}
		if SampleKeep(id, 0.3) {
			kept++
		}
	}
	// The hash spreads sequential IDs across the threshold: some kept, some
	// dropped, in the rough vicinity of the fraction. (FNV-1a is not a
	// cryptographic mix — structured ID families can land a few tens of
	// percent off the nominal rate, which is fine: the contract is
	// determinism, not statistical uniformity.)
	if kept < 200 || kept > 1200 {
		t.Fatalf("kept %d of 2000 at frac 0.3, want a nontrivial fraction", kept)
	}
}

func TestControlsLevelFiltering(t *testing.T) {
	tr := New(nil)
	tr.SetControls(Controls{
		Default:  LevelLifecycle,
		Category: map[string]Level{"chaos": LevelOff},
	})
	tr.Instant("manager", "sched", "admit")                                                          // lifecycle: kept
	tr.Counter("cluster", "util", "busy", Arg{Key: "n", Val: 1})                                     // debug: dropped
	tr.Instant("manager", "sched", "decision", Arg{Key: "d", Val: ScheduleDecision{Workload: "w0"}}) // decision: dropped
	tr.Instant("server/0", "chaos", "crash")                                                         // category off: dropped
	tr.Instant("manager", "runtime", "tick")                                                         // lifecycle: kept

	if tr.Len() != 2 {
		t.Fatalf("kept %d events, want 2", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("Dropped() = %d, want 3", tr.Dropped())
	}
	// Filtering happens before sequence assignment: the surviving stream has
	// contiguous seqs starting at 1.
	for i, ev := range tr.Events() {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d (seqs must stay contiguous after filtering)", i, ev.Seq, i+1)
		}
	}
}

func TestControlsWorkloadSampling(t *testing.T) {
	const frac = 0.5
	tr := New(nil)
	tr.SetControls(Controls{SampleWorkloads: frac})
	var wantKept []string
	for i := 0; i < 40; i++ {
		w := fmt.Sprintf("w%d", i)
		tr.Instant("workload/"+w, "qos", "met")
		if SampleKeep(w, frac) {
			wantKept = append(wantKept, "workload/"+w)
		}
	}
	tr.Instant("cluster", "util", "snapshot") // no workload identity: always kept

	evs := tr.Events()
	if len(evs) != len(wantKept)+1 {
		t.Fatalf("kept %d events, want %d sampled + 1 cluster", len(evs), len(wantKept))
	}
	for i, want := range wantKept {
		if evs[i].Track != want {
			t.Fatalf("event %d on track %q, want %q", i, evs[i].Track, want)
		}
	}
	if last := evs[len(evs)-1]; last.Track != "cluster" {
		t.Fatalf("cluster event missing; last track is %q", last.Track)
	}
	// The async placement pair ID carries the same identity, so the span
	// follows its workload's verdict.
	tr2 := New(nil)
	tr2.SetControls(Controls{SampleWorkloads: frac})
	tr2.BeginAsync("w0@3", "server/3", "place", "w0")
	tr2.BeginAsync("w1@3", "server/3", "place", "w1")
	want := 0
	if SampleKeep("w0", frac) {
		want++
	}
	if SampleKeep("w1", frac) {
		want++
	}
	if tr2.Len() != want {
		t.Fatalf("async spans kept %d, want %d", tr2.Len(), want)
	}
}

func TestControlsTopKTruncation(t *testing.T) {
	mk := func(n, picked int) ScheduleDecision {
		d := ScheduleDecision{Workload: "w0", Outcome: OutcomePlaced}
		for i := 0; i < n; i++ {
			d.Candidates = append(d.Candidates, Candidate{Server: i, Quality: 1 - float64(i)/10, Picked: i == picked})
		}
		return d
	}
	tr := New(nil)
	tr.SetControls(Controls{TopK: 3})
	orig := mk(10, 7)
	tr.Instant("manager", "sched", "decision", Arg{Key: "decision", Val: orig})
	tr.Instant("manager", "sched", "decision", Arg{Key: "decision", Val: mk(2, 0)})

	got := tr.Events()[0].Args[0].Val.(ScheduleDecision)
	if len(got.Candidates) != 4 {
		t.Fatalf("truncated to %d candidates, want 4 (top 3 + picked)", len(got.Candidates))
	}
	for i := 0; i < 3; i++ {
		if got.Candidates[i].Server != i {
			t.Fatalf("candidate %d is server %d, want %d", i, got.Candidates[i].Server, i)
		}
	}
	if last := got.Candidates[3]; last.Server != 7 || !last.Picked {
		t.Fatalf("picked candidate beyond the cut not retained: %+v", last)
	}
	if got.CandidatesDropped != 6 {
		t.Fatalf("CandidatesDropped = %d, want 6", got.CandidatesDropped)
	}
	// Truncation copies; the caller's decision is untouched.
	if len(orig.Candidates) != 10 || orig.CandidatesDropped != 0 {
		t.Fatalf("truncate mutated the caller's decision: %d candidates, dropped %d",
			len(orig.Candidates), orig.CandidatesDropped)
	}
	// Below the cut nothing changes.
	small := tr.Events()[1].Args[0].Val.(ScheduleDecision)
	if len(small.Candidates) != 2 || small.CandidatesDropped != 0 {
		t.Fatalf("small decision modified: %+v", small)
	}
}

func TestHeaderRecordsControls(t *testing.T) {
	tr := New(nil)
	tr.SetControls(Controls{
		Default:         LevelDecision,
		Category:        map[string]Level{"runtime": LevelLifecycle, "chaos": LevelOff},
		SampleWorkloads: 0.25,
		TopK:            5,
	})
	h := tr.Header()
	if h.Trace != headerMagic || h.Version != 2 {
		t.Fatalf("header identity = %q v%d", h.Trace, h.Version)
	}
	if h.Level != "decision" || h.Sample != 0.25 || h.TopK != 5 || !h.Sampled {
		t.Fatalf("header controls = %+v", h)
	}
	// Category overrides are sorted so the header is byte-stable.
	if len(h.Levels) != 2 || h.Levels[0].Cat != "chaos" || h.Levels[1].Cat != "runtime" {
		t.Fatalf("header levels = %+v", h.Levels)
	}

	// The header rides as the first JSONL line and round-trips through the
	// streaming reader.
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadHeader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back == nil || back.Level != "decision" || back.Sample != 0.25 || back.TopK != 5 {
		t.Fatalf("header after round-trip = %+v", back)
	}
}
