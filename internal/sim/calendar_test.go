package sim

import (
	"math"
	"sort"
	"testing"
)

// queueKinds is the implementation matrix every queue-contract test runs
// over: the calendar queue (default) and the binary heap (oracle).
var queueKinds = []struct {
	name string
	kind QueueKind
}{
	{"calendar", QueueCalendar},
	{"heap", QueueHeap},
}

// TestCalendarDrainSorted pushes a scrambled time series through the
// calendar wheel — enough events to force several grow resizes, then drains
// through shrink resizes — and requires pops in exact (at, seq) order.
func TestCalendarDrainSorted(t *testing.T) {
	q := newCalendarQueue()
	rng := NewRNG(41)
	const n = 5000
	evs := make([]*event, n)
	for i := 0; i < n; i++ {
		at := rng.Uniform(0, 1000)
		if i%17 == 0 {
			at = float64(i % 97) // deliberate exact ties
		}
		evs[i] = &event{at: at, seq: uint64(i)}
		q.push(evs[i])
	}
	want := append([]*event(nil), evs...)
	sort.Slice(want, func(i, j int) bool {
		if want[i].at != want[j].at {
			return want[i].at < want[j].at
		}
		return want[i].seq < want[j].seq
	})
	for i, w := range want {
		got := q.pop()
		if got == nil {
			t.Fatalf("pop %d: queue empty early", i)
		}
		if got != w {
			t.Fatalf("pop %d: got (at=%v seq=%d), want (at=%v seq=%d)",
				i, got.at, got.seq, w.at, w.seq)
		}
	}
	if q.pop() != nil {
		t.Fatal("queue should be empty")
	}
}

// TestCalendarBucketBoundary schedules events exactly on bucket-width
// multiples, where floor(at/width) and the incremental window top are most
// likely to disagree; the direct-search fallback must keep order exact.
func TestCalendarBucketBoundary(t *testing.T) {
	q := newCalendarQueue()
	for i := 0; i < 64; i++ {
		q.push(&event{at: float64(i) * q.width, seq: uint64(i)})
	}
	last := math.Inf(-1)
	for i := 0; i < 64; i++ {
		ev := q.pop()
		if ev == nil {
			t.Fatalf("pop %d: empty", i)
		}
		if ev.at < last {
			t.Fatalf("pop %d: time went backwards (%v after %v)", i, ev.at, last)
		}
		last = ev.at
	}
}

// TestCalendarFarFuture parks one event far beyond the wheel's rotation and
// one near event; the near one must fire first and the far one must still be
// reachable (the direct-search fallback, and the saturating epoch guard for
// quotients beyond float precision).
func TestCalendarFarFuture(t *testing.T) {
	q := newCalendarQueue()
	far := &event{at: 1e18, seq: 1}
	near := &event{at: 1, seq: 2}
	q.push(far)
	q.push(near)
	if got := q.pop(); got != near {
		t.Fatalf("near event should pop first, got at=%v", got.at)
	}
	if got := q.pop(); got != far {
		t.Fatal("far event lost")
	}
	if q.pop() != nil {
		t.Fatal("queue should be empty")
	}
}

// TestEngineQueueKindsEquivalent runs one mixed workload (periodic tickers,
// one-shots, cancellations) on both queue kinds and requires identical fire
// logs — the in-package smoke version of the oracletest differential suite.
func TestEngineQueueKindsEquivalent(t *testing.T) {
	run := func(kind QueueKind) []float64 {
		e := NewEngineWithQueue(kind)
		var log []float64
		stop := e.Ticker(0.5, 1, func(now float64) { log = append(log, now) })
		var cancelled EventID
		e.After(2, func() {
			log = append(log, e.Now())
			cancelled = e.After(100, func() { log = append(log, -1) })
		})
		e.After(3, func() { e.Cancel(cancelled) })
		e.Schedule(7, func() { stop() })
		e.Run(10)
		return log
	}
	want := run(QueueHeap)
	got := run(QueueCalendar)
	if len(want) != len(got) {
		t.Fatalf("fire counts differ: heap %d vs calendar %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("fire %d: heap %v vs calendar %v", i, want[i], got[i])
		}
	}
}

// TestCancelAfterFire is the regression test for the recycled-record hazard:
// cancelling an event that already fired — after its record has been
// recycled into a NEW event — must be a no-op and must not destroy the new
// event, on both queue implementations.
func TestCancelAfterFire(t *testing.T) {
	for _, qk := range queueKinds {
		t.Run(qk.name, func(t *testing.T) {
			e := NewEngineWithQueue(qk.kind)
			fired := map[string]int{}
			stale := e.After(1, func() { fired["a"]++ })
			if !e.Step() {
				t.Fatal("step failed")
			}
			// The freelist now holds a's record; this Schedule reuses it.
			e.After(1, func() { fired["b"]++ })
			if e.Cancel(stale) {
				t.Error("cancel of an already-fired event reported success")
			}
			if got := e.Pending(); got != 1 {
				t.Fatalf("stale cancel corrupted the queue: %d pending, want 1", got)
			}
			e.RunAll()
			if fired["a"] != 1 || fired["b"] != 1 {
				t.Fatalf("fired = %v, want a:1 b:1", fired)
			}
		})
	}
}

// TestDoubleCancel cancels the same event twice: the first must succeed, the
// second must be a no-op even after the record has been reissued to a new
// event, on both queue implementations.
func TestDoubleCancel(t *testing.T) {
	for _, qk := range queueKinds {
		t.Run(qk.name, func(t *testing.T) {
			e := NewEngineWithQueue(qk.kind)
			fired := 0
			id := e.After(5, func() { fired++ })
			if !e.Cancel(id) {
				t.Fatal("first cancel should succeed")
			}
			if e.Cancel(id) {
				t.Error("second cancel reported success")
			}
			// Reissue the recycled record, then double-cancel again: the
			// stale id must not reach the new event through the freelist.
			e.After(1, func() { fired += 10 })
			if e.Cancel(id) {
				t.Error("stale cancel after reissue reported success")
			}
			if got := e.Pending(); got != 1 {
				t.Fatalf("%d pending, want 1", got)
			}
			e.RunAll()
			if fired != 10 {
				t.Fatalf("fired = %d, want 10 (survivor only)", fired)
			}
		})
	}
}

// TestCancelInsideCallback cancels the currently-firing event and a sibling
// from inside a callback: self-cancel is a no-op, sibling-cancel works, and
// the queue stays consistent on both implementations.
func TestCancelInsideCallback(t *testing.T) {
	for _, qk := range queueKinds {
		t.Run(qk.name, func(t *testing.T) {
			e := NewEngineWithQueue(qk.kind)
			var self, sibling EventID
			siblingFired := false
			self = e.After(1, func() {
				if e.Cancel(self) {
					t.Error("self-cancel of the firing event reported success")
				}
				if !e.Cancel(sibling) {
					t.Error("sibling cancel should succeed")
				}
			})
			sibling = e.After(2, func() { siblingFired = true })
			e.RunAll()
			if siblingFired {
				t.Error("cancelled sibling fired")
			}
			if e.Pending() != 0 {
				t.Fatalf("%d pending, want 0", e.Pending())
			}
		})
	}
}
