// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock in seconds and a pending-event queue.
// Events are closures scheduled at absolute virtual times; ties are broken by
// scheduling order so runs are fully deterministic. Recurring activities
// (progress integration, monitoring) are expressed as periodic ticks.
//
// Two queue implementations exist behind one contract: the default calendar
// queue (a bucketed timing wheel with O(1) amortized schedule/pop) and the
// original binary heap, kept as the reference oracle. Fire order — and
// therefore every trace byte — is identical between them; the differential
// tests in oracletest and FuzzCalendarVsHeap enforce it.
package sim

import (
	"fmt"
	"math"

	"quasar/internal/obs/prof"
)

// EventID identifies a scheduled event so it can be cancelled.
type EventID uint64

type event struct {
	at    float64
	seq   uint64
	id    EventID
	fn    func()
	index int   // queue position hint, -1 when popped or cancelled
	epoch int64 // calendar home window (floor(at/width)); owned by calendarQueue
}

// QueueKind selects the engine's pending-event queue implementation.
type QueueKind int

const (
	// QueueCalendar is the default: a bucketed timing wheel with O(1)
	// amortized schedule/pop.
	QueueCalendar QueueKind = iota
	// QueueHeap is the original container/heap core, kept as the reference
	// oracle for the differential and fuzz tests.
	QueueHeap
)

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now     float64
	q       eventQueue
	nextSeq uint64
	nextID  EventID
	live    map[EventID]*event
	fired   uint64
	// free recycles fired and cancelled event records so steady-state
	// operation allocates nothing per event: a long simulation's event
	// count is bounded only by virtual time, and one heap object per event
	// was the engine's dominant allocation.
	free []*event
	// Prof, when non-nil, attributes the queue machinery's wall time (pop,
	// clock advance, recycling — not the callbacks) to prof.SubSimStep. It
	// lives outside the determinism boundary: nothing it measures feeds back
	// into scheduling.
	Prof *prof.Profiler
}

// NewEngine returns an engine with the clock at zero and no pending events,
// on the default calendar queue.
func NewEngine() *Engine {
	return NewEngineWithQueue(QueueCalendar)
}

// NewEngineWithQueue returns an engine on the chosen queue implementation.
// Results are byte-identical across kinds; QueueHeap exists as the oracle
// for the differential tests and as an escape hatch.
func NewEngineWithQueue(kind QueueKind) *Engine {
	var q eventQueue
	switch kind {
	case QueueHeap:
		q = &heapQueue{}
	default:
		q = newCalendarQueue()
	}
	return &Engine{q: q, live: make(map[EventID]*event)}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn at virtual time at. Scheduling in the past (at < Now)
// panics: it indicates a logic error in the caller.
func (e *Engine) Schedule(at float64, fn func()) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %.6f before now %.6f", at, e.now))
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("sim: schedule at non-finite time %v", at))
	}
	e.nextID++
	e.nextSeq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.id, ev.fn = at, e.nextSeq, e.nextID, fn
	} else {
		ev = &event{at: at, seq: e.nextSeq, id: e.nextID, fn: fn} //lint:allow(hotalloc) freelist refill: amortized away once the event population peaks
	}
	e.q.push(ev)
	e.live[ev.id] = ev
	return ev.id
}

// recycle returns a popped or cancelled event record to the freelist. The
// fn reference is dropped so recycling never pins a closure's captures, and
// the id is cleared so a stale handle can never match a reused record.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.id = 0
	e.free = append(e.free, ev)
}

// After runs fn after delay seconds of virtual time.
func (e *Engine) After(delay float64, fn func()) EventID {
	return e.Schedule(e.now+delay, fn)
}

// Cancel removes a pending event. Cancelling an already-fired, already-
// cancelled, or unknown event is a safe no-op and returns false — a stale
// EventID must never touch a recycled record that now backs a newer event.
func (e *Engine) Cancel(id EventID) bool {
	if id == 0 {
		return false
	}
	ev, ok := e.live[id]
	if !ok || ev.id != id {
		// Not pending: fired, cancelled, or the id predates a restart. The
		// ev.id check is defense in depth — a live entry pointing at a
		// record the freelist already reissued would otherwise let this
		// cancel destroy an unrelated newer event.
		return false
	}
	delete(e.live, id)
	if !e.q.remove(ev) {
		// The queue disagrees with the live map; recycling here could hand
		// the same record to two future events, which is the corruption
		// this guard exists to make impossible.
		return false
	}
	e.recycle(ev)
	return true
}

// Pending reports the number of events waiting to fire.
func (e *Engine) Pending() int { return e.q.len() }

// NextAt reports the virtual time of the earliest pending event, and whether
// one exists. It never fires or removes anything — a status probe for live
// front ends (quasar-serve's /statusz).
func (e *Engine) NextAt() (float64, bool) { return e.q.peekAt() }

// Step fires the next event, advancing the clock to its time. It returns
// false when no events remain.
func (e *Engine) Step() bool {
	t0 := e.Prof.Begin()
	ev := e.q.pop()
	if ev == nil {
		e.Prof.End(prof.SubSimStep, t0)
		return false
	}
	delete(e.live, ev.id)
	e.now = ev.at
	e.fired++
	fn := ev.fn
	e.recycle(ev)
	// Close the sim-step section before dispatch: the callback's time belongs
	// to whichever subsystem it enters (runtime tick, scheduler, ...), not to
	// the queue core.
	e.Prof.End(prof.SubSimStep, t0)
	fn()
	return true
}

// Fired reports the number of events fired since construction (an engine
// health metric exported by the observability registry).
func (e *Engine) Fired() uint64 { return e.fired }

// Run fires events until the clock would pass until, or no events remain.
// The clock finishes exactly at until.
func (e *Engine) Run(until float64) {
	for {
		at, ok := e.q.peekAt()
		if !ok || at > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll fires every pending event, including ones scheduled by fired
// events, until the queue is empty.
func (e *Engine) RunAll() {
	for e.Step() {
	}
}

// Ticker schedules fn every period seconds starting at start, until the
// returned stop function is called. fn receives the tick time.
func (e *Engine) Ticker(start, period float64, fn func(now float64)) (stop func()) {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	stopped := false
	var tick func()
	at := start
	var id EventID
	tick = func() {
		if stopped {
			return
		}
		fn(e.now)
		at += period
		id = e.Schedule(at, tick)
	}
	id = e.Schedule(at, tick)
	return func() {
		stopped = true
		e.Cancel(id)
	}
}
