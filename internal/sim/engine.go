// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock in seconds and an event heap. Events
// are closures scheduled at absolute virtual times; ties are broken by
// scheduling order so runs are fully deterministic. Recurring activities
// (progress integration, monitoring) are expressed as periodic ticks.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// EventID identifies a scheduled event so it can be cancelled.
type EventID uint64

type event struct {
	at    float64
	seq   uint64
	id    EventID
	fn    func()
	index int // heap index, -1 when popped or cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	// Exact comparison is load-bearing: events at bit-identical times
	// must fall through to the seq tie-break for deterministic ordering.
	if h[i].at != h[j].at { //lint:allow(floatcmp)
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now     float64
	pq      eventHeap
	nextSeq uint64
	nextID  EventID
	live    map[EventID]*event
	fired   uint64
	// free recycles fired and cancelled event records so steady-state
	// operation allocates nothing per event: a long simulation's event
	// count is bounded only by virtual time, and one heap object per event
	// was the engine's dominant allocation.
	free []*event
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{live: make(map[EventID]*event)}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn at virtual time at. Scheduling in the past (at < Now)
// panics: it indicates a logic error in the caller.
func (e *Engine) Schedule(at float64, fn func()) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %.6f before now %.6f", at, e.now))
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("sim: schedule at non-finite time %v", at))
	}
	e.nextID++
	e.nextSeq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.id, ev.fn = at, e.nextSeq, e.nextID, fn
	} else {
		ev = &event{at: at, seq: e.nextSeq, id: e.nextID, fn: fn} //lint:allow(hotalloc) freelist refill: amortized away once the event population peaks
	}
	heap.Push(&e.pq, ev)
	e.live[ev.id] = ev
	return ev.id
}

// recycle returns a popped or cancelled event record to the freelist. The
// fn reference is dropped so recycling never pins a closure's captures.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// After runs fn after delay seconds of virtual time.
func (e *Engine) After(delay float64, fn func()) EventID {
	return e.Schedule(e.now+delay, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or unknown
// event is a no-op and returns false.
func (e *Engine) Cancel(id EventID) bool {
	ev, ok := e.live[id]
	if !ok || ev.index < 0 {
		return false
	}
	heap.Remove(&e.pq, ev.index)
	delete(e.live, id)
	e.recycle(ev)
	return true
}

// Pending reports the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.pq) }

// Step fires the next event, advancing the clock to its time. It returns
// false when no events remain.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(*event)
	delete(e.live, ev.id)
	e.now = ev.at
	e.fired++
	fn := ev.fn
	e.recycle(ev)
	fn()
	return true
}

// Fired reports the number of events fired since construction (an engine
// health metric exported by the observability registry).
func (e *Engine) Fired() uint64 { return e.fired }

// Run fires events until the clock would pass until, or no events remain.
// The clock finishes exactly at until.
func (e *Engine) Run(until float64) {
	for len(e.pq) > 0 && e.pq[0].at <= until {
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll fires every pending event, including ones scheduled by fired
// events, until the heap is empty.
func (e *Engine) RunAll() {
	for e.Step() {
	}
}

// Ticker schedules fn every period seconds starting at start, until the
// returned stop function is called. fn receives the tick time.
func (e *Engine) Ticker(start, period float64, fn func(now float64)) (stop func()) {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	stopped := false
	var tick func()
	at := start
	var id EventID
	tick = func() {
		if stopped {
			return
		}
		fn(e.now)
		at += period
		id = e.Schedule(at, tick)
	}
	id = e.Schedule(at, tick)
	return func() {
		stopped = true
		e.Cancel(id)
	}
}
