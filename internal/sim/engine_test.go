package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	e.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break violated at %d: %v", i, got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.Schedule(1, func() { fired = true })
	if !e.Cancel(id) {
		t.Fatal("cancel of pending event returned false")
	}
	if e.Cancel(id) {
		t.Fatal("double cancel returned true")
	}
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []float64
	ids := make([]EventID, 0, 20)
	for i := 1; i <= 20; i++ {
		at := float64(i)
		ids = append(ids, e.Schedule(at, func() { got = append(got, at) }))
	}
	// Cancel every third event.
	want := []float64{}
	for i := 1; i <= 20; i++ {
		if i%3 == 0 {
			e.Cancel(ids[i-1])
		} else {
			want = append(want, float64(i))
		}
	}
	e.RunAll()
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRunStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.Run(3)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want events at 1..3", fired)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
	e.Run(10)
	if len(fired) != 5 {
		t.Fatalf("fired %v after second run", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %v, want 10", e.Now())
	}
}

func TestSchedulingInsideEvent(t *testing.T) {
	e := NewEngine()
	count := 0
	var recur func()
	recur = func() {
		count++
		if count < 5 {
			e.After(1, recur)
		}
	}
	e.Schedule(0, recur)
	e.RunAll()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 4 {
		t.Fatalf("clock = %v, want 4", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(1, func() {})
}

func TestScheduleNaNPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling at NaN did not panic")
		}
	}()
	e.Schedule(math.NaN(), func() {})
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []float64
	stop := e.Ticker(0, 2, func(now float64) { ticks = append(ticks, now) })
	e.Run(7)
	if len(ticks) != 4 { // 0,2,4,6
		t.Fatalf("ticks = %v, want 4 ticks", ticks)
	}
	stop()
	e.Run(20)
	if len(ticks) != 4 {
		t.Fatalf("ticker kept firing after stop: %v", ticks)
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine()
	n := 0
	var stop func()
	stop = e.Ticker(1, 1, func(now float64) {
		n++
		if n == 3 {
			stop()
		}
	})
	e.Run(10)
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
}

func TestPending(t *testing.T) {
	e := NewEngine()
	if e.Pending() != 0 {
		t.Fatal("fresh engine has pending events")
	}
	e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Step()
	if e.Pending() != 1 {
		t.Fatalf("pending = %d after step, want 1", e.Pending())
	}
}

// Property: regardless of insertion order, events fire in nondecreasing time
// order.
func TestEventOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) > 200 {
			times = times[:200]
		}
		e := NewEngine()
		var fired []float64
		for _, raw := range times {
			at := float64(raw)
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		e.RunAll()
		if len(fired) != len(times) {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []float64 {
		e := NewEngine()
		g := NewRNG(42)
		var fired []float64
		for i := 0; i < 100; i++ {
			at := g.Uniform(0, 1000)
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		e.RunAll()
		return fired
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
