package sim

import (
	"encoding/binary"
	"fmt"
	"testing"
)

// fuzzDrive interprets raw fuzz bytes as an operation script — schedule,
// cancel, step, run — and replays it on one engine, returning the full
// observable log (fire order, clock, cancel results, pending counts). The
// decoding is total: every byte string is a valid script, so the fuzzer's
// whole input space exercises the queue.
func fuzzDrive(kind QueueKind, data []byte) []string {
	e := NewEngineWithQueue(kind)
	var log []string
	var ids []EventID
	i := 0
	next := func() byte {
		if i >= len(data) {
			return 0
		}
		b := data[i]
		i++
		return b
	}
	for i < len(data) {
		switch op := next() % 5; op {
		case 0, 1: // schedule at now + dt, dt from the next two bytes
			raw := uint16(next()) | uint16(next())<<8
			// Quarter-second grid up to ~16k seconds, with frequent exact
			// ties (small values repeat often in fuzzed inputs).
			dt := float64(raw) / 4
			label := len(ids)
			id := e.After(dt, func() {
				log = append(log, fmt.Sprintf("fire %d @%.9g pend=%d", label, e.Now(), e.Pending()))
			})
			ids = append(ids, id)
		case 2: // cancel a (possibly fired, possibly repeated) label
			if len(ids) > 0 {
				label := int(next()) % len(ids)
				ok := e.Cancel(ids[label])
				log = append(log, fmt.Sprintf("cancel %d -> %v pend=%d", label, ok, e.Pending()))
			}
		case 3: // step once
			ok := e.Step()
			log = append(log, fmt.Sprintf("step -> %v now=%.9g", ok, e.Now()))
		case 4: // bounded run
			dt := float64(next()) / 2
			e.Run(e.Now() + dt)
			log = append(log, fmt.Sprintf("run now=%.9g pend=%d", e.Now(), e.Pending()))
		}
	}
	// Drain: every surviving event's fire order is part of the comparison.
	for e.Step() {
	}
	log = append(log, fmt.Sprintf("end now=%.9g fired=%d", e.Now(), e.Fired()))
	return log
}

// FuzzCalendarVsHeap holds the calendar queue to the heap oracle under
// arbitrary interleaved Schedule/Cancel/Step/Run scripts: identical fire
// order, clock, cancel results, and pending counts. The seed corpus under
// testdata/fuzz replays in normal `go test` runs (the CI regression lane);
// `go test -fuzz=FuzzCalendarVsHeap ./internal/sim` explores further.
func FuzzCalendarVsHeap(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 4, 0, 0, 4, 0, 3, 3, 3})                         // two ties, steps
	f.Add([]byte{0, 255, 255, 1, 1, 0, 2, 0, 4, 200, 3, 3})          // far + near + cancel + run
	f.Add([]byte{1, 8, 0, 1, 8, 0, 1, 8, 0, 2, 1, 2, 1, 3, 2, 1, 3}) // triple tie, double cancel
	seed := make([]byte, 96)
	for j := range seed {
		seed[j] = byte(j * 7)
	}
	f.Add(seed)
	wide := make([]byte, 64)
	binary.LittleEndian.PutUint16(wide[1:], 60000) // far-future rung next to dense near ones
	f.Add(wide)
	f.Fuzz(func(t *testing.T, data []byte) {
		cal := fuzzDrive(QueueCalendar, data)
		heap := fuzzDrive(QueueHeap, data)
		if len(cal) != len(heap) {
			t.Fatalf("log lengths differ: calendar %d vs heap %d", len(cal), len(heap))
		}
		for j := range cal {
			if cal[j] != heap[j] {
				t.Fatalf("entry %d:\n  calendar: %s\n  heap:     %s", j, cal[j], heap[j])
			}
		}
	})
}
