package sim

import (
	"container/heap"
	"math"
)

// eventQueue is the engine's pending-event store. Two implementations exist:
// the original binary heap (the reference/oracle) and the calendar queue
// (the default). Both pop events in strictly increasing (at, seq) order —
// the engine's determinism contract — and the differential tests in
// oracletest plus FuzzCalendarVsHeap hold them byte-identical.
type eventQueue interface {
	// push inserts a pending event. ev.index is owned by the queue while
	// the event is inside it and is < 0 once popped or removed.
	push(ev *event)
	// pop removes and returns the minimum event by (at, seq), or nil when
	// the queue is empty.
	pop() *event
	// peekAt returns the minimum pending event time without removing it.
	peekAt() (float64, bool)
	// remove deletes a specific pending event. It reports false — and
	// leaves the queue untouched — when the event is not currently queued
	// (already fired, already removed, or recycled), so a stale handle can
	// never corrupt the structure.
	remove(ev *event) bool
	// len reports the number of pending events.
	len() int
}

// ---------------------------------------------------------------------------
// Binary-heap implementation (the original engine core, kept as the oracle).

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	// Exact comparison is load-bearing: events at bit-identical times
	// must fall through to the seq tie-break for deterministic ordering.
	if h[i].at != h[j].at { //lint:allow(floatcmp)
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// heapQueue adapts eventHeap to the eventQueue interface.
type heapQueue struct{ h eventHeap }

func (q *heapQueue) push(ev *event) { heap.Push(&q.h, ev) }

func (q *heapQueue) pop() *event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*event)
}

func (q *heapQueue) peekAt() (float64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

func (q *heapQueue) remove(ev *event) bool {
	if ev.index < 0 || ev.index >= len(q.h) || q.h[ev.index] != ev {
		return false
	}
	heap.Remove(&q.h, ev.index)
	return true
}

func (q *heapQueue) len() int { return len(q.h) }

// ---------------------------------------------------------------------------
// Calendar-queue implementation (Brown 1988: a bucketed timing wheel).
//
// Events hash into nbuck buckets by floor(at/width) mod nbuck; each bucket is
// kept sorted by (at, seq). A pop scans forward from the current "epoch" (the
// bucket-width window containing the last popped time) and harvests the first
// bucket head that falls inside the scanned window; one full rotation without
// a harvest falls back to a direct min search over all bucket heads, so
// far-future or boundary-misrounded events are found regardless of window
// arithmetic. The bucket count doubles/halves with the population (keeping
// 0.5 <= n/nbuck <= 2) and the width is re-derived from the live event span
// at each resize, so schedule and pop stay O(1) amortized.
//
// Determinism: every operation is a pure function of the operation sequence
// — there is no randomization and no reliance on map order — and two events
// share a bucket iff they can tie on time (equal at hashes identically), so
// the (at, seq) tie-break inside a bucket is the global tie-break.

// calMinBuckets is the floor bucket count; tiny queues stay a 2-bucket wheel.
const calMinBuckets = 2

// calMaxSafeEpoch bounds window arithmetic to the range where float64 still
// resolves individual widths; beyond it the queue serves pops by direct
// search only (order stays correct, speed degrades, precision was already
// gone at that magnitude).
const calMaxSafeEpoch = int64(1) << 52

type calendarQueue struct {
	buckets [][]*event
	width   float64
	nbuck   int // power of two
	mask    int
	n       int
	// epoch is the window index (floor(lastAt/width)) pops resume scanning
	// from; lastAt is the time of the last popped event. Events are only
	// ever scheduled at or after the engine clock, which pops keep equal to
	// lastAt, so no pending event can hash below the epoch window.
	epoch  int64
	lastAt float64
	// spill is resize scratch, reused so redistributions stop allocating
	// once the queue has seen its peak population.
	spill []*event
	// Width-staleness tracking. The width is only re-derived from the live
	// event span at resize time; a population that stabilizes (no more
	// doubling/halving) would otherwise keep an early, unrepresentative
	// width forever — the classic calendar-queue degradation. Pops count
	// their window-scan effort; when the average effort is high, the wheel
	// rebuilds at the same size to refresh the width. sinceResize gates the
	// heuristics so a degenerate distribution (e.g. all events at one time,
	// where no width helps) cannot trigger rebuild loops: rebuild cost stays
	// O(1) amortized per operation.
	scanAcc     int64
	popAcc      int64
	sinceResize int
}

func newCalendarQueue() *calendarQueue {
	q := &calendarQueue{width: 1, nbuck: calMinBuckets, mask: calMinBuckets - 1}
	q.buckets = make([][]*event, calMinBuckets)
	return q
}

// less orders events by (at, seq) — the engine's global fire order.
func (q *calendarQueue) less(a, b *event) bool {
	if a.at != b.at { //lint:allow(floatcmp) equal times must fall through to the seq tie-break
		return a.at < b.at
	}
	return a.seq < b.seq
}

// epochOf maps a time to its window index, saturating at calMaxSafeEpoch so
// conversion of enormous quotients never overflows int64.
func (q *calendarQueue) epochOf(at float64) int64 {
	t := at / q.width
	if t >= float64(calMaxSafeEpoch) {
		return calMaxSafeEpoch
	}
	if t < 0 {
		return 0
	}
	return int64(t)
}

func (q *calendarQueue) push(ev *event) {
	// The home window is computed once and stored: harvest decisions compare
	// stored epochs, never re-derived float quotients, so boundary rounding
	// cannot strand an event in a window that refuses to admit it. Order
	// stays exact because floor(at/width) is monotone in at — an event of a
	// higher epoch can never be earlier than one of a lower epoch.
	ev.epoch = q.epochOf(ev.at)
	bi := int(ev.epoch) & q.mask
	b := q.buckets[bi]
	// Binary search for the insertion point; appends at the tail in the
	// common case (seq grows monotonically, times mostly do too).
	lo, hi := 0, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.less(b[mid], ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b = append(b, nil)
	copy(b[lo+1:], b[lo:])
	b[lo] = ev
	q.buckets[bi] = b
	ev.index = bi
	q.n++
	q.sinceResize++
	switch {
	case q.n > 2*q.nbuck:
		q.resize(q.nbuck * 2)
	case len(b) >= 32 && len(b) > 8*(q.n/q.nbuck+1) && q.sinceResize > q.n:
		// One bucket is absorbing far more than its share: the width no
		// longer matches the event distribution. Rebuild at the same size
		// to re-derive it.
		q.resize(q.nbuck)
	}
}

// search locates the next event to fire: the bucket holding it, the epoch at
// which the scan found it, and the scan effort (windows visited). It does
// not mutate the queue, so peeks are free of side effects; pop commits the
// returned epoch and accounts the effort.
func (q *calendarQueue) search() (bi int, ep int64, effort int, ok bool) {
	if q.n == 0 {
		return 0, 0, 0, false
	}
	ep = q.epoch
	if ep < calMaxSafeEpoch {
		for i := 0; i < q.nbuck; i++ {
			bi = int(ep) & q.mask
			b := q.buckets[bi]
			// Harvest when the head's stored home window is the scanned
			// one. Heads of earlier windows cannot exist (pending events
			// never precede the last pop), and a head of a later window
			// shadows nothing: events sharing its bucket all belong to
			// later rotations.
			if len(b) > 0 && b[0].epoch == ep {
				return bi, ep, i + 1, true
			}
			ep++
		}
	}
	// Direct search: one full rotation found nothing in its own window —
	// everything pending is at least a rotation ahead. The global min is
	// the smallest bucket head; distinct buckets cannot tie on time (equal
	// times share an epoch, hence a bucket), but compare (at, seq) anyway
	// so the invariant never rests on hashing.
	var best *event
	bi = -1
	for i := range q.buckets {
		b := q.buckets[i]
		if len(b) == 0 {
			continue
		}
		if best == nil || q.less(b[0], best) {
			best = b[0]
			bi = i
		}
	}
	return bi, best.epoch, 2 * q.nbuck, true
}

func (q *calendarQueue) pop() *event {
	bi, ep, effort, ok := q.search()
	if !ok {
		return nil
	}
	b := q.buckets[bi]
	ev := b[0]
	copy(b, b[1:])
	b[len(b)-1] = nil
	q.buckets[bi] = b[:len(b)-1]
	ev.index = -1
	q.n--
	q.epoch = ep
	q.lastAt = ev.at
	q.sinceResize++
	q.scanAcc += int64(effort)
	q.popAcc++
	switch {
	case q.n < q.nbuck/2 && q.nbuck > calMinBuckets:
		q.resize(q.nbuck / 2)
	case q.popAcc >= 256 && q.scanAcc > 8*q.popAcc && q.sinceResize > q.n:
		// Pops are wading through empty windows: the width is too small for
		// the live distribution. Rebuild at the same size to refresh it.
		q.resize(q.nbuck)
	}
	return ev
}

func (q *calendarQueue) peekAt() (float64, bool) {
	bi, _, _, ok := q.search()
	if !ok {
		return 0, false
	}
	return q.buckets[bi][0].at, true
}

func (q *calendarQueue) remove(ev *event) bool {
	bi := ev.index
	if bi < 0 || bi >= len(q.buckets) {
		return false
	}
	b := q.buckets[bi]
	for i, e := range b {
		if e == ev {
			copy(b[i:], b[i+1:])
			b[len(b)-1] = nil
			q.buckets[bi] = b[:len(b)-1]
			ev.index = -1
			q.n--
			if q.n < q.nbuck/2 && q.nbuck > calMinBuckets {
				q.resize(q.nbuck / 2)
			}
			return true
		}
	}
	return false
}

func (q *calendarQueue) len() int { return q.n }

// resize rebuilds the wheel with nbuck buckets and a width re-derived from
// the live event span, redistributing every pending event. Cost is O(n) per
// resize; doubling/halving thresholds make it O(1) amortized per operation.
func (q *calendarQueue) resize(nbuck int) {
	spill := q.spill[:0]
	minAt, maxAt := math.Inf(1), math.Inf(-1)
	for i := range q.buckets {
		for _, ev := range q.buckets[i] {
			//lint:allow(hotalloc) resize spill: grows to peak population once, then reused
			spill = append(spill, ev)
			if ev.at < minAt {
				minAt = ev.at
			}
			if ev.at > maxAt {
				maxAt = ev.at
			}
		}
		q.buckets[i] = q.buckets[i][:0]
	}
	if nbuck > len(q.buckets) {
		//lint:allow(hotalloc) wheel growth: amortized away once the queue reaches its peak population
		q.buckets = append(q.buckets, make([][]*event, nbuck-len(q.buckets))...)
	}
	q.nbuck = nbuck
	q.mask = nbuck - 1
	// Width: three mean inter-event gaps, so a window holds a handful of
	// events; degenerate spans (empty, single time) keep the previous width.
	if len(spill) > 1 && maxAt > minAt {
		w := 3 * (maxAt - minAt) / float64(len(spill))
		if w > 1e-12 && !math.IsInf(w, 0) {
			q.width = w
		}
	}
	q.epoch = q.epochOf(q.lastAt)
	q.scanAcc, q.popAcc, q.sinceResize = 0, 0, 0
	q.n = 0 // push re-counts each reinserted event
	for i, ev := range spill {
		q.push(ev)
		spill[i] = nil // don't pin fired closures through the scratch buffer
	}
	q.spill = spill[:0]
	// Redistribution runs through push, which bumps the op counters; reset
	// so the cooldown starts from this rebuild.
	q.scanAcc, q.popAcc, q.sinceResize = 0, 0, 0
}
