// Package oracletest differentially tests the sim engine's calendar-queue
// event core against the original binary heap, which is kept in-tree as the
// oracle. Both engines replay identical randomized Schedule/After/Cancel/
// Step/Run sequences; the fire logs — event label, fire time, engine clock,
// pending count — must match exactly, and so must every Cancel result. The
// sequences are seeded from sim.RNG substreams, so a failure replays
// deterministically from the printed substream index.
package oracletest

import (
	"fmt"
	"testing"

	"quasar/internal/sim"
)

// opTrace drives one engine through a scripted operation sequence and
// records everything observable: fire order, clock readings, cancel
// outcomes, pending counts.
type opTrace struct {
	eng *sim.Engine
	log []string
	ids []sim.EventID // ids in scheduling order; index = label
}

func newOpTrace(kind sim.QueueKind) *opTrace {
	return &opTrace{eng: sim.NewEngineWithQueue(kind)}
}

func (tr *opTrace) schedule(dt float64) {
	label := len(tr.ids)
	id := tr.eng.After(dt, func() {
		tr.log = append(tr.log, fmt.Sprintf("fire %d @%.9g pend=%d", label, tr.eng.Now(), tr.eng.Pending()))
	})
	tr.ids = append(tr.ids, id)
}

func (tr *opTrace) cancel(label int) {
	if label >= len(tr.ids) {
		return
	}
	ok := tr.eng.Cancel(tr.ids[label])
	tr.log = append(tr.log, fmt.Sprintf("cancel %d -> %v pend=%d", label, ok, tr.eng.Pending()))
}

func (tr *opTrace) step() {
	ok := tr.eng.Step()
	tr.log = append(tr.log, fmt.Sprintf("step -> %v now=%.9g", ok, tr.eng.Now()))
}

func (tr *opTrace) run(dt float64) {
	tr.eng.Run(tr.eng.Now() + dt)
	tr.log = append(tr.log, fmt.Sprintf("run now=%.9g pend=%d fired=%d", tr.eng.Now(), tr.eng.Pending(), tr.eng.Fired()))
}

// driveBoth replays one op sequence (drawn from rng) on a calendar engine
// and a heap engine and returns both logs. The rng is consumed once and the
// drawn script is applied to both engines, so the engines cannot diverge
// through the random stream itself.
func driveBoth(rng *sim.RNG, ops int) (cal, heap []string) {
	a := newOpTrace(sim.QueueCalendar)
	b := newOpTrace(sim.QueueHeap)
	for i := 0; i < ops; i++ {
		switch k := rng.Intn(10); {
		case k < 4: // schedule: mixed horizons, frequent ties
			dt := rng.Exponential(5)
			if rng.Bool(0.2) {
				dt = float64(rng.Intn(4)) // exact integer offsets force ties
			}
			if rng.Bool(0.02) {
				dt = 1e9 * rng.Float64() // far-future outlier
			}
			a.schedule(dt)
			b.schedule(dt)
		case k < 6: // cancel a random label: live, fired, or repeated
			label := 0
			if n := len(a.ids); n > 0 {
				label = rng.Intn(n)
			}
			a.cancel(label)
			b.cancel(label)
		case k < 9: // single step
			a.step()
			b.step()
		default: // bounded run
			dt := rng.Uniform(0, 20)
			a.run(dt)
			b.run(dt)
		}
	}
	// Drain both completely so every surviving event's order is compared.
	a.run(1e12)
	b.run(1e12)
	for a.eng.Step() {
		a.log = append(a.log, "tail")
	}
	for b.eng.Step() {
		b.log = append(b.log, "tail")
	}
	return a.log, b.log
}

// TestCalendarMatchesHeapOracle replays randomized schedule/cancel/step
// interleavings across many independent substreams and requires the
// calendar engine's observable behavior to match the heap oracle's exactly.
func TestCalendarMatchesHeapOracle(t *testing.T) {
	streams := 30
	ops := 400
	if testing.Short() {
		streams, ops = 8, 150
	}
	subs := sim.NewRNG(20260808).Substreams("sim-oracle", streams)
	for i, rng := range subs {
		cal, heap := driveBoth(rng, ops)
		if len(cal) != len(heap) {
			t.Fatalf("substream %d: log lengths differ: calendar %d vs heap %d", i, len(cal), len(heap))
		}
		for j := range cal {
			if cal[j] != heap[j] {
				t.Fatalf("substream %d, entry %d:\n  calendar: %s\n  heap:     %s", i, j, cal[j], heap[j])
			}
		}
	}
}

// TestCalendarMatchesHeapDense floods both engines with short-horizon ticks
// (the simulator's steady-state shape: thousands of periodic events inside a
// narrow window) and compares the full drain order.
func TestCalendarMatchesHeapDense(t *testing.T) {
	n := 4000
	if testing.Short() {
		n = 800
	}
	run := func(kind sim.QueueKind) []string {
		tr := newOpTrace(kind)
		rng := sim.NewRNG(99)
		for i := 0; i < n; i++ {
			tr.schedule(rng.Uniform(0, 50))
		}
		for i := 0; i < n/4; i++ {
			tr.cancel(rng.Intn(n))
		}
		tr.run(1e9)
		return tr.log
	}
	cal, heap := run(sim.QueueCalendar), run(sim.QueueHeap)
	if len(cal) != len(heap) {
		t.Fatalf("log lengths differ: calendar %d vs heap %d", len(cal), len(heap))
	}
	for j := range cal {
		if cal[j] != heap[j] {
			t.Fatalf("entry %d:\n  calendar: %s\n  heap:     %s", j, cal[j], heap[j])
		}
	}
}
