package sim

import (
	"math"
	"math/rand"
	"strconv"
)

// RNG wraps a deterministic random source with the distributions the
// simulator needs. Separate named streams keep experiment components
// independent: adding draws to one stream never perturbs another.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Stream derives an independent generator for the named component. The
// derivation mixes the name into the seed with an FNV-style hash, so streams
// with different names are decorrelated.
func (g *RNG) Stream(name string) *RNG {
	const (
		offset = 1469598103934665603
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	// Mix with a draw from the parent so identical names under different
	// parents diverge.
	h ^= g.r.Uint64()
	return NewRNG(int64(h))
}

// Substreams derives n independent generators for the tasks of a parallel
// fan-out, named name:0 … name:n-1. Derivation happens sequentially on the
// calling goroutine in input order, so the parent's draw sequence — and
// therefore every substream — is identical no matter how many workers later
// consume them. Callers hand substream i to task i and must not share a
// substream across tasks.
func (g *RNG) Substreams(name string, n int) []*RNG {
	subs := make([]*RNG, n)
	for i := range subs {
		subs[i] = g.Stream(name + ":" + strconv.Itoa(i))
	}
	return subs
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uniform returns a uniform value in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// Intn returns a uniform integer in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Normal returns a normal draw with the given mean and standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// LogNormal returns exp(N(mu, sigma)).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Exponential returns an exponential draw with the given mean.
func (g *RNG) Exponential(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Pareto returns a bounded Pareto draw with shape alpha on [lo, hi].
func (g *RNG) Pareto(alpha, lo, hi float64) float64 {
	u := g.r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Jitter returns x multiplied by a log-normal factor with the given
// coefficient of variation; used for measurement noise.
func (g *RNG) Jitter(x, cv float64) float64 {
	if cv <= 0 {
		return x
	}
	sigma := math.Sqrt(math.Log(1 + cv*cv))
	return x * g.LogNormal(-sigma*sigma/2, sigma)
}

// splitmix64 advances and mixes a 64-bit state; the standard stateless
// avalanche step (Steele et al.), strong enough to decorrelate adjacent
// seeds.
func splitmix64(state uint64) uint64 {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// HashNormal is a stateless standard-normal draw derived purely from seed
// via splitmix64 and Box-Muller. The same seed always yields the same value,
// so call sites that need "the same noise for the same bucket" (loadgen's
// per-bucket noise) get determinism without constructing a generator per
// query — building a math/rand state is a multi-kilobyte allocation.
func HashNormal(seed int64) float64 {
	h1 := splitmix64(uint64(seed))
	h2 := splitmix64(uint64(seed) + 0x632be59bd9b4e019)
	// Two uniforms from the top 53 bits; u1 in (0,1] so the log is finite.
	u1 := (float64(h1>>11) + 1) / (1 << 53)
	u2 := float64(h2>>11) / (1 << 53)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// HashJitter is the stateless counterpart of Jitter: it multiplies x by a
// log-normal factor with the given coefficient of variation, derived purely
// from seed.
func HashJitter(seed int64, x, cv float64) float64 {
	if cv <= 0 {
		return x
	}
	sigma := math.Sqrt(math.Log(1 + cv*cv))
	return x * math.Exp(-sigma*sigma/2+sigma*HashNormal(seed))
}
