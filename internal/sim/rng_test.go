package sim

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestStreamsIndependent(t *testing.T) {
	g := NewRNG(7)
	s1 := g.Stream("alpha")
	s2 := g.Stream("beta")
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Float64() == s2.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams look correlated: %d identical draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(1)
	f := func(seed int64) bool {
		v := g.Uniform(10, 20)
		return v >= 10 && v < 20
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(3)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := g.Normal(5, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("mean = %v, want ~5", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Fatalf("variance = %v, want ~4", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	g := NewRNG(4)
	for i := 0; i < 1000; i++ {
		if g.LogNormal(0, 1) <= 0 {
			t.Fatal("lognormal produced non-positive value")
		}
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exponential(3)
	}
	if mean := sum / n; math.Abs(mean-3) > 0.05 {
		t.Fatalf("mean = %v, want ~3", mean)
	}
}

func TestParetoBounds(t *testing.T) {
	g := NewRNG(6)
	for i := 0; i < 10000; i++ {
		v := g.Pareto(1.5, 2, 100)
		if v < 2 || v > 100 {
			t.Fatalf("pareto draw %v outside [2,100]", v)
		}
	}
}

func TestJitterUnbiased(t *testing.T) {
	g := NewRNG(8)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Jitter(10, 0.05)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Fatalf("jitter mean = %v, want ~10 (unbiased)", mean)
	}
	if g.Jitter(10, 0) != 10 {
		t.Fatal("zero-cv jitter changed the value")
	}
}

func TestBoolProbability(t *testing.T) {
	g := NewRNG(9)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", p)
	}
}

func TestSubstreamsMatchSequentialDerivation(t *testing.T) {
	a := NewRNG(11)
	subs := a.Substreams("probe", 4)

	b := NewRNG(11)
	for i, sub := range subs {
		want := b.Stream("probe:" + strconv.Itoa(i))
		for k := 0; k < 10; k++ {
			if got, exp := sub.Float64(), want.Float64(); got != exp {
				t.Fatalf("substream %d draw %d: %v != %v", i, k, got, exp)
			}
		}
	}
	// Parent state after derivation must match too, so later draws agree.
	if a.Float64() != b.Float64() {
		t.Fatal("parent state diverged after Substreams")
	}
}

func TestSubstreamsDecorrelated(t *testing.T) {
	subs := NewRNG(5).Substreams("x", 3)
	if subs[0].Float64() == subs[1].Float64() && subs[1].Float64() == subs[2].Float64() {
		t.Fatal("substreams look identical")
	}
}
