package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

// engineTrace runs a randomized event storm on a fresh engine and
// serializes the full firing order: event times interleaved with draws
// from every RNG distribution. Two runs with the same seed must produce
// byte-identical traces — the contract every experiment in this
// repository depends on.
func engineTrace(seed int64) []byte {
	type record struct {
		At    float64 `json:"at"`
		Label string  `json:"label"`
		Draw  float64 `json:"draw"`
	}
	eng := NewEngine()
	rng := NewRNG(seed)
	var trace []record
	var spawn func(label string, depth int)
	spawn = func(label string, depth int) {
		eng.After(rng.Exponential(1.5), func() {
			draw := rng.Float64()
			trace = append(trace, record{At: eng.Now(), Label: label, Draw: draw})
			if depth < 3 {
				for i := 0; i < rng.Intn(3); i++ {
					spawn(fmt.Sprintf("%s/%d", label, i), depth+1)
				}
			}
		})
	}
	for i := 0; i < 20; i++ {
		spawn(fmt.Sprintf("root%d", i), 0)
	}
	stream := rng.Stream("ticker")
	stop := eng.Ticker(0.5, 1.0, func(now float64) {
		trace = append(trace, record{At: now, Label: "tick", Draw: stream.Normal(0, 1)})
	})
	eng.Run(25)
	stop()
	eng.RunAll()
	out, err := json.Marshal(trace)
	if err != nil {
		panic(err)
	}
	return out
}

func TestEngineDeterminism(t *testing.T) {
	const seed = 42
	first := engineTrace(seed)
	second := engineTrace(seed)
	if !bytes.Equal(first, second) {
		t.Fatalf("same seed produced different traces:\n%.200s\nvs\n%.200s", first, second)
	}
	if other := engineTrace(seed + 1); bytes.Equal(first, other) {
		t.Fatal("different seeds produced identical traces; trace is not exercising the RNG")
	}
}
