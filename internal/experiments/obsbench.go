package experiments

import (
	"encoding/json"
	"io"
	"os"
	"runtime"

	"quasar/internal/loadgen"
	"quasar/internal/perfmodel"
	"quasar/internal/workload"
)

// ObsBenchConfig sizes the tracer-overhead benchmark: one Table 2-sized
// Quasar run with the tracer off and one with it on, timed on the wall clock.
type ObsBenchConfig struct {
	Hadoop, Spark, Storm int
	Services             int
	SingleNode           int
	BestEffort           int
	HorizonSecs          float64
	Seed                 int64
	// Repeats takes the minimum wall time over this many runs per mode to
	// damp scheduler noise (default 3).
	Repeats int
}

// DefaultObsBenchConfig returns a Table 2-sized mix.
func DefaultObsBenchConfig() ObsBenchConfig {
	return ObsBenchConfig{
		Hadoop: 4, Spark: 2, Storm: 2, Services: 4, SingleNode: 20, BestEffort: 30,
		HorizonSecs: 12000, Seed: 7, Repeats: 3,
	}
}

// ObsBenchResult is the tracer-overhead record committed as BENCH_obs.json.
// Timings come from the wall clock, so only OverheadFrac is meaningful
// across hosts; the event count is deterministic.
type ObsBenchResult struct {
	CPUs         int     `json:"cpus"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Repeats      int     `json:"repeats"`
	Workloads    int     `json:"workloads"`
	HorizonSecs  float64 `json:"horizon_secs"`
	OffSecs      float64 `json:"tracer_off_secs"`
	OnSecs       float64 `json:"tracer_on_secs"`
	OverheadFrac float64 `json:"overhead_frac"`
	Events       int     `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// TracerBytes is the deterministic cumulative size estimate of the
	// accepted event stream (the tracer_bytes gauge); TracerHighWater is the
	// maximum memory the sink pipeline retained at any moment during the
	// traced run.
	TracerBytes     int64 `json:"tracer_bytes"`
	TracerHighWater int   `json:"tracer_high_water_bytes"`
}

// obsBenchRun executes one full scenario and returns it (for event counts).
// The same Table 2-sized run backs both overhead benchmarks: tracer on/off
// here, SLO engine on/off in SLOBench.
func obsBenchRun(cfg ObsBenchConfig, traced, slo bool) (*Scenario, error) {
	s, err := NewScenario(ScenarioConfig{
		Cluster: Local40, Manager: KindQuasar, Seed: cfg.Seed,
		MaxNodes: 4, SeedLib: 3, Trace: traced, SLO: slo,
	})
	if err != nil {
		return nil, err
	}
	at := 0.0
	submit := func(spec workload.Spec) {
		w := s.U.New(spec)
		var load loadgen.Pattern
		if w.Type.Class() == perfmodel.LatencyCritical {
			load = loadgen.Fluctuating{Min: 0.4 * w.Target.QPS, Max: 0.9 * w.Target.QPS, Period: 6000}
		}
		s.RT.Submit(w, at, load)
		at += 5
	}
	for i := 0; i < cfg.Hadoop; i++ {
		submit(workload.Spec{Type: workload.Hadoop, Family: i % 3, MaxNodes: 3, TargetSlack: 1.2,
			Dataset: workload.Dataset{Name: "bench", SizeGB: 20, WorkMult: 1.5, MemMult: 1}})
	}
	for i := 0; i < cfg.Spark; i++ {
		submit(workload.Spec{Type: workload.Spark, Family: i % 3, MaxNodes: 3, TargetSlack: 1.2,
			Dataset: workload.Dataset{Name: "bench", SizeGB: 20, WorkMult: 4, MemMult: 1}})
	}
	for i := 0; i < cfg.Storm; i++ {
		submit(workload.Spec{Type: workload.Storm, Family: i % 3, MaxNodes: 3, TargetSlack: 1.2,
			Dataset: workload.Dataset{Name: "bench", SizeGB: 20, WorkMult: 6, MemMult: 1}})
	}
	svcTypes := []workload.Type{workload.Webserver, workload.Memcached, workload.Cassandra}
	for i := 0; i < cfg.Services; i++ {
		submit(workload.Spec{Type: svcTypes[i%3], Family: -1, MaxNodes: 3})
	}
	for i := 0; i < cfg.SingleNode; i++ {
		submit(workload.Spec{Type: workload.SingleNode, Family: -1, TargetSlack: 1.3})
	}
	for i := 0; i < cfg.BestEffort; i++ {
		submit(workload.Spec{Type: workload.SingleNode, Family: -1, BestEffort: true})
	}
	s.RT.Run(cfg.HorizonSecs)
	s.RT.Stop()
	return s, nil
}

// ObsBench measures the tracer's overhead: minimum-of-Repeats wall time with
// the tracer off vs on, plus the (deterministic) event volume of the traced
// run.
func ObsBench(cfg ObsBenchConfig) (*ObsBenchResult, error) {
	if cfg.Repeats <= 0 {
		cfg.Repeats = 3
	}
	res := &ObsBenchResult{
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Repeats:    cfg.Repeats,
		Workloads: cfg.Hadoop + cfg.Spark + cfg.Storm + cfg.Services +
			cfg.SingleNode + cfg.BestEffort,
		HorizonSecs: cfg.HorizonSecs,
	}
	timeRun := func(traced bool) (float64, *Scenario, error) {
		best := 0.0
		var last *Scenario
		for i := 0; i < cfg.Repeats; i++ {
			start := wallClock()
			s, err := obsBenchRun(cfg, traced, false)
			elapsed := wallClock().Sub(start).Seconds()
			if err != nil {
				return 0, nil, err
			}
			if i == 0 || elapsed < best {
				best = elapsed
			}
			last = s
		}
		return best, last, nil
	}
	off, _, err := timeRun(false)
	if err != nil {
		return nil, err
	}
	on, traced, err := timeRun(true)
	if err != nil {
		return nil, err
	}
	res.OffSecs, res.OnSecs = off, on
	if off > 0 {
		res.OverheadFrac = (on - off) / off
	}
	res.Events = traced.Tracer.Len()
	if on > 0 {
		res.EventsPerSec = float64(res.Events) / on
	}
	res.TracerBytes = traced.Tracer.BytesEstimate()
	_, res.TracerHighWater = traced.Tracer.RetainedBytes()
	return res, nil
}

// Print renders the comparison.
func (r *ObsBenchResult) Print(w io.Writer) {
	fprintf(w, "== Tracer overhead benchmark (%d CPUs, min of %d) ==\n", r.CPUs, r.Repeats)
	fprintf(w, "%d workloads, %.0fs horizon\n", r.Workloads, r.HorizonSecs)
	fprintf(w, "tracer off: %8.3fs\n", r.OffSecs)
	fprintf(w, "tracer on:  %8.3fs  (%+.1f%% overhead)\n", r.OnSecs, 100*r.OverheadFrac)
	fprintf(w, "events: %d (%.0f events/sec of bench wall time)\n", r.Events, r.EventsPerSec)
	fprintf(w, "tracer memory: %d bytes accepted, %d bytes high water\n",
		r.TracerBytes, r.TracerHighWater)
}

// WriteJSON writes the result to path.
func (r *ObsBenchResult) WriteJSON(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
