package experiments

import "testing"

// TestSLOBenchOverheadBounded checks the PR's performance bar: attaching the
// SLO engine to a full Table 2-sized run must cost under 5% wall time.
// Wall-clock comparisons are noisy in CI, so the bound gets a few attempts
// before the test fails.
func TestSLOBenchOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("times the bench mix several times over")
	}
	const limit = 0.05
	cfg := DefaultSLOBenchConfig()
	// A shorter horizon and fewer repeats keep the timing loop tolerable
	// while still exercising thousands of monitored ticks per mode.
	cfg.Mix.HorizonSecs = 8000
	cfg.Mix.Repeats = 2
	var last *SLOBenchResult
	for attempt := 0; attempt < 3; attempt++ {
		res, err := SLOBench(cfg)
		if err != nil {
			t.Fatal(err)
		}
		last = res
		if res.OverheadFrac < limit {
			if res.TrackedWorkloads == 0 {
				t.Fatalf("monitored run tracked no workloads: %+v", res)
			}
			return
		}
		t.Logf("attempt %d: slo overhead %.1f%% (off %.3fs, on %.3fs)",
			attempt, 100*res.OverheadFrac, res.OffSecs, res.OnSecs)
	}
	t.Errorf("slo overhead %.1f%% exceeds %.0f%% on every attempt (off %.3fs, on %.3fs)",
		100*last.OverheadFrac, 100*limit, last.OffSecs, last.OnSecs)
}
