package experiments

import "testing"

// TestChaosBenchDetectorOverheadBounded checks the PR's performance bar: the
// heartbeat failure detector must cost under 5% wall time on a healthy run.
// Wall-clock comparisons are noisy in CI, so the bound gets a few attempts
// before the test fails.
func TestChaosBenchDetectorOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("times the availability mix several times over")
	}
	const limit = 0.05
	cfg := DefaultChaosBenchConfig()
	// A shorter horizon and fewer repeats keep the timing loop tolerable
	// while still running hundreds of detector heartbeats per mode.
	cfg.Avail.HorizonSecs = 8000
	cfg.Repeats = 2
	var last *ChaosBenchResult
	for attempt := 0; attempt < 3; attempt++ {
		res, err := ChaosBench(cfg)
		if err != nil {
			t.Fatal(err)
		}
		last = res
		if res.DetectorOverheadFrac < limit {
			if res.Faults.Total() == 0 {
				t.Fatalf("storm mode injected no faults: %+v", res.Faults)
			}
			return
		}
		t.Logf("attempt %d: detector overhead %.1f%% (healthy %.3fs, detector %.3fs)",
			attempt, 100*res.DetectorOverheadFrac, res.HealthySecs, res.DetectorSecs)
	}
	t.Errorf("detector overhead %.1f%% exceeds %.0f%% on every attempt (healthy %.3fs, detector %.3fs)",
		100*last.DetectorOverheadFrac, 100*limit, last.HealthySecs, last.DetectorSecs)
}
