package experiments

import (
	"fmt"
	"io"
	"math"

	"quasar/internal/cluster"
	"quasar/internal/core"
	"quasar/internal/loadgen"
	"quasar/internal/perfmodel"
	"quasar/internal/slo"
	"quasar/internal/workload"
)

// The SLO detection experiment scores the burn-rate alerting pipeline
// against scripted ground truth: a deterministic crash storm takes down
// servers whose resident workloads are recorded at the instant of the crash,
// and every page the SLO engine fires is attributed (or not) to one of those
// outages. Because the faults are scripted rather than drawn from the chaos
// RNG, precision, recall, and detection latency are exact — no inference
// about what "really" went wrong is needed.

// SLODetectConfig sizes the detection experiment.
type SLODetectConfig struct {
	// Workload mix. Services are pinned to one node each (MaxNodes 1) under
	// a load one node can comfortably serve: losing that node is a total
	// capacity loss, so a crash is a clean ground-truth SLO violation, while
	// the otherwise comfortable cluster keeps the no-fault baseline quiet.
	Services   int
	SingleNode int
	Batch      int
	BestEffort int

	HorizonSecs float64
	Seed        int64

	// Crash storm script: Crashes one-shot crash events starting at
	// FirstCrashAt, CrashEverySecs apart, each restarting after OutageSecs.
	// SpareCrashes widens each event into a correlated failure: alongside
	// the victim, the SpareCrashes servers holding the most free cores go
	// down in the same event (a rack-style blast). Without it the manager
	// re-places the displaced service within one monitoring tick — correct
	// behavior, but it leaves nothing sustained for the alerting to score;
	// taking out the spare capacity is what makes the outage real.
	Crashes        int
	SpareCrashes   int
	FirstCrashAt   float64
	CrashEverySecs float64
	OutageSecs     float64

	// GraceSecs extends each outage's attribution window past the restart:
	// a page fired while the displaced work is still recovering counts as a
	// true positive.
	GraceSecs float64
	// ScoreFromSecs is the steady-state cutoff: alerts fired before it are
	// admission/ramp-up turbulence — real violations the monitor correctly
	// reports, but not part of the injected ground truth — and are counted
	// separately instead of entering precision (default: 500s before the
	// first crash).
	ScoreFromSecs float64
	// MinSustainedSecs is the measured-badness bar for scoring an outage in
	// recall: an outage only warrants a page if some impacted latency-
	// critical workload actually stayed bad this long. The default is one
	// monitoring tick past the page rule's minimum time-to-fire (30s), since
	// an outage lasting exactly the minimum straddles the tick boundary and
	// may legitimately fire or not depending on phase. A crash the scheduler
	// heals faster than that must NOT page — the burn windows suppressing it
	// is the alerting design working, so such outages are excluded from the
	// denominator.
	MinSustainedSecs float64

	Detector core.DetectorOptions
	Trace    bool
}

// DefaultSLODetectConfig returns the canned crash-storm scenario.
func DefaultSLODetectConfig() SLODetectConfig {
	return SLODetectConfig{
		Services: 6, SingleNode: 30, Batch: 4, BestEffort: 0,
		HorizonSecs: 10000, Seed: 7,
		Crashes: 4, SpareCrashes: 2, FirstCrashAt: 3600, CrashEverySecs: 1200, OutageSecs: 420,
		GraceSecs: 240, MinSustainedSecs: 35,
		Detector: core.DefaultDetectorOptions(),
	}
}

// CrashOutage is one scripted crash with its ground truth: the non-best-
// effort workloads resident at the instant the server went down, and when
// each detection channel noticed.
type CrashOutage struct {
	Server int `json:"server"`
	// Spares are the correlated-failure companions taken down in the same
	// event: the emptiest servers at crash time (see SpareCrashes).
	Spares    []int   `json:"spares,omitempty"`
	At        float64 `json:"at"`
	RestartAt float64 `json:"restart_at"`
	// Impacted are the non-best-effort workloads resident at crash time;
	// ImpactedLC is the latency-critical subset.
	Impacted   []string `json:"impacted"`
	ImpactedLC []string `json:"impacted_lc"`
	// HBDetectAt is the first monitoring tick on which the heartbeat
	// detector believed the server dead (-1 = never), PageAt the first true-
	// positive page fire attributed to this outage (-1 = none).
	HBDetectAt float64 `json:"hb_detect_at"`
	PageAt     float64 `json:"page_at"`
	// SustainedSecs is the longest contiguous measured-bad run any impacted
	// latency-critical workload suffered inside the attribution window,
	// recomputed post-run from the raw QoS stream (displaced ticks count as
	// bad). It decides whether the outage warranted a page at all.
	SustainedSecs float64 `json:"sustained_secs"`
}

// SLODetectResult scores the alert stream against the scripted ground truth.
type SLODetectResult struct {
	Workloads   int     `json:"workloads"`
	Services    int     `json:"services"`
	HorizonSecs float64 `json:"horizon_secs"`

	Outages []CrashOutage `json:"outages"`

	PagesFired   int `json:"pages_fired"`
	TicketsFired int `json:"tickets_fired"`
	// UnscoredAlerts counts episodes outside the scripted ground truth:
	// fired before the steady-state cutoff (admission/ramp-up turbulence) or
	// on non-latency-critical ballast (throughput jobs packed in to hold
	// capacity, whose chronic contention alerts are genuine but unscripted).
	// They are reported, not scored (see SLODetectConfig.ScoreFromSecs).
	UnscoredAlerts int `json:"unscored_alerts"`

	// Precision: fraction of fired pages that land inside some outage's
	// attribution window on an impacted workload.
	TruePositivePages  int     `json:"true_positive_pages"`
	FalsePositivePages int     `json:"false_positive_pages"`
	Precision          float64 `json:"precision"`
	// Recall: fraction of scored outages (impacted latency-critical work
	// measurably bad for at least MinSustainedSecs) that produced at least
	// one true-positive page.
	DetectedOutages int     `json:"detected_outages"`
	ScoredOutages   int     `json:"scored_outages"`
	Recall          float64 `json:"recall"`

	// Detection latency, averaged over outages both channels detected: the
	// page MTTD is fire-time minus crash-time, the heartbeat MTTD is
	// dead-belief time minus crash-time (quantized to the monitoring tick).
	PageMTTDSecs float64 `json:"page_mttd_secs"`
	HBMTTDSecs   float64 `json:"hb_mttd_secs"`
}

// steadyServiceLoad derives a flat offered load one node can comfortably
// serve at QoS: half the QPS a half-machine allocation on the cluster's
// biggest platform sustains at the target tail latency. Deriving from
// modeled capacity rather than Target.QPS keeps the no-fault baseline
// violation-free regardless of how optimistic the declared target is.
func steadyServiceLoad(s *Scenario, w *workload.Instance) loadgen.Pattern {
	big := s.RT.Cl.Servers[0].Platform
	for _, sv := range s.RT.Cl.Servers {
		if sv.Platform.Cores > big.Cores {
			big = sv.Platform
		}
	}
	alloc := cluster.Alloc{Cores: big.Cores, MemoryGB: big.MemoryGB}
	capQPS := w.CapacityQPS([]perfmodel.NodeAlloc{{Platform: big, Alloc: alloc}})
	return loadgen.Flat{QPS: 0.55 * w.Genome.QPSAtQoS(capQPS, w.Target.LatencyUS)}
}

// submitSLODetectMix submits the mix: one-node services under conservative
// steady load, batch and single-node texture with generous slack, and
// best-effort filler (unmonitored by construction).
func submitSLODetectMix(s *Scenario, cfg SLODetectConfig) {
	at := 0.0
	submit := func(spec workload.Spec) {
		w := s.U.New(spec)
		var load loadgen.Pattern
		if w.Type.Class() == perfmodel.LatencyCritical {
			load = steadyServiceLoad(s, w)
		}
		s.RT.Submit(w, at, load)
		at += 5
	}
	svcTypes := []workload.Type{workload.Webserver, workload.Memcached, workload.Cassandra}
	for i := 0; i < cfg.Services; i++ {
		submit(workload.Spec{Type: svcTypes[i%3], Family: -1, MaxNodes: 1})
	}
	for i := 0; i < cfg.Batch; i++ {
		submit(workload.Spec{Type: workload.Hadoop, Family: i % 3, MaxNodes: 3, TargetSlack: 2.0,
			Dataset: workload.Dataset{Name: "sloexp", SizeGB: 20, WorkMult: 1.5, MemMult: 1}})
	}
	// Long-running, hence horizon-spanning, targeted single-node jobs: they
	// are not evictable (only best-effort work is), so they hold the spare
	// capacity a displaced service would otherwise instantly re-place into.
	for i := 0; i < cfg.SingleNode; i++ {
		submit(workload.Spec{Type: workload.SingleNode, Family: -1, TargetSlack: 1.8,
			Dataset: workload.Dataset{Name: "sloexp-long", SizeGB: 10, WorkMult: 30, MemMult: 1}})
	}
	for i := 0; i < cfg.BestEffort; i++ {
		submit(workload.Spec{Type: workload.SingleNode, Family: -1, BestEffort: true})
	}
}

// pickVictim chooses the crash target: the up, unscripted server hosting the
// largest latency-critical footprint (by allocated cores) among services not
// impacted by an earlier crash in the storm — re-hitting a service whose page
// is still active would be masked by alert deduplication and score nothing.
// Ties go to the lowest server ID; servers with no fresh latency-critical
// placement fall back behind those with one. Returns -1 when no server hosts
// any non-best-effort work.
func pickVictim(rt *core.Runtime, down map[int]bool, hit map[string]bool) int {
	best, bestFresh, bestCores, bestAny := -1, 0, 0.0, 0
	for _, sv := range rt.Cl.Servers {
		if down[sv.ID] || !sv.Up() {
			continue
		}
		fresh, any := 0, 0
		cores := 0.0
		for _, pl := range sv.Placements() {
			t := rt.Task(pl.WorkloadID)
			if t == nil || t.W.BestEffort {
				continue
			}
			any++
			if t.W.Type.Class() == perfmodel.LatencyCritical && !hit[pl.WorkloadID] {
				fresh++
				cores += float64(pl.Alloc.Cores)
			}
		}
		if any == 0 {
			continue
		}
		var better bool
		switch {
		case fresh > 0 && bestFresh > 0:
			better = cores > bestCores
		case fresh > 0:
			better = true
		case bestFresh == 0:
			better = best < 0 || any > bestAny
		}
		if better {
			best, bestFresh, bestCores, bestAny = sv.ID, fresh, cores, any
		}
	}
	return best
}

// downNow merges the storm-wide down set with the servers already claimed
// by the current event, so successive spare picks don't repeat.
func downNow(a, b map[int]bool) map[int]bool {
	m := make(map[int]bool, len(a)+len(b))
	for id := range a {
		m[id] = true
	}
	for id := range b {
		m[id] = true
	}
	return m
}

// pickSpare chooses a correlated-failure companion: the up, unscripted
// server (victim excluded) with the most unallocated cores — the exact
// headroom a displaced service would be re-placed into. Servers hosting a
// latency-critical placement are skipped: spares are capacity sinks, not
// extra victims, so each event keeps exactly one ground-truth service
// displacement. Ties go to the lowest server ID. Returns -1 when no
// LC-free server is up.
func pickSpare(rt *core.Runtime, down map[int]bool, victim int) int {
	best, bestFree := -1, -1.0
	for _, sv := range rt.Cl.Servers {
		if sv.ID == victim || down[sv.ID] || !sv.Up() {
			continue
		}
		used, lc := 0.0, false
		for _, pl := range sv.Placements() {
			used += float64(pl.Alloc.Cores)
			if t := rt.Task(pl.WorkloadID); t != nil &&
				t.W.Type.Class() == perfmodel.LatencyCritical {
				lc = true
			}
		}
		if lc {
			continue
		}
		if free := float64(sv.Platform.Cores) - used; free > bestFree {
			best, bestFree = sv.ID, free
		}
	}
	return best
}

// SLODetect runs the crash-storm detection experiment.
func SLODetect(cfg SLODetectConfig) (*SLODetectResult, error) {
	s, err := NewScenario(ScenarioConfig{
		Cluster: Local40, Manager: KindQuasar, Seed: cfg.Seed,
		MaxNodes: 3, SeedLib: 3, Trace: cfg.Trace, SLO: true,
	})
	if err != nil {
		return nil, err
	}
	if cfg.MinSustainedSecs <= 0 {
		cfg.MinSustainedSecs = 35
	}
	if cfg.ScoreFromSecs <= 0 {
		cfg.ScoreFromSecs = cfg.FirstCrashAt - 500
	}
	rt := s.RT
	rt.EnableFailureDetector(cfg.Detector)
	submitSLODetectMix(s, cfg)

	// Script the storm. Each closure captures ground truth (the resident
	// set) and applies the crash in the same simulation event, so the
	// recorded impact is exact.
	var outages []*CrashOutage
	down := make(map[int]bool)
	hit := make(map[string]bool)
	for k := 0; k < cfg.Crashes; k++ {
		at := cfg.FirstCrashAt + float64(k)*cfg.CrashEverySecs
		rt.Eng.Schedule(at, func() {
			sv := pickVictim(rt, down, hit)
			if sv < 0 {
				return
			}
			ev := &CrashOutage{
				Server: sv, At: at, RestartAt: at + cfg.OutageSecs,
				HBDetectAt: -1, PageAt: -1,
			}
			// The event's blast radius: the victim plus the SpareCrashes
			// emptiest servers. Spares are picked before anything goes down
			// so the headroom snapshot matches what the manager would have
			// re-placed into.
			servers := []int{sv}
			downed := map[int]bool{sv: true}
			for j := 0; j < cfg.SpareCrashes; j++ {
				sp := pickSpare(rt, downNow(down, downed), sv)
				if sp < 0 {
					break
				}
				servers = append(servers, sp)
				downed[sp] = true
				ev.Spares = append(ev.Spares, sp)
			}
			for _, id := range servers {
				for _, pl := range rt.Cl.Servers[id].Placements() {
					t := rt.Task(pl.WorkloadID)
					if t == nil || t.W.BestEffort {
						continue
					}
					ev.Impacted = append(ev.Impacted, pl.WorkloadID)
					hit[pl.WorkloadID] = true
					if t.W.Type.Class() == perfmodel.LatencyCritical {
						ev.ImpactedLC = append(ev.ImpactedLC, pl.WorkloadID)
					}
				}
			}
			outages = append(outages, ev)
			for _, id := range servers {
				id := id
				down[id] = true
				rt.CrashServer(id)
				rt.Eng.Schedule(ev.RestartAt, func() {
					rt.RestartServer(id)
					delete(down, id)
				})
			}
		})
	}
	// Record when the operator-visible heartbeat detector catches each
	// crash (sampled at tick granularity, like the SLO engine itself).
	rt.AddTickListener(func(now float64) {
		for _, ev := range outages {
			if ev.HBDetectAt >= 0 || now < ev.At {
				continue
			}
			if rt.Cl.Servers[ev.Server].Det() == cluster.DetDead {
				ev.HBDetectAt = now
			}
		}
	})

	rt.Run(cfg.HorizonSecs)
	rt.Stop()
	return scoreSLODetect(cfg, s, outages), nil
}

// attributes reports whether a page on workload wl fired at ft lies inside
// the outage's attribution window.
func (ev *CrashOutage) attributes(wl string, ft, grace float64) bool {
	if ft < ev.At || ft > ev.RestartAt+grace {
		return false
	}
	for _, id := range ev.Impacted {
		if id == wl {
			return true
		}
	}
	return false
}

// maxBadRunSecs walks the monitoring-tick grid over [from, to] and returns
// the longest contiguous run, in seconds, on which the workload's measured
// SLI was bad: a QoS sample below the met threshold, or no sample at all (a
// started service skips ticks only while displaced). The walk stops at
// completion. This recomputes ground truth from the raw stream, independent
// of the SLO engine's incremental window state.
func maxBadRunSecs(rt *core.Runtime, t *core.Task, from, to float64) float64 {
	tick := rt.TickSecs()
	if t.DoneAt > 0 && t.DoneAt < to {
		to = t.DoneAt
	}
	qf := t.QoSFrac
	i := 0
	run, best := 0.0, 0.0
	const eps = 1e-6
	for at := from; at <= to+eps; at += tick {
		for i < qf.Len() && qf.Times[i] < at-eps {
			i++
		}
		bad := true
		if i < qf.Len() && qf.Times[i] <= at+eps {
			bad = qf.Vals[i] < slo.QoSMetFraction
		}
		if bad {
			run += tick
			if run > best {
				best = run
			}
		} else {
			run = 0
		}
	}
	return best
}

func scoreSLODetect(cfg SLODetectConfig, s *Scenario, outages []*CrashOutage) *SLODetectResult {
	res := &SLODetectResult{
		Workloads:   cfg.Services + cfg.SingleNode + cfg.Batch + cfg.BestEffort,
		Services:    cfg.Services,
		HorizonSecs: cfg.HorizonSecs,
	}
	for _, ep := range s.SLO.Episodes() {
		t := s.RT.Task(ep.Workload)
		if ep.FireAt < cfg.ScoreFromSecs ||
			t == nil || t.W.Type.Class() != perfmodel.LatencyCritical {
			// Outside the scripted ground truth, which is defined on the
			// latency-critical services in steady state: ramp-up turbulence
			// and ballast-job contention alerts are genuine but unscripted.
			res.UnscoredAlerts++
			continue
		}
		if ep.Rule != "page" {
			res.TicketsFired++
			continue
		}
		res.PagesFired++
		matched := false
		for _, ev := range outages {
			if !ev.attributes(ep.Workload, ep.FireAt, cfg.GraceSecs) {
				continue
			}
			matched = true
			if ev.PageAt < 0 || ep.FireAt < ev.PageAt {
				ev.PageAt = ep.FireAt
			}
		}
		if matched {
			res.TruePositivePages++
		} else {
			res.FalsePositivePages++
		}
	}
	if res.PagesFired > 0 {
		res.Precision = float64(res.TruePositivePages) / float64(res.PagesFired)
	}

	pageSum, hbSum, both := 0.0, 0.0, 0
	for _, ev := range outages {
		for _, id := range ev.ImpactedLC {
			t := s.RT.Task(id)
			if t == nil {
				continue
			}
			if run := maxBadRunSecs(s.RT, t, ev.At, ev.RestartAt+cfg.GraceSecs); run > ev.SustainedSecs {
				ev.SustainedSecs = run
			}
		}
		res.Outages = append(res.Outages, *ev)
		if len(ev.ImpactedLC) == 0 || ev.SustainedSecs < cfg.MinSustainedSecs {
			continue
		}
		res.ScoredOutages++
		if ev.PageAt >= 0 {
			res.DetectedOutages++
		}
		if ev.PageAt >= 0 && ev.HBDetectAt >= 0 {
			pageSum += ev.PageAt - ev.At
			hbSum += ev.HBDetectAt - ev.At
			both++
		}
	}
	if res.ScoredOutages > 0 {
		res.Recall = float64(res.DetectedOutages) / float64(res.ScoredOutages)
	}
	if both > 0 {
		res.PageMTTDSecs = pageSum / float64(both)
		res.HBMTTDSecs = hbSum / float64(both)
	} else {
		res.PageMTTDSecs = math.NaN()
		res.HBMTTDSecs = math.NaN()
	}
	return res
}

// Print renders the detection report.
func (r *SLODetectResult) Print(w io.Writer) {
	fprintf(w, "== SLO alert detection vs scripted crash storm (Quasar, local cluster) ==\n")
	fprintf(w, "%d workloads (%d services), %.0fs horizon, %d scripted outages\n",
		r.Workloads, r.Services, r.HorizonSecs, len(r.Outages))
	for _, ev := range r.Outages {
		page := "no page"
		if ev.PageAt >= 0 {
			page = fmt.Sprintf("page +%.0fs", ev.PageAt-ev.At)
		}
		hb := "undetected"
		if ev.HBDetectAt >= 0 {
			hb = fmt.Sprintf("hb-dead +%.0fs", ev.HBDetectAt-ev.At)
		}
		blast := ""
		if len(ev.Spares) > 0 {
			blast = fmt.Sprintf("+%d spares ", len(ev.Spares))
		}
		fprintf(w, "  t=%5.0fs server %2d %sdown %.0fs: %d impacted (%d LC, %.0fs sustained) — %s, %s\n",
			ev.At, ev.Server, blast, ev.RestartAt-ev.At, len(ev.Impacted), len(ev.ImpactedLC),
			ev.SustainedSecs, page, hb)
	}
	fprintf(w, "pages: %d fired, %d true / %d false -> precision %.2f (%d unscored: warm-up/ballast)\n",
		r.PagesFired, r.TruePositivePages, r.FalsePositivePages, r.Precision, r.UnscoredAlerts)
	fprintf(w, "outage recall: %d/%d (%.2f); tickets fired: %d\n",
		r.DetectedOutages, r.ScoredOutages, r.Recall, r.TicketsFired)
	fprintf(w, "detection latency: page MTTD %.0fs vs heartbeat MTTD %.0fs\n",
		r.PageMTTDSecs, r.HBMTTDSecs)
}
