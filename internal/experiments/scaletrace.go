package experiments

import (
	"bytes"
	"io"

	"quasar/internal/loadgen"
	"quasar/internal/obs"
	"quasar/internal/workload"
)

// ScaleTrace runs one traced Quasar scenario on a uniform at-scale cluster
// and returns the serialized event log. The trace is the determinism
// contract's witness at scale: the bytes must not depend on the worker count,
// which the determinism tests and the trace-diff-scale lane assert across
// {1, 4, NumCPU} workers.

// ScaleTraceConfig sizes the at-scale determinism run.
type ScaleTraceConfig struct {
	Servers     int     // uniform spread of the local platforms
	Services    int     // latency-critical services under fluctuating load
	Single      int     // single-node batch jobs
	BestEffort  int     // best-effort fillers
	SubmitGap   float64 // simulated seconds between submissions
	HorizonSecs float64 // simulated seconds to run
	Seed        int64
	// TraceTopK, when > 0, runs the traced variants under the top-K
	// candidate-truncation control (recorded in the trace header). Full
	// decision payloads are O(servers) per decision, so the 10k-server
	// observability point caps them; 0 keeps full fidelity.
	TraceTopK int
}

// DefaultScaleTraceConfig returns the committed contract point: 1k servers,
// 10k workloads, a horizon just long enough to submit and churn all of them.
func DefaultScaleTraceConfig() ScaleTraceConfig {
	return ScaleTraceConfig{
		Servers:     1000,
		Services:    20,
		Single:      480,
		BestEffort:  9500,
		SubmitGap:   0.02,
		HorizonSecs: 260,
		Seed:        20260808,
	}
}

// Workloads returns the total submission count of the config.
func (c ScaleTraceConfig) Workloads() int { return c.Services + c.Single + c.BestEffort }

// runScaleScenario builds the scenario (traced through the given sinks, or
// with the default buffer when sinks is nil and traced is set), submits the
// mix, and runs the horizon. All ScaleTrace variants and the obsscale
// benchmark share this path so they measure and compare the same run.
func runScaleScenario(cfg ScaleTraceConfig, traced bool, sinks []obs.Sink) (*Scenario, error) {
	var ctl *obs.Controls
	if cfg.TraceTopK > 0 {
		ctl = &obs.Controls{TopK: cfg.TraceTopK}
	}
	s, err := NewScenario(ScenarioConfig{
		Servers: cfg.Servers, Manager: KindQuasar, Seed: cfg.Seed,
		MaxNodes: 4, SeedLib: 3, Trace: traced, TraceSinks: sinks, TraceControls: ctl,
	})
	if err != nil {
		return nil, err
	}
	at := 0.0
	submit := func(spec workload.Spec, load loadgen.Pattern) {
		s.RT.Submit(s.U.New(spec), at, load)
		at += cfg.SubmitGap
	}
	svcTypes := []workload.Type{workload.Webserver, workload.Memcached, workload.Cassandra}
	for i := 0; i < cfg.Services; i++ {
		w := s.U.New(workload.Spec{Type: svcTypes[i%3], Family: -1, MaxNodes: 3})
		s.RT.Submit(w, at, loadgen.Fluctuating{
			Min: 0.4 * w.Target.QPS, Max: 0.9 * w.Target.QPS, Period: 6000})
		at += cfg.SubmitGap
	}
	for i := 0; i < cfg.Single; i++ {
		submit(workload.Spec{Type: workload.SingleNode, Family: -1, TargetSlack: 1.3}, nil)
	}
	for i := 0; i < cfg.BestEffort; i++ {
		submit(workload.Spec{Type: workload.SingleNode, Family: -1, BestEffort: true}, nil)
	}
	s.RT.Run(cfg.HorizonSecs)
	s.RT.Stop()
	return s, nil
}

// ScaleTrace builds the scenario, submits the mix, runs the horizon, and
// returns the JSONL trace bytes from the buffered exporter.
func ScaleTrace(cfg ScaleTraceConfig) ([]byte, error) {
	s, err := runScaleScenario(cfg, true, nil)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, s.Tracer); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ScaleTraceStreamed runs the same scenario with the trace streaming
// incrementally to w through a StreamSink — bounded memory regardless of
// trace size — and returns the bytes written. The output must be
// byte-identical to ScaleTrace's for the same config, which the worker-matrix
// identity test and the trace-diff-stream lane assert.
func ScaleTraceStreamed(cfg ScaleTraceConfig, w io.Writer) (int64, error) {
	sink := obs.NewStreamSinkWriter(w)
	s, err := runScaleScenario(cfg, true, []obs.Sink{sink})
	if err != nil {
		return 0, err
	}
	if err := s.Tracer.Close(); err != nil {
		return 0, err
	}
	return sink.BytesWritten(), nil
}
