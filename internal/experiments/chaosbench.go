package experiments

import (
	"encoding/json"
	"io"
	"os"
	"runtime"

	"quasar/internal/chaos"
)

// ChaosBenchConfig sizes the fault-subsystem benchmark. Three timed modes
// over the availability mix: healthy with no detector (the pre-chaos
// baseline), healthy with the detector heartbeating (its overhead must be
// negligible), and the full fault storm (the recovery path's cost).
type ChaosBenchConfig struct {
	Avail AvailabilityConfig
	// Repeats takes the minimum wall time over this many runs per mode to
	// damp scheduler noise (default 3).
	Repeats int
}

// DefaultChaosBenchConfig benches the canned availability scenario.
func DefaultChaosBenchConfig() ChaosBenchConfig {
	return ChaosBenchConfig{Avail: DefaultAvailabilityConfig(), Repeats: 3}
}

// ChaosBenchResult is the record committed as BENCH_chaos.json. Wall times
// are host-specific; the overhead fractions and the deterministic fault /
// recovery counts are the comparable part.
type ChaosBenchResult struct {
	CPUs        int     `json:"cpus"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Repeats     int     `json:"repeats"`
	Workloads   int     `json:"workloads"`
	HorizonSecs float64 `json:"horizon_secs"`

	// HealthySecs: no detector, no faults — the pre-subsystem baseline.
	HealthySecs float64 `json:"healthy_secs"`
	// DetectorSecs: detector heartbeating over a healthy cluster.
	DetectorSecs float64 `json:"detector_secs"`
	// DetectorOverheadFrac = (DetectorSecs-HealthySecs)/HealthySecs; a test
	// bounds it under 5%.
	DetectorOverheadFrac float64 `json:"detector_overhead_frac"`

	// StormSecs: the full fault storm, detector on, recovery active.
	StormSecs float64 `json:"storm_secs"`
	// StormOverheadFrac = (StormSecs-HealthySecs)/HealthySecs.
	StormOverheadFrac float64 `json:"storm_overhead_frac"`

	// Deterministic outcome of the storm run.
	Faults     chaos.Stats `json:"faults"`
	Displaced  int         `json:"displaced"`
	Readmitted int         `json:"readmitted"`
	MTTRSecs   float64     `json:"mttr_secs"`
}

// chaosBenchRun executes the availability mix once in the given mode.
// detector without a plan arms the heartbeat loop over a storm-free run.
func chaosBenchRun(cfg AvailabilityConfig, detector bool, plan *chaos.Plan) (*Scenario, *chaos.Injector, error) {
	runCfg := cfg
	runCfg.Trace = false
	runCfg.Plan = plan
	if plan == nil {
		// availabilityScenario always arms a plan; build the scenario by
		// hand for the healthy modes.
		s, err := NewScenario(ScenarioConfig{
			Cluster: Local40, Manager: KindQuasar, Seed: cfg.Seed,
			MaxNodes: 4, SeedLib: 3,
		})
		if err != nil {
			return nil, nil, err
		}
		if detector {
			s.RT.EnableFailureDetector(cfg.Detector)
		}
		submitAvailabilityMix(s, cfg)
		s.RT.Run(cfg.HorizonSecs)
		s.RT.Stop()
		return s, nil, nil
	}
	s, inj, err := availabilityScenario(runCfg)
	if err != nil {
		return nil, nil, err
	}
	s.RT.Run(cfg.HorizonSecs)
	s.RT.Stop()
	return s, inj, nil
}

// ChaosBench times the three modes and aggregates the storm outcome.
func ChaosBench(cfg ChaosBenchConfig) (*ChaosBenchResult, error) {
	if cfg.Repeats <= 0 {
		cfg.Repeats = 3
	}
	res := &ChaosBenchResult{
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Repeats:    cfg.Repeats,
		Workloads: cfg.Avail.Hadoop + cfg.Avail.Spark + cfg.Avail.Services +
			cfg.Avail.SingleNode + cfg.Avail.BestEffort,
		HorizonSecs: cfg.Avail.HorizonSecs,
	}
	timeRun := func(detector bool, plan *chaos.Plan) (float64, *Scenario, *chaos.Injector, error) {
		best := 0.0
		var lastS *Scenario
		var lastI *chaos.Injector
		for i := 0; i < cfg.Repeats; i++ {
			start := wallClock()
			s, inj, err := chaosBenchRun(cfg.Avail, detector, plan)
			elapsed := wallClock().Sub(start).Seconds()
			if err != nil {
				return 0, nil, nil, err
			}
			if i == 0 || elapsed < best {
				best = elapsed
			}
			lastS, lastI = s, inj
		}
		return best, lastS, lastI, nil
	}
	healthy, _, _, err := timeRun(false, nil)
	if err != nil {
		return nil, err
	}
	det, _, _, err := timeRun(true, nil)
	if err != nil {
		return nil, err
	}
	storm, s, inj, err := timeRun(true, chaos.DefaultStormPlan())
	if err != nil {
		return nil, err
	}
	res.HealthySecs, res.DetectorSecs, res.StormSecs = healthy, det, storm
	if healthy > 0 {
		res.DetectorOverheadFrac = (det - healthy) / healthy
		res.StormOverheadFrac = (storm - healthy) / healthy
	}
	res.Faults = inj.Stats()
	rec := s.Q.Recovery()
	res.Displaced = rec.Displaced
	res.Readmitted = rec.Readmitted
	res.MTTRSecs = rec.MTTR()
	return res, nil
}

// Print renders the comparison.
func (r *ChaosBenchResult) Print(w io.Writer) {
	fprintf(w, "== Fault-subsystem benchmark (%d CPUs, min of %d) ==\n", r.CPUs, r.Repeats)
	fprintf(w, "%d workloads, %.0fs horizon\n", r.Workloads, r.HorizonSecs)
	fprintf(w, "healthy, no detector: %8.3fs\n", r.HealthySecs)
	fprintf(w, "healthy, detector on: %8.3fs  (%+.1f%% overhead)\n", r.DetectorSecs, 100*r.DetectorOverheadFrac)
	fprintf(w, "fault storm:          %8.3fs  (%+.1f%% vs healthy)\n", r.StormSecs, 100*r.StormOverheadFrac)
	fprintf(w, "storm outcome: %d crashes, %d slowdowns, %d partitions; %d displaced, %d re-admitted, MTTR %.0fs\n",
		r.Faults.Crashes, r.Faults.Slowdowns, r.Faults.Partitions, r.Displaced, r.Readmitted, r.MTTRSecs)
}

// WriteJSON writes the result to path.
func (r *ChaosBenchResult) WriteJSON(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
