package experiments

import (
	"io"

	"quasar/internal/classify"
	"quasar/internal/par"
	"quasar/internal/sim"
	"quasar/internal/workload"
)

// Fig3Config sizes the density-sensitivity study.
type Fig3Config struct {
	EntriesGrid    []int // profiling entries per row per classification
	PerClass       int   // test workloads per app class per density point
	SeedLibPerType int
	Seed           int64
	// PointClock returns a fresh Clock for each density point (and one more
	// for the decision-time section). The grid points run concurrently, so
	// each gets its own clock: a shared stateful fake clock would hand out
	// timestamps in completion order and break determinism. Nil means every
	// point reads the wall clock; tests inject a factory of fake clocks.
	PointClock func() Clock
	// Workers bounds the grid fan-out; zero means the process default.
	// Results are identical for any value.
	Workers int
}

// DefaultFig3Config matches the figure: density from one entry per row up
// to dense rows, three application classes.
func DefaultFig3Config() Fig3Config {
	return Fig3Config{
		EntriesGrid:    []int{1, 2, 3, 4, 6, 8, 12, 16, 24},
		PerClass:       6,
		SeedLibPerType: 4,
		Seed:           5,
	}
}

// Fig3Point is one (density, class) measurement.
type Fig3Point struct {
	Entries    int
	AppClass   string
	DensityPct float64            // entries / scale-up columns
	P90        map[string]float64 // per axis: scale-up, scale-out, hetero, interference
	// OverheadSecs is profiling+decision wall time for the four parallel
	// classifications at this density (per workload).
	OverheadSecs float64
}

// Fig3Result is the density sweep plus the 4-parallel vs exhaustive
// decision-time comparison.
type Fig3Result struct {
	Points []Fig3Point
	// FourParallelDecisionSecs and ExhaustiveDecisionSecs compare
	// classification (decision only) cost at the default density.
	FourParallelDecisionSecs float64
	ExhaustiveDecisionSecs   float64
}

// Fig3 runs the sweep. The density points are fully independent — each
// builds its own universe, engine, and noise streams from seeds derived
// from the entry count — so they fan out across workers; points land in the
// result in grid order regardless of which finishes first.
func Fig3(cfg Fig3Config) *Fig3Result {
	platforms := clusterPlatformsLocal()
	res := &Fig3Result{}
	classes := []struct {
		name string
		tp   workload.Type
	}{
		{"hadoop", workload.Hadoop},
		{"memcached", workload.Memcached},
		{"single-node", workload.SingleNode},
	}
	// Clocks are minted sequentially, one per grid point plus one for the
	// decision-time section, before the fan-out.
	pointClock := cfg.PointClock
	if pointClock == nil {
		pointClock = func() Clock { return wallClock }
	}
	clocks := make([]Clock, len(cfg.EntriesGrid))
	for i := range clocks {
		clocks[i] = pointClock()
	}
	decisionClock := pointClock()

	pointsPer := par.ParMap(cfg.Workers, len(cfg.EntriesGrid), func(gi int) []Fig3Point {
		entries := cfg.EntriesGrid[gi]
		clock := clocks[gi]
		u := workload.NewUniverse(platforms, cfg.Seed, 3)
		opts := classify.DefaultOptions()
		opts.MaxNodes = 32
		opts.Entries = entries
		eng := classify.NewEngine(platforms, opts, sim.NewRNG(cfg.Seed+int64(entries)))
		rng := sim.NewRNG(cfg.Seed + 100 + int64(entries))
		var libWs []*workload.Instance
		var libPs []classify.Prober
		for _, tp := range []workload.Type{workload.Hadoop, workload.Memcached,
			workload.SingleNode, workload.Webserver, workload.Spark} {
			for i := 0; i < cfg.SeedLibPerType; i++ {
				w := u.New(workload.Spec{Type: tp, Family: -1, MaxNodes: 4})
				libWs = append(libWs, w)
				libPs = append(libPs, classify.NewGroundTruthProber(w, platforms, rng.Stream(w.ID)))
			}
		}
		eng.SeedOfflineMany(libWs, libPs)
		points := make([]Fig3Point, 0, len(classes))
		for _, cls := range classes {
			ws := make([]*workload.Instance, cfg.PerClass)
			for i := range ws {
				ws[i] = u.New(workload.Spec{Type: cls.tp, Family: -1, MaxNodes: 4})
			}
			var su, so, het, interf []float64
			start := clock()
			_, allErrs := classify.ValidateMany(eng, ws, cfg.Workers)
			for _, errs := range allErrs {
				su = append(su, errs.ScaleUp...)
				so = append(so, errs.ScaleOut...)
				het = append(het, errs.Hetero...)
				interf = append(interf, errs.Interf...)
			}
			elapsed := clock().Sub(start).Seconds() / float64(cfg.PerClass)
			points = append(points, Fig3Point{
				Entries:    entries,
				AppClass:   cls.name,
				DensityPct: 100 * float64(entries) / float64(len(eng.SUCols)),
				P90: map[string]float64{
					"scale-up":     classify.Stats(su).P90,
					"scale-out":    classify.Stats(so).P90,
					"hetero":       classify.Stats(het).P90,
					"interference": classify.Stats(interf).P90,
				},
				OverheadSecs: elapsed,
			})
		}
		return points
	})
	for _, pts := range pointsPer {
		res.Points = append(res.Points, pts...)
	}

	// Decision-time comparison at default density: classify the same
	// workloads through the four parallel classifications and through the
	// exhaustive joint classification (8 entries, as in Table 2).
	u := workload.NewUniverse(platforms, cfg.Seed+7, 3)
	opts := classify.DefaultOptions()
	opts.MaxNodes = 32
	opts.CF.Epochs = 120 // cap: the point is the per-arrival cost *ratio*
	eng := classify.NewEngine(platforms, opts, sim.NewRNG(cfg.Seed+8))
	exh := classify.NewExhaustive(platforms, 32, opts.CF, sim.NewRNG(cfg.Seed+9))
	rng := sim.NewRNG(cfg.Seed + 10)
	for _, tp := range []workload.Type{workload.Hadoop, workload.Memcached, workload.SingleNode} {
		for i := 0; i < cfg.SeedLibPerType; i++ {
			w := u.New(workload.Spec{Type: tp, Family: -1, MaxNodes: 4})
			p := classify.NewGroundTruthProber(w, platforms, rng.Stream(w.ID))
			eng.SeedOffline(w, p)
			exh.Seed(w, p)
		}
	}
	// Per the paper, classification recomputes the reconstruction at every
	// arrival; the decision cost is therefore the model rebuild plus the
	// row estimate. The exhaustive joint space has ~an order of magnitude
	// more columns, which is exactly what its decision-time penalty
	// measures.
	clock := decisionClock
	n := 2
	start := clock()
	for i := 0; i < n; i++ {
		w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4})
		eng.Classify(w, classify.NewGroundTruthProber(w, platforms, rng.Stream("4p/"+w.ID)))
		eng.RetrainAll()
	}
	res.FourParallelDecisionSecs = clock().Sub(start).Seconds() / float64(n)
	start = clock()
	for i := 0; i < n; i++ {
		w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4})
		exh.Classify(w, classify.NewGroundTruthProber(w, platforms, rng.Stream("ex/"+w.ID)), 8)
		exh.Retrain()
	}
	res.ExhaustiveDecisionSecs = clock().Sub(start).Seconds() / float64(n)
	return res
}

// Print renders the sweep.
func (r *Fig3Result) Print(w io.Writer) {
	fprintf(w, "== Figure 3: classification error and overhead vs input matrix density ==\n")
	fprintf(w, "%-8s %-12s %9s | %9s %9s %9s %9s | %12s\n",
		"entries", "class", "density%", "su p90%", "so p90%", "het p90%", "int p90%", "overhead(ms)")
	for _, pt := range r.Points {
		fprintf(w, "%-8d %-12s %9.1f | %9.1f %9.1f %9.1f %9.1f | %12.2f\n",
			pt.Entries, pt.AppClass, pt.DensityPct,
			100*pt.P90["scale-up"], 100*pt.P90["scale-out"],
			100*pt.P90["hetero"], 100*pt.P90["interference"],
			pt.OverheadSecs*1000)
	}
	fprintf(w, "-- decision time per arrival --\n")
	fprintf(w, "four parallel classifications: %8.2f ms\n", r.FourParallelDecisionSecs*1000)
	fprintf(w, "single exhaustive:             %8.2f ms (%.0fx)\n",
		r.ExhaustiveDecisionSecs*1000, r.ExhaustiveDecisionSecs/maxF(r.FourParallelDecisionSecs, 1e-9))
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
