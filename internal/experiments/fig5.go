package experiments

import (
	"io"
	"math"
	"sort"

	"quasar/internal/core"
	"quasar/internal/workload"
)

// Fig5Config sizes the single-batch-job scenario (§6.1).
type Fig5Config struct {
	Jobs     int // 10 in the paper (H1-H10)
	Seed     int64
	MaxHours float64 // per-job simulation budget
}

// DefaultFig5Config matches the paper.
func DefaultFig5Config() Fig5Config {
	return Fig5Config{Jobs: 10, Seed: 11, MaxHours: 12}
}

// Fig5Job is one Hadoop job's outcome under both managers.
type Fig5Job struct {
	Name          string
	DatasetGB     float64
	TargetSecs    float64
	QuasarSecs    float64
	BaselineSecs  float64
	SpeedupPct    float64 // execution-time reduction vs the Hadoop scheduler
	QuasarGapPct  float64 // distance from the target (positive = slower)
	HadoopGapPct  float64
	QuasarConfig  *workload.FrameworkConfig
	QuasarPlats   []string
	BaselinePlats []string
}

// Fig5Result is the single-batch-job comparison, which also carries
// Table 3 (the parameter settings for job H8).
type Fig5Result struct {
	Jobs []Fig5Job
	// MeanSpeedupPct and MeanQuasarGapPct summarize like §6.1 (29% and
	// 5.8% in the paper).
	MeanSpeedupPct   float64
	MeanQuasarGapPct float64
	MeanHadoopGapPct float64
}

// fig5Datasets returns the H1-H10 input datasets, 1-900 GB as in §5.
func fig5Datasets() []workload.Dataset {
	return []workload.Dataset{
		{Name: "h1-netflix", SizeGB: 2.1, WorkMult: 3.0, MemMult: 0.7},
		{Name: "h2-small", SizeGB: 1, WorkMult: 2.4, MemMult: 0.6},
		{Name: "h3-mid", SizeGB: 10, WorkMult: 4.8, MemMult: 0.9},
		{Name: "h4-mid", SizeGB: 25, WorkMult: 6.0, MemMult: 1.0},
		{Name: "h5-wiki", SizeGB: 55, WorkMult: 7.8, MemMult: 1.2},
		{Name: "h6-large", SizeGB: 120, WorkMult: 9.6, MemMult: 1.3},
		{Name: "h7-large", SizeGB: 250, WorkMult: 11.4, MemMult: 1.5},
		{Name: "h8-recsys", SizeGB: 20, WorkMult: 6.0, MemMult: 1.1},
		{Name: "h9-huge", SizeGB: 500, WorkMult: 14.4, MemMult: 1.7},
		{Name: "h10-huge", SizeGB: 900, WorkMult: 18.0, MemMult: 2.0},
	}
}

// runSingleJob runs one Hadoop job alone on the 40-server cluster under the
// given manager and returns its completion time and placement facts.
func runSingleJob(kind ManagerKind, jobIdx int, cfg Fig5Config) (secs float64, target float64, plats []string, tuned *workload.FrameworkConfig, err error) {
	// Both managers and the oracle target share the same scale-out budget
	// (4 nodes: the local cluster has 4 servers of each platform), so the
	// target is a true lower bound on execution time.
	s, err := NewScenario(ScenarioConfig{
		Cluster: Local40, Manager: kind, Seed: cfg.Seed, MaxNodes: 4, SeedLib: 3,
	})
	if err != nil {
		return 0, 0, nil, nil, err
	}
	ds := fig5Datasets()[jobIdx]
	// Same family per job index across managers; the universe is
	// deterministic per seed, so the genome is identical for both runs.
	w := s.U.New(workload.Spec{
		Type: workload.Hadoop, Family: jobIdx % 3, Dataset: ds,
		MaxNodes: 4, TargetSlack: 1.0,
	})
	task := s.RT.Submit(w, 0, nil)
	horizon := cfg.MaxHours * 3600
	s.RT.Run(horizon)
	s.RT.Stop()
	if task.Status != core.StatusCompleted {
		// Did not finish within budget; report the projected time.
		frac := s.RT.ProgressFraction(task)
		if frac <= 0 {
			frac = 1e-6
		}
		secs = horizon / frac
	} else {
		secs = task.DoneAt - task.SubmitAt
	}
	for p := range task.UsedPlatforms {
		plats = append(plats, p)
	}
	sort.Strings(plats)
	return secs, w.Target.CompletionSecs, plats, w.Config, nil
}

// Fig5 runs each job under Quasar and under the Hadoop self-scheduler.
func Fig5(cfg Fig5Config) (*Fig5Result, error) {
	res := &Fig5Result{}
	var sumSpeed, sumQGap, sumHGap float64
	for j := 0; j < cfg.Jobs; j++ {
		qSecs, target, qPlats, qCfg, err := runSingleJob(KindQuasar, j, cfg)
		if err != nil {
			return nil, err
		}
		bSecs, _, bPlats, _, err := runSingleJob(KindFrameworkSelf, j, cfg)
		if err != nil {
			return nil, err
		}
		job := Fig5Job{
			Name:          jobName(j),
			DatasetGB:     fig5Datasets()[j].SizeGB,
			TargetSecs:    target,
			QuasarSecs:    qSecs,
			BaselineSecs:  bSecs,
			SpeedupPct:    100 * (bSecs - qSecs) / bSecs,
			QuasarGapPct:  100 * (qSecs - target) / target,
			HadoopGapPct:  100 * (bSecs - target) / target,
			QuasarConfig:  qCfg,
			QuasarPlats:   qPlats,
			BaselinePlats: bPlats,
		}
		res.Jobs = append(res.Jobs, job)
		sumSpeed += job.SpeedupPct
		sumQGap += math.Abs(job.QuasarGapPct)
		sumHGap += math.Abs(job.HadoopGapPct)
	}
	n := float64(len(res.Jobs))
	res.MeanSpeedupPct = sumSpeed / n
	res.MeanQuasarGapPct = sumQGap / n
	res.MeanHadoopGapPct = sumHGap / n
	return res, nil
}

func jobName(j int) string {
	return "H" + string(rune('1'+j%9)) + map[bool]string{true: "0", false: ""}[j == 9]
}

// Print renders Figure 5 and the summary.
func (r *Fig5Result) Print(w io.Writer) {
	fprintf(w, "== Figure 5: single Hadoop jobs, Quasar vs the Hadoop scheduler ==\n")
	fprintf(w, "%-5s %8s %10s %10s %10s %9s %8s %8s\n",
		"job", "data(GB)", "target(s)", "quasar(s)", "hadoop(s)", "speedup%", "qGap%", "hGap%")
	for _, j := range r.Jobs {
		fprintf(w, "%-5s %8.0f %10.0f %10.0f %10.0f %9.1f %8.1f %8.1f\n",
			j.Name, j.DatasetGB, j.TargetSecs, j.QuasarSecs, j.BaselineSecs,
			j.SpeedupPct, j.QuasarGapPct, j.HadoopGapPct)
	}
	fprintf(w, "mean speedup %.1f%% (paper: 29%%); |gap to target| quasar %.1f%% (paper: 5.8%%), hadoop %.1f%% (paper: 23%%)\n",
		r.MeanSpeedupPct, r.MeanQuasarGapPct, r.MeanHadoopGapPct)
}

// Table3 renders the parameter settings for job H8 (index 7) from a Fig5
// run.
func (r *Fig5Result) Table3(w io.Writer) {
	if len(r.Jobs) < 8 {
		fprintf(w, "== Table 3: requires at least 8 jobs ==\n")
		return
	}
	j := r.Jobs[7]
	def := workload.DefaultHadoopConfig()
	q := j.QuasarConfig
	if q == nil {
		c := def
		q = &c
	}
	fprintf(w, "== Table 3: parameter settings for job H8 ==\n")
	fprintf(w, "%-16s %-14s %-14s\n", "parameter", "quasar", "hadoop")
	fprintf(w, "%-16s %-14d %-14d\n", "block size(MB)", q.BlockSizeMB, def.BlockSizeMB)
	fprintf(w, "%-16s %.1f(%s)%6s %.1f(%s)\n", "compression",
		q.Compression.Ratio(), q.Compression, "", def.Compression.Ratio(), def.Compression)
	fprintf(w, "%-16s %-14.2f %-14.2f\n", "heapsize(GB)", q.HeapsizeGB, def.HeapsizeGB)
	fprintf(w, "%-16s %-14d %-14d\n", "replication", q.Replication, def.Replication)
	fprintf(w, "%-16s %-14d %-14d\n", "mappers/node", q.MappersPerNode, def.MappersPerNode)
	fprintf(w, "%-16s %-14s %-14s\n", "server types", joinStrings(j.QuasarPlats), joinStrings(j.BaselinePlats))
}

func joinStrings(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "-"
		}
		out += s
	}
	if out == "" {
		out = "-"
	}
	return out
}
