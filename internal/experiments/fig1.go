package experiments

import (
	"io"
	"sort"

	"quasar/internal/metrics"
	"quasar/internal/trace"
)

// Fig1Result reproduces Figure 1: utilization analysis of a large
// reservation-managed production cluster over 30 days.
type Fig1Result struct {
	Trace *trace.Trace
}

// Fig1 generates the synthetic Twitter-like trace.
func Fig1(cfg trace.Config) *Fig1Result {
	return &Fig1Result{Trace: trace.Generate(cfg)}
}

// Print renders the four panels as text series.
func (r *Fig1Result) Print(w io.Writer) {
	tr := r.Trace
	fprintf(w, "== Figure 1: reservation-managed cluster utilization (30 days) ==\n")
	fprintf(w, "-- (a) aggregate CPU used vs reserved (%% capacity, daily means) --\n")
	fprintf(w, "%-6s %10s %10s\n", "day", "used%", "reserved%")
	for d := 0; d*24 < len(tr.Hours); d++ {
		lo, hi := d*24, minInt((d+1)*24, len(tr.Hours))
		fprintf(w, "%-6d %10.1f %10.1f\n", d, meanOf(tr.CPUUsedPct[lo:hi]), meanOf(tr.CPUResvPct[lo:hi]))
	}
	fprintf(w, "-- (b) aggregate memory used vs reserved (%% capacity, trace means) --\n")
	fprintf(w, "mem used %.1f%%  mem reserved %.1f%%\n", meanOf(tr.MemUsedPct), meanOf(tr.MemResvPct))

	fprintf(w, "-- (c) CDF of per-server weekly CPU utilization --\n")
	fprintf(w, "%-8s", "util%")
	for wi := range tr.WeeklyServerCPU {
		fprintf(w, " week%d%%", wi+1)
	}
	fprintf(w, "\n")
	for _, u := range []float64{10, 20, 30, 40, 50, 60, 80, 100} {
		fprintf(w, "%-8.0f", u)
		for _, week := range tr.WeeklyServerCPU {
			var d metrics.Distribution
			for _, v := range week {
				d.Add(v)
			}
			fprintf(w, " %6.1f", 100*d.FractionBelow(u))
		}
		fprintf(w, "\n")
	}

	fprintf(w, "-- (d) reserved/used ratio per workload (percentiles) --\n")
	rs := append([]float64(nil), tr.ReservedToUsed...)
	sort.Float64s(rs)
	for _, p := range []float64{1, 10, 20, 30, 50, 70, 90, 99} {
		idx := int(p / 100 * float64(len(rs)-1))
		fprintf(w, "p%-4.0f ratio %.2fx\n", p, rs[idx])
	}
	over, under := 0, 0
	for _, x := range rs {
		if x > 1.2 {
			over++
		} else if x < 0.95 {
			under++
		}
	}
	fprintf(w, "over-sized: %.0f%%  under-sized: %.0f%%  (paper: ~70%% / ~20%%)\n",
		100*float64(over)/float64(len(rs)), 100*float64(under)/float64(len(rs)))
	fprintf(w, "summary: mean CPU used %.1f%% vs reserved %.1f%% (paper: <20%% vs ~80%%)\n",
		tr.MeanCPUUsedPct(), tr.MeanCPUResvPct())
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
