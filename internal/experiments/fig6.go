package experiments

import (
	"io"

	"quasar/internal/core"
	"quasar/internal/metrics"
	"quasar/internal/workload"
)

// Fig6Config sizes the multiple-batch-frameworks scenario (§6.2): 16
// Hadoop + 4 Storm + 4 Spark jobs with 5 s inter-arrival, plus best-effort
// single-node fillers at 1 s inter-arrival.
type Fig6Config struct {
	Hadoop, Storm, Spark int
	BestEffort           int
	Seed                 int64
	HorizonSecs          float64
}

// DefaultFig6Config matches the paper.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{Hadoop: 16, Storm: 4, Spark: 4, BestEffort: 120, Seed: 17, HorizonSecs: 22000}
}

// Fig6JobResult is one analytics job under both managers.
type Fig6JobResult struct {
	ID         string
	Framework  string
	TargetSecs float64
	Quasar     float64
	Baseline   float64
	SpeedupPct float64
}

// Fig6Result is the multi-framework comparison; it also carries the
// utilization heatmaps of Figure 7.
type Fig6Result struct {
	Jobs           []Fig6JobResult
	MeanSpeedupPct float64
	MeanQuasarGap  float64

	// Fig. 7: per-server CPU utilization over time under both managers.
	QuasarHeat   *metrics.Heatmap
	BaselineHeat *metrics.Heatmap
	// Mean utilization over the active phase of the scenario.
	QuasarUtilPct   float64
	BaselineUtilPct float64
}

// fig6Run executes the scenario under one manager and returns per-job
// completion times (projected for unfinished jobs).
func fig6Run(kind ManagerKind, cfg Fig6Config) (map[string]float64, map[string]float64, *metrics.Heatmap, float64, error) {
	s, err := NewScenario(ScenarioConfig{
		Cluster: Local40, Manager: kind, Seed: cfg.Seed, MaxNodes: 4, SeedLib: 3,
	})
	if err != nil {
		return nil, nil, nil, 0, err
	}
	// Datasets stretch the jobs so adaptation transients amortize (the
	// paper's jobs run for hours).
	ds := func(i int) workload.Dataset {
		mult := []float64{1.2, 1.5, 2, 2.5}[i%4]
		return workload.Dataset{
			Name: "mix", SizeGB: 10 * mult, WorkMult: mult, MemMult: 1 + 0.1*float64(i%4),
		}
	}
	specs := make([]workload.Spec, 0, cfg.Hadoop+cfg.Storm+cfg.Spark)
	for i := 0; i < cfg.Hadoop; i++ {
		specs = append(specs, workload.Spec{Type: workload.Hadoop, Family: i % 3, Dataset: ds(i), MaxNodes: 3, TargetSlack: 1.2})
	}
	for i := 0; i < cfg.Storm; i++ {
		// Storm streams process at high rates; bigger inputs keep the
		// jobs long enough to be schedulable work.
		sds := ds(i)
		sds.WorkMult *= 5
		specs = append(specs, workload.Spec{Type: workload.Storm, Family: i % 3, Dataset: sds, MaxNodes: 2, TargetSlack: 1.5})
	}
	for i := 0; i < cfg.Spark; i++ {
		// Spark and Storm process at much higher rates than Hadoop;
		// bigger inputs keep their runtimes comparable.
		pds := ds(i)
		pds.WorkMult *= 3
		specs = append(specs, workload.Spec{Type: workload.Spark, Family: i % 3, Dataset: pds, MaxNodes: 2, TargetSlack: 1.5})
	}
	var tasks []*core.Task
	for i, spec := range specs {
		w := s.U.New(spec)
		tasks = append(tasks, s.RT.Submit(w, float64(i)*5, nil))
	}
	// Best-effort single-node fillers stream in over the active phase of
	// the scenario (the paper submits them at 1 s inter-arrival and keeps
	// them coming; they soak up any capacity the analytics jobs leave).
	beGap := cfg.HorizonSecs * 0.8 / float64(maxInt(cfg.BestEffort, 1))
	for i := 0; i < cfg.BestEffort; i++ {
		be := s.U.New(workload.Spec{Type: workload.SingleNode, Family: -1, BestEffort: true})
		s.RT.Submit(be, float64(i)*beGap, nil)
	}
	s.RT.Run(cfg.HorizonSecs)
	s.RT.Stop()

	times := map[string]float64{}
	targets := map[string]float64{}
	for _, t := range tasks {
		key := t.W.ID
		targets[key] = t.W.Target.CompletionSecs
		if t.Status == core.StatusCompleted {
			times[key] = t.DoneAt - t.SubmitAt
		} else {
			frac := s.RT.ProgressFraction(t)
			if frac < 1e-6 {
				frac = 1e-6
			}
			times[key] = (s.RT.Eng.Now() - t.SubmitAt) / frac
		}
	}
	// Mean utilization over the manager's own active window: from the
	// first submissions until its last analytics job finished (the faster
	// manager's experiment simply ends sooner, exactly as in Fig. 7).
	lastDone := 0.0
	for _, t := range tasks {
		end := t.DoneAt
		if t.Status != core.StatusCompleted {
			end = s.RT.Eng.Now()
		}
		if end > lastDone {
			lastDone = end
		}
	}
	sum, n := 0.0, 0
	for i, ts := range s.RT.CPUHeat.Times {
		if ts > lastDone {
			break
		}
		for _, v := range s.RT.CPUHeat.Cells[i] {
			sum += v
			n++
		}
	}
	util := 0.0
	if n > 0 {
		util = sum / float64(n)
	}
	return times, targets, s.RT.CPUHeat, util, nil
}

// Fig6 runs the scenario under Quasar and the framework self-schedulers.
func Fig6(cfg Fig6Config) (*Fig6Result, error) {
	qTimes, targets, qHeat, qUtil, err := fig6Run(KindQuasar, cfg)
	if err != nil {
		return nil, err
	}
	bTimes, _, bHeat, bUtil, err := fig6Run(KindFrameworkSelf, cfg)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{QuasarHeat: qHeat, BaselineHeat: bHeat,
		QuasarUtilPct: qUtil * 100, BaselineUtilPct: bUtil * 100}
	sumSpeed, sumGap := 0.0, 0.0
	for id, q := range qTimes {
		b, ok := bTimes[id]
		if !ok {
			continue
		}
		fw := "hadoop"
		switch {
		case len(id) >= 5 && id[:5] == "storm":
			fw = "storm"
		case len(id) >= 5 && id[:5] == "spark":
			fw = "spark"
		}
		jr := Fig6JobResult{
			ID: id, Framework: fw, TargetSecs: targets[id],
			Quasar: q, Baseline: b,
			SpeedupPct: 100 * (b - q) / b,
		}
		res.Jobs = append(res.Jobs, jr)
	}
	// Deterministic order for printing — and for the mean computations
	// below: float addition is order-sensitive, so summing in map order
	// would let the means' low bits drift run to run.
	sortJobs(res.Jobs)
	for _, jr := range res.Jobs {
		sumSpeed += jr.SpeedupPct
		gap := (jr.Quasar - jr.TargetSecs) / jr.TargetSecs
		if gap < 0 {
			gap = -gap
		}
		sumGap += gap
	}
	n := float64(len(res.Jobs))
	res.MeanSpeedupPct = sumSpeed / n
	res.MeanQuasarGap = 100 * sumGap / n
	return res, nil
}

func sortJobs(jobs []Fig6JobResult) {
	for i := 1; i < len(jobs); i++ {
		for j := i; j > 0 && jobs[j].ID < jobs[j-1].ID; j-- {
			jobs[j], jobs[j-1] = jobs[j-1], jobs[j]
		}
	}
}

// Print renders Figure 6 (speedups) and the Figure 7 summary.
func (r *Fig6Result) Print(w io.Writer) {
	fprintf(w, "== Figure 6: multi-framework batch jobs, speedup under Quasar ==\n")
	fprintf(w, "%-14s %-8s %10s %10s %10s %9s\n", "job", "fw", "target(s)", "quasar(s)", "frmwrk(s)", "speedup%")
	for _, j := range r.Jobs {
		fprintf(w, "%-14s %-8s %10.0f %10.0f %10.0f %9.1f\n",
			j.ID, j.Framework, j.TargetSecs, j.Quasar, j.Baseline, j.SpeedupPct)
	}
	fprintf(w, "mean speedup %.1f%% (paper: 27%%); quasar |gap to target| %.1f%% (paper: 5.3%%)\n",
		r.MeanSpeedupPct, r.MeanQuasarGap)
	fprintf(w, "== Figure 7: cluster utilization ==\n")
	fprintf(w, "quasar mean CPU utilization:    %5.1f%% (paper: 62%%)\n", r.QuasarUtilPct)
	fprintf(w, "framework schedulers:           %5.1f%% (paper: 34%%)\n", r.BaselineUtilPct)
}
