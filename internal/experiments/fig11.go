package experiments

import (
	"io"
	"math"

	"quasar/internal/cluster"
	"quasar/internal/core"
	"quasar/internal/loadgen"
	"quasar/internal/metrics"
	"quasar/internal/par"
	"quasar/internal/perfmodel"
	"quasar/internal/workload"
)

// Fig11Config sizes the large-scale cloud-provider scenario (§6.5): 1200
// workloads of every type submitted in random order to 200 dedicated EC2
// servers with 1 s inter-arrival; all workloads have equal priority (no
// best-effort); admission control prevents oversubscription.
type Fig11Config struct {
	Workloads   int
	Seed        int64
	HorizonSecs float64
	// Managers to compare; default is the paper's three.
	Managers []ManagerKind
}

// DefaultFig11Config matches the paper.
func DefaultFig11Config() Fig11Config {
	return Fig11Config{
		Workloads:   1200,
		Seed:        37,
		HorizonSecs: 26000,
		Managers:    []ManagerKind{KindQuasar, KindReservationParagon, KindReservationLL},
	}
}

// Fig11Run is one manager's outcome.
type Fig11Run struct {
	Manager string
	// Sorted normalized performance, worst to best (Fig. 11a): batch =
	// target/actual time, services = fraction of QoS-met ticks.
	Normalized []float64
	MeanPerf   float64 // capped at 1 (the "% of target achieved" view)
	// MeanUtilPct is the average CPU utilization during the loaded phase
	// (Fig. 11b-c).
	MeanUtilPct float64
	// AllocatedPct and UsedPct are the time-averaged allocated and
	// actually-used core shares (Fig. 11d).
	AllocatedPct float64
	UsedPct      float64
	Heat         *metrics.Heatmap
}

// Fig11Result is the three-manager comparison.
type Fig11Result struct {
	Runs []Fig11Run
}

// fig11Mix deterministically shuffles a workload mix of every type. The
// composition follows the paper's scenario: mostly single-node batch
// workloads (SPEC/PARSEC-style plus multiprogrammed mixes), a substantial
// analytics contingent, and a set of latency-critical services.
func fig11Mix(n int) []workload.Type {
	var mix []workload.Type
	for i := 0; i < n; i++ {
		switch {
		case i%20 < 11: // 55%
			mix = append(mix, workload.SingleNode)
		case i%20 < 14: // 15%
			mix = append(mix, workload.Hadoop)
		case i%20 < 15: // 5%
			mix = append(mix, workload.Spark)
		case i%20 < 16: // 5%
			mix = append(mix, workload.Storm)
		case i%20 < 18: // 10%
			mix = append(mix, workload.Webserver)
		case i%20 < 19: // 5%
			mix = append(mix, workload.Memcached)
		default: // 5%
			mix = append(mix, workload.Cassandra)
		}
	}
	return mix
}

// clusterAlloc is a small helper for literal allocations.
func clusterAlloc(cores int, memGB float64) cluster.Alloc {
	return cluster.Alloc{Cores: cores, MemoryGB: memGB}
}

// fig11Run executes the scenario under one manager.
func fig11Run(kind ManagerKind, cfg Fig11Config) (*Fig11Run, error) {
	s, err := NewScenario(ScenarioConfig{
		Cluster: EC2x200, Manager: kind, Seed: cfg.Seed, MaxNodes: 4, SeedLib: 3,
		Misestimate: true, TickSecs: 10, Sample: 120,
	})
	if err != nil {
		return nil, err
	}
	mix := fig11Mix(cfg.Workloads)
	// Deterministic shuffle for "random order".
	s.RT.RNG.Stream("mix-shuffle").Shuffle(len(mix), func(i, j int) { mix[i], mix[j] = mix[j], mix[i] })

	var tasks []*core.Task
	loadRNG := s.RT.RNG.Stream("loads")
	for i, tp := range mix {
		at := float64(i) // 1 s inter-arrival
		var spec workload.Spec
		var load loadgen.Pattern
		switch tp.Class() {
		case perfmodel.LatencyCritical:
			spec = workload.Spec{Type: tp, Family: -1, MaxNodes: 2}
		case perfmodel.Analytics:
			spec = workload.Spec{Type: tp, Family: -1, MaxNodes: 2, TargetSlack: 1.8,
				Dataset: workload.Dataset{Name: "mix", SizeGB: 10,
					WorkMult: 0.15 + 0.08*float64(i%4), MemMult: 0.8}}
		default:
			spec = workload.Spec{Type: tp, Family: -1, TargetSlack: 1.5}
		}
		w := s.U.New(spec)
		if tp.Class() == perfmodel.LatencyCritical {
			// The scenario packs ~6 workloads per server, so each service
			// is small: its target is what a couple of median cores can
			// sustain within the latency bound (1200 workloads must fit
			// "without oversubscription under ideal allocation").
			med := &s.U.Platforms[len(s.U.Platforms)/2]
			capSmall := w.CapacityQPS([]perfmodel.NodeAlloc{{Platform: med,
				Alloc: clusterAlloc(2, 4)}})
			w.Target.QPS = 0.6 * w.Genome.QPSAtQoS(capSmall, w.Target.LatencyUS)
			load = loadgen.Noisy{P: loadgen.Fluctuating{
				Min: 0.4 * w.Target.QPS, Max: 0.95 * w.Target.QPS,
				Period: 6000 + 1000*float64(i%5)}, CV: 0.02, Seed: int64(i)}
			_ = loadRNG
		}
		tasks = append(tasks, s.RT.Submit(w, at, load))
	}
	s.RT.Run(cfg.HorizonSecs)
	s.RT.Stop()

	run := &Fig11Run{Manager: kind.String(), Heat: s.RT.CPUHeat}
	tracker := metrics.NewTargetTracker()
	for _, t := range tasks {
		v := PerfNormalizedToTarget(s.RT, t)
		if math.IsNaN(v) { // best-effort (none here)
			continue
		}
		tracker.Record(t.W.ID, v)
	}
	run.Normalized = tracker.Sorted()
	run.MeanPerf = tracker.Mean(1.0)

	// Utilization during the loaded phase: between the end of submissions
	// and 80% of the horizon.
	lo := float64(cfg.Workloads)
	hi := cfg.HorizonSecs * 0.8
	sum, n := 0.0, 0
	sumAlloc, sumUsed, nA := 0.0, 0.0, 0
	for i, ts := range s.RT.CPUHeat.Times {
		if ts < lo || ts > hi {
			continue
		}
		for _, v := range s.RT.CPUHeat.Cells[i] {
			sum += v
			n++
		}
	}
	for i, ts := range s.RT.AllocSeries.Times {
		if ts < lo || ts > hi {
			continue
		}
		sumAlloc += s.RT.AllocSeries.Vals[i]
		sumUsed += s.RT.UsedSeries.Vals[i]
		nA++
	}
	if n > 0 {
		run.MeanUtilPct = 100 * sum / float64(n)
	}
	if nA > 0 {
		run.AllocatedPct = 100 * sumAlloc / float64(nA)
		run.UsedPct = 100 * sumUsed / float64(nA)
	}
	return run, nil
}

// Fig11 runs the comparison. Each manager simulates its own scenario from
// the same seed, so the three runs are independent and fan out across
// workers; results land in manager order.
func Fig11(cfg Fig11Config) (*Fig11Result, error) {
	if len(cfg.Managers) == 0 {
		cfg.Managers = DefaultFig11Config().Managers
	}
	runs, err := par.ParMapErr(0, len(cfg.Managers), func(i int) (*Fig11Run, error) {
		return fig11Run(cfg.Managers[i], cfg)
	})
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{}
	for _, run := range runs {
		res.Runs = append(res.Runs, *run)
	}
	return res, nil
}

// Print renders the four panels.
func (r *Fig11Result) Print(w io.Writer) {
	fprintf(w, "== Figure 11: 1200 workloads on a 200-server EC2 cluster ==\n")
	fprintf(w, "-- (a) performance normalized to target (percentiles, worst to best) --\n")
	fprintf(w, "%-22s", "manager")
	for _, p := range []int{1, 5, 10, 25, 50, 75, 90} {
		fprintf(w, " %5s%d", "p", p)
	}
	fprintf(w, " %6s\n", "mean")
	for _, run := range r.Runs {
		fprintf(w, "%-22s", run.Manager)
		for _, p := range []int{1, 5, 10, 25, 50, 75, 90} {
			idx := p * (len(run.Normalized) - 1) / 100
			v := 0.0
			if len(run.Normalized) > 0 {
				v = run.Normalized[idx]
			}
			fprintf(w, " %6.2f", v)
		}
		fprintf(w, " %6.2f\n", run.MeanPerf)
	}
	fprintf(w, "-- (b,c) mean CPU utilization at steady state --\n")
	for _, run := range r.Runs {
		fprintf(w, "%-22s %5.1f%%\n", run.Manager, run.MeanUtilPct)
	}
	fprintf(w, "-- (d) allocated vs used cores (time average, loaded phase) --\n")
	for _, run := range r.Runs {
		fprintf(w, "%-22s allocated %5.1f%%  used %5.1f%%\n", run.Manager, run.AllocatedPct, run.UsedPct)
	}
	fprintf(w, "paper: quasar 98%% of target / 62%% util; reservation+paragon 83%%;\n")
	fprintf(w, "reservation+LL 62%% of target / 15%% util; quasar over-allocation ~10%%.\n")
}
