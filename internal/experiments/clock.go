package experiments

import "time"

// Clock abstracts wall-time readings for the few experiments that
// measure real classification overhead (Fig. 3's decision-time columns).
// Injecting a fake clock makes those experiments reproducible in tests;
// everything else in this package runs on the sim engine's virtual time
// and never reads the wall clock.
type Clock func() time.Time

// wallClock is the experiments package's single sanctioned wall-clock
// reader. It is allowlisted by quasar-lint's determinism analyzer: the
// overhead measurements it feeds report real elapsed time by design and
// are excluded from the byte-identical-results determinism contract.
func wallClock() time.Time { return time.Now() }
