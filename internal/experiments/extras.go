package experiments

import (
	"io"
	"math"

	"quasar/internal/core"
	"quasar/internal/par"
	"quasar/internal/sim"
	"quasar/internal/workload"
)

// StragglerResultSet reproduces §4.3: Quasar detects stragglers earlier
// than stock Hadoop speculative execution and LATE.
type StragglerResultSet struct {
	Trials  int
	Results map[string]core.StragglerResult // averaged over trials
	// EarlierThanHadoopPct / EarlierThanLATEPct are the mean detection-
	// latency reductions (paper: 19% and 8%).
	EarlierThanHadoopPct float64
	EarlierThanLATEPct   float64
}

// Stragglers runs the straggler-detection study.
func Stragglers(trials int, seed int64) *StragglerResultSet {
	if trials <= 0 {
		trials = 7
	}
	// Each trial seeds its own RNG, so trials fan out across workers; the
	// float accumulation below runs in trial order to keep sums (and thus
	// serialized output) byte-identical for any worker count.
	perTrial := par.ParMap(0, trials, func(trial int) []core.StragglerResult {
		rng := sim.NewRNG(seed + int64(trial))
		detectors := []core.StragglerDetector{
			core.NewHadoopDetector(30),
			core.NewLATEDetector(20),
			core.NewQuasarDetector(10, rng.Stream("probe")),
		}
		return core.RunStragglerStudy(40, 0.15, 0.25, detectors, rng.Stream("study"))
	})
	agg := map[string]*core.StragglerResult{}
	for _, results := range perTrial {
		for _, res := range results {
			a, ok := agg[res.Detector]
			if !ok {
				a = &core.StragglerResult{Detector: res.Detector}
				agg[res.Detector] = a
			}
			a.MeanDetectionSecs += res.MeanDetectionSecs / float64(trials)
			a.DetectedFrac += res.DetectedFrac / float64(trials)
			a.FalsePositives += res.FalsePositives
		}
	}
	out := &StragglerResultSet{Trials: trials, Results: map[string]core.StragglerResult{}}
	for name, a := range agg {
		out.Results[name] = *a
	}
	h, l, q := out.Results["hadoop"], out.Results["late"], out.Results["quasar"]
	if h.MeanDetectionSecs > 0 {
		out.EarlierThanHadoopPct = 100 * (h.MeanDetectionSecs - q.MeanDetectionSecs) / h.MeanDetectionSecs
	}
	if l.MeanDetectionSecs > 0 {
		out.EarlierThanLATEPct = 100 * (l.MeanDetectionSecs - q.MeanDetectionSecs) / l.MeanDetectionSecs
	}
	return out
}

// Print renders the straggler study.
func (r *StragglerResultSet) Print(w io.Writer) {
	fprintf(w, "== Straggler detection (§4.3), %d trials ==\n", r.Trials)
	fprintf(w, "%-8s %14s %10s %6s\n", "detector", "detect lat(s)", "detected", "FPs")
	for _, name := range []string{"hadoop", "late", "quasar"} {
		res := r.Results[name]
		fprintf(w, "%-8s %14.1f %9.0f%% %6d\n",
			name, res.MeanDetectionSecs, 100*res.DetectedFrac, res.FalsePositives)
	}
	fprintf(w, "quasar detects %.0f%% earlier than hadoop (paper: 19%%), %.0f%% earlier than LATE (paper: 8%%)\n",
		r.EarlierThanHadoopPct, r.EarlierThanLATEPct)
}

// PhaseResult reproduces §4.1's phase-detection validation.
type PhaseResult struct {
	Injected          int
	ReactiveDetected  int
	ProactiveDetected int
	FalsePositives    int
	ReactivePct       float64
	ProactivePct      float64
	FalsePositivePct  float64
}

// Phases injects phase changes into long-running workloads under Quasar and
// measures how many are caught reactively (performance deviation) and
// proactively (interference-probe sampling), plus proactive false
// positives.
func Phases(injections int, seed int64) (*PhaseResult, error) {
	if injections <= 0 {
		injections = 25
	}
	s, err := NewScenario(ScenarioConfig{
		Cluster: Local40, Manager: KindQuasar, Seed: seed, MaxNodes: 4, SeedLib: 3,
	})
	if err != nil {
		return nil, err
	}
	// Long-running single-node workloads that will phase-change.
	var tasks []*core.Task
	for i := 0; i < injections; i++ {
		w := s.U.New(workload.Spec{Type: workload.SingleNode, Family: -1, TargetSlack: 1.3})
		w.Genome.Work = 1e9 // effectively endless
		tasks = append(tasks, s.RT.Submit(w, float64(i)*3, nil))
	}
	s.RT.Run(1200) // settle

	// Inject one phase change per workload, spread over time. Two kinds:
	// even-indexed workloads suffer a visible performance drop (reactive
	// detection territory); odd-indexed ones only shift their
	// interference profile — no immediate performance change, so only the
	// proactive probes can catch them before they hurt a future
	// colocation.
	injectAt := map[string]float64{}
	silent := map[string]bool{}
	rng := sim.NewRNG(seed + 99)
	for i, t := range tasks {
		at := 1500 + float64(i)*120
		injectAt[t.W.ID] = at
		task := t
		if i%2 == 0 {
			s.RT.Eng.Schedule(at, func() {
				task.W.Genome.BaseRate *= 0.5
			})
		} else {
			silent[t.W.ID] = true
			s.RT.Eng.Schedule(at, func() {
				g := task.W.Genome
				for r := range g.Sens {
					g.Sens[r] = 1 - (1-g.Sens[r])*rng.Uniform(0.3, 0.6)
				}
			})
		}
	}
	horizon := 1500 + float64(injections)*120 + 2400
	s.RT.Run(horizon)
	s.RT.Stop()

	res := &PhaseResult{Injected: injections}
	detected := map[string]string{}
	for _, ev := range s.Q.PhaseEvents {
		at, ok := injectAt[ev.TaskID]
		if !ok {
			continue
		}
		if ev.Time >= at {
			if _, dup := detected[ev.TaskID]; !dup {
				detected[ev.TaskID] = ev.Source
			}
		} else if ev.Source == "proactive" {
			res.FalsePositives++
		}
	}
	nSilent, nLoud := 0, 0
	for id := range injectAt {
		if silent[id] {
			nSilent++
		} else {
			nLoud++
		}
	}
	for id, src := range detected {
		if silent[id] && src == "proactive" {
			res.ProactiveDetected++
		}
		if !silent[id] {
			res.ReactiveDetected++
		}
	}
	if nLoud > 0 {
		res.ReactivePct = 100 * float64(res.ReactiveDetected) / float64(nLoud)
	}
	if nSilent > 0 {
		res.ProactivePct = 100 * float64(res.ProactiveDetected) / float64(nSilent)
	}
	probes := math.Max(1, float64(injections))
	res.FalsePositivePct = 100 * float64(res.FalsePositives) / probes
	return res, nil
}

// Print renders the phase study.
func (r *PhaseResult) Print(w io.Writer) {
	fprintf(w, "== Phase detection (§4.1) ==\n")
	fprintf(w, "injected %d phase changes: reactive detected %.0f%%, proactive detected %.0f%%, proactive FPs %.0f%%\n",
		r.Injected, r.ReactivePct, r.ProactivePct, r.FalsePositivePct)
	fprintf(w, "paper: 94%% detected reactively; 78%% proactively with 8%% false positives\n")
}

// OverheadResult reproduces §6.5's cluster-management overhead accounting.
type OverheadResult struct {
	MeanPct float64 // mean overhead as a fraction of execution time
	MaxPct  float64
	N       int
}

// Overheads measures profiling + scheduling overhead (submission to start)
// relative to execution time for a stream of batch jobs under Quasar.
func Overheads(jobs int, seed int64) (*OverheadResult, error) {
	if jobs <= 0 {
		jobs = 12
	}
	s, err := NewScenario(ScenarioConfig{
		Cluster: Local40, Manager: KindQuasar, Seed: seed, MaxNodes: 4, SeedLib: 3,
	})
	if err != nil {
		return nil, err
	}
	var tasks []*core.Task
	for i := 0; i < jobs; i++ {
		tp := []workload.Type{workload.Hadoop, workload.SingleNode, workload.Spark}[i%3]
		w := s.U.New(workload.Spec{Type: tp, Family: -1, MaxNodes: 3, TargetSlack: 1.2,
			Dataset: workload.Dataset{Name: "oh", SizeGB: 10, WorkMult: 1.5, MemMult: 1}})
		tasks = append(tasks, s.RT.Submit(w, float64(i)*30, nil))
	}
	s.RT.Run(40000)
	s.RT.Stop()
	res := &OverheadResult{}
	sum := 0.0
	for _, t := range tasks {
		if t.Status != core.StatusCompleted {
			continue
		}
		overhead := t.StartAt - t.SubmitAt
		total := t.DoneAt - t.SubmitAt
		if total <= 0 {
			continue
		}
		pct := 100 * overhead / total
		sum += pct
		if pct > res.MaxPct {
			res.MaxPct = pct
		}
		res.N++
	}
	if res.N > 0 {
		res.MeanPct = sum / float64(res.N)
	}
	return res, nil
}

// Print renders the overhead study.
func (r *OverheadResult) Print(w io.Writer) {
	fprintf(w, "== Cluster-management overheads (§6.5) ==\n")
	fprintf(w, "profiling+scheduling overhead: mean %.1f%% of execution time, max %.1f%% (n=%d)\n",
		r.MeanPct, r.MaxPct, r.N)
	fprintf(w, "paper: 4.1%% on average, up to 9%% for short batch jobs\n")
}

// AblationRow is one design-choice toggle's outcome.
type AblationRow struct {
	Name     string
	MeanPerf float64 // mean normalized-to-target performance
}

// AblationResult compares the full Quasar against versions with individual
// design choices disabled (DESIGN.md's ablation index).
type AblationResult struct {
	Rows []AblationRow
}

// Ablations runs a medium multi-workload scenario with scheduler/manager
// features toggled.
func Ablations(seed int64) (*AblationResult, error) {
	return AblationsSized(seed, 18, 15000)
}

// AblationsSized is Ablations with an explicit job count and horizon, so
// tests can run a shrunken scenario.
func AblationsSized(seed int64, jobs int, horizon float64) (*AblationResult, error) {
	variants := []struct {
		name string
		mod  func(*core.QuasarOptions)
	}{
		{"full quasar", func(*core.QuasarOptions) {}},
		{"scale-out-first", func(o *core.QuasarOptions) { o.Sched.ScaleOutFirst = true }},
		{"no interference awareness", func(o *core.QuasarOptions) { o.Sched.IgnoreInterference = true }},
		{"no heterogeneity awareness", func(o *core.QuasarOptions) { o.Sched.IgnoreHeterogeneity = true }},
		{"no adaptation", func(o *core.QuasarOptions) { o.DisableAdaptation = true }},
		{"with partitioning", func(o *core.QuasarOptions) { o.EnablePartitioning = true }},
	}
	// Every variant runs its own scenario from the same seed; the six
	// simulations are independent and fan out across workers.
	perfs, err := par.ParMapErr(0, len(variants), func(i int) (float64, error) {
		return runAblation(seed, jobs, horizon, variants[i].mod)
	})
	if err != nil {
		return nil, err
	}
	res := &AblationResult{}
	for i, v := range variants {
		res.Rows = append(res.Rows, AblationRow{Name: v.name, MeanPerf: perfs[i]})
	}
	return res, nil
}

func runAblation(seed int64, jobs int, horizon float64, mod func(*core.QuasarOptions)) (float64, error) {
	s, err := NewScenario(ScenarioConfig{
		Cluster: Local40, Manager: KindQuasar, Seed: seed, MaxNodes: 4, SeedLib: 3,
	})
	if err != nil {
		return 0, err
	}
	// Rebuild the manager with modified options.
	opts := core.DefaultQuasarOptions()
	opts.MaxNodesPerJob = 4
	opts.Classify.MaxNodes = 32
	opts.Classify.Entries = 3
	mod(&opts)
	q := core.NewQuasar(s.RT, opts)
	q.SeedLibrary(libraryFor(s.U, 3))
	s.RT.SetManager(q)
	s.Q, s.Mgr = q, q

	var tasks []*core.Task
	for i := 0; i < jobs; i++ {
		var w *workload.Instance
		var task *core.Task
		switch i % 3 {
		case 0:
			w = s.U.New(workload.Spec{Type: workload.Hadoop, Family: i % 3, MaxNodes: 2, TargetSlack: 1.3,
				Dataset: workload.Dataset{Name: "ab", SizeGB: 20, WorkMult: 1.5, MemMult: 1}})
			task = s.RT.Submit(w, float64(i)*10, nil)
		case 1:
			w = s.U.New(workload.Spec{Type: workload.Webserver, Family: -1, MaxNodes: 2})
			task = s.RT.Submit(w, float64(i)*10, flatLoad(w))
		default:
			w = s.U.New(workload.Spec{Type: workload.SingleNode, Family: -1, TargetSlack: 1.3})
			task = s.RT.Submit(w, float64(i)*10, nil)
		}
		tasks = append(tasks, task)
	}
	s.RT.Run(horizon)
	s.RT.Stop()
	sum, n := 0.0, 0
	for _, t := range tasks {
		v := PerfNormalizedToTarget(s.RT, t)
		if math.IsNaN(v) {
			continue
		}
		if v > 1 {
			v = 1
		}
		sum += v
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}

func flatLoad(w *workload.Instance) interface{ Load(float64) float64 } {
	return flatPattern{qps: 0.8 * w.Target.QPS}
}

type flatPattern struct{ qps float64 }

func (p flatPattern) Load(float64) float64 { return p.qps }

// Print renders the ablation table.
func (r *AblationResult) Print(w io.Writer) {
	fprintf(w, "== Ablations: Quasar design choices ==\n")
	fprintf(w, "%-28s %18s\n", "variant", "mean %% of target")
	for _, row := range r.Rows {
		fprintf(w, "%-28s %17.1f%%\n", row.Name, 100*row.MeanPerf)
	}
}
