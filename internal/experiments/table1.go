package experiments

import (
	"io"

	"quasar/internal/cluster"
	"quasar/internal/interference"
	"quasar/internal/workload"
)

// Table1Result reproduces Table 1: the server platforms, interference
// patterns, and input datasets of the evaluation.
type Table1Result struct {
	Platforms []cluster.Platform
	Patterns  []interference.Pattern
	Hadoop    []workload.Dataset
	Memcached []workload.Dataset
}

// Table1 assembles the configuration tables.
func Table1() *Table1Result {
	return &Table1Result{
		Platforms: cluster.LocalPlatforms(),
		Patterns:  interference.Patterns(),
		Hadoop:    workload.HadoopDatasets(),
		Memcached: workload.MemcachedDatasets(),
	}
}

// Print renders the three sub-tables.
func (r *Table1Result) Print(w io.Writer) {
	fprintf(w, "== Table 1 ==\n-- server platforms --\n")
	fprintf(w, "%-10s %6s %10s %9s %9s\n", "platform", "cores", "memory(GB)", "coreperf", "cache(MB)")
	for _, p := range r.Platforms {
		fprintf(w, "%-10s %6d %10.0f %9.2f %9.0f\n", p.Name, p.Cores, p.MemoryGB, p.CorePerf, p.CacheMB)
	}
	fprintf(w, "-- interference patterns --\n")
	for _, pat := range r.Patterns {
		res := "-"
		if pat.Resource >= 0 {
			res = pat.Resource.String()
		}
		fprintf(w, "%-4s %s\n", pat.Name, res)
	}
	fprintf(w, "-- input datasets --\n")
	for _, ds := range r.Hadoop {
		fprintf(w, "hadoop    %-12s %7.1f GB\n", ds.Name, ds.SizeGB)
	}
	for _, ds := range r.Memcached {
		fprintf(w, "memcached %-12s %7.1f GB\n", ds.Name, ds.SizeGB)
	}
}
