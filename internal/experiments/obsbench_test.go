package experiments

import "testing"

// TestObsBenchOverheadBounded asserts the tracer stays allocation-light: a
// fully traced run must cost under ~10% extra wall time over an untraced
// one. Wall-clock measurements jitter under load, so the bench takes the
// minimum of several repeats and the test allows a few attempts before
// declaring the overhead real.
func TestObsBenchOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	cfg := ObsBenchConfig{
		Hadoop: 2, Spark: 1, Storm: 1, Services: 2, SingleNode: 6, BestEffort: 8,
		HorizonSecs: 4000, Seed: 7, Repeats: 3,
	}
	const limit = 0.10
	var res *ObsBenchResult
	for attempt := 0; attempt < 3; attempt++ {
		var err error
		res, err = ObsBench(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Events == 0 {
			t.Fatal("traced run produced no events")
		}
		if res.OverheadFrac < limit {
			return
		}
		t.Logf("attempt %d: overhead %.1f%% above %.0f%% limit, retrying",
			attempt+1, 100*res.OverheadFrac, 100*limit)
	}
	t.Fatalf("tracer overhead %.1f%% exceeds %.0f%% (off %.3fs, on %.3fs, %d events)",
		100*res.OverheadFrac, 100*limit, res.OffSecs, res.OnSecs, res.Events)
}
