package experiments

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
)

// ParBenchConfig sizes the sequential-vs-parallel regression benchmark: the
// Table 2 classification sweep and the Fig. 3 density sweep, each run once
// with one worker and once with Workers.
type ParBenchConfig struct {
	// Workers is the parallel worker count to compare against sequential.
	// Zero means NumCPU.
	Workers int
	Table2  Table2Config
	Fig3    Fig3Config
}

// DefaultParBenchConfig is a medium-size configuration: big enough that the
// fan-out dominates setup cost, small enough for a CI lane.
func DefaultParBenchConfig() ParBenchConfig {
	t2 := DefaultTable2Config()
	t2.Hadoop, t2.Memcached, t2.Webserver, t2.SingleNode = 6, 6, 6, 60
	f3 := DefaultFig3Config()
	f3.EntriesGrid = []int{1, 2, 4, 8}
	f3.PerClass = 4
	return ParBenchConfig{Table2: t2, Fig3: f3}
}

// ParBenchRun is one benchmark's sequential-vs-parallel measurement.
type ParBenchRun struct {
	Name           string  `json:"name"`
	SequentialSecs float64 `json:"sequential_secs"`
	ParallelSecs   float64 `json:"parallel_secs"`
	Speedup        float64 `json:"speedup"`
}

// ParBenchResult is the perf-trajectory record committed as
// BENCH_parallel.json. CPUs is recorded because the achievable speedup is
// bounded by it: on a single-CPU host the parallel runs measure scheduling
// overhead, not speedup.
type ParBenchResult struct {
	CPUs       int           `json:"cpus"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Workers    int           `json:"workers"`
	Runs       []ParBenchRun `json:"runs"`
}

// ParBench times the classification benchmarks sequentially (one worker)
// and with cfg.Workers workers. Timings come from the wall clock — this is
// the one experiment whose point *is* elapsed time — so only the Speedup
// ratio is meaningful across hosts, and nothing here participates in the
// byte-identical determinism contract.
func ParBench(cfg ParBenchConfig) *ParBenchResult {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	res := &ParBenchResult{
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
	}

	time2 := func(w int) float64 {
		cfg := cfg.Table2
		cfg.Workers = w
		start := wallClock()
		Table2(cfg)
		return wallClock().Sub(start).Seconds()
	}
	time3 := func(w int) float64 {
		cfg := cfg.Fig3
		cfg.Workers = w
		start := wallClock()
		Fig3(cfg)
		return wallClock().Sub(start).Seconds()
	}
	for _, b := range []struct {
		name string
		run  func(w int) float64
	}{
		{"table2-classification", time2},
		{"fig3-density-sweep", time3},
	} {
		seq := b.run(1)
		parT := b.run(workers)
		speedup := 0.0
		if parT > 0 {
			speedup = seq / parT
		}
		res.Runs = append(res.Runs, ParBenchRun{
			Name:           b.name,
			SequentialSecs: seq,
			ParallelSecs:   parT,
			Speedup:        speedup,
		})
	}
	return res
}

// Print renders the comparison.
func (r *ParBenchResult) Print(w io.Writer) {
	fprintf(w, "== Parallel execution benchmark (%d CPUs, %d workers) ==\n", r.CPUs, r.Workers)
	fprintf(w, "%-24s %10s %10s %8s\n", "benchmark", "seq(s)", "par(s)", "speedup")
	for _, run := range r.Runs {
		fprintf(w, "%-24s %10.2f %10.2f %7.2fx\n",
			run.Name, run.SequentialSecs, run.ParallelSecs, run.Speedup)
	}
}

// WriteJSON writes the result to path.
func (r *ParBenchResult) WriteJSON(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
