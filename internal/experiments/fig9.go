package experiments

import (
	"io"
	"math"

	"quasar/internal/cluster"
	"quasar/internal/core"
	"quasar/internal/loadgen"
	"quasar/internal/perfmodel"
	"quasar/internal/workload"
)

// Fig9Config sizes the stateful latency-critical services scenario (§6.4):
// memcached (1 TB state, 2.4M QPS peak, 200 µs bound) and Cassandra (4 TB
// state, 60K QPS peak, 30 ms bound) under diurnal load for 24 hours, with
// best-effort fillers, under Quasar vs auto-scaling.
type Fig9Config struct {
	Seed        int64
	HorizonSecs float64 // 24 h in the paper
	BestEffort  int
	// MemcachedPeakQPS / CassandraPeakQPS of 0 scale the paper's 2.4M/60K
	// targets to the cluster's actual capacity.
	MemcachedPeakQPS float64
	CassandraPeakQPS float64
}

// DefaultFig9Config matches the paper's 24-hour run.
func DefaultFig9Config() Fig9Config {
	return Fig9Config{Seed: 29, HorizonSecs: 24 * 3600, BestEffort: 1200}
}

// Fig9Service is one service's outcome under one manager.
type Fig9Service struct {
	Manager string
	Service string

	Times      []float64
	OfferedQPS []float64
	Achieved   []float64

	QoSMetFrac     float64
	TrackingErrPct float64
	LatencyP99US   float64 // overall 99th percentile of per-tick p99 samples
}

// Fig10Window is one 6-hour utilization snapshot (Fig. 10).
type Fig10Window struct {
	Label   string
	CPUPct  float64
	MemPct  float64
	DiskPct float64
}

// Fig9Result carries Figure 9 and the Figure 10 snapshots for the Quasar
// run.
type Fig9Result struct {
	Services []Fig9Service
	Windows  []Fig10Window // Quasar run
}

// fig9Service builds one of the two services with the paper's constraints,
// scaled to cluster capacity when needed.
func fig9Service(s *Scenario, tp workload.Type, peakQPS float64, maxNodes int) *workload.Instance {
	w := s.U.New(workload.Spec{Type: tp, Family: 0, MaxNodes: maxNodes})
	switch tp {
	case workload.Memcached:
		// Memory-based with an aggressive 200 µs p99 constraint.
		w.Genome.ServiceUS = 70
		w.Genome.TailFactor = 1.8
		w.Target.LatencyUS = 200
		// 1 TB of cached state spread over the fleet: memcached uses much
		// of each node's memory (Fig. 10, middle row).
		w.Genome.MemNeedGB = 18
		w.Genome.MemCurve = 1.2
	case workload.Cassandra:
		// Disk-based with a 30 ms constraint.
		w.Genome.ServiceUS = 9000
		w.Genome.TailFactor = 1.6
		w.Target.LatencyUS = 30000
	}
	// Size the peak to what maxNodes *median* machines sustain within the
	// bound: feasible for the auto-scaler's fleet, comfortably below what
	// Quasar can assemble from better platforms.
	med := s.U.Platforms[len(s.U.Platforms)/2]
	nodes := make([]perfmodel.NodeAlloc, maxNodes)
	for i := range nodes {
		nodes[i] = perfmodel.NodeAlloc{Platform: &med,
			Alloc: cluster.Alloc{Cores: med.Cores, MemoryGB: med.MemoryGB}}
	}
	capMed := w.CapacityQPS(nodes)
	feasible := 0.8 * w.Genome.QPSAtQoS(capMed, w.Target.LatencyUS)
	if peakQPS <= 0 || peakQPS > feasible {
		peakQPS = feasible
	}
	w.Target.QPS = peakQPS
	return w
}

// fig9Run executes the 24-hour scenario under one manager.
func fig9Run(kind ManagerKind, cfg Fig9Config) ([]Fig9Service, []Fig10Window, error) {
	s, err := NewScenario(ScenarioConfig{
		Cluster: Local40, Manager: kind, Seed: cfg.Seed, MaxNodes: 16, SeedLib: 3,
		TickSecs: 10, Sample: 300,
	})
	if err != nil {
		return nil, nil, err
	}
	mc := fig9Service(s, workload.Memcached, cfg.MemcachedPeakQPS, 16)
	cs := fig9Service(s, workload.Cassandra, cfg.CassandraPeakQPS, 12)

	mcLoad := loadgen.Noisy{P: loadgen.Diurnal{
		Min: 0.25 * mc.Target.QPS, Max: mc.Target.QPS, PeakHour: 15}, CV: 0.02, Seed: 4}
	csLoad := loadgen.Noisy{P: loadgen.Diurnal{
		Min: 0.25 * cs.Target.QPS, Max: cs.Target.QPS, PeakHour: 20}, CV: 0.02, Seed: 5}

	mcTask := s.RT.Submit(mc, 0, mcLoad)
	csTask := s.RT.Submit(cs, 10, csLoad)

	beGap := cfg.HorizonSecs * 0.9 / float64(maxInt(cfg.BestEffort, 1))
	for i := 0; i < cfg.BestEffort; i++ {
		be := s.U.New(workload.Spec{Type: workload.SingleNode, Family: -1, BestEffort: true})
		s.RT.Submit(be, float64(i)*beGap, nil)
	}

	record := map[string]*Fig9Service{
		mc.ID: {Manager: kind.String(), Service: "memcached"},
		cs.ID: {Manager: kind.String(), Service: "cassandra"},
	}
	stop := s.RT.Eng.Ticker(300, 300, func(now float64) {
		for id, task := range map[string]*core.Task{mc.ID: mcTask, cs.ID: csTask} {
			rec := record[id]
			rec.Times = append(rec.Times, now)
			rec.OfferedQPS = append(rec.OfferedQPS, task.LastOfferedQPS)
			rec.Achieved = append(rec.Achieved, task.LastAchievedQPS)
		}
	})
	s.RT.Run(cfg.HorizonSecs)
	stop()
	s.RT.Stop()

	var out []Fig9Service
	for _, pair := range []struct {
		task *core.Task
		rec  *Fig9Service
	}{{mcTask, record[mc.ID]}, {csTask, record[cs.ID]}} {
		rec := pair.rec
		rec.QoSMetFrac = pair.task.QoSFrac.MeanBetween(1800, cfg.HorizonSecs)
		rec.LatencyP99US = pair.task.LatencyDist.Percentile(99)
		sum, n := 0.0, 0
		for i := range rec.Times {
			if rec.Times[i] < 1800 || rec.OfferedQPS[i] <= 0 {
				continue
			}
			sum += math.Abs(rec.Achieved[i]-rec.OfferedQPS[i]) / rec.OfferedQPS[i]
			n++
		}
		if n > 0 {
			rec.TrackingErrPct = 100 * sum / float64(n)
		}
		out = append(out, *rec)
	}

	// Fig. 10: four 6-hour utilization windows.
	var windows []Fig10Window
	qt := cfg.HorizonSecs / 4
	labels := []string{"00:00-06:00", "06:00-12:00", "12:00-18:00", "18:00-24:00"}
	for i := 0; i < 4; i++ {
		mid := (float64(i) + 0.5) * qt
		windows = append(windows, Fig10Window{
			Label:   labels[i],
			CPUPct:  100 * s.RT.CPUHeat.MeanAt(mid),
			MemPct:  100 * s.RT.MemHeat.MeanAt(mid),
			DiskPct: 100 * s.RT.DiskHeat.MeanAt(mid),
		})
	}
	return out, windows, nil
}

// Fig9 runs the scenario under Quasar and the auto-scaler.
func Fig9(cfg Fig9Config) (*Fig9Result, error) {
	res := &Fig9Result{}
	qs, windows, err := fig9Run(KindQuasar, cfg)
	if err != nil {
		return nil, err
	}
	res.Services = append(res.Services, qs...)
	res.Windows = windows
	as, _, err := fig9Run(KindAutoscale, cfg)
	if err != nil {
		return nil, err
	}
	res.Services = append(res.Services, as...)
	return res, nil
}

// Print renders Figures 9 and 10.
func (r *Fig9Result) Print(w io.Writer) {
	fprintf(w, "== Figure 9: stateful latency-critical services over 24h ==\n")
	fprintf(w, "%-11s %-10s %13s %9s %12s\n", "service", "manager", "QPS-tracking", "QoS met", "p99")
	for _, s := range r.Services {
		unit := "us"
		p99 := s.LatencyP99US
		if p99 > 1000 {
			p99, unit = p99/1000, "ms"
		}
		fprintf(w, "%-11s %-10s %12.1f%% %8.1f%% %9.1f%s\n",
			s.Service, s.Manager, s.TrackingErrPct, 100*s.QoSMetFrac, p99, unit)
	}
	fprintf(w, "paper: quasar meets latency QoS for 98.8%%/98.6%% of requests (mc/cassandra);\n")
	fprintf(w, "autoscale 80%%/93%%, and degrades throughput 24%%/12%%.\n")
	fprintf(w, "== Figure 10: utilization snapshots (quasar run) ==\n")
	fprintf(w, "%-13s %8s %8s %8s\n", "window", "cpu%", "mem%", "disk%")
	for _, win := range r.Windows {
		fprintf(w, "%-13s %8.1f %8.1f %8.1f\n", win.Label, win.CPUPct, win.MemPct, win.DiskPct)
	}
}
