package experiments

import (
	"bytes"
	"testing"

	"quasar/internal/par"
)

// TestScaleTraceDeterministicAcrossWorkers pins the determinism contract at
// scale: a 1k-server / 10k-workload scenario (shortened horizon) must emit a
// byte-identical trace for every worker count. This is the test that would
// catch an index- or calendar-queue-induced ordering change that the 40- and
// 200-server trace-diff lanes are too small to surface.
func TestScaleTraceDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the at-scale scenario once per worker count")
	}
	cfg := DefaultScaleTraceConfig()
	run := func(workers int) []byte {
		par.SetDefaultWorkers(workers)
		defer par.SetDefaultWorkers(0)
		out, err := ScaleTrace(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	if len(want) == 0 {
		t.Fatal("at-scale run emitted an empty trace")
	}
	t.Logf("trace: %d bytes for %d workloads on %d servers", len(want), cfg.Workloads(), cfg.Servers)
	for _, w := range workerMatrix() {
		if got := run(w); !bytes.Equal(want, got) {
			t.Fatalf("workers=%d diverged from sequential at byte %d of %d",
				w, diffAt(want, got), len(want))
		}
	}
}

// diffAt returns the first index where a and b differ (or the shorter length).
func diffAt(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
