package experiments

import (
	"io"

	"quasar/internal/chaos"
	"quasar/internal/core"
	"quasar/internal/loadgen"
	"quasar/internal/perfmodel"
	"quasar/internal/workload"
)

// AttachFaults enables the heartbeat failure detector and arms a fault plan
// on a built scenario. Call it after NewScenario and before Run: the
// injector's RNG stream derives from the runtime RNG here, so the relative
// order of this call and workload submission is part of the scenario's
// deterministic identity.
func (s *Scenario) AttachFaults(plan *chaos.Plan, det core.DetectorOptions) (*chaos.Injector, error) {
	s.RT.EnableFailureDetector(det)
	inj, err := chaos.NewInjector(s.RT.Eng, s.RT, plan, s.RT.RNG.Stream("chaos"))
	if err != nil {
		return nil, err
	}
	inj.Start()
	return inj, nil
}

// AvailabilityConfig sizes the availability-under-faults experiment: a
// Quasar run on the local cluster with a fault storm injected, reporting
// QoS-met %, mean time to recovery, and the displaced-work half-life.
type AvailabilityConfig struct {
	Hadoop, Spark int
	Services      int
	SingleNode    int
	BestEffort    int
	HorizonSecs   float64
	Seed          int64
	Plan          *chaos.Plan          // nil = chaos.DefaultStormPlan()
	Detector      core.DetectorOptions // zero = defaults (10s/2/4)
	Trace         bool
}

// DefaultAvailabilityConfig returns the canned fault-storm scenario.
func DefaultAvailabilityConfig() AvailabilityConfig {
	return AvailabilityConfig{
		Hadoop: 4, Spark: 2, Services: 6, SingleNode: 10, BestEffort: 16,
		HorizonSecs: 16000, Seed: 7,
		Detector: core.DefaultDetectorOptions(),
	}
}

// AvailabilityResult is what the fault storm left behind. Every field is
// derived from simulation state, so it is byte-identical across -workers
// counts and repeat runs.
type AvailabilityResult struct {
	Workloads int     `json:"workloads"`
	Services  int     `json:"services"`
	Horizon   float64 `json:"horizon_secs"`

	// Injection side.
	Faults chaos.Stats `json:"faults"`

	// QoSMetFrac is the mean fraction of post-warm-up ticks on which
	// latency-critical services met QoS, averaged over services.
	QoSMetFrac float64 `json:"qos_met_frac"`

	// Recovery side (see core.RecoveryStats for field semantics).
	Recovery core.RecoveryStats `json:"recovery"`
	// MTTRSecs is the mean displacement→recovery delay; HalfLifeSecs the
	// median (the displaced-work half-life).
	MTTRSecs     float64 `json:"mttr_secs"`
	HalfLifeSecs float64 `json:"half_life_secs"`
	// LCNoReprofileFrac is the fraction of displaced latency-critical
	// workloads re-admitted without re-profiling (acceptance bar: ≥ 0.9).
	LCNoReprofileFrac float64 `json:"lc_no_reprofile_frac"`

	// Surviving capacity at the end of the run.
	LiveServers int `json:"live_servers"`
	TotalServs  int `json:"total_servers"`
}

// availabilityScenario builds, arms, and submits the availability run
// without executing it; the trace tests drive the engine themselves.
func availabilityScenario(cfg AvailabilityConfig) (*Scenario, *chaos.Injector, error) {
	s, err := NewScenario(ScenarioConfig{
		Cluster: Local40, Manager: KindQuasar, Seed: cfg.Seed,
		MaxNodes: 4, SeedLib: 3, Trace: cfg.Trace,
	})
	if err != nil {
		return nil, nil, err
	}
	plan := cfg.Plan
	if plan == nil {
		plan = chaos.DefaultStormPlan()
	}
	inj, err := s.AttachFaults(plan, cfg.Detector)
	if err != nil {
		return nil, nil, err
	}
	submitAvailabilityMix(s, cfg)
	return s, inj, nil
}

// submitAvailabilityMix submits the availability workload mix: batch
// frameworks, fluctuating latency-critical services, single-node jobs, and
// best-effort filler, staggered 5 simulated seconds apart.
func submitAvailabilityMix(s *Scenario, cfg AvailabilityConfig) {
	at := 0.0
	submit := func(spec workload.Spec) {
		w := s.U.New(spec)
		var load loadgen.Pattern
		if w.Type.Class() == perfmodel.LatencyCritical {
			load = loadgen.Fluctuating{Min: 0.4 * w.Target.QPS, Max: 0.9 * w.Target.QPS, Period: 6000}
		}
		s.RT.Submit(w, at, load)
		at += 5
	}
	for i := 0; i < cfg.Hadoop; i++ {
		submit(workload.Spec{Type: workload.Hadoop, Family: i % 3, MaxNodes: 3, TargetSlack: 1.4,
			Dataset: workload.Dataset{Name: "avail", SizeGB: 20, WorkMult: 1.5, MemMult: 1}})
	}
	for i := 0; i < cfg.Spark; i++ {
		submit(workload.Spec{Type: workload.Spark, Family: i % 3, MaxNodes: 3, TargetSlack: 1.4,
			Dataset: workload.Dataset{Name: "avail", SizeGB: 20, WorkMult: 4, MemMult: 1}})
	}
	svcTypes := []workload.Type{workload.Webserver, workload.Memcached, workload.Cassandra}
	for i := 0; i < cfg.Services; i++ {
		submit(workload.Spec{Type: svcTypes[i%3], Family: -1, MaxNodes: 3})
	}
	for i := 0; i < cfg.SingleNode; i++ {
		submit(workload.Spec{Type: workload.SingleNode, Family: -1, TargetSlack: 1.3})
	}
	for i := 0; i < cfg.BestEffort; i++ {
		submit(workload.Spec{Type: workload.SingleNode, Family: -1, BestEffort: true})
	}
}

// Availability runs the fault-storm scenario to completion and aggregates
// the result.
func Availability(cfg AvailabilityConfig) (*AvailabilityResult, error) {
	s, inj, err := availabilityScenario(cfg)
	if err != nil {
		return nil, err
	}
	s.RT.Run(cfg.HorizonSecs)
	s.RT.Stop()
	return availabilityResult(cfg, s, inj), nil
}

func availabilityResult(cfg AvailabilityConfig, s *Scenario, inj *chaos.Injector) *AvailabilityResult {
	res := &AvailabilityResult{
		Workloads:  cfg.Hadoop + cfg.Spark + cfg.Services + cfg.SingleNode + cfg.BestEffort,
		Services:   cfg.Services,
		Horizon:    cfg.HorizonSecs,
		Faults:     inj.Stats(),
		Recovery:   s.Q.Recovery(),
		TotalServs: len(s.RT.Cl.Servers),
	}
	res.LiveServers = s.RT.Cl.NumLive()
	res.MTTRSecs = res.Recovery.MTTR()
	res.HalfLifeSecs = res.Recovery.HalfLife()
	if res.Recovery.DisplacedLC > 0 {
		res.LCNoReprofileFrac = float64(res.Recovery.ReadmittedLCNoReprofile) /
			float64(res.Recovery.DisplacedLC)
	}
	// QoS met: mean over latency-critical services of their post-warm-up
	// QoS-met tick fraction.
	sum, n := 0.0, 0
	for _, t := range s.RT.Tasks() {
		if t.W.BestEffort || t.W.Type.Class() != perfmodel.LatencyCritical {
			continue
		}
		sum += PerfNormalizedToTarget(s.RT, t)
		n++
	}
	if n > 0 {
		res.QoSMetFrac = sum / float64(n)
	}
	return res
}

// Print renders the availability report.
func (r *AvailabilityResult) Print(w io.Writer) {
	fprintf(w, "== Availability under fault storm (Quasar, local cluster) ==\n")
	fprintf(w, "%d workloads (%d services), %.0fs horizon\n", r.Workloads, r.Services, r.Horizon)
	fprintf(w, "faults applied: %d crashes, %d slowdowns, %d partitions (%d restarts, %d heals, %d skipped)\n",
		r.Faults.Crashes, r.Faults.Slowdowns, r.Faults.Partitions,
		r.Faults.Restarts, r.Faults.Heals, r.Faults.Skipped)
	fprintf(w, "live servers at end: %d/%d\n", r.LiveServers, r.TotalServs)
	fprintf(w, "QoS met: %.1f%% of service ticks\n", 100*r.QoSMetFrac)
	fprintf(w, "displaced: %d workloads (%d latency-critical), %d nodes lost\n",
		r.Recovery.Displaced, r.Recovery.DisplacedLC, r.Recovery.NodesLost)
	fprintf(w, "re-admitted: %d (%d without re-profiling, %d degraded admissions)\n",
		r.Recovery.Readmitted, r.Recovery.ReadmittedNoReprofile, r.Recovery.DegradedAdmissions)
	fprintf(w, "LC re-admitted without re-profiling: %d/%d (%.0f%%)\n",
		r.Recovery.ReadmittedLCNoReprofile, r.Recovery.DisplacedLC, 100*r.LCNoReprofileFrac)
	fprintf(w, "MTTR: %.0fs mean, %.0fs half-life\n", r.MTTRSecs, r.HalfLifeSecs)
}
