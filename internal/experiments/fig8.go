package experiments

import (
	"io"

	"quasar/internal/cluster"
	"quasar/internal/core"
	"quasar/internal/loadgen"
	"quasar/internal/perfmodel"
	"quasar/internal/workload"
)

// Fig8Config sizes the low-latency webservice scenario (§6.3): a
// HotCRP-like web service under flat, fluctuating, and spiking traffic,
// with best-effort fillers soaking idle capacity, under Quasar vs an
// auto-scaling manager.
type Fig8Config struct {
	Seed        int64
	HorizonSecs float64
	BestEffort  int
	TargetQPS   float64 // 0 = derive from the service's capacity
}

// DefaultFig8Config matches the paper's ~400-minute runs.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{Seed: 23, HorizonSecs: 24000, BestEffort: 500}
}

// Fig8Series is one traffic pattern's outcome under one manager.
type Fig8Series struct {
	Manager string
	Pattern string

	Times      []float64
	TargetQPS  []float64
	Achieved   []float64
	QoSMetFrac float64 // fraction of queries meeting the latency QoS
	// TrackingErrPct is the mean |achieved-offered|/offered during the
	// run (after warm-up).
	TrackingErrPct float64

	// CoreSeries tracks cores allocated to the service and to best-effort
	// work (Fig. 8c).
	ServiceCores    []float64
	BestEffortCores []float64
}

// Fig8Result is the full figure: three patterns x two managers.
type Fig8Result struct {
	Series []Fig8Series
}

// fig8Patterns builds the three traffic shapes around a target QPS.
func fig8Patterns(target float64, horizon float64) map[string]loadgen.Pattern {
	return map[string]loadgen.Pattern{
		"flat": loadgen.Noisy{P: loadgen.Flat{QPS: target * 0.8}, CV: 0.03, Seed: 1},
		"fluctuating": loadgen.Noisy{P: loadgen.Fluctuating{
			Min: 0.2 * target, Max: target, Period: horizon / 4}, CV: 0.03, Seed: 2},
		"spike": loadgen.Noisy{P: loadgen.Spike{
			Base: 0.25 * target, Peak: target, Start: horizon * 0.45,
			Duration: horizon * 0.1, RampSecs: 120}, CV: 0.03, Seed: 3},
	}
}

// fig8Run executes one (manager, pattern) cell.
func fig8Run(kind ManagerKind, patName string, cfg Fig8Config) (*Fig8Series, error) {
	s, err := NewScenario(ScenarioConfig{
		Cluster: Local40, Manager: kind, Seed: cfg.Seed, MaxNodes: 8, SeedLib: 3,
	})
	if err != nil {
		return nil, err
	}
	w := s.U.New(workload.Spec{Type: workload.Webserver, Family: 0, MaxNodes: 8, QPS: cfg.TargetQPS})
	// HotCRP's 100 ms per-request bound corresponds to a knee around 60%
	// utilization — below the auto-scaler's 70% load trigger, which is
	// exactly why load-triggered scaling misses the latency QoS.
	lat := w.Genome.ServiceUS * 5
	w.Target.LatencyUS = lat
	if cfg.TargetQPS <= 0 {
		// The paper's HotCRP deployment replicates across 1-8 servers;
		// size the peak traffic to what 8 median machines can sustain
		// within the bound, so both managers have a feasible job.
		med := s.U.Platforms[len(s.U.Platforms)/2]
		nodes := make([]perfmodel.NodeAlloc, 8)
		for i := range nodes {
			nodes[i] = perfmodel.NodeAlloc{Platform: &med,
				Alloc: cluster.Alloc{Cores: med.Cores, MemoryGB: med.MemoryGB}}
		}
		capMed := w.CapacityQPS(nodes)
		w.Target.QPS = 0.8 * w.Genome.QPSAtQoS(capMed, lat)
	}
	pattern := fig8Patterns(w.Target.QPS, cfg.HorizonSecs)[patName]
	task := s.RT.Submit(w, 0, pattern)

	// Best-effort fillers stream over the run.
	beGap := cfg.HorizonSecs * 0.8 / float64(maxInt(cfg.BestEffort, 1))
	var beTasks []*core.Task
	for i := 0; i < cfg.BestEffort; i++ {
		be := s.U.New(workload.Spec{Type: workload.SingleNode, Family: -1, BestEffort: true})
		beTasks = append(beTasks, s.RT.Submit(be, float64(i)*beGap, nil))
	}

	out := &Fig8Series{Manager: kind.String(), Pattern: patName}
	stop := s.RT.Eng.Ticker(60, 60, func(now float64) {
		out.Times = append(out.Times, now)
		out.TargetQPS = append(out.TargetQPS, pattern.Load(now))
		out.Achieved = append(out.Achieved, task.LastAchievedQPS)
		out.ServiceCores = append(out.ServiceCores, float64(task.TotalCores()))
		be := 0
		for _, bt := range beTasks {
			if bt.Status == core.StatusRunning {
				be += bt.TotalCores()
			}
		}
		out.BestEffortCores = append(out.BestEffortCores, float64(be))
	})
	s.RT.Run(cfg.HorizonSecs)
	stop()
	s.RT.Stop()

	out.QoSMetFrac = task.QoSFrac.MeanBetween(600, cfg.HorizonSecs)
	// Tracking error after warm-up.
	sum, n := 0.0, 0
	for i, ts := range out.Times {
		if ts < 600 || out.TargetQPS[i] <= 0 {
			continue
		}
		d := (out.Achieved[i] - out.TargetQPS[i]) / out.TargetQPS[i]
		if d < 0 {
			sum += -d
		} else {
			sum += d
		}
		n++
	}
	if n > 0 {
		out.TrackingErrPct = 100 * sum / float64(n)
	}
	return out, nil
}

// Fig8 runs all six cells.
func Fig8(cfg Fig8Config) (*Fig8Result, error) {
	res := &Fig8Result{}
	for _, pat := range []string{"flat", "fluctuating", "spike"} {
		for _, kind := range []ManagerKind{KindQuasar, KindAutoscale} {
			s, err := fig8Run(kind, pat, cfg)
			if err != nil {
				return nil, err
			}
			res.Series = append(res.Series, *s)
		}
	}
	return res, nil
}

// Print renders the figure's panels.
func (r *Fig8Result) Print(w io.Writer) {
	fprintf(w, "== Figure 8: HotCRP-like webservice under Quasar vs auto-scaling ==\n")
	fprintf(w, "%-12s %-10s %14s %12s\n", "pattern", "manager", "QPS-tracking", "QoS met")
	for _, s := range r.Series {
		fprintf(w, "%-12s %-10s %12.1f%% %11.1f%%\n",
			s.Pattern, s.Manager, s.TrackingErrPct, 100*s.QoSMetFrac)
	}
	// Fig. 8c: core allocation over time for the fluctuating pattern
	// under Quasar.
	for _, s := range r.Series {
		if s.Pattern != "fluctuating" || s.Manager != "quasar" {
			continue
		}
		fprintf(w, "-- (c) cores over time (fluctuating, quasar) --\n")
		fprintf(w, "%-8s %10s %10s %12s\n", "t(min)", "offered", "svc cores", "b-e cores")
		for i := 0; i < len(s.Times); i += maxInt(1, len(s.Times)/16) {
			fprintf(w, "%-8.0f %10.0f %10.0f %12.0f\n",
				s.Times[i]/60, s.TargetQPS[i], s.ServiceCores[i], s.BestEffortCores[i])
		}
	}
	fprintf(w, "paper: quasar tracks QPS within ~4%% and meets QoS for ~99%% of queries;\n")
	fprintf(w, "autoscale lags ~18%% on fluctuating load and violates QoS around the spike.\n")
}
