package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"quasar/internal/obs"
	"quasar/internal/par"
)

// runAvailability executes the canned fault storm and returns the result
// plus (when traced) the JSONL rendering of the full event log.
func runAvailability(t testing.TB, trace bool) (*AvailabilityResult, []byte) {
	t.Helper()
	cfg := DefaultAvailabilityConfig()
	cfg.Trace = trace
	s, inj, err := availabilityScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.RT.Run(cfg.HorizonSecs)
	s.RT.Stop()
	res := availabilityResult(cfg, s, inj)
	var jsonl []byte
	if trace {
		var buf bytes.Buffer
		if err := obs.WriteJSONL(&buf, s.Tracer); err != nil {
			t.Fatal(err)
		}
		jsonl = buf.Bytes()
	}
	return res, jsonl
}

// TestAvailabilityAcceptance runs the canned storm and checks the PR's
// acceptance bar: the storm displaces real work including latency-critical
// services, at least 90% of displaced LC workloads are re-admitted without
// re-profiling, and recovery metrics are reported.
func TestAvailabilityAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full fault-storm scenario")
	}
	res, _ := runAvailability(t, false)
	if res.Faults.Crashes == 0 || res.Faults.Slowdowns == 0 || res.Faults.Partitions == 0 {
		t.Fatalf("storm did not exercise every fault kind: %+v", res.Faults)
	}
	if res.Recovery.Displaced < 2 {
		t.Fatalf("storm displaced only %d workloads; the scenario is too gentle to test recovery",
			res.Recovery.Displaced)
	}
	if res.Recovery.DisplacedLC < 1 {
		t.Fatalf("storm displaced no latency-critical workload: %+v", res.Recovery)
	}
	if res.LCNoReprofileFrac < 0.9 {
		t.Errorf("LC re-admission without re-profiling = %.2f, want >= 0.9 (recovery %+v)",
			res.LCNoReprofileFrac, res.Recovery)
	}
	if res.Recovery.Readmitted < res.Recovery.Displaced/2 {
		t.Errorf("only %d of %d displaced workloads re-admitted", res.Recovery.Readmitted, res.Recovery.Displaced)
	}
	if res.MTTRSecs <= 0 || res.HalfLifeSecs <= 0 {
		t.Errorf("recovery delays not recorded: MTTR=%.1f half-life=%.1f", res.MTTRSecs, res.HalfLifeSecs)
	}
	if res.QoSMetFrac <= 0.5 {
		t.Errorf("QoS met only %.1f%% of service ticks under the storm", 100*res.QoSMetFrac)
	}
	if res.LiveServers >= res.TotalServs {
		t.Errorf("no server left dead at horizon (live %d/%d); permanent crash missing?",
			res.LiveServers, res.TotalServs)
	}
}

// TestAvailabilityDeterministicAcrossWorkers reruns the traced storm for
// every worker count of the determinism contract: the aggregated result and
// the full JSONL trace must be byte-identical.
func TestAvailabilityDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the traced fault-storm scenario once per worker count")
	}
	run := func(workers int) ([]byte, []byte) {
		par.SetDefaultWorkers(workers)
		defer par.SetDefaultWorkers(0)
		res, jsonl := runAvailability(t, true)
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return blob, jsonl
	}
	wantRes, wantTrace := run(1)
	for _, w := range workerMatrix() {
		gotRes, gotTrace := run(w)
		if !bytes.Equal(wantRes, gotRes) {
			t.Fatalf("workers=%d: availability result diverged:\n  1: %s\n  %d: %s", w, wantRes, w, gotRes)
		}
		if !bytes.Equal(wantTrace, gotTrace) {
			t.Fatalf("workers=%d: fault-storm JSONL trace diverged from sequential", w)
		}
	}
}
