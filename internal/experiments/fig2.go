package experiments

import (
	"io"

	"quasar/internal/cluster"
	"quasar/internal/interference"
	"quasar/internal/perfmodel"
	"quasar/internal/sim"
	"quasar/internal/workload"
)

// Fig2Result reproduces Figure 2: the impact of heterogeneity,
// interference, scale-out, scale-up, and dataset on the performance of one
// Hadoop job (top row, speedups over platform A) and one memcached service
// (bottom row, latency/throughput knees).
type Fig2Result struct {
	Platforms []cluster.Platform

	// Hadoop speedups over one whole node of platform A.
	HadoopHeterogeneity map[string]float64 // per platform, whole node
	HadoopInterference  map[string]float64 // per Table 1 pattern on platform A
	HadoopScaleOut      map[int]float64    // per node count on platform A
	HadoopDataset       map[string]float64 // per Table 1 dataset on platform A
	HadoopScaleUpRange  [2]float64         // min/max speedup across within-node allocations on J

	// Memcached QPS sustained at the latency bound.
	MemcachedHeterogeneity map[string]float64 // per platform
	MemcachedInterference  map[string]float64 // per pattern on platform D
	MemcachedScaleUp       map[int]float64    // per core count on platform D
	MemcachedDataset       map[string]float64 // per dataset on platform D
}

// Fig2 evaluates the ground-truth surfaces exactly as the paper measured
// its two representative applications.
func Fig2(seed int64) *Fig2Result {
	platforms := cluster.LocalPlatforms()
	u := workload.NewUniverse(platforms, seed, 3)
	res := &Fig2Result{
		Platforms:              platforms,
		HadoopHeterogeneity:    map[string]float64{},
		HadoopInterference:     map[string]float64{},
		HadoopScaleOut:         map[int]float64{},
		HadoopDataset:          map[string]float64{},
		MemcachedHeterogeneity: map[string]float64{},
		MemcachedInterference:  map[string]float64{},
		MemcachedScaleUp:       map[int]float64{},
		MemcachedDataset:       map[string]float64{},
	}

	// The Hadoop job: a large recommendation job on the Netflix dataset.
	hw := u.New(workload.Spec{Type: workload.Hadoop, Family: 0,
		Dataset: workload.HadoopDatasets()[0], MaxNodes: 8})
	pA := &platforms[0]
	wholeA := cluster.Alloc{Cores: pA.Cores, MemoryGB: pA.MemoryGB}
	baseRate := hw.NodeRate(pA, wholeA, cluster.ResVec{})

	for i := range platforms {
		p := &platforms[i]
		whole := cluster.Alloc{Cores: p.Cores, MemoryGB: p.MemoryGB}
		res.HadoopHeterogeneity[p.Name] = hw.NodeRate(p, whole, cluster.ResVec{}) / baseRate
	}
	for _, pat := range interference.Patterns() {
		rate := hw.NodeRate(pA, wholeA, pat.Vec(0.8))
		res.HadoopInterference[pat.Name] = rate / baseRate
	}
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		nodes := make([]perfmodel.NodeAlloc, n)
		for i := range nodes {
			nodes[i] = perfmodel.NodeAlloc{Platform: pA, Alloc: wholeA}
		}
		res.HadoopScaleOut[n] = hw.JobRate(nodes) / baseRate
	}
	for _, ds := range workload.HadoopDatasets() {
		inst := u.New(workload.Spec{Type: workload.Hadoop, Family: 0, Dataset: ds, MaxNodes: 8})
		// Dataset impact on time = work multiplier / rate change.
		rate := inst.NodeRate(pA, wholeA, cluster.ResVec{})
		res.HadoopDataset[ds.Name] = (rate / inst.Genome.Work) / (baseRate / hw.Genome.Work)
	}
	// Scale-up spread on the largest platform (the violin width).
	pJ := &platforms[9]
	lo, hi := 1e18, 0.0
	for _, c := range []int{2, 4, 8, 12, 16, 24} {
		for _, m := range []float64{4, 8, 16, 32, 48} {
			r := hw.NodeRate(pJ, cluster.Alloc{Cores: c, MemoryGB: m}, cluster.ResVec{}) / baseRate
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
	}
	res.HadoopScaleUpRange = [2]float64{lo, hi}

	// The memcached service under read-intensive load.
	mw := u.New(workload.Spec{Type: workload.Memcached, Family: 0,
		Dataset: workload.MemcachedDatasets()[0], MaxNodes: 4})
	bound := mw.Target.LatencyUS
	pD := &platforms[3]
	wholeD := cluster.Alloc{Cores: pD.Cores, MemoryGB: pD.MemoryGB}
	qpsAt := func(w *workload.Instance, p *cluster.Platform, alloc cluster.Alloc, pressure cluster.ResVec) float64 {
		capQPS := w.NodeRate(p, alloc, pressure) * w.Genome.QPSPerUnit
		return w.Genome.QPSAtQoS(capQPS, bound)
	}
	for i := range platforms {
		p := &platforms[i]
		whole := cluster.Alloc{Cores: p.Cores, MemoryGB: p.MemoryGB}
		res.MemcachedHeterogeneity[p.Name] = qpsAt(mw, p, whole, cluster.ResVec{})
	}
	for _, pat := range interference.Patterns() {
		res.MemcachedInterference[pat.Name] = qpsAt(mw, pD, wholeD, pat.Vec(0.8))
	}
	for _, c := range []int{2, 4, 8} {
		res.MemcachedScaleUp[c] = qpsAt(mw, pD, cluster.Alloc{Cores: c, MemoryGB: wholeD.MemoryGB}, cluster.ResVec{})
	}
	for _, ds := range workload.MemcachedDatasets() {
		inst := u.New(workload.Spec{Type: workload.Memcached, Family: 0, Dataset: ds, MaxNodes: 4})
		res.MemcachedDataset[ds.Name] = qpsAt(inst, pD, wholeD, cluster.ResVec{})
	}
	_ = sim.NewRNG
	return res
}

// Print renders the eight panels.
func (r *Fig2Result) Print(w io.Writer) {
	fprintf(w, "== Figure 2: allocation/assignment impact on Hadoop and memcached ==\n")
	fprintf(w, "-- Hadoop: heterogeneity (speedup over platform A, whole nodes) --\n")
	for i := range r.Platforms {
		name := r.Platforms[i].Name
		fprintf(w, "%-4s %6.2fx\n", name, r.HadoopHeterogeneity[name])
	}
	fprintf(w, "-- Hadoop: interference on platform A (relative rate, pattern at 0.8 intensity) --\n")
	for _, pat := range []string{"A", "B", "C", "D", "E", "F", "G", "H", "I"} {
		fprintf(w, "%-4s %6.2f\n", pat, r.HadoopInterference[pat])
	}
	fprintf(w, "-- Hadoop: scale-out on platform A (speedup) --\n")
	for n := 1; n <= 8; n++ {
		fprintf(w, "%-4d %6.2fx\n", n, r.HadoopScaleOut[n])
	}
	fprintf(w, "-- Hadoop: dataset impact on platform A (relative speed) --\n")
	for _, ds := range []string{"netflix", "mahout", "wikipedia"} {
		fprintf(w, "%-10s %6.2f\n", ds, r.HadoopDataset[ds])
	}
	fprintf(w, "-- Hadoop: scale-up spread on platform J: %.2fx .. %.2fx --\n",
		r.HadoopScaleUpRange[0], r.HadoopScaleUpRange[1])

	fprintf(w, "-- memcached: heterogeneity (kQPS at latency bound, whole nodes) --\n")
	for i := range r.Platforms {
		name := r.Platforms[i].Name
		fprintf(w, "%-4s %8.0f\n", name, r.MemcachedHeterogeneity[name]/1000)
	}
	fprintf(w, "-- memcached: interference on platform D (kQPS at bound) --\n")
	for _, pat := range []string{"A", "B", "C", "D", "E", "F", "G", "H", "I"} {
		fprintf(w, "%-4s %8.0f\n", pat, r.MemcachedInterference[pat]/1000)
	}
	fprintf(w, "-- memcached: scale-up on platform D (kQPS at bound) --\n")
	for _, c := range []int{2, 4, 8} {
		fprintf(w, "%2d cores %8.0f\n", c, r.MemcachedScaleUp[c]/1000)
	}
	fprintf(w, "-- memcached: dataset impact on platform D (kQPS at bound) --\n")
	for _, ds := range []string{"100B-reads", "2KB-reads", "100B-rw"} {
		fprintf(w, "%-12s %8.0f\n", ds, r.MemcachedDataset[ds]/1000)
	}
}
