package experiments

import (
	"encoding/json"
	"testing"

	"quasar/internal/par"
)

// TestSLODetectAccuracy runs the canned crash storm and holds the PR's
// alerting-quality bar: pages attribute to injected outages with high
// precision, every sustained outage pages, and the page channel is no slower
// than the operator-visible heartbeat detector at noticing a dead server.
func TestSLODetectAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 10000s crash-storm scenario")
	}
	r, err := SLODetect(DefaultSLODetectConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Outages) != 4 {
		t.Fatalf("scripted %d outages, want 4", len(r.Outages))
	}
	if r.ScoredOutages < 2 {
		t.Fatalf("only %d outages sustained past the scoring bar; the storm no longer injects real damage", r.ScoredOutages)
	}
	if r.Precision < 0.9 {
		t.Errorf("page precision %.2f < 0.9 (%d true / %d false)",
			r.Precision, r.TruePositivePages, r.FalsePositivePages)
	}
	if r.Recall < 1.0 {
		t.Errorf("outage recall %.2f < 1.0 (%d/%d)", r.Recall, r.DetectedOutages, r.ScoredOutages)
	}
	if !(r.PageMTTDSecs <= r.HBMTTDSecs) { //lint:allow(floatcmp) ordering assertion, NaN must fail
		t.Errorf("page MTTD %.0fs slower than heartbeat MTTD %.0fs", r.PageMTTDSecs, r.HBMTTDSecs)
	}
}

// TestSLODetectDeterministicAcrossWorkers re-runs the full storm under
// different evaluation fan-outs and requires the entire scored result —
// outage ground truth, page attribution, and latency numbers — to be
// byte-identical.
func TestSLODetectDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the crash-storm scenario per worker count")
	}
	marshal := func(workers int) string {
		par.SetDefaultWorkers(workers)
		defer par.SetDefaultWorkers(0)
		r, err := SLODetect(DefaultSLODetectConfig())
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	want := marshal(1)
	for _, workers := range []int{2, 4} {
		if got := marshal(workers); got != want {
			t.Errorf("workers=%d result differs\n got %s\nwant %s", workers, got, want)
		}
	}
}
