package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"quasar/internal/par"
)

// TestStreamedTraceMatchesBufferedAcrossWorkers is the streaming pipeline's
// half of the determinism contract at scale: at the 1k-server point, the
// JSONL file a StreamSink writes incrementally must be byte-identical to the
// buffered WriteJSONL export, for every worker count. A divergence here means
// the sink pipeline — not the event stream — broke determinism.
func TestStreamedTraceMatchesBufferedAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the at-scale scenario once buffered plus once per worker count")
	}
	cfg := DefaultScaleTraceConfig()
	want, err := ScaleTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("buffered at-scale run emitted an empty trace")
	}
	for _, w := range workerMatrix() {
		par.SetDefaultWorkers(w)
		var buf bytes.Buffer
		n, err := ScaleTraceStreamed(cfg, &buf)
		par.SetDefaultWorkers(0)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("workers=%d: BytesWritten %d != buffer length %d", w, n, buf.Len())
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("workers=%d: streamed trace diverged from buffered at byte %d of %d",
				w, diffAt(want, buf.Bytes()), len(want))
		}
	}
}

// TestObsScaleQuick exercises the full measure path at smoke size and checks
// the invariants that hold at any scale: events flowed, bytes streamed, and
// the pipeline's high-water memory stayed far below the trace size.
func TestObsScaleQuick(t *testing.T) {
	res, err := ObsScale(QuickObsScaleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("quick sweep produced %d points", len(res.Points))
	}
	p := res.Points[0]
	if p.Events == 0 || p.TraceBytes == 0 {
		t.Fatalf("traced run recorded nothing: %+v", p)
	}
	if p.TracedSecs <= 0 || p.UntracedSecs <= 0 {
		t.Fatalf("timings missing: %+v", p)
	}
	if int64(p.TracerHighWaterBytes) >= p.TraceBytes {
		t.Fatalf("tracer high water %d not bounded below trace size %d",
			p.TracerHighWaterBytes, p.TraceBytes)
	}
}

// TestObsScaleBaselineFile keeps the committed BENCH_obs_scale.json honest:
// it must parse, cover the default sweep points, and itself satisfy the
// observability-at-scale contract — under 10% trace overhead at 10k servers
// with bounded tracer memory.
func TestObsScaleBaselineFile(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_obs_scale.json")
	if err != nil {
		t.Fatalf("BENCH_obs_scale.json missing (regenerate with quasar-bench obsscale): %v", err)
	}
	var base ObsScaleResult
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	want := DefaultObsScaleConfig()
	if len(base.Points) != len(want.Points) {
		t.Fatalf("baseline has %d points, default sweep has %d — regenerate", len(base.Points), len(want.Points))
	}
	has10k := false
	for i, p := range base.Points {
		if p.Servers != want.Points[i].Servers || p.Workloads != want.Points[i].Workloads() ||
			p.TraceTopK != want.Points[i].TraceTopK {
			t.Errorf("baseline point %d is (%d servers, %d workloads, topk %d), default sweep says (%d, %d, %d) — regenerate",
				i, p.Servers, p.Workloads, p.TraceTopK,
				want.Points[i].Servers, want.Points[i].Workloads(), want.Points[i].TraceTopK)
		}
		if p.Servers >= 10000 {
			has10k = true
		}
	}
	if !has10k {
		t.Fatal("baseline lacks a 10k-server point — the overhead budget is unenforced")
	}
	if err := base.Check(); err != nil {
		t.Fatal(err)
	}
}
