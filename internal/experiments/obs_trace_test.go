package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"quasar/internal/obs"
	"quasar/internal/par"
)

var updateObsGolden = flag.Bool("update-obs", false, "rewrite the obs exporter golden files")

// tinyTracedScenario runs a small seeded scenario with tracing on and
// returns its tracer. The mix exercises every emission path: batch jobs
// (placements, completions, scale decisions), services (QoS transitions),
// and best-effort fillers (evictions).
func tinyTracedScenario(t *testing.T) *obs.Tracer {
	t.Helper()
	cfg := ObsBenchConfig{
		Hadoop: 1, Spark: 1, Storm: 0, Services: 2, SingleNode: 4, BestEffort: 6,
		HorizonSecs: 3000, Seed: 7,
	}
	s, err := obsBenchRun(cfg, true, false)
	if err != nil {
		t.Fatal(err)
	}
	return s.Tracer
}

// renderAll renders the three exporter formats.
func renderAll(t *testing.T, tr *obs.Tracer) (jsonl, chrome, prom []byte) {
	t.Helper()
	var a, b, c bytes.Buffer
	if err := obs.WriteJSONL(&a, tr); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteChromeTrace(&b, tr); err != nil {
		t.Fatal(err)
	}
	if err := obs.WritePromSnapshot(&c, tr); err != nil {
		t.Fatal(err)
	}
	return a.Bytes(), b.Bytes(), c.Bytes()
}

// TestTraceExportersDeterministicAcrossWorkers runs the traced scenario for
// every worker count of the determinism contract and requires all three
// exporter outputs to be byte-identical.
func TestTraceExportersDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the traced scenario once per worker count")
	}
	run := func(workers int) (j, c, p []byte) {
		par.SetDefaultWorkers(workers)
		defer par.SetDefaultWorkers(0)
		return renderAll(t, tinyTracedScenario(t))
	}
	wj, wc, wp := run(1)
	for _, w := range workerMatrix() {
		gj, gc, gp := run(w)
		if !bytes.Equal(wj, gj) {
			t.Fatalf("workers=%d: JSONL diverged from sequential", w)
		}
		if !bytes.Equal(wc, gc) {
			t.Fatalf("workers=%d: chrome trace diverged from sequential", w)
		}
		if !bytes.Equal(wp, gp) {
			t.Fatalf("workers=%d: prom snapshot diverged from sequential", w)
		}
	}
}

// TestTraceExporterGoldens pins the exact bytes of each exporter on the
// seeded scenario. Regenerate with: go test ./internal/experiments -run
// TestTraceExporterGoldens -update-obs
func TestTraceExporterGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full traced scenario")
	}
	jsonl, chrome, prom := renderAll(t, tinyTracedScenario(t))
	for _, g := range []struct {
		file string
		got  []byte
	}{
		{"obs_trace.jsonl", jsonl},
		{"obs_trace.chrome.json", chrome},
		{"obs_trace.prom", prom},
	} {
		path := filepath.Join("testdata", g.file)
		if *updateObsGolden {
			if err := os.WriteFile(path, g.got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden %s (run with -update-obs): %v", path, err)
		}
		if !bytes.Equal(want, g.got) {
			t.Errorf("%s drifted from golden (regenerate with -update-obs if intended)", g.file)
		}
	}
}

// TestTraceAnswersPlacement closes the explainability loop: from the JSONL
// log alone, reconstruct why a workload landed on the server it did.
func TestTraceAnswersPlacement(t *testing.T) {
	tr := tinyTracedScenario(t)
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i := range evs {
		ev := &evs[i]
		if ev.Cat != "sched" || ev.Name != "decision" {
			continue
		}
		var w struct {
			Decision obs.ScheduleDecision `json:"decision"`
		}
		if err := json.Unmarshal(ev.Args, &w); err != nil {
			t.Fatalf("decision event %d does not decode: %v", ev.Seq, err)
		}
		d := &w.Decision
		if d.Outcome != obs.OutcomePlaced {
			continue
		}
		if len(d.Picks) == 0 || len(d.Candidates) == 0 {
			t.Fatalf("placed decision for %s carries no picks/candidates", d.Workload)
		}
		for _, srv := range d.PickedServers() {
			c, ok := d.CandidateFor(srv)
			if !ok {
				t.Fatalf("picked server %d missing from candidate ranking for %s", srv, d.Workload)
			}
			if !c.Picked {
				t.Fatalf("candidate %d not marked picked for %s", srv, d.Workload)
			}
			if c.Quality <= 0 {
				t.Fatalf("picked server %d has non-positive quality for %s", srv, d.Workload)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("trace contains no placed scheduling decisions")
	}
}
