package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"quasar/internal/classify"
	"quasar/internal/cluster"
	"quasar/internal/loadgen"
	"quasar/internal/obs"
	"quasar/internal/par"
	"quasar/internal/sched"
	"quasar/internal/serve"
	"quasar/internal/sim"
	"quasar/internal/workload"
)

// AllocBench is the dynamic half of the hot-path allocation gate. The static
// half (quasar-lint's hotalloc analyzer) proves every allocation site reachable
// from the hot roots in hotpath.json is annotated; this benchmark measures what
// those roots actually allocate per operation at steady state, using
// testing.AllocsPerRun, and compares the counts against the budgets committed
// in BENCH_alloc.json. A probe exceeding its budget is an allocation
// regression: some change re-introduced per-operation garbage on a path the
// static gate only sees as "annotated".
//
// Budgets are ceilings with headroom, not exact counts — the retained-by-design
// allocations (trace events, heatmap history, returned assignments) legitimately
// vary with scenario phase. Exceeding one means a structural regression (a new
// per-op allocation), not noise.

// AllocBenchConfig sizes the allocation probes.
type AllocBenchConfig struct {
	// Runs is the sample count handed to testing.AllocsPerRun per probe.
	Runs int
	// WarmTicks is how many runtime ticks each scenario executes before
	// probing, so scratch buffers reach steady-state capacity.
	WarmTicks int
	Seed      int64
}

// DefaultAllocBenchConfig returns the committed-baseline settings.
func DefaultAllocBenchConfig() AllocBenchConfig {
	return AllocBenchConfig{Runs: 200, WarmTicks: 400, Seed: 11}
}

// AllocProbe is one measured hot root.
type AllocProbe struct {
	// Name identifies the probe; it is the stable key budgets are matched by.
	Name string `json:"name"`
	// HotRoot is the hotpath.json key the probe exercises (documentation).
	HotRoot string `json:"hot_root"`
	// AllocsPerOp is the measured mean heap allocations per operation.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Budget is the committed ceiling; AllocsPerOp > Budget is a regression.
	Budget float64 `json:"budget"`
}

// AllocBenchResult is the record committed as BENCH_alloc.json.
type AllocBenchResult struct {
	Runs      int          `json:"runs"`
	WarmTicks int          `json:"warm_ticks"`
	Seed      int64        `json:"seed"`
	Probes    []AllocProbe `json:"probes"`
}

// allocBudgets holds the committed ceilings. They are defined in code (not
// only in BENCH_alloc.json) so a fresh checkout can regenerate the baseline
// file without a previous one to copy budgets from.
var allocBudgets = map[string]float64{
	// One event pop + self-reschedule through the engine freelist: zero
	// steady-state allocations (measured 0.0).
	"sim_step": 1,
	// One scheduling decision: the returned Assignment, its node list, and
	// the tuned framework config are the decision itself (annotated as such);
	// candidate ranking and sizing reuse scheduler-owned scratch
	// (measured 5.0).
	"sched_schedule": 10,
	// One runtime tick over nine steady services: progress accounting and
	// load lookups are allocation-free; the residue is per-service
	// monitoring state and sampling history (retained by design), about
	// seven allocations per service per tick (measured 66.0).
	"runtime_tick": 85,
	// One runtime tick with the SLO engine attached, sequential fan-out:
	// adds window pushes and health scoring on reused scratch
	// (measured 68.0).
	"slo_tick": 90,
	// One event through the full trace pipeline — controls, sequencing, and
	// fan-out to a streaming JSONL sink plus a ring flight recorder. The
	// caller's variadic args slice and its boxed values are three of these;
	// the rest is argsObject.MarshalJSON's per-arg json.Marshal buffers —
	// kept, despite the count, because hand-rolled escaping would put the
	// byte-identity contract at risk (measured 15.0).
	"tracer_emit": 20,
	// One journaled admission against a discarding writer: the predicted-ID
	// string and the pending-batch entry are the admission itself; the JSON
	// encoding reuses the encoder's buffer (measured 2.0).
	"serve_admit": 6,
}

// simStepProbe builds a self-rescheduling event loop and measures one Step.
func simStepProbe(runs int) float64 {
	eng := sim.NewEngine()
	var tick func()
	tick = func() { eng.After(1, tick) }
	eng.After(1, tick)
	for i := 0; i < 64; i++ { // warm the event freelist
		eng.Step()
	}
	return testing.AllocsPerRun(runs, func() { eng.Step() })
}

// schedScheduleProbe measures one right-sizing decision against a populated
// cluster. Schedule does not mutate the cluster, so repeated calls see
// identical state.
func schedScheduleProbe(runs int, seed int64) (float64, error) {
	platforms := cluster.LocalPlatforms()
	cl, err := cluster.New(platforms, []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4})
	if err != nil {
		return 0, err
	}
	u := workload.NewUniverse(platforms, seed, 3)
	copts := classify.DefaultOptions()
	copts.MaxNodes = 32
	ceng := classify.NewEngine(platforms, copts, sim.NewRNG(seed+1))
	for _, tp := range []workload.Type{workload.Hadoop, workload.Memcached, workload.SingleNode} {
		for i := 0; i < 3; i++ {
			w := u.New(workload.Spec{Type: tp, Family: -1, MaxNodes: 4})
			ceng.SeedOffline(w, classify.NewGroundTruthProber(w, platforms, sim.NewRNG(seed+int64(i))))
		}
	}
	est := map[string]*classify.Estimates{}
	s := sched.New(cl, sched.DefaultOptions())

	// Residents: occupy part of the cluster so ranking sees pressure.
	for i := 0; i < 10; i++ {
		w := u.New(workload.Spec{Type: workload.SingleNode, Family: -1, MaxNodes: 1})
		es := ceng.Classify(w, classify.NewGroundTruthProber(w, platforms, sim.NewRNG(seed+100+int64(i))))
		est[w.ID] = es
		asn, err := s.Schedule(&sched.Request{
			W: w, Est: es, NeedPerf: 5, MaxNodes: 1, AcceptPartial: true,
			EstOf: func(id string) *classify.Estimates { return est[id] },
		})
		if err != nil {
			return 0, err
		}
		for _, n := range asn.Nodes {
			caused := w.CausedPressure(n.Server.Platform, n.Alloc)
			if _, err := n.Server.Place(w.ID, n.Alloc, caused, w.BestEffort); err != nil {
				return 0, err
			}
		}
	}

	w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 8})
	es := ceng.Classify(w, classify.NewGroundTruthProber(w, platforms, sim.NewRNG(seed+7)))
	est[w.ID] = es
	req := &sched.Request{
		W: w, Est: es, NeedPerf: 20, MaxNodes: 8,
		EstOf: func(id string) *classify.Estimates { return est[id] },
	}
	if _, err := s.Schedule(req); err != nil { // warm scheduler scratch
		return 0, err
	}
	return testing.AllocsPerRun(runs, func() {
		_, _ = s.Schedule(req)
	}), nil
}

// tracerEmitProbe measures one event through the whole trace pipeline at
// steady state: controls active (an off-category filter that the probe's own
// category passes, so the keep path runs), sequence assignment, and fan-out
// to a streaming JSONL sink (real encoding, discarded bytes) plus a ring
// flight recorder. The warm loop fills the ring and the encoder's pooled
// scratch first.
func tracerEmitProbe(runs int) float64 {
	now := 0.0
	tr := obs.NewWithSinks(func() float64 { return now },
		obs.NewStreamSinkWriter(io.Discard), obs.NewRingSink(256))
	tr.SetControls(obs.Controls{Category: map[string]obs.Level{"chaos": obs.LevelOff}})
	emit := func(i int) {
		now += 0.001
		tr.Instant("server/7", "runtime", "alloc.probe",
			obs.Arg{Key: "tick", Val: i}, obs.Arg{Key: "load", Val: now})
	}
	for i := 0; i < 512; i++ {
		emit(i)
	}
	i := 0
	return testing.AllocsPerRun(runs, func() {
		i++
		emit(i)
	})
}

// steadyServiceScenario builds a Quasar scenario whose workloads never
// complete (latency-critical services under fluctuating load), so per-tick
// allocation behavior is stationary for the probe's duration.
func steadyServiceScenario(seed int64, withSLO bool) (*Scenario, error) {
	s, err := NewScenario(ScenarioConfig{
		Cluster: Local40, Manager: KindQuasar, Seed: seed,
		MaxNodes: 4, SeedLib: 3, SLO: withSLO,
	})
	if err != nil {
		return nil, err
	}
	svcTypes := []workload.Type{workload.Webserver, workload.Memcached, workload.Cassandra}
	at := 0.0
	for i := 0; i < 9; i++ {
		w := s.U.New(workload.Spec{Type: svcTypes[i%3], Family: -1, MaxNodes: 3})
		load := loadgen.Fluctuating{Min: 0.4 * w.Target.QPS, Max: 0.8 * w.Target.QPS, Period: 6000}
		s.RT.Submit(w, at, load)
		at += 5
	}
	return s, nil
}

// tickProbe advances a warmed scenario one runtime tick per operation.
func tickProbe(cfg AllocBenchConfig, withSLO bool) (float64, error) {
	s, err := steadyServiceScenario(cfg.Seed, withSLO)
	if err != nil {
		return 0, err
	}
	tick := 5.0
	s.RT.Run(float64(cfg.WarmTicks) * tick)
	eng := s.RT.Eng
	return testing.AllocsPerRun(cfg.Runs, func() {
		eng.Run(eng.Now() + tick)
	}), nil
}

// AllocBench runs every probe. Fan-outs run sequentially (one worker) so the
// counts do not depend on GOMAXPROCS or goroutine scheduling.
func AllocBench(cfg AllocBenchConfig) (*AllocBenchResult, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 200
	}
	if cfg.WarmTicks <= 0 {
		cfg.WarmTicks = 400
	}
	prev := par.Resolve(0)
	par.SetDefaultWorkers(1)
	defer par.SetDefaultWorkers(prev)

	res := &AllocBenchResult{Runs: cfg.Runs, WarmTicks: cfg.WarmTicks, Seed: cfg.Seed}
	add := func(name, root string, allocs float64) {
		res.Probes = append(res.Probes, AllocProbe{
			Name: name, HotRoot: root, AllocsPerOp: allocs, Budget: allocBudgets[name],
		})
	}

	add("sim_step", "quasar/internal/sim.(*Engine).Step", simStepProbe(cfg.Runs))

	allocs, err := schedScheduleProbe(cfg.Runs, cfg.Seed)
	if err != nil {
		return nil, err
	}
	add("sched_schedule", "quasar/internal/sched.(*Scheduler).Schedule", allocs)

	allocs, err = tickProbe(cfg, false)
	if err != nil {
		return nil, err
	}
	add("runtime_tick", "quasar/internal/core.(*Runtime).tick", allocs)

	allocs, err = tickProbe(cfg, true)
	if err != nil {
		return nil, err
	}
	add("slo_tick", "quasar/internal/slo.(*Engine).onTick", allocs)

	add("tracer_emit", "quasar/internal/obs.(*Tracer).emit", tracerEmitProbe(cfg.Runs))

	allocs, err = serveAdmitProbe(cfg.Runs)
	if err != nil {
		return nil, err
	}
	add("serve_admit", "quasar/internal/serve.(*Journal).Admit", allocs)

	return res, nil
}

// serveAdmitProbe measures one journaled admission — stamp, encode, append —
// against a discarding writer, the synchronous work every live HTTP submit
// pays under the journal lock.
func serveAdmitProbe(runs int) (float64, error) {
	j := serve.NewJournalWriter(io.Discard, serve.Config{}, 1)
	e := serve.Entry{Kind: serve.KindSubmit, Submit: &serve.SubmitRequest{
		Type: "single-node", Family: -1, BestEffort: true,
	}}
	for i := 0; i < 64; i++ { // warm the encoder and pending-batch storage
		if _, err := j.Admit(e); err != nil {
			return 0, err
		}
	}
	return testing.AllocsPerRun(runs, func() { _, _ = j.Admit(e) }), nil
}

// Check compares measured counts against budgets and returns one error per
// regression (nil when all probes are within budget).
func (r *AllocBenchResult) Check() error {
	var bad []string
	for _, p := range r.Probes {
		if p.Budget <= 0 {
			bad = append(bad, fmt.Sprintf("%s: no budget defined", p.Name))
			continue
		}
		if p.AllocsPerOp > p.Budget {
			bad = append(bad, fmt.Sprintf("%s: %.1f allocs/op exceeds budget %.0f",
				p.Name, p.AllocsPerOp, p.Budget))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("allocation regression:\n  %s", joinLines(bad))
	}
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}

// Print renders the probe table.
func (r *AllocBenchResult) Print(w io.Writer) {
	fprintf(w, "== Hot-path allocation benchmark (%d runs/probe, %d warm ticks) ==\n",
		r.Runs, r.WarmTicks)
	fprintf(w, "%-16s %14s %8s  %s\n", "probe", "allocs/op", "budget", "hot root")
	for _, p := range r.Probes {
		status := ""
		if p.AllocsPerOp > p.Budget {
			status = "  REGRESSION"
		}
		fprintf(w, "%-16s %14.1f %8.0f  %s%s\n", p.Name, p.AllocsPerOp, p.Budget, p.HotRoot, status)
	}
}

// WriteJSON writes the result to path.
func (r *AllocBenchResult) WriteJSON(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
