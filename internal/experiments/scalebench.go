package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"quasar/internal/classify"
	"quasar/internal/cluster"
	"quasar/internal/sched"
	"quasar/internal/sim"
	"quasar/internal/workload"
)

// ScaleBench measures how the two PR-scale fast paths hold up as the cluster
// grows: schedules/sec through the free-resource index vs the full-scan
// oracle ranker, and events/sec through the calendar-queue engine core vs
// the binary-heap oracle. Each point packs most servers full (the regime
// where indexed ranking pays: full servers are never visited, and the
// pristine spares of a platform are appraised once) and then times both
// implementations on identical inputs. Rates come from the wall clock; only
// the speedup ratios are meaningful across hosts.

// ScalePointConfig sizes one sweep point.
type ScalePointConfig struct {
	Servers   int `json:"servers"`
	Workloads int `json:"workloads"`
}

// ScaleBenchConfig configures the sweep.
type ScaleBenchConfig struct {
	Points []ScalePointConfig
	Seed   int64
	// MaxSecsPerMeasure time-boxes each timed loop: iteration stops once the
	// box is exceeded (the full scan at 10k servers would otherwise take
	// minutes). At least one iteration always runs.
	MaxSecsPerMeasure float64
}

// DefaultScaleBenchConfig returns the committed sweep: 100 → 10k servers
// with 10× as many workload-scaled operations per point.
func DefaultScaleBenchConfig() ScaleBenchConfig {
	return ScaleBenchConfig{
		Points: []ScalePointConfig{
			{Servers: 100, Workloads: 1000},
			{Servers: 1000, Workloads: 10000},
			{Servers: 10000, Workloads: 100000},
		},
		Seed:              20260808,
		MaxSecsPerMeasure: 1.0,
	}
}

// QuickScaleBenchConfig returns the CI smoke sweep: small enough for a lane,
// big enough that the 1k-server point must still beat the full scan.
func QuickScaleBenchConfig() ScaleBenchConfig {
	return ScaleBenchConfig{
		Points: []ScalePointConfig{
			{Servers: 100, Workloads: 1000},
			{Servers: 1000, Workloads: 5000},
		},
		Seed:              20260808,
		MaxSecsPerMeasure: 0.25,
	}
}

// ScalePoint is one measured sweep point.
type ScalePoint struct {
	Servers              int     `json:"servers"`
	Workloads            int     `json:"workloads"`
	IndexedSchedPerSec   float64 `json:"indexed_schedules_per_sec"`
	FullScanSchedPerSec  float64 `json:"full_scan_schedules_per_sec"`
	SchedSpeedup         float64 `json:"sched_speedup"`
	CalendarEventsPerSec float64 `json:"calendar_events_per_sec"`
	HeapEventsPerSec     float64 `json:"heap_events_per_sec"`
	EventSpeedup         float64 `json:"event_speedup"`
}

// ScaleBenchResult is the sweep record committed as BENCH_scale.json.
type ScaleBenchResult struct {
	CPUs       int          `json:"cpus"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Points     []ScalePoint `json:"points"`
}

// Check enforces the scaling contract: the indexed ranker must at least
// match the full scan from 1k servers up, and beat it 10× at 10k; the
// calendar queue must at least match the heap at every point.
func (r *ScaleBenchResult) Check() error {
	for _, p := range r.Points {
		if p.Servers >= 10000 && p.SchedSpeedup < 10 {
			return fmt.Errorf("scalebench: sched speedup %.2fx at %d servers, need >= 10x",
				p.SchedSpeedup, p.Servers)
		}
		if p.Servers >= 1000 && p.SchedSpeedup < 1 {
			return fmt.Errorf("scalebench: sched speedup %.2fx at %d servers, need >= 1x",
				p.SchedSpeedup, p.Servers)
		}
		if p.Servers >= 1000 && p.EventSpeedup < 0.8 {
			return fmt.Errorf("scalebench: event speedup %.2fx at %d servers, need >= 0.8x",
				p.EventSpeedup, p.Servers)
		}
	}
	return nil
}

// scaleCluster builds and packs one sweep cluster: ~97% of servers are
// filled completely (excluded from the index), a thin slice keeps one free
// core or carries evictable best-effort fillers (populating the occupiable
// buckets), and the rest stay pristine spares.
func scaleCluster(servers int) (*cluster.Cluster, error) {
	c, err := cluster.NewUniform(cluster.LocalPlatforms(), servers)
	if err != nil {
		return nil, err
	}
	for i, srv := range c.Servers {
		switch {
		case i%33 == 0: // pristine spare (~3%)
			continue
		case i%2000 == 50: // fully-packed but evictable
			_, err = srv.Place(fmt.Sprintf("be-%d", i),
				cluster.Alloc{Cores: srv.Platform.Cores, MemoryGB: srv.Platform.MemoryGB},
				cluster.ResVec{}, true)
		case i%2000 == 51: // one core left over
			if srv.Platform.Cores < 2 {
				continue
			}
			_, err = srv.Place(fmt.Sprintf("part-%d", i),
				cluster.Alloc{Cores: srv.Platform.Cores - 1, MemoryGB: srv.Platform.MemoryGB / 2},
				cluster.ResVec{}, false)
		default:
			// Full, hosting several colocated workloads (the packed steady
			// state a consolidating cluster converges to): the index never
			// visits these, the full scan walks every resident.
			k := 4
			if srv.Platform.Cores < k {
				k = srv.Platform.Cores
			}
			cores, mem := srv.Platform.Cores/k, srv.Platform.MemoryGB/float64(k)
			for j := 0; j < k && err == nil; j++ {
				a := cluster.Alloc{Cores: cores, MemoryGB: mem}
				if j == k-1 { // remainder goes to the last resident
					a.Cores = srv.FreeCores()
					a.MemoryGB = srv.FreeMemGB()
				}
				_, err = srv.Place(fmt.Sprintf("fill-%d-%d", i, j), a, cluster.ResVec{}, false)
			}
		}
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// scaleRequests classifies a small mixed set of workloads to cycle through
// during the timed loops (classification cost stays out of the measurement).
func scaleRequests(platforms []cluster.Platform, seed int64) []*sched.Request {
	u := workload.NewUniverse(platforms, 21, 3)
	copts := classify.DefaultOptions()
	copts.MaxNodes = 32
	eng := classify.NewEngine(platforms, copts, sim.NewRNG(seed))
	est := map[string]*classify.Estimates{}
	types := []workload.Type{workload.Hadoop, workload.Memcached, workload.SingleNode, workload.Spark}
	var reqs []*sched.Request
	for i, tp := range types {
		w := u.New(workload.Spec{Type: tp, Family: -1, MaxNodes: 4})
		es := eng.Classify(w, classify.NewGroundTruthProber(w, platforms, sim.NewRNG(seed+int64(i))))
		est[w.ID] = es
		reqs = append(reqs, &sched.Request{
			W: w, Est: es, NeedPerf: 2 + float64(i), MaxNodes: 2,
			EstOf: func(id string) *classify.Estimates { return est[id] },
		})
	}
	return reqs
}

// timeSchedules runs Schedule calls (cycling through reqs) until the box or
// the iteration cap is hit and returns the rate. Schedule does not mutate
// the cluster, so both schedulers measure against identical state.
func timeSchedules(s *sched.Scheduler, reqs []*sched.Request, maxIters int, box float64) float64 {
	start := wallClock()
	iters := 0
	for iters < maxIters {
		_, _ = s.Schedule(reqs[iters%len(reqs)])
		iters++
		if iters%16 == 0 && wallClock().Sub(start).Seconds() > box {
			break
		}
	}
	elapsed := wallClock().Sub(start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(iters) / elapsed
}

// timeEvents fires a self-rescheduling event population (the simulator's
// steady-state shape) through one engine kind and returns events/sec.
func timeEvents(kind sim.QueueKind, total int, seed int64, box float64) float64 {
	e := sim.NewEngineWithQueue(kind)
	rng := sim.NewRNG(seed)
	remaining := total
	var spawn func()
	spawn = func() {
		if remaining > 0 {
			remaining--
			e.After(rng.Exponential(5), spawn)
		}
	}
	// The pending population scales with the point (a cluster's tick and
	// monitoring events grow with its size); the calendar's O(1) advantage
	// over the heap's O(log n) only shows at depth.
	seeds := total / 10
	if seeds < 256 {
		seeds = 256
	}
	if seeds > total {
		seeds = total
	}
	start := wallClock()
	for i := 0; i < seeds; i++ {
		spawn()
	}
	fired := 0
	for e.Step() {
		fired++
		if fired%4096 == 0 && wallClock().Sub(start).Seconds() > box {
			break
		}
	}
	elapsed := wallClock().Sub(start).Seconds()
	if elapsed <= 0 || fired == 0 {
		return 0
	}
	return float64(fired) / elapsed
}

// ScaleBench runs the sweep.
func ScaleBench(cfg ScaleBenchConfig) (*ScaleBenchResult, error) {
	if cfg.MaxSecsPerMeasure <= 0 {
		cfg.MaxSecsPerMeasure = 1.0
	}
	res := &ScaleBenchResult{CPUs: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	reqs := scaleRequests(cluster.LocalPlatforms(), cfg.Seed)
	for _, pc := range cfg.Points {
		c, err := scaleCluster(pc.Servers)
		if err != nil {
			return nil, err
		}
		indexed := sched.New(c, sched.DefaultOptions())
		oOpts := sched.DefaultOptions()
		oOpts.FullScan = true
		oracle := sched.New(c, oOpts)

		// Warm both schedulers' scratch buffers out of the measurement.
		for _, r := range reqs {
			_, _ = indexed.Schedule(r)
			_, _ = oracle.Schedule(r)
		}
		p := ScalePoint{Servers: pc.Servers, Workloads: pc.Workloads}
		p.IndexedSchedPerSec = timeSchedules(indexed, reqs, pc.Workloads, cfg.MaxSecsPerMeasure)
		p.FullScanSchedPerSec = timeSchedules(oracle, reqs, pc.Workloads, cfg.MaxSecsPerMeasure)
		if p.FullScanSchedPerSec > 0 {
			p.SchedSpeedup = p.IndexedSchedPerSec / p.FullScanSchedPerSec
		}
		p.CalendarEventsPerSec = timeEvents(sim.QueueCalendar, pc.Workloads, cfg.Seed, cfg.MaxSecsPerMeasure)
		p.HeapEventsPerSec = timeEvents(sim.QueueHeap, pc.Workloads, cfg.Seed, cfg.MaxSecsPerMeasure)
		if p.HeapEventsPerSec > 0 {
			p.EventSpeedup = p.CalendarEventsPerSec / p.HeapEventsPerSec
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// Print renders the sweep table.
func (r *ScaleBenchResult) Print(w io.Writer) {
	fprintf(w, "== Scale benchmark (%d CPUs) ==\n", r.CPUs)
	fprintf(w, "%8s %9s %14s %14s %8s %14s %14s %8s\n",
		"servers", "wl", "sched idx/s", "sched scan/s", "speedup", "cal ev/s", "heap ev/s", "speedup")
	for _, p := range r.Points {
		fprintf(w, "%8d %9d %14.0f %14.0f %7.1fx %14.0f %14.0f %7.2fx\n",
			p.Servers, p.Workloads, p.IndexedSchedPerSec, p.FullScanSchedPerSec,
			p.SchedSpeedup, p.CalendarEventsPerSec, p.HeapEventsPerSec, p.EventSpeedup)
	}
}

// WriteJSON writes the result to path.
func (r *ScaleBenchResult) WriteJSON(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
