package experiments

import (
	"encoding/json"
	"os"
	"testing"
)

// TestScaleBench is the scaling smoke gate: the quick sweep (100 and 1k
// servers) must show the indexed scheduler at least matching the full-scan
// baseline at 1k, and the calendar queue within tolerance of the heap.
func TestScaleBench(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	cfg := QuickScaleBenchConfig()
	res, err := ScaleBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		t.Logf("%6d servers: sched %.0f/s vs %.0f/s (%.1fx), events %.0f/s vs %.0f/s (%.2fx)",
			p.Servers, p.IndexedSchedPerSec, p.FullScanSchedPerSec, p.SchedSpeedup,
			p.CalendarEventsPerSec, p.HeapEventsPerSec, p.EventSpeedup)
	}
	if err := res.Check(); err != nil {
		t.Error(err)
	}
}

// TestScaleBaselineFile keeps the committed BENCH_scale.json honest: it must
// parse, cover the default sweep points, and itself satisfy the scaling
// contract (>= 10x schedules/sec over full-scan at 10k servers).
func TestScaleBaselineFile(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_scale.json")
	if err != nil {
		t.Fatalf("BENCH_scale.json missing (regenerate with quasar-bench scalebench): %v", err)
	}
	var base ScaleBenchResult
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	want := DefaultScaleBenchConfig()
	if len(base.Points) != len(want.Points) {
		t.Fatalf("baseline has %d points, default sweep has %d — regenerate", len(base.Points), len(want.Points))
	}
	has10k := false
	for i, p := range base.Points {
		if p.Servers != want.Points[i].Servers || p.Workloads != want.Points[i].Workloads {
			t.Errorf("baseline point %d is (%d, %d), default sweep says (%d, %d) — regenerate",
				i, p.Servers, p.Workloads, want.Points[i].Servers, want.Points[i].Workloads)
		}
		if p.Servers >= 10000 {
			has10k = true
		}
	}
	if !has10k {
		t.Error("baseline misses the 10k-server point the scaling contract is stated over")
	}
	if err := base.Check(); err != nil {
		t.Errorf("committed baseline violates the scaling contract: %v", err)
	}
}
