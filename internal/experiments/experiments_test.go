package experiments

import (
	"bytes"
	"strings"
	"testing"

	"quasar/internal/trace"
)

// The experiment tests run shrunken configurations and assert the paper's
// qualitative shapes: who wins, roughly by how much, and that every
// renderer produces output. Full-scale configurations run under
// cmd/quasar-bench and the repository benchmarks.

func TestFig1Shape(t *testing.T) {
	t.Parallel()
	cfg := trace.DefaultConfig()
	cfg.Servers, cfg.Workloads, cfg.Days = 150, 600, 10
	r := Fig1(cfg)
	if r.Trace.MeanCPUResvPct() < 2*r.Trace.MeanCPUUsedPct() {
		t.Fatalf("reservation/usage gap too small: %.1f vs %.1f",
			r.Trace.MeanCPUResvPct(), r.Trace.MeanCPUUsedPct())
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Fatal("print output incomplete")
	}
}

func TestFig2Shape(t *testing.T) {
	t.Parallel()
	r := Fig2(3)
	// Heterogeneity: J should beat A substantially for Hadoop.
	if r.HadoopHeterogeneity["J"] < 2*r.HadoopHeterogeneity["A"] {
		t.Fatalf("heterogeneity spread too small: J=%.2f A=%.2f",
			r.HadoopHeterogeneity["J"], r.HadoopHeterogeneity["A"])
	}
	// Interference: pattern A (none) must beat every contended pattern.
	for pat, v := range r.HadoopInterference {
		if pat != "A" && v > r.HadoopInterference["A"]+1e-9 {
			t.Fatalf("pattern %s beat no-interference", pat)
		}
	}
	// Scale-out: 8 nodes beat 1 node.
	if r.HadoopScaleOut[8] <= r.HadoopScaleOut[1] {
		t.Fatal("no scale-out benefit")
	}
	// Scale-up spread should be an order of magnitude (Fig. 2: ~10x).
	if r.HadoopScaleUpRange[1] < 3*r.HadoopScaleUpRange[0] {
		t.Fatalf("scale-up spread too small: %v", r.HadoopScaleUpRange)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if len(buf.String()) < 500 {
		t.Fatal("print output too short")
	}
}

func TestTable1Complete(t *testing.T) {
	t.Parallel()
	r := Table1()
	if len(r.Platforms) != 10 || len(r.Patterns) != 9 || len(r.Hadoop) != 3 || len(r.Memcached) != 3 {
		t.Fatalf("table 1 incomplete: %d platforms, %d patterns", len(r.Platforms), len(r.Patterns))
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "netflix") {
		t.Fatal("datasets missing from output")
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("classification sweep runs ~20s under -race")
	}
	t.Parallel()
	cfg := DefaultTable2Config()
	cfg.Hadoop, cfg.Memcached, cfg.Webserver, cfg.SingleNode = 3, 3, 3, 12
	r := Table2(cfg)
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ScaleUp.N == 0 || row.Hetero.N == 0 || row.Interf.N == 0 {
			t.Fatalf("%s: empty error sets", row.AppClass)
		}
		// Errors must be finite and bounded.
		if row.Hetero.Avg > 0.6 || row.Interf.Avg > 0.3 {
			t.Fatalf("%s: errors implausibly high: het %.2f interf %.2f",
				row.AppClass, row.Hetero.Avg, row.Interf.Avg)
		}
		// Single-node workloads have no scale-out classification ("-" in
		// the paper's table).
		if row.AppClass == "Single-node" && row.ScaleOut.N != 0 {
			t.Fatal("single-node got scale-out errors")
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "exhaustive") {
		t.Fatal("exhaustive column missing")
	}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("density sweep plus decision-time comparison")
	}
	t.Parallel()
	cfg := DefaultFig3Config()
	cfg.EntriesGrid = []int{1, 2, 8}
	cfg.PerClass = 3
	r := Fig3(cfg)
	// Error must fall substantially from 1 entry to 8 entries for the
	// scale-up classification (the figure's headline).
	byEntries := map[int]float64{}
	for _, pt := range r.Points {
		if pt.AppClass == "hadoop" {
			byEntries[pt.Entries] = pt.P90["scale-up"]
		}
	}
	if byEntries[8] > byEntries[1] {
		t.Fatalf("error did not fall with density: 1->%.2f 8->%.2f", byEntries[1], byEntries[8])
	}
	// The exhaustive classification must be much slower to decide.
	if r.ExhaustiveDecisionSecs < 2*r.FourParallelDecisionSecs {
		t.Fatalf("exhaustive not slower: %.4fs vs %.4fs",
			r.ExhaustiveDecisionSecs, r.FourParallelDecisionSecs)
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("hadoop-job scenarios run ~17s under -race")
	}
	t.Parallel()
	cfg := DefaultFig5Config()
	cfg.Jobs = 3
	r, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanSpeedupPct < 5 {
		t.Fatalf("mean speedup %.1f%%: Quasar should beat the Hadoop scheduler", r.MeanSpeedupPct)
	}
	if r.MeanQuasarGapPct > r.MeanHadoopGapPct {
		t.Fatalf("quasar gap %.1f%% worse than hadoop %.1f%%",
			r.MeanQuasarGapPct, r.MeanHadoopGapPct)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	r.Table3(&buf)
	if !strings.Contains(buf.String(), "Table 3") {
		t.Fatal("table 3 render missing")
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("low-utilization scenario runs ~8s under -race")
	}
	t.Parallel()
	cfg := DefaultFig6Config()
	cfg.Hadoop, cfg.Storm, cfg.Spark, cfg.BestEffort = 3, 1, 1, 30
	cfg.HorizonSecs = 9000
	r, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Jobs) != 5 {
		t.Fatalf("%d jobs", len(r.Jobs))
	}
	if r.MeanSpeedupPct < 0 {
		t.Fatalf("quasar slower on average: %.1f%%", r.MeanSpeedupPct)
	}
	if r.QuasarUtilPct <= 0 || r.BaselineUtilPct <= 0 {
		t.Fatal("utilization not measured")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Fatal("figure 7 section missing")
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("service scenarios run ~7s under -race")
	}
	t.Parallel()
	cfg := DefaultFig8Config()
	cfg.HorizonSecs = 6000
	cfg.BestEffort = 60
	r, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	qos := map[string]map[string]float64{}
	for _, s := range r.Series {
		if qos[s.Pattern] == nil {
			qos[s.Pattern] = map[string]float64{}
		}
		qos[s.Pattern][s.Manager] = s.QoSMetFrac
	}
	for pat, m := range qos {
		if m["quasar"] < 0.9 {
			t.Errorf("%s: quasar QoS only %.2f", pat, m["quasar"])
		}
		if m["quasar"] < m["autoscale"]-0.02 {
			t.Errorf("%s: autoscale (%.2f) beat quasar (%.2f)", pat, m["autoscale"], m["quasar"])
		}
	}
}

func TestFig9Shape(t *testing.T) {
	t.Parallel()
	cfg := DefaultFig9Config()
	cfg.HorizonSecs = 4 * 3600
	cfg.BestEffort = 100
	r, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, s := range r.Services {
		byKey[s.Service+"/"+s.Manager] = s.QoSMetFrac
	}
	if byKey["memcached/quasar"] < 0.9 {
		t.Errorf("memcached quasar QoS %.2f", byKey["memcached/quasar"])
	}
	if byKey["memcached/quasar"] < byKey["memcached/autoscale"]-0.02 {
		t.Errorf("autoscale beat quasar on memcached: %.2f vs %.2f",
			byKey["memcached/autoscale"], byKey["memcached/quasar"])
	}
	if len(r.Windows) != 4 {
		t.Fatalf("%d windows", len(r.Windows))
	}
}

func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute scenario")
	}
	t.Parallel()
	cfg := DefaultFig11Config()
	cfg.Workloads = 120
	cfg.HorizonSecs = 7000
	r, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perf := map[string]float64{}
	for _, run := range r.Runs {
		perf[run.Manager] = run.MeanPerf
	}
	// The paper's ordering: quasar > reservation+paragon and > LL.
	if perf["quasar"] <= perf["reservation+LL"] {
		t.Errorf("quasar (%.2f) did not beat reservation+LL (%.2f)",
			perf["quasar"], perf["reservation+LL"])
	}
	if perf["quasar"] <= perf["reservation+paragon"] {
		t.Errorf("quasar (%.2f) did not beat reservation+paragon (%.2f)",
			perf["quasar"], perf["reservation+paragon"])
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "allocated") {
		t.Fatal("fig 11d section missing")
	}
}

func TestStragglersShape(t *testing.T) {
	t.Parallel()
	r := Stragglers(5, 1)
	q, h, l := r.Results["quasar"], r.Results["hadoop"], r.Results["late"]
	if q.MeanDetectionSecs >= h.MeanDetectionSecs {
		t.Errorf("quasar (%.1fs) not earlier than hadoop (%.1fs)",
			q.MeanDetectionSecs, h.MeanDetectionSecs)
	}
	if q.MeanDetectionSecs >= l.MeanDetectionSecs {
		t.Errorf("quasar (%.1fs) not earlier than LATE (%.1fs)",
			q.MeanDetectionSecs, l.MeanDetectionSecs)
	}
	if l.MeanDetectionSecs >= h.MeanDetectionSecs {
		t.Errorf("LATE (%.1fs) not earlier than hadoop (%.1fs)",
			l.MeanDetectionSecs, h.MeanDetectionSecs)
	}
}

func TestPhasesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("phase-change scenario runs ~40s under -race")
	}
	t.Parallel()
	r, err := Phases(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.ReactivePct < 60 {
		t.Errorf("reactive detection only %.0f%%", r.ReactivePct)
	}
	if r.ProactivePct < 40 {
		t.Errorf("proactive detection only %.0f%%", r.ProactivePct)
	}
	if r.FalsePositivePct > 30 {
		t.Errorf("proactive FPs %.0f%%", r.FalsePositivePct)
	}
}

func TestOverheadsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead sweep runs ~9s under -race")
	}
	t.Parallel()
	r, err := Overheads(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.N == 0 {
		t.Fatal("no jobs completed")
	}
	if r.MeanPct <= 0 || r.MeanPct > 20 {
		t.Errorf("mean overhead %.1f%% outside the plausible band", r.MeanPct)
	}
}

func TestAblationsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("six full scenarios")
	}
	t.Parallel()
	// Shrunken scenario: the full 18-job/15000s run is quasar-bench's.
	r, err := AblationsSized(5, 9, 8000)
	if err != nil {
		t.Fatal(err)
	}
	perf := map[string]float64{}
	for _, row := range r.Rows {
		perf[row.Name] = row.MeanPerf
	}
	full := perf["full quasar"]
	if full <= 0 {
		t.Fatal("full quasar scored zero")
	}
	// Disabling adaptation must hurt: it is the paper's recovery path for
	// classification error.
	if perf["no adaptation"] > full+0.05 {
		t.Errorf("no-adaptation (%.2f) beat full quasar (%.2f)", perf["no adaptation"], full)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "variant") {
		t.Fatal("ablation table missing")
	}
}

func TestManagerKindNames(t *testing.T) {
	t.Parallel()
	for k := KindQuasar; k <= KindMesosDRF; k++ {
		if k.String() == "" || strings.HasPrefix(k.String(), "manager(") {
			t.Fatalf("kind %d unnamed", int(k))
		}
	}
}

func TestScenarioConstruction(t *testing.T) {
	t.Parallel()
	for _, kind := range []ManagerKind{KindQuasar, KindReservationLL, KindReservationParagon, KindFrameworkSelf, KindAutoscale} {
		s, err := NewScenario(ScenarioConfig{Cluster: Local40, Manager: kind, Seed: 1, SeedLib: 1})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if s.Mgr == nil {
			t.Fatalf("%v: nil manager", kind)
		}
		if kind == KindQuasar && s.Q == nil {
			t.Fatal("quasar handle missing")
		}
	}
}
