package experiments

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
)

// SLOBenchConfig sizes the SLO-engine overhead benchmark: the same Table
// 2-sized Quasar run as ObsBench, once bare and once with the SLO engine
// attached (tracer off in both modes, so the delta isolates the engine's
// per-tick window arithmetic and health sweeps).
type SLOBenchConfig struct {
	Mix ObsBenchConfig
}

// DefaultSLOBenchConfig returns the canned mix.
func DefaultSLOBenchConfig() SLOBenchConfig {
	return SLOBenchConfig{Mix: DefaultObsBenchConfig()}
}

// SLOBenchResult is the SLO-overhead record committed as BENCH_slo.json.
// Timings come from the wall clock, so only OverheadFrac is meaningful
// across hosts; the tracked/episode/health numbers are deterministic.
type SLOBenchResult struct {
	CPUs        int     `json:"cpus"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Repeats     int     `json:"repeats"`
	Workloads   int     `json:"workloads"`
	HorizonSecs float64 `json:"horizon_secs"`
	OffSecs     float64 `json:"slo_off_secs"`
	OnSecs      float64 `json:"slo_on_secs"`
	// OverheadFrac is (on-off)/off; the committed artifact and the repo's
	// tests both hold it under 5%.
	OverheadFrac float64 `json:"overhead_frac"`

	TrackedWorkloads int     `json:"tracked_workloads"`
	Episodes         int     `json:"alert_episodes"`
	FinalHealth      float64 `json:"final_cluster_health"`
}

// SLOBench measures the SLO engine's overhead: minimum-of-Repeats wall time
// bare vs monitored, plus the (deterministic) monitoring volume of the
// monitored run.
func SLOBench(cfg SLOBenchConfig) (*SLOBenchResult, error) {
	mix := cfg.Mix
	if mix.Repeats <= 0 {
		mix.Repeats = 3
	}
	res := &SLOBenchResult{
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Repeats:    mix.Repeats,
		Workloads: mix.Hadoop + mix.Spark + mix.Storm + mix.Services +
			mix.SingleNode + mix.BestEffort,
		HorizonSecs: mix.HorizonSecs,
	}
	timeRun := func(slo bool) (float64, *Scenario, error) {
		best := 0.0
		var last *Scenario
		for i := 0; i < mix.Repeats; i++ {
			start := wallClock()
			s, err := obsBenchRun(mix, false, slo)
			elapsed := wallClock().Sub(start).Seconds()
			if err != nil {
				return 0, nil, err
			}
			if i == 0 || elapsed < best {
				best = elapsed
			}
			last = s
		}
		return best, last, nil
	}
	off, _, err := timeRun(false)
	if err != nil {
		return nil, err
	}
	on, monitored, err := timeRun(true)
	if err != nil {
		return nil, err
	}
	res.OffSecs, res.OnSecs = off, on
	if off > 0 {
		res.OverheadFrac = (on - off) / off
	}
	res.TrackedWorkloads = monitored.SLO.Tracked()
	res.Episodes = len(monitored.SLO.Episodes())
	if h := &monitored.SLO.ClusterHealth; h.Len() > 0 {
		res.FinalHealth = h.Vals[h.Len()-1]
	}
	return res, nil
}

// Print renders the comparison.
func (r *SLOBenchResult) Print(w io.Writer) {
	fprintf(w, "== SLO engine overhead benchmark (%d CPUs, min of %d) ==\n", r.CPUs, r.Repeats)
	fprintf(w, "%d workloads, %.0fs horizon\n", r.Workloads, r.HorizonSecs)
	fprintf(w, "slo off: %8.3fs\n", r.OffSecs)
	fprintf(w, "slo on:  %8.3fs  (%+.1f%% overhead)\n", r.OnSecs, 100*r.OverheadFrac)
	fprintf(w, "tracked %d workloads, %d alert episodes, final cluster health %.3f\n",
		r.TrackedWorkloads, r.Episodes, r.FinalHealth)
}

// WriteJSON writes the result to path.
func (r *SLOBenchResult) WriteJSON(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
