package experiments

import (
	"encoding/json"
	"os"
	"testing"
)

// TestAllocBudgets is the dynamic allocation gate: every hot-root probe must
// stay within its committed budget. A failure here means a change added
// per-operation heap allocations on a path the static lint gate (quasar-lint)
// can only prove is annotated, not cheap.
func TestAllocBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation probes need steady-state warmup")
	}
	cfg := DefaultAllocBenchConfig()
	cfg.Runs = 50 // gate run: smaller sample, same budgets
	res, err := AllocBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Probes {
		t.Logf("%-16s %8.1f allocs/op (budget %.0f)", p.Name, p.AllocsPerOp, p.Budget)
	}
	if err := res.Check(); err != nil {
		t.Error(err)
	}
}

// TestAllocBaselineFile keeps the committed BENCH_alloc.json consistent with
// the in-code budgets: same probe set, same ceilings, and a recorded
// measurement that was itself within budget.
func TestAllocBaselineFile(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_alloc.json")
	if err != nil {
		t.Fatalf("BENCH_alloc.json missing (regenerate with quasar-bench -artifact allocbench): %v", err)
	}
	var base AllocBenchResult
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range base.Probes {
		seen[p.Name] = true
		if want, ok := allocBudgets[p.Name]; !ok {
			t.Errorf("baseline probe %s has no in-code budget", p.Name)
		} else if p.Budget != want {
			t.Errorf("baseline probe %s budget %g, code says %g — regenerate", p.Name, p.Budget, want)
		}
	}
	for name := range allocBudgets {
		if !seen[name] {
			t.Errorf("budgeted probe %s missing from baseline — regenerate", name)
		}
	}
	if err := base.Check(); err != nil {
		t.Errorf("committed baseline out of budget: %v", err)
	}
}
