package experiments

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"quasar/internal/par"
)

// fakeClock returns a Clock that advances a fixed step per reading, so
// wall-clock-derived fields become pure functions of the call sequence.
func fakeClock() Clock {
	now := time.Unix(0, 0)
	return func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	}
}

// workerMatrix is the worker-count grid of the determinism contract: the
// sequential baseline, a count above this machine's CPUs, and NumCPU.
func workerMatrix() []int {
	return []int{1, 4, runtime.NumCPU()}
}

// TestStragglersDeterministic runs the straggler-detection scenario —
// trials fan out on the worker pool — across the worker matrix and requires
// byte-identical serialized results. The sim engine underneath each trial
// must therefore be deterministic too.
func TestStragglersDeterministic(t *testing.T) {
	const seed = 11
	marshal := func(workers int) []byte {
		par.SetDefaultWorkers(workers)
		defer par.SetDefaultWorkers(0)
		out, err := json.Marshal(Stragglers(3, seed))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := marshal(1)
	for _, w := range workerMatrix() {
		if got := marshal(w); !bytes.Equal(want, got) {
			t.Fatalf("workers=%d diverged from sequential:\n%.300s\nvs\n%.300s", w, want, got)
		}
	}
	if again := marshal(1); !bytes.Equal(want, again) {
		t.Fatalf("same seed produced different results:\n%.300s\nvs\n%.300s", want, again)
	}
}

// TestTable2DeterministicAcrossWorkers pins the Table 2 classification
// sweep: the validation fan-out must serialize byte-identically for any
// worker count.
func TestTable2DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the classification sweep once per worker count")
	}
	run := func(workers int) []byte {
		cfg := DefaultTable2Config()
		cfg.Hadoop, cfg.Memcached, cfg.Webserver, cfg.SingleNode = 3, 3, 3, 10
		cfg.Workers = workers
		out, err := json.Marshal(Table2(cfg))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	// workerMatrix starts at 1, so the sequential run repeats once: the
	// loop checks plain same-seed repeatability and worker invariance.
	want := run(1)
	for _, w := range workerMatrix() {
		if got := run(w); !bytes.Equal(want, got) {
			t.Fatalf("workers=%d diverged from sequential:\n%.300s\nvs\n%.300s", w, want, got)
		}
	}
}

// TestFig3DeterministicAcrossWorkers pins the Fig. 3 density sweep under
// injected per-point clocks: grid points run concurrently yet must land
// byte-identically for any worker count, and repeat runs must agree.
func TestFig3DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the density sweep once per worker count")
	}
	run := func(workers int) []byte {
		cfg := DefaultFig3Config()
		cfg.EntriesGrid = []int{1, 4}
		cfg.PerClass = 2
		cfg.SeedLibPerType = 2
		cfg.Workers = workers
		cfg.PointClock = fakeClock
		out, err := json.Marshal(Fig3(cfg))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, w := range workerMatrix() {
		if got := run(w); !bytes.Equal(want, got) {
			t.Fatalf("workers=%d diverged from sequential:\n%.300s\nvs\n%.300s", w, want, got)
		}
	}
}
