package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// fakeClock returns a Clock that advances a fixed step per reading, so
// wall-clock-derived fields become pure functions of the call sequence.
func fakeClock() Clock {
	now := time.Unix(0, 0)
	return func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	}
}

// TestStragglersDeterministic runs the straggler-detection scenario twice
// with the same seed and requires byte-identical serialized results.
func TestStragglersDeterministic(t *testing.T) {
	const seed = 11
	marshal := func() []byte {
		out, err := json.Marshal(Stragglers(3, seed))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first, second := marshal(), marshal()
	if !bytes.Equal(first, second) {
		t.Fatalf("same seed produced different results:\n%.300s\nvs\n%.300s", first, second)
	}
}

// TestFig3DeterministicWithInjectedClock pins the full Figure 3 pipeline
// — classification, validation, and the decision-time comparison — under
// an injected clock: identical seeds must serialize identically, byte for
// byte.
func TestFig3DeterministicWithInjectedClock(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the density sweep twice")
	}
	run := func() []byte {
		cfg := DefaultFig3Config()
		cfg.EntriesGrid = []int{1, 4}
		cfg.PerClass = 2
		cfg.SeedLibPerType = 2
		cfg.Clock = fakeClock()
		out, err := json.Marshal(Fig3(cfg))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first, second := run(), run()
	if !bytes.Equal(first, second) {
		t.Fatalf("same seed and clock produced different results:\n%.300s\nvs\n%.300s", first, second)
	}
}
