package experiments

import (
	"fmt"
	"io"

	"quasar/internal/classify"
	"quasar/internal/sim"
	"quasar/internal/workload"
)

// Table2Config sizes the classification validation. The paper validates on
// 10 Hadoop data-mining jobs, 10 memcached loads, 10 webserver loads, and
// 413 single-node benchmarks over the 40-server cluster's platforms.
type Table2Config struct {
	Hadoop, Memcached, Webserver, SingleNode int
	SeedLibPerType                           int
	ExhaustiveEntries                        int // 8 in the paper
	Seed                                     int64
	// Workers bounds the validation fan-out; zero means the process
	// default. Results are identical for any value.
	Workers int
}

// DefaultTable2Config matches the paper's counts.
func DefaultTable2Config() Table2Config {
	return Table2Config{
		Hadoop: 10, Memcached: 10, Webserver: 10, SingleNode: 413,
		SeedLibPerType: 4, ExhaustiveEntries: 8, Seed: 2,
	}
}

// ClassErrors is one row of Table 2.
type ClassErrors struct {
	AppClass   string
	N          int
	ScaleUp    classify.ErrorStats
	ScaleOut   classify.ErrorStats
	Hetero     classify.ErrorStats
	Interf     classify.ErrorStats
	Exhaustive classify.ErrorStats
}

// Table2Result is the validation of the classification engine.
type Table2Result struct {
	Rows []ClassErrors
}

// Table2 runs the validation: each test workload is classified from sparse
// profiling (2 entries/row default) by the four parallel classifications and
// by the single exhaustive classification (8 entries/row), and both are
// compared against exhaustive noise-free characterization.
func Table2(cfg Table2Config) *Table2Result {
	platforms := clusterPlatformsLocal()
	u := workload.NewUniverse(platforms, cfg.Seed, 3)
	opts := classify.DefaultOptions()
	opts.MaxNodes = 32
	eng := classify.NewEngine(platforms, opts, sim.NewRNG(cfg.Seed+1))
	exh := classify.NewExhaustive(platforms, 8, opts.CF, sim.NewRNG(cfg.Seed+2))

	// Offline library for both engines. Workloads, probers, and the
	// per-workload noise streams are built sequentially in arrival order —
	// the derivation that pins determinism — and the dense probing then
	// fans out across workers.
	rng := sim.NewRNG(cfg.Seed + 3)
	var libWs []*workload.Instance
	var libGT []*classify.GroundTruthProber
	var libPs []classify.Prober
	for _, tp := range []workload.Type{workload.Hadoop, workload.Memcached,
		workload.Webserver, workload.SingleNode, workload.Spark, workload.Storm, workload.Cassandra} {
		for i := 0; i < cfg.SeedLibPerType; i++ {
			w := u.New(workload.Spec{Type: tp, Family: -1, MaxNodes: 4})
			p := classify.NewGroundTruthProber(w, platforms, rng.Stream(w.ID))
			libWs = append(libWs, w)
			libGT = append(libGT, p)
			libPs = append(libPs, p)
		}
	}
	eng.SeedOfflineMany(libWs, libPs)
	for i, w := range libWs {
		exh.Seed(w, libGT[i])
	}

	groups := []struct {
		name string
		tp   workload.Type
		n    int
	}{
		{"Hadoop", workload.Hadoop, cfg.Hadoop},
		{"Memcached", workload.Memcached, cfg.Memcached},
		{"Webserver", workload.Webserver, cfg.Webserver},
		{"Single-node", workload.SingleNode, cfg.SingleNode},
	}
	res := &Table2Result{}
	for _, g := range groups {
		ws := make([]*workload.Instance, g.n)
		noisy := make([]*classify.GroundTruthProber, g.n)
		for i := range ws {
			ws[i] = u.New(workload.Spec{Type: g.tp, Family: -1, MaxNodes: 4})
			noisy[i] = classify.NewGroundTruthProber(ws[i], platforms, rng.Stream("exh/"+ws[i].ID))
		}
		var su, so, het, interf, joint []float64
		_, allErrs := classify.ValidateMany(eng, ws, cfg.Workers)
		for _, errs := range allErrs {
			su = append(su, errs.ScaleUp...)
			so = append(so, errs.ScaleOut...)
			het = append(het, errs.Hetero...)
			interf = append(interf, errs.Interf...)
		}
		for _, errs := range classify.ValidateExhaustiveMany(exh, ws, noisy, cfg.ExhaustiveEntries, cfg.Workers) {
			joint = append(joint, errs...)
		}
		res.Rows = append(res.Rows, ClassErrors{
			AppClass:   g.name,
			N:          g.n,
			ScaleUp:    classify.Stats(su),
			ScaleOut:   classify.Stats(so),
			Hetero:     classify.Stats(het),
			Interf:     classify.Stats(interf),
			Exhaustive: classify.Stats(joint),
		})
	}
	return res
}

// Print renders Table 2.
func (r *Table2Result) Print(w io.Writer) {
	fprintf(w, "== Table 2: classification validation (errors vs detailed characterization) ==\n")
	fprintf(w, "%-14s %4s | %-20s | %-20s | %-20s | %-20s | %-20s\n",
		"class", "N", "scale-up", "scale-out", "heterogeneity", "interference", "exhaustive(8)")
	fprintf(w, "%-14s %4s | %6s %6s %6s | %6s %6s %6s | %6s %6s %6s | %6s %6s %6s | %6s %6s %6s\n",
		"", "", "avg", "p90", "max", "avg", "p90", "max", "avg", "p90", "max", "avg", "p90", "max", "avg", "p90", "max")
	for _, row := range r.Rows {
		p := func(s classify.ErrorStats) string {
			if s.N == 0 {
				return "     -      -      -"
			}
			return sprintfStats(s)
		}
		fprintf(w, "%-14s %4d | %s | %s | %s | %s | %s\n",
			row.AppClass, row.N, p(row.ScaleUp), p(row.ScaleOut), p(row.Hetero), p(row.Interf), p(row.Exhaustive))
	}
}

func sprintfStats(s classify.ErrorStats) string {
	return fmt.Sprintf("%6.1f %6.1f %6.1f", s.Avg*100, s.P90*100, s.Max*100)
}
