package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"quasar/internal/obs"
)

// ObsScale measures the trace pipeline at cluster scale: the same at-scale
// scenario ScaleTrace pins for determinism is run untraced and then traced
// through a streaming sink, at each sweep point. The record answers the
// questions the streaming refactor exists for — what does tracing cost at
// 10k servers (wall-clock overhead fraction), how fast does the pipeline
// move events (events/sec), and how much memory does the tracer actually
// hold (the sink high-water mark, which must stay at the stream buffer size
// no matter how many bytes pass through). Rates and fractions come from the
// wall clock, so only their ratios are meaningful across hosts; event and
// byte counts are deterministic.

// ObsScaleConfig configures the sweep.
type ObsScaleConfig struct {
	// Points are the per-size scenario configs (servers, mix, horizon).
	Points []ScaleTraceConfig
	// Repeats takes the minimum wall time over this many runs per mode to
	// damp scheduler noise (default 3: the overhead budget compares two
	// minima, so each must actually reach the host's floor).
	Repeats int
}

// DefaultObsScaleConfig returns the committed sweep: the 1k-server
// determinism-contract point at full fidelity, and a 10k-server point with
// the same workload mix under the top-K candidate control. Full decision
// payloads record every ranked server — O(servers) per decision, ~760 MB of
// trace at 10k servers, several times the cost of the run itself — so the
// at-scale operating point caps rankings at 20 candidates (plus every pick),
// which is what the trace header then reports. The 1k point stays uncapped
// to witness full-fidelity cost at the determinism-contract scale.
func DefaultObsScaleConfig() ObsScaleConfig {
	base := DefaultScaleTraceConfig()
	big := base
	big.Servers = 10000
	big.TraceTopK = 20
	return ObsScaleConfig{Points: []ScaleTraceConfig{base, big}, Repeats: 3}
}

// QuickObsScaleConfig returns the CI smoke sweep: one small point, enough to
// exercise the full measure path in seconds.
func QuickObsScaleConfig() ObsScaleConfig {
	return ObsScaleConfig{
		Points: []ScaleTraceConfig{{
			Servers: 100, Services: 5, Single: 60, BestEffort: 400,
			SubmitGap: 0.05, HorizonSecs: 120, Seed: 20260808,
		}},
		Repeats: 1,
	}
}

// ObsScalePoint is one measured sweep point.
type ObsScalePoint struct {
	Servers   int `json:"servers"`
	Workloads int `json:"workloads"`
	// TraceTopK is the candidate-truncation control the traced run recorded
	// under (0 = full fidelity); it is also in the trace header.
	TraceTopK int `json:"trace_top_k,omitempty"`
	// UntracedSecs and TracedSecs are minimum-of-Repeats wall times.
	UntracedSecs float64 `json:"untraced_secs"`
	TracedSecs   float64 `json:"traced_secs"`
	// OverheadFrac is (traced - untraced) / untraced.
	OverheadFrac float64 `json:"overhead_frac"`
	// Events is the deterministic accepted-event count of the traced run.
	Events       int     `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// TraceBytes is the total JSONL bytes streamed out.
	TraceBytes int64 `json:"trace_bytes"`
	// TracerHighWaterBytes is the maximum memory the trace pipeline retained
	// at any moment — for a streaming sink, its flush buffer, regardless of
	// TraceBytes. This is the bounded-memory claim in one number.
	TracerHighWaterBytes int `json:"tracer_high_water_bytes"`
}

// ObsScaleResult is the sweep record committed as BENCH_obs_scale.json.
type ObsScaleResult struct {
	CPUs       int             `json:"cpus"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Repeats    int             `json:"repeats"`
	Points     []ObsScalePoint `json:"points"`
}

// obsScaleOverheadBudget is the enforced ceiling on trace overhead at the
// 10k-server point: streaming a trace at that point's recorded controls
// (top-K-capped decision payloads; everything else full fidelity) must cost
// less than 10% of the untraced run.
const obsScaleOverheadBudget = 0.10

// Check enforces the observability-at-scale contract: trace overhead under
// the budget at 10k servers, and tracer memory bounded (high-water no larger
// than the stream buffer plus the per-event scratch) at every point.
func (r *ObsScaleResult) Check() error {
	for _, p := range r.Points {
		if p.Servers >= 10000 && p.OverheadFrac >= obsScaleOverheadBudget {
			return fmt.Errorf("obsscale: trace overhead %.1f%% at %d servers, budget is %.0f%%",
				100*p.OverheadFrac, p.Servers, 100*obsScaleOverheadBudget)
		}
		if p.TraceBytes > 0 && int64(p.TracerHighWaterBytes) >= p.TraceBytes {
			return fmt.Errorf("obsscale: tracer high water %d bytes >= trace size %d at %d servers — memory is not bounded",
				p.TracerHighWaterBytes, p.TraceBytes, p.Servers)
		}
	}
	return nil
}

// ObsScale runs the sweep.
func ObsScale(cfg ObsScaleConfig) (*ObsScaleResult, error) {
	if cfg.Repeats <= 0 {
		cfg.Repeats = 3
	}
	res := &ObsScaleResult{
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Repeats:    cfg.Repeats,
	}
	for _, pt := range cfg.Points {
		p := ObsScalePoint{Servers: pt.Servers, Workloads: pt.Workloads(), TraceTopK: pt.TraceTopK}
		for i := 0; i < cfg.Repeats; i++ {
			start := wallClock()
			if _, err := runScaleScenario(pt, false, nil); err != nil {
				return nil, err
			}
			elapsed := wallClock().Sub(start).Seconds()
			if i == 0 || elapsed < p.UntracedSecs {
				p.UntracedSecs = elapsed
			}
		}
		for i := 0; i < cfg.Repeats; i++ {
			sink := obs.NewStreamSinkWriter(io.Discard)
			start := wallClock()
			s, err := runScaleScenario(pt, true, []obs.Sink{sink})
			if err != nil {
				return nil, err
			}
			if err := s.Tracer.Close(); err != nil {
				return nil, err
			}
			elapsed := wallClock().Sub(start).Seconds()
			if i == 0 || elapsed < p.TracedSecs {
				p.TracedSecs = elapsed
			}
			p.Events = s.Tracer.Len()
			p.TraceBytes = sink.BytesWritten()
			_, high := s.Tracer.RetainedBytes()
			p.TracerHighWaterBytes = high
		}
		if p.UntracedSecs > 0 {
			p.OverheadFrac = (p.TracedSecs - p.UntracedSecs) / p.UntracedSecs
		}
		if p.TracedSecs > 0 {
			p.EventsPerSec = float64(p.Events) / p.TracedSecs
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// Print renders the sweep.
func (r *ObsScaleResult) Print(w io.Writer) {
	fprintf(w, "== Trace pipeline at scale (%d CPUs, min of %d) ==\n", r.CPUs, r.Repeats)
	fprintf(w, "%8s %9s %6s %11s %11s %9s %12s %12s %10s\n",
		"servers", "workloads", "topk", "untraced", "traced", "overhead", "events/sec", "trace bytes", "high water")
	for _, p := range r.Points {
		topk := "full"
		if p.TraceTopK > 0 {
			topk = fmt.Sprintf("%d", p.TraceTopK)
		}
		fprintf(w, "%8d %9d %6s %10.3fs %10.3fs %8.1f%% %12.0f %12d %10d\n",
			p.Servers, p.Workloads, topk, p.UntracedSecs, p.TracedSecs,
			100*p.OverheadFrac, p.EventsPerSec, p.TraceBytes, p.TracerHighWaterBytes)
	}
}

// WriteJSON writes the result to path.
func (r *ObsScaleResult) WriteJSON(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
