// Package experiments contains one runner per table and figure of the
// paper's evaluation. Each runner builds the scenario, executes it in the
// simulated runtime, and returns a typed result whose Print method emits
// the same rows/series the paper reports. cmd/quasar-bench and the
// repository's benchmarks share these runners.
package experiments

import (
	"fmt"
	"io"
	"math"

	"quasar/internal/baselines"
	"quasar/internal/classify"
	"quasar/internal/cluster"
	"quasar/internal/core"
	"quasar/internal/obs"
	"quasar/internal/perfmodel"
	"quasar/internal/sim"
	"quasar/internal/slo"
	"quasar/internal/workload"
)

// ManagerKind selects the cluster manager under test.
type ManagerKind int

const (
	// KindQuasar is the paper's system.
	KindQuasar ManagerKind = iota
	// KindReservationLL is reservation allocation + least-loaded
	// assignment.
	KindReservationLL
	// KindReservationParagon is reservation allocation + Paragon
	// (heterogeneity/interference-aware) assignment.
	KindReservationParagon
	// KindFrameworkSelf is framework self-scheduling (accurate framework
	// sizing, default configs) + least-loaded assignment — the "allocations
	// done by the frameworks themselves" baseline of §6.1/6.2.
	KindFrameworkSelf
	// KindAutoscale is load-triggered auto-scaling for services +
	// least-loaded assignment (§6.3/6.4).
	KindAutoscale
	// KindMesosDRF is a dominant-resource-fairness allocator in the style
	// of Mesos (the paper's [27]): fair, but neither QoS- nor
	// heterogeneity-aware.
	KindMesosDRF
)

func (k ManagerKind) String() string {
	switch k {
	case KindQuasar:
		return "quasar"
	case KindReservationLL:
		return "reservation+LL"
	case KindReservationParagon:
		return "reservation+paragon"
	case KindFrameworkSelf:
		return "framework-self"
	case KindAutoscale:
		return "autoscale"
	case KindMesosDRF:
		return "mesos-drf"
	}
	return fmt.Sprintf("manager(%d)", int(k))
}

// ClusterKind selects the testbed.
type ClusterKind int

const (
	// Local40 is the paper's 40-server local cluster (4 of each platform
	// A-J).
	Local40 ClusterKind = iota
	// EC2x200 is the paper's 200-server dedicated EC2 cluster.
	EC2x200
)

// clusterPlatformsLocal returns the local testbed's platform list.
func clusterPlatformsLocal() []cluster.Platform { return cluster.LocalPlatforms() }

// buildCluster constructs the testbed.
func buildCluster(kind ClusterKind) (*cluster.Cluster, error) {
	switch kind {
	case Local40:
		return cluster.New(cluster.LocalPlatforms(), []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4})
	default:
		return cluster.NewUniform(cluster.EC2Platforms(), 200)
	}
}

// Scenario assembles a runtime, a manager, and a workload universe.
type Scenario struct {
	RT  *core.Runtime
	U   *workload.Universe
	Mgr core.Manager
	Q   *core.Quasar // nil for baselines

	// Tracer is non-nil when the scenario was built with Trace set; it
	// collects the run's full event log and metrics registry.
	Tracer *obs.Tracer

	// SLO is non-nil when the scenario was built with SLO set; it monitors
	// every non-best-effort workload against its declared target.
	SLO *slo.Engine
}

// ScenarioConfig configures scenario assembly.
type ScenarioConfig struct {
	Cluster ClusterKind
	// Servers, when positive, overrides Cluster with a uniform spread of the
	// local platforms at this size — the vehicle for at-scale runs (the
	// testbed presets stop at 200 servers).
	Servers     int
	Manager     ManagerKind
	Seed        int64
	TickSecs    float64
	Sample      float64
	SeedLib     int  // offline-library workloads per type (default 3)
	MaxNodes    int  // per-job scale-out bound
	Misestimate bool // reservation misestimation for baseline kinds
	Trace       bool // collect a structured event trace of the run
	SLO         bool // attach the SLO monitoring engine (works with or without Trace)
	// TraceSinks, when non-empty (and Trace is set), replaces the default
	// in-memory buffer with this sink pipeline — e.g. a StreamSink spilling
	// to disk, or a RingSink flight recorder, to keep memory bounded at
	// scale. Without a BufferSink in the list the whole-trace exporters
	// (Chrome, Prometheus) are unavailable.
	TraceSinks []obs.Sink
	// TraceControls, when non-nil, installs deterministic trace controls
	// (level filters, workload sampling, top-K truncation) before the first
	// event, so they are recorded in the trace header.
	TraceControls *obs.Controls
}

// NewScenario builds the world.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	var cl *cluster.Cluster
	var err error
	if cfg.Servers > 0 {
		cl, err = cluster.NewUniform(cluster.LocalPlatforms(), cfg.Servers)
	} else {
		cl, err = buildCluster(cfg.Cluster)
	}
	if err != nil {
		return nil, err
	}
	if cfg.TickSecs <= 0 {
		cfg.TickSecs = 5
	}
	if cfg.Sample <= 0 {
		cfg.Sample = 60
	}
	if cfg.SeedLib <= 0 {
		cfg.SeedLib = 3
	}
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = 16
	}
	rt := core.NewRuntime(cl, core.Options{TickSecs: cfg.TickSecs, SampleSecs: cfg.Sample, Seed: cfg.Seed})
	u := workload.NewUniverse(cl.Platforms, cfg.Seed+1000, 3)

	s := &Scenario{RT: rt, U: u}
	if cfg.Trace {
		if len(cfg.TraceSinks) > 0 {
			s.Tracer = obs.NewWithSinks(rt.Eng.Now, cfg.TraceSinks...)
		} else {
			s.Tracer = obs.New(rt.Eng.Now)
		}
		if cfg.TraceControls != nil {
			s.Tracer.SetControls(*cfg.TraceControls)
		}
	}
	lib := libraryFor(u, cfg.SeedLib)
	switch cfg.Manager {
	case KindQuasar:
		opts := core.DefaultQuasarOptions()
		opts.MaxNodesPerJob = cfg.MaxNodes
		opts.Classify.MaxNodes = maxInt(32, cfg.MaxNodes)
		opts.Classify.Entries = 3
		q := core.NewQuasar(rt, opts)
		if s.Tracer != nil {
			q.SetTracer(s.Tracer)
		}
		q.SeedLibrary(lib)
		s.Mgr, s.Q = q, q
	case KindMesosDRF:
		s.Mgr = baselines.NewDRF(rt, cfg.Misestimate, cfg.MaxNodes)
	case KindReservationLL, KindFrameworkSelf, KindAutoscale, KindReservationParagon:
		b := baselines.New(rt, baselineOpts(cfg))
		if b.Engine() != nil {
			seedBaselineEngine(b.Engine(), lib, cl.Platforms, cfg.Seed)
		}
		s.Mgr = b
	}
	if s.Tracer != nil && s.Q == nil {
		// Baselines have no scheduler/classifier hooks; lifecycle events
		// from the runtime are still traced.
		rt.SetTracer(s.Tracer)
	}
	rt.SetManager(s.Mgr)
	if cfg.SLO {
		// After SetManager so the SLO tick listener observes post-manager
		// state; s.Tracer may be nil (monitoring without event emission).
		s.SLO = slo.Attach(rt, s.Tracer, slo.DefaultOptions())
	}
	return s, nil
}

func baselineOpts(cfg ScenarioConfig) baselines.Options {
	opts := baselines.DefaultOptions()
	opts.MaxNodes = cfg.MaxNodes
	opts.MaxInstances = cfg.MaxNodes
	switch cfg.Manager {
	case KindReservationParagon:
		opts.Assign = baselines.AssignParagon
		opts.Misestimate = cfg.Misestimate
		opts.AutoscaleServices = true
	case KindReservationLL:
		opts.Assign = baselines.AssignLeastLoaded
		opts.Misestimate = cfg.Misestimate
		opts.AutoscaleServices = true
	case KindFrameworkSelf:
		// The framework sizes its own jobs from history — no user
		// misestimation, but no heterogeneity/interference awareness and
		// stock configurations.
		opts.Assign = baselines.AssignLeastLoaded
		opts.Misestimate = false
	case KindAutoscale:
		opts.Assign = baselines.AssignLeastLoaded
		opts.Misestimate = false
		opts.AutoscaleServices = true
	}
	return opts
}

// libraryFor generates the offline-profiled seed library.
func libraryFor(u *workload.Universe, perType int) []*workload.Instance {
	var lib []*workload.Instance
	for _, tp := range []workload.Type{workload.Hadoop, workload.Spark, workload.Storm,
		workload.Memcached, workload.Cassandra, workload.Webserver, workload.SingleNode} {
		for i := 0; i < perType; i++ {
			lib = append(lib, u.New(workload.Spec{Type: tp, Family: -1, MaxNodes: 4}))
		}
	}
	return lib
}

func seedBaselineEngine(e *classify.Engine, lib []*workload.Instance, platforms []cluster.Platform, seed int64) {
	rng := sim.NewRNG(seed + 77)
	probers := make([]classify.Prober, len(lib))
	for i, w := range lib {
		probers[i] = classify.NewGroundTruthProber(w, platforms, rng.Stream(w.ID))
	}
	e.SeedOfflineMany(lib, probers)
}

// PerfNormalizedToTarget returns a finished or running task's performance
// relative to its target (1.0 = exactly met, >1 = beat it; NaN for
// best-effort tasks, which have no target).
func PerfNormalizedToTarget(rt *core.Runtime, t *core.Task) float64 {
	w := t.W
	switch {
	case w.BestEffort:
		return math.NaN()
	case w.Type.Class() == perfmodel.LatencyCritical:
		// Fraction of ticks meeting QoS, discounting warm-up.
		span := rt.Eng.Now() - t.SubmitAt
		warm := t.SubmitAt + math.Min(600, span*0.2)
		return t.QoSFrac.MeanBetween(warm, math.Inf(1))
	case w.Type.Class() == perfmodel.SingleNode:
		// Achieved IPS (mean work rate while running) vs the IPS target.
		end := t.DoneAt
		if t.Status != core.StatusCompleted {
			end = rt.Eng.Now()
		}
		elapsed := end - t.StartAt
		if elapsed <= 0 || t.Progress <= 0 {
			return 0
		}
		return clampNorm((t.Progress / elapsed) / w.Target.IPS)
	default:
		if t.Status != core.StatusCompleted {
			// Still running (or never placed): project from progress.
			elapsed := rt.Eng.Now() - t.SubmitAt
			if elapsed <= 0 {
				return 0
			}
			frac := rt.ProgressFraction(t)
			if frac <= 0 {
				return 0
			}
			projected := elapsed / frac
			return clampNorm(w.Target.CompletionSecs / projected)
		}
		return clampNorm(w.Target.CompletionSecs / (t.DoneAt - t.SubmitAt))
	}
}

func clampNorm(x float64) float64 {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		return 0
	}
	if x > 2 {
		x = 2
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// fprintf writes formatted output, ignoring errors (report rendering).
func fprintf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}
