package experiments

import (
	"os"
	"testing"
)

// TestFullScaleFig11 runs the paper-scale cloud-provider scenario. It is
// skipped in -short mode; run it explicitly to regenerate the full figure.
func TestFullScaleFig11(t *testing.T) {
	if testing.Short() || os.Getenv("QUASAR_FULL") == "" {
		t.Skip("set QUASAR_FULL=1 for the paper-scale run")
	}
	r, err := Fig11(DefaultFig11Config())
	if err != nil {
		t.Fatal(err)
	}
	r.Print(os.Stdout)
}
