package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"quasar/internal/obs"
)

// promContentType is the Prometheus text exposition content type; version
// 0.0.4 is the text-format version scrapers negotiate on.
const promContentType = "text/plain; version=0.0.4"

// ndjsonContentType marks the newline-delimited JSON endpoints (the flight
// recorder dump and the live trace stream): one complete JSON value per line.
const ndjsonContentType = "application/x-ndjson"

// routes builds the admission and introspection mux (Go 1.22 pattern
// syntax), wrapped in the RED-metrics middleware. Admission endpoints only
// touch the journal; query endpoints only take the engine lock — see the
// Server lock-order comment.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	mux.HandleFunc("POST /v1/target/{id}", s.handleTarget)
	mux.HandleFunc("POST /v1/evict/{id}", s.handleEvict)
	mux.HandleFunc("POST /v1/shutdown", s.handleShutdown)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /v1/workloads/{id}", s.handleWorkload)
	mux.HandleFunc("GET /v1/trace/stream", s.handleTraceStream)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/flightrecorder", s.handleFlight)
	mux.HandleFunc("GET /debug/requests", s.handleRequests)
	mux.HandleFunc("GET /debug/requests/{id}", s.handleRequest)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	return s.redMiddleware(mux)
}

// endpointOf classifies a request path into the fixed telemetry endpoint
// vocabulary. Go 1.22's http.Request carries no matched-pattern field, so the
// classification is by hand; unknown paths land on "other" rather than
// minting unbounded label values.
func endpointOf(path string) string {
	switch {
	case path == "/v1/submit":
		return "submit"
	case strings.HasPrefix(path, "/v1/target/"):
		return "target"
	case strings.HasPrefix(path, "/v1/evict/"):
		return "evict"
	case path == "/v1/shutdown":
		return "shutdown"
	case path == "/v1/workloads":
		return "workloads"
	case strings.HasPrefix(path, "/v1/workloads/"):
		return "workload"
	case path == "/v1/trace/stream":
		return "trace-stream"
	case path == "/healthz":
		return "healthz"
	case path == "/metrics":
		return "metrics"
	case path == "/debug/flightrecorder":
		return "flightrecorder"
	case path == "/debug/requests" || strings.HasPrefix(path, "/debug/requests/"):
		return "requests"
	case path == "/statusz":
		return "statusz"
	default:
		return "other"
	}
}

// statusRecorder captures the response status for the RED metrics. It
// forwards Flush so the trace-stream handler keeps its http.Flusher.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// redMiddleware records per-endpoint request counts, error counts, and
// wall-clock handler latency for every response.
func (s *Server) redMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sr, r)
		s.tel.httpDone(endpointOf(r.URL.Path), sr.status, time.Since(start))
	})
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the client went away; nothing sensible to do
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// admitResponse acknowledges a journaled admission: the request ID, the
// sequence number, the epoch boundary it will apply at, and — for submits —
// the promised workload ID.
type admitResponse struct {
	Req      string  `json:"req"`
	Workload string  `json:"workload,omitempty"`
	Seq      int     `json:"seq"`
	ApplyAt  float64 `json:"apply_at"`
}

// admit journals the entry and writes the acknowledgement. 202: the request
// is durable and scheduled, not yet applied. t0 is the handler's telemetry
// clock at entry — the span's decode/handler phases are measured from it.
func (s *Server) admit(w http.ResponseWriter, t0 int64, e Entry) {
	ent, err := s.j.Admit(e)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "admission failed: %v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, admitResponse{Req: ent.Req, Workload: ent.Workload, Seq: ent.Seq, ApplyAt: ent.At})
	s.tel.received(ent.Seq, t0, telNow())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	t0 := telNow()
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad submit body: %v", err)
		return
	}
	if err := req.validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.admit(w, t0, Entry{Kind: KindSubmit, Submit: &req})
}

func (s *Server) handleTarget(w http.ResponseWriter, r *http.Request) {
	t0 := telNow()
	id := r.PathValue("id")
	var req TargetUpdate
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad target body: %v", err)
		return
	}
	if err := req.validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.admit(w, t0, Entry{Kind: KindTarget, Workload: id, Target: &req})
}

func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	s.admit(w, telNow(), Entry{Kind: KindEvict, Workload: r.PathValue("id")})
}

func (s *Server) handleShutdown(w http.ResponseWriter, _ *http.Request) {
	s.Shutdown()
	writeJSON(w, http.StatusAccepted, map[string]bool{"shutting_down": true})
}

// workloadInfo is one row of the workload listing.
type workloadInfo struct {
	ID         string  `json:"id"`
	Type       string  `json:"type"`
	Status     string  `json:"status"`
	BestEffort bool    `json:"best_effort,omitempty"`
	Nodes      int     `json:"nodes"`
	SubmitAt   float64 `json:"submit_at"`
}

type workloadList struct {
	Total int            `json:"total"`
	Tasks []workloadInfo `json:"tasks"`
}

// listWorkloads snapshots up to limit tasks under the engine lock.
func (s *Server) listWorkloads(limit int) workloadList {
	s.engineMu.Lock()
	defer s.engineMu.Unlock()
	tasks := s.w.rt.Tasks()
	out := workloadList{Total: len(tasks)}
	n := len(tasks)
	if limit > 0 && limit < n {
		n = limit
	}
	out.Tasks = make([]workloadInfo, 0, n)
	for _, t := range tasks[:n] {
		out.Tasks = append(out.Tasks, workloadInfo{
			ID: t.W.ID, Type: t.W.Type.String(), Status: t.Status.String(),
			BestEffort: t.W.BestEffort, Nodes: t.NumNodes(), SubmitAt: t.SubmitAt,
		})
	}
	return out
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	limit := 100
	if q := r.URL.Query().Get("limit"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad limit %q", q)
			return
		}
		limit = v
	}
	writeJSON(w, http.StatusOK, s.listWorkloads(limit))
}

// workloadDetail adds the target to the listing row.
type workloadDetail struct {
	workloadInfo
	Class          string  `json:"class"`
	CompletionSecs float64 `json:"completion_secs,omitempty"`
	QPS            float64 `json:"qps,omitempty"`
	LatencyUS      float64 `json:"latency_us,omitempty"`
	IPS            float64 `json:"ips,omitempty"`
}

// getWorkload snapshots one task under the engine lock.
func (s *Server) getWorkload(id string) (workloadDetail, bool) {
	s.engineMu.Lock()
	defer s.engineMu.Unlock()
	t := s.w.rt.Task(id)
	if t == nil {
		return workloadDetail{}, false
	}
	d := workloadDetail{
		workloadInfo: workloadInfo{
			ID: t.W.ID, Type: t.W.Type.String(), Status: t.Status.String(),
			BestEffort: t.W.BestEffort, Nodes: t.NumNodes(), SubmitAt: t.SubmitAt,
		},
		Class: t.W.Type.Class().String(),
	}
	if !t.W.BestEffort {
		d.CompletionSecs = t.W.Target.CompletionSecs
		d.QPS = t.W.Target.QPS
		d.LatencyUS = t.W.Target.LatencyUS
		d.IPS = t.W.Target.IPS
	}
	return d, true
}

func (s *Server) handleWorkload(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	d, ok := s.getWorkload(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown workload %s", id)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// healthState reads the SLO engine's latest cluster health sweep under the
// engine lock.
func (s *Server) healthState() (score float64, swept, enabled bool) {
	s.engineMu.Lock()
	defer s.engineMu.Unlock()
	if s.w.slo == nil {
		return 0, false, false
	}
	score, swept = s.w.slo.Health()
	return score, swept, true
}

type healthResponse struct {
	Status string  `json:"status"`
	Health float64 `json:"health"`
	SLO    bool    `json:"slo"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	score, swept, enabled := s.healthState()
	resp := healthResponse{Status: "ok", Health: 1, SLO: enabled}
	code := http.StatusOK
	switch {
	case !enabled:
		resp.Status = "ok (slo monitoring disabled)"
	case !swept:
		resp.Status = "ok (no health sweep yet)"
	case score < 0.5:
		resp.Status = "degraded"
		resp.Health = score
		code = http.StatusServiceUnavailable
	default:
		resp.Health = score
	}
	writeJSON(w, code, resp)
}

// promSnapshot renders the Prometheus text snapshot under the engine lock,
// into a buffer so the (unlocked) response write never blocks the pacer on
// a slow scraper.
func (s *Server) promSnapshot() ([]byte, error) {
	s.engineMu.Lock()
	defer s.engineMu.Unlock()
	var buf bytes.Buffer
	if err := obs.WritePromSnapshot(&buf, s.w.tracer); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	data, err := s.promSnapshot()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "rendering metrics: %v", err)
		return
	}
	// The telemetry plane renders after the sim-plane snapshot, also into the
	// buffer: Telemetry.mu must never be held across a slow client write.
	buf := bytes.NewBuffer(data)
	if err := s.tel.WriteProm(buf); err != nil {
		httpError(w, http.StatusInternalServerError, "rendering telemetry metrics: %v", err)
		return
	}
	w.Header().Set("Content-Type", promContentType)
	_, _ = w.Write(buf.Bytes())
}

// flightWindow copies the flight recorder's retained event window under the
// engine lock.
func (s *Server) flightWindow() (obs.Header, []obs.Event) {
	s.engineMu.Lock()
	defer s.engineMu.Unlock()
	return s.w.tracer.Header(), s.w.ring.Events()
}

func (s *Server) handleFlight(w http.ResponseWriter, _ *http.Request) {
	h, events := s.flightWindow()
	w.Header().Set("Content-Type", ndjsonContentType)
	_ = obs.WriteEventsJSONL(w, &h, events) // best effort: client may disconnect mid-dump
}

// requestsResponse is the GET /debug/requests envelope.
type requestsResponse struct {
	Requests []RequestSpan `json:"requests"`
}

func (s *Server) handleRequests(w http.ResponseWriter, r *http.Request) {
	limit := 100
	if q := r.URL.Query().Get("limit"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad limit %q", q)
			return
		}
		limit = v
	}
	spans := s.tel.Recent(limit)
	if spans == nil {
		spans = []RequestSpan{}
	}
	writeJSON(w, http.StatusOK, requestsResponse{Requests: spans})
}

func (s *Server) handleRequest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sp, ok := s.tel.Span(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown or evicted request %s (ring holds the most recent %d)", id, len(s.tel.spans))
		return
	}
	writeJSON(w, http.StatusOK, sp)
}

// handleTraceStream serves the live deterministic trace as NDJSON: the trace
// header line, then every event as its epoch seals. The subscription buffer
// is bounded; when this client falls behind, whole epochs are dropped and a
// {"stream_dropped":N} control line (cumulative count, seq 0 so it can never
// be mistaken for an event) precedes the next delivered batch. ?n= stops
// after that many events — handy for smoke tests. On shutdown the stream
// ends at the stop signal, before finalize's last epoch: the HTTP drain must
// complete before that epoch runs (raced admissions), so the final events
// and the registry metric tail are the trace file's, not the live stream's.
func (s *Server) handleTraceStream(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest, "bad n %q", q)
			return
		}
		limit = v
	}
	id, header, ch := s.tee.Subscribe(16)
	defer s.tee.Unsubscribe(id)
	w.Header().Set("Content-Type", ndjsonContentType)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if len(header) > 0 {
		_, _ = w.Write(header)
		if flusher != nil {
			flusher.Flush()
		}
	}
	sent := 0
	var lastDropped int64
	deliver := func(batch obs.TeeBatch) bool {
		if batch.Dropped > lastDropped {
			lastDropped = batch.Dropped
			_, _ = fmt.Fprintf(w, "{\"seq\":0,\"stream_dropped\":%d}\n", batch.Dropped)
		}
		if _, err := w.Write(batch.Data); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		sent += batch.Events
		return limit == 0 || sent < limit
	}
	for {
		select {
		case batch, ok := <-ch:
			if !ok || !deliver(batch) {
				return
			}
		case <-r.Context().Done():
			return
		case <-s.stop:
			// The daemon is shutting down and finalize is waiting for this
			// handler to drain; deliver what is already queued and exit.
			for {
				select {
				case batch, ok := <-ch:
					if !ok || !deliver(batch) {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// statusz is the daemon's introspection snapshot.
type statusz struct {
	SimTime      float64 `json:"sim_time"`
	NextBoundary float64 `json:"next_boundary"`
	EpochSecs    float64 `json:"epoch_secs"`
	Applied      int     `json:"applied"`
	AppliedSeq   int     `json:"applied_seq"`
	JournalSeq   int     `json:"journal_seq"`
	OpenBoundary float64 `json:"open_boundary"`
	Pending      int     `json:"pending_events"`
	NextEventAt  float64 `json:"next_event_at"`
	Fired        uint64  `json:"fired_events"`
	Tasks        int     `json:"tasks"`
	QueueLen     int     `json:"queue_len"`
	TraceEvents  int     `json:"trace_events"`
}

// status assembles statusz under the engine lock (journal state nested in
// the established engineMu → Journal.mu order).
func (s *Server) status() statusz {
	s.engineMu.Lock()
	defer s.engineMu.Unlock()
	st := statusz{
		SimTime:      s.w.rt.Eng.Now(),
		NextBoundary: s.nextB,
		EpochSecs:    s.cfg.EpochSecs,
		Applied:      s.appliedN,
		AppliedSeq:   s.appliedSeq,
		Pending:      s.w.rt.Eng.Pending(),
		Fired:        s.w.rt.Eng.Fired(),
		Tasks:        len(s.w.rt.Tasks()),
		QueueLen:     s.w.q.QueueLen(),
		TraceEvents:  s.w.tracer.Len(),
	}
	if at, ok := s.w.rt.Eng.NextAt(); ok {
		st.NextEventAt = at
	}
	st.JournalSeq, st.OpenBoundary = s.j.State()
	return st
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.status())
}
