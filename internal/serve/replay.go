package serve

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"time"

	"quasar/internal/core"
	"quasar/internal/obs"
)

// ReplayOptions configures a journal replay.
type ReplayOptions struct {
	// Sinks are extra trace sinks (e.g. a StreamSink whose file is
	// byte-compared against the live run's trace).
	Sinks []obs.Sink
	// Follow tails a journal that is still being written — the warm-standby
	// mode. Next-entry polls sleep PollInterval (default 10ms) and give up
	// after WaitTimeout (default 30s) without journal progress.
	Follow       bool
	PollInterval time.Duration
	WaitTimeout  time.Duration
	// Snapshot, when set, is verified against the replay-built world at the
	// snapshot's boundary: applied sequence, universe counter, and manager
	// bytes must all match, or Replay fails.
	Snapshot *ServeSnapshot
	// Failover, with Snapshot set, performs a warm failover at the snapshot
	// boundary: a fresh manager is constructed, restored from the snapshot's
	// manager state, and installed — then the replay continues from the
	// journal tail, exactly what a standby does when the primary dies.
	Failover bool
	// SnapshotPath + SnapshotEverySecs mirror the live server's snapshot
	// cadence (no final end-of-run snapshot — that is the live server's warm
	// handoff; the cadence is what tests use to capture mid-run state).
	SnapshotPath      string
	SnapshotEverySecs float64
}

// ReplayResult summarizes a finished replay.
type ReplayResult struct {
	// Config is the world configuration from the journal header.
	Config Config
	// EndAt is the final epoch boundary (the end marker's time, or the
	// first incomplete boundary of a truncated journal).
	EndAt float64
	// Truncated reports a journal without an end marker (a killed run).
	Truncated bool
	// Applied counts applied entries; AppliedSeq is the last applied
	// sequence number.
	Applied    int
	AppliedSeq int
	// SnapshotVerified reports that the Snapshot option matched.
	SnapshotVerified bool
	// FailoverAt is the boundary the warm failover happened at (0 if none).
	FailoverAt float64
	// ManagerState is the final manager snapshot — byte-comparable between
	// replays of the same journal.
	ManagerState []byte
}

// Replay rebuilds a serve run from its journal: the identical world is
// constructed from the header, and every epoch boundary repeats the live
// pacer's seal/schedule/run sequence, so the replayed trace is byte-identical
// to the live one for any worker count. With Follow it tails a live journal
// as a warm standby; with Snapshot (+Failover) it verifies or restores the
// primary's warm-failover state mid-run.
func Replay(journalPath string, opts ReplayOptions) (*ReplayResult, error) {
	if opts.PollInterval <= 0 {
		opts.PollInterval = 10 * time.Millisecond
	}
	if opts.WaitTimeout <= 0 {
		opts.WaitTimeout = 30 * time.Second
	}
	if opts.Failover && opts.Snapshot == nil {
		return nil, fmt.Errorf("serve: Failover requires a Snapshot")
	}
	r, err := OpenJournal(journalPath)
	if err != nil {
		return nil, err
	}
	defer func() { _ = r.Close() }()
	cfg := r.Config()
	w, err := buildWorld(cfg, opts.Sinks...)
	if err != nil {
		return nil, err
	}
	res := &ReplayResult{Config: cfg}
	closed := false
	defer func() {
		if !closed {
			_ = w.tracer.Close()
		}
	}()

	// readNext polls for the next entry; the deadline advances on every
	// successful read, so a slow producer only times the standby out when
	// it stops making progress entirely.
	deadline := time.Now().Add(opts.WaitTimeout)
	readNext := func() (*Entry, error) {
		for {
			e, ok, err := r.Next()
			if err != nil {
				return nil, err
			}
			if ok {
				deadline = time.Now().Add(opts.WaitTimeout)
				return e, nil
			}
			if !opts.Follow {
				return nil, nil
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("serve: follow timed out waiting for journal %s", journalPath)
			}
			time.Sleep(opts.PollInterval)
		}
	}

	// The boundary accumulates exactly as the live pacer's does — starting
	// at EpochSecs, adding EpochSecs per epoch, including empty ones — so
	// float equality against journaled At values and snapshot SimTime is
	// exact, never approximate.
	epoch := cfg.EpochSecs
	nextB := epoch
	snapDue := opts.SnapshotEverySecs
	var pending *Entry
	ended, endAt := false, 0.0
	var applyErr error
	for {
		var batch []Entry
		for !ended {
			e := pending
			pending = nil
			if e == nil {
				var err error
				e, err = readNext()
				if err != nil {
					return nil, err
				}
			}
			if e == nil {
				// EOF without an end marker: a killed run. Apply what is
				// on disk and stop at the current boundary.
				ended, endAt, res.Truncated = true, nextB, true
				break
			}
			if e.Kind == KindEnd {
				ended, endAt = true, e.At
				break
			}
			if e.At > nextB {
				pending = e
				break
			}
			if e.At != nextB { //lint:allow(floatcmp) see above
				return nil, fmt.Errorf("serve: journal entry seq %d at %g is behind boundary %g", e.Seq, e.At, nextB)
			}
			batch = append(batch, *e)
		}
		for i := range batch {
			e := batch[i]
			w.rt.Eng.Schedule(nextB, func() {
				if err := w.apply(&e); err != nil && applyErr == nil {
					applyErr = err
				}
			})
		}
		w.rt.Eng.Run(nextB)
		if applyErr != nil {
			return nil, applyErr
		}
		if n := len(batch); n > 0 {
			res.AppliedSeq = batch[n-1].Seq
			res.Applied += n
		}
		if opts.SnapshotPath != "" && opts.SnapshotEverySecs > 0 && nextB+1e-9 >= snapDue {
			data, err := marshalSnapshot(w, res.AppliedSeq)
			if err != nil {
				return nil, err
			}
			if err := writeSnapshotFile(opts.SnapshotPath, data); err != nil {
				return nil, err
			}
			snapDue += opts.SnapshotEverySecs
		}
		if opts.Snapshot != nil && nextB == opts.Snapshot.SimTime { //lint:allow(floatcmp) snapshot pins an exact boundary
			if err := verifySnapshot(w, opts.Snapshot, res.AppliedSeq); err != nil {
				return nil, err
			}
			res.SnapshotVerified = true
			if opts.Failover {
				if err := failover(w, opts.Snapshot); err != nil {
					return nil, err
				}
				res.FailoverAt = nextB
			}
		}
		if ended && nextB >= endAt {
			break
		}
		nextB += epoch
	}
	res.EndAt = endAt
	w.rt.Stop()
	mgr, err := w.q.MarshalSnapshot()
	if err != nil {
		return nil, err
	}
	res.ManagerState = mgr
	closed = true
	if err := w.tracer.Close(); err != nil {
		return nil, err
	}
	return res, nil
}

// verifySnapshot checks that the replay-built world at the snapshot's
// boundary byte-matches the state the primary snapshotted — the proof that
// journal replay and live execution converged.
func verifySnapshot(w *world, snap *ServeSnapshot, appliedSeq int) error {
	if snap.AppliedSeq != appliedSeq {
		return fmt.Errorf("serve: snapshot at t=%g applied seq %d, replay applied %d", snap.SimTime, snap.AppliedSeq, appliedSeq)
	}
	if snap.NextCounter != w.u.Counter() {
		return fmt.Errorf("serve: snapshot at t=%g universe counter %d, replay counter %d", snap.SimTime, snap.NextCounter, w.u.Counter())
	}
	mgr, err := w.q.MarshalSnapshot()
	if err != nil {
		return err
	}
	if !bytes.Equal(mgr, snap.Manager) {
		return fmt.Errorf("serve: snapshot at t=%g manager state diverged from replay (%d vs %d bytes)", snap.SimTime, len(snap.Manager), len(mgr))
	}
	return nil
}

// failover installs a fresh manager restored from the snapshot — the
// standby's take-over move. The new manager derives its RNG streams at the
// failover point, so a failover continuation is only comparable against
// another identical failover continuation, not against the uninterrupted
// primary; the failover tests run the take-over twice and byte-compare.
func failover(w *world, snap *ServeSnapshot) error {
	q := core.NewQuasar(w.rt, quasarOptions(w.cfg))
	q.SetTracer(w.tracer)
	if err := q.UnmarshalSnapshot(snap.Manager); err != nil {
		return fmt.Errorf("serve: restoring manager snapshot: %w", err)
	}
	w.rt.SetManager(q)
	w.q = q
	return nil
}

// ScriptEntry is one hand-authored admission for BuildJournal: At is the
// earliest sim time it may apply (rounded up to an epoch boundary), and
// exactly one of Submit / Target / Evict selects the kind.
type ScriptEntry struct {
	At     float64
	Submit *SubmitRequest
	// Workload names the target workload for Target updates.
	Workload string
	Target   *TargetUpdate
	// Evict names a workload to evict.
	Evict string
}

// BuildJournal writes a journal by hand — what a live server would have
// produced had these requests arrived at these times — and returns the
// promised workload ID per submit, in script order. The script must be
// sorted by At. Tests use this to drive Replay without a live daemon.
func BuildJournal(path string, cfg Config, endAt float64, script []ScriptEntry) ([]string, error) {
	cfg = cfg.withDefaults()
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	j := newJournal(f, cfg, 7*cfg.SeedLib+1)
	j.file = f
	if j.err != nil {
		_ = f.Close()
		return nil, j.err
	}
	epoch := cfg.EpochSecs
	boundaryFor := func(at float64) float64 {
		b := math.Ceil(at/epoch) * epoch
		if b < epoch {
			b = epoch
		}
		return b
	}
	var ids []string
	lastB := 0.0
	for i := range script {
		se := &script[i]
		b := boundaryFor(se.At)
		if b < lastB {
			_ = f.Close()
			return nil, fmt.Errorf("serve: script entry %d at %g is out of order", i, se.At)
		}
		lastB = b
		e := Entry{}
		switch {
		case se.Submit != nil:
			if err := se.Submit.validate(); err != nil {
				_ = f.Close()
				return nil, fmt.Errorf("serve: script entry %d: %w", i, err)
			}
			e.Kind, e.Submit = KindSubmit, se.Submit
		case se.Target != nil:
			if err := se.Target.validate(); err != nil {
				_ = f.Close()
				return nil, fmt.Errorf("serve: script entry %d: %w", i, err)
			}
			e.Kind, e.Workload, e.Target = KindTarget, se.Workload, se.Target
		case se.Evict != "":
			e.Kind, e.Workload = KindEvict, se.Evict
		default:
			_ = f.Close()
			return nil, fmt.Errorf("serve: script entry %d selects no kind", i)
		}
		// Route through Admit so stamping (seq, boundary, request ID,
		// promised workload ID) is the same code the live server runs; seal
		// moves the open boundary.
		if _, _, err := j.seal(b); err != nil {
			_ = f.Close()
			return nil, err
		}
		ent, err := j.Admit(e)
		if err != nil {
			_ = f.Close()
			return nil, err
		}
		if ent.Kind == KindSubmit {
			ids = append(ids, ent.Workload)
		}
	}
	endB := boundaryFor(endAt)
	if endB < lastB {
		endB = lastB
	}
	if err := j.end(endB); err != nil {
		return nil, err
	}
	return ids, nil
}
