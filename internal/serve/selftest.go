package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"quasar/internal/obs"
)

// SelfTest exercises the whole serve stack end to end, the way the CI smoke
// lane does: a live daemon with a warm standby tailing its journal, a
// scripted HTTP client with wall-clock jitter, graceful shutdown, and then
// the determinism checks — standby trace byte-identical to the primary's,
// offline replay byte-identical again, and the final warm-failover snapshot
// verified against the replay-built world.
func SelfTest(out io.Writer) error {
	dir, err := os.MkdirTemp("", "quasar-serve-selftest-")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	journal := filepath.Join(dir, "run.journal")
	traceA := filepath.Join(dir, "primary.trace.jsonl")
	traceB := filepath.Join(dir, "standby.trace.jsonl")
	traceC := filepath.Join(dir, "offline.trace.jsonl")
	snapshot := filepath.Join(dir, "run.snapshot.json")

	cfg := Config{Servers: 20, Seed: 11, SLO: true}
	primary, err := New(Options{
		Addr: "127.0.0.1:0", Config: cfg,
		JournalPath: journal, TracePath: traceA,
		SnapshotPath: snapshot, SnapshotEverySecs: 20,
		Warp: 400,
	})
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- primary.Serve() }()

	// Warm standby: tails the journal the primary is writing right now.
	standbySink, err := obs.NewStreamSink(traceB)
	if err != nil {
		return err
	}
	standbyDone := make(chan error, 1)
	go func() {
		_, err := Replay(journal, ReplayOptions{
			Sinks: []obs.Sink{standbySink}, Follow: true,
			PollInterval: 2 * time.Millisecond, WaitTimeout: 60 * time.Second,
		})
		standbyDone <- err
	}()

	if err := selfTestClient(primary.Addr()); err != nil {
		primary.Shutdown()
		<-serveErr
		return err
	}
	// Let a few more paced epochs elapse with no admissions, then stop the
	// daemon through its own endpoint.
	time.Sleep(150 * time.Millisecond)
	resp, err := http.Post("http://"+primary.Addr()+"/v1/shutdown", "application/json", nil)
	if err != nil {
		primary.Shutdown() // the endpoint failed; stop directly
	} else {
		_ = resp.Body.Close()
	}
	if err := <-serveErr; err != nil {
		return fmt.Errorf("serve: primary failed: %w", err)
	}
	if err := <-standbyDone; err != nil {
		return fmt.Errorf("serve: standby failed: %w", err)
	}
	fprintf(out, "selftest: primary ran to t=%g with %d admissions applied\n",
		primary.EndBoundary(), primary.Applied())

	a, err := os.ReadFile(traceA)
	if err != nil {
		return err
	}
	b, err := os.ReadFile(traceB)
	if err != nil {
		return err
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("serve: standby trace diverged from primary (%d vs %d bytes)", len(a), len(b))
	}
	fprintf(out, "selftest: standby trace byte-identical to primary (%d bytes)\n", len(a))

	snap, err := LoadSnapshot(snapshot)
	if err != nil {
		return err
	}
	offlineSink, err := obs.NewStreamSink(traceC)
	if err != nil {
		return err
	}
	res, err := Replay(journal, ReplayOptions{Sinks: []obs.Sink{offlineSink}, Snapshot: snap})
	if err != nil {
		return err
	}
	if !res.SnapshotVerified {
		return fmt.Errorf("serve: replay never reached snapshot boundary t=%g (ended at %g)", snap.SimTime, res.EndAt)
	}
	c, err := os.ReadFile(traceC)
	if err != nil {
		return err
	}
	if !bytes.Equal(a, c) {
		return fmt.Errorf("serve: offline replay trace diverged from primary (%d vs %d bytes)", len(a), len(c))
	}
	fprintf(out, "selftest: offline replay byte-identical, %d entries applied, snapshot verified at t=%g\n",
		res.Applied, snap.SimTime)
	fprintf(out, "selftest: PASS\n")
	return nil
}

// selfTestClient runs the scripted admission mix with wall-clock jitter —
// the jitter is the point: arrival times must not affect the trace.
func selfTestClient(addr string) error {
	base := "http://" + addr
	client := &http.Client{Timeout: 10 * time.Second}
	post := func(path string, body any) (map[string]any, error) {
		data, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode >= 300 {
			msg, _ := io.ReadAll(resp.Body)
			return nil, fmt.Errorf("serve: POST %s: %s: %s", path, resp.Status, msg)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			return nil, err
		}
		return m, nil
	}
	submit := func(req SubmitRequest) (string, error) {
		m, err := post("/v1/submit", req)
		if err != nil {
			return "", err
		}
		id, _ := m["workload"].(string)
		if id == "" {
			return "", fmt.Errorf("serve: submit returned no workload ID")
		}
		return id, nil
	}

	var beIDs []string
	for i := 0; i < 4; i++ {
		id, err := submit(SubmitRequest{Type: "single-node", Family: -1, BestEffort: true})
		if err != nil {
			return err
		}
		beIDs = append(beIDs, id)
		time.Sleep(3 * time.Millisecond)
	}
	svcID, err := submit(SubmitRequest{Type: "webserver", Family: -1, QPS: 8000, LatencyUS: 900, MaxNodes: 3})
	if err != nil {
		return err
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := submit(SubmitRequest{Type: "hadoop", Family: 1, MaxNodes: 3, TargetSlack: 1.2}); err != nil {
		return err
	}
	time.Sleep(40 * time.Millisecond) // let the service admit before retargeting it
	if _, err := post("/v1/target/"+svcID, TargetUpdate{QPS: 9000}); err != nil {
		return err
	}
	if _, err := post("/v1/evict/"+beIDs[0], struct{}{}); err != nil {
		return err
	}

	// Introspection sweep: every read endpoint must answer while the pacer
	// is advancing.
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	ct := resp.Header.Get("Content-Type")
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if ct != promContentType {
		return fmt.Errorf("serve: /metrics Content-Type = %q, want %q", ct, promContentType)
	}
	for _, path := range []string{"/healthz", "/statusz", "/v1/workloads", "/v1/workloads/" + svcID} {
		resp, err := client.Get(base + path)
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("serve: GET %s: %s", path, resp.Status)
		}
	}
	resp, err = client.Get(base + "/debug/flightrecorder")
	if err != nil {
		return err
	}
	events, err := obs.ReadJSONL(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return fmt.Errorf("serve: flight recorder dump unreadable: %w", err)
	}
	if len(events) == 0 {
		return fmt.Errorf("serve: flight recorder dump is empty")
	}
	return nil
}

// fprintf writes report output, ignoring errors.
func fprintf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}
