package serve

import (
	"fmt"

	"quasar/internal/chaos"
	"quasar/internal/cluster"
	"quasar/internal/core"
	"quasar/internal/loadgen"
	"quasar/internal/obs"
	"quasar/internal/perfmodel"
	"quasar/internal/slo"
	"quasar/internal/workload"
)

// universeFamilies is the genome-family pool size per workload archetype —
// fixed so submit validation can bound the family index statelessly.
const universeFamilies = 3

// Config is the deterministic identity of a serve world. It is written into
// the journal header, so a journal file alone reconstructs the run: same
// Config + same entries ⇒ byte-identical trace.
type Config struct {
	// Servers sizes a uniform spread of the local platforms; 0 uses the
	// paper's 40-server local testbed (4 of each platform A-J).
	Servers int `json:"servers"`
	// Seed is the deterministic seed for the whole world.
	Seed int64 `json:"seed"`
	// TickSecs / SampleSecs are the runtime cadences (defaults 5 / 60).
	TickSecs   float64 `json:"tick_secs"`
	SampleSecs float64 `json:"sample_secs"`
	// EpochSecs is the admission epoch: journal entries apply at multiples
	// of this boundary (default 1). Must be exactly representable in binary
	// floating point (integers, halves, quarters...) so accumulated
	// boundaries match between live run and replay.
	EpochSecs float64 `json:"epoch_secs"`
	// MaxNodes bounds per-job scale-out (default 4).
	MaxNodes int `json:"max_nodes"`
	// SeedLib is the offline-profiled library size per workload type
	// (default 1; the library is generated at startup and consumes the
	// first 7×SeedLib workload ordinals).
	SeedLib int `json:"seed_lib"`
	// SLO attaches the SLO monitoring engine; /healthz reads its cluster
	// health sweep.
	SLO bool `json:"slo"`
	// Detector arms the failure detector (always armed when Faults is set).
	Detector bool `json:"detector"`
	// FlightRecorder is the RingSink capacity backing /debug/flightrecorder
	// (default 4096 events).
	FlightRecorder int `json:"flight_recorder"`
	// Faults optionally injects a chaos plan, armed before any admission.
	Faults *chaos.Plan `json:"faults,omitempty"`
}

// withDefaults fills unset fields; the result is what the journal header
// records, so defaults changing in a future version cannot reinterpret an
// existing journal.
func (c Config) withDefaults() Config {
	if c.TickSecs <= 0 {
		c.TickSecs = 5
	}
	if c.SampleSecs <= 0 {
		c.SampleSecs = 60
	}
	if c.EpochSecs <= 0 {
		c.EpochSecs = 1
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 4
	}
	if c.SeedLib <= 0 {
		c.SeedLib = 1
	}
	if c.FlightRecorder <= 0 {
		c.FlightRecorder = 4096
	}
	return c
}

// world is a fully assembled simulation: cluster, runtime, universe, Quasar
// manager, tracer (ring flight recorder + optional extra sinks), optional
// SLO engine and fault injector. Both the live server and Replay build
// worlds through the same function, which is what makes them byte-identical.
type world struct {
	cfg    Config
	rt     *core.Runtime
	u      *workload.Universe
	q      *core.Quasar
	slo    *slo.Engine
	tracer *obs.Tracer
	ring   *obs.RingSink
	inj    *chaos.Injector
	// onApplied, when set, observes every applied entry's outcome. The live
	// server uses it to close wall-clock request spans; Replay leaves it nil,
	// and it feeds nothing back into the deterministic stream.
	onApplied func(e *Entry, applyErr string)
}

// quasarOptions is the manager configuration shared by world construction
// and failover restore — a restored standby must configure its fresh manager
// identically to the primary's.
func quasarOptions(cfg Config) core.QuasarOptions {
	opts := core.DefaultQuasarOptions()
	opts.MaxNodesPerJob = cfg.MaxNodes
	opts.Classify.MaxNodes = maxInt(32, cfg.MaxNodes)
	opts.Classify.Entries = 3
	return opts
}

// buildWorld assembles the world for cfg. Extra sinks (a trace StreamSink)
// are appended after the always-on flight-recorder ring. Everything that
// derives RNG streams happens here, in a fixed order, before any admission —
// the deterministic prologue every replay repeats exactly.
func buildWorld(cfg Config, extra ...obs.Sink) (*world, error) {
	cfg = cfg.withDefaults()
	var cl *cluster.Cluster
	var err error
	if cfg.Servers > 0 {
		cl, err = cluster.NewUniform(cluster.LocalPlatforms(), cfg.Servers)
	} else {
		cl, err = cluster.New(cluster.LocalPlatforms(), []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4})
	}
	if err != nil {
		return nil, err
	}
	rt := core.NewRuntime(cl, core.Options{TickSecs: cfg.TickSecs, SampleSecs: cfg.SampleSecs, Seed: cfg.Seed})
	u := workload.NewUniverse(cl.Platforms, cfg.Seed+1000, universeFamilies)

	w := &world{cfg: cfg, rt: rt, u: u}
	w.ring = obs.NewRingSink(cfg.FlightRecorder)
	sinks := append([]obs.Sink{w.ring}, extra...)
	w.tracer = obs.NewWithSinks(rt.Eng.Now, sinks...)

	var lib []*workload.Instance
	for _, tp := range []workload.Type{workload.Hadoop, workload.Spark, workload.Storm,
		workload.Memcached, workload.Cassandra, workload.Webserver, workload.SingleNode} {
		for i := 0; i < cfg.SeedLib; i++ {
			lib = append(lib, u.New(workload.Spec{Type: tp, Family: -1, MaxNodes: 4}))
		}
	}
	q := core.NewQuasar(rt, quasarOptions(cfg))
	q.SetTracer(w.tracer)
	q.SeedLibrary(lib)
	w.q = q
	rt.SetManager(q)
	if cfg.SLO {
		w.slo = slo.Attach(rt, w.tracer, slo.DefaultOptions())
	}
	if cfg.Detector || cfg.Faults != nil {
		rt.EnableFailureDetector(core.DefaultDetectorOptions())
	}
	if cfg.Faults != nil {
		inj, err := chaos.NewInjector(rt.Eng, rt, cfg.Faults, rt.RNG.Stream("chaos"))
		if err != nil {
			return nil, err
		}
		inj.Start()
		w.inj = inj
	}
	return w, nil
}

// apply executes one journal entry at the current simulation time (an epoch
// boundary — the pacer and Replay both schedule entries there). Entries that
// fail against current state — evicting a finished workload, retargeting an
// unknown one — are deterministic no-ops recorded as apply-error instants:
// the failure depends only on sim state, so live run and replay agree on it.
// A submit whose constructed ID diverges from the journaled promise is a
// determinism violation and a fatal error.
func (w *world) apply(e *Entry) error {
	switch e.Kind {
	case KindSubmit:
		spec := workload.Spec{
			Type:           typeByName[e.Submit.Type],
			Family:         e.Submit.Family,
			BestEffort:     e.Submit.BestEffort,
			TargetSlack:    e.Submit.TargetSlack,
			QPS:            e.Submit.QPS,
			LatencyUS:      e.Submit.LatencyUS,
			MaxNodes:       e.Submit.MaxNodes,
			MaxCostPerHour: e.Submit.MaxCostPerHour,
		}
		if e.Submit.Dataset != nil {
			spec.Dataset = *e.Submit.Dataset
		}
		inst := w.u.New(spec)
		if inst.ID != e.Workload {
			return fmt.Errorf("serve: journal seq %d promised workload %s but universe minted %s (journal and world out of sync)",
				e.Seq, e.Workload, inst.ID)
		}
		var load loadgen.Pattern
		if e.Submit.Load != nil {
			var err error
			load, err = e.Submit.Load.Build()
			if err != nil {
				// Validated at admission; failing here means the journal
				// was edited or the format drifted.
				return fmt.Errorf("serve: journal seq %d: %w", e.Seq, err)
			}
		} else if inst.Type.Class() == perfmodel.LatencyCritical && !inst.BestEffort {
			load = loadgen.Fluctuating{Min: 0.4 * inst.Target.QPS, Max: 0.9 * inst.Target.QPS, Period: 6000}
		}
		w.rt.Submit(inst, w.rt.Eng.Now(), load)
		w.applied(e, "")
	case KindTarget:
		t := w.rt.Task(e.Workload)
		if t == nil {
			w.applied(e, "unknown workload")
			return nil
		}
		target := t.W.Target
		if e.Target.CompletionSecs > 0 {
			target.CompletionSecs = e.Target.CompletionSecs
		}
		if e.Target.QPS > 0 {
			target.QPS = e.Target.QPS
		}
		if e.Target.LatencyUS > 0 {
			target.LatencyUS = e.Target.LatencyUS
		}
		if e.Target.IPS > 0 {
			target.IPS = e.Target.IPS
		}
		if err := w.q.UpdateTarget(e.Workload, target); err != nil {
			w.applied(e, err.Error())
			return nil
		}
		w.applied(e, "")
	case KindEvict:
		if err := w.rt.Evict(e.Workload); err != nil {
			w.applied(e, err.Error())
			return nil
		}
		w.applied(e, "")
	case KindEnd:
		// The end marker is consumed by the replay loop, never applied.
	default:
		return fmt.Errorf("serve: journal seq %d has unknown kind %q", e.Seq, e.Kind)
	}
	return nil
}

// applied emits the per-entry trace instant — part of the deterministic
// stream, so a replayed trace proves every journal entry was applied at the
// same boundary with the same outcome. The req arg comes from the journal
// entry, so live run and replay emit the identical value (and pre-Req
// journals, which carry no request IDs, replay byte-identically to their
// original traces).
func (w *world) applied(e *Entry, applyErr string) {
	if w.onApplied != nil {
		w.onApplied(e, applyErr)
	}
	if !w.tracer.Enabled() {
		return
	}
	args := []obs.Arg{
		{Key: "seq", Val: e.Seq},
		{Key: "kind", Val: e.Kind},
		{Key: "workload", Val: e.Workload},
	}
	if e.Req != "" {
		args = append(args, obs.Arg{Key: "req", Val: e.Req})
	}
	name := "serve.apply"
	if applyErr != "" {
		name = "serve.apply-error"
		args = append(args, obs.Arg{Key: "error", Val: applyErr})
	}
	w.tracer.Instant("serve", "serve", name, args...)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
