package serve

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"quasar/internal/obs"
	"quasar/internal/par"
)

// scriptFixture is the standard replay-test script: a service, a best-effort
// filler, a batch job, then a mid-run retarget and an eviction.
func scriptFixture() []ScriptEntry {
	return []ScriptEntry{
		{At: 1, Submit: &SubmitRequest{Type: "webserver", Family: -1, QPS: 9000, LatencyUS: 900, MaxNodes: 3}},
		{At: 2.3, Submit: &SubmitRequest{Type: "single-node", Family: -1, BestEffort: true}},
		{At: 5, Submit: &SubmitRequest{Type: "hadoop", Family: 1, MaxNodes: 3, TargetSlack: 1.3}},
		{At: 30, Workload: "webserver-0008", Target: &TargetUpdate{QPS: 11000}},
		{At: 45, Evict: "single-node-0009"},
	}
}

// TestBuildJournalPredictsIDs pins the deterministic ID contract: with the
// default library (7 types x 1 seed = ordinals 1..7), submissions start at
// 0008 in admission order.
func TestBuildJournalPredictsIDs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	ids, err := BuildJournal(path, Config{Servers: 24, Seed: 13}, 60, scriptFixture())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"webserver-0008", "single-node-0009", "hadoop-0010"}
	if len(ids) != len(want) {
		t.Fatalf("got %d promised IDs, want %d", len(ids), len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("promised ID %d = %q, want %q", i, ids[i], want[i])
		}
	}
}

// TestReplayDeterministicAcrossWorkers replays the same journal at several
// worker counts: traces and final manager state must be byte-identical.
func TestReplayDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "run.journal")
	if _, err := BuildJournal(journal, Config{Servers: 24, Seed: 13, SLO: true}, 300, scriptFixture()); err != nil {
		t.Fatal(err)
	}
	run := func(workers int) ([]byte, []byte) {
		par.SetDefaultWorkers(workers)
		defer par.SetDefaultWorkers(0)
		tracePath := filepath.Join(dir, fmt.Sprintf("w%d.jsonl", workers))
		sink, err := obs.NewStreamSink(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Replay(journal, ReplayOptions{Sinks: []obs.Sink{sink}})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Applied != 5 || res.Truncated {
			t.Fatalf("workers=%d: applied %d (truncated=%v), want 5 complete", workers, res.Applied, res.Truncated)
		}
		trace, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		return trace, res.ManagerState
	}
	wantTrace, wantState := run(1)
	for _, workers := range []int{4, runtime.NumCPU()} {
		trace, state := run(workers)
		if !bytes.Equal(wantTrace, trace) {
			t.Errorf("workers=%d: trace diverged (%d vs %d bytes)", workers, len(wantTrace), len(trace))
		}
		if !bytes.Equal(wantState, state) {
			t.Errorf("workers=%d: manager state diverged", workers)
		}
	}
}

// TestReplayApplyErrorsAreDeterministicNoOps: target updates and evictions
// naming unknown workloads journal fine and apply as traced no-ops — the
// daemon must not die because a client raced an eviction, and the no-op must
// itself be part of the deterministic record.
func TestReplayApplyErrorsAreDeterministicNoOps(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "run.journal")
	script := []ScriptEntry{
		{At: 1, Submit: &SubmitRequest{Type: "single-node", Family: -1, BestEffort: true}},
		{At: 3, Workload: "nope-0001", Target: &TargetUpdate{QPS: 100}},
		{At: 4, Evict: "nope-0002"},
	}
	if _, err := BuildJournal(journal, Config{Servers: 8, Seed: 3}, 30, script); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "out.jsonl")
	sink, err := obs.NewStreamSink(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(journal, ReplayOptions{Sinks: []obs.Sink{sink}})
	if err != nil {
		t.Fatalf("replay with unknown-workload entries should not fail: %v", err)
	}
	if res.Applied != 3 {
		t.Fatalf("applied %d entries, want 3", res.Applied)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadJSONL(f)
	_ = f.Close()
	if err != nil {
		t.Fatal(err)
	}
	var applied, failed int
	for _, e := range events {
		switch e.Name {
		case "serve.apply":
			applied++
		case "serve.apply-error":
			failed++
		}
	}
	if applied != 1 || failed != 2 {
		t.Fatalf("trace has %d serve.apply + %d serve.apply-error events, want 1 + 2", applied, failed)
	}
}

// TestReplayTruncatedJournal simulates a hard-killed primary: the journal
// ends without an end marker, and the standby applies everything on disk.
func TestReplayTruncatedJournal(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "run.journal")
	if _, err := BuildJournal(journal, Config{Servers: 24, Seed: 13}, 60, scriptFixture()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the end-marker line (the last one).
	trimmed := bytes.TrimRight(data, "\n")
	cut := bytes.LastIndexByte(trimmed, '\n')
	if cut < 0 {
		t.Fatal("journal too short to truncate")
	}
	truncated := filepath.Join(dir, "killed.journal")
	if err := os.WriteFile(truncated, data[:cut+1], 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Replay(truncated, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("replay did not flag the missing end marker")
	}
	if res.Applied != 5 {
		t.Fatalf("applied %d entries from the truncated journal, want all 5", res.Applied)
	}
}

// TestOpenJournalHeader round-trips the world configuration through the
// journal header.
func TestOpenJournalHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	cfg := Config{Servers: 48, Seed: 99, EpochSecs: 0.5, SLO: true}
	if _, err := BuildJournal(path, cfg, 10, nil); err != nil {
		t.Fatal(err)
	}
	r, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Close() }()
	got := r.Config()
	if got.Servers != 48 || got.Seed != 99 || got.EpochSecs != 0.5 || !got.SLO { //lint:allow(floatcmp) exact round-trip
		t.Fatalf("header config did not round-trip: %+v", got)
	}
	if got.TickSecs != 5 || got.SeedLib != 1 {
		t.Fatalf("header config lost defaults: %+v", got)
	}
}
