package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"quasar/internal/obs"
)

// TestWarmFailoverResumesByteIdentically is the failover determinism
// contract: a standby that restores the mid-run snapshot and continues from
// the journal tail must land in exactly the same state as any other standby
// doing the same — traces and final manager bytes identical. (The failover
// continuation is not compared against the uninterrupted run: the restored
// manager derives its RNG streams at the failover point, which is the
// documented determinism boundary.)
func TestWarmFailoverResumesByteIdentically(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "run.journal")
	snapshot := filepath.Join(dir, "run.snapshot.json")
	cfg := Config{Servers: 24, Seed: 21}
	script := []ScriptEntry{
		{At: 1, Submit: &SubmitRequest{Type: "memcached", Family: -1, QPS: 7000, LatencyUS: 600, MaxNodes: 3}},
		{At: 4, Submit: &SubmitRequest{Type: "single-node", Family: -1, BestEffort: true}},
		{At: 8, Submit: &SubmitRequest{Type: "spark", Family: 0, MaxNodes: 3, TargetSlack: 1.4}},
		// Admissions continuing past the t=50 snapshot: the standby applies
		// these from the journal tail after restoring.
		{At: 60, Submit: &SubmitRequest{Type: "single-node", Family: -1, BestEffort: true}},
		{At: 70, Evict: "single-node-0009"},
	}
	if _, err := BuildJournal(journal, cfg, 90, script); err != nil {
		t.Fatal(err)
	}

	// Pass 1: plain replay writing the mid-run snapshot at t=50 (end is 90,
	// so the cadence fires exactly once — genuinely mid-run).
	if _, err := Replay(journal, ReplayOptions{SnapshotPath: snapshot, SnapshotEverySecs: 50}); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadSnapshot(snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SimTime != 50 { //lint:allow(floatcmp) cadence pins an exact boundary
		t.Fatalf("snapshot at t=%g, want the mid-run t=50", snap.SimTime)
	}

	takeOver := func(name string) ([]byte, *ReplayResult) {
		tracePath := filepath.Join(dir, name+".jsonl")
		sink, err := obs.NewStreamSink(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Replay(journal, ReplayOptions{
			Sinks: []obs.Sink{sink}, Snapshot: snap, Failover: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		trace, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		return trace, res
	}
	traceA, resA := takeOver("standby-a")
	traceB, resB := takeOver("standby-b")

	if !resA.SnapshotVerified || resA.FailoverAt != 50 { //lint:allow(floatcmp) exact boundary
		t.Fatalf("failover did not happen at the snapshot boundary: verified=%v at t=%g", resA.SnapshotVerified, resA.FailoverAt)
	}
	if resA.Applied != len(script) {
		t.Fatalf("standby applied %d entries, want all %d (tail included)", resA.Applied, len(script))
	}
	if !bytes.Equal(traceA, traceB) {
		t.Fatalf("two identical failover take-overs diverged (%d vs %d trace bytes)", len(traceA), len(traceB))
	}
	if !bytes.Equal(resA.ManagerState, resB.ManagerState) {
		t.Fatal("two identical failover take-overs ended with different manager state")
	}
}

// TestSnapshotVerifyCatchesDivergence: a snapshot from a different run must
// fail verification, not silently pass.
func TestSnapshotVerifyCatchesDivergence(t *testing.T) {
	dir := t.TempDir()
	journalA := filepath.Join(dir, "a.journal")
	journalB := filepath.Join(dir, "b.journal")
	snapA := filepath.Join(dir, "a.snapshot.json")
	script := []ScriptEntry{
		{At: 1, Submit: &SubmitRequest{Type: "single-node", Family: -1, BestEffort: true}},
		{At: 2, Submit: &SubmitRequest{Type: "webserver", Family: -1, QPS: 5000, LatencyUS: 800, MaxNodes: 2}},
	}
	if _, err := BuildJournal(journalA, Config{Servers: 16, Seed: 31}, 40, script); err != nil {
		t.Fatal(err)
	}
	// Same script, different seed: different world, different manager bytes.
	if _, err := BuildJournal(journalB, Config{Servers: 16, Seed: 32}, 40, script); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(journalA, ReplayOptions{SnapshotPath: snapA, SnapshotEverySecs: 20}); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadSnapshot(snapA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(journalB, ReplayOptions{Snapshot: snap}); err == nil {
		t.Fatal("replay of journal B verified journal A's snapshot")
	}
}
