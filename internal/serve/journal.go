// Package serve is the live front end of the simulator: a long-lived daemon
// that free-runs (or time-warps) the deterministic engine against the wall
// clock while accepting workload submissions, target updates, and evictions
// over HTTP.
//
// The determinism boundary is the admission journal. HTTP handlers never
// touch the engine; they append a journal entry stamped with the next epoch
// boundary of the simulation clock and return immediately. The pacer — the
// single goroutine that owns the engine — seals the journal at every epoch
// boundary B, schedules the sealed batch at B in sequence order, and runs the
// engine to B. Because the engine's event sequencing depends only on the
// order of Schedule calls, a replay that performs the identical per-boundary
// schedules reproduces the run byte for byte: same journal + same seed ⇒
// byte-identical trace, regardless of wall-clock arrival jitter, worker
// count, or whether the run was live or offline.
//
// Failover rides the same journal: a standby tails it (Replay with Follow),
// rebuilding the identical world, and can restore the manager from the
// primary's latest snapshot plus the journal tail, resuming mid-run with a
// byte-identical continuation.
package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"quasar/internal/loadgen"
	"quasar/internal/workload"
)

// errJournalClosed is precomputed: admission rejection sits on the journal
// hot path, where formatting would allocate per request.
var errJournalClosed = errors.New("serve: journal closed")

// Journal entry kinds.
const (
	// KindSubmit admits a new workload.
	KindSubmit = "submit"
	// KindTarget replaces a running workload's performance target.
	KindTarget = "target"
	// KindEvict removes a best-effort workload.
	KindEvict = "evict"
	// KindEnd marks the final epoch boundary of a finished run.
	KindEnd = "end"
)

// journalMagic is the header line's format tag.
const journalMagic = "quasar-serve-journal-v1"

// journalHeader is line 1 of every journal: the format tag plus the full
// world configuration, so a journal file is a self-contained description of
// the run — Replay rebuilds the identical world from the header alone.
type journalHeader struct {
	Journal string `json:"journal"`
	Config  Config `json:"config"`
}

// SubmitRequest is the admission wire shape of one workload, mirroring
// workload.Spec with the type spelled by name. It is both the HTTP request
// body of POST /v1/submit and the journaled form of the admission.
type SubmitRequest struct {
	// Type is the workload kind by name: hadoop, spark, storm, memcached,
	// cassandra, webserver, single-node.
	Type string `json:"type"`
	// Family optionally pins the genome family (-1, the default when
	// omitted, picks deterministically at apply time).
	Family int `json:"family"`
	// BestEffort marks evictable filler with no target.
	BestEffort bool `json:"best_effort,omitempty"`
	// TargetSlack relaxes the auto-derived target (1.0 = oracle-best).
	TargetSlack float64 `json:"target_slack,omitempty"`
	// QPS / LatencyUS override the auto-derived latency-service target.
	QPS       float64 `json:"qps,omitempty"`
	LatencyUS float64 `json:"latency_us,omitempty"`
	// MaxNodes bounds the target oracle's scale-out sweep.
	MaxNodes int `json:"max_nodes,omitempty"`
	// MaxCostPerHour optionally caps the allocation's resource cost.
	MaxCostPerHour float64 `json:"max_cost_per_hour,omitempty"`
	// Dataset optionally pins the input dataset.
	Dataset *workload.Dataset `json:"dataset,omitempty"`
	// Load optionally describes the offered-load curve for latency services
	// (default: a fluctuating curve between 40% and 90% of the target QPS).
	Load *loadgen.PatternSpec `json:"load,omitempty"`
}

// UnmarshalJSON decodes a request with Family defaulting to -1 ("pick for
// me"), and rejects unknown fields so a typo'd knob fails loudly at admission
// instead of silently journaling a half-understood request.
func (s *SubmitRequest) UnmarshalJSON(b []byte) error {
	type alias SubmitRequest
	a := alias{Family: -1}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&a); err != nil {
		return err
	}
	*s = SubmitRequest(a)
	return nil
}

// typeByName maps the wire spelling back to the workload type.
var typeByName = func() map[string]workload.Type {
	m := make(map[string]workload.Type, int(workload.NumTypes))
	for t := workload.Type(0); t < workload.NumTypes; t++ {
		m[t.String()] = t
	}
	return m
}()

// validate checks everything that can be checked statelessly at admission
// time, so the journal only ever carries well-formed requests.
func (s *SubmitRequest) validate() error {
	if _, ok := typeByName[s.Type]; !ok {
		return fmt.Errorf("serve: unknown workload type %q", s.Type)
	}
	if s.Family < -1 || s.Family >= universeFamilies {
		return fmt.Errorf("serve: family must be -1 (auto) or a pool index below %d, got %d", universeFamilies, s.Family)
	}
	if s.TargetSlack < 0 || s.QPS < 0 || s.LatencyUS < 0 || s.MaxNodes < 0 || s.MaxCostPerHour < 0 {
		return fmt.Errorf("serve: negative sizing field in submit request")
	}
	if s.Load != nil {
		if _, err := s.Load.Build(); err != nil {
			return err
		}
	}
	return nil
}

// TargetUpdate is a merge patch over a workload's current performance target:
// zero fields keep their current value, the class never changes.
type TargetUpdate struct {
	CompletionSecs float64 `json:"completion_secs,omitempty"`
	QPS            float64 `json:"qps,omitempty"`
	LatencyUS      float64 `json:"latency_us,omitempty"`
	IPS            float64 `json:"ips,omitempty"`
}

// validate requires at least one field and no negatives.
func (t *TargetUpdate) validate() error {
	if t.CompletionSecs < 0 || t.QPS < 0 || t.LatencyUS < 0 || t.IPS < 0 {
		return fmt.Errorf("serve: negative field in target update")
	}
	if t.CompletionSecs == 0 && t.QPS == 0 && t.LatencyUS == 0 && t.IPS == 0 { //lint:allow(floatcmp) zero means "field not set"
		return fmt.Errorf("serve: target update sets no fields")
	}
	return nil
}

// Entry is one journaled admission. Seq is the journal sequence number
// (from 1, contiguous), At the epoch boundary the entry applies at, and
// Workload the deterministic workload ID the admission front end promised —
// predicted for submits, caller-named for targets and evictions. Req is the
// request ID minted at admission; journaling it is what makes the wall-plane
// span ↔ sim-plane decision linkage reproducible — a replay reads the same
// Req and emits it on the same serve.apply instant.
type Entry struct {
	Seq      int            `json:"seq"`
	At       float64        `json:"at"`
	Kind     string         `json:"kind"`
	Req      string         `json:"req,omitempty"`
	Workload string         `json:"workload,omitempty"`
	Submit   *SubmitRequest `json:"submit,omitempty"`
	Target   *TargetUpdate  `json:"target,omitempty"`
}

// predictID mints the workload ID the universe will assign to the ordinal-th
// instance — the same format string workload.Universe.New uses, which is the
// contract letting admission promise IDs before the apply point runs.
func predictID(tp workload.Type, ordinal int) string {
	return fmt.Sprintf("%s-%04d", tp, ordinal) //lint:allow(hotalloc) one ID string per admission is the product
}

// Journal is the admission log writer. Admit appends entries stamped with
// the currently open epoch boundary; seal closes a boundary, hands the
// sealed batch to the pacer, and flushes — the group-commit point that makes
// the file tailable by a standby. The journal writes directly to its
// destination path (no temp-and-rename): a standby must be able to follow it
// while the primary is alive.
type Journal struct {
	mu          sync.Mutex
	file        *os.File // nil for writer-backed journals
	bw          *bufio.Writer
	enc         *json.Encoder
	err         error
	closed      bool
	nextSeq     int
	open        float64 // epoch boundary currently accepting admissions
	nextOrdinal int     // universe counter the next submit will consume
	pending     []Entry

	// bytesOut counts bytes reaching the destination writer (advanced at
	// flush); atomic so the journal_bytes gauge never takes j.mu.
	bytesOut atomic.Int64
	// tel, when set, receives wall-clock admission timings. It is recorded
	// into only AFTER j.mu is released — Telemetry.mu is a strict leaf lock.
	tel *Telemetry
}

// countingWriter advances an atomic byte counter as it forwards writes.
type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}

// CreateJournal creates the journal file at path, writes and flushes the
// header, and opens the first epoch boundary. nextOrdinal is the universe's
// Counter()+1 after world construction (library seeding consumes ordinals
// before any admission can).
func CreateJournal(path string, cfg Config, nextOrdinal int) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("serve: creating journal: %w", err)
	}
	j := newJournal(f, cfg, nextOrdinal)
	j.file = f
	if j.err != nil {
		_ = f.Close()
		return nil, j.err
	}
	return j, nil
}

// NewJournalWriter opens a journal over an arbitrary writer — tests and the
// admission allocation probe, which journals to io.Discard.
func NewJournalWriter(w io.Writer, cfg Config, nextOrdinal int) *Journal {
	return newJournal(w, cfg, nextOrdinal)
}

func newJournal(w io.Writer, cfg Config, nextOrdinal int) *Journal {
	cfg = cfg.withDefaults()
	j := &Journal{nextOrdinal: nextOrdinal, open: cfg.EpochSecs}
	j.bw = bufio.NewWriterSize(&countingWriter{w: w, n: &j.bytesOut}, 1<<16)
	j.enc = json.NewEncoder(j.bw)
	if err := j.enc.Encode(&journalHeader{Journal: journalMagic, Config: cfg}); err != nil {
		j.err = err
		return j
	}
	j.err = j.bw.Flush() // header visible immediately: a standby can attach right away
	return j
}

// Admit appends one entry, stamping its sequence number, the open epoch
// boundary, the request ID, and — for submits — the promised workload ID.
// The entry is encoded under the lock so file order always equals sequence
// order; it becomes durable (flushed) at the next seal. The returned entry
// carries the stamps for the HTTP response. When telemetry is attached, the
// lock wait and hold are measured here and recorded after the lock is
// released (Telemetry.mu is a leaf lock; see telemetry.go).
func (j *Journal) Admit(e Entry) (Entry, error) {
	tel := j.tel
	var arriveNS int64
	if tel != nil {
		arriveNS = telNow()
	}
	j.mu.Lock()
	var lockedNS int64
	if tel != nil {
		lockedNS = telNow()
	}
	ent, err := j.admitLocked(e)
	j.mu.Unlock()
	if tel != nil && err == nil {
		tel.admitted(&ent, arriveNS, lockedNS, telNow())
	}
	return ent, err
}

// admitLocked is Admit's stamping and encoding body (j.mu held).
func (j *Journal) admitLocked(e Entry) (Entry, error) {
	if j.closed {
		return e, errJournalClosed
	}
	if j.err != nil {
		return e, j.err
	}
	j.nextSeq++
	e.Seq = j.nextSeq
	e.At = j.open
	e.Req = requestID(e.Seq)
	if e.Kind == KindSubmit {
		e.Workload = predictID(typeByName[e.Submit.Type], j.nextOrdinal)
		j.nextOrdinal++
	}
	if err := j.enc.Encode(&e); err != nil {
		j.err = err
		return e, err
	}
	j.pending = append(j.pending, e)
	return e, nil
}

// seal closes the open boundary: it returns the batch admitted against it,
// opens nextOpen for subsequent admissions, and flushes the file so a
// tailing standby sees every entry of the sealed boundary (group commit).
// flushNS is the wall-clock duration of the group-commit flush when
// telemetry is attached (0 otherwise).
func (j *Journal) seal(nextOpen float64) (batch []Entry, flushNS int64, err error) {
	tel := j.tel
	j.mu.Lock()
	defer j.mu.Unlock()
	batch = j.pending
	j.pending = j.pending[len(j.pending):]
	j.open = nextOpen
	var t0 int64
	if tel != nil {
		t0 = telNow()
	}
	if err := j.bw.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	if tel != nil {
		flushNS = telNow() - t0
	}
	return batch, flushNS, j.err
}

// end writes the end marker at the final boundary, flushes, and closes the
// file. Idempotent.
func (j *Journal) end(at float64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return j.err
	}
	j.closed = true
	j.nextSeq++
	if err := j.enc.Encode(&Entry{Seq: j.nextSeq, At: at, Kind: KindEnd}); err != nil && j.err == nil {
		j.err = err
	}
	if err := j.bw.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	if j.file != nil {
		if err := j.file.Close(); err != nil && j.err == nil {
			j.err = err
		}
	}
	return j.err
}

// State reports the last admitted sequence number and the open boundary,
// for /statusz.
func (j *Journal) State() (seq int, open float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq, j.open
}

// JournalReader reads a journal incrementally, tolerating a file that is
// still being written: Next returns ok=false at a clean EOF (no complete
// line available yet), which is the poll point for Follow-mode tailing.
type JournalReader struct {
	f   *os.File
	cfg Config
	buf []byte
}

// OpenJournal opens a journal and parses its header line, which must already
// be on disk (the writer flushes it at creation).
func OpenJournal(path string) (*JournalReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	r := &JournalReader{f: f}
	line, ok, err := r.nextLine()
	if err == nil && !ok {
		err = fmt.Errorf("serve: journal %s has no header line", path)
	}
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	var h journalHeader
	if err := json.Unmarshal(line, &h); err != nil || h.Journal != journalMagic {
		_ = f.Close()
		return nil, fmt.Errorf("serve: %s is not a serve journal", path)
	}
	r.cfg = h.Config.withDefaults()
	return r, nil
}

// Config returns the world configuration recorded in the header.
func (r *JournalReader) Config() Config { return r.cfg }

// Close releases the file.
func (r *JournalReader) Close() error { return r.f.Close() }

// nextLine returns the next complete newline-terminated line, or ok=false
// when none is available yet (clean EOF — the file may still grow).
func (r *JournalReader) nextLine() ([]byte, bool, error) {
	for {
		if i := bytes.IndexByte(r.buf, '\n'); i >= 0 {
			line := r.buf[:i]
			r.buf = r.buf[i+1:]
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			return line, true, nil
		}
		chunk := make([]byte, 64<<10)
		n, err := r.f.Read(chunk)
		if n > 0 {
			r.buf = append(r.buf, chunk[:n]...)
			continue
		}
		if err == nil || err == io.EOF {
			return nil, false, nil
		}
		return nil, false, err
	}
}

// Next returns the next journal entry. ok=false with a nil error means the
// end of the file was reached without a complete entry — poll again when
// tailing a live journal, or treat as truncation for a finished one.
func (r *JournalReader) Next() (*Entry, bool, error) {
	line, ok, err := r.nextLine()
	if err != nil || !ok {
		return nil, false, err
	}
	var e Entry
	if err := json.Unmarshal(line, &e); err != nil {
		return nil, false, fmt.Errorf("serve: corrupt journal entry: %w", err)
	}
	return &e, true, nil
}
