package serve

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"quasar/internal/metrics"
	"quasar/internal/obs"
)

// The telemetry plane is serve mode's wall-clock observability: request
// spans, RED metrics, and operational gauges. It lives strictly outside the
// determinism boundary — nothing here is ever registered on the tracer's
// registry (whose metric lines trail the deterministic JSONL stream), and
// nothing here feeds back into admission stamping or engine scheduling. The
// same discipline as internal/obs/prof: wall-clock readings are monotonic
// nanoseconds since process start, through the single telNow read point.
//
// Lock order: Telemetry.mu is a strict leaf. It is taken after engineMu
// (pacer-side recording) or after Journal.mu is RELEASED (admission-side
// recording) — never while waiting on either, and nothing under it acquires
// another lock. Gauges that read state owned by other lock domains (journal
// bytes, applied sequence, snapshot age) go through atomics instead of locks
// so a /metrics render can never deadlock against the pacer.

// telBase anchors the telemetry clock at process start.
var telBase = time.Now()

// telNow reads the telemetry clock: monotonic nanoseconds since telBase.
func telNow() int64 { return time.Since(telBase).Nanoseconds() }

// requestID mints the wall-plane request ID for journal sequence seq. It is
// deterministic (a pure function of the sequence number) so replaying the
// journal reproduces the request-ID ↔ decision linkage exactly.
func requestID(seq int) string {
	var b [20]byte
	bs := append(b[:0], 'r', '-')
	bs = strconv.AppendInt(bs, int64(seq), 10)
	return string(bs)
}

// RequestSpan is the wall-clock phase breakdown of one admitted request,
// queryable via GET /debug/requests[/{id}]. All durations are microseconds;
// ReceivedMS is wall milliseconds since the daemon process started.
type RequestSpan struct {
	Req      string  `json:"req"`
	Seq      int     `json:"seq"`
	Kind     string  `json:"kind"`
	Workload string  `json:"workload,omitempty"`
	ApplyAt  float64 `json:"apply_at"`
	// Phase timings, in request order: handler receive → decode/validate →
	// journal lock wait → lock hold (stamp + encode) → epoch seal (group
	// commit flush) → engine apply.
	ReceivedMS float64 `json:"received_ms"`
	DecodeUS   float64 `json:"decode_us"`
	LockWaitUS float64 `json:"lock_wait_us"`
	LockHoldUS float64 `json:"lock_hold_us"`
	HandlerUS  float64 `json:"handler_us"`
	SealWaitUS float64 `json:"seal_wait_us"`
	FlushUS    float64 `json:"flush_us"`
	ApplyUS    float64 `json:"apply_us"`
	// AdmitToDecisionUS is the wall time from handler receive to the engine
	// applying the entry at its epoch boundary.
	AdmitToDecisionUS float64 `json:"admit_to_decision_us"`
	// Outcome is "" until the entry applies, then "applied" or "apply-error".
	Outcome string `json:"outcome,omitempty"`
	Error   string `json:"error,omitempty"`

	receivedNS int64 // handler-entry telemetry clock reading
}

// telemetryEndpoints is the fixed endpoint label vocabulary of the RED
// metrics, registered up front so /metrics sample groups are stable.
var telemetryEndpoints = []string{
	"submit", "target", "evict", "shutdown", "workloads", "workload",
	"healthz", "metrics", "flightrecorder", "statusz", "requests",
	"trace-stream", "other",
}

// Telemetry is the serve daemon's wall-clock telemetry state: the bounded
// request-span ring, the RED counters/histograms, and the atomics backing the
// operational gauges.
type Telemetry struct {
	// Cross-lock-domain gauge state (atomics; see the lock-order comment).
	journalBytes   *atomic.Int64
	appliedSeq     atomic.Int64
	lastSnapshotNS atomic.Int64 // -1 until the first snapshot lands

	mu     sync.Mutex
	reg    *obs.Registry
	spans  []RequestSpan // ring keyed by Seq % len
	maxSeq int           // highest admitted sequence recorded

	httpReqs map[string]*obs.Counter
	httpErrs map[string]*obs.Counter
	httpLat  map[string]*metrics.Histogram

	flushUS    *metrics.Histogram
	batchSize  *metrics.Histogram
	pacerLagUS *metrics.Histogram
}

// newTelemetry builds the telemetry plane with a request ring of the given
// capacity. journalBytes is the journal's output-byte counter; subscribers
// and subDropped read the tee sink's subscription state.
func newTelemetry(ringCap int, journalBytes *atomic.Int64, subscribers, subDropped func() int64) *Telemetry {
	if ringCap < 16 {
		ringCap = 16
	}
	t := &Telemetry{
		reg:          obs.NewRegistry(),
		spans:        make([]RequestSpan, ringCap),
		journalBytes: journalBytes,
		httpReqs:     make(map[string]*obs.Counter, len(telemetryEndpoints)),
		httpErrs:     make(map[string]*obs.Counter, len(telemetryEndpoints)),
		httpLat:      make(map[string]*metrics.Histogram, len(telemetryEndpoints)),
		flushUS:      metrics.NewHistogram(0.01),
		batchSize:    metrics.NewHistogram(0.01),
		pacerLagUS:   metrics.NewHistogram(0.01),
	}
	t.lastSnapshotNS.Store(-1)
	for _, ep := range telemetryEndpoints {
		label := `endpoint="` + ep + `"`
		t.httpReqs[ep] = t.reg.LabeledCounter("serve_http_requests_total",
			label, "HTTP requests handled, by endpoint.")
	}
	for _, ep := range telemetryEndpoints {
		label := `endpoint="` + ep + `"`
		t.httpErrs[ep] = t.reg.LabeledCounter("serve_http_errors_total",
			label, "HTTP responses with status >= 400, by endpoint.")
	}
	for _, ep := range telemetryEndpoints {
		label := `endpoint="` + ep + `"`
		h := metrics.NewHistogram(0.01)
		t.httpLat[ep] = h
		t.reg.LabeledHistogram("serve_http_request_us",
			label, "Wall-clock handler latency, microseconds, by endpoint.", h)
	}
	t.reg.Histogram("serve_journal_flush_us",
		"Journal group-commit flush latency per sealed epoch, microseconds.", t.flushUS)
	t.reg.Histogram("serve_epoch_batch_size",
		"Admissions sealed per epoch boundary.", t.batchSize)
	t.reg.Histogram("serve_pacer_lag_us",
		"How far the pacer ran behind its wall-clock warp target per epoch, microseconds.", t.pacerLagUS)
	t.reg.Gauge("journal_bytes",
		"Bytes written to the admission journal.", func() float64 {
			return float64(journalBytes.Load())
		})
	t.reg.Gauge("applied_seq",
		"Last journal sequence number applied by the engine.", func() float64 {
			return float64(t.appliedSeq.Load())
		})
	t.reg.Gauge("snapshot_age_seconds",
		"Wall seconds since the last warm-failover snapshot landed (-1 before the first).", func() float64 {
			last := t.lastSnapshotNS.Load()
			if last < 0 {
				return -1
			}
			return float64(telNow()-last) / 1e9
		})
	t.reg.Gauge("serve_trace_subscribers",
		"Live /v1/trace/stream subscribers.", func() float64 {
			return float64(subscribers())
		})
	t.reg.Gauge("serve_trace_sub_dropped_total",
		"Trace events dropped across all stream subscribers (bounded buffers).", func() float64 {
			return float64(subDropped())
		})
	return t
}

// spanFor returns the ring slot for seq if it still holds that sequence.
func (t *Telemetry) spanFor(seq int) *RequestSpan {
	sp := &t.spans[seq%len(t.spans)]
	if sp.Seq != seq {
		return nil
	}
	return sp
}

// admitted opens the span for a freshly journaled entry. Called by the
// journal AFTER releasing Journal.mu; arriveNS/lockedNS/releasedNS bracket
// the lock wait and hold.
func (t *Telemetry) admitted(ent *Entry, arriveNS, lockedNS, releasedNS int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &t.spans[ent.Seq%len(t.spans)]
	*sp = RequestSpan{
		Req: ent.Req, Seq: ent.Seq, Kind: ent.Kind, Workload: ent.Workload,
		ApplyAt:    ent.At,
		LockWaitUS: float64(lockedNS-arriveNS) / 1e3,
		LockHoldUS: float64(releasedNS-lockedNS) / 1e3,
		receivedNS: arriveNS,
	}
	if ent.Seq > t.maxSeq {
		t.maxSeq = ent.Seq
	}
}

// received back-fills the handler-side timings once the admission response is
// ready: t0 is handler entry (decode starts), doneNS the response write
// point.
func (t *Telemetry) received(seq int, t0, doneNS int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := t.spanFor(seq)
	if sp == nil {
		return
	}
	sp.DecodeUS = float64(sp.receivedNS-t0) / 1e3
	sp.HandlerUS = float64(doneNS-t0) / 1e3
	sp.ReceivedMS = float64(t0) / 1e6
	sp.receivedNS = t0
}

// sealed stamps the group-commit point for every entry of a sealed batch:
// the epoch-seal wait (admission to seal) and the shared flush duration.
func (t *Telemetry) sealed(batch []Entry, sealNS int64, flushNS int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.flushUS.Add(float64(flushNS) / 1e3)
	t.batchSize.Add(float64(len(batch)))
	for i := range batch {
		sp := t.spanFor(batch[i].Seq)
		if sp == nil {
			continue
		}
		sp.SealWaitUS = float64(sealNS-sp.receivedNS) / 1e3
		sp.FlushUS = float64(flushNS) / 1e3
	}
}

// applied closes the span when the engine applies the entry at its boundary.
func (t *Telemetry) applied(e *Entry, applyNS int64, applyErr string) {
	t.appliedSeq.Store(int64(e.Seq))
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := t.spanFor(e.Seq)
	if sp == nil {
		return
	}
	now := telNow()
	sp.ApplyUS = float64(applyNS) / 1e3
	sp.AdmitToDecisionUS = float64(now-sp.receivedNS) / 1e3
	if applyErr == "" {
		sp.Outcome = "applied"
	} else {
		sp.Outcome = "apply-error"
		sp.Error = applyErr
	}
}

// pacerLag records how far behind its warp target an epoch completed.
func (t *Telemetry) pacerLag(lag time.Duration) {
	if lag < 0 {
		lag = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pacerLagUS.Add(float64(lag.Nanoseconds()) / 1e3)
}

// snapshotLanded records a successful warm-failover snapshot write.
func (t *Telemetry) snapshotLanded() { t.lastSnapshotNS.Store(telNow()) }

// httpDone records one completed HTTP request for the RED metrics.
func (t *Telemetry) httpDone(endpoint string, status int, dur time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.httpReqs[endpoint].Inc()
	if status >= 400 {
		t.httpErrs[endpoint].Inc()
	}
	t.httpLat[endpoint].Add(float64(dur.Nanoseconds()) / 1e3)
}

// Recent returns up to limit request spans, most recent first.
func (t *Telemetry) Recent(limit int) []RequestSpan {
	if limit <= 0 || limit > len(t.spans) {
		limit = len(t.spans)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]RequestSpan, 0, limit)
	for seq := t.maxSeq; seq > 0 && len(out) < limit; seq-- {
		sp := t.spanFor(seq)
		if sp == nil {
			break // older than the ring window
		}
		out = append(out, *sp)
	}
	return out
}

// Span returns the span for a request ID ("r-<seq>"), if the ring still
// holds it.
func (t *Telemetry) Span(req string) (RequestSpan, bool) {
	if len(req) < 3 || req[0] != 'r' || req[1] != '-' {
		return RequestSpan{}, false
	}
	seq, err := strconv.Atoi(req[2:])
	if err != nil || seq <= 0 {
		return RequestSpan{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := t.spanFor(seq)
	if sp == nil || sp.Req != req {
		return RequestSpan{}, false
	}
	return *sp, true
}

// endpointPercentiles reads the handler-latency percentiles for one endpoint
// — the server-side cross-check the serve benchmark gates on.
func (t *Telemetry) endpointPercentiles(endpoint string, qs ...float64) []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.httpLat[endpoint]
	out := make([]float64, len(qs))
	for i, q := range qs {
		if h != nil && h.N() > 0 {
			out[i] = h.Percentile(q)
		}
	}
	return out
}

// WriteProm renders the telemetry registry in the Prometheus exposition
// format under the telemetry lock (the histograms mutate concurrently with
// scrapes; the gauges read atomics and take no lock).
func (t *Telemetry) WriteProm(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return obs.WritePromRegistry(w, t.reg)
}
