package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// snapshotVersion is the ServeSnapshot format version.
const snapshotVersion = 1

// ServeSnapshot is the warm-failover handoff: the manager's serialized state
// pinned to the epoch boundary it was captured at, plus the journal and
// universe cursors a standby needs to line the snapshot up against the
// journal tail. The world itself (cluster, runtime, in-flight events) is not
// serialized — closures cannot be — so a standby rebuilds it by replaying
// the journal from the start, then verifies its manager byte-matches
// Manager at SimTime before (or instead of) restoring from it.
type ServeSnapshot struct {
	// Version is the format version (currently 1).
	Version int `json:"version"`
	// SimTime is the epoch boundary the snapshot was captured at.
	SimTime float64 `json:"sim_time"`
	// AppliedSeq is the journal sequence number of the last entry applied
	// at or before SimTime.
	AppliedSeq int `json:"applied_seq"`
	// NextCounter is the universe's instance counter at SimTime, pinning
	// the workload-ID cursor.
	NextCounter int `json:"next_counter"`
	// Manager is the Quasar manager snapshot (core.QuasarSnapshot JSON).
	Manager json.RawMessage `json:"manager"`
}

// marshalSnapshot captures the world's failover state at the current epoch
// boundary. Deterministic: the same world state always serializes to the
// same bytes, which is what lets a standby verify its journal-rebuilt
// manager against the primary's snapshot with a byte compare.
func marshalSnapshot(w *world, appliedSeq int) ([]byte, error) {
	mgr, err := w.q.MarshalSnapshot()
	if err != nil {
		return nil, err
	}
	snap := ServeSnapshot{
		Version:     snapshotVersion,
		SimTime:     w.rt.Eng.Now(),
		AppliedSeq:  appliedSeq,
		NextCounter: w.u.Counter(),
		Manager:     mgr,
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// LoadSnapshot reads and validates a snapshot file.
func LoadSnapshot(path string) (*ServeSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: reading snapshot: %w", err)
	}
	var snap ServeSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("serve: decoding snapshot %s: %w", path, err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("serve: snapshot %s has version %d, want %d", path, snap.Version, snapshotVersion)
	}
	if snap.SimTime < 0 || snap.AppliedSeq < 0 || snap.NextCounter < 0 {
		return nil, fmt.Errorf("serve: snapshot %s has negative cursor", path)
	}
	if len(snap.Manager) == 0 {
		return nil, fmt.Errorf("serve: snapshot %s carries no manager state", path)
	}
	return &snap, nil
}

// writeSnapshotFile lands a snapshot atomically: temp file in the
// destination directory, then rename — a standby polling the path never
// observes a half-written snapshot, and a crash mid-write leaves the
// previous snapshot intact.
func writeSnapshotFile(path string, data []byte) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return nil
}
