package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// TelemetrySmoke exercises the wall-clock telemetry plane end to end, the way
// the CI telemetry lane does: start a live daemon, tail GET /v1/trace/stream
// while admissions flow, scrape /metrics for the RED and operational series,
// query /debug/requests for the span of a known request, and — the
// correlation check — assert that every request ID the admission API returned
// shows up on a serve.apply event in the live stream.
func TelemetrySmoke(out io.Writer) error {
	dir, err := os.MkdirTemp("", "quasar-telemetry-smoke-")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	srv, err := New(Options{
		Addr:         "127.0.0.1:0",
		Config:       Config{Servers: 10, Seed: 7},
		JournalPath:  filepath.Join(dir, "run.journal"),
		SnapshotPath: filepath.Join(dir, "run.snapshot.json"), SnapshotEverySecs: 5,
		Warp: 200,
	})
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	base := "http://" + srv.Addr()
	client := &http.Client{Timeout: 30 * time.Second}
	stop := func() {
		srv.Shutdown()
		<-serveErr
	}

	// Tail the live stream concurrently with the admissions below. Control
	// lines, the header, and the trailing metric lines all carry seq 0 —
	// only real events count.
	type streamResult struct {
		events    int
		applyReqs map[string]bool
		err       error
	}
	streamDone := make(chan streamResult, 1)
	go func() {
		res := streamResult{applyReqs: map[string]bool{}}
		resp, err := client.Get(base + "/v1/trace/stream")
		if err != nil {
			res.err = err
			streamDone <- res
			return
		}
		defer func() { _ = resp.Body.Close() }()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		for sc.Scan() {
			var line struct {
				Seq  uint64 `json:"seq"`
				Cat  string `json:"cat"`
				Name string `json:"name"`
				Args struct {
					Req string `json:"req"`
				} `json:"args"`
			}
			if json.Unmarshal(sc.Bytes(), &line) != nil || line.Seq == 0 {
				continue
			}
			res.events++
			if line.Cat == "serve" && line.Name == "serve.apply" && line.Args.Req != "" {
				res.applyReqs[line.Args.Req] = true
			}
		}
		res.err = sc.Err()
		streamDone <- res
	}()

	// Admissions whose request IDs the stream must echo back.
	submitBody, err := json.Marshal(SubmitRequest{Type: "single-node", Family: -1, BestEffort: true})
	if err != nil {
		stop()
		return err
	}
	var reqs []string
	for i := 0; i < 8; i++ {
		resp, err := client.Post(base+"/v1/submit", "application/json", bytes.NewReader(submitBody))
		if err != nil {
			stop()
			return err
		}
		var ack admitResponse
		err = json.NewDecoder(resp.Body).Decode(&ack)
		_ = resp.Body.Close()
		if err != nil {
			stop()
			return err
		}
		if resp.StatusCode != http.StatusAccepted || ack.Req == "" {
			stop()
			return fmt.Errorf("telemetry-smoke: submit %d: status %d, req %q", i, resp.StatusCode, ack.Req)
		}
		reqs = append(reqs, ack.Req)
		time.Sleep(3 * time.Millisecond)
	}

	// Wait for the last admission's span to close, then fetch it by ID.
	var span RequestSpan
	last := reqs[len(reqs)-1]
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := client.Get(base + "/debug/requests/" + last)
		if err != nil {
			stop()
			return err
		}
		code := resp.StatusCode
		err = json.NewDecoder(resp.Body).Decode(&span)
		_ = resp.Body.Close()
		if code == http.StatusOK && err == nil && span.Outcome == "applied" {
			break
		}
		if time.Now().After(deadline) {
			stop()
			return fmt.Errorf("telemetry-smoke: span %s never reached outcome=applied (status %d, outcome %q)", last, code, span.Outcome)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if span.Req != last || span.HandlerUS <= 0 || span.AdmitToDecisionUS <= 0 {
		stop()
		return fmt.Errorf("telemetry-smoke: span %s incomplete: %+v", last, span)
	}

	// The ring listing must cover every admission made above.
	resp, err := client.Get(base + "/debug/requests?limit=10")
	if err != nil {
		stop()
		return err
	}
	var listing requestsResponse
	err = json.NewDecoder(resp.Body).Decode(&listing)
	_ = resp.Body.Close()
	if err != nil {
		stop()
		return err
	}
	if len(listing.Requests) < len(reqs) {
		stop()
		return fmt.Errorf("telemetry-smoke: /debug/requests returned %d spans, want >= %d", len(listing.Requests), len(reqs))
	}

	// /metrics must expose the RED series and the operational gauges, after
	// the sim-plane snapshot.
	resp, err = client.Get(base + "/metrics")
	if err != nil {
		stop()
		return err
	}
	metrics, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		stop()
		return err
	}
	for _, want := range []string{
		`serve_http_requests_total{endpoint="submit"}`,
		`serve_http_request_us{endpoint="submit",quantile="0.99"}`,
		"serve_journal_flush_us",
		"serve_epoch_batch_size",
		"serve_pacer_lag_us",
		"journal_bytes",
		"applied_seq",
		"snapshot_age_seconds",
		"serve_trace_subscribers",
	} {
		if !strings.Contains(string(metrics), want) {
			stop()
			return fmt.Errorf("telemetry-smoke: /metrics missing %q", want)
		}
	}

	stop()
	sr := <-streamDone
	if sr.err != nil {
		return fmt.Errorf("telemetry-smoke: stream reader: %w", sr.err)
	}
	if sr.events < 16 {
		return fmt.Errorf("telemetry-smoke: stream delivered only %d events", sr.events)
	}
	for _, r := range reqs {
		if !sr.applyReqs[r] {
			return fmt.Errorf("telemetry-smoke: stream never carried serve.apply for request %s", r)
		}
	}
	fprintf(out, "telemetry-smoke: %d admissions correlated across API, /debug/requests, and %d streamed events\n",
		len(reqs), sr.events)
	fprintf(out, "telemetry-smoke: PASS\n")
	return nil
}
