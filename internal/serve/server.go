package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"quasar/internal/obs"
)

// Options configures a live serve daemon.
type Options struct {
	// Addr is the listen address (e.g. "127.0.0.1:7717"; ":0" picks a port).
	Addr string
	// Config is the deterministic world configuration, recorded in the
	// journal header.
	Config Config
	// JournalPath is where the admission journal is written (required).
	JournalPath string
	// TracePath, when set, streams the full deterministic trace there
	// (finalized by temp-file rename at shutdown).
	TracePath string
	// SnapshotPath, when set, receives warm-failover snapshots: every
	// SnapshotEverySecs of sim time, plus a final one at shutdown. Each
	// write is atomic (temp + rename).
	SnapshotPath      string
	SnapshotEverySecs float64
	// Warp maps wall clock to sim clock: the pacer holds sim time to
	// Warp seconds of sim per wall second. <= 0 free-runs the engine as
	// fast as it can seal epochs.
	Warp float64
	// HorizonSecs, when positive, ends the run at that sim time; 0 runs
	// until Shutdown.
	HorizonSecs float64
	// RequestLog is the capacity of the bounded request-span ring behind
	// GET /debug/requests (default 1024, minimum 16).
	RequestLog int
}

// Server is the live daemon: an HTTP admission front end over a journal,
// and a pacer goroutine that owns the engine. engineMu serializes the pacer
// against read-only query handlers (/metrics, /statusz, workload listings);
// admission handlers touch only the journal's own lock, so an admission
// never waits for an epoch to finish simulating.
//
// Lock order: engineMu before Journal.mu (the pacer seals the journal while
// holding the engine). Handlers take at most one path through that order.
type Server struct {
	opts Options
	cfg  Config

	engineMu sync.Mutex
	w        *world
	j        *Journal
	stream   *obs.StreamSink
	tee      *obs.TeeSink
	tel      *Telemetry

	ln      net.Listener
	httpSrv *http.Server

	stop     chan struct{}
	stopOnce sync.Once

	// Pacer state, engineMu-held.
	nextB      float64
	snapDue    float64
	appliedSeq int
	appliedN   int
	applyErr   error
	started    time.Time
	// applyStartNS is the telemetry-clock reading just before the current
	// entry's apply closure runs; same-boundary closures execute sequentially
	// under engineMu, so a plain field suffices.
	applyStartNS int64
}

// New builds the world, creates the journal, and binds the listener. The
// engine does not advance until Serve.
func New(opts Options) (*Server, error) {
	if opts.JournalPath == "" {
		return nil, fmt.Errorf("serve: JournalPath is required")
	}
	cfg := opts.Config.withDefaults()
	var stream *obs.StreamSink
	var extra []obs.Sink
	if opts.TracePath != "" {
		var err error
		stream, err = obs.NewStreamSink(opts.TracePath)
		if err != nil {
			return nil, err
		}
		extra = append(extra, stream)
	}
	// The tee feeds GET /v1/trace/stream; it observes the same sequenced
	// event stream as the trace file and publishes after every sealed epoch.
	tee := obs.NewTeeSink()
	extra = append(extra, tee)
	fail := func(err error) (*Server, error) {
		if stream != nil {
			stream.Discard()
		}
		return nil, err
	}
	w, err := buildWorld(cfg, extra...)
	if err != nil {
		return fail(err)
	}
	j, err := CreateJournal(opts.JournalPath, cfg, w.u.Counter()+1)
	if err != nil {
		return fail(err)
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return fail(err)
	}
	s := &Server{
		opts: opts, cfg: cfg, w: w, j: j, stream: stream, tee: tee, ln: ln,
		stop:  make(chan struct{}),
		nextB: cfg.EpochSecs, snapDue: opts.SnapshotEverySecs,
	}
	if opts.RequestLog <= 0 {
		opts.RequestLog = 1024
	}
	s.tel = newTelemetry(opts.RequestLog, &j.bytesOut, tee.Subscribers, tee.DroppedTotal)
	j.tel = s.tel
	w.onApplied = func(e *Entry, applyErr string) {
		s.tel.applied(e, telNow()-s.applyStartNS, applyErr)
	}
	s.httpSrv = &http.Server{Handler: s.routes(), ReadHeaderTimeout: 5 * time.Second}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown asks the daemon to stop; Serve then drains in-flight admissions,
// writes the journal end marker and final snapshot, and finalizes the trace.
// Safe to call from any goroutine, any number of times.
func (s *Server) Shutdown() {
	s.stopOnce.Do(func() { close(s.stop) })
}

// Serve runs the daemon until Shutdown, the horizon, or a fatal error: the
// HTTP server on its own goroutine, the pacer on the calling one. It always
// finalizes — even on a pacer error, the trace and journal land on disk.
func (s *Server) Serve() error {
	s.started = time.Now()
	httpErr := make(chan error, 1)
	go func() { httpErr <- s.httpSrv.Serve(s.ln) }()
	paceErr := s.pace()
	// Close the stop channel on every exit path (horizon end, pacer error),
	// not just explicit Shutdown: long-lived handlers — /v1/trace/stream —
	// select on it, and finalize's HTTP drain waits for them.
	s.Shutdown()
	finErr := s.finalize()
	herr := <-httpErr
	if errors.Is(herr, http.ErrServerClosed) {
		herr = nil
	}
	if paceErr != nil {
		return paceErr
	}
	if finErr != nil {
		return finErr
	}
	return herr
}

// pace is the epoch loop: advance one boundary, then sleep until the wall
// clock catches up with the warp target. Sleeps are chopped to 50ms so
// Shutdown is always prompt; in free-run mode an idle epoch (nothing
// admitted) yields briefly instead of spinning the lock.
func (s *Server) pace() error {
	for {
		select {
		case <-s.stop:
			return nil
		default:
		}
		boundary, batch, err := s.advance()
		if err != nil {
			return err
		}
		if s.opts.HorizonSecs > 0 && boundary+1e-9 >= s.opts.HorizonSecs {
			return nil
		}
		if s.opts.Warp <= 0 {
			if batch == 0 {
				time.Sleep(200 * time.Microsecond)
			}
			continue
		}
		target := s.started.Add(time.Duration(boundary / s.opts.Warp * float64(time.Second)))
		// A positive gap here means the epoch finished after its wall-clock
		// target — the pacer is running behind the warp.
		s.tel.pacerLag(time.Since(target))
		for {
			d := time.Until(target)
			if d <= 0 {
				break
			}
			if d > 50*time.Millisecond {
				d = 50 * time.Millisecond
			}
			select {
			case <-s.stop:
				return nil
			case <-time.After(d):
			}
		}
	}
}

// advance runs exactly one epoch under the engine lock and moves the next
// boundary forward.
func (s *Server) advance() (boundary float64, batch int, err error) {
	s.engineMu.Lock()
	defer s.engineMu.Unlock()
	boundary = s.nextB
	batch, err = s.epochStep(boundary)
	if err != nil {
		return boundary, batch, err
	}
	s.nextB += s.cfg.EpochSecs
	return boundary, batch, nil
}

// epochStep is the deterministic heart of serve mode (engineMu held): seal
// the journal at boundary B — everything admitted since the last boundary,
// now flushed for the standby — schedule the sealed batch at B in sequence
// order, run the engine to B, then handle the snapshot cadence. Replay
// performs the identical schedule/run sequence per boundary, which is the
// whole byte-identity argument.
func (s *Server) epochStep(boundary float64) (int, error) {
	batch, flushNS, err := s.j.seal(boundary + s.cfg.EpochSecs)
	if err != nil {
		return 0, err
	}
	s.tel.sealed(batch, telNow(), flushNS)
	for i := range batch {
		e := batch[i]
		s.w.rt.Eng.Schedule(boundary, func() {
			s.applyStartNS = telNow()
			if err := s.w.apply(&e); err != nil && s.applyErr == nil {
				s.applyErr = err
			}
		})
	}
	s.w.rt.Eng.Run(boundary)
	s.tee.Publish()
	if s.applyErr != nil {
		return len(batch), s.applyErr
	}
	if n := len(batch); n > 0 {
		s.appliedSeq = batch[n-1].Seq
		s.appliedN += n
	}
	if s.opts.SnapshotPath != "" && s.opts.SnapshotEverySecs > 0 && boundary+1e-9 >= s.snapDue {
		if err := s.writeSnapshot(); err != nil {
			return len(batch), err
		}
		s.snapDue += s.opts.SnapshotEverySecs
		s.tel.snapshotLanded()
	}
	return len(batch), nil
}

// writeSnapshot captures and atomically lands the failover snapshot
// (engineMu held).
func (s *Server) writeSnapshot() error {
	data, err := marshalSnapshot(s.w, s.appliedSeq)
	if err != nil {
		return err
	}
	return writeSnapshotFile(s.opts.SnapshotPath, data)
}

// finalize is the graceful-shutdown path: stop accepting HTTP (draining
// in-flight handlers), run one last epoch so admissions that raced with
// shutdown still apply, write the journal end marker, land the final warm
// snapshot, and close the tracer — the StreamSink's temp-file rename makes
// the trace readable even though the daemon was killed mid-run.
func (s *Server) finalize() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	herr := s.httpSrv.Shutdown(ctx)

	s.engineMu.Lock()
	defer s.engineMu.Unlock()
	boundary := s.nextB
	_, stepErr := s.epochStep(boundary)
	endErr := s.j.end(boundary)
	var snapErr error
	if s.opts.SnapshotPath != "" {
		snapErr = s.writeSnapshot()
		if snapErr == nil {
			s.tel.snapshotLanded()
		}
	}
	s.w.rt.Stop()
	cerr := s.w.tracer.Close()
	for _, err := range []error{stepErr, endErr, snapErr, cerr, herr} {
		if err != nil {
			return err
		}
	}
	return nil
}

// EndBoundary reports the final epoch boundary after Serve returns — the
// sim time the journal's end marker carries.
func (s *Server) EndBoundary() float64 {
	s.engineMu.Lock()
	defer s.engineMu.Unlock()
	return s.nextB
}

// Applied reports how many journal entries have been applied so far.
func (s *Server) Applied() int {
	s.engineMu.Lock()
	defer s.engineMu.Unlock()
	return s.appliedN
}
