package serve

import (
	"encoding/json"
	"os"
	"testing"
)

// TestServeBenchQuick runs the whole benchmark harness at the CI smoke
// scale: both phases must complete, the standby trace must match, and the
// quick profile's gates must pass (the throughput floor is full-profile
// only — CI machines are not the baseline host).
func TestServeBenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a live daemon for a wall-clock second")
	}
	res, err := ServeBench(BenchConfig{Quick: true, InProcess: true, Clients: 2, WallSecs: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	if !res.TraceMatch {
		t.Fatal("failover standby trace diverged")
	}
	if res.Requests == 0 || res.DecisionsPerSec <= 0 {
		t.Fatalf("empty rate phase: %+v", res)
	}
}

// TestServeBaselineFile gates the committed BENCH_serve.json: it must parse,
// pass its own Check (including the 10k req/s floor for a full profile), and
// carry the admission percentiles the acceptance bar names.
func TestServeBaselineFile(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_serve.json")
	if err != nil {
		t.Fatalf("BENCH_serve.json missing (regenerate with quasar-load -bench -inprocess -out BENCH_serve.json): %v", err)
	}
	var base BenchResult
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if err := base.Check(); err != nil {
		t.Errorf("committed baseline fails its own gate: %v", err)
	}
	if base.Quick {
		t.Error("committed baseline is a quick profile; commit a full run")
	}
	if base.Transport == "" {
		t.Error("committed baseline does not record its transport")
	}
	if base.AdmitP99US <= 0 || base.DecisionsPerSec <= 0 {
		t.Errorf("committed baseline missing admission p99 or decisions/sec: %+v", base)
	}
	if base.ServerAdmitP50US <= 0 || base.ServerAdmitP99US <= 0 {
		t.Errorf("committed baseline missing server-side admission percentiles: %+v", base)
	}
}
