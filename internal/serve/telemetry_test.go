package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"quasar/internal/obs"
)

// TestLiveTraceStreamMatchesFile is the live-streaming byte-identity
// contract: a subscriber attached before the daemon starts pacing (so the tee
// buffers the world-build prologue) receives, across header and batches, the
// exact bytes the StreamSink writes to the trace file — telemetry and live
// subscription never perturb the deterministic plane.
func TestLiveTraceStreamMatchesFile(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "live.jsonl")
	s, err := New(Options{
		Addr:        "127.0.0.1:0",
		Config:      Config{Servers: 20, Seed: 7},
		JournalPath: filepath.Join(dir, "run.journal"),
		TracePath:   tracePath,
		Warp:        400,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Subscribe before Serve: the tee buffers everything until the first
	// Publish, so this subscriber's stream starts at the very first event.
	_, header, ch := s.tee.Subscribe(4096)
	var streamed bytes.Buffer
	streamed.Write(header)
	collected := make(chan struct{})
	var dropped int64
	go func() {
		defer close(collected)
		for batch := range ch {
			streamed.Write(batch.Data)
			dropped = batch.Dropped
		}
	}()

	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	driveScriptedMix(t, "http://"+s.Addr())
	time.Sleep(60 * time.Millisecond)
	stopServer(t, s, done)
	<-collected

	if dropped != 0 {
		t.Fatalf("deep-buffered subscriber dropped %d events", dropped)
	}
	want, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, streamed.Bytes()) {
		t.Fatalf("streamed trace diverged from file (%d vs %d bytes)", len(streamed.Bytes()), len(want))
	}
	if !bytes.Contains(want, []byte(`"req":"r-`)) {
		t.Fatal("trace carries no request IDs on serve.apply events")
	}
}

// TestRequestSpansEndToEnd pins the request-span surface: the admission
// response's request ID resolves on /debug/requests/{id} with a closed span
// whose phase timings are populated, the ring listing covers the admissions,
// and an unknown ID is a 404.
func TestRequestSpansEndToEnd(t *testing.T) {
	dir := t.TempDir()
	s, done := startServer(t, Options{
		Config:      Config{Servers: 10, Seed: 3},
		JournalPath: filepath.Join(dir, "run.journal"),
		Warp:        400,
	})
	base := "http://" + s.Addr()

	var reqs []string
	for i := 0; i < 3; i++ {
		m := postJSON(t, base, "/v1/submit", SubmitRequest{Type: "single-node", Family: -1, BestEffort: true})
		req, _ := m["req"].(string)
		if req == "" {
			t.Fatalf("submit %d returned no request ID: %v", i, m)
		}
		reqs = append(reqs, req)
		time.Sleep(2 * time.Millisecond)
	}

	// Poll until the last span closes at its epoch boundary.
	var span RequestSpan
	last := reqs[len(reqs)-1]
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/debug/requests/" + last)
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		err = json.NewDecoder(resp.Body).Decode(&span)
		_ = resp.Body.Close()
		if code == http.StatusOK && err == nil && span.Outcome == "applied" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("span %s never closed (status %d, outcome %q)", last, code, span.Outcome)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if span.Req != last || span.Kind != KindSubmit {
		t.Fatalf("span identity wrong: %+v", span)
	}
	if span.HandlerUS <= 0 || span.AdmitToDecisionUS <= 0 || span.ApplyAt <= 0 {
		t.Fatalf("span timings missing: %+v", span)
	}
	if span.LockWaitUS < 0 || span.LockHoldUS < 0 || span.SealWaitUS < 0 {
		t.Fatalf("span lock timings negative: %+v", span)
	}
	if span.Error != "" {
		t.Fatalf("span carries unexpected apply error %q", span.Error)
	}

	resp, err := http.Get(base + "/debug/requests?limit=10")
	if err != nil {
		t.Fatal(err)
	}
	var listing requestsResponse
	err = json.NewDecoder(resp.Body).Decode(&listing)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	byReq := map[string]bool{}
	for _, sp := range listing.Requests {
		byReq[sp.Req] = true
	}
	for _, r := range reqs {
		if !byReq[r] {
			t.Fatalf("/debug/requests listing missing %s (got %d spans)", r, len(listing.Requests))
		}
	}

	resp, err = http.Get(base + "/debug/requests/r-999999")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown request ID got %d, want 404", resp.StatusCode)
	}

	// The RED plane must have counted the submits and rendered quantiles.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`serve_http_requests_total{endpoint="submit"}`,
		`serve_http_request_us{endpoint="submit",quantile="0.50"}`,
		"serve_journal_flush_us",
		"journal_bytes",
		"applied_seq",
		"serve_trace_subscribers",
	} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
	stopServer(t, s, done)
}

// TestFlightRecorderConcurrentWithAdmissions is the race lane for the flight
// recorder: dump /debug/flightrecorder (and the request ring) from several
// goroutines while admissions stream in and the pacer free-runs, and pin the
// dump's NDJSON Content-Type.
func TestFlightRecorderConcurrentWithAdmissions(t *testing.T) {
	dir := t.TempDir()
	s, done := startServer(t, Options{
		Config:      Config{Servers: 12, Seed: 5, FlightRecorder: 256},
		JournalPath: filepath.Join(dir, "run.journal"),
	})
	base := "http://" + s.Addr()

	postJSON(t, base, "/v1/submit", SubmitRequest{Type: "single-node", Family: -1, BestEffort: true})
	resp, err := http.Get(base + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	ct := resp.Header.Get("Content-Type")
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if ct != ndjsonContentType {
		t.Fatalf("/debug/flightrecorder Content-Type = %q, want %q", ct, ndjsonContentType)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	deadline := time.Now().Add(120 * time.Millisecond)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			paths := []string{"/debug/flightrecorder", "/debug/requests?limit=20", "/metrics"}
			for n := 0; time.Now().Before(deadline); n++ {
				resp, err := http.Get(base + paths[n%len(paths)])
				if err != nil {
					errc <- err
					return
				}
				if strings.HasPrefix(paths[n%len(paths)], "/debug/flightrecorder") {
					if _, err := obs.ReadJSONL(resp.Body); err != nil {
						_ = resp.Body.Close()
						errc <- fmt.Errorf("flight recorder dump unreadable mid-run: %w", err)
						return
					}
				} else {
					_, _ = io.Copy(io.Discard, resp.Body)
				}
				_ = resp.Body.Close()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		body, _ := json.Marshal(SubmitRequest{Type: "single-node", Family: -1, BestEffort: true})
		for time.Now().Before(deadline) {
			resp, err := http.Post(base+"/v1/submit", "application/json", bytes.NewReader(body))
			if err != nil {
				errc <- err
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	stopServer(t, s, done)
}

// TestReplayJournalWithoutReq is the backward-compatibility contract for
// pre-telemetry journals: entries without a req field replay cleanly, and the
// resulting trace simply omits the req arg from serve.apply instants.
func TestReplayJournalWithoutReq(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "run.journal")
	s, done := startServer(t, Options{
		Config:      Config{Servers: 10, Seed: 11},
		JournalPath: journal, Warp: 400,
	})
	base := "http://" + s.Addr()
	for i := 0; i < 3; i++ {
		postJSON(t, base, "/v1/submit", SubmitRequest{Type: "single-node", Family: -1, BestEffort: true})
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(40 * time.Millisecond)
	stopServer(t, s, done)

	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	stripped := regexp.MustCompile(`,"req":"r-[0-9]+"`).ReplaceAll(data, nil)
	if bytes.Equal(stripped, data) {
		t.Fatal("journal carried no req fields to strip")
	}
	old := filepath.Join(dir, "old.journal")
	if err := os.WriteFile(old, stripped, 0o644); err != nil {
		t.Fatal(err)
	}

	tracePath := filepath.Join(dir, "old.jsonl")
	sink, err := obs.NewStreamSink(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(old, ReplayOptions{Sinks: []obs.Sink{sink}})
	if err != nil {
		t.Fatalf("replaying req-less journal: %v", err)
	}
	if res.Applied != 3 {
		t.Fatalf("replay applied %d entries, want 3", res.Applied)
	}
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(trace, []byte(`"serve.apply"`)) {
		t.Fatal("replay trace has no serve.apply events")
	}
	if bytes.Contains(trace, []byte(`"req"`)) {
		t.Fatal("req-less journal replayed with req args in the trace")
	}
}

// TestStreamEndpointDeliversAndStops drives GET /v1/trace/stream over real
// HTTP: the response is NDJSON, begins with the trace header, carries
// serve.apply events whose req args match the admission responses, and the
// stream ends when the daemon shuts down.
func TestStreamEndpointDeliversAndStops(t *testing.T) {
	dir := t.TempDir()
	s, done := startServer(t, Options{
		Config:      Config{Servers: 10, Seed: 13},
		JournalPath: filepath.Join(dir, "run.journal"),
		Warp:        400,
	})
	base := "http://" + s.Addr()

	resp, err := http.Get(base + "/v1/trace/stream")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ndjsonContentType {
		t.Fatalf("stream Content-Type = %q, want %q", ct, ndjsonContentType)
	}
	type result struct {
		firstLine string
		applyReqs map[string]bool
		err       error
	}
	got := make(chan result, 1)
	go func() {
		defer func() { _ = resp.Body.Close() }()
		res := result{applyReqs: map[string]bool{}}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		for sc.Scan() {
			line := sc.Text()
			if res.firstLine == "" {
				res.firstLine = line
			}
			var ev struct {
				Seq  uint64 `json:"seq"`
				Name string `json:"name"`
				Args struct {
					Req string `json:"req"`
				} `json:"args"`
			}
			if json.Unmarshal([]byte(line), &ev) != nil || ev.Seq == 0 {
				continue
			}
			if ev.Name == "serve.apply" && ev.Args.Req != "" {
				res.applyReqs[ev.Args.Req] = true
			}
		}
		res.err = sc.Err()
		got <- res
	}()

	var reqs []string
	for i := 0; i < 3; i++ {
		m := postJSON(t, base, "/v1/submit", SubmitRequest{Type: "single-node", Family: -1, BestEffort: true})
		req, _ := m["req"].(string)
		reqs = append(reqs, req)
		time.Sleep(3 * time.Millisecond)
	}
	time.Sleep(40 * time.Millisecond)
	stopServer(t, s, done)

	res := <-got
	if res.err != nil {
		t.Fatalf("stream reader: %v", res.err)
	}
	if !strings.Contains(res.firstLine, `"trace"`) {
		t.Fatalf("stream did not begin with the trace header: %q", res.firstLine)
	}
	for _, r := range reqs {
		if !res.applyReqs[r] {
			t.Fatalf("stream never carried serve.apply for %s (saw %v)", r, res.applyReqs)
		}
	}
}
