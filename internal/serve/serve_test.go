package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"quasar/internal/obs"
	"quasar/internal/par"
)

// startServer boots a daemon on a free port and returns it with the channel
// Serve's result lands on.
func startServer(t *testing.T, opts Options) (*Server, chan error) {
	t.Helper()
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	return s, done
}

// stopServer shuts the daemon down and fails the test on a serve error.
func stopServer(t *testing.T, s *Server, done chan error) {
	t.Helper()
	s.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

func postJSON(t *testing.T, base, path string, body any) map[string]any {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: %s: %s", path, resp.Status, msg)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// driveScriptedMix submits the standard scripted admission mix against a live
// daemon and returns the promised service ID.
func driveScriptedMix(t *testing.T, base string) string {
	t.Helper()
	for i := 0; i < 2; i++ {
		postJSON(t, base, "/v1/submit", SubmitRequest{Type: "single-node", Family: -1, BestEffort: true})
		time.Sleep(2 * time.Millisecond)
	}
	m := postJSON(t, base, "/v1/submit", SubmitRequest{Type: "webserver", Family: -1, QPS: 8000, LatencyUS: 900, MaxNodes: 3})
	svcID, _ := m["workload"].(string)
	if svcID == "" {
		t.Fatal("submit returned no workload ID")
	}
	time.Sleep(3 * time.Millisecond)
	postJSON(t, base, "/v1/submit", SubmitRequest{Type: "hadoop", Family: 1, MaxNodes: 3, TargetSlack: 1.3})
	time.Sleep(30 * time.Millisecond) // let the service admit before retargeting
	postJSON(t, base, "/v1/target/"+svcID, TargetUpdate{QPS: 9000})
	return svcID
}

// TestLiveVsReplayAcrossWorkers is the serve determinism contract: a live run
// with wall-clock arrival jitter, replayed from its journal at several worker
// counts, must reproduce the trace byte for byte every time.
func TestLiveVsReplayAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "run.journal")
	traceA := filepath.Join(dir, "live.jsonl")
	s, done := startServer(t, Options{
		Config:      Config{Servers: 20, Seed: 7},
		JournalPath: journal, TracePath: traceA, Warp: 400,
	})
	driveScriptedMix(t, "http://"+s.Addr())
	time.Sleep(60 * time.Millisecond) // a few quiet epochs after the last admission
	stopServer(t, s, done)

	want, err := os.ReadFile(traceA)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		par.SetDefaultWorkers(workers)
		tracePath := filepath.Join(dir, fmt.Sprintf("replay-%d.jsonl", workers))
		sink, err := obs.NewStreamSink(tracePath)
		if err != nil {
			par.SetDefaultWorkers(0)
			t.Fatal(err)
		}
		res, err := Replay(journal, ReplayOptions{Sinks: []obs.Sink{sink}})
		par.SetDefaultWorkers(0)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Truncated {
			t.Fatalf("workers=%d: graceful shutdown left a truncated journal", workers)
		}
		got, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("workers=%d: replay trace diverged from live (%d vs %d bytes)", workers, len(want), len(got))
		}
	}
}

// TestGracefulShutdownArtifacts checks the SIGTERM path (Shutdown is exactly
// what the signal handler calls): the journal carries an end marker, the
// streamed trace is finalized and parseable, and the final warm snapshot
// restores and verifies against an offline replay.
func TestGracefulShutdownArtifacts(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "run.journal")
	trace := filepath.Join(dir, "run.jsonl")
	snapshot := filepath.Join(dir, "run.snapshot.json")
	s, done := startServer(t, Options{
		Config:      Config{Servers: 20, Seed: 9},
		JournalPath: journal, TracePath: trace,
		SnapshotPath: snapshot, SnapshotEverySecs: 1e9, // only the final shutdown snapshot
		Warp: 400,
	})
	base := "http://" + s.Addr()
	postJSON(t, base, "/v1/submit", SubmitRequest{Type: "single-node", Family: -1, BestEffort: true})
	postJSON(t, base, "/v1/submit", SubmitRequest{Type: "memcached", Family: -1, QPS: 6000, LatencyUS: 500, MaxNodes: 2})
	time.Sleep(40 * time.Millisecond)
	stopServer(t, s, done)

	f, err := os.Open(trace)
	if err != nil {
		t.Fatalf("finalized trace missing: %v", err)
	}
	events, err := obs.ReadJSONL(f)
	_ = f.Close()
	if err != nil {
		t.Fatalf("finalized trace unreadable: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("finalized trace is empty")
	}

	snap, err := LoadSnapshot(snapshot)
	if err != nil {
		t.Fatalf("final snapshot unrestorable: %v", err)
	}
	res, err := Replay(journal, ReplayOptions{Snapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("graceful shutdown left a journal without an end marker")
	}
	if res.Applied != 2 {
		t.Fatalf("replay applied %d entries, want 2", res.Applied)
	}
	if !res.SnapshotVerified {
		t.Fatalf("final snapshot at t=%g never verified (replay ended at t=%g)", snap.SimTime, res.EndAt)
	}
}

// TestMetricsExporterConcurrentWithPacer hammers every read endpoint from
// several goroutines while the pacer free-runs and admissions stream in —
// the race-lane test for exporter-vs-engine synchronization, plus the
// Prometheus Content-Type contract.
func TestMetricsExporterConcurrentWithPacer(t *testing.T) {
	dir := t.TempDir()
	s, done := startServer(t, Options{
		Config:      Config{Servers: 16, Seed: 3},
		JournalPath: filepath.Join(dir, "run.journal"),
	})
	base := "http://" + s.Addr()

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	ct := resp.Header.Get("Content-Type")
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if ct != promContentType {
		t.Fatalf("/metrics Content-Type = %q, want %q", ct, promContentType)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	deadline := time.Now().Add(120 * time.Millisecond)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			paths := []string{"/metrics", "/statusz", "/healthz", "/v1/workloads?limit=5"}
			for n := 0; time.Now().Before(deadline); n++ {
				resp, err := http.Get(base + paths[n%len(paths)])
				if err != nil {
					errc <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		body, _ := json.Marshal(SubmitRequest{Type: "single-node", Family: -1, BestEffort: true})
		for time.Now().Before(deadline) {
			resp, err := http.Post(base+"/v1/submit", "application/json", bytes.NewReader(body))
			if err != nil {
				errc <- err
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	stopServer(t, s, done)
}

// TestSubmitValidation pins the 400-level contract of the admission API.
func TestSubmitValidation(t *testing.T) {
	dir := t.TempDir()
	s, done := startServer(t, Options{
		Config:      Config{Servers: 8, Seed: 5},
		JournalPath: filepath.Join(dir, "run.journal"),
	})
	defer stopServer(t, s, done)
	base := "http://" + s.Addr()

	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return resp.StatusCode
	}
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"unknown type", "/v1/submit", `{"type":"mapreduce"}`, 400},
		{"unknown field", "/v1/submit", `{"type":"webserver","qqps":100}`, 400},
		{"negative qps", "/v1/submit", `{"type":"webserver","qps":-5}`, 400},
		{"malformed json", "/v1/submit", `{"type":`, 400},
		{"bad family", "/v1/submit", `{"type":"hadoop","family":99}`, 400},
		{"empty target", "/v1/target/x-0001", `{}`, 400},
		{"negative target", "/v1/target/x-0001", `{"qps":-1}`, 400},
		{"good submit", "/v1/submit", `{"type":"single-node","best_effort":true}`, 202},
	}
	for _, tc := range cases {
		if got := post(tc.path, tc.body); got != tc.want {
			t.Errorf("%s: POST %s got %d, want %d", tc.name, tc.path, got, tc.want)
		}
	}
	resp, err := http.Get(base + "/v1/workloads/nope-9999")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown workload got %d, want 404", resp.StatusCode)
	}
}

// TestFlightRecorderDump checks /debug/flightrecorder returns a parseable
// NDJSON window of recent events.
func TestFlightRecorderDump(t *testing.T) {
	dir := t.TempDir()
	s, done := startServer(t, Options{
		Config:      Config{Servers: 8, Seed: 5, FlightRecorder: 128},
		JournalPath: filepath.Join(dir, "run.journal"),
	})
	base := "http://" + s.Addr()
	postJSON(t, base, "/v1/submit", SubmitRequest{Type: "single-node", Family: -1, BestEffort: true})
	time.Sleep(20 * time.Millisecond)
	resp, err := http.Get(base + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadJSONL(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatalf("flight recorder dump unreadable: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("flight recorder dump is empty")
	}
	if len(events) > 128 {
		t.Fatalf("flight recorder returned %d events, capacity is 128", len(events))
	}
	stopServer(t, s, done)
}
