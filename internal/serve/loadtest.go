package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"quasar/internal/obs"
)

// requester abstracts the client transport: real loopback HTTP (what a
// deployment sees) or direct in-process handler dispatch (isolates the
// admission path from kernel TCP costs).
type requester interface {
	do(method, path string, body []byte) (int, error)
}

// httpRequester drives the daemon over TCP loopback with keep-alive
// connections.
type httpRequester struct {
	base   string
	client *http.Client
}

func newHTTPRequester(addr string) *httpRequester {
	tr := &http.Transport{MaxIdleConnsPerHost: 64}
	return &httpRequester{base: "http://" + addr, client: &http.Client{Transport: tr, Timeout: 10 * time.Second}}
}

func (h *httpRequester) do(method, path string, body []byte) (int, error) {
	req, err := http.NewRequest(method, h.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp.StatusCode, nil
}

// inprocRequester dispatches straight into the mux.
type inprocRequester struct {
	h http.Handler
}

func (p *inprocRequester) do(method, path string, body []byte) (int, error) {
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	p.h.ServeHTTP(rec, req)
	return rec.Code, nil
}

// DriveStats aggregates a closed-loop client run.
type DriveStats struct {
	Requests   int
	Submits    int
	Errors     int
	WallSecs   float64
	AdmitP50US float64
	AdmitP99US float64
}

// drive runs the closed-loop admission mix with `clients` goroutines for
// `wall`: each iteration submits a best-effort workload, evicts the previous
// one (keeping the resident task population bounded at ~clients), and
// sprinkles in listing and health probes. Per-submit wall latency feeds the
// admission percentiles.
func drive(r requester, clients int, wall time.Duration) (*DriveStats, error) {
	submitBody, err := json.Marshal(SubmitRequest{Type: "single-node", Family: -1, BestEffort: true})
	if err != nil {
		return nil, err
	}
	type clientStats struct {
		requests, submits, errors int
		admitUS                   []float64
	}
	start := time.Now()
	results := make([]clientStats, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(cs *clientStats) {
			defer wg.Done()
			prev := ""
			for i := 0; time.Since(start) < wall; i++ {
				t0 := time.Now()
				code, err := r.do("POST", "/v1/submit", submitBody)
				lat := time.Since(t0)
				cs.requests++
				if err != nil || code != http.StatusAccepted {
					cs.errors++
					continue
				}
				cs.submits++
				cs.admitUS = append(cs.admitUS, float64(lat.Microseconds()))
				// The promised ID is deterministic, but racing clients
				// interleave ordinals; evicting our previous submission is
				// enough to keep the world bounded, so skip response
				// parsing on the hot loop and evict by round-robin below.
				if prev != "" {
					code, err := r.do("POST", "/v1/evict/"+prev, nil)
					cs.requests++
					if err != nil || code != http.StatusAccepted {
						cs.errors++
					}
				}
				prev = "" // reset; refreshed by the listing below
				if i%16 == 0 {
					code, err := r.do("GET", "/v1/workloads?limit=1", nil)
					cs.requests++
					if err != nil || code != http.StatusOK {
						cs.errors++
					}
				}
				if i%64 == 0 {
					code, err := r.do("GET", "/healthz", nil)
					cs.requests++
					if err != nil || (code != http.StatusOK && code != http.StatusServiceUnavailable) {
						cs.errors++
					}
				}
			}
		}(&results[c])
	}
	wg.Wait()
	st := &DriveStats{WallSecs: time.Since(start).Seconds()}
	var lats []float64
	for i := range results {
		st.Requests += results[i].requests
		st.Submits += results[i].submits
		st.Errors += results[i].errors
		lats = append(lats, results[i].admitUS...)
	}
	st.AdmitP50US = percentile(lats, 50)
	st.AdmitP99US = percentile(lats, 99)
	return st, nil
}

// percentile returns the q-th percentile of vals (0 for an empty slice).
func percentile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	idx := int(q / 100 * float64(len(vals)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}

// Drive runs the closed-loop client mix against an already-running daemon
// at addr — quasar-load's client mode.
func Drive(addr string, clients int, wall time.Duration) (*DriveStats, error) {
	return drive(newHTTPRequester(addr), clients, wall)
}

// BenchConfig sizes the serve benchmark.
type BenchConfig struct {
	// Quick is the CI smoke profile: shorter phases, and the throughput
	// gate is waived (CI machines are not the baseline host).
	Quick bool
	// InProcess dispatches requests directly into the handler instead of
	// over loopback TCP.
	InProcess bool
	Clients   int     // closed-loop client goroutines (default 8, quick 4)
	WallSecs  float64 // rate-phase duration (default 3, quick 1)
	Servers   int     // world size (default 20)
	Seed      int64   // world seed (default 11)
}

func (c BenchConfig) withDefaults() BenchConfig {
	if c.Clients <= 0 {
		c.Clients = 8
		if c.Quick {
			c.Clients = 4
		}
	}
	if c.WallSecs <= 0 {
		c.WallSecs = 3
		if c.Quick {
			c.WallSecs = 1
		}
	}
	if c.Servers <= 0 {
		c.Servers = 20
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	return c
}

// BenchResult is the committed BENCH_serve.json shape.
type BenchResult struct {
	Transport  string  `json:"transport"`
	Quick      bool    `json:"quick"`
	Clients    int     `json:"clients"`
	WallSecs   float64 `json:"wall_secs"`
	Requests   int     `json:"requests"`
	ReqsPerSec float64 `json:"reqs_per_sec"`
	AdmitP50US float64 `json:"admit_p50_us"`
	AdmitP99US float64 `json:"admit_p99_us"`
	// ServerAdmitP50US/P99US are the server-side handler-latency percentiles
	// for the submit endpoint, from the daemon's own RED histograms. They
	// measure inside the client-observed round trip, so server ≤ client is
	// the cross-check Check gates on.
	ServerAdmitP50US float64 `json:"server_admit_p50_us"`
	ServerAdmitP99US float64 `json:"server_admit_p99_us"`
	DecisionsPerSec  float64 `json:"decisions_per_sec"`
	FailoverGapMS    float64 `json:"failover_gap_ms"`
	TraceMatch       bool    `json:"trace_match"`
	CPUs             int     `json:"cpus"`
	GOMAXPROCS       int     `json:"gomaxprocs"`
}

// ServeBench runs the two benchmark phases: a closed-loop rate phase against
// a free-running daemon (admission latency, request throughput, applied
// decisions per second), then a warm-failover phase (a standby tails the
// journal; the gap is how far the standby finishes behind the primary, and
// the traces must byte-match).
func ServeBench(cfg BenchConfig) (*BenchResult, error) {
	cfg = cfg.withDefaults()
	dir, err := os.MkdirTemp("", "quasar-serve-bench-")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	res := &BenchResult{
		Transport: "http-loopback", Quick: cfg.Quick,
		Clients: cfg.Clients, WallSecs: cfg.WallSecs,
		CPUs: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if cfg.InProcess {
		res.Transport = "in-process"
	}

	// Phase 1: admission rate against a free-running engine.
	srv, err := New(Options{
		Addr:        "127.0.0.1:0",
		Config:      Config{Servers: cfg.Servers, Seed: cfg.Seed},
		JournalPath: filepath.Join(dir, "rate.journal"),
	})
	if err != nil {
		return nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	var r requester
	if cfg.InProcess {
		r = &inprocRequester{h: srv.httpSrv.Handler}
	} else {
		r = newHTTPRequester(srv.Addr())
	}
	stats, err := drive(r, cfg.Clients, time.Duration(cfg.WallSecs*float64(time.Second)))
	applied := srv.Applied()
	srv.Shutdown()
	if serr := <-serveErr; err == nil {
		err = serr
	}
	if err != nil {
		return nil, err
	}
	if stats.Errors > 0 {
		return nil, fmt.Errorf("serve: bench rate phase saw %d request errors", stats.Errors)
	}
	res.Requests = stats.Requests
	res.ReqsPerSec = float64(stats.Requests) / stats.WallSecs
	res.AdmitP50US = stats.AdmitP50US
	res.AdmitP99US = stats.AdmitP99US
	sp := srv.tel.endpointPercentiles("submit", 50, 99)
	res.ServerAdmitP50US = sp[0]
	res.ServerAdmitP99US = sp[1]
	res.DecisionsPerSec = float64(applied) / stats.WallSecs

	// Phase 2: warm failover gap and trace identity.
	gap, match, err := failoverPhase(dir, cfg)
	if err != nil {
		return nil, err
	}
	res.FailoverGapMS = gap
	res.TraceMatch = match
	return res, nil
}

// failoverPhase runs a short paced daemon with a tailing standby and
// measures how far behind the standby lands.
func failoverPhase(dir string, cfg BenchConfig) (gapMS float64, match bool, err error) {
	journal := filepath.Join(dir, "failover.journal")
	traceA := filepath.Join(dir, "failover.primary.jsonl")
	traceB := filepath.Join(dir, "failover.standby.jsonl")
	primary, err := New(Options{
		Addr:        "127.0.0.1:0",
		Config:      Config{Servers: cfg.Servers, Seed: cfg.Seed + 1},
		JournalPath: journal, TracePath: traceA,
		Warp: 300,
	})
	if err != nil {
		return 0, false, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- primary.Serve() }()
	standbySink, err := obs.NewStreamSink(traceB)
	if err != nil {
		primary.Shutdown()
		<-serveErr
		return 0, false, err
	}
	type standbyResult struct {
		at  time.Time
		err error
	}
	standbyDone := make(chan standbyResult, 1)
	go func() {
		_, err := Replay(journal, ReplayOptions{
			Sinks: []obs.Sink{standbySink}, Follow: true,
			PollInterval: time.Millisecond, WaitTimeout: 60 * time.Second,
		})
		standbyDone <- standbyResult{at: time.Now(), err: err}
	}()
	r := newHTTPRequester(primary.Addr())
	body, err := json.Marshal(SubmitRequest{Type: "single-node", Family: -1, BestEffort: true})
	if err == nil {
		for i := 0; i < 40 && err == nil; i++ {
			_, err = r.do("POST", "/v1/submit", body)
			time.Sleep(2 * time.Millisecond)
		}
	}
	primary.Shutdown()
	primaryEnd := time.Now()
	if serr := <-serveErr; err == nil {
		err = serr
	}
	sr := <-standbyDone
	if err == nil {
		err = sr.err
	}
	if err != nil {
		return 0, false, err
	}
	gap := sr.at.Sub(primaryEnd)
	if gap < 0 {
		gap = 0
	}
	a, err := os.ReadFile(traceA)
	if err != nil {
		return 0, false, err
	}
	b, err := os.ReadFile(traceB)
	if err != nil {
		return 0, false, err
	}
	return float64(gap) / float64(time.Millisecond), bytes.Equal(a, b), nil
}

// Check gates the committed baseline: the failover trace identity always
// holds; the throughput and latency gates only bind for the full profile on
// the baseline host (quick CI runs record but do not gate rate).
func (r *BenchResult) Check() error {
	var errs []string
	if !r.TraceMatch {
		errs = append(errs, "standby trace diverged from primary during failover phase")
	}
	if r.Requests <= 0 {
		errs = append(errs, "no requests recorded")
	}
	if !r.Quick {
		if r.ReqsPerSec < 10000 {
			errs = append(errs, fmt.Sprintf("admission throughput %.0f req/s below the 10k req/s floor", r.ReqsPerSec))
		}
		if r.AdmitP99US <= 0 {
			errs = append(errs, "no admission latency percentiles recorded")
		}
		if r.ServerAdmitP99US <= 0 {
			errs = append(errs, "no server-side admission latency percentiles recorded")
		}
		// The server-side measurement nests inside the client round trip, so
		// it must not exceed the client p99 (with slack for histogram
		// quantization and the tails being sampled differently).
		if r.ServerAdmitP99US > 0 && r.AdmitP99US > 0 && r.ServerAdmitP99US > 1.5*r.AdmitP99US {
			errs = append(errs, fmt.Sprintf("server-side admission p99 %.0fus exceeds client-side p99 %.0fus by more than 1.5x",
				r.ServerAdmitP99US, r.AdmitP99US))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("serve bench: %s", errs[0])
	}
	return nil
}

// Print renders the human-readable report.
func (r *BenchResult) Print(w io.Writer) {
	profile := "full"
	if r.Quick {
		profile = "quick"
	}
	fprintf(w, "serve bench (%s, %s, %d clients, %.1fs, %d CPUs)\n",
		profile, r.Transport, r.Clients, r.WallSecs, r.CPUs)
	fprintf(w, "  requests      %d (%.0f req/s)\n", r.Requests, r.ReqsPerSec)
	fprintf(w, "  admission     p50 %.0fus  p99 %.0fus\n", r.AdmitP50US, r.AdmitP99US)
	fprintf(w, "  server-side   p50 %.0fus  p99 %.0fus (submit handler)\n", r.ServerAdmitP50US, r.ServerAdmitP99US)
	fprintf(w, "  decisions     %.0f applied/s\n", r.DecisionsPerSec)
	fprintf(w, "  failover gap  %.1fms (trace match: %v)\n", r.FailoverGapMS, r.TraceMatch)
}

// WriteJSON writes the committed baseline file.
func (r *BenchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
