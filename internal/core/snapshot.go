package core

import (
	"encoding/json"
	"fmt"

	"quasar/internal/classify"
)

// Fault tolerance (§4.4): the Quasar master's state — active workloads,
// their targets and deadlines, classification matrices and per-workload
// estimates — is continuously replicable to a hot-standby master. Snapshot
// serializes that state; Restore loads it into a fresh Quasar attached to
// the same (or a mirrored) runtime. Placements live in the cluster itself
// and survive a master failover, exactly as real workloads keep running
// while the manager restarts.

// quasarTaskSnapshot is one workload's manager-side state. The displacement
// fields carry an in-flight failure-recovery episode across a failover: the
// standby must keep attributing the episode's MTTR and signature-reuse
// bookkeeping, not restart it.
type quasarTaskSnapshot struct {
	ID          string                     `json:"id"`
	WorkEst     float64                    `json:"work_est"`
	Deadline    float64                    `json:"deadline"`
	Est         *classify.EstimateSnapshot `json:"est"`
	Displaced   bool                       `json:"displaced,omitempty"`
	DisplacedAt float64                    `json:"displaced_at,omitempty"`
	Reprofiled  bool                       `json:"reprofiled,omitempty"`
}

// QuasarSnapshot is the serializable manager state.
type QuasarSnapshot struct {
	Engine   *classify.EngineSnapshot `json:"engine"`
	Tasks    []quasarTaskSnapshot     `json:"tasks"`
	Queue    []string                 `json:"queue"`
	Recovery RecoveryStats            `json:"recovery"`
}

// Snapshot captures the manager's state. It is safe to call between ticks.
func (q *Quasar) Snapshot() *QuasarSnapshot {
	snap := &QuasarSnapshot{Engine: q.engine.Snapshot()}
	for _, t := range q.rt.Tasks() {
		st, ok := q.state[t.W.ID]
		if !ok {
			continue
		}
		ts := quasarTaskSnapshot{
			ID: t.W.ID, WorkEst: st.workEst, Deadline: st.deadline,
			Displaced: st.displaced, DisplacedAt: st.displacedAt, Reprofiled: st.reprofiled,
		}
		if st.est != nil {
			ts.Est = st.est.Snapshot()
		}
		snap.Tasks = append(snap.Tasks, ts)
	}
	for _, t := range q.queue {
		snap.Queue = append(snap.Queue, t.W.ID)
	}
	snap.Recovery = q.Recovery()
	return snap
}

// MarshalSnapshot serializes the state to JSON.
func (q *Quasar) MarshalSnapshot() ([]byte, error) { return json.Marshal(q.Snapshot()) }

// Restore loads a snapshot into this manager. The manager must be attached
// to the runtime whose tasks the snapshot references (the standby mirrors
// the same cluster).
func (q *Quasar) Restore(snap *QuasarSnapshot) error {
	if err := q.engine.LoadSnapshot(snap.Engine); err != nil {
		return err
	}
	q.state = make(map[string]*taskState, len(snap.Tasks))
	for _, ts := range snap.Tasks {
		if q.rt.Task(ts.ID) == nil {
			return fmt.Errorf("core: snapshot references unknown task %s", ts.ID)
		}
		st := &taskState{
			workEst: ts.WorkEst, deadline: ts.Deadline,
			displaced: ts.Displaced, displacedAt: ts.DisplacedAt, reprofiled: ts.Reprofiled,
		}
		if ts.Est != nil {
			est, err := classify.RestoreEstimates(q.engine, ts.Est)
			if err != nil {
				return err
			}
			st.est = est
		}
		q.state[ts.ID] = st
	}
	q.queue = nil
	for _, id := range snap.Queue {
		if t := q.rt.Task(id); t != nil {
			q.queue = append(q.queue, t)
		}
	}
	q.recovery = snap.Recovery
	q.recovery.ReadmitDelays = append([]float64(nil), snap.Recovery.ReadmitDelays...)
	return nil
}

// UnmarshalSnapshot decodes and restores serialized state.
func (q *Quasar) UnmarshalSnapshot(data []byte) error {
	var snap QuasarSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return err
	}
	return q.Restore(&snap)
}
