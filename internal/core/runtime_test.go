package core

import (
	"math"
	"testing"

	"quasar/internal/cluster"
	"quasar/internal/loadgen"
	"quasar/internal/perfmodel"
	"quasar/internal/workload"
)

// nullManager places every workload on fixed servers immediately.
type nullManager struct {
	rt     *Runtime
	alloc  cluster.Alloc
	server int
	nodes  int
}

func (m *nullManager) Name() string { return "null" }

func (m *nullManager) OnSubmit(t *Task) {
	for i := 0; i < m.nodes; i++ {
		srv := m.rt.Cl.Servers[(m.server+i)%len(m.rt.Cl.Servers)]
		if err := m.rt.Place(t, srv, m.alloc); err != nil {
			panic(err)
		}
	}
}

func (m *nullManager) OnComplete(t *Task) {}
func (m *nullManager) OnEvicted(t *Task)  {}
func (m *nullManager) OnTick(now float64) {}

func newTestRuntime(t testing.TB) (*Runtime, *workload.Universe) {
	t.Helper()
	platforms := cluster.LocalPlatforms()
	cl, err := cluster.New(platforms, []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(cl, Options{TickSecs: 5, SampleSecs: 60, Seed: 3})
	u := workload.NewUniverse(platforms, 31, 3)
	return rt, u
}

func TestBatchRunsToCompletion(t *testing.T) {
	rt, u := newTestRuntime(t)
	w := u.New(workload.Spec{Type: workload.SingleNode, Family: -1})
	w.Genome.Work = 1000
	m := &nullManager{rt: rt, alloc: cluster.Alloc{Cores: 4, MemoryGB: 8}, server: 36, nodes: 1}
	rt.SetManager(m)
	task := rt.Submit(w, 0, nil)
	rt.Run(100000)

	if task.Status != StatusCompleted {
		t.Fatalf("status %v, want completed", task.Status)
	}
	// Completion time should equal work / true rate at that allocation.
	srv := rt.Cl.Servers[36]
	rate := w.NodeRate(srv.Platform, cluster.Alloc{Cores: 4, MemoryGB: 8}, cluster.ResVec{})
	wantSecs := 1000 / rate
	got := task.DoneAt - task.StartAt
	if math.Abs(got-wantSecs) > wantSecs*0.1+10 {
		t.Fatalf("completion %.0fs, want ~%.0fs", got, wantSecs)
	}
	// Resources released.
	if srv.UsedCores() != 0 {
		t.Fatal("resources not released after completion")
	}
}

func TestServiceServesLoad(t *testing.T) {
	rt, u := newTestRuntime(t)
	w := u.New(workload.Spec{Type: workload.Memcached, Family: -1, MaxNodes: 4})
	m := &nullManager{rt: rt, alloc: cluster.Alloc{Cores: 12, MemoryGB: 24}, server: 36, nodes: 2}
	rt.SetManager(m)
	srv := rt.Cl.Servers[36]
	_ = srv
	task := rt.Submit(w, 0, loadgen.Flat{QPS: w.Target.QPS * 0.5})
	rt.Run(600)
	rt.Stop()

	if task.LastAchievedQPS <= 0 {
		t.Fatal("service served nothing")
	}
	if math.Abs(task.LastAchievedQPS-w.Target.QPS*0.5) > 1 {
		t.Fatalf("achieved %.0f, offered %.0f", task.LastAchievedQPS, w.Target.QPS*0.5)
	}
	if task.QoSFrac.Len() == 0 || task.QPSSeries.Len() == 0 {
		t.Fatal("service series not recorded")
	}
}

func TestServiceSheddingUnderOverload(t *testing.T) {
	rt, u := newTestRuntime(t)
	w := u.New(workload.Spec{Type: workload.Memcached, Family: -1, MaxNodes: 4})
	// One tiny node: will saturate.
	m := &nullManager{rt: rt, alloc: cluster.Alloc{Cores: 1, MemoryGB: 2}, server: 0, nodes: 1}
	rt.SetManager(m)
	task := rt.Submit(w, 0, loadgen.Flat{QPS: w.Target.QPS * 10})
	rt.Run(300)
	rt.Stop()

	if task.LastAchievedQPS >= task.LastOfferedQPS {
		t.Fatal("overloaded service should shed load")
	}
	if task.QoSFrac.Mean() > 0.5 {
		t.Fatalf("overloaded service met QoS %v of the time", task.QoSFrac.Mean())
	}
}

func TestInterferenceSlowsNeighbour(t *testing.T) {
	rt, u := newTestRuntime(t)
	w1 := u.New(workload.Spec{Type: workload.SingleNode, Family: -1})
	w1.Genome.Work = 1e9 // effectively endless
	w2 := u.New(workload.Spec{Type: workload.SingleNode, Family: -1})
	w2.Genome.Work = 1e9
	m := &nullManager{rt: rt, alloc: cluster.Alloc{Cores: 8, MemoryGB: 12}, server: 36, nodes: 1}
	rt.SetManager(m)
	t1 := rt.Submit(w1, 0, nil)
	rt.Run(50)
	soloRate := rt.TrueRate(t1)
	t2 := rt.Submit(w2, 60, nil)
	rt.Run(120)
	rt.Stop()
	colocRate := rt.TrueRate(t1)
	if colocRate >= soloRate {
		t.Fatalf("colocation did not slow the neighbour: %.3f -> %.3f", soloRate, colocRate)
	}
	_ = t2
}

func TestEvictOnlyBestEffort(t *testing.T) {
	rt, u := newTestRuntime(t)
	w := u.New(workload.Spec{Type: workload.SingleNode, Family: -1})
	w.Genome.Work = 1e9
	m := &nullManager{rt: rt, alloc: cluster.Alloc{Cores: 2, MemoryGB: 4}, server: 0, nodes: 1}
	rt.SetManager(m)
	rt.Submit(w, 0, nil)
	rt.Run(10)
	if err := rt.Evict(w.ID); err == nil {
		t.Fatal("evicted a non-best-effort task")
	}
	be := u.New(workload.Spec{Type: workload.SingleNode, Family: -1, BestEffort: true})
	be.Genome.Work = 1e9
	m.server = 1 // server 0 is full with w's placement
	rt.Submit(be, 20, nil)
	rt.Run(30)
	if err := rt.Evict(be.ID); err != nil {
		t.Fatal(err)
	}
	if rt.Task(be.ID).Status != StatusQueued {
		t.Fatal("evicted task not queued")
	}
	rt.Stop()
}

func TestMeasuredPerfTracksTruth(t *testing.T) {
	rt, u := newTestRuntime(t)
	w := u.New(workload.Spec{Type: workload.SingleNode, Family: -1})
	w.Genome.Work = 1e9
	m := &nullManager{rt: rt, alloc: cluster.Alloc{Cores: 4, MemoryGB: 8}, server: 36, nodes: 1}
	rt.SetManager(m)
	task := rt.Submit(w, 0, nil)
	rt.Run(20)
	rt.Stop()
	truth := rt.TrueRate(task)
	sum := 0.0
	const n = 200
	for i := 0; i < n; i++ {
		sum += rt.MeasuredPerf(task)
	}
	if mean := sum / n; math.Abs(mean-truth)/truth > 0.05 {
		t.Fatalf("measured mean %.3f vs truth %.3f", mean, truth)
	}
}

func TestUtilizationSampling(t *testing.T) {
	rt, u := newTestRuntime(t)
	w := u.New(workload.Spec{Type: workload.SingleNode, Family: -1})
	w.Genome.Work = 1e9
	w.Genome.Parallelism = 4
	m := &nullManager{rt: rt, alloc: cluster.Alloc{Cores: 8, MemoryGB: 12}, server: 36, nodes: 1}
	rt.SetManager(m)
	rt.Submit(w, 0, nil)
	rt.Run(300)
	rt.Stop()
	if len(rt.CPUHeat.Times) < 4 {
		t.Fatalf("only %d samples", len(rt.CPUHeat.Times))
	}
	// Allocated > used because parallelism 4 < 8 allocated cores.
	if rt.AllocSeries.Vals[len(rt.AllocSeries.Vals)-1] <= rt.UsedSeries.Vals[len(rt.UsedSeries.Vals)-1] {
		t.Fatal("allocated share should exceed used share for a low-parallelism job")
	}
}

func TestResizeChangesRate(t *testing.T) {
	rt, u := newTestRuntime(t)
	w := u.New(workload.Spec{Type: workload.SingleNode, Family: -1})
	w.Genome.Work = 1e9
	w.Genome.Parallelism = 0
	m := &nullManager{rt: rt, alloc: cluster.Alloc{Cores: 2, MemoryGB: 4}, server: 36, nodes: 1}
	rt.SetManager(m)
	task := rt.Submit(w, 0, nil)
	rt.Run(10)
	before := rt.TrueRate(task)
	if err := rt.Resize(task, rt.Cl.Servers[36], cluster.Alloc{Cores: 12, MemoryGB: 24}); err != nil {
		t.Fatal(err)
	}
	after := rt.TrueRate(task)
	rt.Stop()
	if after <= before {
		t.Fatalf("resize up did not speed up: %.3f -> %.3f", before, after)
	}
}

func TestRemoveNodeScaleIn(t *testing.T) {
	rt, u := newTestRuntime(t)
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4})
	w.Genome.Work = 1e9
	m := &nullManager{rt: rt, alloc: cluster.Alloc{Cores: 4, MemoryGB: 8}, server: 30, nodes: 3}
	rt.SetManager(m)
	task := rt.Submit(w, 0, nil)
	rt.Run(10)
	if task.NumNodes() != 3 {
		t.Fatalf("%d nodes", task.NumNodes())
	}
	ids := task.Servers()
	if err := rt.RemoveNode(task, ids[0]); err != nil {
		t.Fatal(err)
	}
	if task.NumNodes() != 2 {
		t.Fatal("scale-in failed")
	}
	if err := rt.RemoveNode(task, ids[0]); err == nil {
		t.Fatal("double remove succeeded")
	}
	rt.Stop()
}

var _ = perfmodel.Analytics
