package core

import (
	"testing"

	"quasar/internal/cluster"
	"quasar/internal/loadgen"
	"quasar/internal/workload"
)

// detectorFixture wires a nullManager runtime with the heartbeat detector on
// and one single-node task placed on server 36.
func detectorFixture(t *testing.T) (*Runtime, *Task, *cluster.Server) {
	t.Helper()
	rt, u := newTestRuntime(t)
	rt.EnableFailureDetector(DetectorOptions{PeriodSecs: 10, SuspectMissed: 2, DeadMissed: 4})
	w := u.New(workload.Spec{Type: workload.SingleNode, Family: -1})
	w.Genome.Work = 1e9 // effectively never completes
	m := &nullManager{rt: rt, alloc: cluster.Alloc{Cores: 4, MemoryGB: 8}, server: 36, nodes: 1}
	rt.SetManager(m)
	task := rt.Submit(w, 0, nil)
	return rt, task, rt.Cl.Servers[36]
}

func TestDetectorDeclaresDeadAndFences(t *testing.T) {
	rt, task, srv := detectorFixture(t)
	rt.Run(4)
	if !rt.CrashServer(36) {
		t.Fatal("CrashServer no-oped on an up server")
	}
	if task.NumNodes() != 1 {
		t.Fatal("crash alone should not remove placements before detection")
	}

	// Heartbeats at 10,20,30,40: suspect on the 2nd miss, dead on the 4th.
	rt.Run(25)
	if srv.Det() != cluster.DetSuspect {
		t.Fatalf("after 2 missed beats Det = %v, want suspect", srv.Det())
	}
	if task.NumNodes() != 1 {
		t.Fatal("suspect state must not fence residents")
	}
	rt.Run(45)
	if srv.Det() != cluster.DetDead {
		t.Fatalf("after 4 missed beats Det = %v, want dead", srv.Det())
	}
	if task.NumNodes() != 0 || task.Status != StatusQueued {
		t.Fatalf("fencing: nodes=%d status=%v, want 0/queued", task.NumNodes(), task.Status)
	}
	if srv.NumPlacements() != 0 {
		t.Fatal("dead server still holds placements")
	}
	rt.Stop()
}

func TestTransientBlipGoesUndetected(t *testing.T) {
	rt, task, srv := detectorFixture(t)
	rt.Run(4)
	rt.CrashServer(36)
	rt.Run(12)
	if !rt.RestartServer(36) {
		t.Fatal("RestartServer no-oped on a down server")
	}
	rt.Run(60)
	// Restarted inside the suspect window: the manager never learns.
	if srv.Det() != cluster.DetOK {
		t.Fatalf("Det = %v after transient blip, want OK", srv.Det())
	}
	if task.NumNodes() != 1 || task.Status != StatusRunning {
		t.Fatalf("transient blip displaced the task: nodes=%d status=%v", task.NumNodes(), task.Status)
	}
	rt.Stop()
}

func TestPartitionFencedThenRestored(t *testing.T) {
	rt, task, srv := detectorFixture(t)
	rt.Run(4)
	if !rt.PartitionServer(36) {
		t.Fatal("PartitionServer no-oped")
	}
	rt.Run(45)
	if !srv.Up() {
		t.Fatal("partition took the server down; it should stay up")
	}
	if srv.Det() != cluster.DetDead || task.NumNodes() != 0 {
		t.Fatalf("partitioned past the window: Det=%v nodes=%d, want dead/0", srv.Det(), task.NumNodes())
	}
	if !rt.HealServer(36) {
		t.Fatal("HealServer no-oped")
	}
	rt.Run(60)
	if srv.Det() != cluster.DetOK || !srv.Schedulable() {
		t.Fatalf("healed server not restored: Det=%v", srv.Det())
	}
	rt.Stop()
}

func TestRestartDrainsStalePlacements(t *testing.T) {
	rt, task, srv := detectorFixture(t)
	rt.Run(4)
	rt.PartitionServer(36)
	rt.Run(45) // detector declares dead, fences
	if srv.NumPlacements() != 0 {
		t.Fatal("fence left placements behind")
	}
	// Re-create the stale-placement case a crash/restart race could leave: a
	// placement added while the server is believed dead (healed but not yet
	// cleared by a heartbeat).
	rt.HealServer(36)
	if err := rt.Place(task, srv, cluster.Alloc{Cores: 1, MemoryGB: 1}); err != nil {
		t.Fatal(err)
	}
	srv.SetDown()
	if !rt.RestartServer(36) {
		t.Fatal("RestartServer no-oped")
	}
	if srv.NumPlacements() != 0 {
		t.Fatal("restart did not drain stale placements from a dead server")
	}
	rt.Stop()
}

func TestWorldPrimitivesNoOpInWrongState(t *testing.T) {
	rt, _ := newTestRuntime(t)
	rt.SetManager(&nullManager{rt: rt})
	if rt.RestartServer(0) {
		t.Error("restart of an up server applied")
	}
	if rt.UnslowServer(0) {
		t.Error("unslow of a healthy server applied")
	}
	if rt.HealServer(0) {
		t.Error("heal of an unpartitioned server applied")
	}
	if !rt.SlowServer(0, 0.5) || rt.SlowServer(0, 0.5) {
		t.Error("second slowdown on the same server applied")
	}
	if !rt.CrashServer(0) || rt.CrashServer(0) {
		t.Error("second crash of the same server applied")
	}
	if rt.SlowServer(0, 0.5) || rt.PartitionServer(0) {
		t.Error("slow/partition of a down server applied")
	}
	rt.Stop()
}

func TestDetectorOffByDefault(t *testing.T) {
	rt, _ := newTestRuntime(t)
	if rt.DetectorEnabled() {
		t.Fatal("detector enabled without opt-in")
	}
	rt.SetManager(&nullManager{rt: rt})
	rt.CrashServer(3)
	rt.Run(600)
	// No detector: the crash is never noticed, Det stays OK.
	if rt.Cl.Servers[3].Det() != cluster.DetOK {
		t.Fatal("Det changed with the detector off")
	}
	rt.Stop()
}

// TestQuasarReadmitsDisplacedServiceWithoutReprofile is the recovery policy
// end to end at core scope: a latency-critical service loses its servers to
// a crash, the detector fences it, and Quasar re-admits it from the cached
// classification signature without re-profiling.
func TestQuasarReadmitsDisplacedServiceWithoutReprofile(t *testing.T) {
	rt, q, u := quasarFixture(t, 61)
	// A sub-tick detection window (dead 2s after the crash) so the service is
	// fully fenced before Quasar's 5s monitor can scale out around the hole:
	// this pins the test to the full-displacement readmit path.
	rt.EnableFailureDetector(DetectorOptions{PeriodSecs: 1, SuspectMissed: 1, DeadMissed: 2})
	w := u.New(workload.Spec{Type: workload.Memcached, Family: -1, MaxNodes: 4})
	task := rt.Submit(w, 0, loadgen.Flat{QPS: w.Target.QPS})
	rt.Run(601)
	if task.NumNodes() == 0 {
		t.Fatal("service never placed")
	}
	for _, id := range task.Servers() {
		rt.CrashServer(id)
	}
	rt.Run(1200)
	rt.Stop()
	rec := q.Recovery()
	if rec.Displaced < 1 || rec.DisplacedLC < 1 {
		t.Fatalf("no displacement recorded: %+v", rec)
	}
	if rec.ReadmittedLCNoReprofile < 1 {
		t.Fatalf("service not re-admitted from cached signature: %+v", rec)
	}
	if len(rec.ReadmitDelays) != rec.Readmitted {
		t.Fatalf("recovery delay not recorded per re-admission: %+v", rec)
	}
	if task.NumNodes() == 0 || task.Status != StatusRunning {
		t.Fatalf("service not running after recovery: nodes=%d status=%v", task.NumNodes(), task.Status)
	}
}
