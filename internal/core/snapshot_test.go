package core

import (
	"testing"

	"quasar/internal/loadgen"
	"quasar/internal/workload"
)

// TestSnapshotRestoreFailover simulates a master failover: a running
// cluster's manager state is serialized, a fresh manager is built against
// the same runtime (workloads keep running, as in a real failover), the
// snapshot is restored, and management continues — monitoring, adaptation,
// and new submissions all work.
func TestSnapshotRestoreFailover(t *testing.T) {
	rt, q, u := quasarFixture(t, 211)
	job := u.New(workload.Spec{Type: workload.Hadoop, Family: 0, MaxNodes: 4, TargetSlack: 1.2,
		Dataset: workload.Dataset{Name: "ft", SizeGB: 20, WorkMult: 3, MemMult: 1}})
	jobTask := rt.Submit(job, 0, nil)
	svc := u.New(workload.Spec{Type: workload.Webserver, Family: 0, MaxNodes: 4})
	svcTask := rt.Submit(svc, 10, loadgen.Flat{QPS: 0.7 * svc.Target.QPS})
	rt.Run(600)

	if jobTask.Status != StatusRunning || svcTask.Status != StatusRunning {
		t.Fatalf("tasks not running before failover: %v / %v", jobTask.Status, svcTask.Status)
	}

	// Serialize the master state.
	data, err := q.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 100 {
		t.Fatal("suspiciously small snapshot")
	}

	// The master dies; a hot standby takes over the same cluster.
	standby := NewQuasar(rt, q.opts)
	if err := standby.UnmarshalSnapshot(data); err != nil {
		t.Fatal(err)
	}
	rt.SetManager(standby)

	// The standby must keep managing: the job completes near target and
	// the service keeps meeting QoS.
	rt.Run(job.Target.CompletionSecs * 2.5)
	if jobTask.Status != StatusCompleted {
		t.Fatalf("job did not complete after failover: %v", jobTask.Status)
	}
	if elapsed := jobTask.DoneAt - jobTask.SubmitAt; elapsed > 1.6*job.Target.CompletionSecs {
		t.Fatalf("failover degraded the job: %.0fs vs target %.0fs", elapsed, job.Target.CompletionSecs)
	}
	if qos := svcTask.QoSFrac.MeanBetween(900, 1e18); qos < 0.8 {
		t.Fatalf("service QoS after failover: %.2f", qos)
	}

	// New submissions are handled by the standby.
	w2 := u.New(workload.Spec{Type: workload.SingleNode, Family: -1, TargetSlack: 1.3})
	w2.Genome.Work = 500
	rt2 := rt // same runtime continues
	task2 := rt2.Submit(w2, rt.Eng.Now()+10, nil)
	rt.Run(rt.Eng.Now() + 10000)
	rt.Stop()
	if task2.Status != StatusCompleted {
		t.Fatalf("post-failover submission stuck: %v", task2.Status)
	}
}

// TestSnapshotRoundTripPreservesEstimates: estimates restored from a
// snapshot must predict identically.
func TestSnapshotRoundTripPreservesEstimates(t *testing.T) {
	rt, q, u := quasarFixture(t, 223)
	w := u.New(workload.Spec{Type: workload.Memcached, Family: -1, MaxNodes: 4})
	rt.Submit(w, 0, loadgen.Flat{QPS: 0.5 * w.Target.QPS})
	rt.Run(400) // past the stateful-service profiling delay
	rt.Stop()

	st := q.state[w.ID]
	if st == nil || st.est == nil {
		t.Fatal("no estimates to snapshot")
	}
	before := st.est.NodePerf(9, rt.Cl.Servers[36].Placement(w.ID).Alloc, rt.Cl.Servers[0].PressureOn(""))

	data, err := q.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	standby := NewQuasar(rt, q.opts)
	if err := standby.UnmarshalSnapshot(data); err != nil {
		t.Fatal(err)
	}
	st2 := standby.state[w.ID]
	if st2 == nil || st2.est == nil {
		t.Fatal("estimates lost in round trip")
	}
	after := st2.est.NodePerf(9, rt.Cl.Servers[36].Placement(w.ID).Alloc, rt.Cl.Servers[0].PressureOn(""))
	if before != after {
		t.Fatalf("estimates diverged: %v vs %v", before, after)
	}
	if st2.est.Beta() != st.est.Beta() {
		t.Fatal("beta lost in round trip")
	}
}

// TestRestoreRejectsUnknownTasks: a snapshot naming tasks the runtime does
// not know must be rejected, not silently mangled.
func TestRestoreRejectsUnknownTasks(t *testing.T) {
	rt, q, u := quasarFixture(t, 227)
	w := u.New(workload.Spec{Type: workload.SingleNode, Family: -1, TargetSlack: 1.3})
	rt.Submit(w, 0, nil)
	rt.Run(60)
	rt.Stop()
	snap := q.Snapshot()
	snap.Tasks = append(snap.Tasks, quasarTaskSnapshot{ID: "ghost-0001"})

	other, err := buildCleanQuasar(t)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(snap); err == nil {
		t.Fatal("snapshot with unknown task accepted")
	}
}

func buildCleanQuasar(t *testing.T) (*Quasar, error) {
	t.Helper()
	rt, q, _ := quasarFixture(t, 229)
	_ = rt
	return q, nil
}
