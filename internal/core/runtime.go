// Package core contains the simulated cluster runtime and the Quasar
// manager itself. The runtime executes workloads against the ground-truth
// performance model: it integrates batch progress, serves offered load on
// latency services, maintains interference pressure on servers, and samples
// utilization — the "physical world" every manager (Quasar and the
// baselines) operates in through the same narrow interface.
package core

import (
	"fmt"
	"math"

	"quasar/internal/cluster"
	"quasar/internal/loadgen"
	"quasar/internal/metrics"
	"quasar/internal/obs"
	"quasar/internal/obs/prof"
	"quasar/internal/perfmodel"
	"quasar/internal/sim"
	"quasar/internal/workload"
)

// Status is a task's lifecycle state.
type Status int

const (
	StatusQueued Status = iota
	StatusProfiling
	StatusRunning
	StatusCompleted
	StatusRejected
)

func (s Status) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusProfiling:
		return "profiling"
	case StatusRunning:
		return "running"
	case StatusCompleted:
		return "completed"
	case StatusRejected:
		return "rejected"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Task is a submitted workload plus its runtime state.
type Task struct {
	W      *workload.Instance
	Status Status

	SubmitAt float64
	StartAt  float64
	DoneAt   float64

	// Progress is completed work units (batch workloads).
	Progress float64

	// Load is the offered-load pattern for latency services.
	Load loadgen.Pattern

	// Service statistics, updated every tick while running.
	LastAchievedQPS float64
	LastOfferedQPS  float64
	LastP99US       float64
	QoSFrac         *metrics.Series // fraction of queries meeting QoS per tick
	QPSSeries       *metrics.Series
	LatencyDist     *metrics.Histogram // streaming per-tick p99 samples, O(buckets) memory

	// Batch statistics.
	RateSeries *metrics.Series

	// UsedPlatforms accumulates the platform names the task was ever
	// placed on (Table 3's "server type" row).
	UsedPlatforms map[string]bool

	// PeakCores is the largest simultaneous core allocation observed.
	PeakCores int

	placements map[int]*cluster.Placement // by server ID
	// serverIDs mirrors the placement keys in ascending order, maintained
	// on Place/RemoveNode, so per-tick sweeps iterate deterministically
	// without sorting or map iteration.
	serverIDs []int
	qosState  int8 // 0 unknown, 1 meeting QoS, -1 missing (trace edge detection)
}

// Servers returns the IDs of servers currently hosting the task, ascending.
// The result is the caller's to keep; hot paths inside the runtime iterate
// the maintained serverIDs slice directly.
func (t *Task) Servers() []int {
	return append([]int(nil), t.serverIDs...)
}

// insertID inserts id into ascending ids (no-op duplicates never occur:
// Place rejects double-placement at the cluster layer).
func insertID(ids []int, id int) []int {
	ids = append(ids, id)
	for i := len(ids) - 1; i > 0 && ids[i] < ids[i-1]; i-- {
		ids[i], ids[i-1] = ids[i-1], ids[i]
	}
	return ids
}

// removeID deletes id from ascending ids, preserving order.
func removeID(ids []int, id int) []int {
	for i, v := range ids {
		if v == id {
			//lint:allow(hotalloc) in-place shift: the append reslices the existing backing array and never grows it
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// NumNodes returns the current allocation width.
func (t *Task) NumNodes() int { return len(t.placements) }

// TotalCores returns the currently allocated cores.
func (t *Task) TotalCores() int {
	n := 0
	for _, pl := range t.placements {
		n += pl.Alloc.Cores
	}
	return n
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Manager is the decision-maker plugged into the runtime. The runtime
// drives it with arrival, completion, and tick callbacks; the manager acts
// through the runtime's placement API.
type Manager interface {
	Name() string
	// OnSubmit is called when a workload arrives.
	OnSubmit(t *Task)
	// OnComplete is called when a batch workload finishes.
	OnComplete(t *Task)
	// OnEvicted is called when one of the manager's placements was evicted
	// by the runtime on another manager action.
	OnEvicted(t *Task)
	// OnTick is called every monitoring interval.
	OnTick(now float64)
}

// Options configures the runtime.
type Options struct {
	TickSecs   float64 // progress/monitoring granularity (default 5s)
	SampleSecs float64 // utilization sampling period (default 60s); 0 disables
	Seed       int64
}

// Runtime is the simulated cluster world.
type Runtime struct {
	Eng *sim.Engine
	Cl  *cluster.Cluster
	RNG *sim.RNG

	// measureRNG is the measurement-noise stream, derived once at
	// construction: deriving a stream draws from the root RNG and builds a
	// new generator, which is too expensive (and pointless) per observation.
	measureRNG *sim.RNG

	// Trace, when non-nil, receives task-lifecycle events: submissions,
	// per-server placement spans, resizes, evictions, completions, and QoS
	// transitions. All emission happens on the sim goroutine.
	Trace *obs.Tracer

	// Prof, when non-nil, attributes the tick/sample sweeps' wall time to
	// prof.SubRuntime. Outside the determinism boundary; see internal/obs/prof.
	Prof *prof.Profiler

	opts    Options
	manager Manager

	tasks map[string]*Task
	order []string
	// ordered mirrors order as resolved *Task pointers so the per-tick
	// sweeps and Tasks() iterate without rebuilding a slice.
	ordered []*Task

	// CPUHeat, MemHeat, DiskHeat sample per-server utilization over time
	// (Figs. 7, 10, 11). AllocSeries and UsedSeries track aggregate
	// allocated vs actually-used cores (Fig. 11d).
	CPUHeat     *metrics.Heatmap
	MemHeat     *metrics.Heatmap
	DiskHeat    *metrics.Heatmap
	AllocSeries metrics.Series
	UsedSeries  metrics.Series

	// Failure-detector state (nil/empty until EnableFailureDetector):
	// detOpts holds the thresholds, missed counts consecutive missed
	// heartbeats per server index.
	detOpts *DetectorOptions
	missed  []int

	// tickListeners run on the sim goroutine after each tick sweep (task
	// advancement + manager OnTick), in registration order. Monitoring
	// layers (internal/slo) subscribe here so they observe the
	// post-decision state of every tick.
	tickListeners []func(now float64)

	// cpuBuf, memBuf, dskBuf are sampling scratch reused across sweeps;
	// Heatmap.Sample copies its input, so reuse is safe.
	cpuBuf, memBuf, dskBuf []float64

	stopTick, stopSample, stopHB func()
}

// NewRuntime builds a runtime over the cluster.
func NewRuntime(cl *cluster.Cluster, opts Options) *Runtime {
	if opts.TickSecs <= 0 {
		opts.TickSecs = 5
	}
	if opts.SampleSecs < 0 {
		opts.SampleSecs = 0
	}
	rt := &Runtime{
		Eng:      sim.NewEngine(),
		Cl:       cl,
		RNG:      sim.NewRNG(opts.Seed),
		opts:     opts,
		tasks:    make(map[string]*Task),
		CPUHeat:  metrics.NewHeatmap(len(cl.Servers)),
		MemHeat:  metrics.NewHeatmap(len(cl.Servers)),
		DiskHeat: metrics.NewHeatmap(len(cl.Servers)),
	}
	rt.measureRNG = rt.RNG.Stream("measure")
	return rt
}

// SetTracer installs the tracer and registers the runtime's utilization
// containers with its metrics registry.
func (rt *Runtime) SetTracer(tr *obs.Tracer) {
	rt.Trace = tr
	if reg := tr.Registry(); reg != nil {
		reg.Series("cluster_alloc_cores_frac", "fraction of cluster cores allocated", &rt.AllocSeries)
		reg.Series("cluster_used_cores_frac", "fraction of cluster cores actually used", &rt.UsedSeries)
		reg.Heatmap("server_cpu_util", "per-server CPU utilization", rt.CPUHeat)
		reg.Heatmap("server_mem_util", "per-server memory utilization", rt.MemHeat)
		reg.Heatmap("server_disk_util", "per-server disk utilization", rt.DiskHeat)
		reg.Gauge("sim_events_fired", "discrete events fired by the engine",
			func() float64 { return float64(rt.Eng.Fired()) })
		reg.Gauge("tasks_total", "tasks submitted", func() float64 { return float64(len(rt.order)) })
		reg.Gauge("tasks_running", "tasks currently running", func() float64 {
			n := 0
			for _, id := range rt.order {
				if rt.tasks[id].Status == StatusRunning {
					n++
				}
			}
			return float64(n)
		})
	}
}

// SetProfiler installs the engine self-profiler on the runtime and its sim
// engine. Like SetTracer it should run before the scenario starts; unlike
// the tracer, nothing the profiler measures feeds back into any simulation
// output.
func (rt *Runtime) SetProfiler(p *prof.Profiler) {
	rt.Prof = p
	rt.Eng.Prof = p
}

// spanID names the placement span of a workload on a server; placements on
// one server track overlap across workloads, so they are async spans keyed by
// this ID.
//
//quasar:cold tracing-only: every call site sits inside a Trace.Enabled() guard
func spanID(workloadID string, serverID int) string {
	return fmt.Sprintf("%s@%d", workloadID, serverID)
}

//quasar:cold tracing-only: every call site sits inside a Trace.Enabled() guard
func serverTrack(serverID int) string { return fmt.Sprintf("server/%d", serverID) }

func workloadTrack(workloadID string) string { return "workload/" + workloadID }

// SetManager installs the decision-maker and (re)starts the tick loops.
// Installing a new manager mid-run (a master failover) replaces the old
// one's loops cleanly.
func (rt *Runtime) SetManager(m Manager) {
	rt.Stop()
	rt.manager = m
	now := rt.Eng.Now()
	rt.stopTick = rt.Eng.Ticker(now+rt.opts.TickSecs, rt.opts.TickSecs, rt.tick)
	if rt.opts.SampleSecs > 0 {
		rt.stopSample = rt.Eng.Ticker(now+rt.opts.SampleSecs, rt.opts.SampleSecs, rt.sample)
	}
	if rt.detOpts != nil {
		// A manager failover must not stop failure detection; detector state
		// (including miss counters) is runtime state and survives the switch.
		rt.startHeartbeat()
	}
}

// Manager returns the installed manager.
func (rt *Runtime) Manager() Manager { return rt.manager }

// Submit schedules a workload arrival at time at.
func (rt *Runtime) Submit(w *workload.Instance, at float64, load loadgen.Pattern) *Task {
	t := &Task{
		W:             w,
		Status:        StatusQueued,
		SubmitAt:      at,
		Load:          load,
		QoSFrac:       &metrics.Series{Name: w.ID + "/qos"},
		QPSSeries:     &metrics.Series{Name: w.ID + "/qps"},
		RateSeries:    &metrics.Series{Name: w.ID + "/rate"},
		LatencyDist:   metrics.NewHistogram(0.01),
		UsedPlatforms: make(map[string]bool),
		placements:    make(map[int]*cluster.Placement),
	}
	rt.tasks[w.ID] = t
	rt.order = append(rt.order, w.ID)
	rt.ordered = append(rt.ordered, t)
	rt.Eng.Schedule(at, func() {
		if rt.Trace.Enabled() {
			rt.Trace.Instant(workloadTrack(w.ID), "lifecycle", "submit",
				obs.Arg{Key: "type", Val: w.Type.String()},
				obs.Arg{Key: "best_effort", Val: w.BestEffort})
		}
		rt.manager.OnSubmit(t)
	})
	return t
}

// Task returns the task for a workload ID.
func (rt *Runtime) Task(id string) *Task { return rt.tasks[id] }

// Tasks returns all tasks in submission order. The slice is the runtime's
// live ordering — callers iterate it every tick and must not mutate it; it
// is valid until the next Submit.
func (rt *Runtime) Tasks() []*Task { return rt.ordered }

// Place establishes the task's placements. Any existing placements are kept
// (use it to add nodes); it fails atomically per node.
func (rt *Runtime) Place(t *Task, server *cluster.Server, alloc cluster.Alloc) error {
	caused := t.W.CausedPressure(server.Platform, alloc)
	pl, err := server.Place(t.W.ID, alloc, caused, t.W.BestEffort)
	if err != nil {
		return err
	}
	t.placements[server.ID] = pl
	t.serverIDs = insertID(t.serverIDs, server.ID)
	t.UsedPlatforms[server.Platform.Name] = true
	if tc := t.TotalCores(); tc > t.PeakCores {
		t.PeakCores = tc
	}
	if t.Status != StatusRunning {
		t.Status = StatusRunning
		t.StartAt = rt.Eng.Now()
	}
	if rt.Trace.Enabled() {
		rt.Trace.BeginAsync(spanID(t.W.ID, server.ID), serverTrack(server.ID), "placement", t.W.ID,
			obs.Arg{Key: "cores", Val: alloc.Cores},
			obs.Arg{Key: "mem_gb", Val: alloc.MemoryGB},
			obs.Arg{Key: "platform", Val: server.Platform.Name},
			obs.Arg{Key: "best_effort", Val: t.W.BestEffort})
	}
	return nil
}

// Resize changes a task's allocation on one server.
func (rt *Runtime) Resize(t *Task, server *cluster.Server, alloc cluster.Alloc) error {
	caused := t.W.CausedPressure(server.Platform, alloc)
	if err := server.Resize(t.W.ID, alloc, caused); err != nil {
		return err
	}
	if rt.Trace.Enabled() {
		rt.Trace.Instant(serverTrack(server.ID), "placement", "resize",
			obs.Arg{Key: "workload", Val: t.W.ID},
			obs.Arg{Key: "cores", Val: alloc.Cores},
			obs.Arg{Key: "mem_gb", Val: alloc.MemoryGB})
	}
	return nil
}

// RemoveNode releases the task's share of one server (scale-in).
func (rt *Runtime) RemoveNode(t *Task, serverID int) error {
	pl, ok := t.placements[serverID]
	if !ok {
		//lint:allow(hotalloc) error path: scale-in of a server the task is not on
		return fmt.Errorf("core: %s not on server %d", t.W.ID, serverID)
	}
	if err := pl.Server.Remove(t.W.ID); err != nil {
		return err
	}
	delete(t.placements, serverID)
	t.serverIDs = removeID(t.serverIDs, serverID)
	if rt.Trace.Enabled() {
		rt.Trace.EndAsync(spanID(t.W.ID, serverID), serverTrack(serverID), "placement", t.W.ID)
	}
	return nil
}

// Release frees all of the task's resources in ascending server order, so
// floating-point pressure bookkeeping is reproducible. It iterates the live
// serverIDs slice, advancing only past servers whose removal failed.
func (rt *Runtime) Release(t *Task) {
	for i := 0; i < len(t.serverIDs); {
		n := len(t.serverIDs)
		_ = rt.RemoveNode(t, t.serverIDs[i])
		if len(t.serverIDs) == n {
			i++ // removal failed; leave the placement and move on
		}
	}
}

// Evict displaces a best-effort task back to the queue and informs the
// manager.
func (rt *Runtime) Evict(id string) error {
	t, ok := rt.tasks[id]
	if !ok {
		return fmt.Errorf("core: evict of unknown task %s", id)
	}
	if !t.W.BestEffort {
		return fmt.Errorf("core: refusing to evict non-best-effort task %s", id)
	}
	rt.Release(t)
	t.Status = StatusQueued
	if rt.Trace.Enabled() {
		rt.Trace.Instant(workloadTrack(id), "lifecycle", "evict")
		rt.Trace.Registry().Counter("evictions_total", "best-effort evictions").Inc()
	}
	rt.manager.OnEvicted(t)
	return nil
}

// nodesOf assembles the perfmodel view of the task's current allocation.
// It allocates per call by design: the SLO engine's fan-out workers call
// TrueRate concurrently, so a runtime-owned scratch buffer would race.
func (rt *Runtime) nodesOf(t *Task) []perfmodel.NodeAlloc {
	//lint:allow(hotalloc) per-call by design: concurrent SLO fan-out callers rule out shared scratch
	nodes := make([]perfmodel.NodeAlloc, 0, len(t.serverIDs))
	for _, id := range t.serverIDs {
		pl := t.placements[id]
		if !pl.Server.Up() {
			// Crashed but not yet detected: the placement is still on the
			// books, but the machine does no work.
			continue
		}
		//lint:allow(hotalloc) append within capacity preallocated to the allocation width
		nodes = append(nodes, perfmodel.NodeAlloc{
			Platform: pl.Server.Platform,
			Alloc:    pl.Alloc,
			Pressure: pl.Server.PressureOn(t.W.ID),
		})
	}
	return nodes
}

// TrueRate returns the task's current true work rate (batch) given live
// interference.
func (rt *Runtime) TrueRate(t *Task) float64 {
	return t.W.JobRate(rt.nodesOf(t))
}

// TrueCapacityQPS returns a service's current true capacity.
func (rt *Runtime) TrueCapacityQPS(t *Task) float64 {
	return t.W.CapacityQPS(rt.nodesOf(t))
}

// MeasuredPerf returns a noisy observation of current performance in the
// task's own metric: work rate for batch/single-node, QPS-at-QoS for
// services. This is what managers see.
func (rt *Runtime) MeasuredPerf(t *Task) float64 {
	var v float64
	if t.W.Type.Class() == perfmodel.LatencyCritical {
		capQPS := rt.TrueCapacityQPS(t)
		bound := t.W.Target.LatencyUS
		if bound <= 0 {
			bound = t.W.Genome.ServiceUS * 4
		}
		v = t.W.Genome.QPSAtQoS(capQPS, bound)
	} else {
		v = rt.TrueRate(t)
	}
	return rt.measureRNG.Jitter(v, t.W.Genome.NoiseCV)
}

// ProgressFraction returns the fraction of a batch workload completed.
// Frameworks report completion percentage, so managers may observe it.
func (rt *Runtime) ProgressFraction(t *Task) float64 {
	if t.W.Genome.Work <= 0 {
		return 0
	}
	f := t.Progress / t.W.Genome.Work
	if f > 1 {
		f = 1
	}
	return f
}

// OfferedLoad returns the service's current offered QPS.
func (rt *Runtime) OfferedLoad(t *Task) float64 {
	if t.Load == nil {
		return 0
	}
	return t.Load.Load(rt.Eng.Now())
}

// tick advances every running task by one interval.
func (rt *Runtime) tick(now float64) {
	t0 := rt.Prof.Begin()
	defer rt.Prof.End(prof.SubRuntime, t0)
	dt := rt.opts.TickSecs
	for _, t := range rt.ordered {
		if t.Status != StatusRunning {
			continue
		}
		switch t.W.Type.Class() {
		case perfmodel.LatencyCritical:
			rt.tickService(t, now)
		default:
			rt.tickBatch(t, now, dt)
		}
	}
	if rt.manager != nil {
		rt.manager.OnTick(now)
	}
	for _, fn := range rt.tickListeners {
		fn(now)
	}
}

// TickSecs returns the monitoring tick granularity.
func (rt *Runtime) TickSecs() float64 { return rt.opts.TickSecs }

// AddTickListener subscribes fn to the end of every tick sweep. Listeners
// run after the manager's OnTick, in registration order, on the sim
// goroutine.
func (rt *Runtime) AddTickListener(fn func(now float64)) {
	rt.tickListeners = append(rt.tickListeners, fn)
}

func (rt *Runtime) tickBatch(t *Task, now, dt float64) {
	rate := rt.TrueRate(t)
	t.Progress += rate * dt
	t.RateSeries.Add(now, rate)
	for _, id := range t.serverIDs {
		pl := t.placements[id]
		pl.ActiveCores = t.W.Genome.UsefulCores(pl.Alloc, 1.0)
		if cfg := t.W.Config; cfg != nil && float64(cfg.MappersPerNode) < pl.ActiveCores {
			pl.ActiveCores = float64(cfg.MappersPerNode)
		}
		pl.ActiveMemGB = t.W.Genome.UsefulMemGB(pl.Alloc)
		pl.ActiveDisk = pl.Caused[cluster.ResDiskIO]
	}
	if t.Progress >= t.W.Genome.Work {
		t.Status = StatusCompleted
		t.DoneAt = now
		rt.Release(t)
		if rt.Trace.Enabled() {
			rt.Trace.Instant(workloadTrack(t.W.ID), "lifecycle", "complete",
				obs.Arg{Key: "runtime_secs", Val: now - t.StartAt})
			rt.Trace.Registry().Counter("batch_completions_total", "batch workloads completed").Inc()
		}
		rt.manager.OnComplete(t)
	}
}

func (rt *Runtime) tickService(t *Task, now float64) {
	lambda := rt.OfferedLoad(t)
	capQPS := rt.TrueCapacityQPS(t)
	achieved := t.W.Genome.AchievedQPS(lambda, capQPS)
	_, p99 := t.W.Genome.Latency(lambda, capQPS)

	t.LastOfferedQPS = lambda
	t.LastAchievedQPS = achieved
	t.LastP99US = p99
	t.QPSSeries.Add(now, achieved)
	// Skip the placement warm-up: latency percentiles should describe the
	// served steady state, not the seconds before capacity exists. The
	// streaming histogram is bounded-memory, so no sample cap is needed.
	if now-t.StartAt > 600 {
		t.LatencyDist.Add(p99)
	}

	bound := t.W.Target.LatencyUS
	met := 0.0
	if bound <= 0 || p99 <= bound {
		met = 1.0
	}
	if lambda > capQPS && lambda > 0 {
		met = math.Min(met, capQPS/lambda)
	}
	t.QoSFrac.Add(now, met)
	if rt.Trace.Enabled() {
		// Emit only the met<->miss edges, not one event per tick.
		state := int8(1)
		if met < 0.95 {
			state = -1
		}
		if state != t.qosState {
			name := "qos-met"
			if state < 0 {
				name = "qos-miss"
				rt.Trace.Registry().Counter("qos_misses_total", "QoS met->miss transitions").Inc()
			}
			rt.Trace.Instant(workloadTrack(t.W.ID), "qos", name,
				obs.Arg{Key: "met_frac", Val: met},
				obs.Arg{Key: "offered_qps", Val: lambda},
				obs.Arg{Key: "capacity_qps", Val: capQPS},
				obs.Arg{Key: "p99_us", Val: p99})
			t.qosState = state
		}
	}

	loadFactor := 0.0
	if capQPS > 0 {
		loadFactor = math.Min(1, lambda/capQPS)
	}
	for _, id := range t.serverIDs {
		pl := t.placements[id]
		pl.ActiveCores = t.W.Genome.UsefulCores(pl.Alloc, loadFactor)
		pl.ActiveMemGB = t.W.Genome.UsefulMemGB(pl.Alloc)
		pl.ActiveDisk = pl.Caused[cluster.ResDiskIO] * loadFactor
	}
}

// sample records per-server utilization.
func (rt *Runtime) sample(now float64) {
	t0 := rt.Prof.Begin()
	defer rt.Prof.End(prof.SubRuntime, t0)
	if n := len(rt.Cl.Servers); cap(rt.cpuBuf) < n {
		rt.cpuBuf = make([]float64, n) //lint:allow(hotalloc) grow-once scratch: steady-state sweeps reuse it
		rt.memBuf = make([]float64, n) //lint:allow(hotalloc) grow-once scratch: steady-state sweeps reuse it
		rt.dskBuf = make([]float64, n) //lint:allow(hotalloc) grow-once scratch: steady-state sweeps reuse it
	}
	n := len(rt.Cl.Servers)
	cpu, mem, dsk := rt.cpuBuf[:n], rt.memBuf[:n], rt.dskBuf[:n]
	allocCores, usedCores := 0.0, 0.0
	for i, s := range rt.Cl.Servers {
		cpu[i] = s.CPUUtilization()
		mem[i] = s.MemUtilization()
		dsk[i] = s.DiskUtilization()
		allocCores += float64(s.UsedCores())
		usedCores += cpu[i] * float64(s.Platform.Cores)
	}
	rt.CPUHeat.Sample(now, cpu)
	rt.MemHeat.Sample(now, mem)
	rt.DiskHeat.Sample(now, dsk)
	total := float64(rt.Cl.TotalCores())
	rt.AllocSeries.Add(now, allocCores/total)
	rt.UsedSeries.Add(now, usedCores/total)
	if rt.Trace.Enabled() {
		rt.Trace.Counter("cluster", "util", "cores",
			obs.Arg{Key: "alloc", Val: allocCores / total},
			obs.Arg{Key: "used", Val: usedCores / total})
	}
}

// Run advances the simulation until the given virtual time.
func (rt *Runtime) Run(until float64) { rt.Eng.Run(until) }

// Stop cancels the periodic loops (call when a scenario ends to let the
// event queue drain).
func (rt *Runtime) Stop() {
	if rt.stopTick != nil {
		rt.stopTick()
	}
	if rt.stopSample != nil {
		rt.stopSample()
	}
	if rt.stopHB != nil {
		rt.stopHB()
		rt.stopHB = nil
	}
}
