package core

import (
	"quasar/internal/cluster"
)

// Resource partitioning (§4.4): when hardware isolation mechanisms exist —
// cache partitioning (e.g. CAT) for the cache hierarchy, rate limiting at
// the NIC — Quasar determines their settings the same way it determines
// core counts: it enables isolation on servers where a resident's
// interference tolerance is violated in a partitionable resource, which
// makes colocations possible that plain interference-aware placement would
// have to avoid.

// partitionable lists the resources hardware isolation can attenuate and
// the fraction of cross-workload pressure it removes.
var partitionable = map[cluster.Resource]float64{
	cluster.ResLLC:   0.7, // way-partitioned last-level cache
	cluster.ResL2:    0.5, // core clustering
	cluster.ResNetBW: 0.8, // NIC rate limiting
}

// managePartitions reconfigures isolation on every server with more than
// one resident: enabled for a partitionable resource when some resident's
// tolerated intensity is exceeded there, disabled when no longer needed
// (isolation is not free — it caps what a single tenant may use — so it is
// applied only where required).
func (q *Quasar) managePartitions() {
	for _, srv := range q.rt.Cl.Servers {
		var want cluster.ResVec
		// Any resident can be contended — by colocated workloads or by
		// injected probes.
		if srv.NumPlacements() >= 1 {
			for _, pl := range srv.Placements() {
				if pl.BestEffort {
					continue
				}
				st, ok := q.state[pl.WorkloadID]
				if !ok {
					continue
				}
				raw := q.rawPressureOn(srv, pl.WorkloadID)
				for r, frac := range partitionable {
					if raw[r] > st.est.Tol[r] {
						if frac > want[r] {
							want[r] = frac
						}
					}
				}
			}
		}
		if want != srv.Isolation() {
			srv.SetIsolation(want)
		}
	}
}

// rawPressureOn computes the pressure a workload would experience with no
// isolation configured (the quantity partitioning decisions are based on).
func (q *Quasar) rawPressureOn(srv *cluster.Server, workloadID string) cluster.ResVec {
	iso := srv.Isolation()
	p := srv.PressureOn(workloadID)
	for r := range p {
		if iso[r] < 1 {
			p[r] /= 1 - iso[r]
		}
	}
	return p
}
