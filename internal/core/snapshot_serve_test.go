package core_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"quasar/internal/chaos"
	"quasar/internal/core"
	"quasar/internal/obs"
	"quasar/internal/serve"
)

// TestServeSnapshotMidDisplacement extends the core failover-under-faults
// contract to the serve journal path: a journaled run with a chaos crash
// snapshots while the displacement episode is still open AND new submissions
// keep arriving through the journal after the snapshot boundary. The
// snapshot must carry the open episode, and two standbys restoring it and
// applying the journal tail must land byte-identically.
func TestServeSnapshotMidDisplacement(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "run.journal")
	snapshot := filepath.Join(dir, "run.snapshot.json")
	// A small cluster packed with multi-node work, so the AnyServer crash at
	// t=250 displaces placements; the detector (period 10, dead after 4
	// missed beats) fences the server by ~t=290, and the t=300 snapshot
	// lands inside the open recovery episode.
	cfg := serve.Config{
		Servers: 8, Seed: 1,
		Faults: &chaos.Plan{Name: "serve-crash", Faults: []chaos.FaultSpec{
			{Kind: chaos.KindCrash, Server: chaos.AnyServer, At: 250, DurationSecs: 600},
		}},
	}
	script := []serve.ScriptEntry{
		{At: 1, Submit: &serve.SubmitRequest{Type: "memcached", Family: -1, QPS: 7000, LatencyUS: 600, MaxNodes: 4}},
		{At: 3, Submit: &serve.SubmitRequest{Type: "webserver", Family: -1, QPS: 8000, LatencyUS: 900, MaxNodes: 4}},
		{At: 6, Submit: &serve.SubmitRequest{Type: "hadoop", Family: 1, MaxNodes: 4, TargetSlack: 1.4}},
		{At: 10, Submit: &serve.SubmitRequest{Type: "single-node", Family: -1, BestEffort: true}},
		{At: 12, Submit: &serve.SubmitRequest{Type: "single-node", Family: -1, BestEffort: true}},
		// The journal keeps admitting after the crash (t=250) and after the
		// snapshot boundary (t=300): the standby applies these from the tail.
		{At: 320, Submit: &serve.SubmitRequest{Type: "single-node", Family: -1, BestEffort: true}},
		{At: 400, Submit: &serve.SubmitRequest{Type: "spark", Family: 0, MaxNodes: 3, TargetSlack: 1.5}},
	}
	if _, err := serve.BuildJournal(journal, cfg, 500, script); err != nil {
		t.Fatal(err)
	}

	if _, err := serve.Replay(journal, serve.ReplayOptions{SnapshotPath: snapshot, SnapshotEverySecs: 300}); err != nil {
		t.Fatal(err)
	}
	snap, err := serve.LoadSnapshot(snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SimTime != 300 { //lint:allow(floatcmp) cadence pins an exact boundary
		t.Fatalf("snapshot at t=%g, want mid-run t=300", snap.SimTime)
	}

	// The manager snapshot must carry the open displacement episode: tasks
	// flagged displaced and non-zero recovery counters.
	var mgr core.QuasarSnapshot
	if err := json.Unmarshal(snap.Manager, &mgr); err != nil {
		t.Fatal(err)
	}
	if mgr.Recovery.Displaced == 0 {
		t.Fatalf("no displacement recorded by snapshot time: %+v", mgr.Recovery)
	}
	openEpisode := false
	for _, ts := range mgr.Tasks {
		if ts.Displaced {
			openEpisode = true
		}
	}
	if !openEpisode {
		t.Fatal("snapshot carries no open displacement episode (all tasks already readmitted); move the snapshot boundary")
	}

	// Two standbys performing the identical take-over must agree byte for
	// byte — trace and final manager state.
	takeOver := func(name string) ([]byte, *serve.ReplayResult) {
		tracePath := filepath.Join(dir, name+".jsonl")
		sink, err := obs.NewStreamSink(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		res, err := serve.Replay(journal, serve.ReplayOptions{
			Sinks: []obs.Sink{sink}, Snapshot: snap, Failover: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		trace, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		return trace, res
	}
	traceA, resA := takeOver("standby-a")
	traceB, resB := takeOver("standby-b")
	if !resA.SnapshotVerified || resA.FailoverAt != 300 { //lint:allow(floatcmp) exact boundary
		t.Fatalf("failover did not happen at the snapshot boundary: verified=%v at t=%g", resA.SnapshotVerified, resA.FailoverAt)
	}
	if resA.Applied != len(script) {
		t.Fatalf("standby applied %d entries, want all %d (post-snapshot tail included)", resA.Applied, len(script))
	}
	if !bytes.Equal(traceA, traceB) {
		t.Fatalf("two identical mid-episode take-overs diverged (%d vs %d trace bytes)", len(traceA), len(traceB))
	}
	if !bytes.Equal(resA.ManagerState, resB.ManagerState) {
		t.Fatal("two identical mid-episode take-overs ended with different manager state")
	}
}
