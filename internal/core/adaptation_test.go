package core

import (
	"testing"

	"quasar/internal/cluster"
	"quasar/internal/loadgen"
	"quasar/internal/workload"
)

// TestFeedbackLoopCorrectsPlatformMisestimate: when a job lands on an
// overrated platform, the measured/estimated deviation must flow back into
// the estimates (§3.2's feedback loop) and a subsequent reschedule must
// move it to genuinely better servers.
func TestFeedbackLoopCorrectsPlatformMisestimate(t *testing.T) {
	rt, q, u := quasarFixture(t, 101)
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: 0, MaxNodes: 4, TargetSlack: 1.0,
		Dataset: workload.Dataset{Name: "fb", SizeGB: 20, WorkMult: 3, MemMult: 1}})
	task := rt.Submit(w, 0, nil)
	rt.Run(w.Target.CompletionSecs * 2)
	rt.Stop()
	if task.Status != StatusCompleted {
		t.Fatalf("job not completed: %v", task.Status)
	}
	elapsed := task.DoneAt - task.SubmitAt
	// With the target set to the oracle best (no slack), landing within
	// 40% requires the feedback/reschedule machinery to work.
	if elapsed > 1.4*w.Target.CompletionSecs {
		t.Fatalf("%.0fs vs oracle-best target %.0fs: feedback loop ineffective",
			elapsed, w.Target.CompletionSecs)
	}
	_ = q
}

// TestPhaseChangeTriggersReclassification: halving a running workload's
// rate must produce a reactive phase event.
func TestPhaseChangeTriggersReclassification(t *testing.T) {
	if testing.Short() {
		t.Skip("phase-change scenario runs ~5s under -race")
	}
	rt, q, u := quasarFixture(t, 103)
	w := u.New(workload.Spec{Type: workload.SingleNode, Family: -1, TargetSlack: 1.2})
	w.Genome.Work = 1e9
	rt.Submit(w, 0, nil)
	rt.Run(600)
	before := len(q.PhaseEvents)
	rt.Eng.Schedule(700, func() { w.Genome.BaseRate *= 0.4 })
	rt.Run(2400)
	rt.Stop()
	found := false
	for _, ev := range q.PhaseEvents[before:] {
		if ev.TaskID == w.ID && ev.Source == "reactive" && ev.Time >= 700 {
			found = true
		}
	}
	if !found {
		t.Fatal("phase change not detected reactively")
	}
}

// TestBestEffortAvoidsSensitiveResidents: Quasar must not pack fillers onto
// servers whose residents tolerate no interference.
func TestBestEffortAvoidsSensitiveResidents(t *testing.T) {
	rt, q, u := quasarFixture(t, 107)
	svc := u.New(workload.Spec{Type: workload.Memcached, Family: 0, MaxNodes: 4})
	rt.Submit(svc, 0, loadgen.Flat{QPS: 0.8 * svc.Target.QPS})
	rt.Run(300)
	// Make the service hypersensitive in Quasar's own estimates.
	if st := q.state[svc.ID]; st != nil {
		for r := range st.est.Tol {
			st.est.Tol[r] = 0.01
		}
	}
	svcServers := map[int]bool{}
	task := rt.Task(svc.ID)
	for _, id := range task.Servers() {
		svcServers[id] = true
	}
	if len(svcServers) == 0 {
		t.Fatal("service not placed")
	}
	for i := 0; i < 30; i++ {
		be := u.New(workload.Spec{Type: workload.SingleNode, Family: -1, BestEffort: true})
		be.Genome.Work = 1e9
		rt.Submit(be, 310+float64(i), nil)
	}
	rt.Run(600)
	rt.Stop()
	for _, other := range rt.Tasks() {
		if !other.W.BestEffort || other.Status != StatusRunning {
			continue
		}
		for _, id := range other.Servers() {
			if svcServers[id] {
				t.Fatalf("filler %s colocated with a zero-tolerance service", other.W.ID)
			}
		}
	}
}

// TestReclaimReturnsIdleCores: a service whose load collapses must shrink.
func TestReclaimReturnsIdleCores(t *testing.T) {
	if testing.Short() {
		t.Skip("reclaim scenario runs ~3s under -race")
	}
	rt, _, u := quasarFixture(t, 109)
	w := u.New(workload.Spec{Type: workload.Webserver, Family: -1, MaxNodes: 8})
	task := rt.Submit(w, 0, loadgen.Spike{
		Base: 0.1 * w.Target.QPS, Peak: w.Target.QPS, Start: 60, Duration: 1200, RampSecs: 60})
	rt.Run(1300)
	peak := task.TotalCores()
	rt.Run(7200)
	rt.Stop()
	if task.TotalCores() >= peak && peak > 4 {
		t.Fatalf("no reclaim after the spike: %d -> %d cores", peak, task.TotalCores())
	}
}

// TestAdjustmentCooldownPreventsFlapping: allocation changes are spaced by
// the cooldown even under persistent deviation.
func TestAdjustmentCooldownPreventsFlapping(t *testing.T) {
	if testing.Short() {
		t.Skip("cooldown scenario runs ~3s under -race")
	}
	rt, _, u := quasarFixture(t, 113)
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: 0, MaxNodes: 4, TargetSlack: 1.0,
		Dataset: workload.Dataset{Name: "cool", SizeGB: 20, WorkMult: 3, MemMult: 1}})
	task := rt.Submit(w, 0, nil)
	// Count allocation-change events by sampling every tick.
	changes, last := 0, -1
	stop := rt.Eng.Ticker(30, 5, func(now float64) {
		if c := task.TotalCores(); c != last {
			changes++
			last = c
		}
	})
	rt.Run(w.Target.CompletionSecs)
	stop()
	rt.Stop()
	// With a 30s cooldown over the job's lifetime, changes are bounded.
	maxChanges := int(w.Target.CompletionSecs/adjustCooldownSecs) + 4
	if changes > maxChanges {
		t.Fatalf("%d allocation changes in %.0fs (cooldown %ds)",
			changes, w.Target.CompletionSecs, int(adjustCooldownSecs))
	}
}

// TestEvictionRequeuesBestEffort: fillers displaced by a primary workload
// must come back once capacity frees up.
func TestEvictionRequeuesBestEffort(t *testing.T) {
	if testing.Short() {
		t.Skip("eviction scenario runs ~3s under -race")
	}
	rt, _, u := quasarFixture(t, 127)
	var fillers []*Task
	for i := 0; i < 40; i++ {
		be := u.New(workload.Spec{Type: workload.SingleNode, Family: -1, BestEffort: true})
		be.Genome.Work = 1e9
		fillers = append(fillers, rt.Submit(be, float64(i), nil))
	}
	rt.Run(120)
	running := 0
	for _, f := range fillers {
		if f.Status == StatusRunning {
			running++
		}
	}
	if running < 30 {
		t.Fatalf("only %d fillers running before the primary", running)
	}
	// A big primary job displaces some of them...
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: 0, MaxNodes: 8, TargetSlack: 1.0,
		Dataset: workload.Dataset{Name: "ev", SizeGB: 50, WorkMult: 2, MemMult: 1}})
	primary := rt.Submit(w, 130, nil)
	rt.Run(w.Target.CompletionSecs * 2)
	rt.Stop()
	if primary.Status != StatusCompleted {
		t.Fatalf("primary not completed: %v", primary.Status)
	}
	// ...and after it completes, fillers are running again.
	running = 0
	for _, f := range fillers {
		if f.Status == StatusRunning {
			running++
		}
	}
	if running < 30 {
		t.Fatalf("only %d fillers running after the primary finished", running)
	}
}

var _ = cluster.Alloc{}
