package core

import (
	"testing"

	"quasar/internal/workload"
)

// TestCostCapLimitsAllocation: a workload with a tight cost cap must get a
// cheaper (smaller or lower-end) allocation than the same workload without
// one — the §4.4 cost-target extension.
func TestCostCapLimitsAllocation(t *testing.T) {
	if testing.Short() {
		t.Skip("cost-cap scenario runs ~3s under -race")
	}
	run := func(cap float64) (cores int, plats map[string]bool) {
		rt, _, u := quasarFixture(t, 311)
		w := u.New(workload.Spec{Type: workload.Hadoop, Family: 0, MaxNodes: 4, TargetSlack: 1.0,
			Dataset:        workload.Dataset{Name: "cost", SizeGB: 20, WorkMult: 8, MemMult: 1},
			MaxCostPerHour: cap})
		task := rt.Submit(w, 0, nil)
		rt.Run(400)
		rt.Stop()
		plats = map[string]bool{}
		for _, id := range task.Servers() {
			plats[rt.Cl.Servers[id].Platform.Name] = true
		}
		return task.TotalCores(), plats
	}
	unlimitedCores, _ := run(0)
	if unlimitedCores == 0 {
		t.Fatal("unlimited workload got no allocation")
	}
	// Price the cap at roughly a third of what the unlimited allocation
	// costs (cores * ~0.03*CorePerf(~2) per core-hour).
	capped, _ := run(float64(unlimitedCores) * 0.03 * 2.1 / 3)
	if capped == 0 {
		t.Fatal("capped workload got no allocation at all")
	}
	if capped >= unlimitedCores {
		t.Fatalf("cost cap did not shrink the allocation: %d vs %d cores", capped, unlimitedCores)
	}
}
