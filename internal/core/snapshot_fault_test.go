package core

import (
	"bytes"
	"reflect"
	"testing"

	"quasar/internal/chaos"
	"quasar/internal/cluster"
	"quasar/internal/loadgen"
	"quasar/internal/obs"
	"quasar/internal/workload"
)

// midFaultRun executes one full failover-under-faults run: a traced Quasar
// cluster with the detector on and a fault plan armed, a service partially
// displaced by a crash, a master failover through snapshot bytes while the
// episode is still open and a server is still dead, then continuation
// through more injected faults. It returns the snapshot bytes, the full
// JSONL trace, and the recovery stats at the horizon.
func midFaultRun(t *testing.T) ([]byte, []byte, RecoveryStats) {
	t.Helper()
	rt, q, u := quasarFixture(t, 97)
	tr := obs.New(rt.Eng.Now)
	q.SetTracer(tr)
	rt.EnableFailureDetector(DetectorOptions{PeriodSecs: 5, SuspectMissed: 2, DeadMissed: 4})
	plan := &chaos.Plan{Name: "mid-fault", Faults: []chaos.FaultSpec{
		{Kind: chaos.KindSlowdown, Server: chaos.AnyServer, At: 200, DurationSecs: 400, Severity: 0.5},
		{Kind: chaos.KindPartition, Server: chaos.AnyServer, At: 600, DurationSecs: 200},
		{Kind: chaos.KindCrash, Server: chaos.AnyServer, At: 900, DurationSecs: 600},
	}}
	inj, err := chaos.NewInjector(rt.Eng, rt, plan, rt.RNG.Stream("chaos"))
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()

	svc := u.New(workload.Spec{Type: workload.Memcached, Family: -1, MaxNodes: 4})
	svcTask := rt.Submit(svc, 0, loadgen.Flat{QPS: svc.Target.QPS})
	job := u.New(workload.Spec{Type: workload.Hadoop, Family: 0, MaxNodes: 4, TargetSlack: 1.4,
		Dataset: workload.Dataset{Name: "mf", SizeGB: 20, WorkMult: 2, MemMult: 1}})
	rt.Submit(job, 5, nil)

	// Crash one of the service's servers; the detector declares it dead
	// ~20s later and fences, opening a partial-displacement episode.
	rt.Run(250)
	if svcTask.NumNodes() == 0 {
		t.Fatal("service never placed")
	}
	crashed := svcTask.Servers()[0]
	rt.CrashServer(crashed)
	// Detection fences at t=270 (4 missed beats); failing over at 272 lands
	// inside the open recovery episode, before the next monitor tick can
	// close it.
	rt.Run(272)

	if rt.Cl.Servers[crashed].Det() != cluster.DetDead {
		t.Fatalf("server %d not declared dead by failover time", crashed)
	}
	preRec := q.Recovery()
	if preRec.Displaced < 1 {
		t.Fatalf("no displacement in flight at failover: %+v", preRec)
	}

	data, err := q.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Failover: a standby restores the snapshot and takes over the same
	// runtime, dead server and open recovery episode included.
	standby := NewQuasar(rt, q.opts)
	if err := standby.UnmarshalSnapshot(data); err != nil {
		t.Fatal(err)
	}
	standby.SetTracer(tr)
	if got := standby.Recovery(); !reflect.DeepEqual(got, preRec) {
		t.Fatalf("recovery stats did not survive the snapshot:\n pre:  %+v\n post: %+v", preRec, got)
	}
	redata, err := standby.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, redata) {
		t.Fatalf("snapshot not idempotent across restore: %d vs %d bytes", len(data), len(redata))
	}
	rt.SetManager(standby)

	rt.Run(2200)
	rt.Stop()
	if got := inj.Stats().Total(); got != 3 {
		t.Fatalf("injector applied %d faults, want all 3 (continuation broken?)", got)
	}

	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return data, buf.Bytes(), standby.Recovery()
}

// TestSnapshotMidFaultRoundTrip snapshots the manager while a server is dead
// and a displaced workload is mid-recovery, restores into a standby, and
// checks the whole run — failover included — is deterministic: a second
// identical run produces byte-identical snapshot bytes and a byte-identical
// subsequent trace.
func TestSnapshotMidFaultRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the failover-under-faults scenario twice")
	}
	snapA, traceA, recA := midFaultRun(t)
	snapB, traceB, recB := midFaultRun(t)
	if !bytes.Equal(snapA, snapB) {
		t.Error("mid-fault snapshot bytes differ between identical runs")
	}
	if !bytes.Equal(traceA, traceB) {
		t.Error("post-failover trace differs between identical runs")
	}
	if !reflect.DeepEqual(recA, recB) {
		t.Errorf("recovery stats diverged: %+v vs %+v", recA, recB)
	}
	if !bytes.Contains(snapA, []byte(`"displaced":true`)) {
		t.Error("snapshot does not carry the in-flight displacement episode")
	}
}
