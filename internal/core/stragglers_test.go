package core

import (
	"testing"

	"quasar/internal/sim"
)

func runStudy(t *testing.T, seed int64) map[string]StragglerResult {
	t.Helper()
	rng := sim.NewRNG(seed)
	detectors := []StragglerDetector{
		NewHadoopDetector(30),
		NewLATEDetector(20),
		NewQuasarDetector(5, rng.Stream("probe")),
	}
	res := RunStragglerStudy(40, 0.15, 0.25, detectors, rng.Stream("study"))
	out := map[string]StragglerResult{}
	for _, r := range res {
		out[r.Detector] = r
	}
	return out
}

func TestStragglerDetectorsFindStragglers(t *testing.T) {
	res := runStudy(t, 7)
	for name, r := range res {
		if r.DetectedFrac < 0.8 {
			t.Errorf("%s detected only %.0f%% of stragglers", name, r.DetectedFrac*100)
		}
		if r.MeanDetectionSecs <= 0 {
			t.Errorf("%s has non-positive detection latency", name)
		}
	}
}

func TestQuasarDetectsEarlier(t *testing.T) {
	// §4.3: Quasar detects stragglers 19% earlier than Hadoop and 8%
	// earlier than LATE. Verify the ordering and rough magnitudes over
	// several seeds.
	qBeatsH, qBeatsL := 0, 0
	trials := 5
	var hSum, lSum, qSum float64
	for seed := int64(1); seed <= int64(trials); seed++ {
		res := runStudy(t, seed)
		h, l, q := res["hadoop"], res["late"], res["quasar"]
		hSum += h.MeanDetectionSecs
		lSum += l.MeanDetectionSecs
		qSum += q.MeanDetectionSecs
		if q.MeanDetectionSecs < h.MeanDetectionSecs {
			qBeatsH++
		}
		if q.MeanDetectionSecs < l.MeanDetectionSecs {
			qBeatsL++
		}
	}
	if qBeatsH < trials-1 {
		t.Errorf("quasar beat hadoop in only %d/%d trials (means: q=%.1f h=%.1f)",
			qBeatsH, trials, qSum/float64(trials), hSum/float64(trials))
	}
	if qBeatsL < trials-1 {
		t.Errorf("quasar beat LATE in only %d/%d trials (means: q=%.1f l=%.1f)",
			qBeatsL, trials, qSum/float64(trials), lSum/float64(trials))
	}
	// LATE should itself beat stock Hadoop.
	if lSum >= hSum {
		t.Errorf("LATE (%.1f) not earlier than Hadoop (%.1f)", lSum/float64(trials), hSum/float64(trials))
	}
}

func TestStragglerNoFalsePositivesOnHealthyJob(t *testing.T) {
	rng := sim.NewRNG(11)
	detectors := []StragglerDetector{
		NewHadoopDetector(30),
		NewLATEDetector(20),
		NewQuasarDetector(5, rng.Stream("probe")),
	}
	res := RunStragglerStudy(40, 0, 1.0, detectors, rng.Stream("study"))
	for _, r := range res {
		if r.FalsePositives > 3 {
			t.Errorf("%s flagged %d healthy tasks", r.Detector, r.FalsePositives)
		}
	}
}
