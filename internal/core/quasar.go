package core

import (
	"fmt"
	"math"
	"sort"

	"quasar/internal/classify"
	"quasar/internal/cluster"
	"quasar/internal/obs"
	"quasar/internal/obs/prof"
	"quasar/internal/perfmodel"
	"quasar/internal/sched"
	"quasar/internal/sim"
	"quasar/internal/workload"
)

// QuasarOptions tunes the Quasar manager.
type QuasarOptions struct {
	// MaxNodesPerJob bounds scale-out per workload.
	MaxNodesPerJob int
	// Sched configures the greedy scheduler.
	Sched sched.Options
	// Classify configures the classification engine.
	Classify classify.Options
	// ProactivePeriodSecs is the proactive phase-probe period (600s = 10
	// minutes in the paper); 0 disables proactive probing.
	ProactivePeriodSecs float64
	// ProactiveFraction is the share of active workloads sampled per probe
	// round (0.2 in the paper).
	ProactiveFraction float64
	// DisableAdaptation freezes allocations after initial placement
	// (ablation knob).
	DisableAdaptation bool

	// EnablePartitioning lets Quasar configure hardware isolation (cache
	// partitioning, NIC rate limiting) on servers where residents'
	// tolerances are violated in partitionable resources (§4.4 extension;
	// off by default, as in the paper).
	EnablePartitioning bool
}

// DefaultQuasarOptions returns the paper's settings.
func DefaultQuasarOptions() QuasarOptions {
	return QuasarOptions{
		MaxNodesPerJob:      16,
		Sched:               sched.DefaultOptions(),
		Classify:            classify.DefaultOptions(),
		ProactivePeriodSecs: 600,
		ProactiveFraction:   0.2,
	}
}

// taskState is Quasar's per-workload knowledge.
type taskState struct {
	est         *classify.Estimates
	workEst     float64 // estimated total work (batch), from profiling
	deadline    float64 // absolute completion deadline (batch)
	below       int     // consecutive monitoring intervals under target
	stalled     int     // consecutive below-band adjustments with no growth landed
	phaseSig    int     // phase-change signals observed
	lastAdjust  float64 // time of the last allocation adjustment
	lastResched float64 // time of the last full reschedule
	lastReclass float64 // time of the last reclassification
	lastProbe   float64 // time of the last proactive interference probe

	// Offered-load trend (latency-critical workloads): the last observation
	// and its time, kept by the monitor so needPerf can provision for the
	// load expected one adjustment cooldown ahead instead of chasing a
	// rising curve from behind.
	lastOffered float64
	offeredAt   float64

	// Displacement episode (failure recovery): set when a server death took
	// at least one of the workload's nodes, cleared when capacity is
	// restored. reprofiled tracks whether a reclassification happened
	// mid-episode (the recovery path is supposed to avoid it).
	displaced   bool
	displacedAt float64
	reprofiled  bool
}

// Quasar is the paper's cluster manager: performance-target interface,
// classification-driven joint allocation/assignment, runtime monitoring
// with allocation adjustment and phase detection.
type Quasar struct {
	rt   *Runtime
	opts QuasarOptions

	engine *classify.Engine
	sch    *sched.Scheduler
	rng    *sim.RNG
	tracer *obs.Tracer

	state map[string]*taskState
	queue []*Task // admission-control wait queue (and evicted best-effort)

	// PhaseChangesDetected counts reclassifications triggered by
	// monitoring. PhaseEvents records each with its trigger source.
	PhaseChangesDetected int
	PhaseEvents          []PhaseEvent

	// recovery aggregates the failure-recovery policy's bookkeeping
	// (see recovery.go).
	recovery RecoveryStats
}

// PhaseEvent records one detected phase change / misclassification.
type PhaseEvent struct {
	Time   float64
	TaskID string
	// Source is "reactive" (performance deviation) or "proactive"
	// (interference probe sampling).
	Source string
}

// NewQuasar builds the manager over a runtime.
func NewQuasar(rt *Runtime, opts QuasarOptions) *Quasar {
	if opts.MaxNodesPerJob <= 0 {
		opts.MaxNodesPerJob = 16
	}
	q := &Quasar{
		rt:     rt,
		opts:   opts,
		rng:    rt.RNG.Stream("quasar"),
		state:  make(map[string]*taskState),
		engine: classify.NewEngine(rt.Cl.Platforms, opts.Classify, rt.RNG.Stream("classify")),
		sch:    sched.New(rt.Cl, opts.Sched),
	}
	return q
}

// Engine exposes the classification engine (for offline seeding by
// scenarios).
func (q *Quasar) Engine() *classify.Engine { return q.engine }

// SetTracer wires the tracer through every layer the manager owns: the
// runtime's lifecycle events, the scheduler's decision events, the
// classification engine's probes, and the manager's own action events.
func (q *Quasar) SetTracer(tr *obs.Tracer) {
	q.tracer = tr
	q.sch.Tracer = tr
	q.rt.SetTracer(tr)
	q.engine.SetTracer(tr)
	if reg := tr.Registry(); reg != nil {
		reg.Gauge("quasar_queue_len", "admission-control queue length",
			func() float64 { return float64(len(q.queue)) })
		reg.Gauge("quasar_phase_changes", "phase changes detected",
			func() float64 { return float64(q.PhaseChangesDetected) })
	}
}

// SetProfiler wires the engine self-profiler through the same layers
// SetTracer covers: the runtime's tick sweeps (and sim engine's queue core),
// the scheduler, and the classification engine.
func (q *Quasar) SetProfiler(p *prof.Profiler) {
	q.sch.Prof = p
	q.rt.SetProfiler(p)
	q.engine.SetProfiler(p)
}

// resVecSlice converts a pressure vector into the decision-payload form.
func resVecSlice(v cluster.ResVec) []float64 {
	out := make([]float64, len(v))
	copy(out, v[:])
	return out
}

// Name implements Manager.
func (q *Quasar) Name() string { return "quasar" }

// SeedLibrary adds offline-profiled workloads to the classification engine.
// Prober streams derive sequentially in library order; the dense profiling
// then fans out and the appends land in the same order, so the matrices are
// identical to one-at-a-time seeding.
func (q *Quasar) SeedLibrary(ws []*workload.Instance) {
	probers := make([]classify.Prober, len(ws))
	for i, w := range ws {
		probers[i] = classify.NewGroundTruthProber(w, q.rt.Cl.Platforms, q.rng.Stream("seed").Stream(w.ID))
	}
	q.engine.SeedOfflineMany(ws, probers)
}

// profilingDelay returns the simulated wall-clock cost of the sandboxed
// profiling runs (§3.4: 10-15s for small batch, up to ~5 min for stateful
// services).
func profilingDelay(w *workload.Instance) float64 {
	switch {
	case w.BestEffort:
		return 0
	case w.Type.Stateful():
		return 240 // state warm-up dominates
	case w.Type.Class() == perfmodel.Analytics:
		// A few map tasks to ~20% completion. Simulated job durations are
		// compressed relative to the paper's hours-long jobs, so the
		// profiling time is compressed proportionally.
		return 20
	case w.Type.Class() == perfmodel.LatencyCritical:
		return 15 // seconds of live traffic
	default:
		return 15
	}
}

// OnSubmit implements Manager: profile, classify, then jointly allocate and
// assign.
func (q *Quasar) OnSubmit(t *Task) {
	if t.W.BestEffort {
		if !q.placeBestEffort(t) {
			q.queue = append(q.queue, t)
		}
		return
	}
	t.Status = StatusProfiling
	delay := profilingDelay(t.W)
	q.rt.Eng.After(delay, func() { q.admit(t) })
}

// admit classifies and places a workload after profiling completes.
func (q *Quasar) admit(t *Task) {
	w := t.W
	st := &taskState{}
	prober := classify.NewGroundTruthProber(w, q.rt.Cl.Platforms, q.rng.Stream("probe/"+w.ID))
	st.est = q.engine.Classify(w, prober)

	if w.Type.Class() != perfmodel.LatencyCritical {
		// Work estimate from profiling progress-rate extrapolation (§3.2):
		// accurate to a few percent.
		st.workEst = q.rng.Stream("work/"+w.ID).Jitter(w.Genome.Work, 0.05)
	}
	if w.Type.Class() == perfmodel.Analytics {
		st.deadline = t.SubmitAt + w.Target.CompletionSecs
	}
	q.state[w.ID] = st

	if q.tracer.Enabled() {
		q.tracer.Instant("manager", "quasar", "admit", obs.Arg{Key: "decision", Val: obs.AdmitDecision{
			Workload: w.ID, Class: st.est.Class.String(), RefPerf: st.est.RefPerf,
			Beta: st.est.Beta(), Tol: resVecSlice(st.est.Tol), Caused: resVecSlice(st.est.Caused),
			WorkEst: st.workEst, Deadline: st.deadline,
		}})
	}
	if !q.tryPlace(t, st) {
		t.Status = StatusQueued
		q.queue = append(q.queue, t)
	}
}

// needPerf computes the performance the workload currently requires, in its
// own metric.
func (q *Quasar) needPerf(t *Task, st *taskState) float64 {
	now := q.rt.Eng.Now()
	switch t.W.Type.Class() {
	case perfmodel.Analytics:
		// The framework reports completion fraction; the profiling-derived
		// work estimate provides the scale.
		remWork := st.workEst * (1 - q.rt.ProgressFraction(t))
		if remWork <= 0 {
			return 0
		}
		remTime := st.deadline - now
		if remTime < 60 {
			remTime = 60 // past-due: allocate for max effort within bounds
		}
		return remWork / remTime
	case perfmodel.LatencyCritical:
		offered := q.rt.OfferedLoad(t)
		// Provision for where a rising load will be one adjustment cooldown
		// from now, not where it is: capacity added this interval is the
		// capacity serving the next one. Falling load is not projected —
		// reclaim goes through the conservative shrink path.
		if st.offeredAt > 0 && now > st.offeredAt {
			if slope := (offered - st.lastOffered) / (now - st.offeredAt); slope > 0 {
				offered += slope * adjustCooldownSecs
			}
		}
		floor := 0.15 * t.W.Target.QPS
		need := offered * 1.2
		if need < floor {
			need = floor
		}
		if cap := t.W.Target.QPS * 1.3; need > cap {
			need = cap
		}
		return need
	default:
		return t.W.Target.IPS
	}
}

// tryPlace runs the greedy scheduler and applies the assignment.
func (q *Quasar) tryPlace(t *Task, st *taskState) bool {
	return q.tryPlaceOpt(t, st, false)
}

// tryPlaceOpt is tryPlace with an explicit degraded-admission override:
// forcePartial waives the scheduler's minimum-fill admission check, used by
// the recovery path when the surviving cluster cannot meet full targets.
func (q *Quasar) tryPlaceOpt(t *Task, st *taskState, forcePartial bool) bool {
	maxNodes := q.opts.MaxNodesPerJob
	if !t.W.Type.Distributed() {
		maxNodes = 1
	}
	need := q.needPerf(t, st)
	if need <= 0 {
		need = 1e-6
	}
	// A workload already past its deadline, or one being rescheduled
	// mid-flight, takes whatever is available rather than waiting for the
	// full (possibly inflated) requirement.
	acceptPartial := forcePartial || t.Progress > 0 ||
		(t.W.Type.Class() == perfmodel.Analytics &&
			st.deadline > 0 && q.rt.Eng.Now() > st.deadline)
	req := &sched.Request{
		W: t.W, Est: st.est, NeedPerf: need, MaxNodes: maxNodes,
		EstOf: q.estOf, AcceptPartial: acceptPartial,
		MaxCostPerHour: t.W.MaxCostPerHour,
	}
	asn, err := q.sch.Schedule(req)
	if err != nil {
		return false
	}
	for _, ev := range asn.Evictions {
		_ = q.rt.Evict(ev)
	}
	if asn.Config != nil {
		t.W.Config = asn.Config
	}
	placed := 0
	for _, n := range asn.Nodes {
		if err := q.rt.Place(t, n.Server, n.Alloc); err == nil {
			placed++
		}
	}
	return placed > 0
}

// estOf exposes resident estimates to the scheduler's compatibility check.
func (q *Quasar) estOf(id string) *classify.Estimates {
	if st, ok := q.state[id]; ok {
		return st.est
	}
	return nil
}

// beSafeOn reports whether adding a small best-effort slice to the server
// keeps every classified resident within its interference tolerance. This
// is what lets Quasar colocate fillers aggressively without disturbing
// primary workloads (§6.3: with auto-scaling, best-effort jobs cause
// frequent QPS drops; with Quasar the service runs undisturbed).
func (q *Quasar) beSafeOn(s *cluster.Server) bool {
	const beCausedMargin = 0.12 // conservative bound for an unclassified filler
	for _, pl := range s.Placements() {
		if pl.BestEffort {
			continue
		}
		st, ok := q.state[pl.WorkloadID]
		if !ok {
			continue
		}
		existing := s.PressureOn(pl.WorkloadID)
		for r := 0; r < int(cluster.NumResources); r++ {
			if existing[r]+beCausedMargin > st.est.Tol[r]+0.05 {
				return false
			}
		}
	}
	return true
}

// placeBestEffort gives a best-effort task a small slice on the server with
// the most free cores among servers where it will not disturb primaries.
func (q *Quasar) placeBestEffort(t *Task) bool {
	var best *cluster.Server
	for _, s := range q.rt.Cl.Servers {
		if s.Schedulable() && s.FreeCores() >= 1 && s.FreeMemGB() >= 1 && q.beSafeOn(s) {
			if best == nil || s.FreeCores() > best.FreeCores() {
				best = s
			}
		}
	}
	if best == nil {
		return false
	}
	alloc := cluster.Alloc{
		Cores:    minInt(4, best.FreeCores()),
		MemoryGB: math.Min(6, best.FreeMemGB()),
	}
	return q.rt.Place(t, best, alloc) == nil
}

// OnComplete implements Manager.
func (q *Quasar) OnComplete(t *Task) {
	delete(q.state, t.W.ID)
	q.drainQueue()
}

// OnEvicted implements Manager: evicted best-effort tasks rejoin the queue.
func (q *Quasar) OnEvicted(t *Task) {
	q.queue = append(q.queue, t)
}

// drainQueue retries queued tasks in order.
func (q *Quasar) drainQueue() {
	var still []*Task
	for _, t := range q.queue {
		if t.Status == StatusCompleted {
			continue
		}
		ok := false
		if t.W.BestEffort {
			ok = q.placeBestEffort(t)
		} else if st, has := q.state[t.W.ID]; has {
			ok = q.tryPlace(t, st)
			if ok && st.displaced {
				q.finishReadmit(t, st, "queue-drain")
			}
		}
		if !ok {
			still = append(still, t)
		}
	}
	q.queue = still
}

// OnTick implements Manager: monitor every running workload and adjust
// allocations that deviate from their constraints (§4.1).
func (q *Quasar) OnTick(now float64) {
	if !q.opts.DisableAdaptation {
		for _, t := range q.rt.Tasks() {
			if t.Status != StatusRunning || t.W.BestEffort {
				continue
			}
			st, ok := q.state[t.W.ID]
			if !ok {
				continue
			}
			q.monitor(t, st)
		}
	}
	if q.opts.EnablePartitioning {
		q.managePartitions()
	}
	if q.opts.ProactivePeriodSecs > 0 {
		period := q.opts.ProactivePeriodSecs
		// Fire on ticks aligned with the probe period.
		tick := q.rt.opts.TickSecs
		if math.Mod(now+tick/2, period) < tick {
			q.proactiveProbe(now)
		}
	}
	q.drainQueue()
}

// adjustCooldownSecs spaces allocation adjustments: Quasar "adjusts
// allocations in a conservative manner" (§4.1).
const adjustCooldownSecs = 30

// monitor compares measured performance with the needed level and adjusts.
func (q *Quasar) monitor(t *Task, st *taskState) {
	need := q.needPerf(t, st)
	if need <= 0 {
		return
	}
	now := q.rt.Eng.Now()
	if t.W.Type.Class() == perfmodel.LatencyCritical {
		// Record the load observation after needPerf consumed the previous
		// one, so the trend always spans exactly one monitoring interval.
		st.lastOffered = q.rt.OfferedLoad(t)
		st.offeredAt = now
	}
	measured := q.rt.MeasuredPerf(t)
	// A displacement episode ends when measured performance is back at the
	// needed level (covers partial displacements healed by scale-out or by
	// surviving headroom).
	if st.displaced && measured >= 0.95*need {
		q.finishReadmit(t, st, "recovered")
	}
	// Feedback loop (§3.2): fold the measured-vs-estimated deviation back
	// into the estimates before deciding how to adjust.
	st.est.CorrectWith(measured, q.nodeChoices(t))
	switch {
	case measured < 0.95*need:
		st.below++
		if now-st.lastAdjust < adjustCooldownSecs {
			return
		}
		st.lastAdjust = now
		if q.scaleUpOrOut(t, st, need, measured) {
			st.stalled = 0
		} else {
			st.stalled++
		}
		if st.below >= 3 && now-st.lastReclass > 120 && !st.displaced {
			// Persistent shortfall: misclassification or phase change —
			// reclassify from scratch (§4.1). During a displacement episode
			// the shortfall is already explained by the lost node(s), so
			// re-profiling is suppressed: the cached signature stays valid
			// and recovery stays on the profiling-free path.
			st.lastReclass = now
			q.reclassify(t, st, "reactive")
		}
		if st.below >= 6 && st.stalled >= 3 && now-st.lastResched > 300 {
			// Adjustment is exhausted (e.g. stuck on inferior servers at
			// the node cap): reschedule from scratch with the refreshed
			// estimates ("or reclassifies and reschedules the workload
			// from scratch", §3.1). "Exhausted" is judged by what landed,
			// not by how large the shortfall is: while scale-up/out is
			// still adding resources the shortfall is lag, and tearing
			// down a service mid-rise trades real capacity for nothing.
			// Only after several adjustment rounds place nothing is a
			// fresh placement attempted — and reschedule itself keeps the
			// incumbent unless the new placement beats it.
			st.lastResched = now
			st.below = 0
			st.stalled = 0
			q.reschedule(t, st, measured)
		}
	case measured > 1.8*need:
		st.below = 0
		if now-st.lastAdjust < adjustCooldownSecs {
			return
		}
		// Never shrink a batch job that is close to its deadline or
		// nearly done: reclaiming the tail only drags it out.
		if t.W.Type.Class() == perfmodel.Analytics {
			if st.deadline-now < 300 || q.rt.ProgressFraction(t) > 0.85 {
				return
			}
		}
		st.lastAdjust = now
		q.reclaim(t, st, need, measured)
	default:
		st.below = 0
	}
}

// allocCostPerHour prices the task's current allocation.
func (q *Quasar) allocCostPerHour(t *Task) float64 {
	cost := 0.0
	for _, id := range t.Servers() {
		pl := t.placements[id]
		cost += float64(pl.Alloc.Cores) * sched.CostPerCoreHour(pl.Server.Platform)
	}
	return cost
}

// scaleUpOrOut grows the allocation: scale-up on current servers first
// (cheapest, no migration), then scale-out via the scheduler. It reports
// whether any resize or placement actually landed, so the monitor can tell
// "adjustment is still making progress" apart from "adjustment is exhausted"
// — only the latter justifies a disruptive reschedule from scratch.
func (q *Quasar) scaleUpOrOut(t *Task, st *taskState, need, measured float64) (progressed bool) {
	var actions []string
	if q.tracer.Enabled() {
		defer func() {
			if len(actions) == 0 {
				actions = []string{"none"}
			}
			q.tracer.Instant("manager", "quasar", "scale", obs.Arg{Key: "decision", Val: obs.AdjustDecision{
				Workload: t.W.ID, Need: need, Measured: measured, Actions: actions,
			}})
		}()
	}
	// Respect the workload's cost budget (§4.4): never grow past it.
	if cap := t.W.MaxCostPerHour; cap > 0 && q.allocCostPerHour(t) >= cap {
		if q.tracer.Enabled() {
			actions = append(actions, "none: at cost cap")
		}
		return
	}
	// Scale up in place.
	for _, id := range t.Servers() {
		pl := t.placements[id]
		srv := pl.Server
		freeC, freeM := srv.FreeCores(), srv.FreeMemGB()
		// Evict best-effort residents if that frees capacity.
		if freeC == 0 {
			for _, other := range srv.Placements() {
				if other.BestEffort {
					_ = q.rt.Evict(other.WorkloadID)
				}
			}
			freeC, freeM = srv.FreeCores(), srv.FreeMemGB()
		}
		if freeC > 0 || freeM > 1 {
			grow := cluster.Alloc{
				Cores:    pl.Alloc.Cores + minInt(freeC, pl.Alloc.Cores),
				MemoryGB: pl.Alloc.MemoryGB + math.Min(freeM, pl.Alloc.MemoryGB),
			}
			if grow.Cores > srv.Platform.Cores {
				grow.Cores = srv.Platform.Cores
			}
			// Never grow past the cost budget.
			if cap := t.W.MaxCostPerHour; cap > 0 {
				delta := float64(grow.Cores-pl.Alloc.Cores) * sched.CostPerCoreHour(srv.Platform)
				if q.allocCostPerHour(t)+delta > cap {
					continue
				}
			}
			// Only grow when the estimates expect a real benefit: doubling
			// cores a workload cannot exploit just strands them.
			pidx := q.rt.Cl.PlatformIndex(srv.Platform.Name)
			press := srv.PressureOn(t.W.ID)
			cur := st.est.NodePerf(pidx, pl.Alloc, press)
			grown := st.est.NodePerf(pidx, grow, press)
			if grown > 1.05*cur {
				if q.rt.Resize(t, srv, grow) == nil {
					progressed = true
					q.retuneConfig(t, st, grow)
					if q.tracer.Enabled() {
						actions = append(actions, fmt.Sprintf("scale-up server %d -> %dc/%gg",
							srv.ID, grow.Cores, grow.MemoryGB))
					}
				}
			}
		}
		if q.rt.MeasuredPerf(t) >= need {
			return
		}
	}
	// Scale out: ask the scheduler for the shortfall.
	if !t.W.Type.Distributed() || t.NumNodes() >= q.opts.MaxNodesPerJob {
		return
	}
	shortfall := need - measured
	if shortfall <= 0 {
		return
	}
	req := &sched.Request{
		W: t.W, Est: st.est, NeedPerf: shortfall,
		MaxNodes: q.opts.MaxNodesPerJob - t.NumNodes(),
		EstOf:    q.estOf,
	}
	if cap := t.W.MaxCostPerHour; cap > 0 {
		remaining := cap - q.allocCostPerHour(t)
		if remaining <= 0 {
			return
		}
		req.MaxCostPerHour = remaining
	}
	asn, err := q.sch.Schedule(req)
	if err != nil {
		return
	}
	for _, ev := range asn.Evictions {
		_ = q.rt.Evict(ev)
	}
	have := map[int]bool{}
	for _, id := range t.Servers() {
		have[id] = true
	}
	for _, n := range asn.Nodes {
		if have[n.Server.ID] {
			continue // already on this server; Place would fail
		}
		if q.rt.Place(t, n.Server, n.Alloc) == nil {
			progressed = true
			if q.tracer.Enabled() {
				actions = append(actions, fmt.Sprintf("scale-out +server %d %dc/%gg",
					n.Server.ID, n.Alloc.Cores, n.Alloc.MemoryGB))
			}
		}
	}
	return progressed
}

// retuneConfig re-tunes framework parameters after an in-place resize so
// mapper counts and heaps track the new allocation.
func (q *Quasar) retuneConfig(t *Task, st *taskState, alloc cluster.Alloc) {
	if t.W.Config == nil {
		return
	}
	diskSensitive := st.est.Tol[cluster.ResDiskIO] < 0.5
	cfg := classify.TunedConfig(alloc.Cores, alloc.MemoryGB, diskSensitive)
	t.W.Config = &cfg
}

// nodeChoices captures the task's live assignment in the scheduler's terms.
func (q *Quasar) nodeChoices(t *Task) []classify.NodeChoice {
	ids := t.Servers()
	out := make([]classify.NodeChoice, 0, len(ids))
	for _, id := range ids {
		pl := t.placements[id]
		out = append(out, classify.NodeChoice{
			PlatformIdx: q.rt.Cl.PlatformIndex(pl.Server.Platform.Name),
			Alloc:       pl.Alloc,
			Pressure:    pl.Server.PressureOn(t.W.ID),
		})
	}
	return out
}

// reschedule places the workload anew with current estimates, keeping the
// result only if it beats the incumbent. Analytics frameworks keep their
// progress (completed tasks live in the DFS); stateful services migrate
// microshards, which costs milliseconds per shard and is absorbed within a
// tick.
//
// The comparison is make-before-break in effect: a reschedule fires when the
// workload is stuck, but on a saturated cluster the scheduler may well find
// *less* than the incumbent already holds — rescheduling exists to escape bad
// placements (inferior platforms, noisy neighbors), not to shrink. So the
// candidate placement is applied, *measured*, and kept only if it beats the
// incumbent's last measurement; otherwise the exact prior allocation is
// restored (its capacity was freed under the same event, so nothing can have
// claimed it in between). Measuring rather than trusting st.est matters: the
// decision to reschedule was made precisely because measurements diverged
// from what the estimates promised.
func (q *Quasar) reschedule(t *Task, st *taskState, measured float64) {
	q.tracer.Instant("manager", "quasar", "reschedule", obs.Arg{Key: "workload", Val: t.W.ID})
	type heldAlloc struct {
		srv   *cluster.Server
		alloc cluster.Alloc
	}
	ids := t.Servers()
	old := make([]heldAlloc, 0, len(ids))
	for _, id := range ids {
		pl := t.placements[id]
		old = append(old, heldAlloc{pl.Server, pl.Alloc})
	}
	q.rt.Release(t)
	if q.tryPlace(t, st) && q.rt.MeasuredPerf(t) >= measured {
		return
	}
	// Worse or no placement: put the incumbent back.
	q.rt.Release(t)
	restored := false
	for _, h := range old {
		if q.rt.Place(t, h.srv, h.alloc) == nil {
			restored = true
		}
	}
	if !restored {
		t.Status = StatusQueued
		q.queue = append(q.queue, t)
	}
}

// reclaim shrinks over-provisioned allocations, releasing idle resources
// for best-effort work.
func (q *Quasar) reclaim(t *Task, st *taskState, need, measured float64) {
	var actions []string
	if q.tracer.Enabled() {
		defer func() {
			if len(actions) == 0 {
				actions = []string{"none"}
			}
			q.tracer.Instant("manager", "quasar", "reclaim", obs.Arg{Key: "decision", Val: obs.AdjustDecision{
				Workload: t.W.ID, Need: need, Measured: measured, Actions: actions,
			}})
		}()
	}
	excess := measured / math.Max(need, 1e-9)
	if excess < 1.5 {
		return
	}
	// Drop a whole node when several are allocated; otherwise halve the
	// largest allocation. Either way, simulate the shrink against the
	// estimates first and skip it when the remainder would fall straight
	// back into scale-up territory: reclaim steps are coarse (a whole node,
	// half an allocation), and over-shrinking at a load trough costs a
	// latency excursion plus a scale-up round trip on the next rise.
	ids := t.Servers()
	if len(ids) > 1 {
		choices := q.nodeChoices(t)
		if st.est.JobPerf(choices[:len(choices)-1]) < 1.2*need {
			return
		}
		last := ids[len(ids)-1]
		if q.rt.RemoveNode(t, last) == nil && q.tracer.Enabled() {
			actions = append(actions, fmt.Sprintf("drop server %d", last))
		}
		return
	}
	pl := t.placements[ids[0]]
	if pl.Alloc.Cores > 1 {
		shrunk := cluster.Alloc{
			Cores:    maxInt(1, pl.Alloc.Cores/2),
			MemoryGB: math.Max(1, pl.Alloc.MemoryGB/2),
		}
		pidx := q.rt.Cl.PlatformIndex(pl.Server.Platform.Name)
		if st.est.NodePerf(pidx, shrunk, pl.Server.PressureOn(t.W.ID)) < 1.2*need {
			return
		}
		if q.rt.Resize(t, pl.Server, shrunk) == nil && q.tracer.Enabled() {
			actions = append(actions, fmt.Sprintf("shrink server %d -> %dc/%gg",
				pl.Server.ID, shrunk.Cores, shrunk.MemoryGB))
		}
	}
}

// reclassify re-profiles a workload in place and reschedules if the fresh
// estimates demand it.
func (q *Quasar) reclassify(t *Task, st *taskState, source string) {
	if st.displaced {
		st.reprofiled = true
	}
	q.PhaseChangesDetected++
	q.PhaseEvents = append(q.PhaseEvents, PhaseEvent{Time: q.rt.Eng.Now(), TaskID: t.W.ID, Source: source})
	if q.tracer.Enabled() {
		q.tracer.Instant(workloadTrack(t.W.ID), "quasar", "phase-change",
			obs.Arg{Key: "source", Val: source})
		q.tracer.Registry().Counter("phase_changes_total", "reclassifications triggered by monitoring").Inc()
	}
	prober := classify.NewGroundTruthProber(t.W, q.rt.Cl.Platforms, q.rng.Stream("reprobe/"+t.W.ID))
	st.est = q.engine.Reclassify(t.W, prober)
	// Fresh profiles arrive in profiling units, which for latency-critical
	// workloads differ systematically from the monitor's knee-QPS
	// measurements. Re-anchor the new estimates to the live measurement
	// immediately: otherwise every reactive reclassification wipes the
	// feedback calibration (§3.2) and the scheduler reverts to undersized
	// placements exactly when the workload is struggling.
	if t.Status == StatusRunning && t.NumNodes() > 0 {
		st.est.CorrectWith(q.rt.MeasuredPerf(t), q.nodeChoices(t))
	}
}

// proactiveProbe samples a fraction of active workloads and injects
// interference microbenchmarks to detect phase changes before they violate
// QoS (§4.1).
func (q *Quasar) proactiveProbe(now float64) {
	var running []*Task
	for _, t := range q.rt.Tasks() {
		if t.Status == StatusRunning && !t.W.BestEffort {
			running = append(running, t)
		}
	}
	if len(running) == 0 {
		return
	}
	n := int(math.Ceil(q.opts.ProactiveFraction * float64(len(running))))
	// Probe the least-recently-probed workloads first: uniform random
	// sampling can starve a workload indefinitely, while round-robin
	// coverage bounds every workload's probe interval by
	// len(running)/n probe periods at the same per-period cost.
	// Tasks() order breaks ties, so selection is deterministic.
	sort.SliceStable(running, func(i, j int) bool {
		si, sj := q.state[running[i].W.ID], q.state[running[j].W.ID]
		ti, tj := 0.0, 0.0
		if si != nil {
			ti = si.lastProbe
		}
		if sj != nil {
			tj = sj.lastProbe
		}
		return ti < tj
	})
	rng := q.rng.Stream("proactive")
	for _, t := range running[:n] {
		st := q.state[t.W.ID]
		if st == nil {
			continue
		}
		st.lastProbe = now
		// Partial in-place interference classification: re-probe three
		// random resources and compare with the standing estimates. Two of
		// three must deviate to call a phase change — a single drifted
		// resource is within measurement noise, but genuine phase changes
		// shift the whole interference profile, so the wider probe raises
		// sensitivity without loosening the per-resource threshold. The
		// relative-change denominator is floored well above the tolerance
		// ramp's quantization step: for near-zero tolerances a single probe
		// step is a huge relative swing, which is noise, not a phase.
		prober := classify.NewGroundTruthProber(t.W, q.rt.Cl.Platforms, q.rng.Stream("pp/"+t.W.ID))
		changed := 0
		for _, r := range rng.Perm(int(cluster.NumResources))[:3] {
			fresh := prober.ToleratedIntensity(cluster.Resource(r))
			old := st.est.Tol[r]
			if old > 0 && math.Abs(fresh-old)/math.Max(old, 0.2) > 0.35 {
				changed++
			}
		}
		if q.tracer.Enabled() {
			q.tracer.Instant(workloadTrack(t.W.ID), "quasar", "proactive-probe",
				obs.Arg{Key: "changed_resources", Val: changed})
		}
		if changed >= 2 {
			q.reclassify(t, st, "proactive")
		}
	}
}

// QueueLen reports the admission-control queue length.
func (q *Quasar) QueueLen() int { return len(q.queue) }

// UpdateTarget replaces a workload's performance target at runtime — the
// live re-negotiation a long-running manager needs (raise a service's QPS
// floor, tighten a batch deadline) without resubmission. The class must not
// change; monitoring picks the new constraint up on the next tick, and an
// analytics deadline is re-anchored to the original submission time.
func (q *Quasar) UpdateTarget(id string, target workload.Target) error {
	t := q.rt.Task(id)
	if t == nil {
		return fmt.Errorf("core: target update for unknown task %s", id)
	}
	if t.W.BestEffort {
		return fmt.Errorf("core: task %s is best-effort and has no target", id)
	}
	if target.Class != t.W.Type.Class() {
		return fmt.Errorf("core: target class %v does not match task %s type %v",
			target.Class, id, t.W.Type)
	}
	if err := target.Validate(); err != nil {
		return err
	}
	t.W.Target = target
	if st, ok := q.state[id]; ok && target.Class == perfmodel.Analytics {
		st.deadline = t.SubmitAt + target.CompletionSecs
	}
	if q.tracer.Enabled() {
		q.tracer.Instant(workloadTrack(id), "quasar", "target-update",
			obs.Arg{Key: "completion_secs", Val: target.CompletionSecs},
			obs.Arg{Key: "qps", Val: target.QPS},
			obs.Arg{Key: "latency_us", Val: target.LatencyUS},
			obs.Arg{Key: "ips", Val: target.IPS})
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
