package core

import (
	"testing"

	"quasar/internal/cluster"
	"quasar/internal/loadgen"
	"quasar/internal/workload"
)

// quasarFixture builds a 40-server cluster managed by Quasar with a seeded
// classification library.
func quasarFixture(t testing.TB, seed int64) (*Runtime, *Quasar, *workload.Universe) {
	t.Helper()
	platforms := cluster.LocalPlatforms()
	cl, err := cluster.New(platforms, []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(cl, Options{TickSecs: 5, SampleSecs: 60, Seed: seed})
	u := workload.NewUniverse(platforms, seed+1, 3)
	opts := DefaultQuasarOptions()
	opts.Classify.MaxNodes = 32
	q := NewQuasar(rt, opts)
	var lib []*workload.Instance
	for _, tp := range []workload.Type{workload.Hadoop, workload.Spark, workload.Storm,
		workload.Memcached, workload.Cassandra, workload.Webserver, workload.SingleNode} {
		for i := 0; i < 3; i++ {
			lib = append(lib, u.New(workload.Spec{Type: tp, Family: -1, MaxNodes: 4}))
		}
	}
	q.SeedLibrary(lib)
	rt.SetManager(q)
	return rt, q, u
}

func TestQuasarRunsBatchNearTarget(t *testing.T) {
	rt, _, u := quasarFixture(t, 41)
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 8, TargetSlack: 1.3})
	task := rt.Submit(w, 0, nil)
	rt.Run(w.Target.CompletionSecs * 3)
	rt.Stop()
	if task.Status != StatusCompleted {
		t.Fatalf("job did not complete: %v (nodes %d)", task.Status, task.NumNodes())
	}
	elapsed := task.DoneAt - task.SubmitAt
	// Quasar should come close to the target (paper: within ~6%); allow
	// generous slack for estimation error plus adaptation latency.
	if elapsed > w.Target.CompletionSecs*1.5 {
		t.Fatalf("completion %.0fs vs target %.0fs", elapsed, w.Target.CompletionSecs)
	}
}

func TestQuasarServiceMeetsQoS(t *testing.T) {
	rt, _, u := quasarFixture(t, 43)
	w := u.New(workload.Spec{Type: workload.Memcached, Family: -1, MaxNodes: 8})
	task := rt.Submit(w, 0, loadgen.Flat{QPS: w.Target.QPS})
	rt.Run(3600)
	rt.Stop()
	if task.Status != StatusRunning {
		t.Fatalf("service status %v", task.Status)
	}
	// After warm-up, QoS should be met most of the time.
	qos := task.QoSFrac.MeanBetween(600, 3600)
	if qos < 0.85 {
		t.Fatalf("QoS met only %.2f of the time", qos)
	}
}

func TestQuasarTracksLoadGrowth(t *testing.T) {
	if testing.Short() {
		t.Skip("load-growth scenario runs ~3s under -race")
	}
	rt, _, u := quasarFixture(t, 47)
	w := u.New(workload.Spec{Type: workload.Webserver, Family: -1, MaxNodes: 8})
	pattern := loadgen.Fluctuating{Min: 0.2 * w.Target.QPS, Max: w.Target.QPS, Period: 3600}
	task := rt.Submit(w, 0, pattern)
	rt.Run(7200)
	rt.Stop()
	qos := task.QoSFrac.MeanBetween(900, 7200)
	if qos < 0.8 {
		t.Fatalf("fluctuating load QoS %.2f", qos)
	}
	// Allocation must have been adjusted at least once (cores vary).
	if task.NumNodes() == 0 {
		t.Fatal("service lost its allocation")
	}
}

func TestQuasarReclaimsIdleResources(t *testing.T) {
	if testing.Short() {
		t.Skip("reclaim scenario runs ~3s under -race")
	}
	rt, _, u := quasarFixture(t, 53)
	w := u.New(workload.Spec{Type: workload.Webserver, Family: -1, MaxNodes: 8})
	// Very low constant load after targets were set high.
	task := rt.Submit(w, 0, loadgen.Flat{QPS: 0.1 * w.Target.QPS})
	rt.Run(600)
	coresEarly := task.TotalCores()
	rt.Run(5400)
	rt.Stop()
	coresLate := task.TotalCores()
	if coresLate > coresEarly {
		t.Fatalf("idle service grew: %d -> %d cores", coresEarly, coresLate)
	}
}

func TestQuasarBestEffortPlacedAndEvictable(t *testing.T) {
	rt, q, u := quasarFixture(t, 59)
	for i := 0; i < 10; i++ {
		be := u.New(workload.Spec{Type: workload.SingleNode, Family: -1, BestEffort: true})
		rt.Submit(be, float64(i), nil)
	}
	rt.Run(60)
	running := 0
	for _, task := range rt.Tasks() {
		if task.Status == StatusRunning {
			running++
		}
	}
	if running < 8 {
		t.Fatalf("only %d best-effort tasks running on an idle cluster", running)
	}
	// A demanding primary workload should be able to displace them.
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 8, TargetSlack: 1.2})
	rt.Submit(w, 70, nil)
	rt.Run(1200)
	rt.Stop()
	if rt.Task(w.ID).Status == StatusQueued {
		t.Fatal("primary workload stuck behind best-effort fillers")
	}
	_ = q
}

func TestQuasarAdmissionQueue(t *testing.T) {
	if testing.Short() {
		t.Skip("admission scenario runs ~17s under -race")
	}
	rt, q, u := quasarFixture(t, 61)
	// Saturate the cluster with long services pinned at high load.
	var tasks []*Task
	for i := 0; i < 30; i++ {
		w := u.New(workload.Spec{Type: workload.Memcached, Family: -1, MaxNodes: 4})
		tasks = append(tasks, rt.Submit(w, float64(i)*2, loadgen.Flat{QPS: w.Target.QPS}))
	}
	rt.Run(4000)
	rt.Stop()
	placed, queued := 0, 0
	for _, task := range tasks {
		switch task.Status {
		case StatusRunning:
			placed++
		case StatusQueued, StatusProfiling:
			queued++
		}
	}
	if placed == 0 {
		t.Fatal("nothing placed")
	}
	// Either everything fit, or admission control queued the rest; the
	// scheduler must never overcommit servers.
	for _, srv := range rt.Cl.Servers {
		if srv.UsedCores() > srv.Platform.Cores {
			t.Fatalf("server %d overcommitted", srv.ID)
		}
	}
	_ = q
}

func TestQuasarSingleNodeIPS(t *testing.T) {
	if testing.Short() {
		t.Skip("single-node sweep runs ~4s under -race")
	}
	rt, _, u := quasarFixture(t, 67)
	w := u.New(workload.Spec{Type: workload.SingleNode, Family: -1, TargetSlack: 1.5})
	w.Genome.Work = 5000
	task := rt.Submit(w, 0, nil)
	rt.Run(50000)
	rt.Stop()
	if task.Status != StatusCompleted {
		t.Fatalf("single-node job not completed: %v", task.Status)
	}
	if task.NumNodes() != 0 {
		t.Fatal("placements linger after completion")
	}
}

func TestQuasarTunesHadoopConfig(t *testing.T) {
	rt, _, u := quasarFixture(t, 71)
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 8, TargetSlack: 1.3})
	def := workload.DefaultHadoopConfig()
	rt.Submit(w, 0, nil)
	rt.Run(600)
	rt.Stop()
	if w.Config == nil {
		t.Fatal("config removed")
	}
	if *w.Config == def {
		t.Fatal("Quasar did not tune the framework configuration")
	}
	if w.Config.MappersPerNode <= 0 || w.Config.HeapsizeGB <= 0 {
		t.Fatalf("invalid tuned config %+v", w.Config)
	}
}
