package core

import (
	"math"
	"sort"

	"quasar/internal/sim"
)

// This file implements the straggler-detection study of §4.3: Quasar calls
// the Hadoop TaskTracker API, finds tasks at least 50% slower than the
// median, injects contentious microbenchmarks on their servers and
// reclassifies them; if the in-place interference classification deviates
// from the original by more than 20%, the task is flagged and relaunched.
// This detects stragglers earlier than Hadoop's speculative execution
// (which waits for enough progress-score history) and earlier than LATE
// (which waits for a stable estimated-finish-time ranking).
//
// Map tasks are modeled individually here (the fluid job model of the main
// runtime deliberately abstracts them away): each task has a work size and
// a rate; stragglers get their rate cut at a known onset time, so detection
// latency can be measured exactly.

// MapTask is one map task of a framework job.
type MapTask struct {
	ID   int
	Work float64
	Rate float64

	// Straggler tasks slow to Rate*SlowFactor at OnsetSecs.
	Straggler  bool
	OnsetSecs  float64
	SlowFactor float64

	progress float64
}

// rateAt returns the task's rate at time t.
func (mt *MapTask) rateAt(t float64) float64 {
	if mt.Straggler && t >= mt.OnsetSecs {
		return mt.Rate * mt.SlowFactor
	}
	return mt.Rate
}

// StragglerDetector flags straggling tasks from observable progress.
type StragglerDetector interface {
	Name() string
	// Detect inspects task progress at time now and returns the IDs of
	// newly flagged stragglers.
	Detect(now float64, tasks []*MapTask) []int
}

// progressOf returns each task's progress fraction.
func progressOf(tasks []*MapTask) []float64 {
	out := make([]float64, len(tasks))
	for i, mt := range tasks {
		out[i] = mt.progress / mt.Work
	}
	return out
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// HadoopDetector models stock Hadoop speculative execution: a task is
// flagged when it has run for at least MinRunSecs and its progress score
// falls more than Gap below the category average.
type HadoopDetector struct {
	MinRunSecs float64
	Gap        float64
	flagged    map[int]bool
}

// NewHadoopDetector returns the stock detector with Hadoop's defaults
// (60s minimum runtime, 0.2 progress gap), compressed to the simulation's
// timescale via minRun.
func NewHadoopDetector(minRun float64) *HadoopDetector {
	return &HadoopDetector{MinRunSecs: minRun, Gap: 0.2, flagged: map[int]bool{}}
}

// Name implements StragglerDetector.
func (d *HadoopDetector) Name() string { return "hadoop" }

// Detect implements StragglerDetector.
func (d *HadoopDetector) Detect(now float64, tasks []*MapTask) []int {
	if now < d.MinRunSecs {
		return nil
	}
	prog := progressOf(tasks)
	mean := 0.0
	for _, p := range prog {
		mean += p
	}
	mean /= float64(len(prog))
	var out []int
	for i, p := range prog {
		if d.flagged[tasks[i].ID] || p >= 1 {
			continue
		}
		if p < mean-d.Gap {
			d.flagged[tasks[i].ID] = true
			out = append(out, tasks[i].ID)
		}
	}
	return out
}

// LATEDetector models the LATE scheduler: it estimates each task's time to
// finish from its *lifetime-average* progress rate (progress/elapsed, as
// LATE computes progress scores) and flags tasks whose rate falls below the
// slow-task threshold. The lifetime average dilutes a recent slowdown, so
// LATE reacts faster than stock Hadoop but still lags the onset.
type LATEDetector struct {
	WindowSecs float64 // minimum observation time before flagging
	flagged    map[int]bool
}

// NewLATEDetector returns a LATE-style detector with the given minimum
// observation window.
func NewLATEDetector(window float64) *LATEDetector {
	return &LATEDetector{WindowSecs: window, flagged: map[int]bool{}}
}

// Name implements StragglerDetector.
func (d *LATEDetector) Name() string { return "late" }

// Detect implements StragglerDetector.
func (d *LATEDetector) Detect(now float64, tasks []*MapTask) []int {
	if now < d.WindowSecs {
		return nil
	}
	// Lifetime-average progress rates.
	rates := make(map[int]float64, len(tasks))
	var rs []float64
	for _, mt := range tasks {
		if mt.progress >= mt.Work {
			continue
		}
		r := (mt.progress / mt.Work) / now
		rates[mt.ID] = r
		rs = append(rs, r)
	}
	if len(rs) < 4 {
		return nil
	}
	sort.Float64s(rs)
	med := rs[len(rs)/2]
	var out []int
	for _, mt := range tasks {
		if d.flagged[mt.ID] || mt.progress >= mt.Work {
			continue
		}
		if rates[mt.ID] < 0.6*med {
			d.flagged[mt.ID] = true
			out = append(out, mt.ID)
		}
	}
	return out
}

// QuasarDetector models §4.3: suspects are tasks at least 50% slower than
// the median progress; each suspect is confirmed by injecting two
// contentious microbenchmarks and reclassifying in place, which takes
// ProbeSecs and succeeds when the task is genuinely interference-slowed
// (>20% deviation from the original classification).
type QuasarDetector struct {
	ProbeSecs float64
	flagged   map[int]bool
	probing   map[int]float64 // task -> probe completion time
	lastProg  map[int]float64
	lastTime  float64
	rates     map[int]float64
	rng       *sim.RNG
}

// NewQuasarDetector returns the Quasar straggler detector.
func NewQuasarDetector(probeSecs float64, rng *sim.RNG) *QuasarDetector {
	return &QuasarDetector{
		ProbeSecs: probeSecs,
		flagged:   map[int]bool{},
		probing:   map[int]float64{},
		lastProg:  map[int]float64{},
		rates:     map[int]float64{},
		rng:       rng,
	}
}

// Name implements StragglerDetector.
func (d *QuasarDetector) Name() string { return "quasar" }

// emaTauSecs is the time constant of the rate estimate Quasar derives from
// TaskTracker counters — responsive, but not instantaneous.
const emaTauSecs = 10.0

// Detect implements StragglerDetector.
func (d *QuasarDetector) Detect(now float64, tasks []*MapTask) []int {
	if d.lastTime > 0 && now > d.lastTime {
		dt := now - d.lastTime
		alpha := 1 - math.Exp(-dt/emaTauSecs)
		for _, mt := range tasks {
			p := mt.progress / mt.Work
			inst := (p - d.lastProg[mt.ID]) / dt
			if _, ok := d.rates[mt.ID]; !ok {
				d.rates[mt.ID] = inst
			} else {
				d.rates[mt.ID] += alpha * (inst - d.rates[mt.ID])
			}
		}
	}
	for _, mt := range tasks {
		d.lastProg[mt.ID] = mt.progress / mt.Work
	}
	d.lastTime = now

	var out []int
	// Complete finished probes.
	for id, doneAt := range d.probing {
		if now >= doneAt {
			delete(d.probing, id)
			// The in-place interference reclassification confirms tasks
			// whose slowdown is real (always true for injected
			// stragglers; the 20% deviation check suppresses noise).
			for _, mt := range tasks {
				if mt.ID == id && mt.Straggler && !d.flagged[id] {
					d.flagged[id] = true
					out = append(out, id)
				}
			}
		}
	}
	// d.probing is a map: sort so same-tick detections report in a
	// seed-stable order.
	sortInts(out)
	// Start probes on new suspects: instantaneous rate below 50% of the
	// median rate (TaskTracker counters expose rates immediately).
	var rs []float64
	for _, mt := range tasks {
		if mt.progress < mt.Work {
			rs = append(rs, d.rates[mt.ID])
		}
	}
	med := median(rs)
	if med <= 0 {
		return out
	}
	for _, mt := range tasks {
		if d.flagged[mt.ID] || mt.progress >= mt.Work {
			continue
		}
		if _, busy := d.probing[mt.ID]; busy {
			continue
		}
		if d.rates[mt.ID] < 0.5*med {
			d.probing[mt.ID] = now + d.ProbeSecs
		}
	}
	return out
}

// StragglerResult summarizes one detector's run.
type StragglerResult struct {
	Detector string
	// MeanDetectionSecs is the average latency from straggle onset to
	// detection, over detected stragglers.
	MeanDetectionSecs float64
	// DetectedFrac is the fraction of true stragglers detected before the
	// job finished.
	DetectedFrac float64
	// FalsePositives counts flagged healthy tasks.
	FalsePositives int
}

// RunStragglerStudy simulates a job of n map tasks on a dtSecs grid with
// the given fraction of stragglers and measures each detector's detection
// latency. All detectors observe the same task progress.
func RunStragglerStudy(n int, stragglerFrac, slowFactor float64, detectors []StragglerDetector, rng *sim.RNG) []StragglerResult {
	makeTasks := func() []*MapTask {
		tasks := make([]*MapTask, n)
		for i := range tasks {
			tasks[i] = &MapTask{
				ID:   i,
				Work: 100,
				Rate: rng.Uniform(0.9, 1.1),
			}
		}
		// Stragglers begin slowing partway through.
		for _, i := range rng.Perm(n)[:int(float64(n)*stragglerFrac)] {
			tasks[i].Straggler = true
			tasks[i].OnsetSecs = rng.Uniform(10, 30)
			tasks[i].SlowFactor = slowFactor
		}
		return tasks
	}

	var results []StragglerResult
	for _, det := range detectors {
		tasks := makeTasks()
		detectAt := map[int]float64{}
		fp := 0
		const dt = 1.0
		for now := dt; now < 500; now += dt {
			running := false
			for _, mt := range tasks {
				if mt.progress < mt.Work {
					mt.progress += mt.rateAt(now) * dt
					running = true
				}
			}
			for _, id := range det.Detect(now, tasks) {
				if tasks[id].Straggler {
					if _, dup := detectAt[id]; !dup {
						detectAt[id] = now - tasks[id].OnsetSecs
					}
				} else {
					fp++
				}
			}
			if !running {
				break
			}
		}
		sum, cnt, total := 0.0, 0, 0
		for _, mt := range tasks {
			if mt.Straggler {
				total++
				if lat, ok := detectAt[mt.ID]; ok {
					sum += math.Max(lat, 0)
					cnt++
				}
			}
		}
		res := StragglerResult{Detector: det.Name(), FalsePositives: fp}
		if cnt > 0 {
			res.MeanDetectionSecs = sum / float64(cnt)
		}
		if total > 0 {
			res.DetectedFrac = float64(cnt) / float64(total)
		}
		results = append(results, res)
	}
	return results
}
