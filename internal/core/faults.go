package core

import (
	"quasar/internal/cluster"
	"quasar/internal/obs"
)

// This file is the runtime half of the fault story: the physical fault
// surface driven by internal/chaos (Runtime implements chaos.World), and
// the heartbeat failure detector that turns physical faults into manager
// knowledge. The split is deliberate: a crash is instantaneous ground
// truth, but the manager only learns of it k missed heartbeats later, and
// everything it does in between runs on stale belief.

// DetectorOptions configures the heartbeat failure detector.
type DetectorOptions struct {
	// PeriodSecs is the heartbeat interval (default 10s).
	PeriodSecs float64
	// SuspectMissed is how many consecutive missed beats mark a server
	// suspect — no new placements (default 2).
	SuspectMissed int
	// DeadMissed is how many consecutive missed beats declare a server dead,
	// fencing and displacing its residents (default 4).
	DeadMissed int
}

// DefaultDetectorOptions returns the standard 10s/2/4 detector: suspect
// after 20s of silence, dead after 40s.
func DefaultDetectorOptions() DetectorOptions {
	return DetectorOptions{PeriodSecs: 10, SuspectMissed: 2, DeadMissed: 4}
}

// FailureAware is an optional Manager extension. A manager that implements
// it takes over recovery of displaced work; the runtime falls back to the
// plain OnEvicted re-queue path for managers that do not.
type FailureAware interface {
	// OnServerDead is called when the detector declares a server dead, after
	// its residents were fenced. displaced holds the affected tasks in
	// workload-ID order; tasks that lost every node are StatusQueued.
	OnServerDead(s *cluster.Server, displaced []*Task)
	// OnServerRestored is called when a previously-dead server heartbeats
	// again (restart or healed partition).
	OnServerRestored(s *cluster.Server)
}

// EnableFailureDetector starts (or restarts) the heartbeat detector. It is
// opt-in: a runtime without it behaves exactly as before this subsystem
// existed, and traces of healthy runs stay byte-identical.
func (rt *Runtime) EnableFailureDetector(opts DetectorOptions) {
	if opts.PeriodSecs <= 0 {
		opts.PeriodSecs = 10
	}
	if opts.SuspectMissed <= 0 {
		opts.SuspectMissed = 2
	}
	if opts.DeadMissed <= opts.SuspectMissed {
		opts.DeadMissed = opts.SuspectMissed + 2
	}
	if rt.stopHB != nil {
		rt.stopHB()
	}
	rt.detOpts = &opts
	rt.missed = make([]int, len(rt.Cl.Servers))
	rt.startHeartbeat()
}

// DetectorEnabled reports whether the heartbeat detector is running.
func (rt *Runtime) DetectorEnabled() bool { return rt.detOpts != nil }

func (rt *Runtime) startHeartbeat() {
	p := rt.detOpts.PeriodSecs
	rt.stopHB = rt.Eng.Ticker(rt.Eng.Now()+p, p, rt.heartbeat)
}

// heartbeat is one detector sweep: reachable servers clear their miss
// counters; silent ones accumulate toward suspect and dead.
func (rt *Runtime) heartbeat(now float64) {
	for i, s := range rt.Cl.Servers {
		if s.Reachable() {
			if rt.missed[i] == 0 && s.Det() == cluster.DetOK {
				continue
			}
			prev := s.Det()
			rt.missed[i] = 0
			s.SetDet(cluster.DetOK)
			switch prev {
			case cluster.DetDead:
				if rt.Trace.Enabled() {
					rt.Trace.Instant(serverTrack(s.ID), "detect", "hb-restored")
					rt.Trace.Registry().Counter("servers_restored_total", "dead servers heard from again").Inc()
				}
				if fa, ok := rt.manager.(FailureAware); ok {
					fa.OnServerRestored(s)
				}
			case cluster.DetSuspect:
				if rt.Trace.Enabled() {
					rt.Trace.Instant(serverTrack(s.ID), "detect", "hb-cleared")
				}
			}
			continue
		}
		rt.missed[i]++
		switch {
		case rt.missed[i] >= rt.detOpts.DeadMissed && s.Det() != cluster.DetDead:
			s.SetDet(cluster.DetDead)
			displaced := rt.fence(s, "server-dead")
			if rt.Trace.Enabled() {
				rt.Trace.Instant(serverTrack(s.ID), "detect", "hb-dead",
					obs.Arg{Key: "missed", Val: rt.missed[i]},
					obs.Arg{Key: "displaced", Val: len(displaced)})
				rt.Trace.Registry().Counter("servers_declared_dead_total", "servers declared dead by the detector").Inc()
			}
			rt.notifyDisplaced(s, displaced)
		case rt.missed[i] >= rt.detOpts.SuspectMissed && s.Det() == cluster.DetOK:
			s.SetDet(cluster.DetSuspect)
			if rt.Trace.Enabled() {
				rt.Trace.Instant(serverTrack(s.ID), "detect", "hb-suspect",
					obs.Arg{Key: "missed", Val: rt.missed[i]})
			}
		}
	}
}

// fence removes every placement from a server the detector gave up on (or
// that restarted), in workload-ID order. For a partitioned-but-alive server
// this is the kill signal that makes displacement safe: the infrastructure
// guarantees the old instance is gone before a replacement starts. Tasks
// that lost their last node drop back to StatusQueued.
func (rt *Runtime) fence(s *cluster.Server, reason string) []*Task {
	pls := s.Placements()
	displaced := make([]*Task, 0, len(pls))
	for _, pl := range pls {
		t := rt.tasks[pl.WorkloadID]
		if t == nil {
			_ = s.Remove(pl.WorkloadID)
			continue
		}
		_ = rt.RemoveNode(t, s.ID)
		if t.NumNodes() == 0 && t.Status == StatusRunning {
			t.Status = StatusQueued
		}
		displaced = append(displaced, t)
		if rt.Trace.Enabled() {
			rt.Trace.Instant(workloadTrack(t.W.ID), "detect", "displaced",
				obs.Arg{Key: "server", Val: s.ID},
				obs.Arg{Key: "reason", Val: reason},
				obs.Arg{Key: "remaining_nodes", Val: t.NumNodes()})
			rt.Trace.Registry().Counter("displacements_total", "workload displacements off failed servers").Inc()
		}
	}
	return displaced
}

// notifyDisplaced routes displaced tasks to the manager: FailureAware
// managers run their recovery policy; others get the OnEvicted re-queue
// path for tasks that lost everything.
func (rt *Runtime) notifyDisplaced(s *cluster.Server, displaced []*Task) {
	if rt.manager == nil {
		return
	}
	if fa, ok := rt.manager.(FailureAware); ok {
		fa.OnServerDead(s, displaced)
		return
	}
	for _, t := range displaced {
		if t.W.BestEffort || t.NumNodes() == 0 {
			rt.manager.OnEvicted(t)
		}
	}
}

// --- chaos.World implementation ------------------------------------------
//
// These are the physical fault primitives internal/chaos drives. Each
// returns whether it applied; injections against a target already in the
// requested state no-op.

// NumServers returns the cluster size (chaos.World).
func (rt *Runtime) NumServers() int { return len(rt.Cl.Servers) }

func (rt *Runtime) emitFault(serverID int, name string, args ...obs.Arg) {
	if !rt.Trace.Enabled() {
		return
	}
	rt.Trace.Instant(serverTrack(serverID), "chaos", name, args...)
	rt.Trace.Registry().Counter("faults_injected_total", "fault injections applied").Inc()
}

// CrashServer takes a server down (chaos.World). Resident placements stay
// on the books — the manager has not learned of the crash yet — but the
// server contributes no work: nodesOf skips down servers, so batch rates
// and service capacity on it drop to zero immediately.
func (rt *Runtime) CrashServer(id int) bool {
	s := rt.Cl.Servers[id]
	if !s.Up() {
		return false
	}
	s.SetDown()
	rt.emitFault(id, "fault-crash")
	return true
}

// RestartServer brings a crashed server back (chaos.World). If the outage
// was shorter than the detection window, residents stalled and now resume:
// a transient blip the manager never saw. If the detector declared the
// server dead, it was fenced and rejoins empty; any placement that somehow
// survived is drained here so a restarted server never carries stale state.
func (rt *Runtime) RestartServer(id int) bool {
	s := rt.Cl.Servers[id]
	if s.Up() {
		return false
	}
	s.SetUp()
	if s.Det() == cluster.DetDead && s.NumPlacements() > 0 {
		displaced := rt.fence(s, "restart-drain")
		rt.notifyDisplaced(s, displaced)
	}
	rt.emitFault(id, "fault-restart")
	return true
}

// SlowServer degrades a server's effective IPC (chaos.World): severity
// scales an extra interference vector that PressureOn folds into what every
// resident and the scheduler's quality estimates see. Heavy on the
// compute-bound resources, lighter on storage and network — the profile of
// thermal throttling or a noisy co-tenant below the virtualization line.
func (rt *Runtime) SlowServer(id int, severity float64) bool {
	s := rt.Cl.Servers[id]
	if !s.Up() || s.Degraded() {
		return false
	}
	var v cluster.ResVec
	for r := 0; r < int(cluster.NumResources); r++ {
		v[r] = severity * 0.5
	}
	v[cluster.ResCPU] = severity
	v[cluster.ResLLC] = severity
	v[cluster.ResMemBW] = severity
	s.SetDegrade(v)
	rt.emitFault(id, "fault-slowdown", obs.Arg{Key: "severity", Val: severity})
	return true
}

// UnslowServer ends a slowdown (chaos.World).
func (rt *Runtime) UnslowServer(id int) bool {
	s := rt.Cl.Servers[id]
	if !s.Degraded() {
		return false
	}
	s.SetDegrade(cluster.ResVec{})
	if rt.Trace.Enabled() {
		rt.Trace.Instant(serverTrack(id), "chaos", "fault-slowdown-end")
	}
	return true
}

// PartitionServer cuts heartbeats from a server (chaos.World). Resident
// work keeps running — the machine is fine, the network is not — until the
// detector declares it dead and fences it.
func (rt *Runtime) PartitionServer(id int) bool {
	s := rt.Cl.Servers[id]
	if !s.Up() || s.Partitioned() {
		return false
	}
	s.SetPartitioned(true)
	rt.emitFault(id, "fault-partition")
	return true
}

// HealServer restores heartbeats (chaos.World).
func (rt *Runtime) HealServer(id int) bool {
	s := rt.Cl.Servers[id]
	if !s.Partitioned() {
		return false
	}
	s.SetPartitioned(false)
	if rt.Trace.Enabled() {
		rt.Trace.Instant(serverTrack(id), "chaos", "fault-heal")
	}
	return true
}
