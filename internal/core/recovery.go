package core

import (
	"sort"

	"quasar/internal/cluster"
	"quasar/internal/obs"
	"quasar/internal/perfmodel"
)

// This file is Quasar's recovery policy: what the manager does when the
// failure detector hands it a dead server. The defining property is that
// re-admission is classification-aware but profiling-free — the cached
// classification signature (taskState.est) from the original admission is
// reused, so a displaced workload goes straight back through the joint
// allocation/assignment scheduler without a sandbox re-profiling round.

// RecoveryStats aggregates what the recovery policy did. All fields are
// exported and JSON-round-trippable so they survive manager snapshots.
type RecoveryStats struct {
	// Displaced counts workloads that lost at least one node to a dead
	// server (LC = the latency-critical subset).
	Displaced   int `json:"displaced"`
	DisplacedLC int `json:"displaced_lc"`
	// NodesLost counts individual placements removed by fencing.
	NodesLost int `json:"nodes_lost"`
	// Readmitted counts displaced workloads whose capacity was restored;
	// the NoReprofile variants never re-profiled between displacement and
	// recovery (signature reuse — the ≥90% acceptance criterion).
	Readmitted              int `json:"readmitted"`
	ReadmittedLC            int `json:"readmitted_lc"`
	ReadmittedNoReprofile   int `json:"readmitted_no_reprofile"`
	ReadmittedLCNoReprofile int `json:"readmitted_lc_no_reprofile"`
	// DegradedAdmissions counts re-admissions that took a partial
	// allocation because the surviving cluster could not meet the full
	// target (capacity-aware degraded admission control).
	DegradedAdmissions int `json:"degraded_admissions"`
	// ReadmitDelays holds displacement→recovery delays in seconds, in
	// recovery order.
	ReadmitDelays []float64 `json:"readmit_delays"`
}

// MTTR returns the mean displacement→recovery delay in seconds.
func (rs *RecoveryStats) MTTR() float64 {
	if len(rs.ReadmitDelays) == 0 {
		return 0
	}
	sum := 0.0
	for _, d := range rs.ReadmitDelays {
		sum += d
	}
	return sum / float64(len(rs.ReadmitDelays))
}

// HalfLife returns the median displacement→recovery delay: the time by
// which half the displaced work was back.
func (rs *RecoveryStats) HalfLife() float64 {
	n := len(rs.ReadmitDelays)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), rs.ReadmitDelays...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Recovery returns a copy of the recovery statistics.
func (q *Quasar) Recovery() RecoveryStats {
	rs := q.recovery
	rs.ReadmitDelays = append([]float64(nil), q.recovery.ReadmitDelays...)
	return rs
}

func isLC(t *Task) bool { return t.W.Type.Class() == perfmodel.LatencyCritical }

// OnServerDead implements FailureAware: run the recovery policy over the
// fenced residents of a dead server. Latency-critical workloads recover
// first; within a class, workload-ID order (the runtime's fencing order)
// keeps the pass deterministic.
func (q *Quasar) OnServerDead(s *cluster.Server, displaced []*Task) {
	now := q.rt.Eng.Now()
	ordered := append([]*Task(nil), displaced...)
	sort.SliceStable(ordered, func(i, j int) bool {
		return isLC(ordered[i]) && !isLC(ordered[j])
	})
	for _, t := range ordered {
		if t.W.BestEffort {
			// Fillers have no targets to restore; back to the queue.
			if t.NumNodes() == 0 {
				q.queue = append(q.queue, t)
			}
			continue
		}
		st, ok := q.state[t.W.ID]
		if !ok {
			continue
		}
		q.recovery.NodesLost++
		if !st.displaced {
			st.displaced = true
			st.displacedAt = now
			st.reprofiled = false
			q.recovery.Displaced++
			if isLC(t) {
				q.recovery.DisplacedLC++
			}
		}
		if t.NumNodes() == 0 {
			q.readmit(t, st)
		}
		// Partially displaced workloads keep running on their surviving
		// nodes; monitor() sees the shortfall, scale-out restores capacity,
		// and finishReadmit fires once measured performance recovers.
	}
}

// OnServerRestored implements FailureAware: returned capacity may unblock
// queued (possibly displaced) work immediately.
func (q *Quasar) OnServerRestored(s *cluster.Server) {
	q.drainQueue()
}

// readmit pushes a fully-displaced workload back through the scheduler
// using its cached classification signature — no re-profiling. If the
// surviving cluster cannot meet the full performance target, degraded
// admission takes a partial allocation instead of queueing behind an
// impossible requirement.
func (q *Quasar) readmit(t *Task, st *taskState) {
	if q.tryPlaceOpt(t, st, false) {
		q.finishReadmit(t, st, "readmit")
		return
	}
	if q.tryPlaceOpt(t, st, true) {
		q.recovery.DegradedAdmissions++
		q.finishReadmit(t, st, "readmit-degraded")
		return
	}
	t.Status = StatusQueued
	q.queue = append(q.queue, t)
	if q.tracer.Enabled() {
		q.tracer.Instant(workloadTrack(t.W.ID), "recover", "readmit-defer",
			obs.Arg{Key: "live_free_cores", Val: q.rt.Cl.LiveFreeCores()},
			obs.Arg{Key: "live_servers", Val: q.rt.Cl.NumLive()})
	}
}

// finishReadmit closes a displacement episode: the workload is placed (or
// its surviving allocation meets the target again). Records MTTR and
// whether the cached signature survived unre-profiled.
func (q *Quasar) finishReadmit(t *Task, st *taskState, how string) {
	if !st.displaced {
		return
	}
	delay := q.rt.Eng.Now() - st.displacedAt
	st.displaced = false
	noReprofile := !st.reprofiled
	q.recovery.Readmitted++
	q.recovery.ReadmitDelays = append(q.recovery.ReadmitDelays, delay)
	if noReprofile {
		q.recovery.ReadmittedNoReprofile++
	}
	if isLC(t) {
		q.recovery.ReadmittedLC++
		if noReprofile {
			q.recovery.ReadmittedLCNoReprofile++
		}
	}
	if q.tracer.Enabled() {
		q.tracer.Instant(workloadTrack(t.W.ID), "recover", "re-admit",
			obs.Arg{Key: "how", Val: how},
			obs.Arg{Key: "delay_secs", Val: delay},
			obs.Arg{Key: "reused_signature", Val: noReprofile},
			obs.Arg{Key: "nodes", Val: t.NumNodes()})
		q.tracer.Registry().Counter("readmissions_total", "displaced workloads re-admitted").Inc()
		if noReprofile {
			q.tracer.Registry().Counter("readmissions_without_reprofile_total",
				"re-admissions that reused the cached classification signature").Inc()
		}
	}
}
