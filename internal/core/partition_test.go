package core

import (
	"testing"

	"quasar/internal/cluster"
	"quasar/internal/loadgen"
	"quasar/internal/workload"
)

// partitionFixture builds a Quasar manager with partitioning toggled.
func partitionFixture(t *testing.T, enable bool, seed int64) (*Runtime, *Quasar, *workload.Universe) {
	t.Helper()
	rt, q, u := quasarFixture(t, seed)
	opts := q.opts
	opts.EnablePartitioning = enable
	// Freeze adaptation so placements stay put and the partitioning
	// decisions themselves are observable.
	opts.DisableAdaptation = true
	q2 := NewQuasar(rt, opts)
	q2.SeedLibrary(libraryForTest(u))
	rt.SetManager(q2)
	return rt, q2, u
}

func libraryForTest(u *workload.Universe) []*workload.Instance {
	var lib []*workload.Instance
	for _, tp := range []workload.Type{workload.Hadoop, workload.Memcached, workload.SingleNode} {
		for i := 0; i < 2; i++ {
			lib = append(lib, u.New(workload.Spec{Type: tp, Family: -1, MaxNodes: 4}))
		}
	}
	return lib
}

// TestPartitioningEnablesIsolationUnderContention: a cache-sensitive
// service colocated with cache-hungry neighbours gets LLC isolation when
// partitioning is on, and its experienced pressure drops.
func TestPartitioningEnablesIsolationUnderContention(t *testing.T) {
	rt, q, u := partitionFixture(t, true, 401)
	svc := u.New(workload.Spec{Type: workload.Memcached, Family: 0, MaxNodes: 2})
	rt.Submit(svc, 0, loadgen.Flat{QPS: 0.7 * svc.Target.QPS})
	rt.Run(400)

	// Force a hostile colocation on one of the service's servers.
	task := rt.Task(svc.ID)
	if task.NumNodes() == 0 {
		t.Fatal("service not placed")
	}
	srv := rt.Cl.Servers[task.Servers()[0]]
	var hot cluster.ResVec
	hot[cluster.ResLLC] = 0.9
	hot[cluster.ResNetBW] = 0.9
	srv.SetProbe(hot) // a cache/network-hungry neighbour
	// Make Quasar's estimate of the service's tolerance clearly violated.
	if st := q.state[svc.ID]; st != nil {
		st.est.Tol[cluster.ResLLC] = 0.1
		st.est.Tol[cluster.ResNetBW] = 0.1
	}
	rt.Run(500)
	rt.Stop()

	iso := srv.Isolation()
	if iso[cluster.ResLLC] <= 0 {
		t.Fatal("partitioning did not isolate the contended cache")
	}
	// The experienced pressure is attenuated accordingly.
	p := srv.PressureOn(svc.ID)
	if p[cluster.ResLLC] >= hot[cluster.ResLLC] {
		t.Fatalf("pressure not attenuated: %v", p[cluster.ResLLC])
	}
}

// TestPartitioningDisabledLeavesServersAlone.
func TestPartitioningDisabledLeavesServersAlone(t *testing.T) {
	rt, _, u := partitionFixture(t, false, 403)
	svc := u.New(workload.Spec{Type: workload.Memcached, Family: 0, MaxNodes: 2})
	rt.Submit(svc, 0, loadgen.Flat{QPS: 0.7 * svc.Target.QPS})
	rt.Run(600)
	rt.Stop()
	for _, srv := range rt.Cl.Servers {
		if srv.Isolation() != (cluster.ResVec{}) {
			t.Fatal("isolation configured with partitioning disabled")
		}
	}
}

// TestPartitioningReleasedWhenUnneeded: isolation is removed once the
// contention is gone.
func TestPartitioningReleasedWhenUnneeded(t *testing.T) {
	rt, q, u := partitionFixture(t, true, 405)
	svc := u.New(workload.Spec{Type: workload.Memcached, Family: 0, MaxNodes: 2})
	rt.Submit(svc, 0, loadgen.Flat{QPS: 0.7 * svc.Target.QPS})
	rt.Run(400)
	task := rt.Task(svc.ID)
	srv := rt.Cl.Servers[task.Servers()[0]]
	var hot cluster.ResVec
	hot[cluster.ResLLC] = 0.9
	srv.SetProbe(hot)
	if st := q.state[svc.ID]; st != nil {
		st.est.Tol[cluster.ResLLC] = 0.1
	}
	rt.Run(500)
	if srv.Isolation()[cluster.ResLLC] <= 0 {
		t.Fatal("isolation never enabled")
	}
	srv.SetProbe(cluster.ResVec{}) // the aggressor leaves
	rt.Run(700)
	rt.Stop()
	if srv.Isolation()[cluster.ResLLC] != 0 {
		t.Fatal("isolation not released after the aggressor left")
	}
}
