package slo

import (
	"quasar/internal/cluster"
	"quasar/internal/obs"
)

// Health-score formula. A server's score starts from 1.0 and loses:
//
//	WeightOverload x how far CPU utilization sits past the UtilKnee
//	                 (running hot is fine; running saturated is risk),
//	WeightPressure x the mean interference pressure across shared
//	                 resources (the Quasar signal that colocated work is
//	                 being hurt),
//	WeightAlerts   x the mass of active SLO alerts on resident workloads
//	                 (a page weighs AlertMassPage, a ticket
//	                 AlertMassTicket, clamped to 1).
//
// The failure detector's belief then caps the result: a suspect server
// scores at most SuspectCap, and a server believed dead (or physically
// down) scores 0. The blend is intentionally operator-shaped: it only uses
// signals a real control plane would have.
const (
	UtilKnee       = 0.8
	WeightOverload = 0.2
	WeightPressure = 0.3
	WeightAlerts   = 0.5
	SuspectCap     = 0.3
	AlertMassPage  = 1.0
	AlertMassTick  = 0.25
)

// alertMass returns the active-alert weight of one workload.
func (e *Engine) alertMass(workloadID string) float64 {
	ws := e.states[workloadID]
	if ws == nil {
		return 0
	}
	m := 0.0
	for ri := range ws.rules {
		if !ws.rules[ri].active {
			continue
		}
		if e.opts.Rules[ri].Name == "page" {
			m += AlertMassPage
		} else {
			m += AlertMassTick
		}
	}
	return m
}

// serverScore computes one server's health score in [0,1].
func (e *Engine) serverScore(s *cluster.Server) float64 {
	if !s.Up() || s.Det() == cluster.DetDead {
		return 0
	}
	over := 0.0
	if u := s.CPUUtilization(); u > UtilKnee {
		over = (u - UtilKnee) / (1 - UtilKnee)
	}
	pressure := 0.0
	p := s.PressureOn("")
	for r := 0; r < int(cluster.NumResources); r++ {
		pressure += clamp01(p[r])
	}
	pressure /= float64(cluster.NumResources)
	mass := 0.0
	for _, pl := range s.Placements() {
		mass += e.alertMass(pl.WorkloadID)
	}
	mass = clamp01(mass)
	score := clamp01(1 - WeightOverload*over - WeightPressure*pressure - WeightAlerts*mass)
	if s.Det() == cluster.DetSuspect && score > SuspectCap {
		score = SuspectCap
	}
	return score
}

// healthSweep scores every server and the cluster at one sweep instant.
// It runs sequentially on the sim goroutine: the per-server loop is cheap
// and its order (the cluster's server slice) is part of the trace contract.
func (e *Engine) healthSweep(now float64) {
	n := len(e.rt.Cl.Servers)
	if cap(e.scoreBuf) < n {
		e.scoreBuf = make([]float64, n) //lint:allow(hotalloc) grow-once scratch: Heatmap.Sample copies, so sweeps reuse it
	}
	scores := e.scoreBuf[:n]
	sum := 0.0
	for i, s := range e.rt.Cl.Servers {
		scores[i] = e.serverScore(s)
		sum += scores[i]
	}
	e.HealthHeat.Sample(now, scores)
	mean := 0.0
	if len(scores) > 0 {
		mean = sum / float64(len(scores))
	}
	e.ClusterHealth.Add(now, mean)
	if e.tr.Enabled() {
		e.tr.Counter("cluster", "slo", "health",
			obs.Arg{Key: "score", Val: mean},
			obs.Arg{Key: "alerts_active", Val: e.ActiveAlerts()})
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
