// Package slo implements deterministic SLO monitoring over the simulated
// cluster. Quasar's premise is that users declare performance targets, not
// reservations — so every workload carries an implicit SLO. This package
// makes that SLO explicit and continuously monitored, the way an operator
// would page on it:
//
//   - Per workload, an error budget is derived from the declared target
//     (QPS + tail latency for services, completion deadline for analytics,
//     IPS for single-node) and a per-class availability goal. Each
//     monitoring tick is classified good or bad against the target; the
//     budget is the tolerated bad fraction.
//   - Google-SRE-style multi-window multi-burn-rate rules evaluate the bad
//     fraction over a long and a short window. A fast-burn rule (page)
//     catches sharp regressions within seconds; a slow-burn rule (ticket)
//     catches budget leaks a human should look at this week. Firing
//     requires BOTH windows above threshold — the long window supplies
//     evidence, the short window confirms the problem is still happening.
//     Hysteresis (resolve fraction + hold time) stops alert flapping.
//   - Per server and cluster-wide, a health score blends utilization
//     overload, interference pressure, failure-detector belief, and the
//     mass of active alerts on resident workloads into one [0,1] number.
//
// Determinism contract. The engine runs entirely on the simulation clock,
// driven by a runtime tick listener. Per-workload evaluation is fanned out
// with par.ParFor over obs.Shards and merged in input (submission) order;
// counters, the episode log, and health sweeps are applied sequentially
// after the merge. No RNG is consumed: alerting is a pure function of the
// observed stream, so the alert stream and health scores are byte-identical
// for any -workers count.
package slo

// BurnRule is one multi-window burn-rate alerting rule. The burn rate over
// a window is (bad fraction over the window) / (error budget); a burn of 1
// consumes the budget exactly at the tolerated pace, a burn of 10 exhausts
// it 10x too fast. The rule fires when the burn over BOTH windows reaches
// Burn.
type BurnRule struct {
	// Name labels the rule in events and reports ("page", "ticket").
	Name string
	// LongSecs is the evidence window.
	LongSecs float64
	// ShortSecs is the confirmation window; it also drives resolution.
	ShortSecs float64
	// Burn is the firing threshold in budget-burn multiples.
	Burn float64
}

// Default burn-rate rules, following the SRE-workbook shape scaled to
// simulation time: the page catches a hard outage in ~30s of continuous
// badness (long window x threshold x budget), well inside the heartbeat
// detector's 40s dead window; the ticket catches slow leaks that would
// quietly eat the budget.
func defaultRules() []BurnRule {
	return []BurnRule{
		{Name: "page", LongSecs: 300, ShortSecs: 60, Burn: 10},
		{Name: "ticket", LongSecs: 1800, ShortSecs: 300, Burn: 2},
	}
}

// Options configures the SLO engine. The zero value selects the defaults
// documented on each field.
type Options struct {
	// Rules are the burn-rate rules evaluated per workload, in severity
	// order. Default: a fast-burn page (300s/60s windows, burn 10) and a
	// slow-burn ticket (1800s/300s windows, burn 2).
	Rules []BurnRule

	// GoalLC is the availability goal for latency-critical services
	// (default 0.99: budget = 1% of ticks may miss QoS).
	GoalLC float64
	// GoalBatch is the goal for analytics and single-node workloads
	// (default 0.95: their targets are softer deadlines).
	GoalBatch float64

	// WarmupSecs skips SLI evaluation for this long after a workload
	// starts (default 600s, matching the runtime's latency-distribution
	// warm-up): placement ramp-up is not an SLO violation.
	WarmupSecs float64

	// ResolveFrac and ResolveHoldSecs implement hysteresis: an active
	// alert resolves only after the short-window burn stays at or below
	// ResolveFrac x threshold for ResolveHoldSecs (defaults 0.5 and 60s).
	ResolveFrac     float64
	ResolveHoldSecs float64

	// HealthEverySecs is the health-score sweep period (default 60s).
	HealthEverySecs float64

	// Workers bounds the per-tick evaluation fan-out (0 = par default).
	Workers int
	// ParThreshold is the minimum number of tracked workloads before the
	// engine fans out; below it evaluation runs on one worker (default 8).
	// The emission path is identical either way, so traces do not depend
	// on it.
	ParThreshold int
}

// QoSMetFraction is the met-fraction below which a latency-critical tick
// counts against the budget. It matches the runtime's qos-met<->miss edge
// threshold so alerts and trace edges tell one story.
const QoSMetFraction = 0.95

// DefaultOptions returns the documented defaults.
func DefaultOptions() Options {
	return Options{
		Rules:           defaultRules(),
		GoalLC:          0.99,
		GoalBatch:       0.95,
		WarmupSecs:      600,
		ResolveFrac:     0.5,
		ResolveHoldSecs: 60,
		HealthEverySecs: 60,
		ParThreshold:    8,
	}
}

// normalized fills zero fields with defaults.
func (o Options) normalized() Options {
	d := DefaultOptions()
	if len(o.Rules) == 0 {
		o.Rules = d.Rules
	}
	if o.GoalLC <= 0 || o.GoalLC >= 1 {
		o.GoalLC = d.GoalLC
	}
	if o.GoalBatch <= 0 || o.GoalBatch >= 1 {
		o.GoalBatch = d.GoalBatch
	}
	if o.WarmupSecs < 0 {
		o.WarmupSecs = 0
	} else if o.WarmupSecs == 0 { //lint:allow(floatcmp) zero is the unset sentinel, not a computed value
		o.WarmupSecs = d.WarmupSecs
	}
	if o.ResolveFrac <= 0 || o.ResolveFrac >= 1 {
		o.ResolveFrac = d.ResolveFrac
	}
	if o.ResolveHoldSecs <= 0 {
		o.ResolveHoldSecs = d.ResolveHoldSecs
	}
	if o.HealthEverySecs <= 0 {
		o.HealthEverySecs = d.HealthEverySecs
	}
	if o.ParThreshold <= 0 {
		o.ParThreshold = d.ParThreshold
	}
	return o
}

// Episode is one fired alert from fire to resolution.
type Episode struct {
	Workload string
	Rule     string
	FireAt   float64
	// ResolveAt is negative while the alert is still active.
	ResolveAt float64
	// PeakBurn is the highest long-window burn observed while active.
	PeakBurn float64
}

// Open reports whether the episode is still active.
func (ep Episode) Open() bool { return ep.ResolveAt < 0 }
