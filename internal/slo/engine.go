package slo

import (
	"quasar/internal/core"
	"quasar/internal/metrics"
	"quasar/internal/obs"
	"quasar/internal/obs/prof"
	"quasar/internal/par"
	"quasar/internal/perfmodel"
)

// winCount tracks the bad ticks inside one sliding window, updated
// incrementally from the ring buffer: O(1) per tick, independent of window
// length.
type winCount struct {
	ticks int // window length in ticks
	bad   int // bad ticks currently inside the window
}

// ruleState is the alert state machine of one burn rule on one workload.
type ruleState struct {
	long, short winCount

	active     bool
	firedAt    float64
	peakBurn   float64
	belowSince float64 // first tick the short burn was at/below the resolve line; -1 when none
	epIdx      int     // index into Engine.episodes of the open episode
}

// wstate is the per-workload monitoring state: the SLI ring buffer plus one
// state machine per rule. It is touched only by its own fan-out task during
// a tick, then read sequentially afterwards.
type wstate struct {
	id     string
	class  perfmodel.Class
	goal   float64
	budget float64

	ring []uint8 // last len(ring) SLI bits; zero (good) before history exists
	head int     // next write position

	rules []ruleState

	badTotal, ticksTotal int
	done                 bool
}

// push slides every window forward by one tick with SLI bit b.
func (ws *wstate) push(b uint8) {
	n := len(ws.ring)
	for ri := range ws.rules {
		r := &ws.rules[ri]
		for _, wc := range [2]*winCount{&r.long, &r.short} {
			old := ws.ring[(ws.head-wc.ticks+n)%n]
			wc.bad += int(b) - int(old)
		}
	}
	ws.ring[ws.head] = b
	ws.head = (ws.head + 1) % n
}

// tickResult is what one fan-out task reports back for sequential
// application: indices into Options.Rules of alerts that fired or resolved
// this tick, and whether the workload finished.
type tickResult struct {
	fired    []int
	resolved []int
	finalize bool
}

// evalItem pairs a workload's monitor state with its task for one sweep.
type evalItem struct {
	ws *wstate
	t  *core.Task
}

// Engine monitors every non-best-effort workload of a runtime against its
// SLO and scores server and cluster health. Create it with Attach; it then
// runs itself from the runtime's tick.
type Engine struct {
	rt   *core.Runtime
	tr   *obs.Tracer
	opts Options
	tick float64

	states map[string]*wstate
	order  []string // tracked workload IDs in first-seen (submission) order

	episodes []Episode

	// HealthHeat holds one health-score row per server per sweep;
	// ClusterHealth is the per-sweep mean. Both are registered with the
	// tracer's metrics registry when tracing is on.
	HealthHeat    *metrics.Heatmap
	ClusterHealth metrics.Series

	nextHealth float64

	// evalBuf and resultsBuf are reused across ticks so the sweep does not
	// reallocate its evaluation list and result table every tick. onTick
	// runs on the single simulation goroutine.
	evalBuf    []evalItem
	resultsBuf []tickResult
	scoreBuf   []float64

	pagesFired     *obs.Counter
	ticketsFired   *obs.Counter
	alertsResolved *obs.Counter

	// Prof, when non-nil, attributes the tick sweep's wall time to
	// prof.SubSLO. Outside the determinism boundary; see internal/obs/prof.
	Prof *prof.Profiler
}

// Attach builds an SLO engine over the runtime and subscribes it to the
// runtime tick. tr may be nil (monitoring without tracing): alert episodes,
// health scores, and reports still work; only event emission and registry
// metrics are skipped.
func Attach(rt *core.Runtime, tr *obs.Tracer, opts Options) *Engine {
	opts = opts.normalized()
	e := &Engine{
		rt:         rt,
		tr:         tr,
		opts:       opts,
		tick:       rt.TickSecs(),
		states:     make(map[string]*wstate),
		HealthHeat: metrics.NewHeatmap(len(rt.Cl.Servers)),
		nextHealth: rt.Eng.Now() + opts.HealthEverySecs,
	}
	e.ClusterHealth.Name = "cluster_health"
	if reg := tr.Registry(); reg != nil {
		e.pagesFired = reg.Counter("slo_pages_fired_total", "fast-burn page alerts fired")
		e.ticketsFired = reg.Counter("slo_tickets_fired_total", "slow-burn ticket alerts fired")
		e.alertsResolved = reg.Counter("slo_alerts_resolved_total", "SLO alerts resolved")
		reg.Gauge("slo_alerts_active", "currently active SLO alerts",
			func() float64 { return float64(e.ActiveAlerts()) })
		reg.Heatmap("server_health_score", "per-server health score (1 healthy, 0 failed)", e.HealthHeat)
		reg.Series("cluster_health_score", "mean per-server health score", &e.ClusterHealth)
	}
	rt.AddTickListener(e.onTick)
	return e
}

// Options returns the normalized configuration the engine runs with.
func (e *Engine) Options() Options { return e.opts }

// windowTicks converts a window length to whole ticks (at least one).
func (e *Engine) windowTicks(secs float64) int {
	n := int(secs/e.tick + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// newState starts monitoring a workload on first sight.
//
//quasar:cold first-sight initialization: runs once per workload lifetime, not per tick
func (e *Engine) newState(t *core.Task) *wstate {
	class := t.W.Type.Class()
	goal := e.opts.GoalBatch
	if class == perfmodel.LatencyCritical {
		goal = e.opts.GoalLC
	}
	maxTicks := 1
	rules := make([]ruleState, len(e.opts.Rules))
	for i, r := range e.opts.Rules {
		rules[i] = ruleState{
			long:       winCount{ticks: e.windowTicks(r.LongSecs)},
			short:      winCount{ticks: e.windowTicks(r.ShortSecs)},
			belowSince: -1,
			epIdx:      -1,
		}
		if rules[i].long.ticks > maxTicks {
			maxTicks = rules[i].long.ticks
		}
		if rules[i].short.ticks > maxTicks {
			maxTicks = rules[i].short.ticks
		}
	}
	return &wstate{
		id:     t.W.ID,
		class:  class,
		goal:   goal,
		budget: 1 - goal,
		ring:   make([]uint8, maxTicks),
		rules:  rules,
	}
}

// started reports whether the task has ever begun serving: running now,
// finished, or displaced back to the queue after a start.
func started(t *core.Task) bool {
	switch t.Status {
	case core.StatusRunning, core.StatusCompleted:
		return true
	case core.StatusQueued:
		return t.StartAt > 0 && t.DoneAt == 0 //lint:allow(floatcmp) zero is the never-finished sentinel
	}
	return false
}

// onTick is the runtime tick listener: one monitoring sweep.
func (e *Engine) onTick(now float64) {
	t0 := e.Prof.Begin()
	defer e.Prof.End(prof.SubSLO, t0)
	// Build this tick's evaluation list in submission order. Best-effort
	// workloads carry no guarantee, so they carry no SLO.
	eval := e.evalBuf[:0]
	for _, t := range e.rt.Tasks() {
		if t.W.BestEffort {
			continue
		}
		ws := e.states[t.W.ID]
		if ws == nil {
			if t.Status != core.StatusCompleted && started(t) {
				ws = e.newState(t)
				e.states[t.W.ID] = ws
				//lint:allow(hotalloc) once per workload lifetime, at first sight
				e.order = append(e.order, t.W.ID)
			} else {
				continue
			}
		}
		if ws.done {
			continue
		}
		//lint:allow(hotalloc) append into receiver-owned scratch: grows to the tracked-workload count once
		eval = append(eval, evalItem{ws: ws, t: t})
	}
	e.evalBuf = eval

	n := len(eval)
	if n > 0 {
		workers := 1
		if n >= e.opts.ParThreshold {
			workers = e.opts.Workers
		}
		// Same emission path for both the sequential and parallel case:
		// per-task shards merged in input order, so the trace does not
		// depend on the worker count.
		shards := e.tr.Shards(n)
		if cap(e.resultsBuf) < n {
			e.resultsBuf = make([]tickResult, n) //lint:allow(hotalloc) grow-once scratch: steady-state ticks reuse it
		}
		results := e.resultsBuf[:n]
		//lint:allow(hotalloc) one closure per fan-out, amortized over every task in the sweep
		par.ParFor(workers, n, func(i int) {
			results[i] = e.evalOne(eval[i].ws, eval[i].t, now, shards[i])
		})
		e.tr.Merge(shards)
		// Counters and the episode log mutate shared state: apply the
		// per-task results sequentially, in input order.
		for i := range results {
			ws := eval[i].ws
			for _, ri := range results[i].fired {
				rule := e.opts.Rules[ri]
				if rule.Name == "page" {
					e.pagesFired.Inc()
				} else {
					e.ticketsFired.Inc()
				}
				//lint:allow(hotalloc) alert fires are rare events and the episode log is retained by design
				e.episodes = append(e.episodes, Episode{
					Workload: ws.id, Rule: rule.Name, FireAt: now, ResolveAt: -1,
				})
				ws.rules[ri].epIdx = len(e.episodes) - 1
			}
			for _, ri := range results[i].resolved {
				e.alertsResolved.Inc()
				if idx := ws.rules[ri].epIdx; idx >= 0 {
					e.episodes[idx].ResolveAt = now
					e.episodes[idx].PeakBurn = ws.rules[ri].peakBurn
					ws.rules[ri].epIdx = -1
				}
			}
			if results[i].finalize {
				ws.done = true
			}
		}
	}

	if now+1e-9 >= e.nextHealth {
		e.healthSweep(now)
		e.nextHealth += e.opts.HealthEverySecs
	}
}

// evalOne advances one workload's SLI window and alert state machines by
// one tick. It touches only ws and emits only into sh, so ticks fan out
// across workers; the returned result is applied sequentially afterwards.
func (e *Engine) evalOne(ws *wstate, t *core.Task, now float64, sh *obs.Shard) tickResult {
	var res tickResult
	if t.Status == core.StatusCompleted || t.Status == core.StatusRejected {
		// The workload is gone; close any open alert.
		for ri := range ws.rules {
			r := &ws.rules[ri]
			if !r.active {
				continue
			}
			r.active = false
			if sh.Enabled() {
				sh.Instant(workloadTrack(ws.id), "slo", "alert_resolve",
					obs.Arg{Key: "rule", Val: e.opts.Rules[ri].Name},
					obs.Arg{Key: "duration_secs", Val: now - r.firedAt},
					obs.Arg{Key: "peak_burn", Val: r.peakBurn},
					obs.Arg{Key: "reason", Val: "completed"})
			}
			//lint:allow(hotalloc) completion-time resolve: runs once per workload lifetime, bounded by len(Rules)
			res.resolved = append(res.resolved, ri)
		}
		res.finalize = true
		return res
	}

	bad := uint8(0)
	if now-t.StartAt >= e.opts.WarmupSecs && e.badTick(t, now) {
		bad = 1
	}
	ws.push(bad)
	ws.ticksTotal++
	ws.badTotal += int(bad)

	for ri := range ws.rules {
		rule := e.opts.Rules[ri]
		r := &ws.rules[ri]
		burnL := float64(r.long.bad) / float64(r.long.ticks) / ws.budget
		burnS := float64(r.short.bad) / float64(r.short.ticks) / ws.budget
		if !r.active {
			if burnL >= rule.Burn && burnS >= rule.Burn {
				r.active = true
				r.firedAt = now
				r.peakBurn = burnL
				r.belowSince = -1
				if sh.Enabled() {
					sh.Instant(workloadTrack(ws.id), "slo", "alert_fire",
						obs.Arg{Key: "rule", Val: rule.Name},
						obs.Arg{Key: "goal", Val: ws.goal},
						obs.Arg{Key: "budget", Val: ws.budget},
						obs.Arg{Key: "burn_long", Val: burnL},
						obs.Arg{Key: "burn_short", Val: burnS},
						obs.Arg{Key: "threshold", Val: rule.Burn},
						obs.Arg{Key: "window_long_secs", Val: rule.LongSecs},
						obs.Arg{Key: "window_short_secs", Val: rule.ShortSecs},
						obs.Arg{Key: "bad_secs_long", Val: float64(r.long.bad) * e.tick},
						obs.Arg{Key: "bad_secs_short", Val: float64(r.short.bad) * e.tick})
				}
				//lint:allow(hotalloc) alert fires are rare: nil in the steady state, bounded by len(Rules)
				res.fired = append(res.fired, ri)
			}
			continue
		}
		if burnL > r.peakBurn {
			r.peakBurn = burnL
		}
		// Hysteresis: resolve only after the short-window burn has stayed
		// at or below ResolveFrac x threshold for the hold time.
		if burnS <= rule.Burn*e.opts.ResolveFrac {
			if r.belowSince < 0 {
				r.belowSince = now
			}
			if now-r.belowSince >= e.opts.ResolveHoldSecs {
				r.active = false
				if sh.Enabled() {
					sh.Instant(workloadTrack(ws.id), "slo", "alert_resolve",
						obs.Arg{Key: "rule", Val: rule.Name},
						obs.Arg{Key: "duration_secs", Val: now - r.firedAt},
						obs.Arg{Key: "peak_burn", Val: r.peakBurn},
						obs.Arg{Key: "burn_short", Val: burnS})
				}
				//lint:allow(hotalloc) alert resolves are rare: nil in the steady state, bounded by len(Rules)
				res.resolved = append(res.resolved, ri)
			}
		} else {
			r.belowSince = -1
		}
	}
	return res
}

// badTick is the per-class SLI: does this tick violate the workload's
// declared target? It reads runtime state that the tick sweep has already
// updated and mutates nothing, so it is safe inside the fan-out.
func (e *Engine) badTick(t *core.Task, now float64) bool {
	switch t.W.Type.Class() {
	case perfmodel.LatencyCritical:
		if t.Status != core.StatusRunning {
			// Started but currently displaced: the service is down.
			return true
		}
		if n := t.QoSFrac.Len(); n > 0 {
			return t.QoSFrac.Vals[n-1] < QoSMetFraction
		}
		return false
	case perfmodel.Analytics:
		remaining := t.W.Genome.Work - t.Progress
		if remaining <= 0 {
			return false
		}
		deadline := t.SubmitAt + t.W.Target.CompletionSecs
		if now >= deadline {
			return true
		}
		// Behind schedule: the current rate cannot finish the remaining
		// work by the deadline.
		return e.rt.TrueRate(t) < remaining/(deadline-now)
	default: // single-node
		if t.Status != core.StatusRunning {
			return true
		}
		return e.rt.TrueRate(t) < t.W.Target.IPS
	}
}

func workloadTrack(id string) string { return "workload/" + id }

// Episodes returns every alert episode so far, in fire order.
func (e *Engine) Episodes() []Episode {
	out := make([]Episode, len(e.episodes))
	copy(out, e.episodes)
	return out
}

// ActiveAlerts counts currently firing alerts across all workloads.
func (e *Engine) ActiveAlerts() int {
	n := 0
	for _, id := range e.order {
		for ri := range e.states[id].rules {
			if e.states[id].rules[ri].active {
				n++
			}
		}
	}
	return n
}

// Tracked returns the number of workloads ever monitored.
func (e *Engine) Tracked() int { return len(e.order) }

// BudgetStatus reports one workload's budget consumption to date.
type BudgetStatus struct {
	Workload string
	Class    perfmodel.Class
	Goal     float64
	BadTicks int
	Ticks    int
	// Consumed is (bad fraction)/(budget): 1.0 means the budget is exactly
	// spent, >1 means the goal was missed over the monitored horizon.
	Consumed float64
}

// Health returns the most recent cluster health sweep value (1 = every
// server healthy, 0 = every server failed) and whether a sweep has run yet.
// Serve mode's /healthz endpoint reads this.
func (e *Engine) Health() (float64, bool) {
	if n := e.ClusterHealth.Len(); n > 0 {
		return e.ClusterHealth.Vals[n-1], true
	}
	return 0, false
}

// Budgets returns per-workload budget status in submission order.
func (e *Engine) Budgets() []BudgetStatus {
	out := make([]BudgetStatus, 0, len(e.order))
	for _, id := range e.order {
		ws := e.states[id]
		consumed := 0.0
		if ws.ticksTotal > 0 {
			consumed = float64(ws.badTotal) / float64(ws.ticksTotal) / ws.budget
		}
		out = append(out, BudgetStatus{
			Workload: ws.id, Class: ws.class, Goal: ws.goal,
			BadTicks: ws.badTotal, Ticks: ws.ticksTotal, Consumed: consumed,
		})
	}
	return out
}
