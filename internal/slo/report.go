package slo

import (
	"fmt"
	"io"
)

// fprintf writes formatted report output, ignoring errors (report
// rendering).
func fprintf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

// Report writes a human-readable SLO summary: per-workload budget status,
// the alert episode log, and the latest health picture. Iteration orders
// are the engine's deterministic orders, so the report is byte-stable.
func (e *Engine) Report(w io.Writer) {
	fprintf(w, "SLO report: %d workloads monitored, %d alerts fired (%d still active)\n",
		e.Tracked(), len(e.episodes), e.ActiveAlerts())

	fprintf(w, "  %-14s %-8s %6s %10s %10s %10s\n",
		"workload", "class", "goal", "bad-ticks", "ticks", "budget-used")
	for _, b := range e.Budgets() {
		fprintf(w, "  %-14s %-8s %6.2f %10d %10d %9.0f%%\n",
			b.Workload, b.Class, b.Goal, b.BadTicks, b.Ticks, 100*b.Consumed)
	}

	if len(e.episodes) > 0 {
		fprintf(w, "  alerts:\n")
		for _, ep := range e.episodes {
			if ep.Open() {
				fprintf(w, "    t=%8.0fs  %-6s %-14s ACTIVE (peak burn n/a yet)\n",
					ep.FireAt, ep.Rule, ep.Workload)
				continue
			}
			fprintf(w, "    t=%8.0fs  %-6s %-14s resolved after %.0fs (peak burn %.1fx)\n",
				ep.FireAt, ep.Rule, ep.Workload, ep.ResolveAt-ep.FireAt, ep.PeakBurn)
		}
	}

	if n := e.ClusterHealth.Len(); n > 0 {
		last := e.ClusterHealth.Vals[n-1]
		fprintf(w, "  cluster health: %.3f latest, %.3f mean over run\n",
			last, e.ClusterHealth.Mean())
	}

	// Trace memory, when tracing is on: the same numbers the tracer_events /
	// tracer_bytes gauges export, plus what the sinks actually retain (a
	// streaming sink holds only its flush buffer however large the trace).
	if e.tr.Enabled() {
		cur, high := e.tr.RetainedBytes()
		fprintf(w, "  trace memory: %d events, %d bytes accepted; %d bytes retained (high water %d)\n",
			e.tr.Len(), e.tr.BytesEstimate(), cur, high)
	}
}
