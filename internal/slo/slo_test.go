package slo

import (
	"bytes"
	"math"
	"runtime"
	"testing"

	"quasar/internal/cluster"
	"quasar/internal/core"
	"quasar/internal/loadgen"
	"quasar/internal/obs"
	"quasar/internal/par"
	"quasar/internal/perfmodel"
	"quasar/internal/workload"
)

// safeLoad returns an offered QPS the service can sustain within its QoS
// bound on the given platform/alloc, with margin: a healthy baseline.
func safeLoad(w *workload.Instance, p *cluster.Platform, alloc cluster.Alloc) float64 {
	capQPS := w.CapacityQPS([]perfmodel.NodeAlloc{{Platform: p, Alloc: alloc}})
	return 0.8 * w.Genome.QPSAtQoS(capQPS, w.Target.LatencyUS)
}

// pinManager places every workload on the next server of a fixed list
// immediately.
type pinManager struct {
	rt      *core.Runtime
	alloc   cluster.Alloc
	servers []int
	next    int
}

func (m *pinManager) Name() string { return "pin" }

func (m *pinManager) OnSubmit(t *core.Task) {
	srv := m.rt.Cl.Servers[m.servers[m.next%len(m.servers)]]
	m.next++
	if err := m.rt.Place(t, srv, m.alloc); err != nil {
		panic(err)
	}
}

func (m *pinManager) OnComplete(t *core.Task) {}
func (m *pinManager) OnEvicted(t *core.Task)  {}
func (m *pinManager) OnTick(now float64)      {}

func testWorld(t *testing.T, seed int64) (*core.Runtime, *workload.Universe, *pinManager) {
	t.Helper()
	platforms := cluster.LocalPlatforms()
	cl, err := cluster.New(platforms, []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime(cl, core.Options{TickSecs: 5, SampleSecs: 0, Seed: seed})
	u := workload.NewUniverse(platforms, seed+1000, 3)
	// Servers 28-39 (platforms H, I, J) all fit a 12-core/24 GB slice;
	// starting at 36 puts the first workloads on the big J machines.
	m := &pinManager{rt: rt, alloc: cluster.Alloc{Cores: 12, MemoryGB: 24},
		servers: []int{36, 37, 38, 39, 28, 29, 30, 31, 32, 33, 34, 35}}
	return rt, u, m
}

// windowBrute recomputes a window's bad count from a full bit history.
func windowBrute(hist []uint8, ticks int) int {
	n := 0
	for i := len(hist) - ticks; i < len(hist); i++ {
		if i >= 0 && hist[i] == 1 {
			n++
		}
	}
	return n
}

// TestWindowCountsMatchBruteForce drives the incremental ring-buffer window
// counts with an adversarial bit pattern and checks every window against a
// from-scratch recount at every step.
func TestWindowCountsMatchBruteForce(t *testing.T) {
	ws := &wstate{
		ring: make([]uint8, 60),
		rules: []ruleState{
			{long: winCount{ticks: 60}, short: winCount{ticks: 12}},
			{long: winCount{ticks: 37}, short: winCount{ticks: 1}},
		},
	}
	var hist []uint8
	bit := func(i int) uint8 {
		if i%7 == 0 || (i > 100 && i < 140) || i%13 < 3 {
			return 1
		}
		return 0
	}
	for i := 0; i < 400; i++ {
		b := bit(i)
		ws.push(b)
		hist = append(hist, b)
		for ri := range ws.rules {
			r := &ws.rules[ri]
			if got, want := r.long.bad, windowBrute(hist, r.long.ticks); got != want {
				t.Fatalf("step %d rule %d long: bad=%d, brute force %d", i, ri, got, want)
			}
			if got, want := r.short.bad, windowBrute(hist, r.short.ticks); got != want {
				t.Fatalf("step %d rule %d short: bad=%d, brute force %d", i, ri, got, want)
			}
		}
	}
}

// TestPageFiresOnOutageThenResolves is the fast-burn happy path: a healthy
// service, a crash, a page within the fast-burn window, recovery, and a
// hysteresis-delayed resolve.
func TestPageFiresOnOutageThenResolves(t *testing.T) {
	rt, u, m := testWorld(t, 3)
	tr := obs.New(rt.Eng.Now)
	rt.SetTracer(tr)
	rt.SetManager(m)
	eng := Attach(rt, tr, Options{})

	w := u.New(workload.Spec{Type: workload.Memcached, Family: -1, MaxNodes: 4})
	rt.Submit(w, 0, loadgen.Flat{QPS: safeLoad(w, rt.Cl.Servers[36].Platform, m.alloc)})

	const crashAt, restartAt = 2000.0, 2400.0
	rt.Eng.Schedule(crashAt, func() { rt.CrashServer(36) })
	rt.Eng.Schedule(restartAt, func() { rt.RestartServer(36) })
	rt.Run(4000)
	rt.Stop()

	eps := eng.Episodes()
	var page *Episode
	for i := range eps {
		if eps[i].Rule == "page" {
			page = &eps[i]
			break
		}
	}
	if page == nil {
		t.Fatalf("no page fired for a 400s outage; episodes: %+v", eps)
	}
	// Page needs 30s of bad in the long window + 10s in the short: it must
	// land shortly after crash+30s and well before the 400s outage ends.
	if page.FireAt < crashAt+25 || page.FireAt > crashAt+60 {
		t.Fatalf("page fired at %.0fs, want ~%.0fs", page.FireAt, crashAt+30)
	}
	if page.Open() {
		t.Fatal("page still open after recovery + hysteresis window")
	}
	// Resolve waits for the short window to drain plus the hold time.
	if page.ResolveAt < restartAt+60 || page.ResolveAt > restartAt+240 {
		t.Fatalf("page resolved at %.0fs, want within ~[%.0f,%.0f]", page.ResolveAt, restartAt+60, restartAt+240)
	}
	if page.PeakBurn < 10 {
		t.Fatalf("peak burn %.1f, want >= threshold 10", page.PeakBurn)
	}

	// The trace carries the fire/resolve pair with replayable args.
	fires, resolves := 0, 0
	for _, ev := range tr.Events() {
		switch {
		case ev.Cat == "slo" && ev.Name == "alert_fire":
			fires++
			keys := map[string]bool{}
			for _, a := range ev.Args {
				keys[a.Key] = true
			}
			for _, k := range []string{"rule", "budget", "burn_long", "burn_short", "threshold",
				"window_long_secs", "window_short_secs", "bad_secs_long", "bad_secs_short"} {
				if !keys[k] {
					t.Fatalf("alert_fire missing arg %q (needed for why-fire replay)", k)
				}
			}
		case ev.Cat == "slo" && ev.Name == "alert_resolve":
			resolves++
		}
	}
	if fires == 0 || fires != resolves {
		t.Fatalf("trace has %d fires / %d resolves, want matched non-zero pair", fires, resolves)
	}
}

// TestPageAndTicketOnSustainedMiss drives a single-node workload whose IPS
// target is unattainable: the fast burn pages first, the slow burn opens a
// ticket later, and the budget report shows the goal blown.
func TestPageAndTicketOnSustainedMiss(t *testing.T) {
	rt, u, m := testWorld(t, 5)
	rt.SetManager(m)
	eng := Attach(rt, nil, Options{}) // monitoring without tracing must work

	w := u.New(workload.Spec{Type: workload.SingleNode, Family: -1})
	w.Genome.Work = 1e12 // never finishes within the horizon
	w.Target.IPS = 1e9   // unattainable
	rt.Submit(w, 0, nil)
	rt.Run(2000)
	rt.Stop()

	var page, ticket *Episode
	eps := eng.Episodes()
	for i := range eps {
		switch eps[i].Rule {
		case "page":
			page = &eps[i]
		case "ticket":
			ticket = &eps[i]
		}
	}
	if page == nil || ticket == nil {
		t.Fatalf("want both a page and a ticket, got %+v", eps)
	}
	// Bad ticks start after the 600s warmup. With the batch/single-node
	// budget of 5%, the page's long window (300s, burn 10) needs 150s of
	// bad, so it fires near 600+150.
	if page.FireAt < 700 || page.FireAt > 800 {
		t.Fatalf("page fired at %.0fs, want ~750s", page.FireAt)
	}
	if ticket.FireAt <= page.FireAt {
		t.Fatalf("ticket (%.0fs) should fire after the page (%.0fs)", ticket.FireAt, page.FireAt)
	}
	if !page.Open() || !ticket.Open() {
		t.Fatal("alerts resolved while the miss is still sustained")
	}
	if eng.ActiveAlerts() != 2 {
		t.Fatalf("ActiveAlerts = %d, want 2", eng.ActiveAlerts())
	}
	bud := eng.Budgets()
	if len(bud) != 1 {
		t.Fatalf("budgets: %+v", bud)
	}
	if bud[0].Consumed <= 1 {
		t.Fatalf("budget consumed %.2f, want > 1 (goal blown)", bud[0].Consumed)
	}

	var buf bytes.Buffer
	eng.Report(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}

// TestHealthScoresReflectAlertsAndDetector checks the three health layers:
// a quiet server scores ~1, a server hosting a paging workload loses the
// alert mass, and a server the detector declared dead scores 0.
func TestHealthScoresReflectAlertsAndDetector(t *testing.T) {
	rt, u, m := testWorld(t, 7)
	rt.SetManager(m)
	rt.EnableFailureDetector(core.DefaultDetectorOptions())
	eng := Attach(rt, nil, Options{})

	// Server 36: hosts the impossible workload (alert mass).
	bad := u.New(workload.Spec{Type: workload.SingleNode, Family: -1})
	bad.Genome.Work = 1e12
	bad.Target.IPS = 1e9
	rt.Submit(bad, 0, nil)
	// Server 37: hosts a comfortable service.
	good := u.New(workload.Spec{Type: workload.Memcached, Family: -1, MaxNodes: 4})
	rt.Submit(good, 5, loadgen.Flat{QPS: safeLoad(good, rt.Cl.Servers[37].Platform, m.alloc)})

	// Server 20 crashes and stays down: suspect at +20s, dead at +40s.
	rt.Eng.Schedule(1000, func() { rt.CrashServer(20) })
	rt.Run(2000)
	rt.Stop()

	heat := eng.HealthHeat
	if heat.Times == nil || len(heat.Cells) == 0 {
		t.Fatal("no health sweeps recorded")
	}
	last := heat.Cells[len(heat.Cells)-1]
	if last[20] != 0 {
		t.Fatalf("dead server health %.2f, want 0", last[20])
	}
	if last[36] > 0.55 {
		t.Fatalf("paging server health %.2f, want <= ~0.5 (alert mass %v)", last[36], eng.ActiveAlerts())
	}
	if last[37] < 0.8 {
		t.Fatalf("healthy server health %.2f, want ~1", last[37])
	}
	n := eng.ClusterHealth.Len()
	if n == 0 {
		t.Fatal("no cluster health points")
	}
	first, lastC := eng.ClusterHealth.Vals[0], eng.ClusterHealth.Vals[n-1]
	if !(lastC < first) {
		t.Fatalf("cluster health should degrade over the run: first %.3f, last %.3f", first, lastC)
	}
}

// sloStream renders everything the determinism contract covers: the full
// event stream plus the health containers.
func sloStream(t *testing.T, tr *obs.Tracer, eng *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	for _, ep := range eng.Episodes() {
		buf.WriteString(ep.Workload)
		buf.WriteString(ep.Rule)
		buf.WriteString(formatF(ep.FireAt))
		buf.WriteString(formatF(ep.ResolveAt))
		buf.WriteString(formatF(ep.PeakBurn))
	}
	for i, row := range eng.HealthHeat.Cells {
		buf.WriteString(formatF(eng.HealthHeat.Times[i]))
		for _, v := range row {
			buf.WriteString(formatF(v))
		}
	}
	for i := range eng.ClusterHealth.Vals {
		buf.WriteString(formatF(eng.ClusterHealth.Vals[i]))
	}
	return buf.Bytes()
}

// formatF renders a float's exact bit pattern, so byte-comparing the
// stream catches even last-bit drift.
func formatF(v float64) string {
	bits := math.Float64bits(v)
	const hex = "0123456789abcdef"
	out := make([]byte, 16)
	for i := 0; i < 16; i++ {
		out[15-i] = hex[bits&0xf]
		bits >>= 4
	}
	return string(out)
}

// TestAlertStreamDeterministicAcrossWorkers runs a mixed scenario with
// enough workloads to cross the fan-out threshold and requires the alert
// stream, episodes, and health scores to be byte-identical for every worker
// count of the determinism contract.
func TestAlertStreamDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []byte {
		par.SetDefaultWorkers(workers)
		defer par.SetDefaultWorkers(0)
		rt, u, m := testWorld(t, 11)
		tr := obs.New(rt.Eng.Now)
		rt.SetTracer(tr)
		rt.SetManager(m)
		rt.EnableFailureDetector(core.DefaultDetectorOptions())
		// Low threshold so the fan-out path actually runs in this test.
		eng := Attach(rt, tr, Options{ParThreshold: 2})

		at := 0.0
		for i := 0; i < 6; i++ {
			w := u.New(workload.Spec{Type: workload.Memcached, Family: -1, MaxNodes: 4})
			srv := rt.Cl.Servers[m.servers[i%len(m.servers)]]
			rt.Submit(w, at, loadgen.Flat{QPS: safeLoad(w, srv.Platform, m.alloc)})
			at += 5
		}
		for i := 0; i < 6; i++ {
			w := u.New(workload.Spec{Type: workload.SingleNode, Family: -1})
			if i%2 == 0 {
				w.Target.IPS *= 100 // half the fleet misses its target
			}
			w.Genome.Work = 1e9
			rt.Submit(w, at, nil)
			at += 5
		}
		rt.Eng.Schedule(1200, func() { rt.CrashServer(36) })
		rt.Eng.Schedule(1600, func() { rt.RestartServer(36) })
		rt.Run(3000)
		rt.Stop()
		return sloStream(t, tr, eng)
	}

	want := run(1)
	if !bytes.Contains(want, []byte("alert_fire")) {
		t.Fatal("scenario fired no alerts; the determinism check would be vacuous")
	}
	for _, w := range []int{4, runtime.NumCPU()} {
		if got := run(w); !bytes.Equal(want, got) {
			t.Fatalf("workers=%d: alert stream / health scores diverged from sequential", w)
		}
	}
}

// TestBatchDeadlineSLI pins the analytics SLI: a batch job far behind its
// deadline accumulates bad ticks and alerts; completing clears it.
func TestBatchDeadlineSLI(t *testing.T) {
	rt, u, m := testWorld(t, 13)
	rt.SetManager(m)
	eng := Attach(rt, nil, Options{})

	w := u.New(workload.Spec{Type: workload.Hadoop, Family: 0, MaxNodes: 1, TargetSlack: 1.2,
		Dataset: workload.Dataset{Name: "d", SizeGB: 10, WorkMult: 1, MemMult: 1}})
	w.Target.CompletionSecs = 700 // one tick rate cannot make this
	w.Genome.Work = 1e7
	rt.Submit(w, 0, nil)
	rt.Run(3000)
	rt.Stop()

	eps := eng.Episodes()
	if len(eps) == 0 {
		t.Fatal("hopelessly-late batch job raised no alert")
	}
	for _, ep := range eps {
		if ep.Workload != w.ID {
			t.Fatalf("unexpected workload in episodes: %+v", ep)
		}
	}
}
