package chaos

import (
	"fmt"
	"strconv"

	"quasar/internal/obs/prof"
	"quasar/internal/sim"
)

// World is the cluster-facing surface the injector drives. internal/core's
// Runtime implements it. Every method returns whether the action applied;
// an injection can no-op when its target is already in the requested state
// (e.g. crashing a server that another fault took down first).
type World interface {
	// NumServers returns the size of the target pool for random faults.
	NumServers() int
	// CrashServer takes a server down, killing resident work.
	CrashServer(id int) bool
	// RestartServer brings a crashed server back up, empty.
	RestartServer(id int) bool
	// SlowServer installs slowdown pressure scaled by severity in (0,1].
	SlowServer(id int, severity float64) bool
	// UnslowServer removes slowdown pressure.
	UnslowServer(id int) bool
	// PartitionServer cuts heartbeats from the server.
	PartitionServer(id int) bool
	// HealServer restores heartbeats.
	HealServer(id int) bool
}

// Stats counts what the injector actually did. All fields are exported so
// experiment results can embed and JSON-serialize them.
type Stats struct {
	Crashes    int `json:"crashes"`
	Restarts   int `json:"restarts"`
	Slowdowns  int `json:"slowdowns"`
	Partitions int `json:"partitions"`
	Heals      int `json:"heals"`
	// Skipped counts injections that no-oped because the target was already
	// in the requested state.
	Skipped int `json:"skipped"`
}

// Total returns the number of applied primary injections (recoveries —
// restarts, slowdown ends, heals — not included).
func (s Stats) Total() int { return s.Crashes + s.Slowdowns + s.Partitions }

// Injector arms a Plan's faults on a simulation engine. Create one with
// NewInjector, call Start before running the engine.
type Injector struct {
	eng   *sim.Engine
	w     World
	plan  *Plan
	rng   *sim.RNG
	stats Stats

	// Prof, when non-nil, attributes injection wall time to prof.SubChaos.
	// Outside the determinism boundary; see internal/obs/prof.
	Prof *prof.Profiler
}

// NewInjector validates the plan and binds it to an engine and a world. The
// caller hands over a dedicated RNG (conventionally rt.RNG.Stream("chaos"),
// derived before the run starts so derivation order is fixed).
func NewInjector(eng *sim.Engine, w World, plan *Plan, rng *sim.RNG) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if w.NumServers() <= 0 {
		return nil, fmt.Errorf("chaos: world has no servers")
	}
	for i := range plan.Faults {
		if plan.Faults[i].Server >= w.NumServers() {
			return nil, fmt.Errorf("chaos: fault %d targets server %d, world has %d",
				i, plan.Faults[i].Server, w.NumServers())
		}
	}
	return &Injector{eng: eng, w: w, plan: plan, rng: rng}, nil
}

// Stats returns what has been injected so far.
func (in *Injector) Stats() Stats { return in.stats }

// Plan returns the armed plan.
func (in *Injector) Plan() *Plan { return in.plan }

// Start arms every fault in plan order. Substream derivation runs here,
// sequentially, so the schedule is independent of anything that happens
// during the run. Faults whose first arrival is already in the past
// (At < engine now) are dropped.
func (in *Injector) Start() {
	// Plan order, never map order: the analyzer's chaos rule exists to keep
	// it that way.
	for i := range in.plan.Faults {
		spec := &in.plan.Faults[i]
		sub := in.rng.Stream("fault:" + strconv.Itoa(i))
		in.arm(spec, sub)
	}
}

func (in *Injector) arm(spec *FaultSpec, rng *sim.RNG) {
	first := spec.At
	if spec.RatePerHour > 0 {
		first = spec.At + rng.Exponential(3600/spec.RatePerHour)
	}
	if first < in.eng.Now() {
		return
	}
	fired := 0
	var fire func()
	fire = func() {
		if spec.Until > 0 && in.eng.Now() >= spec.Until {
			return
		}
		in.inject(spec, rng)
		fired++
		if !spec.repeating() || (spec.Count > 0 && fired >= spec.Count) {
			return
		}
		var next float64
		if spec.Every > 0 {
			next = in.eng.Now() + spec.Every
		} else {
			next = in.eng.Now() + rng.Exponential(3600/spec.RatePerHour)
		}
		if spec.Until > 0 && next >= spec.Until {
			return
		}
		in.eng.Schedule(next, fire)
	}
	in.eng.Schedule(first, fire)
}

// inject applies one arrival of spec now, scheduling the matching recovery.
// The target draw happens per injection so repeating random faults spread
// over the cluster.
func (in *Injector) inject(spec *FaultSpec, rng *sim.RNG) {
	t0 := in.Prof.Begin()
	defer in.Prof.End(prof.SubChaos, t0)
	id := spec.Server
	if id == AnyServer {
		id = rng.Intn(in.w.NumServers())
	}
	switch spec.Kind {
	case KindCrash:
		if !in.w.CrashServer(id) {
			in.stats.Skipped++
			return
		}
		in.stats.Crashes++
		if spec.DurationSecs > 0 {
			in.eng.After(spec.DurationSecs, func() {
				if in.w.RestartServer(id) {
					in.stats.Restarts++
				}
			})
		}
	case KindSlowdown:
		if !in.w.SlowServer(id, spec.Severity) {
			in.stats.Skipped++
			return
		}
		in.stats.Slowdowns++
		in.eng.After(spec.DurationSecs, func() {
			in.w.UnslowServer(id)
		})
	case KindPartition:
		if !in.w.PartitionServer(id) {
			in.stats.Skipped++
			return
		}
		in.stats.Partitions++
		in.eng.After(spec.DurationSecs, func() {
			if in.w.HealServer(id) {
				in.stats.Heals++
			}
		})
	}
}
