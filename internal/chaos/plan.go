// Package chaos is a deterministic fault-injection engine. It turns a
// declarative Plan into server crashes, restarts, transient slowdowns
// (degraded IPC, modeled as an extra interference source), and
// lost-heartbeat network partitions, all driven by the simulation clock.
//
// Determinism contract: every random choice (fault target, rate-based
// arrival time) is drawn from a per-fault sim.RNG substream derived
// sequentially in plan order, and every injection fires on the single
// simulation goroutine. A plan therefore produces a byte-identical fault
// schedule for any -workers count, matching the discipline of
// internal/par and internal/obs.
//
// The package depends only on internal/sim; the cluster side is reached
// through the World interface, which internal/core's Runtime implements.
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Fault kinds understood by the injector.
const (
	// KindCrash takes a server down, killing resident work. DurationSecs 0
	// means the server never restarts; otherwise it restarts (empty) after
	// that long.
	KindCrash = "crash"
	// KindSlowdown degrades a server's effective IPC for DurationSecs by
	// injecting extra interference pressure scaled by Severity.
	KindSlowdown = "slowdown"
	// KindPartition cuts heartbeats between a server and the manager for
	// DurationSecs. Resident work keeps running unless the detector declares
	// the server dead and fences it first.
	KindPartition = "partition"
)

// AnyServer as a FaultSpec.Server means "pick a target at random from the
// fault's own RNG substream" (a fresh draw per injection for repeating
// faults).
const AnyServer = -1

// FaultSpec is one fault source in a plan. Exactly one arrival mode applies:
//
//   - one-shot: fires once at At (the default when neither Every nor
//     RatePerHour is set),
//   - periodic: fires at At, At+Every, At+2*Every, ...,
//   - rate-based: a Poisson process with RatePerHour arrivals per hour,
//     starting at At.
//
// Repeating faults stop after Count injections (0 = unlimited) and never
// fire at or after Until (0 = no horizon).
type FaultSpec struct {
	// Kind is one of crash, slowdown, partition.
	Kind string `json:"kind"`
	// Server is the target server ID, or AnyServer (-1, the default when
	// omitted) for a random target per injection.
	Server int `json:"server"`
	// At is the (first) injection time in seconds of sim time.
	At float64 `json:"at"`
	// Every makes the fault periodic with this period in seconds.
	Every float64 `json:"every,omitempty"`
	// RatePerHour makes the fault a Poisson arrival process.
	RatePerHour float64 `json:"rate_per_hour,omitempty"`
	// Count caps the number of injections for periodic/rate faults.
	Count int `json:"count,omitempty"`
	// Until stops periodic/rate faults at this sim time.
	Until float64 `json:"until,omitempty"`
	// DurationSecs is how long the fault lasts: restart delay for crashes
	// (0 = permanent), slowdown length, partition length.
	DurationSecs float64 `json:"duration_secs,omitempty"`
	// Severity in (0,1] scales the interference pressure of a slowdown.
	Severity float64 `json:"severity,omitempty"`
}

// UnmarshalJSON decodes a spec with Server defaulting to AnyServer, so plans
// only name a server when they mean one. Unknown fields are rejected here
// because the outer decoder's DisallowUnknownFields does not reach into a
// custom unmarshaler.
func (f *FaultSpec) UnmarshalJSON(b []byte) error {
	type alias FaultSpec
	a := alias{Server: AnyServer}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&a); err != nil {
		return err
	}
	*f = FaultSpec(a)
	return nil
}

// repeating reports whether the spec fires more than once.
func (f *FaultSpec) repeating() bool { return f.Every > 0 || f.RatePerHour > 0 }

// Validate checks a single spec.
func (f *FaultSpec) Validate() error {
	switch f.Kind {
	case KindCrash:
		if f.Severity != 0 { //lint:allow(floatcmp) zero means "field not set"
			return fmt.Errorf("chaos: crash fault does not take a severity")
		}
	case KindSlowdown:
		if f.Severity <= 0 || f.Severity > 1 {
			return fmt.Errorf("chaos: slowdown severity must be in (0,1], got %g", f.Severity)
		}
		if f.DurationSecs <= 0 {
			return fmt.Errorf("chaos: slowdown needs duration_secs > 0")
		}
	case KindPartition:
		if f.DurationSecs <= 0 {
			return fmt.Errorf("chaos: partition needs duration_secs > 0")
		}
		if f.Severity != 0 { //lint:allow(floatcmp) zero means "field not set"
			return fmt.Errorf("chaos: partition fault does not take a severity")
		}
	default:
		return fmt.Errorf("chaos: unknown fault kind %q", f.Kind)
	}
	if f.Server < AnyServer {
		return fmt.Errorf("chaos: invalid server %d", f.Server)
	}
	if f.At < 0 {
		return fmt.Errorf("chaos: at must be >= 0, got %g", f.At)
	}
	if f.Every > 0 && f.RatePerHour > 0 {
		return fmt.Errorf("chaos: choose one of every / rate_per_hour, not both")
	}
	if f.Every < 0 || f.RatePerHour < 0 || f.DurationSecs < 0 {
		return fmt.Errorf("chaos: negative timing field in %+v", *f)
	}
	if f.Count < 0 {
		return fmt.Errorf("chaos: count must be >= 0, got %d", f.Count)
	}
	if (f.Count > 0 || f.Until > 0) && !f.repeating() {
		return fmt.Errorf("chaos: count/until only apply to periodic or rate faults")
	}
	if f.Until > 0 && f.Until <= f.At {
		return fmt.Errorf("chaos: until (%g) must be after at (%g)", f.Until, f.At)
	}
	return nil
}

// Plan is a declarative fault schedule: a named list of fault sources.
// Fault order matters — RNG substreams derive in list order.
type Plan struct {
	Name   string      `json:"name"`
	Faults []FaultSpec `json:"faults"`
}

// Validate checks every spec in the plan.
func (p *Plan) Validate() error {
	if len(p.Faults) == 0 {
		return fmt.Errorf("chaos: plan %q has no faults", p.Name)
	}
	for i := range p.Faults {
		if err := p.Faults[i].Validate(); err != nil {
			return fmt.Errorf("chaos: fault %d: %w", i, err)
		}
	}
	return nil
}

// Parse decodes and validates a plan from JSON.
func Parse(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("chaos: parsing plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load reads a plan from a JSON file.
func Load(path string) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	defer func() { _ = f.Close() }()
	return Parse(f)
}
