package chaos

// DefaultStormPlan is the canned fault storm used by the availability
// experiment, the trace-diff-chaos CI lane, and the README example. It
// mixes every fault kind and every arrival mode: recoverable and permanent
// crashes, a Poisson crash process, periodic and one-shot slowdowns, and
// partitions both longer and shorter than the detection window.
// testdata/storm.json is the same plan in file form; a test keeps the two
// in sync.
func DefaultStormPlan() *Plan {
	return &Plan{
		Name: "storm",
		Faults: []FaultSpec{
			{Kind: KindCrash, Server: AnyServer, At: 2500, DurationSecs: 2000},
			{Kind: KindCrash, Server: AnyServer, At: 4000},
			{Kind: KindCrash, Server: AnyServer, At: 3000, RatePerHour: 2, Count: 4, Until: 12000, DurationSecs: 1500},
			{Kind: KindSlowdown, Server: AnyServer, At: 2000, Every: 3000, Count: 3, DurationSecs: 1200, Severity: 0.6},
			{Kind: KindSlowdown, Server: AnyServer, At: 5000, DurationSecs: 2000, Severity: 0.8},
			{Kind: KindPartition, Server: AnyServer, At: 6000, DurationSecs: 900},
			{Kind: KindPartition, Server: AnyServer, At: 9000, DurationSecs: 120},
		},
	}
}
