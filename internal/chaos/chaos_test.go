package chaos

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"quasar/internal/sim"
)

func TestFaultSpecValidate(t *testing.T) {
	cases := []struct {
		name    string
		spec    FaultSpec
		wantErr string
	}{
		{"one-shot crash", FaultSpec{Kind: KindCrash, Server: 0, At: 10}, ""},
		{"permanent crash any server", FaultSpec{Kind: KindCrash, Server: AnyServer, At: 0}, ""},
		{"recoverable crash", FaultSpec{Kind: KindCrash, Server: 1, At: 5, DurationSecs: 30}, ""},
		{"periodic slowdown", FaultSpec{Kind: KindSlowdown, Server: AnyServer, At: 10, Every: 100, Count: 3, DurationSecs: 20, Severity: 0.5}, ""},
		{"rate partition", FaultSpec{Kind: KindPartition, Server: AnyServer, At: 0, RatePerHour: 4, Until: 1000, DurationSecs: 60}, ""},

		{"unknown kind", FaultSpec{Kind: "meteor", Server: 0}, "unknown fault kind"},
		{"crash with severity", FaultSpec{Kind: KindCrash, Server: 0, Severity: 0.5}, "does not take a severity"},
		{"slowdown severity zero", FaultSpec{Kind: KindSlowdown, Server: 0, DurationSecs: 10}, "severity must be in (0,1]"},
		{"slowdown severity above one", FaultSpec{Kind: KindSlowdown, Server: 0, DurationSecs: 10, Severity: 1.5}, "severity must be in (0,1]"},
		{"slowdown without duration", FaultSpec{Kind: KindSlowdown, Server: 0, Severity: 0.5}, "needs duration_secs"},
		{"partition without duration", FaultSpec{Kind: KindPartition, Server: 0}, "needs duration_secs"},
		{"partition with severity", FaultSpec{Kind: KindPartition, Server: 0, DurationSecs: 10, Severity: 0.2}, "does not take a severity"},
		{"bad server", FaultSpec{Kind: KindCrash, Server: -2}, "invalid server"},
		{"negative at", FaultSpec{Kind: KindCrash, Server: 0, At: -1}, "at must be >= 0"},
		{"both arrival modes", FaultSpec{Kind: KindCrash, Server: 0, Every: 10, RatePerHour: 1}, "not both"},
		{"negative count", FaultSpec{Kind: KindCrash, Server: 0, Every: 10, Count: -1}, "count must be >= 0"},
		{"count on one-shot", FaultSpec{Kind: KindCrash, Server: 0, Count: 2}, "only apply to periodic or rate"},
		{"until on one-shot", FaultSpec{Kind: KindCrash, Server: 0, Until: 100}, "only apply to periodic or rate"},
		{"until before at", FaultSpec{Kind: KindCrash, Server: 0, At: 200, Every: 10, Until: 100}, "must be after at"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestPlanValidate(t *testing.T) {
	if err := (&Plan{Name: "empty"}).Validate(); err == nil {
		t.Error("empty plan validated")
	}
	p := &Plan{Name: "bad", Faults: []FaultSpec{
		{Kind: KindCrash, Server: 0, At: 1},
		{Kind: "meteor", Server: 0},
	}}
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "fault 1") {
		t.Errorf("plan error should name the offending fault index, got %v", err)
	}
}

func TestParseDefaultsAndUnknownFields(t *testing.T) {
	p, err := Parse(strings.NewReader(`{"name":"x","faults":[{"kind":"crash","at":10}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Faults[0].Server != AnyServer {
		t.Errorf("omitted server = %d, want AnyServer (%d)", p.Faults[0].Server, AnyServer)
	}
	if _, err := Parse(strings.NewReader(`{"name":"x","faults":[{"kind":"crash","at":10,"sevrity":0.5}]}`)); err == nil {
		t.Error("misspelled field parsed without error")
	}
	if _, err := Parse(strings.NewReader(`{"name":"x","faults":[{"kind":"crash","severity":1}]}`)); err == nil {
		t.Error("invalid plan parsed without error")
	}
}

// TestStormFileMatchesDefaultPlan keeps testdata/storm.json (used by the
// trace-diff-chaos make target and the README example) in sync with
// DefaultStormPlan (used by the availability experiment).
func TestStormFileMatchesDefaultPlan(t *testing.T) {
	fromFile, err := Load("testdata/storm.json")
	if err != nil {
		t.Fatal(err)
	}
	if want := DefaultStormPlan(); !reflect.DeepEqual(fromFile, want) {
		t.Errorf("testdata/storm.json diverged from DefaultStormPlan():\n file: %+v\n code: %+v", fromFile, want)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("testdata/no-such-plan.json"); err == nil {
		t.Error("loading a missing file succeeded")
	}
}

// fakeWorld records every World call in order; per-server up/slow/partition
// state makes the no-op semantics observable.
type fakeWorld struct {
	n           int
	log         []string
	down        map[int]bool
	slowed      map[int]bool
	partitioned map[int]bool
}

func newFakeWorld(n int) *fakeWorld {
	return &fakeWorld{
		n: n, down: map[int]bool{}, slowed: map[int]bool{}, partitioned: map[int]bool{},
	}
}

func (w *fakeWorld) record(format string, args ...any) {
	w.log = append(w.log, fmt.Sprintf(format, args...))
}

func (w *fakeWorld) NumServers() int { return w.n }

func (w *fakeWorld) CrashServer(id int) bool {
	if w.down[id] {
		return false
	}
	w.down[id] = true
	w.record("crash %d", id)
	return true
}

func (w *fakeWorld) RestartServer(id int) bool {
	if !w.down[id] {
		return false
	}
	w.down[id] = false
	w.record("restart %d", id)
	return true
}

func (w *fakeWorld) SlowServer(id int, severity float64) bool {
	if w.down[id] || w.slowed[id] {
		return false
	}
	w.slowed[id] = true
	w.record("slow %d %.2f", id, severity)
	return true
}

func (w *fakeWorld) UnslowServer(id int) bool {
	if !w.slowed[id] {
		return false
	}
	w.slowed[id] = false
	w.record("unslow %d", id)
	return true
}

func (w *fakeWorld) PartitionServer(id int) bool {
	if w.down[id] || w.partitioned[id] {
		return false
	}
	w.partitioned[id] = true
	w.record("partition %d", id)
	return true
}

func (w *fakeWorld) HealServer(id int) bool {
	if !w.partitioned[id] {
		return false
	}
	w.partitioned[id] = false
	w.record("heal %d", id)
	return true
}

// runPlan arms the plan on a fresh engine/world and runs to the horizon.
func runPlan(t *testing.T, plan *Plan, servers int, seed int64, horizon float64) (*fakeWorld, Stats) {
	t.Helper()
	eng := sim.NewEngine()
	w := newFakeWorld(servers)
	inj, err := NewInjector(eng, w, plan, sim.NewRNG(seed).Stream("chaos"))
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	eng.Run(horizon)
	return w, inj.Stats()
}

func TestInjectorOneShotCrashRestartPairing(t *testing.T) {
	plan := &Plan{Name: "t", Faults: []FaultSpec{
		{Kind: KindCrash, Server: 2, At: 100, DurationSecs: 50},
		{Kind: KindCrash, Server: 0, At: 200}, // permanent
	}}
	w, stats := runPlan(t, plan, 4, 1, 1000)
	want := []string{"crash 2", "restart 2", "crash 0"}
	if !reflect.DeepEqual(w.log, want) {
		t.Errorf("log = %v, want %v", w.log, want)
	}
	if stats.Crashes != 2 || stats.Restarts != 1 || stats.Skipped != 0 {
		t.Errorf("stats = %+v, want 2 crashes, 1 restart", stats)
	}
	if !w.down[0] || w.down[2] {
		t.Errorf("end state: down=%v, want only server 0 down", w.down)
	}
}

func TestInjectorPeriodicCountCap(t *testing.T) {
	plan := &Plan{Name: "t", Faults: []FaultSpec{
		{Kind: KindSlowdown, Server: 1, At: 10, Every: 100, Count: 3, DurationSecs: 20, Severity: 0.5},
	}}
	w, stats := runPlan(t, plan, 2, 1, 10000)
	want := []string{
		"slow 1 0.50", "unslow 1",
		"slow 1 0.50", "unslow 1",
		"slow 1 0.50", "unslow 1",
	}
	if !reflect.DeepEqual(w.log, want) {
		t.Errorf("log = %v, want %v", w.log, want)
	}
	if stats.Slowdowns != 3 {
		t.Errorf("slowdowns = %d, want 3 (count cap)", stats.Slowdowns)
	}
}

func TestInjectorPeriodicUntilCap(t *testing.T) {
	plan := &Plan{Name: "t", Faults: []FaultSpec{
		{Kind: KindPartition, Server: 0, At: 10, Every: 100, Until: 350, DurationSecs: 5},
	}}
	// Arrivals at 10, 110, 210, 310; 410 >= Until is never scheduled.
	w, stats := runPlan(t, plan, 1, 1, 10000)
	if stats.Partitions != 4 || stats.Heals != 4 {
		t.Errorf("stats = %+v, want 4 partitions healed (until cap)", stats)
	}
	if len(w.log) != 8 {
		t.Errorf("log has %d entries, want 8: %v", len(w.log), w.log)
	}
}

func TestInjectorSkipsAlreadyDown(t *testing.T) {
	plan := &Plan{Name: "t", Faults: []FaultSpec{
		{Kind: KindCrash, Server: 0, At: 100}, // permanent
		{Kind: KindCrash, Server: 0, At: 200, DurationSecs: 10},
		{Kind: KindSlowdown, Server: 0, At: 300, DurationSecs: 10, Severity: 0.5},
		{Kind: KindPartition, Server: 0, At: 400, DurationSecs: 10},
	}}
	w, stats := runPlan(t, plan, 1, 1, 1000)
	if !reflect.DeepEqual(w.log, []string{"crash 0"}) {
		t.Errorf("log = %v, want only the first crash to apply", w.log)
	}
	if stats.Skipped != 3 || stats.Total() != 1 {
		t.Errorf("stats = %+v, want 3 skipped, 1 applied", stats)
	}
}

func TestInjectorRateArrivalsRespectCaps(t *testing.T) {
	plan := &Plan{Name: "t", Faults: []FaultSpec{
		{Kind: KindCrash, Server: AnyServer, At: 0, RatePerHour: 60, Count: 5, DurationSecs: 30},
	}}
	_, stats := runPlan(t, plan, 8, 42, 100000)
	if stats.Crashes+stats.Skipped != 5 {
		t.Errorf("rate fault fired %d times (%+v), want exactly Count=5 arrivals",
			stats.Crashes+stats.Skipped, stats)
	}
	if stats.Restarts != stats.Crashes {
		t.Errorf("every recoverable crash should restart by the horizon: %+v", stats)
	}
}

func TestInjectorDropsPastArrivals(t *testing.T) {
	eng := sim.NewEngine()
	eng.Schedule(500, func() {})
	eng.RunAll() // now = 500
	w := newFakeWorld(2)
	plan := &Plan{Name: "t", Faults: []FaultSpec{
		{Kind: KindCrash, Server: 0, At: 100},  // in the past: dropped
		{Kind: KindCrash, Server: 1, At: 1000}, // still ahead: fires
	}}
	inj, err := NewInjector(eng, w, plan, sim.NewRNG(1).Stream("chaos"))
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	eng.RunAll()
	if !reflect.DeepEqual(w.log, []string{"crash 1"}) {
		t.Errorf("log = %v, want only the future crash", w.log)
	}
}

func TestNewInjectorRejectsBadTargets(t *testing.T) {
	eng := sim.NewEngine()
	plan := &Plan{Name: "t", Faults: []FaultSpec{{Kind: KindCrash, Server: 5, At: 1}}}
	if _, err := NewInjector(eng, newFakeWorld(4), plan, sim.NewRNG(1)); err == nil {
		t.Error("fault targeting server 5 of 4 accepted")
	}
	if _, err := NewInjector(eng, newFakeWorld(0), DefaultStormPlan(), sim.NewRNG(1)); err == nil {
		t.Error("world with no servers accepted")
	}
}

// TestInjectorDeterministicSchedule runs the storm plan twice with the same
// seed and once with a different seed: identical seeds must produce an
// identical action log, and the log must exercise randomness (a different
// seed diverges).
func TestInjectorDeterministicSchedule(t *testing.T) {
	run := func(seed int64) []string {
		w, _ := runPlan(t, DefaultStormPlan(), 10, seed, 20000)
		return w.log
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n a: %v\n b: %v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("storm plan produced no actions")
	}
	if c := run(8); reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical schedules; RNG unused?")
	}
}
