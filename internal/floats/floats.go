// Package floats holds the epsilon comparisons that quasar-lint's
// floatcmp analyzer points code at: exact ==/!= between floating-point
// values is flagged, and callers compare through these helpers instead.
package floats

import "math"

// DefaultTol is the relative tolerance used by Close: loose enough to
// absorb accumulated rounding across a simulation run, tight enough to
// distinguish genuinely different measurements.
const DefaultTol = 1e-9

// AlmostEqual reports whether a and b are equal within tol, measured
// relative to the larger magnitude (and absolutely for values near zero).
// NaN compares unequal to everything, matching IEEE semantics; equal
// infinities compare equal.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { //lint:allow(floatcmp) fast path and infinity handling need exact equality
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		// Unequal infinities (or an infinity against a finite value)
		// are never approximately equal.
		return false
	}
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= tol*scale
}

// Close reports AlmostEqual at DefaultTol.
func Close(a, b float64) bool { return AlmostEqual(a, b, DefaultTol) }
