package floats

import (
	"math"
	"testing"
)

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 1e-9, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1 + 1e-6, 1e-9, false},
		{1e12, 1e12 * (1 + 1e-12), 1e-9, true}, // relative scaling
		{0, 1e-12, 1e-9, true},                 // absolute near zero
		{0, 1e-6, 1e-9, false},
		{math.Inf(1), math.Inf(1), 1e-9, true},
		{math.Inf(1), math.Inf(-1), 1e-9, false},
		{math.NaN(), math.NaN(), 1e-9, false},
		{math.NaN(), 1, 1e-9, false},
		{math.Inf(1), 1e300, 1e-9, false},
		{-1, 1, 2, true}, // generous tolerance: |a-b| = 2 = tol*scale
	}
	for _, tc := range cases {
		if got := AlmostEqual(tc.a, tc.b, tc.tol); got != tc.want {
			t.Errorf("AlmostEqual(%v, %v, %v) = %v, want %v", tc.a, tc.b, tc.tol, got, tc.want)
		}
	}
}

func TestClose(t *testing.T) {
	if !Close(0.1+0.2, 0.3) {
		t.Error("Close must absorb classic binary rounding")
	}
	if Close(1, 1.001) {
		t.Error("Close must distinguish genuinely different values")
	}
}
