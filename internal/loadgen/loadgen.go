// Package loadgen produces the traffic patterns of the paper's evaluation:
// flat, fluctuating, and spiking load for the HotCRP scenario (Fig. 8), the
// diurnal pattern for the stateful-services scenario (Fig. 9), and
// inter-arrival schedules for workload submission.
package loadgen

import (
	"math"

	"quasar/internal/sim"
)

// Pattern maps virtual time (seconds) to offered load (QPS).
type Pattern interface {
	Load(t float64) float64
}

// Flat is constant load.
type Flat struct{ QPS float64 }

// Load implements Pattern.
func (f Flat) Load(float64) float64 { return f.QPS }

// Fluctuating is a sinusoid between Min and Max with the given period.
type Fluctuating struct {
	Min, Max float64
	Period   float64
	Phase    float64
}

// Load implements Pattern.
func (f Fluctuating) Load(t float64) float64 {
	mid := (f.Min + f.Max) / 2
	amp := (f.Max - f.Min) / 2
	return mid + amp*math.Sin(2*math.Pi*t/f.Period+f.Phase)
}

// Spike is base load with a sharp plateau between Start and Start+Duration,
// with linear ramps of RampSecs on each side.
type Spike struct {
	Base, Peak      float64
	Start, Duration float64
	RampSecs        float64
}

// Load implements Pattern.
func (s Spike) Load(t float64) float64 {
	ramp := s.RampSecs
	if ramp <= 0 {
		ramp = 1
	}
	switch {
	case t < s.Start || t > s.Start+s.Duration+2*ramp:
		return s.Base
	case t < s.Start+ramp:
		return s.Base + (s.Peak-s.Base)*(t-s.Start)/ramp
	case t < s.Start+ramp+s.Duration:
		return s.Peak
	default:
		return s.Peak - (s.Peak-s.Base)*(t-(s.Start+ramp+s.Duration))/ramp
	}
}

// Diurnal is a day-night cycle: load swings between Min (night) and Max
// (peak afternoon) over a 24-hour period.
type Diurnal struct {
	Min, Max float64
	// PeakHour is the hour of day (0-24) with maximum load.
	PeakHour float64
}

// Load implements Pattern.
func (d Diurnal) Load(t float64) float64 {
	const day = 24 * 3600
	hour := math.Mod(t, day) / 3600
	mid := (d.Min + d.Max) / 2
	amp := (d.Max - d.Min) / 2
	return mid + amp*math.Cos(2*math.Pi*(hour-d.PeakHour)/24)
}

// Noisy wraps a pattern with multiplicative log-normal noise. The noise is
// smooth value noise: an independent standard-normal is pinned at each bucket
// boundary and smoothstep-interpolated between them, so load drifts
// continuously instead of jumping at bucket edges — real traffic noise is
// autocorrelated — and repeated queries at the same instant agree.
type Noisy struct {
	P    Pattern
	CV   float64
	Seed int64
	// BucketSecs is the noise decorrelation interval: boundary normals are
	// independent, and the noise drifts smoothly in between. Aggregate QPS
	// noise evolves over minutes, not per query, so the default is 60s.
	BucketSecs float64
}

// Load implements Pattern.
func (n Noisy) Load(t float64) float64 {
	base := n.P.Load(t)
	if n.CV <= 0 {
		return base
	}
	b := n.BucketSecs
	if b <= 0 {
		b = 60
	}
	bucket := int64(t / b)
	frac := t/b - float64(bucket)
	u := frac * frac * (3 - 2*frac) // smoothstep
	seed := n.Seed*1_000_003 + bucket
	z := (1-u)*sim.HashNormal(seed) + u*sim.HashNormal(seed+1)
	sigma := math.Sqrt(math.Log(1 + n.CV*n.CV))
	return base * math.Exp(-sigma*sigma/2+sigma*z)
}

// Scaled multiplies a pattern by K.
type Scaled struct {
	P Pattern
	K float64
}

// Load implements Pattern.
func (s Scaled) Load(t float64) float64 { return s.K * s.P.Load(t) }

// Arrivals builds a submission schedule: n arrivals spaced interArrival
// seconds apart starting at start.
func Arrivals(start, interArrival float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*interArrival
	}
	return out
}

// PoissonArrivals builds n arrival times with exponential gaps of the given
// mean, starting at start.
func PoissonArrivals(rng *sim.RNG, start, meanGap float64, n int) []float64 {
	out := make([]float64, n)
	t := start
	for i := range out {
		t += rng.Exponential(meanGap)
		out[i] = t
	}
	return out
}
