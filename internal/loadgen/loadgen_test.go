package loadgen

import (
	"math"
	"testing"

	"quasar/internal/sim"
)

func TestFlat(t *testing.T) {
	p := Flat{QPS: 100}
	if p.Load(0) != 100 || p.Load(1e6) != 100 {
		t.Fatal("flat load not flat")
	}
}

func TestFluctuatingBounds(t *testing.T) {
	p := Fluctuating{Min: 100, Max: 500, Period: 3600}
	lo, hi := math.Inf(1), math.Inf(-1)
	for ts := 0.0; ts < 7200; ts += 10 {
		v := p.Load(ts)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo < 99.9 || hi > 500.1 {
		t.Fatalf("fluctuating outside bounds: [%v, %v]", lo, hi)
	}
	if hi-lo < 350 {
		t.Fatalf("fluctuating amplitude too small: %v", hi-lo)
	}
}

func TestSpikeShape(t *testing.T) {
	s := Spike{Base: 100, Peak: 400, Start: 1000, Duration: 600, RampSecs: 60}
	if s.Load(0) != 100 {
		t.Fatal("pre-spike load wrong")
	}
	if s.Load(1030) <= 100 || s.Load(1030) >= 400 {
		t.Fatalf("ramp value %v", s.Load(1030))
	}
	if s.Load(1400) != 400 {
		t.Fatalf("plateau %v", s.Load(1400))
	}
	if s.Load(5000) != 100 {
		t.Fatal("post-spike load wrong")
	}
	// Zero ramp defaults sanely.
	z := Spike{Base: 1, Peak: 2, Start: 10, Duration: 5}
	if z.Load(12) != 2 {
		t.Fatalf("zero-ramp plateau %v", z.Load(12))
	}
}

func TestDiurnalPeak(t *testing.T) {
	d := Diurnal{Min: 500e3, Max: 2.4e6, PeakHour: 15}
	peak := d.Load(15 * 3600)
	trough := d.Load(3 * 3600)
	if math.Abs(peak-2.4e6) > 1 {
		t.Fatalf("peak %v", peak)
	}
	if math.Abs(trough-500e3) > 1 {
		t.Fatalf("trough %v", trough)
	}
	// Second day repeats.
	if math.Abs(d.Load(15*3600)-d.Load((24+15)*3600)) > 1e-6 {
		t.Fatal("diurnal not periodic")
	}
}

func TestNoisyDeterministicPerBucket(t *testing.T) {
	n := Noisy{P: Flat{QPS: 100}, CV: 0.1, Seed: 7, BucketSecs: 5}
	if n.Load(12.3) != n.Load(12.3) {
		t.Fatal("same instant gave different loads")
	}
	if n.Load(12.3) == n.Load(30) {
		t.Fatal("different buckets gave identical loads (suspicious)")
	}
	// The noise is smooth value noise: it moves within a bucket but never
	// jumps at a boundary.
	if n.Load(12.3) == n.Load(13.9) {
		t.Fatal("noise frozen within bucket")
	}
	const eps = 1e-9
	if math.Abs(n.Load(10-eps)-n.Load(10+eps)) > 0.01 {
		t.Fatalf("noise jumps at bucket boundary: %v vs %v", n.Load(10-eps), n.Load(10+eps))
	}
	// Zero CV passes through.
	clean := Noisy{P: Flat{QPS: 100}}
	if clean.Load(1) != 100 {
		t.Fatal("zero-CV noisy altered load")
	}
}

func TestNoisyUnbiased(t *testing.T) {
	n := Noisy{P: Flat{QPS: 100}, CV: 0.1, Seed: 3, BucketSecs: 1}
	sum := 0.0
	const samples = 20000
	for i := 0; i < samples; i++ {
		sum += n.Load(float64(i))
	}
	if mean := sum / samples; math.Abs(mean-100) > 1 {
		t.Fatalf("noisy mean %v, want ~100", mean)
	}
}

func TestScaled(t *testing.T) {
	s := Scaled{P: Flat{QPS: 100}, K: 2.5}
	if s.Load(0) != 250 {
		t.Fatal("scaled wrong")
	}
}

func TestArrivals(t *testing.T) {
	a := Arrivals(10, 5, 4)
	want := []float64{10, 15, 20, 25}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("arrivals %v", a)
		}
	}
}

func TestPoissonArrivals(t *testing.T) {
	rng := sim.NewRNG(1)
	a := PoissonArrivals(rng, 0, 10, 1000)
	if len(a) != 1000 {
		t.Fatal("wrong count")
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatal("arrivals not increasing")
		}
	}
	mean := a[len(a)-1] / 1000
	if math.Abs(mean-10) > 1.5 {
		t.Fatalf("mean gap %v, want ~10", mean)
	}
}
