package loadgen

import "fmt"

// PatternSpec is the JSON-serializable description of a load pattern. Serve
// mode journals one per latency-critical submission so a replay reconstructs
// the exact offered-load curve from the journal alone; it is also the wire
// shape clients use to pick a pattern over the HTTP admission API.
type PatternSpec struct {
	// Kind selects the pattern: "flat", "fluctuating", "spike", "diurnal".
	Kind string `json:"kind"`

	// QPS applies to flat.
	QPS float64 `json:"qps,omitempty"`

	// Min/Max apply to fluctuating and diurnal.
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`

	// Period/Phase apply to fluctuating.
	Period float64 `json:"period,omitempty"`
	Phase  float64 `json:"phase,omitempty"`

	// Base/Peak/Start/Duration/RampSecs apply to spike.
	Base     float64 `json:"base,omitempty"`
	Peak     float64 `json:"peak,omitempty"`
	Start    float64 `json:"start,omitempty"`
	Duration float64 `json:"duration,omitempty"`
	RampSecs float64 `json:"ramp_secs,omitempty"`

	// PeakHour applies to diurnal.
	PeakHour float64 `json:"peak_hour,omitempty"`
}

// Build constructs the described pattern.
func (s *PatternSpec) Build() (Pattern, error) {
	switch s.Kind {
	case "flat":
		if s.QPS <= 0 {
			return nil, fmt.Errorf("loadgen: flat pattern needs qps > 0")
		}
		return Flat{QPS: s.QPS}, nil
	case "fluctuating":
		if s.Min < 0 || s.Max < s.Min || s.Period <= 0 {
			return nil, fmt.Errorf("loadgen: fluctuating pattern needs 0 <= min <= max and period > 0")
		}
		return Fluctuating{Min: s.Min, Max: s.Max, Period: s.Period, Phase: s.Phase}, nil
	case "spike":
		if s.Base < 0 || s.Peak < s.Base || s.Duration < 0 {
			return nil, fmt.Errorf("loadgen: spike pattern needs 0 <= base <= peak and duration >= 0")
		}
		return Spike{Base: s.Base, Peak: s.Peak, Start: s.Start, Duration: s.Duration, RampSecs: s.RampSecs}, nil
	case "diurnal":
		if s.Min < 0 || s.Max < s.Min {
			return nil, fmt.Errorf("loadgen: diurnal pattern needs 0 <= min <= max")
		}
		return Diurnal{Min: s.Min, Max: s.Max, PeakHour: s.PeakHour}, nil
	}
	return nil, fmt.Errorf("loadgen: unknown pattern kind %q (want flat, fluctuating, spike, or diurnal)", s.Kind)
}
