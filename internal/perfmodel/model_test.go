package perfmodel

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"quasar/internal/cluster"
	"quasar/internal/sim"
)

func testGenome() *Genome {
	arch, err := ArchetypeByName("hadoop")
	if err != nil {
		panic(err)
	}
	fam := NewFamily("hadoop-test", arch, cluster.LocalPlatforms(), sim.NewRNG(1))
	return fam.Instantiate(sim.NewRNG(2), 1, 1)
}

func serviceGenome() *Genome {
	arch, err := ArchetypeByName("memcached")
	if err != nil {
		panic(err)
	}
	fam := NewFamily("mc-test", arch, cluster.LocalPlatforms(), sim.NewRNG(3))
	return fam.Instantiate(sim.NewRNG(4), 1, 1)
}

func TestInterferencePenaltyBounds(t *testing.T) {
	f := func(sRaw, pRaw [9]uint8) bool {
		var s, p cluster.ResVec
		for i := 0; i < 9; i++ {
			s[i] = float64(sRaw[i]%101) / 100
			p[i] = float64(pRaw[i]%151) / 100 // may exceed 1; must saturate
		}
		pen := InterferencePenalty(s, p)
		return pen > 0 && pen <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterferencePenaltyMonotone(t *testing.T) {
	g := testGenome()
	var lo, hi cluster.ResVec
	for r := range lo {
		lo[r], hi[r] = 0.2, 0.8
	}
	if InterferencePenalty(g.Sens, lo) < InterferencePenalty(g.Sens, hi) {
		t.Fatal("penalty not monotone in pressure")
	}
	if InterferencePenalty(g.Sens, cluster.ResVec{}) != 1 {
		t.Fatal("no pressure should mean no penalty")
	}
}

func TestInterferenceCanBeSevere(t *testing.T) {
	// A workload sensitive to many resources under full contention should
	// slow down by ~an order of magnitude (Fig. 2 shows up to 10x).
	var s, p cluster.ResVec
	for r := range s {
		s[r] = 0.5
		p[r] = 1.0
	}
	pen := InterferencePenalty(s, p)
	if pen > 0.15 {
		t.Fatalf("penalty %v too mild for full contention", pen)
	}
	if pen < 0.001 {
		t.Fatalf("penalty %v implausibly harsh", pen)
	}
}

func TestNodeRateMonotoneInCores(t *testing.T) {
	g := testGenome()
	p := &cluster.LocalPlatforms()[9]
	prev := 0.0
	for c := 1; c <= p.Cores; c++ {
		r := g.NodeRate(p, cluster.Alloc{Cores: c, MemoryGB: g.MemNeedGB}, cluster.ResVec{})
		if r <= prev {
			t.Fatalf("rate not increasing at %d cores: %v <= %v", c, r, prev)
		}
		prev = r
	}
}

func TestNodeRateDiminishingReturns(t *testing.T) {
	g := testGenome()
	p := &cluster.LocalPlatforms()[9]
	r4 := g.NodeRate(p, cluster.Alloc{Cores: 4, MemoryGB: 48}, cluster.ResVec{})
	r8 := g.NodeRate(p, cluster.Alloc{Cores: 8, MemoryGB: 48}, cluster.ResVec{})
	r16 := g.NodeRate(p, cluster.Alloc{Cores: 16, MemoryGB: 48}, cluster.ResVec{})
	if r8 >= 2*r4 || r16 >= 2*r8 {
		t.Fatalf("doubling cores should be sublinear: r4=%.2f r8=%.2f r16=%.2f", r4, r8, r16)
	}
	// Absolute per-core marginal gain shrinks too.
	if (r16-r8)/8 >= (r8-r4)/4 {
		t.Fatalf("per-core marginal gain should shrink: %.3f vs %.3f", (r16-r8)/8, (r8-r4)/4)
	}
}

func TestMemoryCliff(t *testing.T) {
	g := testGenome()
	p := &cluster.LocalPlatforms()[9]
	full := g.NodeRate(p, cluster.Alloc{Cores: 8, MemoryGB: g.MemNeedGB}, cluster.ResVec{})
	extra := g.NodeRate(p, cluster.Alloc{Cores: 8, MemoryGB: g.MemNeedGB * 2}, cluster.ResVec{})
	starved := g.NodeRate(p, cluster.Alloc{Cores: 8, MemoryGB: g.MemNeedGB / 4}, cluster.ResVec{})
	if extra != full {
		t.Fatalf("memory beyond the working set changed rate: %v vs %v", extra, full)
	}
	if starved >= full {
		t.Fatalf("memory starvation did not hurt: %v >= %v", starved, full)
	}
}

func TestHeterogeneitySpread(t *testing.T) {
	// Across whole nodes of platforms A-J, best/worst should span roughly
	// the 3-7x of Fig. 2 (allow 2-12x over random genomes).
	rng := sim.NewRNG(7)
	platforms := cluster.LocalPlatforms()
	arch, _ := ArchetypeByName("hadoop")
	var ratios []float64
	for trial := 0; trial < 20; trial++ {
		fam := NewFamily("f", arch, platforms, rng.Stream("fam"))
		g := fam.Instantiate(rng.Stream("inst"), 1, 1)
		lo, hi := math.Inf(1), 0.0
		for i := range platforms {
			p := &platforms[i]
			r := g.NodeRate(p, cluster.Alloc{Cores: p.Cores, MemoryGB: p.MemoryGB}, cluster.ResVec{})
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
		ratio := hi / lo
		if ratio < 2 || ratio > 80 {
			t.Fatalf("trial %d: heterogeneity spread %.1fx outside sanity range [2,80]", trial, ratio)
		}
		ratios = append(ratios, ratio)
	}
	sort.Float64s(ratios)
	if med := ratios[len(ratios)/2]; med < 3 || med > 30 {
		t.Fatalf("median heterogeneity spread %.1fx outside [3,30]", med)
	}
}

func TestScaleOutEfficiency(t *testing.T) {
	g := testGenome()
	if g.ScaleOutEfficiency(1) != 1 {
		t.Fatal("eff(1) != 1")
	}
	g.Beta = 0.8
	if e := g.ScaleOutEfficiency(4); math.Abs(e-math.Pow(4, -0.2)) > 1e-12 {
		t.Fatalf("sublinear eff wrong: %v", e)
	}
	g.Beta = 1.1
	if g.ScaleOutEfficiency(4) <= 1 {
		t.Fatal("superlinear beta should give eff > 1")
	}
}

func TestJobRateAndCompletion(t *testing.T) {
	g := testGenome()
	g.Beta = 1.0
	p := &cluster.LocalPlatforms()[9]
	al := cluster.Alloc{Cores: 8, MemoryGB: g.MemNeedGB}
	one := []NodeAlloc{{Platform: p, Alloc: al}}
	two := []NodeAlloc{{Platform: p, Alloc: al}, {Platform: p, Alloc: al}}
	r1, r2 := g.JobRate(one), g.JobRate(two)
	if math.Abs(r2-2*r1) > 1e-9 {
		t.Fatalf("beta=1: two nodes should double rate: %v vs %v", r2, 2*r1)
	}
	ct := g.CompletionTime(one)
	if math.Abs(ct-g.Work/r1) > 1e-9 {
		t.Fatalf("completion time wrong: %v", ct)
	}
	if !math.IsInf(g.CompletionTime(nil), 1) {
		t.Fatal("empty allocation should never complete")
	}
}

func TestLatencyKnee(t *testing.T) {
	g := serviceGenome()
	p := &cluster.LocalPlatforms()[9]
	nodes := []NodeAlloc{{Platform: p, Alloc: cluster.Alloc{Cores: 8, MemoryGB: g.MemNeedGB}}}
	cap := g.CapacityQPS(nodes)
	if cap <= 0 {
		t.Fatal("non-positive capacity")
	}
	_, p99Low := g.Latency(0.1*cap, cap)
	_, p99Knee := g.Latency(0.8*cap, cap)
	_, p99Sat := g.Latency(1.5*cap, cap)
	if !(p99Low < p99Knee && p99Knee < p99Sat) {
		t.Fatalf("latency not increasing through knee: %v %v %v", p99Low, p99Knee, p99Sat)
	}
	if p99Knee < 2*p99Low {
		t.Fatalf("knee too soft: %.0f -> %.0f", p99Low, p99Knee)
	}
	if g.AchievedQPS(1.5*cap, cap) != cap {
		t.Fatal("saturated service should shed load to capacity")
	}
	if g.AchievedQPS(0.5*cap, cap) != 0.5*cap {
		t.Fatal("under capacity, achieved should equal offered")
	}
}

func TestLatencyMeanBelowP99(t *testing.T) {
	g := serviceGenome()
	for _, rho := range []float64{0, 0.2, 0.5, 0.8, 0.95} {
		mean, p99 := g.Latency(rho*1000, 1000)
		if p99 < mean {
			t.Fatalf("p99 %v < mean %v at rho %v", p99, mean, rho)
		}
	}
}

func TestCausedPressureScalesWithAllocation(t *testing.T) {
	g := testGenome()
	p := &cluster.LocalPlatforms()[9]
	small := g.CausedPressure(p, cluster.Alloc{Cores: 2, MemoryGB: 4})
	big := g.CausedPressure(p, cluster.Alloc{Cores: 24, MemoryGB: 48})
	if small[cluster.ResCPU] >= big[cluster.ResCPU] {
		t.Fatal("CPU pressure should grow with cores")
	}
	for r := 0; r < int(cluster.NumResources); r++ {
		if big[r] < 0 || big[r] > 1 {
			t.Fatalf("pressure out of range at %v: %v", cluster.Resource(r), big[r])
		}
	}
}

func TestBigPlatformsAbsorbPressure(t *testing.T) {
	g := testGenome()
	ps := cluster.LocalPlatforms()
	smallP, bigP := &ps[0], &ps[9]
	// Same core fraction on both platforms.
	onSmall := g.CausedPressure(smallP, cluster.Alloc{Cores: 1, MemoryGB: 2})
	onBig := g.CausedPressure(bigP, cluster.Alloc{Cores: 12, MemoryGB: 24})
	if onBig[cluster.ResLLC] >= onSmall[cluster.ResLLC] {
		t.Fatalf("LLC pressure on big cache %.3f should be below small cache %.3f",
			onBig[cluster.ResLLC], onSmall[cluster.ResLLC])
	}
}

func TestFamilyInstanceCoherence(t *testing.T) {
	// Instances of one family must be much closer to each other than to
	// another family drawn from the same archetype: this is the structure
	// collaborative filtering exploits.
	rng := sim.NewRNG(11)
	platforms := cluster.LocalPlatforms()
	arch, _ := ArchetypeByName("hadoop")
	famA := NewFamily("a", arch, platforms, rng.Stream("a"))
	famB := NewFamily("b", arch, platforms, rng.Stream("b"))
	a1 := famA.Instantiate(rng.Stream("a1"), 1, 1)
	a2 := famA.Instantiate(rng.Stream("a2"), 1, 1)
	b1 := famB.Instantiate(rng.Stream("b1"), 1, 1)

	dist := func(x, y *Genome) float64 {
		d := 0.0
		for _, p := range platforms {
			d += math.Abs(math.Log(x.Affinity[p.Name] / y.Affinity[p.Name]))
		}
		d += math.Abs(x.Alpha-y.Alpha) * 5
		return d
	}
	within, across := dist(a1, a2), dist(a1, b1)
	if within >= across {
		t.Fatalf("within-family distance %.3f >= across-family %.3f", within, across)
	}
}

func TestArchetypesComplete(t *testing.T) {
	archs := Archetypes()
	if len(archs) < 9 {
		t.Fatalf("only %d archetypes", len(archs))
	}
	classes := map[Class]int{}
	for _, a := range archs {
		classes[a.Class]++
		if a.Name == "" {
			t.Fatal("archetype with empty name")
		}
		if a.Class == LatencyCritical && a.QPSPerUnit <= 0 {
			t.Fatalf("latency archetype %s lacks QPSPerUnit", a.Name)
		}
		if a.Class != LatencyCritical && a.WorkHi <= 0 {
			t.Fatalf("batch archetype %s lacks Work range", a.Name)
		}
	}
	for _, c := range []Class{Analytics, LatencyCritical, SingleNode} {
		if classes[c] == 0 {
			t.Fatalf("no archetype for class %v", c)
		}
	}
	if _, err := ArchetypeByName("nope"); err == nil {
		t.Fatal("unknown archetype accepted")
	}
}

func TestDatasetImpact(t *testing.T) {
	rng := sim.NewRNG(13)
	arch, _ := ArchetypeByName("hadoop")
	fam := NewFamily("f", arch, cluster.LocalPlatforms(), rng.Stream("fam"))
	small := fam.Instantiate(rng.Stream("i1"), 1, 1)
	big := fam.Instantiate(rng.Stream("i2"), 3, 1.5)
	if big.Work < 2*small.Work {
		t.Fatalf("3x dataset should give ~3x work: %v vs %v", big.Work, small.Work)
	}
	if big.MemNeedGB <= small.MemNeedGB {
		t.Fatal("bigger dataset should need more memory")
	}
}

func TestClassString(t *testing.T) {
	if Analytics.String() != "analytics" || LatencyCritical.String() != "latency-critical" ||
		SingleNode.String() != "single-node" {
		t.Fatal("class names wrong")
	}
	if Class(99).String() == "" {
		t.Fatal("unknown class should still format")
	}
}
