package perfmodel

import (
	"fmt"
	"math"
	"sort"

	"quasar/internal/cluster"
	"quasar/internal/sim"
)

// Class is the broad workload category; it determines which performance
// constraint applies (paper §3.1) and which allocation knobs exist.
type Class int

const (
	// Analytics workloads (Hadoop/Storm/Spark-style) have an execution-
	// time constraint and can scale up and out.
	Analytics Class = iota
	// LatencyCritical services (memcached/Cassandra/webserver-style) have
	// a QPS + tail-latency constraint and can scale up and out.
	LatencyCritical
	// SingleNode workloads (SPEC/PARSEC-style) have an IPS constraint and
	// can only scale up.
	SingleNode
)

func (c Class) String() string {
	switch c {
	case Analytics:
		return "analytics"
	case LatencyCritical:
		return "latency-critical"
	case SingleNode:
		return "single-node"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Archetype bounds the genome distribution of a workload family. Families
// are drawn from archetypes; instances from families. This two-level
// hierarchy gives the performance matrix the correlated, approximately
// low-rank structure that collaborative filtering exploits (workloads in the
// same family behave alike).
type Archetype struct {
	Name  string
	Class Class

	BaseRateLo, BaseRateHi float64
	AlphaLo, AlphaHi       float64 // scale-up exponent range
	ParLo, ParHi           float64 // per-node parallelism range (0 = unbounded)
	BetaLo, BetaHi         float64 // scale-out exponent range
	MemNeedLo, MemNeedHi   float64 // GB per node
	MemCurveLo, MemCurveHi float64
	CacheNeedMB            float64 // cache working set; platforms below pay an affinity penalty
	AffinitySigma          float64 // log-normal spread of platform affinity

	Sens   cluster.ResVec // mean sensitivity per resource
	Caused cluster.ResVec // mean caused pressure per resource

	WorkLo, WorkHi float64 // batch job size range (work units)

	ServiceUSLo, ServiceUSHi float64 // latency services
	TailLo, TailHi           float64
	QPSPerUnit               float64

	NoiseCV float64
}

// vec is shorthand for building a ResVec literal in resource order:
// cpu, l1i, l2, llc, membw, memcap, prefetch, disk, net.
func vec(cpu, l1i, l2, llc, membw, memcap, prefetch, disk, net float64) cluster.ResVec {
	return cluster.ResVec{cpu, l1i, l2, llc, membw, memcap, prefetch, disk, net}
}

// Archetypes returns the built-in workload archetypes, mirroring the
// paper's evaluation mix: Hadoop/Mahout data mining, Storm streaming, Spark
// in-memory analytics, memcached, Cassandra, a HotCRP-like webserver, and
// several single-node benchmark archetypes (SPEC-like integer/floating
// point, PARSEC-like parallel, data-mining kernels).
func Archetypes() []Archetype {
	return []Archetype{
		{
			Name: "hadoop", Class: Analytics,
			BaseRateLo: 0.8, BaseRateHi: 1.4,
			AlphaLo: 0.45, AlphaHi: 0.70,
			BetaLo: 0.75, BetaHi: 1.10,
			MemNeedLo: 4, MemNeedHi: 16, MemCurveLo: 0.3, MemCurveHi: 0.8,
			CacheNeedMB: 8, AffinitySigma: 0.18,
			Sens:   vec(0.35, 0.10, 0.25, 0.45, 0.40, 0.30, 0.20, 0.55, 0.25),
			Caused: vec(0.50, 0.10, 0.25, 0.40, 0.45, 0.30, 0.25, 0.60, 0.20),
			WorkLo: 2e4, WorkHi: 4e5, // hours-long jobs at single-node rates
			NoiseCV: 0.04,
		},
		{
			Name: "spark", Class: Analytics,
			BaseRateLo: 1.2, BaseRateHi: 2.0,
			AlphaLo: 0.65, AlphaHi: 0.90,
			BetaLo: 0.70, BetaHi: 1.00,
			MemNeedLo: 10, MemNeedHi: 24, MemCurveLo: 1.0, MemCurveHi: 2.0,
			CacheNeedMB: 12, AffinitySigma: 0.20,
			Sens:   vec(0.30, 0.10, 0.30, 0.55, 0.60, 0.65, 0.30, 0.15, 0.30),
			Caused: vec(0.45, 0.10, 0.30, 0.55, 0.65, 0.60, 0.35, 0.10, 0.25),
			WorkLo: 1e4, WorkHi: 1.5e5,
			NoiseCV: 0.04,
		},
		{
			Name: "storm", Class: Analytics,
			BaseRateLo: 1.0, BaseRateHi: 1.8,
			AlphaLo: 0.70, AlphaHi: 0.95,
			BetaLo: 0.85, BetaHi: 1.10,
			MemNeedLo: 2, MemNeedHi: 8, MemCurveLo: 0.4, MemCurveHi: 0.9,
			CacheNeedMB: 4, AffinitySigma: 0.15,
			Sens:   vec(0.45, 0.15, 0.25, 0.35, 0.30, 0.15, 0.20, 0.10, 0.60),
			Caused: vec(0.55, 0.15, 0.25, 0.30, 0.35, 0.15, 0.20, 0.05, 0.55),
			WorkLo: 1e4, WorkHi: 1e5,
			NoiseCV: 0.05,
		},
		{
			Name: "memcached", Class: LatencyCritical,
			BaseRateLo: 1.5, BaseRateHi: 2.5,
			AlphaLo: 0.75, AlphaHi: 0.95, ParLo: 24, ParHi: 64,
			BetaLo: 0.90, BetaHi: 1.05,
			MemNeedLo: 8, MemNeedHi: 32, MemCurveLo: 1.5, MemCurveHi: 2.5,
			CacheNeedMB: 6, AffinitySigma: 0.15,
			Sens:        vec(0.50, 0.45, 0.40, 0.55, 0.45, 0.60, 0.30, 0.05, 0.55),
			Caused:      vec(0.40, 0.35, 0.30, 0.40, 0.40, 0.55, 0.25, 0.02, 0.50),
			ServiceUSLo: 80, ServiceUSHi: 180, TailLo: 2.5, TailHi: 4.5,
			QPSPerUnit: 8000,
			NoiseCV:    0.05,
		},
		{
			Name: "cassandra", Class: LatencyCritical,
			BaseRateLo: 0.8, BaseRateHi: 1.4,
			AlphaLo: 0.60, AlphaHi: 0.85, ParLo: 16, ParHi: 48,
			BetaLo: 0.85, BetaHi: 1.00,
			MemNeedLo: 8, MemNeedHi: 24, MemCurveLo: 0.8, MemCurveHi: 1.5,
			CacheNeedMB: 8, AffinitySigma: 0.15,
			Sens:        vec(0.30, 0.15, 0.20, 0.35, 0.30, 0.40, 0.15, 0.75, 0.35),
			Caused:      vec(0.30, 0.10, 0.20, 0.30, 0.30, 0.40, 0.15, 0.80, 0.30),
			ServiceUSLo: 4000, ServiceUSHi: 12000, TailLo: 2.0, TailHi: 3.5,
			QPSPerUnit: 500,
			NoiseCV:    0.05,
		},
		{
			Name: "webserver", Class: LatencyCritical,
			BaseRateLo: 1.0, BaseRateHi: 1.8,
			AlphaLo: 0.70, AlphaHi: 0.95, ParLo: 24, ParHi: 64,
			BetaLo: 0.90, BetaHi: 1.05,
			MemNeedLo: 2, MemNeedHi: 10, MemCurveLo: 0.6, MemCurveHi: 1.2,
			CacheNeedMB: 4, AffinitySigma: 0.16,
			Sens:        vec(0.55, 0.35, 0.35, 0.45, 0.35, 0.25, 0.20, 0.10, 0.50),
			Caused:      vec(0.55, 0.25, 0.30, 0.35, 0.35, 0.20, 0.20, 0.05, 0.45),
			ServiceUSLo: 8000, ServiceUSHi: 30000, TailLo: 1.8, TailHi: 3.0,
			QPSPerUnit: 60,
			NoiseCV:    0.05,
		},
		{
			Name: "spec-int", Class: SingleNode,
			BaseRateLo: 0.8, BaseRateHi: 1.6,
			AlphaLo: 0.10, AlphaHi: 0.35, ParLo: 1, ParHi: 3, // mostly single-threaded
			BetaLo: 1.0, BetaHi: 1.0,
			MemNeedLo: 0.5, MemNeedHi: 4, MemCurveLo: 0.5, MemCurveHi: 1.0,
			CacheNeedMB: 6, AffinitySigma: 0.22,
			Sens:   vec(0.30, 0.25, 0.45, 0.60, 0.40, 0.10, 0.35, 0.02, 0.02),
			Caused: vec(0.35, 0.15, 0.35, 0.50, 0.40, 0.10, 0.30, 0.02, 0.02),
			WorkLo: 400, WorkHi: 4000,
			NoiseCV: 0.03,
		},
		{
			Name: "spec-fp", Class: SingleNode,
			BaseRateLo: 0.8, BaseRateHi: 1.6,
			AlphaLo: 0.10, AlphaHi: 0.30, ParLo: 1, ParHi: 3,
			BetaLo: 1.0, BetaHi: 1.0,
			MemNeedLo: 1, MemNeedHi: 6, MemCurveLo: 0.6, MemCurveHi: 1.2,
			CacheNeedMB: 10, AffinitySigma: 0.25,
			Sens:   vec(0.25, 0.10, 0.35, 0.50, 0.65, 0.15, 0.45, 0.02, 0.02),
			Caused: vec(0.30, 0.05, 0.30, 0.45, 0.70, 0.15, 0.45, 0.02, 0.02),
			WorkLo: 400, WorkHi: 4000,
			NoiseCV: 0.03,
		},
		{
			Name: "parsec", Class: SingleNode,
			BaseRateLo: 1.0, BaseRateHi: 2.0,
			AlphaLo: 0.55, AlphaHi: 0.90, ParLo: 8, ParHi: 24, // parallel, scales with cores
			BetaLo: 1.0, BetaHi: 1.0,
			MemNeedLo: 1, MemNeedHi: 8, MemCurveLo: 0.5, MemCurveHi: 1.0,
			CacheNeedMB: 8, AffinitySigma: 0.20,
			Sens:   vec(0.50, 0.15, 0.30, 0.45, 0.50, 0.15, 0.30, 0.02, 0.05),
			Caused: vec(0.55, 0.10, 0.30, 0.45, 0.55, 0.15, 0.30, 0.02, 0.05),
			WorkLo: 600, WorkHi: 6000,
			NoiseCV: 0.03,
		},
		{
			Name: "mining-kernel", Class: SingleNode,
			BaseRateLo: 0.9, BaseRateHi: 1.8,
			AlphaLo: 0.40, AlphaHi: 0.80, ParLo: 4, ParHi: 16,
			BetaLo: 1.0, BetaHi: 1.0,
			MemNeedLo: 2, MemNeedHi: 12, MemCurveLo: 0.8, MemCurveHi: 1.5,
			CacheNeedMB: 16, AffinitySigma: 0.22,
			Sens:   vec(0.35, 0.10, 0.30, 0.65, 0.55, 0.30, 0.40, 0.05, 0.02),
			Caused: vec(0.40, 0.05, 0.30, 0.60, 0.60, 0.30, 0.40, 0.05, 0.02),
			WorkLo: 600, WorkHi: 6000,
			NoiseCV: 0.03,
		},
	}
}

// ArchetypeByName returns the named archetype.
func ArchetypeByName(name string) (Archetype, error) {
	for _, a := range Archetypes() {
		if a.Name == name {
			return a, nil
		}
	}
	return Archetype{}, fmt.Errorf("perfmodel: unknown archetype %q", name)
}

// Family is a concrete workload family drawn from an archetype: a fixed base
// genome that instances perturb. Two instances of a family are similar but
// not identical, like two submissions of the same Mahout job with different
// datasets.
type Family struct {
	Name      string
	Archetype Archetype
	Base      Genome
}

// NewFamily draws a family from the archetype for the given platform set.
func NewFamily(name string, arch Archetype, platforms []cluster.Platform, rng *sim.RNG) *Family {
	g := Genome{
		BaseRate: rng.Uniform(arch.BaseRateLo, arch.BaseRateHi),
		Alpha:    rng.Uniform(arch.AlphaLo, arch.AlphaHi),
		Parallelism: func() float64 {
			if arch.ParHi <= 0 {
				return 0
			}
			return rng.Uniform(arch.ParLo, arch.ParHi)
		}(),
		Beta:       rng.Uniform(arch.BetaLo, arch.BetaHi),
		MemNeedGB:  rng.Uniform(arch.MemNeedLo, arch.MemNeedHi),
		MemCurve:   rng.Uniform(arch.MemCurveLo, arch.MemCurveHi),
		TailFactor: rng.Uniform(arch.TailLo, arch.TailHi),
		QPSPerUnit: arch.QPSPerUnit,
		NoiseCV:    arch.NoiseCV,
		Affinity:   make(map[string]float64, len(platforms)),
	}
	if arch.WorkHi > 0 {
		g.Work = rng.Pareto(1.2, arch.WorkLo, arch.WorkHi)
	}
	if arch.ServiceUSHi > 0 {
		g.ServiceUS = rng.Uniform(arch.ServiceUSLo, arch.ServiceUSHi)
	}
	cacheNeed := arch.CacheNeedMB * rng.Uniform(0.6, 1.6)
	for _, p := range platforms {
		fit := 1.0
		if p.CacheMB < cacheNeed {
			fit = math.Pow(p.CacheMB/cacheNeed, 0.2)
		}
		g.Affinity[p.Name] = rng.LogNormal(0, arch.AffinitySigma) * fit
	}
	for r := 0; r < int(cluster.NumResources); r++ {
		g.Sens[r] = clamp01(arch.Sens[r] * rng.Uniform(0.6, 1.4))
		g.Caused[r] = clamp01(arch.Caused[r] * rng.Uniform(0.6, 1.4))
	}
	return &Family{Name: name, Archetype: arch, Base: g}
}

// Instantiate derives an instance genome from the family base: every scalar
// is jittered, affinities get per-platform noise, and the dataset factor
// multiplies the work and shifts the memory need (the paper's "dataset
// impact", up to ~3x).
func (f *Family) Instantiate(rng *sim.RNG, workMult, memMult float64) *Genome {
	b := f.Base
	g := Genome{
		BaseRate:    rng.Jitter(b.BaseRate, 0.08),
		Alpha:       clamp(b.Alpha*rng.Uniform(0.95, 1.05), 0.05, 1.0),
		Parallelism: b.Parallelism,
		Beta:        clamp(b.Beta*rng.Uniform(0.97, 1.03), 0.4, 1.2),
		MemNeedGB:   b.MemNeedGB * memMult * rng.Uniform(0.9, 1.1),
		MemCurve:    b.MemCurve,
		Work:        b.Work * workMult * rng.Uniform(0.9, 1.1),
		ServiceUS:   rng.Jitter(b.ServiceUS, 0.05),
		TailFactor:  b.TailFactor,
		QPSPerUnit:  b.QPSPerUnit,
		NoiseCV:     b.NoiseCV,
		Affinity:    make(map[string]float64, len(b.Affinity)),
	}
	// Iterate platforms in sorted order: drawing jitter in map order would
	// make genomes irreproducible.
	names := make([]string, 0, len(b.Affinity))
	for name := range b.Affinity {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g.Affinity[name] = rng.Jitter(b.Affinity[name], 0.06)
	}
	for r := 0; r < int(cluster.NumResources); r++ {
		g.Sens[r] = clamp01(b.Sens[r] * rng.Uniform(0.85, 1.15))
		g.Caused[r] = clamp01(b.Caused[r] * rng.Uniform(0.85, 1.15))
	}
	return &g
}

func clamp01(x float64) float64 { return clamp(x, 0, 1) }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
