package perfmodel

import (
	"math"
	"math/rand"
	"testing"

	"quasar/internal/cluster"
)

func randVec(rng *rand.Rand, max float64) cluster.ResVec {
	var v cluster.ResVec
	for r := range v {
		v[r] = max * rng.Float64()
	}
	return v
}

// TestInterferencePenaltyConfined: for any sensitivity and pressure vectors
// (including pressure beyond 1, which must clamp), the penalty stays in
// (0, 1] and never drops below the per-resource crawl floor compounded.
func TestInterferencePenaltyConfined(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(21))
	floor := math.Pow(0.02, float64(cluster.NumResources))
	for trial := 0; trial < 500; trial++ {
		sens := randVec(rng, 1)
		pressure := randVec(rng, 3) // deliberately exceeds the clamp
		pen := InterferencePenalty(sens, pressure)
		if !(pen > 0 && pen <= 1) {
			t.Fatalf("trial %d: penalty %g outside (0,1]", trial, pen)
		}
		if pen < floor-1e-15 {
			t.Fatalf("trial %d: penalty %g below crawl floor %g", trial, pen, floor)
		}
	}
	var zero cluster.ResVec
	if pen := InterferencePenalty(randVec(rng, 1), zero); pen != 1 {
		t.Fatalf("zero pressure must be penalty-free, got %g", pen)
	}
	if pen := InterferencePenalty(zero, randVec(rng, 3)); pen != 1 {
		t.Fatalf("zero sensitivity must be penalty-free, got %g", pen)
	}
}

// TestInterferencePenaltyClamps: pressure above full contention behaves
// exactly like full contention.
func TestInterferencePenaltyClamps(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 100; trial++ {
		sens := randVec(rng, 1)
		over := randVec(rng, 1)
		var full cluster.ResVec
		for r := range over {
			over[r] += 1 // every resource pressured past saturation
			full[r] = 1
		}
		if got, want := InterferencePenalty(sens, over), InterferencePenalty(sens, full); got != want {
			t.Fatalf("trial %d: over-saturated pressure %g != saturated %g", trial, got, want)
		}
	}
}

// TestLatencyMonotoneInLoad: for a fixed capacity, mean and p99 latency must
// be non-decreasing in offered load, and never dip below the zero-load
// service time.
func TestLatencyMonotoneInLoad(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		g := &Genome{
			ServiceUS:  50 + 500*rng.Float64(),
			TailFactor: 1 + 9*rng.Float64(),
		}
		capacity := 100 + 10000*rng.Float64()
		prevMean, prevP99 := 0.0, 0.0
		for step := 0; step <= 40; step++ {
			lambda := capacity * 1.5 * float64(step) / 40 // sweeps past saturation
			mean, p99 := g.Latency(lambda, capacity)
			if mean < g.ServiceUS || p99 < g.ServiceUS {
				t.Fatalf("trial %d λ=%g: latency (%g, %g) below service time %g",
					trial, lambda, mean, p99, g.ServiceUS)
			}
			if p99 < mean {
				t.Fatalf("trial %d λ=%g: p99 %g below mean %g", trial, lambda, p99, mean)
			}
			if mean < prevMean || p99 < prevP99 {
				t.Fatalf("trial %d λ=%g: latency decreased: mean %g->%g p99 %g->%g",
					trial, lambda, prevMean, mean, prevP99, p99)
			}
			prevMean, prevP99 = mean, p99
		}
	}
	g := &Genome{ServiceUS: 100, TailFactor: 4}
	if mean, p99 := g.Latency(50, 0); !math.IsInf(mean, 1) || !math.IsInf(p99, 1) {
		t.Fatalf("zero capacity must give infinite latency, got (%g, %g)", mean, p99)
	}
}

// TestQPSAtQoSConsistent: the knee returned by QPSAtQoS must actually meet
// the bound when fed back through Latency, and a slightly higher load (below
// the rho clamp) must violate it.
func TestQPSAtQoSConsistent(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 100; trial++ {
		g := &Genome{
			ServiceUS:  50 + 200*rng.Float64(),
			TailFactor: 1 + 6*rng.Float64(),
		}
		capacity := 500 + 5000*rng.Float64()
		bound := g.ServiceUS * (2 + 10*rng.Float64())
		knee := g.QPSAtQoS(capacity, bound)
		if knee <= 0 || knee >= capacity {
			t.Fatalf("trial %d: knee %g outside (0, capacity=%g)", trial, knee, capacity)
		}
		if _, p99 := g.Latency(knee, capacity); p99 > bound*(1+1e-9) {
			t.Fatalf("trial %d: p99 %g at the knee exceeds bound %g", trial, p99, bound)
		}
		if knee < 0.98*capacity { // past the 0.99-rho clamp the knee saturates
			if _, p99 := g.Latency(knee*1.02, capacity); p99 <= bound {
				t.Fatalf("trial %d: bound %g still met 2%% past the knee (p99=%g)", trial, bound, p99)
			}
		}
	}
	g := &Genome{ServiceUS: 100, TailFactor: 4}
	if q := g.QPSAtQoS(0, 500); q != 0 {
		t.Fatalf("zero capacity must yield 0 QPS, got %g", q)
	}
	if q := g.QPSAtQoS(1000, 100); q != 0 {
		t.Fatalf("bound at service time is unreachable, want 0 QPS, got %g", q)
	}
}

// TestScaleOutEfficiencyRegimes: efficiency is exactly 1 on a single node,
// follows n^(Beta-1) beyond, and is monotone in the direction Beta dictates.
func TestScaleOutEfficiencyRegimes(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 100; trial++ {
		beta := 0.5 + rng.Float64() // spans sublinear through superlinear
		g := &Genome{Beta: beta}
		if e := g.ScaleOutEfficiency(1); e != 1 {
			t.Fatalf("beta=%g: single-node efficiency %g != 1", beta, e)
		}
		if e := g.ScaleOutEfficiency(0); e != 1 {
			t.Fatalf("beta=%g: zero-node efficiency %g != 1", beta, e)
		}
		prev := 1.0
		for n := 2; n <= 32; n *= 2 {
			e := g.ScaleOutEfficiency(n)
			want := math.Pow(float64(n), beta-1)
			if math.Abs(e-want) > 1e-12 {
				t.Fatalf("beta=%g n=%d: efficiency %g, want %g", beta, n, e, want)
			}
			switch {
			case beta < 1 && e >= prev:
				t.Fatalf("beta=%g n=%d: sublinear regime must lose efficiency (%g >= %g)", beta, n, e, prev)
			case beta > 1 && e <= prev:
				t.Fatalf("beta=%g n=%d: superlinear regime must gain efficiency (%g <= %g)", beta, n, e, prev)
			}
			prev = e
		}
	}
	if e := (&Genome{Beta: 1}).ScaleOutEfficiency(16); e != 1 {
		t.Fatalf("beta=1 must scale perfectly, got %g", e)
	}
}
