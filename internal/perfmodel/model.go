// Package perfmodel holds the ground-truth performance surfaces of the
// simulated workloads — the stand-in for real hardware measurements.
//
// Every workload instance carries a hidden Genome. The model maps
// (genome, platform, per-node allocation, interference pressure, node count)
// to a throughput rate, and for latency-critical services to a
// latency/throughput curve. The cluster manager never reads the genome; it
// only observes (noisy) performance numbers, exactly as Quasar observes
// profiling results on real machines. The surfaces are shaped to match the
// variability reported in Figure 2 of the paper: up to ~7x across platforms,
// ~10x across scale-up allocations, ~10x under interference, sublinear to
// superlinear scale-out, and ~3x across datasets.
package perfmodel

import (
	"math"

	"quasar/internal/cluster"
)

// Genome is the hidden parameter vector of one workload instance.
type Genome struct {
	// BaseRate is work units per second achieved by one core of a
	// CorePerf=1.0 platform with sufficient memory and no interference.
	BaseRate float64

	// Affinity multiplies per-core performance on each platform (keyed by
	// platform name), capturing microarchitectural match beyond raw
	// CorePerf (cache fit, memory system balance).
	Affinity map[string]float64

	// Alpha is the scale-up exponent: node rate grows as cores^Alpha.
	Alpha float64

	// Parallelism caps the cores the workload can exploit on one node;
	// cores beyond it are allocated-but-idle (the waste reservations
	// create). Single-node benchmarks have low parallelism; services and
	// framework tasks high.
	Parallelism float64

	// MemNeedGB is the per-node working set; below it performance degrades
	// as (mem/need)^MemCurve.
	MemNeedGB float64
	MemCurve  float64

	// Beta is the scale-out exponent: n nodes deliver n^Beta the rate of
	// one (serial fractions push Beta below 1; cache-aggregation effects
	// can push it slightly above).
	Beta float64

	// Sens is the sensitivity to interference per shared resource in
	// [0,1]: the fraction of performance lost when that resource is fully
	// contended. Caused is the pressure this workload exerts per resource
	// when it occupies a whole reference node.
	Sens   cluster.ResVec
	Caused cluster.ResVec

	// Work is the total job size in work units (batch workloads).
	Work float64

	// ServiceUS is the zero-load request latency in microseconds and
	// TailFactor the p99/mean multiplier at saturation (latency services).
	ServiceUS  float64
	TailFactor float64

	// QPSPerUnit converts the throughput rate into queries per second for
	// latency services (a rate of r sustains r*QPSPerUnit QPS).
	QPSPerUnit float64

	// NoiseCV is the coefficient of variation of measurement noise.
	NoiseCV float64
}

// InterferencePenalty returns the multiplicative slowdown in (0,1] a
// workload with sensitivity sens suffers under the given resource pressure.
// Each resource contributes (1 - sens_r * sat(pressure_r)); contributions
// compound multiplicatively, so a workload sensitive to several heavily
// contended resources can slow down by an order of magnitude, matching the
// interference spread in Figure 2.
func InterferencePenalty(sens, pressure cluster.ResVec) float64 {
	pen := 1.0
	for r := 0; r < int(cluster.NumResources); r++ {
		p := pressure[r]
		if p > 1 {
			p = 1
		}
		f := 1 - sens[r]*p
		if f < 0.02 {
			f = 0.02 // a workload never fully stops; it crawls
		}
		pen *= f
	}
	return pen
}

// memFactor returns the memory-sufficiency multiplier for an allocation of
// memGB against the genome's working set.
func (g *Genome) memFactor(memGB float64) float64 {
	if memGB >= g.MemNeedGB {
		return 1
	}
	if memGB <= 0 {
		return 0
	}
	return math.Pow(memGB/g.MemNeedGB, g.MemCurve)
}

// affinity returns the platform multiplier, defaulting to 1 for unknown
// platforms.
func (g *Genome) affinity(name string) float64 {
	if a, ok := g.Affinity[name]; ok {
		return a
	}
	return 1
}

// NodeRate returns the work rate (units/sec) this genome achieves on one
// server of platform p with the given allocation, under the given
// shared-resource pressure from neighbours.
func (g *Genome) NodeRate(p *cluster.Platform, alloc cluster.Alloc, pressure cluster.ResVec) float64 {
	if !alloc.Valid() {
		return 0
	}
	cores := float64(alloc.Cores)
	if cores > float64(p.Cores) {
		cores = float64(p.Cores)
	}
	if g.Parallelism > 0 && cores > g.Parallelism {
		cores = g.Parallelism
	}
	// Diminishing returns apply to total compute (cores x per-core perf):
	// rate = base * affinity * (cores*CorePerf)^alpha. This keeps whole-node
	// heterogeneity in the ~3-7x range of Fig. 2 while scale-up within the
	// largest node still spans ~an order of magnitude with memory effects.
	rate := g.BaseRate * g.affinity(p.Name) * math.Pow(cores*p.CorePerf, g.Alpha)
	rate *= g.memFactor(alloc.MemoryGB)
	rate *= InterferencePenalty(g.Sens, pressure)
	return rate
}

// ScaleOutEfficiency returns the multiplier applied to the summed node rates
// when the job runs on n nodes: n^(Beta-1).
func (g *Genome) ScaleOutEfficiency(n int) float64 {
	if n <= 1 {
		return 1
	}
	return math.Pow(float64(n), g.Beta-1)
}

// NodeAlloc pairs a platform with an allocation and local pressure; JobRate
// aggregates a distributed allocation.
type NodeAlloc struct {
	Platform *cluster.Platform
	Alloc    cluster.Alloc
	Pressure cluster.ResVec
}

// JobRate returns the aggregate work rate of a (possibly heterogeneous,
// multi-node) allocation, including the scale-out efficiency factor.
func (g *Genome) JobRate(nodes []NodeAlloc) float64 {
	sum := 0.0
	for _, n := range nodes {
		sum += g.NodeRate(n.Platform, n.Alloc, n.Pressure)
	}
	return sum * g.ScaleOutEfficiency(len(nodes))
}

// CompletionTime returns the execution time in seconds for the genome's
// total Work at the given aggregate allocation, or +Inf for a zero rate.
func (g *Genome) CompletionTime(nodes []NodeAlloc) float64 {
	rate := g.JobRate(nodes)
	if rate <= 0 {
		return math.Inf(1)
	}
	return g.Work / rate
}

// CapacityQPS returns the saturation throughput of a latency service on the
// given allocation.
func (g *Genome) CapacityQPS(nodes []NodeAlloc) float64 {
	return g.JobRate(nodes) * g.QPSPerUnit
}

// Latency returns the mean and 99th-percentile request latency in
// microseconds when offered load lambda (QPS) hits a service with the given
// capacity. The shape is an M/M/1-style knee: flat near zero load, explosive
// past ~80% utilization — matching the latency-throughput curves of Fig. 2.
// At or beyond saturation the service sheds load; latency is reported at an
// effective 99% utilization.
func (g *Genome) Latency(lambda, capacity float64) (mean, p99 float64) {
	if capacity <= 0 {
		return math.Inf(1), math.Inf(1)
	}
	rho := lambda / capacity
	if rho > 0.99 {
		rho = 0.99
	}
	if rho < 0 {
		rho = 0
	}
	mean = g.ServiceUS / (1 - rho)
	p99 = g.ServiceUS * (1 + g.TailFactor*rho/(1-rho))
	if p99 < mean {
		p99 = mean
	}
	return mean, p99
}

// QPSAtQoS returns the highest offered load the service can sustain while
// keeping 99th-percentile latency within boundUS, given its capacity. This
// is the knee position of the latency-throughput curve (Fig. 2, bottom row)
// and the metric latency-critical workloads are profiled and classified by.
func (g *Genome) QPSAtQoS(capacity, boundUS float64) float64 {
	if capacity <= 0 || boundUS <= g.ServiceUS {
		return 0
	}
	// p99(ρ) = S·(1 + T·ρ/(1-ρ)) = bound  =>  ρ* = x/(T+x), x = bound/S - 1.
	x := boundUS/g.ServiceUS - 1
	rho := x / (g.TailFactor + x)
	if rho > 0.99 {
		rho = 0.99
	}
	return rho * capacity
}

// AchievedQPS returns the throughput actually served under offered load
// lambda: min(lambda, capacity).
func (g *Genome) AchievedQPS(lambda, capacity float64) float64 {
	if lambda > capacity {
		return capacity
	}
	return lambda
}

// UsefulCores returns how many of the allocated cores the workload actually
// keeps busy at the given load factor (1.0 for batch work, achieved/capacity
// for services). Cores beyond the genome's parallelism idle — the source of
// the reservation waste in Figures 1 and 11d.
func (g *Genome) UsefulCores(alloc cluster.Alloc, loadFactor float64) float64 {
	c := float64(alloc.Cores)
	if g.Parallelism > 0 && c > g.Parallelism {
		c = g.Parallelism
	}
	if loadFactor < 0 {
		loadFactor = 0
	}
	if loadFactor > 1 {
		loadFactor = 1
	}
	return c * loadFactor
}

// UsefulMemGB returns the memory the workload actually touches out of an
// allocation.
func (g *Genome) UsefulMemGB(alloc cluster.Alloc) float64 {
	if alloc.MemoryGB < g.MemNeedGB {
		return alloc.MemoryGB
	}
	return g.MemNeedGB
}

// CausedPressure returns the shared-resource pressure a placement of this
// genome exerts on a server of platform p with the given allocation. Core-
// bound resources scale with the allocated core fraction; bandwidth-bound
// resources are additionally normalized by the platform's capacity relative
// to the reference platform, so big machines absorb more colocation.
func (g *Genome) CausedPressure(p *cluster.Platform, alloc cluster.Alloc) cluster.ResVec {
	var out cluster.ResVec
	if p.Cores == 0 {
		return out
	}
	coreFrac := float64(alloc.Cores) / float64(p.Cores)
	if coreFrac > 1 {
		coreFrac = 1
	}
	// Reference capacities: platform A of the local cluster.
	const (
		refCacheMB = 1.0
		refMemBW   = 4.0
		refDiskBW  = 60.0
		refNetBW   = 1.0
	)
	for r := 0; r < int(cluster.NumResources); r++ {
		v := g.Caused[r] * coreFrac
		switch cluster.Resource(r) {
		case cluster.ResLLC, cluster.ResL2, cluster.ResL1I:
			v *= refCacheMB * 4 / math.Max(p.CacheMB, 0.5)
		case cluster.ResMemBW, cluster.ResPrefetch:
			v *= refMemBW * 2 / math.Max(p.MemBWGBs, 1)
		case cluster.ResDiskIO:
			v = g.Caused[r] * refDiskBW / math.Max(p.DiskBWMBs, 1)
		case cluster.ResNetBW:
			v = g.Caused[r] * refNetBW / math.Max(p.NetBWGbs, 0.1)
		case cluster.ResMemCap:
			v = g.Caused[r] * alloc.MemoryGB / p.MemoryGB
		}
		if v > 1 {
			v = 1
		}
		out[r] = v
	}
	return out
}
