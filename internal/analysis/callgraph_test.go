package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

const hotpathFixturePkg = "quasar/internal/analysis/testdata/src/hotpath_src"

// loadHotpathFixture type-checks the reachability fixture and builds its
// call graph.
func loadHotpathFixture(t *testing.T) (*Loader, *CallGraph) {
	t.Helper()
	loader, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(filepath.Join("internal", "analysis", "testdata", "src", "hotpath_src"))
	if err != nil {
		t.Fatal(err)
	}
	return loader, BuildCallGraph(loader.Fset, pkgs)
}

func TestReachability(t *testing.T) {
	_, g := loadHotpathFixture(t)
	hot, err := g.Reachable(
		[]string{hotpathFixturePkg + ".Root"},
		[]string{hotpathFixturePkg + ".stopped"},
	)
	if err != nil {
		t.Fatal(err)
	}

	wantHot := []string{
		"Root",          // declared root
		"directA",       // direct call chain
		"directB",       // transitive
		"alpha.Do",      // interface dispatch, value receiver
		"(*beta).Do",    // interface dispatch, pointer receiver
		"deepHelper",    // transitive through the interface impl
		"refTarget",     // function reference taken as a value
		"closureHelper", // called from a closure built inside Root
		"MarkedHot",     // //quasar:hot marker
		"markedChild",   // transitive from the marker
	}
	wantCold := []string{
		"coldBoundary", // //quasar:cold fences itself
		"coldOnly",     // only reachable through the cold boundary
		"stopped",      // declared stop key
		"stoppedChild", // only reachable through the stop
		"Unreached",    // no callers, no marker
	}
	got := make(map[string]bool)
	for _, hf := range hot.Funcs() {
		got[strings.TrimPrefix(hf.Key, hotpathFixturePkg+".")] = true
	}
	for _, name := range wantHot {
		if !got[name] {
			t.Errorf("expected %s in hot set; hot = %v", name, keysOf(got))
		}
	}
	for _, name := range wantCold {
		if got[name] {
			t.Errorf("expected %s to stay cold; hot = %v", name, keysOf(got))
		}
	}
	// The interface method itself is traversed but has no body; Funcs()
	// omits it while Len() counts only declared functions.
	if hot.Len() != len(hot.Funcs()) {
		t.Errorf("Len() = %d, want %d (declared functions only)", hot.Len(), len(hot.Funcs()))
	}
}

func TestReachabilityRoots(t *testing.T) {
	_, g := loadHotpathFixture(t)
	hot, err := g.Reachable([]string{hotpathFixturePkg + ".Root"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	roots := make(map[string]bool)
	for _, hf := range hot.Funcs() {
		if hf.Root {
			roots[strings.TrimPrefix(hf.Key, hotpathFixturePkg+".")] = true
		}
	}
	// Declared key and //quasar:hot marker are roots; callees are not.
	for _, want := range []string{"Root", "MarkedHot"} {
		if !roots[want] {
			t.Errorf("expected %s marked as root; roots = %v", want, keysOf(roots))
		}
	}
	if roots["directA"] {
		t.Error("directA is a callee, not a root")
	}
	// Without the stop key, the stopped chain becomes hot.
	if !hot.Contains(g.byKey[hotpathFixturePkg+".stoppedChild"]) {
		t.Error("without a stop key, stoppedChild should be hot-reachable")
	}
}

func TestReachabilityUnknownKeys(t *testing.T) {
	_, g := loadHotpathFixture(t)
	if _, err := g.Reachable([]string{hotpathFixturePkg + ".NoSuchFunc"}, nil); err == nil {
		t.Error("unknown root key should be an error")
	}
	if _, err := g.Reachable(nil, []string{hotpathFixturePkg + ".NoSuchFunc"}); err == nil {
		t.Error("unknown stop key should be an error")
	}
}

func TestFuncKeyForms(t *testing.T) {
	_, g := loadHotpathFixture(t)
	for _, want := range []string{
		hotpathFixturePkg + ".Root",       // package function
		hotpathFixturePkg + ".alpha.Do",   // value-receiver method
		hotpathFixturePkg + ".(*beta).Do", // pointer-receiver method
		hotpathFixturePkg + ".Worker.Do",  // interface method (abstract)
	} {
		if _, ok := g.byKey[want]; !ok {
			t.Errorf("call graph has no key %q", want)
		}
	}
}

func keysOf(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
