// Package hotalloc_clean is a known-clean fixture: hot-marked functions
// written in the allocation-free style hotalloc demands, plus the
// sanctioned escape hatches (Enabled-guarded trace branches, //quasar:cold
// boundaries, //lint:allow annotations).
package hotalloc_clean

import "fmt"

type point struct{ x, y float64 }

type tracer struct{ on bool }

func (t *tracer) Enabled() bool { return t.on }

type engine struct {
	tr      *tracer
	scratch []point
	keys    []string
	vals    map[string]float64
}

// quasar:hot fixture root
func (e *engine) Tick(n int) float64 {
	// Reusing a receiver-owned scratch buffer: truncate, then index-write.
	e.scratch = e.scratch[:0]
	total := 0.0
	for i := 0; i < n && i < cap(e.scratch); i++ {
		total += float64(i)
	}
	// Iterating a maintained key slice instead of the map.
	for _, k := range e.keys {
		total += e.vals[k]
	}
	if e.tr.Enabled() {
		// Trace-only branch: allocations here are off the fast path.
		msg := fmt.Sprintf("tick total=%v", total)
		_ = []byte(msg)
	}
	return total
}

// quasar:hot fixture root
func IndexWrites(out []point, n int) {
	for i := 0; i < n && i < len(out); i++ {
		out[i].x = float64(i)
	}
}

// quasar:hot fixture root
func Allowed() *point {
	return &point{x: 1} //lint:allow(hotalloc) fixture: one-time setup escape
}

// quasar:cold fixture: reporting path, runs once per experiment
func Report(e *engine) string {
	return fmt.Sprintf("%d keys", len(e.keys))
}

// quasar:hot fixture root
func CallsCold(e *engine) int {
	// Report is a //quasar:cold boundary: its allocations stay unflagged
	// even though a hot root calls it.
	return len(Report(e))
}

// ColdHelper is never hot-reachable; it may allocate freely.
func ColdHelper(n int) []point {
	return make([]point, n)
}
