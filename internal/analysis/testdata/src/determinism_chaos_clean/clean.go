// Package determinism_chaos_clean is the known-clean counterpart of
// determinism_chaos_bad: schedules are armed from slices (plan order) or
// sorted key lists, and RNG substreams derive in slice order.
package determinism_chaos_clean

import (
	"sort"

	"quasar/internal/sim"
)

type fault struct {
	name string
	at   float64
}

// ArmFaultsInPlanOrder arms events by iterating the declarative fault list
// — a slice, so order is the plan author's, not the map runtime's.
func ArmFaultsInPlanOrder(eng *sim.Engine, faults []fault) {
	for _, f := range faults {
		eng.Schedule(f.at, func() {})
	}
}

// ArmFaultsSortedKeys fixes a map-shaped plan by sorting the keys first.
func ArmFaultsSortedKeys(eng *sim.Engine, at map[string]float64) {
	keys := make([]string, 0, len(at))
	for k := range at {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		eng.Schedule(at[k], func() {})
	}
}

// DeriveStreamsInPlanOrder derives one substream per fault in list order,
// then draws from the per-fault stream freely.
func DeriveStreamsInPlanOrder(eng *sim.Engine, rng *sim.RNG, faults []fault) {
	for _, f := range faults {
		sub := rng.Stream(f.name)
		eng.Schedule(f.at+sub.Exponential(60), func() {})
	}
}

// ReadOnlyEngineUseInMapRange shows the rule targets scheduling, not reads:
// Now and Pending are safe anywhere.
func ReadOnlyEngineUseInMapRange(eng *sim.Engine, at map[string]float64) float64 {
	latest := 0.0
	for _, t := range at {
		if t > latest && t > eng.Now() && eng.Pending() >= 0 {
			latest = t
		}
	}
	return latest
}
