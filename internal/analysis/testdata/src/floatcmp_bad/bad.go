// Package floatcmp_bad is a known-bad fixture: exact float comparisons
// the floatcmp analyzer must flag.
package floatcmp_bad

// Equal compares float64 values exactly.
func Equal(a, b float64) bool { return a == b }

// Different compares float32 values exactly.
func Different(a, b float32) bool { return a != b }

// ZeroCheck compares a computed value against a float literal.
func ZeroCheck(a, b float64) bool { return a*b == 0 }
