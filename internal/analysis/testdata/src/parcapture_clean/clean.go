// Package parcapture_clean is a known-clean fixture: the sanctioned
// fan-out patterns — each task writes only its own slice element
// (submission-order merge) or purely task-local state.
package parcapture_clean

import "quasar/internal/par"

// IndexMerge is the canonical pattern: task i owns out[i].
func IndexMerge(xs []float64) []float64 {
	out := make([]float64, len(xs))
	par.ParFor(0, len(xs), func(i int) {
		out[i] = xs[i] * 2
	})
	return out
}

// TaskLocal declares and mutates state inside the task body.
func TaskLocal(xs []float64) []float64 {
	out := make([]float64, len(xs))
	par.ParFor(0, len(xs), func(i int) {
		sum := 0.0
		for _, x := range xs[:i+1] {
			sum += x
		}
		out[i] = sum
	})
	return out
}

// MapAfterMerge collects per-task results in a slice and folds them into a
// map only after the fan-out completes.
func MapAfterMerge(n int) map[int]int {
	squares := par.ParMap(0, n, func(i int) int { return i * i })
	m := make(map[int]int, n)
	for i, sq := range squares {
		m[i] = sq
	}
	return m
}

// NestedFieldWrite writes through task-owned struct elements.
type cell struct{ v int }

func NestedFieldWrite(cells []cell) {
	par.ParFor(0, len(cells), func(i int) {
		cells[i].v = i
	})
}
