// Package errdiscard_clean is a known-clean fixture: handled, explicitly
// discarded, and conventionally ignored errors must produce no errdiscard
// diagnostics.
package errdiscard_clean

import (
	"errors"
	"fmt"
)

func work() error { return errors.New("boom") }

func void() {}

// Handle shows the accepted patterns.
func Handle() error {
	if err := work(); err != nil {
		return err
	}
	_ = work()          // explicit, documented discard
	fmt.Println("done") // stdout printer: conventionally ignored
	void()              // no error to drop
	return nil
}
