// Package hotpath_src is the call-graph reachability fixture: a known
// topology of direct calls, interface dispatch, function references,
// closures, directives, and unreachable functions, exercised by
// callgraph_test.go with explicit root and stop keys.
package hotpath_src

// Worker is dispatched through an interface from the root: both
// implementations must land in the hot set.
type Worker interface {
	Do(x int) int
}

type alpha struct{}

func (alpha) Do(x int) int { return x + 1 }

type beta struct{ scale int }

func (b *beta) Do(x int) int { return deepHelper(x) * b.scale }

// deepHelper is hot only through beta.Do.
func deepHelper(x int) int { return x * 2 }

// Root is the entry point the test declares in its root keys.
func Root(w Worker, xs []int) int {
	total := directA(len(xs))
	total += w.Do(total)
	f := refTarget // reference edge: refTarget runs wherever f is invoked
	total += f(total)
	cl := func(v int) int { return closureHelper(v) } // closure body is Root's
	total += cl(total)
	total += coldBoundary(total)
	total += stopped(total)
	return total
}

// directA and directB form a plain call chain from the root.
func directA(x int) int { return directB(x) + 1 }

func directB(x int) int { return x * x }

// refTarget is reached as a function value, not a call.
func refTarget(x int) int { return x - 1 }

// closureHelper is reached through a closure built inside Root.
func closureHelper(x int) int { return x / 2 }

// quasar:cold fixture: reporting path, runs outside the tick loop
func coldBoundary(x int) int { return coldOnly(x) }

// coldOnly is reachable only through the cold boundary: never hot.
func coldOnly(x int) int { return x + 100 }

// stopped is declared as a stop key by the test: fenced, never hot.
func stopped(x int) int { return stoppedChild(x) }

// stoppedChild is reachable only through the stop: never hot.
func stoppedChild(x int) int { return x + 200 }

// quasar:hot fixture: marked root with no visible callers
func MarkedHot(x int) int { return markedChild(x) }

// markedChild is hot through the //quasar:hot marker on MarkedHot.
func markedChild(x int) int { return x - 200 }

// Unreached has no callers and no marker: never hot.
func Unreached(x int) int { return x * 7 }
