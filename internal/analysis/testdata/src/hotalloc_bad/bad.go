// Package hotalloc_bad is a known-bad fixture: allocation sources inside
// //quasar:hot-marked functions the hotalloc analyzer must flag. The
// ColdTwin function repeats every pattern without the marker to prove the
// analyzer only fires on the hot path.
package hotalloc_bad

import "fmt"

type point struct{ x, y float64 }

type state struct {
	points []point
	total  float64
}

// quasar:hot fixture root
func EscapingLiteral() *point {
	return &point{x: 1, y: 2}
}

// quasar:hot fixture root
func SliceAndMapLiterals() int {
	s := []int{1, 2, 3}
	m := map[string]int{"a": 1}
	return len(s) + len(m)
}

// quasar:hot fixture root
func MakeAndNew() *state {
	buf := make([]point, 0, 8)
	st := new(state)
	st.points = buf
	return st
}

// quasar:hot fixture root
func AppendGrowth(st *state, n int) {
	for i := 0; i < n; i++ {
		st.points = append(st.points, point{x: float64(i)})
	}
}

// quasar:hot fixture root
func ClosureCapture(st *state) func() float64 {
	return func() float64 { return st.total }
}

// quasar:hot fixture root
func Formatting(st *state) string {
	return fmt.Sprintf("%d points", len(st.points))
}

// sink has an interface-typed variadic parameter; calling it with loose
// arguments boxes each one into an implicit slice.
func sink(args ...any) int { return len(args) }

// quasar:hot fixture root
func VariadicBoxing(st *state) int {
	return sink(st.total, len(st.points))
}

// quasar:hot fixture root
func MapIteration(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v
	}
	return total
}

// Reached is pulled into the hot set through a call edge from a root, so
// its allocations are flagged too.
func Reached() []int {
	return []int{1, 2, 3}
}

// quasar:hot fixture root
func CallsReached() int {
	return len(Reached())
}

// ColdTwin repeats every flagged pattern with no //quasar:hot marker and
// no hot caller: nothing here may be reported.
func ColdTwin(m map[string]float64, n int) string {
	p := &point{x: 1}
	s := []int{1, 2, 3}
	buf := make([]point, 0, n)
	for i := 0; i < n; i++ {
		buf = append(buf, point{})
	}
	f := func() float64 { return p.x }
	total := 0.0
	for _, v := range m {
		total += v
	}
	_ = sink(total, f())
	return fmt.Sprintf("%d %d", len(s), len(buf))
}
