// Package unusedallow_clean is a known-clean fixture: every //lint:allow
// directive suppresses a real finding, so the stale-suppression check
// stays silent.
package unusedallow_clean

// ExactTrailing suppresses with a trailing comment on the finding's line.
func ExactTrailing(a, b float64) bool {
	return a == b //lint:allow(floatcmp) fixture: bit-exact comparison intended
}

// ExactPreceding suppresses with a comment on the line above the finding.
func ExactPreceding(a, b float64) bool {
	//lint:allow(floatcmp) fixture: bit-exact comparison intended
	return a != b
}
