// Package parcapture_bad is a known-bad fixture: concurrent task bodies
// writing to state captured from the enclosing scope, which the parcapture
// analyzer must flag — the writes race and their order depends on the
// goroutine schedule.
package parcapture_bad

import (
	"sync"

	"quasar/internal/par"
)

// SharedCounter increments a captured int from every task.
func SharedCounter(n int) int {
	count := 0
	par.ParFor(0, n, func(i int) {
		count++
	})
	return count
}

// SharedAccumulator compound-assigns into a captured float.
func SharedAccumulator(xs []float64) float64 {
	total := 0.0
	par.ParFor(0, len(xs), func(i int) {
		total += xs[i]
	})
	return total
}

// SharedAppend reassigns a captured slice header from every task; even
// under a mutex the element order depends on the schedule.
func SharedAppend(n int) []int {
	var mu sync.Mutex
	var out []int
	par.ParFor(0, n, func(i int) {
		mu.Lock()
		defer mu.Unlock()
		out = append(out, i)
	})
	return out
}

// SharedMap writes into a captured map: concurrent map writes fault at
// runtime.
func SharedMap(n int) map[int]int {
	m := make(map[int]int, n)
	par.ParFor(0, n, func(i int) {
		m[i] = i * i
	})
	return m
}

// GoroutineWrite mutates captured state from a bare goroutine.
func GoroutineWrite() int {
	best := 0
	done := make(chan struct{})
	go func() {
		best = 42
		close(done)
	}()
	<-done
	return best
}
