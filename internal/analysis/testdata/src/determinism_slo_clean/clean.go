// Package determinism_slo_clean is a known-clean fixture for the float-
// accumulation rule of the determinism analyzer: every function either
// accumulates associatively, iterates a deterministic order, or keeps the
// accumulator inside the loop iteration.
package determinism_slo_clean

import "sort"

// CountBad accumulates integers across map iteration: integer addition is
// associative, so the order cannot change the result.
func CountBad(bad map[string]int) int {
	total := 0
	for _, b := range bad {
		total += b
	}
	return total
}

// SumSorted folds floats over sorted keys: the iteration order is pinned,
// so the addition chain is identical every run.
func SumSorted(consumed map[string]float64) float64 {
	keys := make([]string, 0, len(consumed))
	for k := range consumed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += consumed[k]
	}
	return total
}

// SumSlice folds floats over a slice: slices iterate in index order.
func SumSlice(vals []float64) float64 {
	total := 0.0
	for _, v := range vals {
		total += v
	}
	return total
}

// PerEntryScale keeps the float accumulator inside the loop body: it dies
// with each iteration, so no order-dependent value escapes.
func PerEntryScale(weights map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(weights))
	for k, w := range weights {
		scaled := 0.0
		scaled += 2 * w
		out[k] = scaled
	}
	return out
}
