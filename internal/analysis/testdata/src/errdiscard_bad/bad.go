// Package errdiscard_bad is a known-bad fixture: silently dropped error
// returns the errdiscard analyzer must flag.
package errdiscard_bad

import (
	"errors"
	"fmt"
	"io"
)

func work() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

// Drop discards errors three ways: a bare error return, an error in a
// tuple, and a write to an arbitrary writer.
func Drop(w io.Writer) {
	work()
	pair()
	fmt.Fprintf(w, "hello")
}
