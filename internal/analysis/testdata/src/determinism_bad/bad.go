// Package determinism_bad is a known-bad fixture: every function breaks
// the seeded-simulation contract in a way the determinism analyzer must
// flag.
package determinism_bad

import (
	"math/rand"
	"time"
)

// GlobalDraw draws from the unseeded shared source.
func GlobalDraw() int { return rand.Intn(10) }

// WallClock reads the wall clock outside the allowlist.
func WallClock() int64 { return time.Now().UnixNano() }

// CollectUnsorted emits map values in randomized iteration order.
func CollectUnsorted(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
