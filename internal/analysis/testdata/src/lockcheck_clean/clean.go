// Package lockcheck_clean is a known-clean fixture: the mutex patterns
// lockcheck sanctions — defer-released locks, fully paired critical
// sections, blocking operations only after release, and sibling mutexes
// released independently.
package lockcheck_clean

import (
	"sync"

	"quasar/internal/par"
)

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	vals map[string]int
}

// DeferReleased is the canonical form: defer on the next line.
func (s *store) DeferReleased(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals[k] = v
}

// PairedRelease releases in the same block with no return in between.
func (s *store) PairedRelease(k string, v int) {
	s.mu.Lock()
	s.vals[k] = v
	s.mu.Unlock()
}

// ReadDeferReleased pairs RLock with a deferred RUnlock.
func (s *store) ReadDeferReleased(k string) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.vals[k]
}

// SendAfterUnlock copies under the lock and sends after releasing it.
func (s *store) SendAfterUnlock(ch chan<- int, k string) {
	s.mu.Lock()
	v := s.vals[k]
	s.mu.Unlock()
	ch <- v
}

// FanoutAfterUnlock snapshots under the lock and fans out after release.
func (s *store) FanoutAfterUnlock(out []int) {
	s.mu.Lock()
	n := len(s.vals)
	s.mu.Unlock()
	par.ParFor(0, len(out), func(i int) {
		out[i] = n + i
	})
}

// SiblingMutexes locks both mutexes and releases each one.
func (s *store) SiblingMutexes(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rw.Lock()
	defer s.rw.Unlock()
	s.vals[k] = v
}
