// Package lockcheck_bad is a known-bad fixture: mutex misuse the lockcheck
// analyzer must flag — leaked locks, early returns inside critical
// sections, and blocking operations while a lock is held.
package lockcheck_bad

import (
	"sync"

	"quasar/internal/par"
)

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	vals map[string]int
}

// NeverReleased locks and forgets to unlock: every later caller deadlocks.
func (s *store) NeverReleased(k string, v int) {
	s.mu.Lock()
	s.vals[k] = v
}

// EarlyReturn releases on the happy path only; the early return leaks the
// lock.
func (s *store) EarlyReturn(k string) int {
	s.mu.Lock()
	v, ok := s.vals[k]
	if !ok {
		return -1
	}
	s.mu.Unlock()
	return v
}

// ReadLeaked takes the read lock and never releases it.
func (s *store) ReadLeaked(k string) int {
	s.rw.RLock()
	return s.vals[k]
}

// SendWhileLocked holds the lock across a channel send; if the receiver is
// not ready, the critical section blocks everyone.
func (s *store) SendWhileLocked(ch chan<- int, k string) {
	s.mu.Lock()
	ch <- s.vals[k]
	s.mu.Unlock()
}

// FanoutWhileLocked holds the lock across a par submission: every worker
// task runs (and blocks) inside the critical section.
func (s *store) FanoutWhileLocked(out []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	par.ParFor(0, len(out), func(i int) {
		out[i] = i
	})
}
