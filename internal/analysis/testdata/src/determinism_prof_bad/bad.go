// Package determinism_prof_bad is a known-bad fixture for the wall-clock
// rules of the determinism analyzer: every declaration reads the real
// clock outside the profiler allowlist — via time.Since, or via a
// package-level var initializer that the function walk never sees.
package determinism_prof_bad

import "time"

// started anchors a wall-clock epoch before any function runs. Only the
// allowlisted profiler (internal/obs/prof) may do this.
var started = time.Now()

// deadline hides the read inside a nested expression of the initializer.
var deadline = float64(time.Now().UnixNano()) + 30e9

// Elapsed measures against the wall clock: two runs of the same seed see
// different values.
func Elapsed() float64 {
	return time.Since(started).Seconds()
}

// StampAndMeasure combines both reads in one body.
func StampAndMeasure(t0 time.Time) (int64, float64) {
	return time.Now().UnixNano(), time.Since(t0).Seconds()
}
