// Package snapshotdrift_clean is a known-clean fixture: every field of
// StateSnapshot is exported, encodable, and referenced by both the encode
// and decode paths.
package snapshotdrift_clean

// StateSnapshot is a well-formed snapshot format.
type StateSnapshot struct {
	ID    string         `json:"id"`
	Vals  []float64      `json:"vals"`
	Index map[string]int `json:"index"`
}

// Snapshot is the encode side.
func Snapshot(id string, vals []float64, index map[string]int) *StateSnapshot {
	return &StateSnapshot{ID: id, Vals: vals, Index: index}
}

// Restore is the decode side.
func Restore(s *StateSnapshot) (string, []float64, map[string]int) {
	return s.ID, s.Vals, s.Index
}
