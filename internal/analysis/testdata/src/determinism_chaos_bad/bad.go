// Package determinism_chaos_bad is a known-bad fixture for the engine-
// scheduling and RNG-draw map-order rules of the determinism analyzer:
// every function arms simulation events or consumes an RNG stream while
// ranging over a map, so the fault schedule differs run to run.
package determinism_chaos_bad

import "quasar/internal/sim"

// ArmFaultsFromMap schedules one injection per map entry: the events are
// armed in Go's randomized iteration order, so sequence numbers (and
// same-time tie-breaks) differ every run.
func ArmFaultsFromMap(eng *sim.Engine, at map[string]float64) {
	for _, t := range at {
		eng.Schedule(t, func() {})
	}
}

// RecoveriesFromMap schedules restarts with After in map order.
func RecoveriesFromMap(eng *sim.Engine, delays map[int]float64) {
	for _, d := range delays {
		eng.After(d, func() {})
	}
}

// TickersFromMap starts periodic sources in map order.
func TickersFromMap(eng *sim.Engine, periods map[string]float64) {
	for _, p := range periods {
		_ = eng.Ticker(0, p, func(now float64) {})
	}
}

// TargetsFromMap draws fault targets while ranging a map: the stream is
// consumed in randomized order, so every draw after the loop differs too.
func TargetsFromMap(rng *sim.RNG, weights map[int]int) int {
	hits := 0
	for id := range weights {
		if rng.Intn(10) > id {
			hits++
		}
	}
	return hits
}

// StreamsFromMap derives substreams in map order: derivation mutates the
// parent generator, so the whole stream tree depends on iteration order.
func StreamsFromMap(rng *sim.RNG, names map[string]bool) {
	for name := range names {
		_ = rng.Stream(name)
	}
}
