// Package determinism_obs_clean is a known-clean fixture for the tracer
// rules of the determinism analyzer: each function is the sanctioned
// counterpart of a determinism_obs_bad pattern.
package determinism_obs_clean

import (
	"sort"

	"quasar/internal/obs"
	"quasar/internal/par"
)

// EmitSortedKeys sorts the map's keys before emitting, so the event order
// is a pure function of the map's contents.
func EmitSortedKeys(tr *obs.Tracer, util map[string]float64) {
	keys := make([]string, 0, len(util))
	for k := range util {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		tr.Instant("server/"+k, "runtime", "util", obs.Arg{Key: "u", Val: util[k]})
	}
}

// SimClockStamp reads time through an injected simulation clock.
func SimClockStamp(clock func() float64, tr *obs.Tracer) {
	tr.InstantAt(clock(), "manager", "runtime", "tick")
}

// ShardedFanOut derives one shard per task before the fan-out and merges
// them in input order afterwards — the shard discipline.
func ShardedFanOut(tr *obs.Tracer) {
	shards := tr.Shards(8)
	par.ParFor(0, 8, func(i int) {
		shards[i].Instant("classify", "classify", "probe")
	})
	tr.Merge(shards)
}

// ReadOnlyInTask checks the tracer's state inside a task without emitting,
// which is safe anywhere.
func ReadOnlyInTask(tr *obs.Tracer, hits []int) {
	par.ParFor(0, len(hits), func(i int) {
		if tr.Enabled() {
			hits[i]++
		}
	})
}
