// Package determinism_prof_clean is a known-clean fixture for the
// wall-clock rules of the determinism analyzer: each declaration is the
// sanctioned counterpart of a determinism_prof_bad pattern — virtual
// time threaded in as a value, never read from the real clock.
package determinism_prof_clean

// epoch is a fixed anchor, not a wall-clock read; package-level var
// initializers are walked, and this one is a pure constant expression.
var epoch = int64(0)

// Elapsed measures against injected virtual time.
func Elapsed(nowSecs, startSecs float64) float64 {
	return nowSecs - startSecs
}

// StampAndMeasure takes its timestamps from the simulation clock.
func StampAndMeasure(clock func() float64, t0 float64) (float64, float64) {
	now := clock()
	return now, now - t0
}

// SinceEpoch derives a duration arithmetically from injected nanos.
func SinceEpoch(nowNanos int64) int64 {
	return nowNanos - epoch
}
