// Package snapshotdrift_bad is a known-bad fixture: StateSnapshot drifts
// in every way the snapshotdrift analyzer checks.
package snapshotdrift_bad

// StateSnapshot is a broken snapshot format.
type StateSnapshot struct {
	ID      string   // fine: exported, encodable, referenced both ways
	count   int      // unexported: encoding/json drops it
	Notify  chan int // not JSON-encodable
	Skipped float64  // never referenced by encode or decode
	Extra   string   // encoded but never decoded
}

// Snapshot is the encode side.
func Snapshot(id, extra string, n int) *StateSnapshot {
	return &StateSnapshot{ID: id, Extra: extra, count: n}
}

// Restore is the decode side.
func Restore(s *StateSnapshot) string {
	return s.ID
}
