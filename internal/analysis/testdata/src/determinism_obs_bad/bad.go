// Package determinism_obs_bad is a known-bad fixture for the tracer rules
// of the determinism analyzer: every function breaks the byte-identical-
// trace contract — emission in randomized map order, wall-clock
// timestamps, or one tracer shared across concurrent tasks.
package determinism_obs_bad

import (
	"time"

	"quasar/internal/obs"
	"quasar/internal/par"
)

// EmitInMapOrder emits one event per map entry: the events land in Go's
// randomized iteration order, so two runs of the same seed diverge.
func EmitInMapOrder(tr *obs.Tracer, util map[string]float64) {
	for srv, u := range util {
		tr.Instant("server/"+srv, "runtime", "util", obs.Arg{Key: "u", Val: u})
	}
}

// WallClockStamp timestamps an event off the wall clock instead of the
// injected simulation clock.
func WallClockStamp(tr *obs.Tracer) {
	tr.InstantAt(float64(time.Now().UnixNano()), "manager", "runtime", "tick")
}

// SharedTracerFanOut captures one tracer across concurrent tasks, so
// emissions interleave by goroutine schedule.
func SharedTracerFanOut(tr *obs.Tracer) {
	par.ParFor(0, 8, func(i int) {
		tr.Instant("classify", "classify", "probe")
	})
}

// SharedShard hands the same shard to every task instead of one each.
func SharedShard(tr *obs.Tracer) {
	s := tr.Shards(1)[0]
	par.ParFor(0, 4, func(i int) {
		s.Instant("classify", "classify", "probe")
	})
	tr.Merge([]*obs.Shard{s})
}
