// Package unusedallow_bad is a known-bad fixture for stale-suppression
// detection: //lint:allow directives that suppress nothing must be
// reported, while directives naming analyzers outside the current run are
// left alone (their analyzer never looked).
package unusedallow_bad

// Exact really does trip floatcmp; its suppression is used and silent.
func Exact(a, b float64) bool {
	return a == b //lint:allow(floatcmp) fixture: bit-exact comparison intended
}

// Stale carries a floatcmp suppression on an integer comparison: floatcmp
// reports nothing here, so the directive is dead weight.
func Stale(a, b int) bool {
	return a == b //lint:allow(floatcmp) fixture: stale, nothing to suppress
}

// OtherAnalyzer names an analyzer that is not part of this run; absence of
// findings proves nothing, so it is not reported.
func OtherAnalyzer(a, b int) bool {
	return a == b //lint:allow(hotalloc) fixture: analyzer not in this run
}

// Wildcard suppresses everything and catches nothing.
func Wildcard(a, b int) bool {
	return a == b //lint:allow(*) fixture: stale wildcard
}
