// Package determinism_clean is a known-clean fixture: seeded draws, an
// annotated wall-clock read, and sorted map accumulation must produce no
// determinism diagnostics.
package determinism_clean

import (
	"math/rand"
	"sort"
	"time"
)

// SeededDraw uses an explicitly seeded generator.
func SeededDraw(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// Timestamp documents its intentional wall-clock read.
func Timestamp() int64 {
	return time.Now().UnixNano() //lint:allow(determinism) fixture: intentional wall-clock read
}

// CollectSorted accumulates across a map but sorts the result.
func CollectSorted(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// CollectByKey iterates in sorted key order; the per-iteration append
// target lives inside the loop, so nothing escapes unordered.
func CollectByKey(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
