// Package determinism_par_clean is a known-clean fixture: concurrent tasks
// that draw only from per-task substreams or task-local generators must
// produce no shared-RNG diagnostics.
package determinism_par_clean

import (
	"quasar/internal/par"
	"quasar/internal/sim"
)

// SubstreamPerTask pre-derives one substream per task in input order — the
// sanctioned fan-out pattern.
func SubstreamPerTask(seed int64) []float64 {
	rng := sim.NewRNG(seed)
	subs := rng.Substreams("task", 8)
	return par.ParMap(0, 8, func(i int) float64 {
		return subs[i].Float64()
	})
}

// TaskLocal mints an independent generator inside each task.
func TaskLocal(seed int64) []float64 {
	return par.ParMap(0, 8, func(i int) float64 {
		rng := sim.NewRNG(seed + int64(i))
		return rng.Float64()
	})
}

// GoroutineLocal mints the generator inside the goroutine that uses it.
func GoroutineLocal(seed int64) float64 {
	out := make(chan float64)
	go func() {
		rng := sim.NewRNG(seed)
		out <- rng.Float64()
	}()
	return <-out
}

// SequentialSharing draws from one generator across helpers without any
// concurrency — sharing is only a problem across tasks.
func SequentialSharing(seed int64) float64 {
	rng := sim.NewRNG(seed)
	sum := 0.0
	for i := 0; i < 4; i++ {
		sum += rng.Stream("step").Float64()
	}
	return sum
}
