// Package determinism_slo_bad is a known-bad fixture for the float-
// accumulation rule of the determinism analyzer: every function folds
// floats across a map-range loop, so the sum's low bits follow Go's
// randomized iteration order.
package determinism_slo_bad

// SumBudgets accumulates a float across map iteration: addition order
// varies run to run, so the low bits of the total do too.
func SumBudgets(consumed map[string]float64) float64 {
	total := 0.0
	for _, c := range consumed {
		total += c
	}
	return total
}

// DrainBudget subtracts in map order: subtraction chains are just as
// order-sensitive as addition chains.
func DrainBudget(spent map[string]float64) float64 {
	budget := 1.0
	for _, s := range spent {
		budget -= s
	}
	return budget
}

type health struct {
	score float64
}

// FoldIntoField accumulates through a selector: the struct outlives the
// loop, so its field carries the order-dependent sum out.
func FoldIntoField(h *health, scores map[int]float64) {
	for _, s := range scores {
		h.score += s
	}
}
