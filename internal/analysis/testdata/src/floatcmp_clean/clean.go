// Package floatcmp_clean is a known-clean fixture: tolerance-based
// comparison, integer equality, and an annotated sentinel check must
// produce no floatcmp diagnostics.
package floatcmp_clean

import "math"

const tol = 1e-9

// Equal compares within a tolerance.
func Equal(a, b float64) bool { return math.Abs(a-b) <= tol }

// IntEqual is integer equality: not the analyzer's business.
func IntEqual(a, b int) bool { return a == b }

// Unset checks a sentinel with documented intent.
func Unset(x float64) bool {
	return x == 0 //lint:allow(floatcmp) fixture: zero is an exact sentinel, never computed
}
