// Package determinism_par_bad is a known-bad fixture: every function
// shares one RNG across concurrent tasks, which the determinism analyzer
// must flag — draws interleave by goroutine schedule, so identical seeds
// stop producing identical results.
package determinism_par_bad

import (
	"math/rand"

	"quasar/internal/par"
	"quasar/internal/sim"
)

// SharedInGoroutine draws from the enclosing function's generator inside a
// go statement.
func SharedInGoroutine(seed int64) float64 {
	rng := sim.NewRNG(seed)
	out := make(chan float64)
	go func() {
		out <- rng.Float64()
	}()
	return <-out
}

// SharedInParTask captures the parent generator inside a fan-out task.
func SharedInParTask(seed int64) []float64 {
	rng := sim.NewRNG(seed)
	return par.ParMap(0, 8, func(i int) float64 {
		return rng.Float64()
	})
}

// SharedStreamDerivation derives streams concurrently; Stream mutates the
// parent, so derivation order depends on the schedule.
func SharedStreamDerivation(seed int64) {
	rng := sim.NewRNG(seed)
	par.ParFor(0, 4, func(i int) {
		_ = rng.Stream("task").Float64()
	})
}

// SharedStdRand shares a seeded *math/rand.Rand across tasks — seeded, but
// still one mutable source under concurrent draws.
func SharedStdRand(seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	sums := make([]float64, 4)
	par.ParFor(0, 4, func(i int) {
		sums[i] = r.NormFloat64()
	})
	return sums
}

// worker reaches its generator through a captured receiver.
type worker struct{ rng *sim.RNG }

// Fill draws through the shared receiver field inside each task.
func (w *worker) Fill(out []float64) {
	par.ParFor(0, len(out), func(i int) {
		out[i] = w.rng.Float64()
	})
}
