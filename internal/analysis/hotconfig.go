package analysis

import (
	"encoding/json"
	"fmt"
	"os"
)

// HotPathFile is the on-disk schema of hotpath.json: the checked-in
// declaration of the engine's hot roots and traversal stops. Keys use the
// canonical FuncKey form; every entry carries a reason so the file reads
// as an auditable contract, not a magic list.
type HotPathFile struct {
	// Comment is a free-form header field so the JSON can explain itself.
	Comment string         `json:"comment,omitempty"`
	Roots   []HotPathEntry `json:"roots"`
	Stops   []HotPathEntry `json:"stops,omitempty"`
}

// HotPathEntry is one declared root or stop.
type HotPathEntry struct {
	Key    string `json:"key"`
	Reason string `json:"reason"`
}

// LoadHotPathConfig reads hotpath.json from path and converts it into a
// run Config. Entries without a key or a reason are rejected: an
// unexplained root or stop defeats the point of checking the file in.
func LoadHotPathConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var file HotPathFile
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fmt.Errorf("analysis: parsing %s: %w", path, err)
	}
	if len(file.Roots) == 0 {
		return nil, fmt.Errorf("analysis: %s declares no roots", path)
	}
	cfg := &Config{}
	for _, e := range file.Roots {
		if e.Key == "" || e.Reason == "" {
			return nil, fmt.Errorf("analysis: %s: every root needs a key and a reason (got key=%q reason=%q)", path, e.Key, e.Reason)
		}
		cfg.HotRoots = append(cfg.HotRoots, e.Key)
	}
	for _, e := range file.Stops {
		if e.Key == "" || e.Reason == "" {
			return nil, fmt.Errorf("analysis: %s: every stop needs a key and a reason (got key=%q reason=%q)", path, e.Key, e.Reason)
		}
		cfg.HotStops = append(cfg.HotStops, e.Key)
	}
	return cfg, nil
}
