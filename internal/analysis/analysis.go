// Package analysis is a small static-analysis framework built only on the
// standard library's go/ast, go/parser, go/token, and go/types. It exists
// to enforce the repository's correctness invariants — deterministic
// seeded simulation, float-comparison hygiene, snapshot-format stability,
// and no silently dropped errors — which ordinary `go vet` does not cover.
//
// An Analyzer inspects one type-checked package at a time and reports
// Diagnostics. The driver (cmd/quasar-lint) loads the module with Loader,
// applies every registered analyzer, and prints findings as
// "file:line:col: [analyzer] message".
//
// Individual findings can be suppressed with a trailing or preceding
// comment of the form
//
//	//lint:allow(analyzer1,analyzer2) optional justification
//
// which silences the named analyzers on the comment's line and on the line
// immediately below it. Suppressions are deliberate, grep-able admissions
// that a rule is intentionally broken at one site.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the file set used to load the
// package.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow()
	// suppression comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Scope restricts the analyzer to packages whose import path contains
	// one of these substrings. An empty Scope means every package.
	// Packages named explicitly on the command line (rather than matched
	// by ./...) are always analyzed, so fixtures and one-off audits can
	// exercise scoped analyzers.
	Scope []string
	// Run inspects the package in pass and reports findings via
	// pass.Reportf.
	Run func(pass *Pass)
}

// appliesTo reports whether the analyzer's scope admits the package.
func (a *Analyzer) appliesTo(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, s := range a.Scope {
		if strings.Contains(pkgPath, s) {
			return true
		}
	}
	return false
}

// All returns the repository's analyzer suite in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, FloatCmp, SnapshotDrift, ErrDiscard}
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies analyzers to pkgs, honoring analyzer scopes and
// //lint:allow suppressions, and returns diagnostics sorted by position
// then analyzer name.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		sup := collectSuppressions(fset, pkg)
		for _, a := range analyzers {
			if !pkg.Explicit && !a.appliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg}
			a.Run(pass)
			for _, d := range pass.diags {
				if !sup.allows(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// suppressions maps filename -> line -> set of analyzer names allowed
// there. The special name "*" allows every analyzer.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) allows(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	set := lines[d.Pos.Line]
	return set != nil && (set[d.Analyzer] || set["*"])
}

func (s suppressions) add(file string, line int, analyzer string) {
	lines := s[file]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		s[file] = lines
	}
	set := lines[line]
	if set == nil {
		set = make(map[string]bool)
		lines[line] = set
	}
	set[analyzer] = true
}

// collectSuppressions scans every comment in the package for
// //lint:allow(...) directives. A directive covers its own line (trailing
// comments) and the following line (comments on their own line above the
// offending statement).
func collectSuppressions(fset *token.FileSet, pkg *Package) suppressions {
	sup := make(suppressions)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllowDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range names {
					sup.add(pos.Filename, pos.Line, name)
					sup.add(pos.Filename, pos.Line+1, name)
				}
			}
		}
	}
	return sup
}

// parseAllowDirective extracts the analyzer names from a
// "//lint:allow(a,b) reason" comment. It returns ok=false for any other
// comment.
func parseAllowDirective(text string) (names []string, ok bool) {
	body, found := strings.CutPrefix(text, "//")
	if !found {
		return nil, false
	}
	body = strings.TrimSpace(body)
	body, found = strings.CutPrefix(body, "lint:allow(")
	if !found {
		return nil, false
	}
	rparen := strings.IndexByte(body, ')')
	if rparen < 0 {
		return nil, false
	}
	for _, name := range strings.Split(body[:rparen], ",") {
		name = strings.TrimSpace(name)
		if name != "" {
			names = append(names, name)
		}
	}
	return names, len(names) > 0
}
