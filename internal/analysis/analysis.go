// Package analysis is a small static-analysis framework built only on the
// standard library's go/ast, go/parser, go/token, and go/types. It exists
// to enforce the repository's correctness invariants — deterministic
// seeded simulation, float-comparison hygiene, snapshot-format stability,
// and no silently dropped errors — which ordinary `go vet` does not cover.
//
// An Analyzer inspects one type-checked package at a time and reports
// Diagnostics. The driver (cmd/quasar-lint) loads the module with Loader,
// applies every registered analyzer, and prints findings as
// "file:line:col: [analyzer] message".
//
// Individual findings can be suppressed with a trailing or preceding
// comment of the form
//
//	//lint:allow(analyzer1,analyzer2) optional justification
//
// which silences the named analyzers on the comment's line and on the line
// immediately below it. Suppressions are deliberate, grep-able admissions
// that a rule is intentionally broken at one site.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the file set used to load the
// package.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow()
	// suppression comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Scope restricts the analyzer to packages whose import path contains
	// one of these substrings. An empty Scope means every package.
	// Packages named explicitly on the command line (rather than matched
	// by ./...) are always analyzed, so fixtures and one-off audits can
	// exercise scoped analyzers.
	Scope []string
	// Run inspects the package in pass and reports findings via
	// pass.Reportf.
	Run func(pass *Pass)
}

// appliesTo reports whether the analyzer's scope admits the package.
func (a *Analyzer) appliesTo(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, s := range a.Scope {
		if strings.Contains(pkgPath, s) {
			return true
		}
	}
	return false
}

// All returns the repository's analyzer suite in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, FloatCmp, SnapshotDrift, ErrDiscard, HotAlloc, LockCheck, ParCapture}
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// Hot is the hot-path reachability set computed for this run (see
	// callgraph.go); nil when reachability could not be established.
	// Hot-path analyzers gate their findings on it.
	Hot *HotSet

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Config parameterizes a run. The zero value (or a nil *Config) runs with
// no declared hot roots; //quasar:hot markers still seed the hot set, which
// is how fixture packages exercise the hot-path analyzers.
type Config struct {
	// HotRoots are canonical function keys (see FuncKey) declared as
	// hot-path entry points, normally read from hotpath.json.
	HotRoots []string
	// HotStops are canonical function keys fencing the reachability
	// traversal: the named function and everything only it reaches stay
	// cold. Each stop in hotpath.json carries a justification.
	HotStops []string
}

// Run applies analyzers to pkgs, honoring analyzer scopes and
// //lint:allow suppressions, and returns diagnostics sorted by position
// then analyzer name.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _, err := RunConfigured(fset, pkgs, analyzers, nil)
	if err != nil {
		// Without a config there are no root keys to mismatch; the only
		// error source is unreachable here.
		panic(err)
	}
	return diags
}

// RunConfigured is Run with hot-path configuration. It returns the
// diagnostics and the computed hot set (for the -hotpath report).
// Configured root/stop keys that resolve to no function in the loaded
// packages are dropped from the traversal and recorded in
// HotSet.Unresolved: a partial package pattern legitimately excludes roots
// living elsewhere in the module, but on a full-module run every entry is
// a stale hotpath.json key and callers should surface it.
func RunConfigured(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, cfg *Config) ([]Diagnostic, *HotSet, error) {
	graph := BuildCallGraph(fset, pkgs)
	var roots, stops, unresolved []string
	if cfg != nil {
		keep := func(keys []string) []string {
			var have []string
			for _, k := range keys {
				if graph.KnownKey(k) {
					have = append(have, k)
				} else {
					unresolved = append(unresolved, k)
				}
			}
			return have
		}
		roots, stops = keep(cfg.HotRoots), keep(cfg.HotStops)
	}
	hot, err := graph.Reachable(roots, stops)
	if err != nil {
		return nil, nil, err
	}
	hot.Unresolved = unresolved
	out := append([]Diagnostic(nil), graph.diags...)
	for _, pkg := range pkgs {
		sup := collectSuppressions(fset, pkg)
		var ran []*Analyzer
		for _, a := range analyzers {
			if !pkg.Explicit && !a.appliesTo(pkg.Path) {
				continue
			}
			ran = append(ran, a)
			pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg, Hot: hot}
			a.Run(pass)
			for _, d := range pass.diags {
				if !sup.allows(d) {
					out = append(out, d)
				}
			}
		}
		out = append(out, sup.unused(ran)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, hot, nil
}

// directive is one //lint:allow(...) comment with per-name usage tracking:
// a directive that suppresses nothing is itself a finding (stale
// suppressions would silently mask future regressions).
type directive struct {
	pos   token.Position
	names []string
	used  map[string]bool
}

// suppressions indexes a package's //lint:allow directives by the lines
// they cover: the directive's own line (trailing comments) and the line
// below it (comments on their own line above the offending statement).
type suppressions struct {
	byLine map[string]map[int][]*directive
	all    []*directive
}

// allows reports whether some directive covers d, marking the matching
// name used. The special name "*" allows every analyzer.
func (s *suppressions) allows(d Diagnostic) bool {
	lines := s.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, dir := range lines[d.Pos.Line] {
		for _, name := range dir.names {
			if name == d.Analyzer || name == "*" {
				dir.used[name] = true
				hit = true
			}
		}
	}
	return hit
}

// unused reports a diagnostic for every directive name that named one of
// the analyzers that actually ran here yet suppressed nothing. Names of
// analyzers outside this run (a partial -analyzers invocation, a
// single-analyzer golden test) are left alone — absence of findings proves
// nothing when the analyzer never looked.
func (s *suppressions) unused(ran []*Analyzer) []Diagnostic {
	ranNames := make(map[string]bool, len(ran))
	for _, a := range ran {
		ranNames[a.Name] = true
	}
	var out []Diagnostic
	for _, dir := range s.all {
		for _, name := range dir.names {
			if dir.used[name] {
				continue
			}
			if name == "*" {
				if len(dir.used) == 0 && len(ran) > 0 {
					out = append(out, Diagnostic{
						Pos:      dir.pos,
						Analyzer: "unusedallow",
						Message:  "unused //lint:allow(*) suppression: no analyzer reports anything here; remove the stale annotation",
					})
				}
				continue
			}
			if !ranNames[name] {
				continue
			}
			out = append(out, Diagnostic{
				Pos:      dir.pos,
				Analyzer: "unusedallow",
				Message: fmt.Sprintf("unused //lint:allow(%s) suppression: %s reports nothing here; remove the stale annotation",
					name, name),
			})
		}
	}
	return out
}

func (s *suppressions) add(dir *directive) {
	if s.byLine == nil {
		s.byLine = make(map[string]map[int][]*directive)
	}
	lines := s.byLine[dir.pos.Filename]
	if lines == nil {
		lines = make(map[int][]*directive)
		s.byLine[dir.pos.Filename] = lines
	}
	lines[dir.pos.Line] = append(lines[dir.pos.Line], dir)
	lines[dir.pos.Line+1] = append(lines[dir.pos.Line+1], dir)
	s.all = append(s.all, dir)
}

// collectSuppressions scans every comment in the package for
// //lint:allow(...) directives.
func collectSuppressions(fset *token.FileSet, pkg *Package) *suppressions {
	sup := &suppressions{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllowDirective(c.Text)
				if !ok {
					continue
				}
				sup.add(&directive{
					pos:   fset.Position(c.Pos()),
					names: names,
					used:  make(map[string]bool),
				})
			}
		}
	}
	return sup
}

// parseAllowDirective extracts the analyzer names from a
// "//lint:allow(a,b) reason" comment. It returns ok=false for any other
// comment.
func parseAllowDirective(text string) (names []string, ok bool) {
	body, found := strings.CutPrefix(text, "//")
	if !found {
		return nil, false
	}
	body = strings.TrimSpace(body)
	body, found = strings.CutPrefix(body, "lint:allow(")
	if !found {
		return nil, false
	}
	rparen := strings.IndexByte(body, ')')
	if rparen < 0 {
		return nil, false
	}
	for _, name := range strings.Split(body[:rparen], ",") {
		name = strings.TrimSpace(name)
		if name != "" {
			names = append(names, name)
		}
	}
	return names, len(names) > 0
}
